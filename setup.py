"""Setuptools shim.

This environment has no network access and no ``wheel`` package, so
PEP 660 editable installs (which build a wheel) fail.  Keeping a
``setup.py`` lets ``pip install -e . --no-build-isolation`` fall back
to the legacy ``setup.py develop`` path.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
