"""Property tests: multi-CG decomposition and SIMT lockstep invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.params import BlockingParams
from repro.core.reference import reference_dgemm
from repro.multi import SW26010Processor, dgemm_multi_cg
from repro.sim.simt import BARRIER, run_lockstep
from repro.workloads.matrices import gemm_operands

PARAMS = BlockingParams.small(double_buffered=True)


@settings(max_examples=5, deadline=None)
@given(
    alpha=st.floats(-2.0, 2.0).map(lambda x: round(x, 2)),
    beta=st.floats(-2.0, 2.0).map(lambda x: round(x, 2)),
    seed=st.integers(0, 2**16),
)
def test_multi_cg_always_matches_reference(alpha, beta, seed):
    m, n, k = PARAMS.b_m, 4 * PARAMS.b_n, PARAMS.b_k
    a, b, c = gemm_operands(m, n, k, seed=seed)
    out = dgemm_multi_cg(a, b, c, alpha=alpha, beta=beta, params=PARAMS)
    assert np.allclose(out, reference_dgemm(alpha, a, b, beta, c),
                       rtol=1e-11, atol=1e-8)


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_multi_cg_panels_are_independent(seed):
    """Zeroing one CG's panel of B only changes that panel of C."""
    m, n, k = PARAMS.b_m, 4 * PARAMS.b_n, PARAMS.b_k
    a, b, _ = gemm_operands(m, n, k, seed=seed)
    full = dgemm_multi_cg(a, b, params=PARAMS)
    b2 = b.copy()
    panel = n // 4
    b2[:, 2 * panel : 3 * panel] = 0.0
    partial = dgemm_multi_cg(a, b2, params=PARAMS)
    assert np.allclose(partial[:, : 2 * panel], full[:, : 2 * panel])
    assert np.allclose(partial[:, 3 * panel :], full[:, 3 * panel :])
    assert np.allclose(partial[:, 2 * panel : 3 * panel], 0.0)


@settings(max_examples=25, deadline=None)
@given(
    parties=st.integers(1, 16),
    rounds=st.integers(1, 8),
)
def test_lockstep_generations_are_aligned(parties, rounds):
    """Every thread observes every generation in the same order, and
    within a generation no thread runs ahead."""
    progress = [0] * parties
    observed: list[list[int]] = [[] for _ in range(parties)]

    def worker(idx):
        for round_ in range(rounds):
            progress[idx] = round_
            # lockstep invariant: nobody can be more than one phase
            # ahead of anybody else at a barrier arrival
            assert max(progress) - min(progress) <= 1
            observed[idx].append(round_)
            yield BARRIER
        return idx

    results = run_lockstep([worker(i) for i in range(parties)])
    assert sorted(results.values()) == list(range(parties))
    assert all(obs == list(range(rounds)) for obs in observed)


@settings(max_examples=20, deadline=None)
@given(values=st.lists(st.integers(-100, 100), min_size=1, max_size=16))
def test_lockstep_allreduce(values):
    """A barrier-synchronized tree-free allreduce: every thread writes
    its value, syncs, then reads the sum — the canonical SIMT idiom."""
    shared = list(values)
    total = sum(values)

    def worker(idx):
        shared[idx] = values[idx]
        yield BARRIER
        return sum(shared)

    results = run_lockstep([worker(i) for i in range(len(values))])
    assert all(v == total for v in results.values())
