"""Property: no fault schedule can make the pool return a wrong answer.

Random fault schedules (random sites, triggers, seeds) driven through
random batches must always land in one of exactly two per-item
outcomes: a recovered output that matches the fault-free run, or a
structured error with a ``None`` output slot.  Silent corruption —
an output that exists but differs — is the one forbidden state.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.params import BlockingParams
from repro.multi.scheduler import CGScheduler
from repro.resil import FAULT_SITES, FaultInjector, FaultSpec, RetryPolicy
from repro.workloads.matrices import mixed_batch

PARAMS = BlockingParams.small(double_buffered=True)

_REFERENCE_CACHE: dict = {}


def reference_outputs(n_items: int, seed: int, pool: int, engine: str):
    """Fault-free pool run of the same batch (cached per shape of run)."""
    key = (n_items, seed, pool, engine)
    if key not in _REFERENCE_CACHE:
        items = mixed_batch(n_items, params=PARAMS, seed=seed)
        result = CGScheduler(n_core_groups=pool, params=PARAMS,
                             engine=engine).run(items)
        assert result.ok
        _REFERENCE_CACHE[key] = result.outputs
    return _REFERENCE_CACHE[key]


@st.composite
def fault_specs(draw):
    site = draw(st.sampled_from(FAULT_SITES))
    if draw(st.booleans()):
        return FaultSpec(site, nth=draw(st.integers(1, 40)))
    return FaultSpec(
        site,
        probability=draw(st.sampled_from([0.01, 0.05, 0.2, 1.0])),
        max_fires=draw(st.integers(1, 4)),
    )


@settings(max_examples=12, deadline=None)
@given(
    specs=st.lists(fault_specs(), min_size=1, max_size=3),
    fault_seed=st.integers(0, 2**16),
    batch_seed=st.integers(0, 3),
    pool=st.integers(2, 4),
)
def test_random_fault_schedules_never_corrupt(specs, fault_seed,
                                              batch_seed, pool):
    n_items = 4
    items = mixed_batch(n_items, params=PARAMS, seed=batch_seed)
    reference = reference_outputs(n_items, batch_seed, pool, "device")
    injector = FaultInjector(specs, seed=fault_seed)
    result = CGScheduler(
        n_core_groups=pool, params=PARAMS, injector=injector,
        retry_policy=RetryPolicy(),
    ).run(items)

    failed = {e.index for e in result.errors}
    for i, out in enumerate(result.outputs):
        if i in failed:
            assert out is None
        else:
            # same engine throughout (no fallback configured), so
            # recovery must be bit-exact, not merely close
            assert out is not None and np.array_equal(out, reference[i])
    # every error is structured and attributed
    for error in result.errors:
        assert error.kind in ("FaultInjectedError", "QuarantineError")
        assert 0 <= error.core_group < pool
    # every disturbed-and-failed item has a FaultReport and vice versa
    report_index = {r.index: r for r in result.fault_reports}
    for error in result.errors:
        assert not report_index[error.index].recovered
    # accounting stays coherent under any schedule: items that no CG
    # could accept are tallied as unplaced, never in per-CG traffic
    assert sum(t.items for t in result.per_cg) + len(result.unplaced) == len(items)
    assert sum(t.failures for t in result.per_cg) + len(result.unplaced) == len(
        result.errors
    )
    assert set(result.unplaced) <= {e.index for e in result.errors}
    for g in result.quarantined:
        assert result.per_cg[g].failures + result.per_cg[g].items >= 0
        assert g < pool


@settings(max_examples=10, deadline=None)
@given(
    subset=st.sets(st.integers(0, 3), max_size=3),
    batch_seed=st.integers(0, 3),
)
def test_quarantining_any_proper_subset_preserves_results(subset, batch_seed):
    """Satellite property: killing any proper subset of CGs is invisible
    in the outputs and visible (healthy-only) in the stats."""
    n_items = 4
    items = mixed_batch(n_items, params=PARAMS, seed=batch_seed)
    reference = reference_outputs(n_items, batch_seed, 4, "device")
    injector = FaultInjector(
        [FaultSpec("cg", probability=1.0, cg=g, max_fires=1) for g in subset]
    )
    result = CGScheduler(
        n_core_groups=4, params=PARAMS, injector=injector,
        retry_policy=RetryPolicy(),
    ).run(items)

    assert result.ok
    for out, ref in zip(result.outputs, reference):
        assert np.array_equal(out, ref)
    assert result.quarantined == tuple(sorted(subset))
    healthy = 4 - len(subset)
    assert result.healthy_core_groups == healthy
    if healthy:
        assert result.load_balance_efficiency == (
            result.modeled_speedup / healthy
        )
    # quarantined CGs ran nothing; healthy CGs ran everything
    for g in subset:
        assert result.per_cg[g].items == 0
        assert result.per_cg[g].modeled_seconds == 0.0
    assert sum(t.items for t in result.per_cg) == len(items)


@settings(max_examples=8, deadline=None)
@given(
    specs=st.lists(fault_specs(), min_size=1, max_size=2),
    fault_seed=st.integers(0, 2**16),
)
def test_fault_schedules_replay_deterministically(specs, fault_seed):
    items = mixed_batch(3, params=PARAMS, seed=0)

    def trajectory():
        injector = FaultInjector(specs, seed=fault_seed)
        result = CGScheduler(
            n_core_groups=2, params=PARAMS, injector=injector,
            retry_policy=RetryPolicy(),
        ).run(items)
        return (
            injector.stats.as_dict(),
            tuple((r.index, r.site, r.attempts, r.retries, r.recovered)
                  for r in result.fault_reports),
            tuple(e.index for e in result.errors),
            result.quarantined,
        )

    assert trajectory() == trajectory()
