"""Property tests: pipeline simulator and scheduler invariants."""

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.isa.instructions import Instr, Unit, addl, lddec, nop, vldd, vldr, vmad
from repro.isa.pipeline import Pipeline
from repro.isa.scheduler import DependenceGraph, list_schedule

REGS = [f"r{i}" for i in range(8)]


@st.composite
def instruction(draw):
    kind = draw(st.sampled_from(["vmad", "vldd", "vldr", "lddec", "addl", "nop"]))
    if kind == "vmad":
        return vmad(draw(st.sampled_from(REGS)), draw(st.sampled_from(REGS)),
                    draw(st.sampled_from(REGS)), draw(st.sampled_from(REGS)))
    if kind == "vldd":
        return vldd(draw(st.sampled_from(REGS)))
    if kind == "vldr":
        return vldr(draw(st.sampled_from(REGS)))
    if kind == "lddec":
        return lddec(draw(st.sampled_from(REGS)))
    if kind == "addl":
        return addl(draw(st.sampled_from(REGS)), draw(st.sampled_from(REGS)))
    return nop()


programs = st.lists(instruction(), min_size=1, max_size=40)


@settings(max_examples=60, deadline=None)
@given(prog=programs)
def test_cycles_lower_bounds(prog):
    """Cycles >= per-unit instruction counts and >= ceil(n / 2)."""
    result = Pipeline(dual_issue=True).run(prog)
    fp = sum(1 for i in prog if i.unit is Unit.FP)
    sec = len(prog) - fp
    assert result.cycles >= max(fp, sec)
    assert result.cycles >= -(-len(prog) // 2)
    assert result.cycles <= 7 * len(prog)  # no hang: bounded by worst latency


@settings(max_examples=60, deadline=None)
@given(prog=programs)
def test_single_issue_never_faster(prog):
    dual = Pipeline(dual_issue=True).run(prog).cycles
    single = Pipeline(dual_issue=False).run(prog).cycles
    assert single >= dual
    assert single >= len(prog)


@settings(max_examples=60, deadline=None)
@given(prog=programs)
def test_issue_order_and_hazards_respected(prog):
    """In-order issue; RAW/WAW distances respect latencies."""
    pipe = Pipeline(dual_issue=True)
    result = pipe.run(prog, collect_issues=True)
    lat = {ins.latency_class: getattr(pipe.latency, ins.latency_class) for ins in prog}
    issue_cycle = [rec.cycle for rec in result.issues]
    # in order
    assert all(a <= b for a, b in zip(issue_cycle, issue_cycle[1:]))
    # hazards
    last_write: dict[str, tuple[int, int]] = {}
    for idx, ins in enumerate(prog):
        for src in ins.srcs:
            if src in last_write:
                w_idx, w_cycle = last_write[src]
                ready = w_cycle + lat[prog[w_idx].latency_class]
                assert issue_cycle[idx] >= ready
        if ins.dst is not None:
            if ins.dst in last_write:
                w_idx, w_cycle = last_write[ins.dst]
                ready = w_cycle + lat[prog[w_idx].latency_class]
                assert issue_cycle[idx] >= ready
            last_write[ins.dst] = (idx, issue_cycle[idx])


@settings(max_examples=60, deadline=None)
@given(prog=programs)
def test_op_counts_conserved(prog):
    result = Pipeline().run(prog)
    assert sum(result.op_counts.values()) == len(prog)
    assert result.instructions == len(prog)


@settings(max_examples=40, deadline=None)
@given(prog=programs, sp=st.booleans())
def test_scheduler_emits_permutation(prog, sp):
    out = list_schedule(prog, software_pipeline=sp)
    assert Counter(map(str, out)) == Counter(map(str, prog))


@settings(max_examples=40, deadline=None)
@given(prog=programs)
def test_dependence_graph_is_acyclic_and_respects_program_order(prog):
    g = DependenceGraph.build(prog)
    for a in range(len(prog)):
        for b in g.succs[a]:
            assert a < b  # edges always point forward
