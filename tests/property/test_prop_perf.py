"""Property tests: performance-model invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.params import BlockingParams
from repro.perf.dma_model import BlockTransfer, DMACostModel
from repro.perf.estimator import Estimator
from repro.perf.timeline import TimelineSimulator

DB_PARAMS = BlockingParams.paper_double()
grid = st.integers(1, 4)


@settings(max_examples=25, deadline=None)
@given(
    segments=st.integers(1, 1000),
    seg_doubles=st.integers(1, 64).map(lambda x: 16 * x),
)
def test_dma_cost_linear_in_segments(segments, seg_doubles):
    model = DMACostModel()
    one = model.seconds(BlockTransfer("x", 1, seg_doubles), include_request=False)
    many = model.seconds(BlockTransfer("x", segments, seg_doubles), include_request=False)
    assert many == pytest.approx(segments * one, rel=1e-9)


@settings(max_examples=25, deadline=None)
@given(seg_doubles=st.integers(1, 256).map(lambda x: 16 * x))
def test_effective_bandwidth_below_channel_peak(seg_doubles):
    model = DMACostModel()
    assert 0 < model.effective_bandwidth(seg_doubles) < model.spec.dma.peak_bandwidth


@settings(max_examples=20, deadline=None)
@given(gm=grid, gn=grid, gk=grid)
def test_estimator_flops_scale_linearly_per_block(gm, gn, gk):
    """Doubling any grid dimension doubles total work; Gflop/s can only
    improve or stay equal (amortization), never degrade."""
    est = Estimator()
    m, n, k = gm * DB_PARAMS.b_m, gn * DB_PARAMS.b_n, gk * DB_PARAMS.b_k
    base = est.estimate("SCHED", m, n, k, params=DB_PARAMS)
    bigger = est.estimate("SCHED", 2 * m, n, k, params=DB_PARAMS)
    assert bigger.gflops >= base.gflops - 1e-9


@settings(max_examples=12, deadline=None)
@given(gm=grid, gn=st.integers(1, 2), gk=st.integers(1, 2))
def test_timeline_equals_closed_form_on_random_grids(gm, gn, gk):
    m, n, k = gm * DB_PARAMS.b_m, gn * DB_PARAMS.b_n, gk * DB_PARAMS.b_k
    closed = Estimator().estimate("SCHED", m, n, k, params=DB_PARAMS)
    timeline = TimelineSimulator().run("SCHED", m, n, k, params=DB_PARAMS)
    assert timeline.seconds == pytest.approx(closed.seconds, rel=1e-9)


@settings(max_examples=12, deadline=None)
@given(gm=grid, gn=st.integers(1, 2), gk=st.integers(1, 2))
def test_double_buffering_never_slower_than_serial(gm, gn, gk):
    """max(dma, compute) + prologue <= dma + compute, per (j, l)."""
    est = Estimator()
    m, n, k = gm * DB_PARAMS.b_m, gn * DB_PARAMS.b_n, gk * DB_PARAMS.b_k
    from repro.core.variants import VARIANTS

    costs = est.block_costs(VARIANTS["DB"].traits, DB_PARAMS)
    grid3 = DB_PARAMS.check_shape(m, n, k)
    t_db, _ = est._double_buffered_seconds(costs, *grid3)
    t_serial, _ = est._single_buffered_seconds(costs, *grid3)
    assert t_db <= t_serial + 1e-12


@settings(max_examples=15, deadline=None)
@given(gm=grid, gn=grid, gk=grid, variant=st.sampled_from(["PE", "ROW", "DB", "SCHED"]))
def test_estimates_always_below_peak(gm, gn, gk, variant):
    est = Estimator()
    params = (
        BlockingParams.paper_single() if variant in ("PE", "ROW") else DB_PARAMS
    )
    m, n, k = gm * params.b_m, gn * params.b_n, gk * params.b_k
    e = est.estimate(variant, m, n, k, params=params)
    assert 0.0 < e.efficiency() < 1.0
