"""Property tests: blocking parameters and the Sec III-C model."""

import pytest
from hypothesis import assume, given, strategies as st

from repro.core import model
from repro.core.params import BlockingParams
from repro.errors import BlockingError, ConfigError, UnsupportedShapeError

p_m_strategy = st.integers(1, 4).map(lambda x: 16 * x)
p_n_strategy = st.integers(1, 24).map(lambda x: 4 * x)
p_k_strategy = st.integers(1, 12).map(lambda x: 16 * x)


@given(p_m=p_m_strategy, p_n=p_n_strategy, p_k=p_k_strategy,
       db=st.booleans())
def test_fits_iff_doubles_below_budget(p_m, p_n, p_k, db):
    params = BlockingParams(p_m, p_n, p_k, double_buffered=db)
    assert params.fits() == (params.ldm_doubles_per_cpe < 8192)


@given(p_m=p_m_strategy, p_n=p_n_strategy, p_k=p_k_strategy)
def test_double_buffering_needs_more_ldm(p_m, p_n, p_k):
    single = BlockingParams(p_m, p_n, p_k, double_buffered=False)
    double = BlockingParams(p_m, p_n, p_k, double_buffered=True)
    extra = double.ldm_doubles_per_cpe - single.ldm_doubles_per_cpe
    assert extra == p_m * p_k + p_m * p_n  # one extra A and C tile


@given(p_m=p_m_strategy, p_n=p_n_strategy, p_k=p_k_strategy)
def test_cg_blocks_are_8x_thread_blocks(p_m, p_n, p_k):
    p = BlockingParams(p_m, p_n, p_k)
    assert (p.b_m, p.b_n, p.b_k) == (8 * p_m, 8 * p_n, 8 * p_k)


@given(
    p_m=p_m_strategy, p_n=p_n_strategy, p_k=p_k_strategy,
    gm=st.integers(1, 5), gn=st.integers(1, 5), gk=st.integers(1, 5),
)
def test_shape_admission_roundtrip(p_m, p_n, p_k, gm, gn, gk):
    p = BlockingParams(p_m, p_n, p_k)
    grid = p.check_shape(gm * p.b_m, gn * p.b_n, gk * p.b_k)
    assert grid == (gm, gn, gk)


@given(p_m=p_m_strategy, p_n=p_n_strategy, p_k=p_k_strategy,
       off=st.integers(1, 127))
def test_misaligned_shapes_rejected(p_m, p_n, p_k, off):
    p = BlockingParams(p_m, p_n, p_k)
    assume(off % p.b_m != 0)
    with pytest.raises(UnsupportedShapeError):
        p.check_shape(p.b_m + off, p.b_n, p.b_k)


@given(b_n=st.floats(1.0, 1e5), b_k=st.floats(1.0, 1e5))
def test_bandwidth_reduction_bounds(b_n, b_k):
    s = model.bandwidth_reduction(b_n, b_k)
    # S < 2*min(bK/2, bN) trivially; also S grows in both args
    assert 0 < s < 2 * min(b_k / 2, b_n) + 1e-6
    assert model.bandwidth_reduction(b_n * 2, b_k * 2) > s


@given(m=st.floats(1.0, 1e7))
def test_finite_m_only_decreases_s(m):
    assert model.bandwidth_reduction(384, 768, m=m) <= model.bandwidth_reduction(384, 768)


@given(r_m=st.integers(1, 10), r_n=st.integers(1, 10))
def test_register_reduction_harmonic_mean_bounds(r_m, r_n):
    red = model.register_bandwidth_reduction(r_m, r_n)
    assert min(r_m, r_n) <= red <= 2 * min(r_m, r_n)
    assert red <= (r_m + r_n)  # harmonic <= arithmetic


@given(budget=st.floats(10.0, 1e6))
def test_split_optimum_is_ratio_two(budget):
    b_k, b_n = model.optimal_bk_bn_split(budget)
    s_opt = model.bandwidth_reduction(b_n, b_k)
    for ratio in (1.0, 1.5, 3.0):
        alt_n = budget / (2 + ratio)
        assert model.bandwidth_reduction(alt_n, ratio * alt_n) <= s_opt + 1e-9
