"""Property: telemetry never loses a byte or an observation.

Two reconciliation laws back the telemetry pipeline:

1. Sampler deltas telescope.  For any batch mix driven through a live
   ``Session``, summing the per-sample deltas of each traffic counter
   must reproduce ``Session.stats().traffic`` bit-exactly — sampling is
   a lossless re-serialization of the accounting, regardless of how the
   samples land relative to the work.

2. Histogram merge is concatenation.  Merging two histograms must be
   indistinguishable from recording both observation streams into one,
   for every derived quantity the exposition layer reads (cumulative
   buckets, count, min, max, percentiles).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.api import GemmRequest
from repro.core.params import BlockingParams
from repro.core.session import Session
from repro.obs import LatencyHistogram, MetricsSampler

PARAMS = BlockingParams.small(double_buffered=True)

_DIMS = st.sampled_from([24, 64, 100])


@st.composite
def batch_items(draw):
    m, n, k = draw(_DIMS), draw(_DIMS), draw(_DIMS)
    rng = np.random.default_rng(draw(st.integers(0, 2**16)))
    beta = draw(st.sampled_from([0.0, 1.0]))
    return GemmRequest(
        rng.standard_normal((m, k)),
        rng.standard_normal((k, n)),
        rng.standard_normal((m, n)) if beta else None,
        beta=beta,
    )


@settings(max_examples=8, deadline=None)
@given(
    waves=st.lists(
        st.lists(batch_items(), min_size=1, max_size=3),
        min_size=1,
        max_size=3,
    ),
    pool=st.integers(1, 4),
)
def test_sampler_deltas_reconcile_with_session_traffic(waves, pool):
    with Session(params=PARAMS, n_core_groups=pool) as session:
        sampler = MetricsSampler(
            session.metrics_registry(), period_seconds=0.01
        )
        sampler.sample_once()  # t=0 baseline, before any traffic
        for wave in waves:
            result = session.batch(wave, parallel=True)
            assert not result.errors
            sampler.sample_once()  # mid-run samples between waves
        traffic = session.stats().traffic.as_dict()

    for field, total in traffic.items():
        name = f"session.traffic.{field}"
        deltas = sampler.deltas(name)
        assert len(deltas) == len(waves)
        assert sum(d for _, d in deltas) == total, field
        # the series itself telescopes: last - first == total
        points = sampler.series(name).points()
        assert points[-1][1] - points[0][1] == total, field


@settings(max_examples=8, deadline=None)
@given(
    waves=st.lists(
        st.lists(batch_items(), min_size=1, max_size=3),
        min_size=1,
        max_size=2,
    ),
)
def test_live_sampler_brackets_all_traffic(waves):
    """With the background thread running, start()'s baseline and
    stop()'s closing sample still bracket every byte."""
    with Session(params=PARAMS, n_core_groups=2) as session:
        sampler = MetricsSampler(
            session.metrics_registry(), period_seconds=0.005
        )
        with sampler:
            for wave in waves:
                assert not session.batch(wave, parallel=True).errors
        traffic = session.stats().traffic.as_dict()

    assert sampler.errors == 0
    for field, total in traffic.items():
        points = sampler.series(f"session.traffic.{field}").points()
        assert points[0][1] == 0.0, field
        assert points[-1][1] == total, field


@settings(max_examples=50, deadline=None)
@given(
    left=st.lists(
        st.floats(0.0, 1e4, allow_nan=False), min_size=0, max_size=40
    ),
    right=st.lists(
        st.floats(0.0, 1e4, allow_nan=False), min_size=0, max_size=40
    ),
)
def test_histogram_merge_equals_concatenated_recording(left, right):
    a = LatencyHistogram.for_seconds()
    b = LatencyHistogram.for_seconds()
    combined = LatencyHistogram.for_seconds()
    a.extend(left)
    b.extend(right)
    combined.extend(left + right)

    merged = a.merge(b)
    merged.validate()
    assert merged.cumulative() == combined.cumulative()
    assert merged.count == combined.count
    assert merged.min == combined.min
    assert merged.max == combined.max
    assert merged.sum == sum(left) + sum(right)
    for q in (50, 90, 99):
        assert merged.percentile(q) == combined.percentile(q)
    # merge is observationally commutative
    swapped = b.merge(a)
    assert swapped.cumulative() == merged.cumulative()
    assert swapped.percentile(95) == merged.percentile(95)
