"""Property tests: assembler roundtrips and software-cache coherence."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.arch.memory import MainMemory
from repro.arch.swcache import SoftwareCache
from repro.isa.assembler import assemble, disassemble
from repro.isa.instructions import addl, getc, getr, lddec, nop, vldd, vldr, vmad, vstd

REGS = [f"r{i}" for i in range(6)] + ["ldmA", "ldmB", "ldmC"]


@st.composite
def instruction(draw):
    kind = draw(st.sampled_from(
        ["vmad", "vldd", "vldr", "lddec", "getr", "getc", "vstd", "addl", "nop"]
    ))
    reg = lambda: draw(st.sampled_from(REGS))  # noqa: E731
    if kind == "vmad":
        return vmad(reg(), reg(), reg(), reg())
    if kind == "vldd":
        return vldd(reg(), reg())
    if kind == "vldr":
        return vldr(reg(), reg())
    if kind == "lddec":
        return lddec(reg(), reg())
    if kind == "getr":
        return getr(reg())
    if kind == "getc":
        return getc(reg())
    if kind == "vstd":
        return vstd(reg(), reg())
    if kind == "addl":
        return addl(reg(), reg(), reg())
    return nop()


@settings(max_examples=40, deadline=None)
@given(prog=st.lists(instruction(), min_size=1, max_size=30))
def test_disassemble_assemble_roundtrip(prog):
    text = disassemble(prog)
    again = assemble(text)
    assert [str(i) for i in again] == [str(i) for i in prog]
    assert [i.unit for i in again] == [i.unit for i in prog]
    assert [i.latency_class for i in again] == [i.latency_class for i in prog]


@settings(max_examples=15, deadline=None)
@given(
    accesses=st.lists(
        st.tuples(st.integers(0, 63), st.integers(0, 15)),
        min_size=1, max_size=200,
    ),
    ways=st.sampled_from([1, 2, 4]),
    seed=st.integers(0, 2**16),
)
def test_cache_reads_always_coherent(accesses, ways, seed):
    """Any access pattern: cached reads equal the backing matrix."""
    memory = MainMemory()
    rng = np.random.default_rng(seed)
    matrix = np.asfortranarray(rng.standard_normal((64, 16)))
    handle = memory.store("M", matrix)
    cache = SoftwareCache(memory, handle, capacity_bytes=1024,
                          line_doubles=16, ways=ways)
    for row, col in accesses:
        assert cache.read(row, col) == matrix[row, col]
    assert cache.stats.accesses == len(accesses)


@settings(max_examples=15, deadline=None)
@given(
    writes=st.lists(
        st.tuples(st.integers(0, 63), st.integers(0, 15),
                  st.floats(-100, 100)),
        min_size=1, max_size=100,
    ),
    ways=st.sampled_from([1, 4]),
)
def test_cache_writeback_preserves_all_stores(writes, ways):
    """After flush, main memory reflects the last write to every cell
    regardless of eviction interleavings."""
    memory = MainMemory()
    matrix = np.zeros((64, 16), order="F")
    handle = memory.store("M", matrix)
    cache = SoftwareCache(memory, handle, capacity_bytes=512,
                          line_doubles=16, ways=ways)
    expected = matrix.copy()
    for row, col, value in writes:
        cache.write(row, col, value)
        expected[row, col] = value
    cache.flush()
    assert np.array_equal(memory.array(handle), expected)
