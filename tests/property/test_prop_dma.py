"""Property tests: DMA distributions are lossless permutations."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.arch.core_group import CoreGroup
from repro.arch.dma import row_mode_owner_rows

# row counts: multiples of 16 (ROW_MODE groups); columns free
rows_strategy = st.integers(min_value=1, max_value=8).map(lambda x: 16 * x)
cols_strategy = st.integers(min_value=1, max_value=24)


@given(rows=st.integers(min_value=1, max_value=64).map(lambda x: 16 * x))
def test_owner_rows_partition_all_rows(rows):
    """The 8 CPEs' ROW_MODE row subsets partition [0, rows) exactly."""
    chunks = [row_mode_owner_rows(rows, j) for j in range(8)]
    union = np.concatenate(chunks)
    assert len(union) == rows
    assert sorted(union.tolist()) == list(range(rows))


@given(rows=rows_strategy, j=st.integers(min_value=0, max_value=7))
def test_owner_rows_follow_mod16_rule(rows, j):
    for r in row_mode_owner_rows(rows, j):
        assert r % 16 in (2 * j, 2 * j + 1)


@settings(max_examples=20, deadline=None)
@given(rows=rows_strategy, cols=cols_strategy, seed=st.integers(0, 2**16))
def test_row_mode_roundtrip_is_identity(rows, cols, seed):
    """scatter (row_get) then gather (row_put) reproduces the matrix."""
    cg = CoreGroup()
    rng = np.random.default_rng(seed)
    original = np.asfortranarray(rng.standard_normal((rows, cols)))
    handle = cg.memory.store("M", original)
    for cpe in cg.cpes():
        cpe.ldm.alloc("t", (rows // 8, cols))
    bufs = cg.row_ldm_buffers(0, "t")
    cg.dma.row_get(handle, 0, 0, rows, cols, bufs)
    cg.memory.array(handle)[:] = np.nan
    cg.dma.row_put(handle, 0, 0, rows, cols, bufs)
    assert np.array_equal(cg.memory.array(handle), original)


@settings(max_examples=20, deadline=None)
@given(
    tile_rows=st.integers(1, 4).map(lambda x: 16 * x),
    tile_cols=st.integers(1, 12),
    seed=st.integers(0, 2**16),
)
def test_pe_mode_roundtrip_is_identity(tile_rows, tile_cols, seed):
    cg = CoreGroup()
    rng = np.random.default_rng(seed)
    original = np.asfortranarray(rng.standard_normal((2 * tile_rows, 2 * tile_cols)))
    handle = cg.memory.store("M", original)
    cpe = cg.cpe((0, 0))
    cpe.ldm.alloc("t", (tile_rows, tile_cols))
    buf = cpe.ldm.get("t")
    cg.dma.pe_get(handle, tile_rows, tile_cols, tile_rows, tile_cols, buf)
    region = cg.memory.array(handle)[
        tile_rows : 2 * tile_rows, tile_cols : 2 * tile_cols
    ]
    region[:] = 0.0
    cg.dma.pe_put(handle, tile_rows, tile_cols, tile_rows, tile_cols, buf)
    assert np.array_equal(cg.memory.array(handle), original)


@settings(max_examples=20, deadline=None)
@given(rows=rows_strategy, cols=cols_strategy)
def test_reply_accounting_consistent(rows, cols):
    """bytes == segments * segment bytes == transactions * 128."""
    cg = CoreGroup()
    handle = cg.memory.store("M", np.zeros((rows, cols), order="F"))
    for cpe in cg.cpes():
        cpe.ldm.alloc("t", (rows // 8, cols))
    reply = cg.dma.row_get(handle, 0, 0, rows, cols, cg.row_ldm_buffers(0, "t"))
    assert reply.nbytes == rows * cols * 8
    assert reply.transactions * 128 == reply.nbytes
    assert reply.segments == cols
