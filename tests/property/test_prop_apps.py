"""Property tests for the application layers (LU, conv)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.apps.conv import conv2d_gemm, conv2d_reference, im2col
from repro.apps.lu import blocked_lu, lu_residual, lu_solve
from repro.core.params import BlockingParams

PARAMS = BlockingParams.small(double_buffered=True)


@settings(max_examples=8, deadline=None)
@given(
    n=st.sampled_from([32, 48, 64, 96]),
    panel=st.sampled_from([16, 32]),
    seed=st.integers(0, 2**16),
)
def test_lu_residual_always_acceptable(n, panel, seed):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n)) + n * np.eye(n)   # diagonally dominant
    result = blocked_lu(a, panel=panel, params=PARAMS)
    assert lu_residual(a, result) < 16.0


@settings(max_examples=6, deadline=None)
@given(n=st.sampled_from([32, 64]), seed=st.integers(0, 2**16))
def test_lu_solve_recovers_known_solution(n, seed):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n)) + n * np.eye(n)
    x_true = rng.standard_normal(n)
    result = blocked_lu(a, panel=16, params=PARAMS)
    x = lu_solve(result, a @ x_true)
    assert np.allclose(x, x_true, rtol=1e-8, atol=1e-8)


@settings(max_examples=8, deadline=None)
@given(
    batch=st.integers(1, 3),
    channels=st.integers(1, 3),
    size=st.integers(5, 10),
    filters=st.integers(1, 4),
    kernel=st.integers(1, 3),
    stride=st.integers(1, 2),
    seed=st.integers(0, 2**16),
)
def test_conv_gemm_matches_direct(batch, channels, size, filters, kernel, stride, seed):
    rng = np.random.default_rng(seed)
    images = rng.standard_normal((batch, channels, size, size))
    kernels = rng.standard_normal((filters, channels, kernel, kernel))
    got = conv2d_gemm(images, kernels, stride=stride, params=PARAMS)
    ref = conv2d_reference(images, kernels, stride=stride)
    assert got.shape == ref.shape
    assert np.allclose(got, ref, rtol=1e-9, atol=1e-9)


@settings(max_examples=15, deadline=None)
@given(
    channels=st.integers(1, 4),
    h=st.integers(3, 10),
    w=st.integers(3, 10),
    kh=st.integers(1, 3),
    kw=st.integers(1, 3),
)
def test_im2col_shape_and_count(channels, h, w, kh, kw):
    if kh > h or kw > w:
        return
    images = np.arange(float(channels * h * w)).reshape(1, channels, h, w)
    cols = im2col(images, kh, kw)
    oh, ow = h - kh + 1, w - kw + 1
    assert cols.shape == (channels * kh * kw, oh * ow)
    # every column is a genuine sub-patch: values come from the image
    assert set(np.unique(cols)).issubset(set(images.reshape(-1)))
