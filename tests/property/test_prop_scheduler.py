"""Property: pool dispatch never changes the numbers.

The CGScheduler may route items anywhere and in any grouping, but
every item runs the same single-CG kernel on identical operands — so
the outputs must be *bit-identical* to the serial ``dgemm_batch`` run,
for any mix of shapes, trans flags and alpha/beta.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.batch import BatchItem, dgemm_batch
from repro.core.params import BlockingParams
from repro.multi import CGScheduler

PARAMS = BlockingParams.small(double_buffered=True)

_DIMS = st.sampled_from([24, 64, 100, 128])


@st.composite
def batch_items(draw):
    m = draw(_DIMS)
    n = draw(_DIMS)
    k = draw(_DIMS)
    seed = draw(st.integers(0, 2**16))
    transa = draw(st.sampled_from(["N", "T"]))
    transb = draw(st.sampled_from(["N", "T"]))
    alpha = draw(st.sampled_from([1.0, -0.5, 2.0]))
    beta = draw(st.sampled_from([0.0, 1.0]))
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((k, m) if transa == "T" else (m, k))
    b = rng.standard_normal((n, k) if transb == "T" else (k, n))
    c = rng.standard_normal((m, n)) if beta else None
    return BatchItem(a, b, c, alpha=alpha, beta=beta,
                     transa=transa, transb=transb)


@settings(max_examples=10, deadline=None)
@given(
    items=st.lists(batch_items(), min_size=1, max_size=6),
    pool=st.integers(1, 4),
)
def test_pool_results_bit_identical_to_serial(items, pool):
    serial = dgemm_batch(items, params=PARAMS)
    result = CGScheduler(n_core_groups=pool, params=PARAMS).run(items)
    assert result.ok
    assert len(result) == len(serial.outputs)
    for x, y in zip(serial.outputs, result.outputs):
        assert np.array_equal(x, y)
    assert result.flops == serial.flops
    assert result.padded_flops == serial.padded_flops
    assert result.makespan_seconds <= result.serial_seconds + 1e-15


@settings(max_examples=6, deadline=None)
@given(
    items=st.lists(batch_items(), min_size=2, max_size=5),
    seed=st.integers(0, 2**16),
)
def test_budgets_restored_for_any_batch(items, seed):
    scheduler = CGScheduler(n_core_groups=4, params=PARAMS)
    proc = scheduler.processor
    baselines = [proc.cg(g).memory.used_bytes for g in range(4)]
    scheduler.run(items)
    assert [proc.cg(g).memory.used_bytes for g in range(4)] == baselines
