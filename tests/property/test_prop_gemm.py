"""Property tests: end-to-end GEMM correctness over random inputs."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.api import dgemm
from repro.core.params import BlockingParams
from repro.core.reference import reference_dgemm
from repro.workloads.matrices import gemm_operands

SINGLE = BlockingParams.small(double_buffered=False)
DOUBLE = BlockingParams.small(double_buffered=True)

scalars = st.floats(-4.0, 4.0).map(lambda x: round(x, 3))
grids = st.integers(1, 2)


@settings(max_examples=8, deadline=None)
@given(alpha=scalars, beta=scalars, gm=grids, gk=grids, seed=st.integers(0, 2**16))
def test_sched_matches_reference(alpha, beta, gm, gk, seed):
    m, n, k = gm * DOUBLE.b_m, DOUBLE.b_n, gk * DOUBLE.b_k
    a, b, c = gemm_operands(m, n, k, seed=seed)
    out = dgemm(a, b, c, alpha=alpha, beta=beta, variant="SCHED", params=DOUBLE)
    assert np.allclose(out, reference_dgemm(alpha, a, b, beta, c),
                       rtol=1e-11, atol=1e-8)


@settings(max_examples=6, deadline=None)
@given(variant=st.sampled_from(["PE", "ROW"]), alpha=scalars, seed=st.integers(0, 2**16))
def test_single_buffered_matches_reference(variant, alpha, seed):
    m, n, k = SINGLE.b_m, SINGLE.b_n, SINGLE.b_k
    a, b, c = gemm_operands(m, n, k, seed=seed)
    out = dgemm(a, b, c, alpha=alpha, beta=1.0, variant=variant, params=SINGLE)
    assert np.allclose(out, reference_dgemm(alpha, a, b, 1.0, c),
                       rtol=1e-11, atol=1e-8)


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 2**16), alpha=scalars)
def test_raw_matches_reference(seed, alpha):
    m, n, k = 128, 64, 96
    a, b, c = gemm_operands(m, n, k, seed=seed)
    out = dgemm(a, b, c, alpha=alpha, beta=-1.0, variant="RAW")
    assert np.allclose(out, reference_dgemm(alpha, a, b, -1.0, c),
                       rtol=1e-11, atol=1e-8)


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_variants_agree_with_each_other(seed):
    """DB and SCHED share a functional path; PE and ROW must agree with
    them too (same math, different data movement)."""
    m, n, k = 128, 192, 128  # common multiple of both small param sets
    a, b, c = gemm_operands(m, n, k, seed=seed)
    outs = [
        dgemm(a, b, c, beta=1.0, variant="PE",
              params=BlockingParams(16, 24, 16, double_buffered=False)),
        dgemm(a, b, c, beta=1.0, variant="ROW",
              params=BlockingParams(16, 24, 16, double_buffered=False)),
        dgemm(a, b, c, beta=1.0, variant="SCHED",
              params=BlockingParams(16, 24, 16, double_buffered=True)),
    ]
    for other in outs[1:]:
        assert np.allclose(outs[0], other, rtol=1e-11, atol=1e-8)


@settings(max_examples=5, deadline=None)
@given(
    dm=st.integers(1, 16), dn=st.integers(1, 16), dk=st.integers(1, 16),
    seed=st.integers(0, 2**16),
)
def test_padding_handles_arbitrary_shapes(dm, dn, dk, seed):
    """pad=True admits any shape and still matches the reference."""
    m, n, k = DOUBLE.b_m - dm, DOUBLE.b_n - dn, DOUBLE.b_k - dk
    a, b, c = gemm_operands(m, n, k, seed=seed)
    out = dgemm(a, b, c, alpha=1.3, beta=0.7, params=DOUBLE, pad=True)
    assert np.allclose(out, reference_dgemm(1.3, a, b, 0.7, c),
                       rtol=1e-11, atol=1e-8)


@settings(max_examples=8, deadline=None)
@given(
    dm=st.integers(0, 16), dn=st.integers(0, 16), dk=st.integers(0, 16),
    beta=scalars, seed=st.integers(0, 2**16),
)
def test_dgemm_leaves_main_memory_unchanged(dm, dn, dk, beta, seed):
    """The staging lifecycle invariant: any dgemm call on a shared
    device restores used_bytes and the handle set exactly."""
    from repro.arch.core_group import CoreGroup

    cg = CoreGroup()
    cg.memory.store("user.resident", np.ones((16, 16)))
    handles_before = sorted(h.name for h in cg.memory.handles())
    bytes_before = cg.memory.used_bytes
    m, n, k = DOUBLE.b_m - dm, DOUBLE.b_n - dn, DOUBLE.b_k - dk
    a, b, c = gemm_operands(m, n, k, seed=seed)
    dgemm(a, b, c, alpha=0.9, beta=beta, params=DOUBLE, core_group=cg, pad=True)
    assert sorted(h.name for h in cg.memory.handles()) == handles_before
    assert cg.memory.used_bytes == bytes_before
