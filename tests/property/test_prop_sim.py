"""Property tests: discrete-event engine invariants."""

from hypothesis import given, settings, strategies as st

from repro.sim import AllOf, AnyOf, Barrier, Engine, Resource

delays = st.lists(st.floats(0.0, 100.0), min_size=1, max_size=20)


@given(delays=delays)
def test_timeouts_complete_at_max_delay(delays):
    engine = Engine()
    combined = AllOf(engine, [engine.timeout(d) for d in delays])
    engine.run(combined)
    assert engine.now == max(delays)


@given(delays=delays)
def test_any_of_completes_at_min_delay(delays):
    engine = Engine()
    combined = AnyOf(engine, [engine.timeout(d) for d in delays])
    engine.run(combined)
    assert engine.now == min(delays)


@given(delays=delays, capacity=st.integers(1, 4))
def test_resource_never_exceeds_capacity(delays, capacity):
    engine = Engine()
    resource = Resource(engine, capacity)
    peak = [0]

    def worker(hold):
        yield resource.request()
        peak[0] = max(peak[0], resource.in_use)
        assert resource.in_use <= capacity
        yield engine.timeout(hold)
        resource.release()

    for d in delays:
        engine.process(worker(d))
    engine.run()
    assert peak[0] <= capacity
    assert resource.in_use == 0
    assert resource.queued == 0


@given(delays=delays)
def test_serial_resource_total_time_is_sum(delays):
    """A capacity-1 resource serializes: makespan == sum of holds when
    all requests arrive at t=0."""
    engine = Engine()
    resource = Resource(engine, 1)

    def worker(hold):
        yield engine.process(resource.use(hold))

    for d in delays:
        engine.process(worker(d))
    engine.run()
    assert engine.now == sum(delays)
    assert resource.busy_time == sum(delays)


@given(
    parties=st.integers(1, 8),
    rounds=st.integers(1, 4),
    jitter=st.lists(st.floats(0.0, 5.0), min_size=8, max_size=8),
)
def test_barrier_generations(parties, rounds, jitter):
    engine = Engine()
    barrier = Barrier(engine, parties)
    releases = []

    def party(offset):
        for _ in range(rounds):
            yield engine.timeout(offset)
            yield barrier.wait()
            releases.append(engine.now)

    for p in range(parties):
        engine.process(party(jitter[p]))
    engine.run()
    assert barrier.generations == rounds
    assert len(releases) == parties * rounds
    # within one generation every party releases at the same instant
    for g in range(rounds):
        chunk = sorted(releases)[g * parties : (g + 1) * parties]
        assert max(chunk) - min(chunk) == 0.0
