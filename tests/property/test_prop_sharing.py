"""Property tests: the collective sharing scheme is complete and exact."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.arch.core_group import CoreGroup
from repro.arch.mesh import Coord
from repro.core.sharing import Role, Scheme, exchange_step, role_of

scheme_strategy = st.sampled_from([Scheme.PE, Scheme.ROW])
step_strategy = st.integers(0, 7)


@given(step=step_strategy, scheme=scheme_strategy)
def test_roles_partition_the_mesh(step, scheme):
    counts = {role: 0 for role in Role}
    for i in range(8):
        for j in range(8):
            counts[role_of(Coord(i, j), step, scheme)] += 1
    assert counts[Role.DIAGONAL] == 1
    assert counts[Role.A_OWNER] == counts[Role.B_OWNER] == 7
    assert counts[Role.RECEIVER] == 49


@given(step=step_strategy)
def test_schemes_are_transposes(step):
    for i in range(8):
        for j in range(8):
            pe = role_of(Coord(i, j), step, Scheme.PE)
            row = role_of(Coord(j, i), step, Scheme.ROW)
            assert pe == row


@settings(max_examples=15, deadline=None)
@given(step=step_strategy, scheme=scheme_strategy, seed=st.integers(0, 2**16))
def test_exchange_delivers_exact_owner_data(step, scheme, seed):
    cg = CoreGroup()
    rng = np.random.default_rng(seed)
    a_tiles = {c: rng.standard_normal((4, 8)) for c in cg.mesh.coords()}
    b_tiles = {c: rng.standard_normal((8, 4)) for c in cg.mesh.coords()}
    operands = exchange_step(cg, step, scheme, a_tiles, b_tiles)
    assert set(operands) == set(cg.mesh.coords())
    for coord, (a_part, b_part) in operands.items():
        if scheme is Scheme.PE:
            a_owner, b_owner = Coord(coord.row, step), Coord(step, coord.col)
        else:
            a_owner, b_owner = Coord(step, coord.col), Coord(coord.row, step)
        assert np.array_equal(a_part, a_tiles[a_owner])
        assert np.array_equal(b_part, b_tiles[b_owner])
    cg.regcomm.assert_drained()


@settings(max_examples=10, deadline=None)
@given(scheme=scheme_strategy, seed=st.integers(0, 2**16))
def test_eight_steps_reconstruct_full_gemm(scheme, seed):
    """Summing the 8 step products equals the full block product —
    the algebraic heart of the strip multiplication."""
    cg = CoreGroup()
    rng = np.random.default_rng(seed)
    p_m, p_k, p_n = 4, 8, 4
    a_tiles = {c: rng.standard_normal((p_m, p_k)) for c in cg.mesh.coords()}
    b_tiles = {c: rng.standard_normal((p_k, p_n)) for c in cg.mesh.coords()}
    acc = {c: np.zeros((p_m, p_n)) for c in cg.mesh.coords()}
    for step in range(8):
        for coord, (a_part, b_part) in exchange_step(
            cg, step, scheme, a_tiles, b_tiles
        ).items():
            acc[coord] += a_part @ b_part
    # validate a handful of CPEs against the direct sum
    for coord in (Coord(0, 0), Coord(3, 5), Coord(7, 7)):
        if scheme is Scheme.PE:
            expected = sum(
                a_tiles[Coord(coord.row, s)] @ b_tiles[Coord(s, coord.col)]
                for s in range(8)
            )
        else:
            expected = sum(
                a_tiles[Coord(s, coord.col)] @ b_tiles[Coord(coord.row, s)]
                for s in range(8)
            )
        assert np.allclose(acc[coord], expected, rtol=1e-12)
