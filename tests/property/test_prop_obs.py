"""Property: the trace is a lossless decomposition of the accounting.

For any batch shape mix, pool size, and scalar/batch call interleaving,
summing the counter deltas of every ``dgemm`` span must reproduce
``Session.stats().traffic`` bit-exactly — no byte is double-counted or
dropped when total traffic is attributed span by span.  The span tree
must also stay strictly nested (the invariant every exporter assumes).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.batch import BatchItem
from repro.core.params import BlockingParams
from repro.core.session import Session
from repro.obs import SpanTracer

PARAMS = BlockingParams.small(double_buffered=True)

_DIMS = st.sampled_from([24, 64, 100])


@st.composite
def batch_items(draw):
    m, n, k = draw(_DIMS), draw(_DIMS), draw(_DIMS)
    rng = np.random.default_rng(draw(st.integers(0, 2**16)))
    beta = draw(st.sampled_from([0.0, 1.0]))
    return BatchItem(
        rng.standard_normal((m, k)),
        rng.standard_normal((k, n)),
        rng.standard_normal((m, n)) if beta else None,
        beta=beta,
    )


@settings(max_examples=8, deadline=None)
@given(
    items=st.lists(batch_items(), min_size=1, max_size=5),
    pool=st.integers(1, 4),
    scalar_calls=st.integers(0, 2),
)
def test_dgemm_span_deltas_reconcile_with_session_stats(
    items, pool, scalar_calls
):
    tracer = SpanTracer()
    with Session(params=PARAMS, n_core_groups=pool, tracer=tracer) as s:
        rng = np.random.default_rng(5)
        for _ in range(scalar_calls):
            s.dgemm(rng.standard_normal((24, 64)),
                    rng.standard_normal((64, 24)))
        result = s.batch(items)
        assert not result.errors
        totals = s.stats().traffic.as_dict()

    deltas = tracer.counter_totals("dgemm")
    assert len(tracer.by_name("dgemm")) == len(items) + scalar_calls
    for field, total in totals.items():
        assert deltas.get(f"ctx.{field}", 0) == total, field
    # and, beyond the expected plan-cache counters, nothing outside
    # the ctx namespace leaks into these spans
    extra = {key for key in deltas if not key.startswith("plan.cache.")}
    assert extra <= {f"ctx.{field}" for field in totals}


@settings(max_examples=8, deadline=None)
@given(items=st.lists(batch_items(), min_size=1, max_size=4),
       pool=st.integers(1, 3))
def test_span_tree_is_strictly_nested(items, pool):
    tracer = SpanTracer()
    with Session(params=PARAMS, n_core_groups=pool, tracer=tracer) as s:
        s.batch(items)

    assert tracer.current() is None  # every span closed
    by_index = {s.index: s for s in tracer.spans}
    assert sorted(by_index) == list(range(len(tracer.spans)))
    for span in tracer.spans:
        if span.parent is None:
            assert span.depth == 0
            continue
        parent = by_index[span.parent]
        assert span.depth == parent.depth + 1
        assert parent.start <= span.start
        assert span.end <= parent.end
        assert parent.index < span.index
