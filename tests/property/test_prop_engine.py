"""Property tests: the vectorized engine is the device engine, faster.

Randomized shapes (exact block multiples and padded), alpha/beta,
trans flags and variants; each example runs the same call on both
engines with fresh core groups and asserts

- results agree to the library comparison tolerance
  (``rtol=1e-12 / atol=1e-9``, the bar ``dgemm(check=True)`` applies) —
  and bit-for-bit for the stepwise formulation;
- the context staging accounting and the device's DMA and
  register-communication counters are *identical*, field by field.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.arch.core_group import CoreGroup
from repro.core.api import dgemm
from repro.core.context import ExecutionContext
from repro.core.engine.plans import PlanCache
from repro.core.engine.vectorized import StepwiseEngine, VectorizedEngine
from repro.core.params import BlockingParams
from repro.workloads.matrices import gemm_operands

SINGLE = BlockingParams.small(double_buffered=False)
DOUBLE = BlockingParams.small(double_buffered=True)

scalars = st.floats(-4.0, 4.0).map(lambda x: round(x, 3))
grids = st.integers(1, 2)
trans = st.sampled_from(["N", "T"])


def _params_for(variant):
    return SINGLE if variant in ("PE", "ROW") else DOUBLE


def _dma_stats(cg: CoreGroup) -> dict:
    d = cg.dma.stats
    return {
        "gets": d.gets, "puts": d.puts,
        "bytes_get": d.bytes_get, "bytes_put": d.bytes_put,
        "transactions": d.transactions, "by_mode": dict(d.by_mode),
    }


def _regcomm_stats(cg: CoreGroup) -> dict:
    r = cg.regcomm.stats
    return {
        "row_broadcasts": r.row_broadcasts, "col_broadcasts": r.col_broadcasts,
        "row_items": r.row_items, "col_items": r.col_items,
        "bytes_moved": r.bytes_moved, "receives": r.receives,
    }


def _run(engine, variant, params, a, b, c, alpha, beta, transa="N",
         transb="N", pad=False, plan_cache=None):
    """One dgemm on a fresh device; returns (result, ctx delta, stats)."""
    cg = CoreGroup()
    ctx = ExecutionContext(cg)
    with ctx:
        out = dgemm(
            a, b, c, alpha=alpha, beta=beta, transa=transa, transb=transb,
            variant=variant, engine=engine, params=params,
            context=ctx, pad=pad, plan_cache=plan_cache,
        )
        delta = ctx.stats()
    return out, delta, (_dma_stats(cg), _regcomm_stats(cg))


def _assert_equivalent(variant, params, a, b, c, alpha, beta,
                       transa="N", transb="N", pad=False):
    dev, dev_delta, dev_stats = _run(
        "device", variant, params, a, b, c, alpha, beta, transa, transb, pad)
    vec, vec_delta, vec_stats = _run(
        "vectorized", variant, params, a, b, c, alpha, beta, transa, transb, pad)
    assert np.allclose(vec, dev, rtol=1e-12, atol=1e-9), (
        f"{variant}: max abs err {np.max(np.abs(vec - dev)):.3e}"
    )
    assert vec_delta == dev_delta, f"{variant}: ContextStats differ"
    assert vec_stats == dev_stats, f"{variant}: device counters differ"


@settings(max_examples=10, deadline=None)
@given(
    variant=st.sampled_from(["PE", "ROW", "DB", "SCHED"]),
    alpha=scalars, beta=scalars, gm=grids, gn=grids, gk=grids,
    seed=st.integers(0, 2**16),
)
def test_engines_agree_exact_shapes(variant, alpha, beta, gm, gn, gk, seed):
    p = _params_for(variant)
    m, n, k = gm * p.b_m, gn * p.b_n, gk * p.b_k
    a, b, c = gemm_operands(m, n, k, seed=seed)
    _assert_equivalent(variant, p, a, b, c, alpha, beta)


@settings(max_examples=8, deadline=None)
@given(
    variant=st.sampled_from(["PE", "ROW", "DB", "SCHED"]),
    alpha=scalars, beta=scalars,
    dm=st.integers(1, 16), dn=st.integers(1, 8), dk=st.integers(1, 16),
    transa=trans, transb=trans, seed=st.integers(0, 2**16),
)
def test_engines_agree_padded_and_transposed(
    variant, alpha, beta, dm, dn, dk, transa, transb, seed
):
    p = _params_for(variant)
    m, n, k = p.b_m - dm, p.b_n - dn, p.b_k - dk
    a, b, c = gemm_operands(m, n, k, seed=seed)
    if transa == "T":
        a = np.asfortranarray(a.T)
    if transb == "T":
        b = np.asfortranarray(b.T)
    _assert_equivalent(variant, p, a, b, c, alpha, beta,
                       transa=transa, transb=transb, pad=True)


@settings(max_examples=6, deadline=None)
@given(alpha=scalars, beta=scalars, seed=st.integers(0, 2**16))
def test_engines_agree_raw(alpha, beta, seed):
    m, n, k = 128, 64, 96
    a, b, c = gemm_operands(m, n, k, seed=seed)
    _assert_equivalent("RAW", None, a, b, c, alpha, beta)


@settings(max_examples=6, deadline=None)
@given(
    variant=st.sampled_from(["PE", "ROW", "DB", "SCHED"]),
    alpha=scalars, beta=scalars, seed=st.integers(0, 2**16),
)
def test_stepwise_mode_is_bitwise_identical(variant, alpha, beta, seed):
    """The literal stacked-tile formulation performs the device's exact
    arithmetic in the device's exact order — not just close, equal."""
    p = _params_for(variant)
    m, n, k = p.b_m, p.b_n, 2 * p.b_k
    a, b, c = gemm_operands(m, n, k, seed=seed)
    dev, dev_delta, dev_stats = _run(
        "device", variant, p, a, b, c, alpha, beta)
    step, step_delta, step_stats = _run(
        VectorizedEngine(stepwise=True), variant, p, a, b, c, alpha, beta)
    assert np.array_equal(step, dev)
    assert step_delta == dev_delta
    assert step_stats == dev_stats


@settings(max_examples=8, deadline=None)
@given(
    variant=st.sampled_from(["RAW", "PE", "ROW", "DB", "SCHED"]),
    alpha=scalars, beta=scalars, seed=st.integers(0, 2**16),
)
def test_warm_plan_stepwise_is_bitwise_identical(variant, alpha, beta, seed):
    """A warm-cache stepwise run equals the cold-cache run, the legacy
    unplanned path, and the device engine — results bit for bit, DMA
    and regcomm counters field by field.  (RAW has no shared plan; the
    stepwise engine still serves it, building nothing.)"""
    if variant == "RAW":
        p, (m, n, k) = None, (128, 64, 96)
    else:
        p = _params_for(variant)
        m, n, k = p.b_m, p.b_n, 2 * p.b_k
    a, b, c = gemm_operands(m, n, k, seed=seed)
    cache = PlanCache(n_core_groups=1)
    cold = _run(StepwiseEngine(), variant, p, a, b, c, alpha, beta,
                plan_cache=cache)
    warm = _run(StepwiseEngine(), variant, p, a, b, c, alpha, beta,
                plan_cache=cache)
    legacy = _run(StepwiseEngine(use_plans=False), variant, p, a, b, c,
                  alpha, beta)
    dev = _run("device", variant, p, a, b, c, alpha, beta)
    for other in (cold, legacy, dev):
        assert np.array_equal(warm[0], other[0])
        assert warm[1] == other[1]          # ContextStats delta
        assert warm[2] == other[2]          # DMA + regcomm counters
    stats = cache.stats()
    if variant == "RAW":
        assert stats.builds == 0 and stats.hits == 0
    else:
        # the regression the plan cache exists to fix: one build per
        # signature, every repeat a hit.
        assert stats.builds == 1
        assert stats.hits == 1
