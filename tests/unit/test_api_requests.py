"""Unit tests for the typed request/response surface (repro.api)."""

import numpy as np
import pytest

from repro.api import (
    ConvRequest,
    GemmRequest,
    LuRequest,
    RequestError,
    RequestResult,
    SubmitOptions,
    as_gemm_request,
    as_request,
    format_bin,
    resolve_legacy_kwargs,
)
from repro.core.batch import BatchItem
from repro.core.params import BlockingParams
from repro.errors import ConfigError, UnsupportedShapeError

PARAMS = BlockingParams.small(double_buffered=True)


class TestGemmRequest:
    def test_validate_returns_effective_shape(self):
        r = GemmRequest(a=np.zeros((10, 7)), b=np.zeros((7, 5)))
        assert r.validate() == (10, 5, 7)

    def test_validate_accounts_for_trans(self):
        r = GemmRequest(
            a=np.zeros((7, 10)), b=np.zeros((5, 7)), transa="T", transb="T"
        )
        assert r.validate() == (10, 5, 7)

    def test_inner_dimension_mismatch(self):
        r = GemmRequest(a=np.zeros((4, 3)), b=np.zeros((5, 2)))
        with pytest.raises(UnsupportedShapeError, match="inner dimensions"):
            r.validate()

    def test_bad_trans_flag(self):
        r = GemmRequest(a=np.zeros((4, 3)), b=np.zeros((3, 2)), transa="C")
        with pytest.raises(UnsupportedShapeError, match="transa"):
            r.validate()

    def test_beta_without_c(self):
        r = GemmRequest(a=np.zeros((4, 3)), b=np.zeros((3, 2)), beta=0.5)
        with pytest.raises(UnsupportedShapeError, match="requires an input C"):
            r.validate()

    def test_c_shape_mismatch(self):
        r = GemmRequest(
            a=np.zeros((4, 3)), b=np.zeros((3, 2)), c=np.zeros((4, 4)),
            beta=1.0,
        )
        with pytest.raises(UnsupportedShapeError, match="expected"):
            r.validate()

    def test_shape_bin_pads_to_block_multiples(self):
        r = GemmRequest(a=np.zeros((10, 7)), b=np.zeros((7, 5)))
        assert r.shape_bin(PARAMS) == ("gemm", *PARAMS.pad_shape(10, 7, 5))

    def test_same_bin_for_shapes_padding_alike(self):
        small = GemmRequest(a=np.zeros((10, 7)), b=np.zeros((7, 5)))
        other = GemmRequest(a=np.zeros((12, 9)), b=np.zeros((9, 6)))
        assert small.shape_bin(PARAMS) == other.shape_bin(PARAMS)


class TestContentHash:
    def test_equal_contents_equal_hash(self):
        a, b = np.ones((4, 3)), np.ones((3, 2))
        assert (
            GemmRequest(a=a, b=b).content_hash()
            == GemmRequest(a=a.copy(), b=b.copy()).content_hash()
        )

    def test_hash_covers_operands_and_attributes(self):
        a, b, c = np.ones((4, 3)), np.ones((3, 2)), np.ones((4, 2))
        base = GemmRequest(a=a, b=b).content_hash()
        assert GemmRequest(a=a + 1, b=b).content_hash() != base
        assert GemmRequest(a=a, b=b, alpha=2.0).content_hash() != base
        assert (
            GemmRequest(a=a, b=b, c=c, beta=1.0).content_hash() != base
        )

    def test_hash_distinguishes_kinds(self):
        a = np.eye(8)
        assert (
            LuRequest(a=a).content_hash()
            != GemmRequest(a=a, b=a).content_hash()
        )


class TestLuRequest:
    def test_validate(self):
        assert LuRequest(a=np.eye(12), panel=4).validate() == (12, 12, 4)

    def test_rejects_non_square(self):
        with pytest.raises(UnsupportedShapeError, match="square"):
            LuRequest(a=np.zeros((4, 5))).validate()

    def test_rejects_bad_panel(self):
        with pytest.raises(ConfigError, match="panel"):
            LuRequest(a=np.eye(4), panel=0).validate()

    def test_shape_bin(self):
        assert LuRequest(a=np.eye(12), panel=4).shape_bin(PARAMS) == (
            "lu", 12, 4,
        )


class TestConvRequest:
    def test_validate_returns_lowered_shape(self):
        r = ConvRequest(
            images=np.zeros((2, 3, 8, 8)), kernels=np.zeros((4, 3, 3, 3))
        )
        # m=o, n=n*oh*ow, k=c*kh*kw
        assert r.validate() == (4, 2 * 6 * 6, 3 * 3 * 3)
        assert r.fold_shape() == (2, 4, 6, 6)

    def test_channel_mismatch(self):
        r = ConvRequest(
            images=np.zeros((2, 3, 8, 8)), kernels=np.zeros((4, 2, 3, 3))
        )
        with pytest.raises(UnsupportedShapeError, match="channels"):
            r.validate()

    def test_lower_fold_round_trip_matches_direct_conv(self):
        rng = np.random.default_rng(0)
        r = ConvRequest(
            images=rng.standard_normal((2, 2, 6, 6)),
            kernels=rng.standard_normal((3, 2, 3, 3)),
        )
        gemm = r.lower()
        out = r.fold(np.asarray(gemm.a) @ np.asarray(gemm.b))
        n, o, oh, ow = r.fold_shape()
        assert out.shape == (n, o, oh, ow)
        # spot-check one output pixel against the direct correlation
        patch = np.asarray(r.images)[1, :, 2:5, 3:6]
        expected = float(np.sum(patch * np.asarray(r.kernels)[2]))
        assert np.isclose(out[1, 2, 2, 3], expected)


class TestSubmitOptions:
    def test_defaults_defer_to_session(self):
        opts = SubmitOptions()
        assert (opts.engine, opts.check, opts.max_retries) == (
            None, None, None,
        )

    def test_engine_is_normalized(self):
        assert SubmitOptions(engine="Device").engine == "device"

    def test_negative_retries_rejected(self):
        with pytest.raises(ConfigError, match="max_retries"):
            SubmitOptions(max_retries=-1)

    def test_hashable_for_coalescing(self):
        assert hash(SubmitOptions(engine="device")) == hash(
            SubmitOptions(engine="device")
        )
        assert SubmitOptions() in {SubmitOptions()}


class TestResponses:
    def test_result_ok_and_rejected(self):
        assert RequestResult(value=1).ok
        rejected = RequestResult(
            error=RequestError(
                kind="RejectedError", message="full", retryable=True
            )
        )
        assert not rejected.ok
        assert rejected.rejected
        assert rejected.error.retryable
        shape = RequestResult(
            error=RequestError(kind="UnsupportedShapeError", message="bad")
        )
        assert not shape.rejected

    def test_error_str(self):
        err = RequestError(kind="ConfigError", message="nope")
        assert str(err) == "ConfigError: nope"


class TestFormatBin:
    def test_renders_kind_and_dims(self):
        assert format_bin(("gemm", 64, 96, 32)) == "gemm:64x96x32"
        assert format_bin(("lu", 256, 64)) == "lu:256x64"


class TestLegacyKwargs:
    def test_maps_with_deprecation_warning(self):
        with pytest.warns(DeprecationWarning, match="transa"):
            resolved = resolve_legacy_kwargs("dgemm", {"trans": "T"})
        assert resolved == {"transa": "T"}

    def test_unknown_keyword_raises_type_error(self):
        with pytest.raises(TypeError, match="unexpected keyword"):
            resolve_legacy_kwargs("dgemm", {"transpose_a": "T"})

    def test_duplicate_spellings_rejected(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ConfigError, match="duplicates"):
                resolve_legacy_kwargs(
                    "dgemm_batch", {"ncgs": 2, "num_core_groups": 4}
                )

    def test_as_gemm_request_resolves_trans(self):
        with pytest.warns(DeprecationWarning):
            r = as_gemm_request(
                np.zeros((7, 10)), np.zeros((7, 5)), legacy={"trans": "T"}
            )
        assert r.transa == "T"
        assert r.validate() == (10, 5, 7)

    def test_as_gemm_request_rejects_pool_kwargs(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError, match="n_core_groups"):
                as_gemm_request(
                    np.zeros((4, 3)), np.zeros((3, 2)), legacy={"ncgs": 2}
                )


class TestAsRequest:
    def test_passes_typed_requests_through(self):
        r = GemmRequest(a=np.eye(4), b=np.eye(4))
        assert as_request(r) is r

    def test_coerces_tuples(self):
        a, b, c = np.eye(4), np.eye(4), np.eye(4)
        assert isinstance(as_request((a, b)), GemmRequest)
        coerced = as_request((a, b, c))
        assert coerced.c is c

    def test_rejects_everything_else(self):
        with pytest.raises(ConfigError, match="expected a"):
            as_request([np.eye(4), np.eye(4)])


class TestBatchItemShim:
    def test_construction_warns_and_is_a_gemm_request(self):
        with pytest.warns(DeprecationWarning, match="BatchItem"):
            item = BatchItem(a=np.eye(4), b=np.eye(4))
        assert isinstance(item, GemmRequest)
        assert item.validate() == (4, 4, 4)

    def test_gemm_request_does_not_warn(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            GemmRequest(a=np.eye(4), b=np.eye(4))
