"""Unit tests for the E10 scheduler-scaling experiment."""

import pytest

from repro.experiments import scheduler_scaling


@pytest.fixture(scope="module")
def result():
    return scheduler_scaling.run()


class TestSchedulerScaling:
    def test_sweeps_every_pool_size(self, result):
        assert result.pools == (1, 2, 3, 4)
        assert all(p.n_core_groups == n for n, p in zip(result.pools, result.plans))

    def test_one_cg_pool_is_serial(self, result):
        plan = result.plan_for(1)
        assert plan.modeled_speedup == pytest.approx(1.0)

    def test_makespan_monotone_in_pool_size(self, result):
        makespans = [p.makespan_seconds for p in result.plans]
        assert makespans == sorted(makespans, reverse=True)

    def test_four_cg_speedup_band(self, result):
        assert 2.0 <= result.speedup_at_4 <= 4.0

    def test_unknown_pool_raises(self, result):
        with pytest.raises(KeyError):
            result.plan_for(5)

    def test_shapes_interleaved_not_grouped(self, result):
        """The stream must interleave shapes (the scheduling challenge)."""
        assert result.shapes[0] != result.shapes[1]

    def test_render(self, result):
        text = scheduler_scaling.render(result).render()
        assert "E10" in text
        assert "mixed-shape" in text
