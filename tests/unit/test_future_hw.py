"""Unit tests for the E9 future-hardware what-if experiment."""

import pytest

from repro.experiments import future_hw


@pytest.fixture(scope="module")
def scenarios():
    return future_hw.run()


def by_label(scenarios, needle):
    for s in scenarios:
        if needle in s.label:
            return s
    raise KeyError(needle)


class TestFutureHardware:
    def test_baseline_recovers_paper_blocking(self, scenarios):
        base = by_label(scenarios, "LDM x1")
        assert base.best_blocking == (16, 32, 96)
        assert base.efficiency == pytest.approx(0.936, abs=0.01)

    def test_bigger_ldm_improves_efficiency(self, scenarios):
        effs = [by_label(scenarios, f"LDM x{s}").efficiency for s in (1, 2, 4)]
        assert effs == sorted(effs)
        assert effs[-1] > 0.96

    def test_bigger_ldm_deepens_blocking(self, scenarios):
        base = by_label(scenarios, "LDM x1")
        big = by_label(scenarios, "LDM x4")
        assert big.ldm_doubles_used > 2 * base.ldm_doubles_used
        # deeper k-blocking (the Sec III-C S formula rewards bK most)
        assert big.best_blocking[2] > base.best_blocking[2]

    def test_tuned_blocking_respects_each_budget(self, scenarios):
        for s in scenarios:
            assert s.ldm_doubles_used < s.spec.ldm_doubles

    def test_halved_bandwidth_hurts_hard(self, scenarios):
        slow = by_label(scenarios, "x0.5")
        assert slow.efficiency < 0.85

    def test_doubled_bandwidth_saturates(self, scenarios):
        fast = by_label(scenarios, "bandwidth x2")
        base = by_label(scenarios, "LDM x1")
        # already compute-bound: little to gain
        assert fast.efficiency - base.efficiency < 0.03

    def test_faster_clock_squeezes_efficiency(self, scenarios):
        turbo = by_label(scenarios, "clock")
        base = by_label(scenarios, "LDM x1")
        assert turbo.gflops > base.gflops          # absolute win
        assert turbo.efficiency < base.efficiency  # relative squeeze

    def test_render(self, scenarios):
        text = future_hw.render(scenarios).render()
        assert "256 KB" in text and "efficiency" in text
