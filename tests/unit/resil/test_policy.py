"""Unit tests for RetryPolicy / FaultReport / RecoveryStats."""

import pytest

from repro.errors import ConfigError, FaultInjectedError
from repro.resil import (
    DEFAULT_RETRY_POLICY,
    FaultReport,
    RecoveryStats,
    RetryPolicy,
)


class TestRetryPolicy:
    def test_defaults(self):
        policy = RetryPolicy()
        assert policy.enabled
        assert policy.max_retries == 2
        assert policy.retry_faults_only
        assert DEFAULT_RETRY_POLICY == policy

    def test_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ConfigError):
            RetryPolicy(backoff_seconds=-1e-6)
        with pytest.raises(ConfigError):
            RetryPolicy(backoff_factor=0.5)

    def test_should_retry_bounds(self):
        policy = RetryPolicy(max_retries=2)
        fault = FaultInjectedError("compute")
        assert policy.should_retry(fault, 0)
        assert policy.should_retry(fault, 1)
        assert not policy.should_retry(fault, 2)

    def test_faults_only_by_default(self):
        policy = RetryPolicy()
        assert not policy.should_retry(ValueError("deterministic"), 0)
        assert RetryPolicy(retry_faults_only=False).should_retry(
            ValueError("transient-ish"), 0
        )

    def test_zero_retries_disables(self):
        policy = RetryPolicy(max_retries=0)
        assert not policy.enabled
        assert not policy.should_retry(FaultInjectedError("compute"), 0)

    def test_backoff_is_geometric_and_deterministic(self):
        policy = RetryPolicy(backoff_seconds=1e-6, backoff_factor=2.0)
        assert policy.backoff_for(1) == 1e-6
        assert policy.backoff_for(2) == 2e-6
        assert policy.backoff_for(3) == 4e-6
        assert policy.total_backoff(3) == pytest.approx(7e-6)
        with pytest.raises(ConfigError):
            policy.backoff_for(0)


class TestFaultReport:
    def test_ok_mirrors_recovered(self):
        report = FaultReport(
            index=0, site="dma.get", attempts=2, retries=1,
            backoff_seconds=1e-6, fallback_engine=None,
            quarantined_cgs=(), core_group=1, recovered=True,
        )
        assert report.ok
        assert report.error_kind is None

    def test_exhausted_report_carries_error(self):
        report = FaultReport(
            index=3, site="compute", attempts=4, retries=2,
            backoff_seconds=3e-6, fallback_engine="device",
            quarantined_cgs=(1,), core_group=0, recovered=False,
            error_kind="FaultInjectedError", error_message="injected",
        )
        assert not report.ok
        assert report.fallback_engine == "device"


class TestRecoveryStats:
    def test_stats_protocol_surface(self):
        stats = RecoveryStats(recovered=2, retries=3, backoff_seconds=1e-6,
                              faults_seen={"dma.get": 2, "compute": 1})
        other = RecoveryStats(recovered=1, quarantines=1,
                              faults_seen={"compute": 2})
        total = stats.plus(other)
        assert total.recovered == 3
        assert total.retries == 3
        assert total.quarantines == 1
        assert total.faults_seen == {"dma.get": 2, "compute": 3}
        delta = total.delta(stats)
        assert delta.recovered == 1
        assert delta.faults_seen == {"dma.get": 0, "compute": 2}
        assert RecoveryStats.zero().as_dict()["recovered"] == 0

    def test_record_fault(self):
        stats = RecoveryStats()
        stats.record_fault("dma.get")
        stats.record_fault("dma.get")
        assert stats.faults_seen == {"dma.get": 2}
