"""Unit tests for the fault-injection core (repro.resil.faults)."""

import numpy as np
import pytest

from repro.errors import ConfigError, FaultInjectedError
from repro.resil import FAULT_SITES, FaultInjector, FaultSpec, fault_phase


class TestFaultSpec:
    def test_requires_exactly_one_trigger(self):
        with pytest.raises(ConfigError):
            FaultSpec("dma.get")
        with pytest.raises(ConfigError):
            FaultSpec("dma.get", nth=1, probability=0.5)

    def test_rejects_unknown_site(self):
        with pytest.raises(ConfigError):
            FaultSpec("dma.scatter", nth=1)

    def test_nth_is_one_based(self):
        with pytest.raises(ConfigError):
            FaultSpec("dma.get", nth=0)

    def test_probability_bounds(self):
        with pytest.raises(ConfigError):
            FaultSpec("dma.get", probability=1.5)

    def test_nth_specs_are_one_shot(self):
        assert FaultSpec("compute", nth=3).fire_limit == 1
        assert FaultSpec("compute", probability=0.5).fire_limit is None
        assert FaultSpec("compute", probability=0.5, max_fires=2).fire_limit == 2


class TestFaultInjector:
    def test_nth_fires_on_exact_call(self):
        inj = FaultInjector([FaultSpec("dma.get", nth=3)])
        inj.fire("dma.get")
        inj.fire("dma.get")
        with pytest.raises(FaultInjectedError) as exc_info:
            inj.fire("dma.get")
        assert exc_info.value.site == "dma.get"
        # one-shot: never fires again
        for _ in range(10):
            inj.fire("dma.get")
        assert inj.stats.injected == 1
        assert inj.stats.by_site == {"dma.get": 1}

    def test_site_filter(self):
        inj = FaultInjector([FaultSpec("regcomm", nth=1)])
        inj.fire("dma.get")
        inj.fire("compute")
        with pytest.raises(FaultInjectedError):
            inj.fire("regcomm")

    def test_cg_filter(self):
        inj = FaultInjector([FaultSpec("compute", nth=1, cg=2)])
        inj.fire("compute", cg=0)
        inj.fire("compute")  # no CG named: cannot match a cg-filtered spec
        with pytest.raises(FaultInjectedError) as exc_info:
            inj.fire("compute", cg=2)
        assert exc_info.value.cg == 2

    def test_phase_filter(self):
        inj = FaultInjector([FaultSpec("dma.get", nth=1, phase="kernel")])
        inj.fire("dma.get")
        with fault_phase(inj, "stage_A"):
            inj.fire("dma.get")
        with fault_phase(inj, "kernel"):
            with pytest.raises(FaultInjectedError) as exc_info:
                inj.fire("dma.get")
        assert exc_info.value.phase == "kernel"
        assert inj.current_phase is None

    def test_probability_is_seed_deterministic(self):
        def schedule(seed):
            inj = FaultInjector([FaultSpec("compute", probability=0.3)],
                                seed=seed)
            fired = []
            for i in range(50):
                try:
                    inj.fire("compute")
                except FaultInjectedError:
                    fired.append(i)
            return fired

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)

    def test_reset_replays_identically(self):
        inj = FaultInjector([FaultSpec("compute", probability=0.5)], seed=3)

        def run():
            fired = []
            for i in range(20):
                try:
                    inj.fire("compute")
                except FaultInjectedError:
                    fired.append(i)
            return fired

        first = run()
        inj.reset()
        assert run() == first
        assert inj.stats.calls == 20

    def test_disabled_scope(self):
        inj = FaultInjector([FaultSpec("compute", nth=1)])
        with inj.disabled():
            inj.fire("compute")
            assert not inj.fires_remaining()
        assert inj.stats.calls == 0
        with pytest.raises(FaultInjectedError):
            inj.fire("compute")

    def test_fires_remaining(self):
        inj = FaultInjector([FaultSpec("compute", nth=1)])
        assert inj.fires_remaining()
        with pytest.raises(FaultInjectedError):
            inj.fire("compute")
        assert not inj.fires_remaining()

    def test_rejects_non_spec(self):
        with pytest.raises(ConfigError):
            FaultInjector([{"site": "compute"}])


class TestDeviceWiring:
    """attach_injector threads one injector through a CG's devices."""

    def test_core_group_attach(self):
        from repro.arch.core_group import CoreGroup

        cg = CoreGroup()
        inj = FaultInjector([FaultSpec("memory.store", nth=1)])
        cg.attach_injector(inj, cg_index=1)
        assert cg.memory.injector is inj and cg.memory.cg_index == 1
        assert cg.dma.injector is inj and cg.regcomm.injector is inj
        with pytest.raises(FaultInjectedError) as exc_info:
            cg.memory.store("x", np.ones((8, 8)))
        assert exc_info.value.cg == 1
        # the fault fired before any byte was stored
        assert not any(h.name == "x" for h in cg.memory.handles())
        cg.attach_injector(None)
        cg.memory.store("x", np.ones((8, 8)))

    def test_processor_attach_tags_cg_indices(self):
        from repro.multi.processor import SW26010Processor

        proc = SW26010Processor()
        inj = FaultInjector([FaultSpec("memory.store", nth=1, cg=3)])
        proc.attach_injector(inj)
        proc.cg(0).memory.store("ok", np.ones((4, 4)))
        with pytest.raises(FaultInjectedError):
            proc.cg(3).memory.store("boom", np.ones((4, 4)))


class TestEngineFirePoints:
    """Both engines hit dma/regcomm/compute sites for the same program."""

    @pytest.mark.parametrize("engine", ["device", "vectorized"])
    @pytest.mark.parametrize("site",
                             ["dma.get", "dma.put", "regcomm", "compute"])
    def test_first_fault_raises_site(self, engine, site):
        from repro.arch.core_group import CoreGroup
        from repro.core.api import dgemm
        from repro.core.params import BlockingParams

        params = BlockingParams.small(double_buffered=True)
        rng = np.random.default_rng(0)
        a = rng.standard_normal((params.b_m, params.b_k))
        b = rng.standard_normal((params.b_k, params.b_n))
        cg = CoreGroup()
        cg.attach_injector(FaultInjector([FaultSpec(site, nth=1)]))
        with pytest.raises(FaultInjectedError) as exc_info:
            dgemm(a, b, params=params, core_group=cg, engine=engine)
        assert exc_info.value.site == site
        # staging scope freed everything despite the raise
        assert cg.memory.used_bytes == 0

    def test_kernel_phase_scopes_both_engines(self):
        from repro.arch.core_group import CoreGroup
        from repro.core.api import dgemm
        from repro.core.params import BlockingParams

        params = BlockingParams.small(double_buffered=True)
        rng = np.random.default_rng(1)
        a = rng.standard_normal((params.b_m, params.b_k))
        b = rng.standard_normal((params.b_k, params.b_n))
        for engine in ("device", "vectorized"):
            cg = CoreGroup()
            cg.attach_injector(
                FaultInjector([FaultSpec("dma.get", nth=1, phase="kernel")])
            )
            with pytest.raises(FaultInjectedError) as exc_info:
                dgemm(a, b, params=params, core_group=cg, engine=engine)
            assert exc_info.value.phase == "kernel"

    def test_stage_phases_are_scoped(self):
        from repro.arch.core_group import CoreGroup
        from repro.core.api import dgemm
        from repro.core.params import BlockingParams

        params = BlockingParams.small(double_buffered=True)
        rng = np.random.default_rng(2)
        a = rng.standard_normal((params.b_m, params.b_k))
        b = rng.standard_normal((params.b_k, params.b_n))
        cg = CoreGroup()
        cg.attach_injector(
            FaultInjector([FaultSpec("memory.store", nth=1, phase="stage_B")])
        )
        with pytest.raises(FaultInjectedError) as exc_info:
            dgemm(a, b, params=params, core_group=cg)
        assert exc_info.value.phase == "stage_B"


def test_all_sites_are_reachable():
    """Every declared site has at least one live fire point."""
    from repro.core.session import Session
    from repro.core.params import BlockingParams
    from repro.workloads.matrices import mixed_batch

    params = BlockingParams.small(double_buffered=True)
    items = mixed_batch(4, params=params, seed=0)
    for site in FAULT_SITES:
        inj = FaultInjector([FaultSpec(site, nth=1)])
        with Session(params=params, n_core_groups=2, injector=inj) as s:
            s.batch(items)
        assert inj.stats.injected == 1, site
