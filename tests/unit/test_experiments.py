"""Unit tests for the experiment drivers (fast sanity; full claims live
in tests/integration/test_paper_claims.py)."""

import pytest

from repro.experiments import (
    ablations,
    fig4_dma_bandwidth,
    fig6_variants,
    fig7_shapes,
    sched_profile,
    table_blocksize,
)
from repro.experiments.runner import EXPERIMENTS, main, run_all


class TestFig4:
    def test_run_and_render(self):
        result = fig4_dma_bandwidth.run(sizes=(1536, 4608))
        assert len(result.pe_bandwidth) == 2
        text = fig4_dma_bandwidth.render(result).render()
        assert "PE_MODE" in text and "ROW_MODE" in text

    def test_verify_distribution_bytes(self):
        got = fig4_dma_bandwidth.verify_distribution_bytes()
        assert got["PE"] == got["ROW"] == got["block"]


class TestFig6:
    def test_structs(self):
        result = fig6_variants.run(sizes=(1536,))
        assert set(result.gflops) == {"RAW", "PE", "ROW", "DB", "SCHED"}
        assert result.sustained("SCHED") > 0
        assert fig6_variants.render(result).render()

    def test_headlines_render(self):
        result = fig6_variants.run(sizes=(1536, 3072))
        text = fig6_variants.render_headlines(result).render()
        assert "SCHED" in text and "deviation" in text

    def test_improvement_math(self):
        result = fig6_variants.run(sizes=(1536,))
        imp = result.improvement("SCHED", "DB")
        assert imp == pytest.approx(
            result.sustained("SCHED") / result.sustained("DB") - 1.0
        )


class TestFig7:
    def test_shapes_roundtrip(self):
        result = fig7_shapes.run(shapes=((1536, 9216, 9216), (9216, 9216, 9216)))
        assert len(result.gflops) == 2
        assert fig7_shapes.render(result).render()

    def test_spread(self):
        result = fig7_shapes.run()
        assert result.spread("m") > result.spread("n")


class TestBlocksize:
    def test_paper_constants(self):
        result = table_blocksize.run()
        assert result.min_b_n == pytest.approx(174.68, abs=0.05)
        assert result.register_tile == (4, 4)
        assert result.ldm_double == 7168
        assert table_blocksize.render(result).render()


class TestSchedProfile:
    def test_result_fields(self):
        result = sched_profile.run()
        assert result.scheduled.strip_cycles < result.naive.strip_cycles
        assert result.hand_cycles_per_iteration == pytest.approx(16.0)
        assert result.auto_cycles_per_iteration <= result.naive_cycles_per_iteration
        assert sched_profile.render(result).render()


class TestAblations:
    def test_reside_matrix_b_wins(self):
        traffic = ablations.reside_matrix_traffic(9216, 9216, 9216, 128, 256, 768)
        assert traffic["B (paper)"] < traffic["A"]
        assert traffic["B (paper)"] < traffic["C"]

    def test_register_tiles_4x4_feasible_1x16_not(self):
        rows = {(t.r_m, t.r_n): t for t in ablations.register_tile_throughput()}
        assert rows[(4, 4)].feasible
        assert not rows[(1, 16)].feasible
        assert rows[(4, 4)].reduction == pytest.approx(4.0)

    def test_split_sweep_peaks_at_2(self):
        rows = ablations.bk_bn_split_sweep()
        best = max(rows, key=lambda r: r[3])
        assert best[0] == 2.0

    def test_double_buffer_ldm_table(self):
        rows = {r[0]: r for r in ablations.double_buffer_ldm()}
        assert rows[48][2] is True      # single buffered pN=48 fits
        assert rows[48][4] is False     # double buffered pN=48 does not
        assert rows[32][4] is True      # double buffered pN=32 fits

    def test_renders(self):
        assert ablations.render_reside_matrix().render()
        assert ablations.render_register_tiles().render()
        assert ablations.render_split_sweep().render()
        assert ablations.render_double_buffer_ldm().render()


class TestRunner:
    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "fig4", "fig6", "fig7", "blocksize", "sched", "ablations",
            "cache", "multicg", "scheduler", "hpl", "robustness",
            "numerics", "charts", "future",
        }

    def test_cli_single_experiment(self, capsys):
        assert main(["blocksize"]) == 0
        out = capsys.readouterr().out
        assert "Sec III-C" in out

    def test_run_all_contains_every_title(self):
        text = run_all()
        for marker in ("Figure 4", "Figure 6", "Figure 7", "Sec III-C",
                       "Sec IV-C", "A1", "A2", "A3", "A4"):
            assert marker in text
