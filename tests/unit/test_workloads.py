"""Unit tests for workload generators and shape sets."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.workloads.matrices import (
    gemm_operands,
    hilbert_like,
    mixed_batch,
    random_matrix,
)
from repro.workloads.shapes import FIG4_SIZES, FIG6_SIZES, FIG7_SHAPES, functional_shapes


class TestMatrices:
    def test_random_matrix_deterministic(self):
        a = random_matrix(8, 8, seed=7)
        b = random_matrix(8, 8, seed=7)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(random_matrix(8, 8, 0), random_matrix(8, 8, 1))

    def test_fortran_order(self):
        assert random_matrix(4, 4).flags.f_contiguous

    def test_scale(self):
        a = random_matrix(100, 100, scale=10.0)
        assert a.std() > 5.0

    def test_gemm_operands_shapes(self):
        a, b, c = gemm_operands(8, 12, 16)
        assert a.shape == (8, 16) and b.shape == (16, 12) and c.shape == (8, 12)

    def test_operands_independent(self):
        a, b, c = gemm_operands(8, 8, 8)
        assert not np.array_equal(a, b[: 8, : 8])

    def test_hilbert_like(self):
        h = hilbert_like(3, 3)
        assert h[0, 0] == 1.0
        assert h[1, 1] == pytest.approx(1.0 / 3.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            random_matrix(0, 4)
        with pytest.raises(ConfigError):
            hilbert_like(4, -1)
        with pytest.raises(ConfigError):
            mixed_batch(0)

    def test_mixed_batch_is_mixed_and_deterministic(self):
        items = mixed_batch(8, seed=3)
        again = mixed_batch(8, seed=3)
        assert len(items) == 8
        shapes = {(i.a.shape, i.b.shape) for i in items}
        assert len(shapes) >= 3
        assert all(
            np.array_equal(x.a, y.a) and np.array_equal(x.b, y.b)
            for x, y in zip(items, again)
        )
        assert all(i.a.shape[1] == i.b.shape[0] for i in items)


class TestShapes:
    def test_fig6_sweep(self):
        assert FIG6_SIZES[0] == 1536
        assert FIG6_SIZES[-1] == 15360
        assert len(FIG6_SIZES) == 10
        assert all(s % 1536 == 0 for s in FIG6_SIZES)

    def test_fig4_matches_fig6_axis(self):
        assert FIG4_SIZES == FIG6_SIZES

    def test_fig7_all_block_aligned(self):
        for m, n, k in FIG7_SHAPES:
            assert m % 128 == 0 and n % 256 == 0 and k % 768 == 0

    def test_fig7_covers_each_dimension(self):
        ms = {s for s in FIG7_SHAPES if s[1] == 9216 and s[2] == 9216}
        assert len(ms) >= 4

    def test_functional_shapes(self):
        shapes = functional_shapes(128, 64, 128, max_blocks=2)
        assert (128, 64, 128) in shapes
        assert (256, 128, 256) in shapes
        assert len(shapes) == 8
