"""Unit tests for the LDM scratchpad allocator."""

import pytest

from repro.arch.ldm import LDM
from repro.errors import LDMAllocationError


@pytest.fixture()
def ldm() -> LDM:
    return LDM()


class TestCapacity:
    def test_capacity_is_64k(self, ldm):
        assert ldm.capacity_bytes == 64 * 1024

    def test_alloc_accounts_bytes(self, ldm):
        ldm.alloc("a", (16, 96))
        assert ldm.used_bytes == 16 * 96 * 8
        assert ldm.free_bytes == 64 * 1024 - 16 * 96 * 8

    def test_overflow_raises(self, ldm):
        with pytest.raises(LDMAllocationError):
            ldm.alloc("big", (100, 100))  # 80 KB > 64 KB

    def test_paper_single_buffered_set_fits(self, ldm):
        # pM=16, pN=48, pK=96: 6912 doubles = 55296 B
        ldm.alloc("A", (16, 96))
        ldm.alloc("B", (96, 48))
        ldm.alloc("C", (16, 48))
        assert ldm.used_bytes == 6912 * 8

    def test_paper_double_buffered_pn48_overflows(self, ldm):
        ldm.alloc("A0", (16, 96))
        ldm.alloc("A1", (16, 96))
        ldm.alloc("C0", (16, 48))
        ldm.alloc("C1", (16, 48))
        with pytest.raises(LDMAllocationError):
            ldm.alloc("B", (96, 48))  # 9216 doubles total > 8192

    def test_paper_double_buffered_pn32_fits(self, ldm):
        ldm.alloc("A0", (16, 96))
        ldm.alloc("A1", (16, 96))
        ldm.alloc("C0", (16, 32))
        ldm.alloc("C1", (16, 32))
        ldm.alloc("B", (96, 32))
        assert ldm.used_bytes == 7168 * 8


class TestLifecycle:
    def test_duplicate_name_rejected(self, ldm):
        ldm.alloc("a", (4, 4))
        with pytest.raises(LDMAllocationError):
            ldm.alloc("a", (4, 4))

    def test_free_returns_budget(self, ldm):
        ldm.alloc("a", (16, 16))
        ldm.free("a")
        assert ldm.used_bytes == 0
        assert "a" not in ldm

    def test_free_unknown_raises(self, ldm):
        with pytest.raises(KeyError):
            ldm.free("nope")

    def test_get_unknown_raises(self, ldm):
        with pytest.raises(KeyError):
            ldm.get("nope")

    def test_reset_clears_all(self, ldm):
        ldm.alloc("a", (4, 4))
        ldm.alloc("b", (4, 4))
        ldm.reset()
        assert ldm.used_bytes == 0
        assert ldm.names() == []

    def test_high_water_survives_reset(self, ldm):
        ldm.alloc("a", (32, 32))
        peak = ldm.used_bytes
        ldm.reset()
        assert ldm.high_water_bytes == peak

    def test_buffers_zero_initialised_fortran(self, ldm):
        buf = ldm.alloc("a", (8, 8))
        assert buf.data.flags.f_contiguous
        assert buf.data.sum() == 0.0
        assert buf.shape == (8, 8)
