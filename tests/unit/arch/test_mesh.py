"""Unit tests for the CPE mesh topology."""

import pytest

from repro.arch.mesh import Coord, CPEMesh
from repro.errors import MeshError


@pytest.fixture()
def mesh() -> CPEMesh:
    return CPEMesh()


class TestGeometry:
    def test_size(self, mesh):
        assert mesh.size == 64
        assert mesh.rows == 8 and mesh.cols == 8

    def test_coords_row_major(self, mesh):
        coords = list(mesh.coords())
        assert len(coords) == 64
        assert coords[0] == Coord(0, 0)
        assert coords[7] == Coord(0, 7)
        assert coords[8] == Coord(1, 0)
        assert coords[-1] == Coord(7, 7)

    def test_row_members(self, mesh):
        members = mesh.row_members(3)
        assert members == [Coord(3, j) for j in range(8)]

    def test_col_members(self, mesh):
        members = mesh.col_members(5)
        assert members == [Coord(i, 5) for i in range(8)]

    def test_bad_row_col(self, mesh):
        with pytest.raises(MeshError):
            mesh.row_members(8)
        with pytest.raises(MeshError):
            mesh.col_members(-1)


class TestValidation:
    def test_check_normalises_tuples(self, mesh):
        coord = mesh.check((2, 3))
        assert isinstance(coord, Coord)
        assert coord == Coord(2, 3)

    @pytest.mark.parametrize("bad", [(-1, 0), (0, -1), (8, 0), (0, 8)])
    def test_check_rejects_out_of_mesh(self, mesh, bad):
        with pytest.raises(MeshError):
            mesh.check(Coord(*bad))


class TestLinearIndex:
    def test_matches_athread_numbering(self, mesh):
        assert mesh.linear_index(Coord(0, 0)) == 0
        assert mesh.linear_index(Coord(1, 0)) == 8
        assert mesh.linear_index(Coord(7, 7)) == 63

    def test_roundtrip(self, mesh):
        for idx in range(64):
            assert mesh.linear_index(mesh.from_linear(idx)) == idx

    def test_from_linear_bounds(self, mesh):
        with pytest.raises(MeshError):
            mesh.from_linear(64)
