"""Unit tests for the DMA engine: modes, alignment, distribution."""

import numpy as np
import pytest

from repro.arch.core_group import CoreGroup
from repro.arch.dma import (
    DMADescriptor,
    DMADirection,
    DMAMode,
    row_mode_owner_rows,
)
from repro.errors import AlignmentError, DMAError, UnsupportedModeError


@pytest.fixture()
def loaded_cg(cg):
    """A core group with a 128x96 matrix and per-CPE buffers."""
    arr = np.arange(128 * 96, dtype=float).reshape(128, 96, order="F")
    handle = cg.memory.store("M", arr)
    for cpe in cg.cpes():
        cpe.ldm.alloc("pe", (16, 96))
        cpe.ldm.alloc("row", (16, 96))
    return cg, handle, arr


class TestOwnerRows:
    def test_cpe0_gets_first_pair_of_each_group(self):
        rows = row_mode_owner_rows(32, 0)
        assert list(rows) == [0, 1, 16, 17]

    def test_cpe7_gets_last_pair(self):
        rows = row_mode_owner_rows(32, 7)
        assert list(rows) == [14, 15, 30, 31]

    def test_partition_is_exact(self):
        all_rows = np.concatenate([row_mode_owner_rows(128, j) for j in range(8)])
        assert sorted(all_rows) == list(range(128))

    def test_requires_multiple_of_16(self):
        with pytest.raises(AlignmentError):
            row_mode_owner_rows(24, 0)


class TestPEMode:
    def test_get_copies_submatrix(self, loaded_cg):
        cg, handle, arr = loaded_cg
        buf = cg.cpe((0, 0)).ldm.get("pe")
        cg.dma.pe_get(handle, 16, 32, 16, 8, buf)
        assert np.array_equal(buf.data[:16, :8], arr[16:32, 32:40])

    def test_put_writes_back(self, loaded_cg):
        cg, handle, _ = loaded_cg
        buf = cg.cpe((0, 0)).ldm.get("pe")
        buf.data[:] = -1.0
        cg.dma.pe_put(handle, 0, 0, 16, 96, buf)
        assert np.all(cg.memory.array(handle)[:16, :] == -1.0)

    def test_reply_counts(self, loaded_cg):
        cg, handle, _ = loaded_cg
        buf = cg.cpe((0, 0)).ldm.get("pe")
        reply = cg.dma.pe_get(handle, 0, 0, 16, 96, buf)
        assert reply.nbytes == 16 * 96 * 8
        assert reply.transactions == reply.nbytes // 128
        assert reply.segments == 96
        assert reply.bytes_per_segment == 128

    def test_out_of_bounds_region(self, loaded_cg):
        cg, handle, _ = loaded_cg
        buf = cg.cpe((0, 0)).ldm.get("pe")
        with pytest.raises(DMAError):
            cg.dma.pe_get(handle, 120, 0, 16, 96, buf)

    def test_buffer_too_small(self, loaded_cg):
        cg, handle, _ = loaded_cg
        buf = cg.cpe((0, 0)).ldm.get("pe")
        with pytest.raises(DMAError):
            cg.dma.pe_get(handle, 0, 0, 32, 96, buf)


class TestAlignment:
    def test_unaligned_row_offset(self, loaded_cg):
        cg, handle, _ = loaded_cg
        buf = cg.cpe((0, 0)).ldm.get("pe")
        with pytest.raises(AlignmentError):
            cg.dma.pe_get(handle, 8, 0, 16, 8, buf)  # 64 B offset

    def test_unaligned_segment_length(self, loaded_cg):
        cg, handle, _ = loaded_cg
        buf = cg.cpe((0, 0)).ldm.get("pe")
        with pytest.raises(AlignmentError):
            cg.dma.pe_get(handle, 0, 0, 8, 8, buf)  # 64 B segments

    def test_unaligned_leading_dimension(self, cg):
        handle = cg.memory.store("odd", np.zeros((24, 8), order="F"))
        cg.cpe((0, 0)).ldm.alloc("b", (16, 8))
        with pytest.raises(AlignmentError):
            cg.dma.pe_get(handle, 0, 0, 16, 8, cg.cpe((0, 0)).ldm.get("b"))


class TestRowMode:
    def test_distribution_matches_figure5(self, loaded_cg):
        cg, handle, arr = loaded_cg
        bufs = cg.row_ldm_buffers(0, "row")
        cg.dma.row_get(handle, 0, 0, 128, 96, bufs)
        for j in range(8):
            mine = row_mode_owner_rows(128, j)
            assert np.array_equal(cg.cpe((0, j)).ldm.get("row").data, arr[mine, :])

    def test_roundtrip_identity(self, loaded_cg):
        cg, handle, arr = loaded_cg
        bufs = cg.row_ldm_buffers(2, "row")
        cg.dma.row_get(handle, 0, 0, 128, 96, bufs)
        cg.memory.array(handle)[:] = 0.0
        cg.dma.row_put(handle, 0, 0, 128, 96, bufs)
        assert np.array_equal(cg.memory.array(handle), arr)

    def test_needs_eight_buffers(self, loaded_cg):
        cg, handle, _ = loaded_cg
        bufs = cg.row_ldm_buffers(0, "row")[:4]
        with pytest.raises(DMAError):
            cg.dma.row_get(handle, 0, 0, 128, 96, bufs)

    def test_rows_must_be_multiple_of_16(self, cg):
        handle = cg.memory.store("m", np.zeros((144, 8), order="F"))
        for cpe in cg.cpes():
            cpe.ldm.alloc("r", (18, 8))
        with pytest.raises(AlignmentError):
            # 136 rows: aligned in bytes (17 transactions) but not a
            # multiple of the 16-double interleave group
            cg.dma.row_get(handle, 0, 0, 136, 8, cg.row_ldm_buffers(0, "r"))


class TestBcastMode:
    def test_replicates_to_all_cpes(self, loaded_cg):
        cg, handle, arr = loaded_cg
        bufs = [cpe.ldm.get("pe") for cpe in cg.cpes()]
        reply = cg.dma.bcast_get(handle, 16, 8, 16, 8, bufs)
        for cpe in cg.cpes():
            assert np.array_equal(cpe.ldm.get("pe").data[:16, :8], arr[16:32, 8:16])
        # memory is read once: transactions match a single copy
        assert reply.transactions == 16 * 8 * 8 // 128

    def test_needs_all_64_buffers(self, loaded_cg):
        cg, handle, _ = loaded_cg
        with pytest.raises(DMAError):
            cg.dma.bcast_get(handle, 0, 0, 16, 8, [cg.cpe((0, 0)).ldm.get("pe")])

    def test_bcast_vs_sharing_traffic(self, loaded_cg):
        """Broadcast-loading what the sharing scheme communicates
        on-mesh would multiply main-memory traffic 64x."""
        cg, handle, _ = loaded_cg
        bufs = [cpe.ldm.get("pe") for cpe in cg.cpes()]
        bcast = cg.dma.bcast_get(handle, 0, 0, 16, 96, bufs)
        per_cpe_copy = cg.dma.pe_get(handle, 0, 0, 16, 96, bufs[0])
        assert bcast.nbytes == per_cpe_copy.nbytes
        # loading each CPE separately costs 64x the transactions
        assert 64 * bcast.transactions == 64 * per_cpe_copy.transactions


class TestUnsupportedModes:
    @pytest.mark.parametrize(
        "mode,direction",
        [
            (DMAMode.BROW, DMADirection.GET),
            (DMAMode.RANK, DMADirection.GET),
            (DMAMode.BCAST, DMADirection.PUT),  # broadcast store is meaningless
        ],
    )
    def test_raise_by_design(self, loaded_cg, mode, direction):
        cg, handle, _ = loaded_cg
        desc = DMADescriptor(mode, direction, handle, 0, 0, 16, 8)
        with pytest.raises(UnsupportedModeError):
            cg.dma.execute(desc)


class TestStats:
    def test_accumulation(self, loaded_cg):
        cg, handle, _ = loaded_cg
        buf = cg.cpe((0, 0)).ldm.get("pe")
        cg.dma.pe_get(handle, 0, 0, 16, 96, buf)
        cg.dma.pe_put(handle, 0, 0, 16, 96, buf)
        stats = cg.dma.stats
        assert stats.gets == 1 and stats.puts == 1
        assert stats.bytes_get == stats.bytes_put == 16 * 96 * 8
        assert stats.bytes_total == 2 * 16 * 96 * 8
        assert stats.by_mode["PE_MODE"] == stats.bytes_total
