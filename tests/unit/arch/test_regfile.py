"""Unit tests for the vector register file."""

import numpy as np
import pytest

from repro.arch.regfile import VectorRegisterFile
from repro.errors import RegisterFileError


@pytest.fixture()
def regs() -> VectorRegisterFile:
    return VectorRegisterFile()


class TestBasics:
    def test_geometry(self, regs):
        assert regs.n_registers == 32
        assert regs.lanes == 4

    def test_write_read_roundtrip(self, regs):
        regs.write(3, np.array([1.0, 2.0, 3.0, 4.0]))
        assert np.array_equal(regs.read(3), [1.0, 2.0, 3.0, 4.0])

    def test_read_is_copy(self, regs):
        regs.write(0, np.ones(4))
        out = regs.read(0)
        out[0] = 99.0
        assert regs.read(0)[0] == 1.0

    def test_splat_fills_lanes(self, regs):
        regs.splat(5, 2.5)
        assert np.array_equal(regs.read(5), [2.5] * 4)

    def test_out_of_range_index(self, regs):
        with pytest.raises(RegisterFileError):
            regs.read(32)
        with pytest.raises(RegisterFileError):
            regs.write(-1, np.zeros(4))

    def test_wrong_shape_write(self, regs):
        with pytest.raises(RegisterFileError):
            regs.write(0, np.zeros(3))

    def test_clear(self, regs):
        regs.write(0, np.ones(4))
        regs.clear()
        assert regs.read(0).sum() == 0.0


class TestFMA:
    def test_vmad_semantics(self, regs):
        regs.write(0, np.array([1.0, 2.0, 3.0, 4.0]))   # a
        regs.write(1, np.array([2.0, 2.0, 2.0, 2.0]))   # b
        regs.write(2, np.array([10.0, 10.0, 10.0, 10.0]))  # acc
        regs.fma(2, 0, 1, 2)
        assert np.array_equal(regs.read(2), [12.0, 14.0, 16.0, 18.0])

    def test_fma_validates_indices(self, regs):
        with pytest.raises(RegisterFileError):
            regs.fma(0, 0, 0, 40)


class TestBudget:
    def test_paper_tile_fits(self, regs):
        regs.budget_check(4, 4)  # 24 < 32

    def test_5x5_rejected(self, regs):
        with pytest.raises(RegisterFileError):
            regs.budget_check(5, 5)  # 35 >= 32

    def test_strict_inequality(self, regs):
        # 2x10 needs exactly 32 registers; the paper's constraint is
        # strict (<), so this must fail
        with pytest.raises(RegisterFileError):
            regs.budget_check(2, 10)

    def test_just_under_budget_passes(self, regs):
        regs.budget_check(5, 4)  # 29 < 32
