"""Unit + integration tests for the async DMA reply-counter interface."""

import numpy as np
import pytest

from repro.arch.dma_async import AsyncDMAEngine, ReplyCounter
from repro.errors import DMAError


@pytest.fixture()
def setup(cg):
    arr = np.asfortranarray(
        np.arange(64.0 * 32).reshape(64, 32, order="F")
    )
    handle = cg.memory.store("M", arr)
    cpe = cg.cpe((0, 0))
    cpe.ldm.alloc("t", (16, 8))
    return cg, handle, arr, AsyncDMAEngine(cg.dma), cpe.ldm.get("t")


class TestDeferredSemantics:
    def test_no_data_moves_before_wait(self, setup):
        cg, handle, arr, adma, buf = setup
        reply = ReplyCounter("r")
        adma.iget_pe(handle, 0, 0, 16, 8, buf, reply)
        assert buf.data.sum() == 0.0           # still stale
        assert adma.in_flight == 1
        adma.wait(reply, 1)
        assert np.array_equal(buf.data[:16, :8], arr[:16, :8])
        assert adma.in_flight == 0
        assert reply.count == 1

    def test_wait_completes_only_its_counter(self, setup):
        cg, handle, arr, adma, buf = setup
        cpe = cg.cpe((0, 1))
        cpe.ldm.alloc("t", (16, 8))
        other_buf = cpe.ldm.get("t")
        r1, r2 = ReplyCounter("r1"), ReplyCounter("r2")
        adma.iget_pe(handle, 0, 0, 16, 8, buf, r1)
        adma.iget_pe(handle, 16, 0, 16, 8, other_buf, r2)
        adma.wait(r1, 1)
        assert np.array_equal(buf.data[:16, :8], arr[:16, :8])
        assert other_buf.data.sum() == 0.0      # r2 still in flight
        adma.wait(r2, 1)
        assert np.array_equal(other_buf.data[:16, :8], arr[16:32, :8])

    def test_overwaiting_raises(self, setup):
        _, handle, _, adma, buf = setup
        reply = ReplyCounter()
        adma.iget_pe(handle, 0, 0, 16, 8, buf, reply)
        with pytest.raises(DMAError, match="never completes"):
            adma.wait(reply, 2)

    def test_flush_completes_everything(self, setup):
        _, handle, arr, adma, buf = setup
        reply = ReplyCounter()
        adma.iget_pe(handle, 0, 0, 16, 8, buf, reply)
        adma.flush()
        assert reply.count == 1
        assert np.array_equal(buf.data[:16, :8], arr[:16, :8])

    def test_quiescence_check(self, setup):
        _, handle, _, adma, buf = setup
        adma.assert_quiescent()
        adma.iget_pe(handle, 0, 0, 16, 8, buf, ReplyCounter())
        with pytest.raises(DMAError, match="in flight"):
            adma.assert_quiescent()

    def test_put_reads_buffer_at_completion(self, setup):
        """Overwriting an LDM buffer before the put completes is a
        race; the model resolves it as late-read (one legal schedule),
        so the *new* data lands — never silently both."""
        cg, handle, arr, adma, buf = setup
        reply = ReplyCounter()
        buf.data[:] = 1.0
        adma.iput_pe(handle, 0, 0, 16, 8, buf, reply)
        buf.data[:] = 2.0                        # race!
        adma.wait(reply, 1)
        assert np.all(cg.memory.array(handle)[:16, :8] == 2.0)

    def test_counter_reset(self):
        reply = ReplyCounter(count=3, issued=3)
        reply.reset()
        assert reply.count == 0 and reply.issued == 0


class TestAsyncDoubleBufferedLoop:
    """A miniature Algorithm 2 through the async interface."""

    def _run(self, cg, skip_wait: bool) -> tuple[np.ndarray, np.ndarray]:
        rng = np.random.default_rng(8)
        blocks = 4
        rows, cols = 16, 8
        a = np.asfortranarray(rng.standard_normal((blocks * rows, cols)))
        handle = cg.memory.store("A", a)
        out = cg.memory.allocate("OUT", blocks * rows, cols)
        cpe = cg.cpe((0, 0))
        for slot in range(2):
            if f"s{slot}" not in cpe.ldm:
                cpe.ldm.alloc(f"s{slot}", (rows, cols))
        adma = AsyncDMAEngine(cg.dma)
        replies = [ReplyCounter("s0"), ReplyCounter("s1")]

        def load(i):
            slot = i % 2
            replies[slot].reset()
            adma.iget_pe(handle, i * rows, 0, rows, cols,
                         cpe.ldm.get(f"s{slot}"), replies[slot])

        def consume(i):
            slot = i % 2
            if not skip_wait:
                adma.wait(replies[slot], 1)
            buf = cpe.ldm.get(f"s{slot}")
            result = 2.0 * buf.data
            cg.memory.array(out)[i * rows : (i + 1) * rows, :] = result

        load(0)
        for i in range(blocks):
            if i + 1 < blocks:
                load(i + 1)   # prefetch next while "computing" current
            consume(i)
        adma.flush()
        return cg.memory.array(out).copy(), 2.0 * a

    def test_correct_waits_give_exact_result(self, cg):
        got, expected = self._run(cg, skip_wait=False)
        assert np.array_equal(got, expected)

    def test_skipped_wait_consumes_stale_buffers(self, cg):
        got, expected = self._run(cg, skip_wait=True)
        assert not np.allclose(got, expected)
