"""Unit tests for main memory."""

import numpy as np
import pytest

from repro.arch.config import SW26010Spec
from repro.arch.memory import MainMemory, MatrixHandle
from repro.errors import AlignmentError, ConfigError


@pytest.fixture()
def mem() -> MainMemory:
    return MainMemory()


class TestStore:
    def test_store_returns_handle(self, mem):
        h = mem.store("A", np.ones((32, 16)))
        assert h == MatrixHandle("A", 32, 16)
        assert h.nbytes == 32 * 16 * 8

    def test_stored_column_major(self, mem):
        h = mem.store("A", np.arange(12.0).reshape(3, 4))
        assert mem.array(h).flags.f_contiguous

    def test_store_copies_input(self, mem):
        src = np.ones((4, 4))
        h = mem.store("A", src)
        src[0, 0] = 99.0
        assert mem.array(h)[0, 0] == 1.0

    def test_rejects_non_2d(self, mem):
        with pytest.raises(ConfigError):
            mem.store("A", np.ones(5))

    def test_overwrite_same_name_reuses_budget(self, mem):
        mem.store("A", np.ones((16, 16)))
        used = mem.used_bytes
        mem.store("A", np.zeros((16, 16)))
        assert mem.used_bytes == used

    def test_budget_enforced(self):
        small = SW26010Spec(main_memory_bytes=1024)
        mem = MainMemory(small)
        with pytest.raises(MemoryError):
            mem.store("A", np.ones((64, 64)))

    def test_failed_store_keeps_old_matrix(self):
        small = SW26010Spec(main_memory_bytes=3000)
        mem = MainMemory(small)
        mem.store("A", np.full((16, 16), 7.0))
        with pytest.raises(MemoryError):
            mem.store("A", np.ones((64, 64)))
        assert mem.array("A")[0, 0] == 7.0
        assert mem.used_bytes == 16 * 16 * 8


class TestAccess:
    def test_read_is_a_copy(self, mem):
        h = mem.store("A", np.zeros((4, 4)))
        out = mem.read(h)
        out[0, 0] = 5.0
        assert mem.array(h)[0, 0] == 0.0

    def test_unknown_name_raises(self, mem):
        with pytest.raises(KeyError):
            mem.array("nope")

    def test_free(self, mem):
        mem.store("A", np.zeros((4, 4)))
        mem.free("A")
        assert mem.used_bytes == 0
        with pytest.raises(KeyError):
            mem.free("A")

    def test_handles_listing(self, mem):
        mem.store("A", np.zeros((4, 4)))
        mem.store("B", np.zeros((2, 2)))
        assert {h.name for h in mem.handles()} == {"A", "B"}

    def test_allocate_zeroed(self, mem):
        h = mem.allocate("Z", 8, 8)
        assert np.all(mem.array(h) == 0.0)


class TestAlignment:
    def test_aligned_column(self, mem):
        h = mem.store("A", np.zeros((128, 4)))
        mem.check_dma_alignment(h, 1)  # 128*8 = 1024 B per column

    def test_misaligned_column(self, mem):
        h = mem.store("A", np.zeros((12, 4)))  # 96 B columns
        with pytest.raises(AlignmentError):
            mem.check_dma_alignment(h, 1)
