"""Unit tests for main memory."""

import numpy as np
import pytest

from repro.arch.config import SW26010Spec
from repro.arch.memory import MainMemory, MatrixHandle
from repro.errors import AlignmentError, ConfigError


@pytest.fixture()
def mem() -> MainMemory:
    return MainMemory()


class TestStore:
    def test_store_returns_handle(self, mem):
        h = mem.store("A", np.ones((32, 16)))
        assert h == MatrixHandle("A", 32, 16)
        assert h.nbytes == 32 * 16 * 8

    def test_stored_column_major(self, mem):
        h = mem.store("A", np.arange(12.0).reshape(3, 4))
        assert mem.array(h).flags.f_contiguous

    def test_store_copies_input(self, mem):
        src = np.ones((4, 4))
        h = mem.store("A", src)
        src[0, 0] = 99.0
        assert mem.array(h)[0, 0] == 1.0

    def test_rejects_non_2d(self, mem):
        with pytest.raises(ConfigError):
            mem.store("A", np.ones(5))

    def test_overwrite_same_name_reuses_budget(self, mem):
        mem.store("A", np.ones((16, 16)))
        used = mem.used_bytes
        mem.store("A", np.zeros((16, 16)))
        assert mem.used_bytes == used

    def test_overwrite_same_shape_reuses_allocation(self, mem):
        h = mem.store("A", np.ones((16, 16)))
        backing = mem.array(h)
        mem.store("A", np.full((16, 16), 4.0))
        assert mem.array("A") is backing  # documented in-place path
        assert backing[0, 0] == 4.0
        assert mem.stats.allocations == 1
        assert mem.stats.in_place_stores == 1

    def test_store_is_single_copy(self, mem):
        """Exactly one new array per fresh store — never the old
        asfortranarray + copy(order='F') double copy."""
        mem.store("A", np.ones((16, 16), order="C"))
        mem.store("B", np.ones((16, 16), order="F"))
        mem.store("C", np.ones((16, 16), dtype=np.float32))
        assert mem.stats.stores == 3
        assert mem.stats.allocations == 3

    def test_padded_store(self, mem):
        h = mem.store("A", np.ones((3, 2)), rows=8, cols=4)
        assert h.shape == (8, 4)
        arr = mem.array(h)
        assert np.all(arr[:3, :2] == 1.0)
        assert arr.sum() == 6.0  # border zeroed
        assert mem.used_bytes == 8 * 4 * 8

    def test_padded_store_rejects_too_small_target(self, mem):
        with pytest.raises(ConfigError):
            mem.store("A", np.ones((8, 8)), rows=4, cols=8)

    def test_store_zeros_requires_shape(self, mem):
        with pytest.raises(ConfigError):
            mem.store("A", None)

    def test_peak_bytes_high_water(self, mem):
        mem.store("A", np.ones((16, 16)))
        mem.store("B", np.ones((32, 32)))
        peak = mem.used_bytes
        mem.free("A")
        assert mem.used_bytes < peak
        assert mem.peak_bytes == peak
        assert mem.stats.frees == 1

    def test_budget_enforced(self):
        small = SW26010Spec(main_memory_bytes=1024)
        mem = MainMemory(small)
        with pytest.raises(MemoryError):
            mem.store("A", np.ones((64, 64)))

    def test_failed_store_keeps_old_matrix(self):
        small = SW26010Spec(main_memory_bytes=3000)
        mem = MainMemory(small)
        mem.store("A", np.full((16, 16), 7.0))
        with pytest.raises(MemoryError):
            mem.store("A", np.ones((64, 64)))
        assert mem.array("A")[0, 0] == 7.0
        assert mem.used_bytes == 16 * 16 * 8


class TestAccess:
    def test_read_is_a_copy(self, mem):
        h = mem.store("A", np.zeros((4, 4)))
        out = mem.read(h)
        out[0, 0] = 5.0
        assert mem.array(h)[0, 0] == 0.0

    def test_unknown_name_raises(self, mem):
        with pytest.raises(KeyError):
            mem.array("nope")

    def test_free(self, mem):
        mem.store("A", np.zeros((4, 4)))
        mem.free("A")
        assert mem.used_bytes == 0
        with pytest.raises(KeyError):
            mem.free("A")

    def test_handles_listing(self, mem):
        mem.store("A", np.zeros((4, 4)))
        mem.store("B", np.zeros((2, 2)))
        assert {h.name for h in mem.handles()} == {"A", "B"}

    def test_allocate_zeroed(self, mem):
        h = mem.allocate("Z", 8, 8)
        assert np.all(mem.array(h) == 0.0)


class TestAlignment:
    def test_aligned_column(self, mem):
        h = mem.store("A", np.zeros((128, 4)))
        mem.check_dma_alignment(h, 1)  # 128*8 = 1024 B per column

    def test_misaligned_column(self, mem):
        h = mem.store("A", np.zeros((12, 4)))  # 96 B columns
        with pytest.raises(AlignmentError):
            mem.check_dma_alignment(h, 1)
