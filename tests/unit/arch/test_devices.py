"""Unit tests for CPE / MPE / CoreGroup aggregation."""

import pytest

from repro.arch.core_group import CoreGroup
from repro.arch.mesh import Coord
from repro.errors import MeshError


class TestCPE:
    def test_coordinates(self, cg):
        cpe = cg.cpe((3, 5))
        assert cpe.row == 3 and cpe.col == 5
        assert cpe.coord == Coord(3, 5)

    def test_reset_clears_state(self, cg):
        cpe = cg.cpe((0, 0))
        cpe.ldm.alloc("x", (4, 4))
        cpe.regs.splat(0, 1.0)
        cpe.reset()
        assert cpe.ldm.used_bytes == 0
        assert cpe.regs.read(0).sum() == 0.0


class TestMPE:
    def test_spawn_counts(self, cg):
        cg.mpe.spawn(64)
        cg.mpe.spawn(64)
        assert cg.mpe.spawn_count == 2

    def test_spawn_requires_full_cluster(self, cg):
        with pytest.raises(ValueError):
            cg.mpe.spawn(32)


class TestCoreGroup:
    def test_has_64_cpes(self, cg):
        assert len(cg.cpes()) == 64

    def test_cpe_lookup_validates(self, cg):
        with pytest.raises(MeshError):
            cg.cpe((9, 0))

    def test_row_ldm_buffers_ordered_by_column(self, cg):
        for cpe in cg.cpes():
            cpe.ldm.alloc("t", (2, 2))
        bufs = cg.row_ldm_buffers(4, "t")
        assert len(bufs) == 8
        assert bufs[0] is cg.cpe((4, 0)).ldm.get("t")
        assert bufs[7] is cg.cpe((4, 7)).ldm.get("t")

    def test_reset_cpes(self, cg):
        for cpe in cg.cpes():
            cpe.ldm.alloc("t", (2, 2))
        cg.reset_cpes()
        assert all(c.ldm.used_bytes == 0 for c in cg.cpes())

    def test_peak_flops(self, cg):
        assert cg.peak_flops == pytest.approx(742.4e9)

    def test_fresh_groups_do_not_share_memory(self, spec):
        a, b = CoreGroup(spec), CoreGroup(spec)
        a.memory.allocate("x", 16, 16)
        assert b.memory.used_bytes == 0
