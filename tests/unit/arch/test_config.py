"""Unit tests for the SW26010 architecture spec."""

import pytest

from repro.arch.config import CPESpec, DMASpec, LatencySpec, SW26010Spec, DEFAULT_SPEC
from repro.errors import ConfigError


class TestCPESpec:
    def test_defaults_match_paper(self):
        cpe = CPESpec()
        assert cpe.simd_width == 4
        assert cpe.flops_per_cycle == 8
        assert cpe.vector_registers == 32
        assert cpe.ldm_bytes == 64 * 1024

    def test_flops_must_match_fma_width(self):
        with pytest.raises(ConfigError):
            CPESpec(simd_width=4, flops_per_cycle=4)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            CPESpec(ldm_bytes=0)


class TestDMASpec:
    def test_defaults_match_paper(self):
        dma = DMASpec()
        assert dma.transaction_bytes == 128
        assert dma.peak_bandwidth == 34e9
        assert dma.row_mode_slice_bytes == 16

    def test_row_slice_consistency(self):
        with pytest.raises(ConfigError):
            DMASpec(row_mode_slice_bytes=32)

    def test_transaction_must_be_multiple_of_16(self):
        with pytest.raises(ConfigError):
            DMASpec(transaction_bytes=100)


class TestLatencySpec:
    def test_paper_latencies(self):
        lat = LatencySpec()
        assert lat.vmad == 6
        assert lat.regcomm == 4

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            LatencySpec(vmad=0)


class TestSW26010Spec:
    def test_peak_is_742_4_gflops(self):
        assert DEFAULT_SPEC.peak_flops == pytest.approx(742.4e9)

    def test_n_cpes(self):
        assert DEFAULT_SPEC.n_cpes == 64

    def test_ldm_doubles(self):
        assert DEFAULT_SPEC.ldm_doubles == 8192

    def test_cycle_conversions_roundtrip(self):
        spec = SW26010Spec()
        assert spec.seconds(spec.cycles(1.5)) == pytest.approx(1.5)

    def test_rejects_bad_clock(self):
        with pytest.raises(ConfigError):
            SW26010Spec(clock_hz=0)

    def test_rejects_bad_mesh(self):
        with pytest.raises(ConfigError):
            SW26010Spec(mesh_rows=0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_SPEC.clock_hz = 2e9  # type: ignore[misc]
