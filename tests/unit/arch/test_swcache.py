"""Unit tests for the software-emulated LDM cache."""

import numpy as np
import pytest

from repro.arch.memory import MainMemory
from repro.arch.swcache import SoftwareCache
from repro.errors import ConfigError, LDMAllocationError


@pytest.fixture()
def setup():
    memory = MainMemory()
    matrix = np.asfortranarray(np.arange(64.0 * 32).reshape(64, 32, order="F"))
    handle = memory.store("M", matrix)
    cache = SoftwareCache(memory, handle, capacity_bytes=4096, line_doubles=16, ways=4)
    return memory, handle, matrix, cache


class TestGeometry:
    def test_sets_and_ways(self, setup):
        _, _, _, cache = setup
        assert cache.n_sets == 4096 // 128 // 4
        assert cache.ways == 4

    def test_rejects_bad_geometry(self):
        memory = MainMemory()
        handle = memory.store("M", np.zeros((16, 16), order="F"))
        with pytest.raises(ConfigError):
            SoftwareCache(memory, handle, capacity_bytes=100, line_doubles=16)
        with pytest.raises(ConfigError):
            SoftwareCache(memory, handle, capacity_bytes=0)

    def test_rejects_cache_larger_than_ldm(self):
        memory = MainMemory()
        handle = memory.store("M", np.zeros((16, 16), order="F"))
        with pytest.raises(LDMAllocationError):
            SoftwareCache(memory, handle, capacity_bytes=128 * 1024)


class TestReads:
    def test_read_returns_matrix_value(self, setup):
        _, _, matrix, cache = setup
        assert cache.read(5, 7) == matrix[5, 7]

    def test_first_access_misses_second_hits(self, setup):
        _, _, _, cache = setup
        cache.read(0, 0)
        assert cache.stats.misses == 1 and cache.stats.hits == 0
        cache.read(1, 0)  # same 16-double line (column-major)
        assert cache.stats.hits == 1

    def test_spatial_locality_within_line(self, setup):
        _, _, _, cache = setup
        for row in range(16):
            cache.read(row, 0)
        assert cache.stats.misses == 1
        assert cache.stats.hits == 15

    def test_out_of_bounds(self, setup):
        _, _, _, cache = setup
        with pytest.raises(IndexError):
            cache.read(64, 0)


class TestWrites:
    def test_write_back_on_flush(self, setup):
        memory, handle, _, cache = setup
        cache.write(3, 3, -99.0)
        cache.flush()
        assert memory.array(handle)[3, 3] == -99.0

    def test_write_visible_through_cache_before_flush(self, setup):
        _, _, _, cache = setup
        cache.write(3, 3, 42.0)
        assert cache.read(3, 3) == 42.0

    def test_dirty_eviction_writes_back(self):
        memory = MainMemory()
        handle = memory.store("M", np.zeros((1024, 1), order="F"))
        # direct mapped, 2 lines total: accesses alternate and evict
        cache = SoftwareCache(memory, handle, capacity_bytes=256,
                              line_doubles=16, ways=1)
        cache.write(0, 0, 7.0)
        # touch enough distinct lines mapping to set 0 to evict line 0
        for idx in range(1, 4):
            cache.read(idx * 32, 0)
        assert memory.array(handle)[0, 0] == 7.0
        assert cache.stats.writebacks >= 1

    def test_lru_order(self):
        memory = MainMemory()
        handle = memory.store("M", np.zeros((1024, 1), order="F"))
        cache = SoftwareCache(memory, handle, capacity_bytes=512,
                              line_doubles=16, ways=2)
        n_sets = cache.n_sets
        stride = 16 * n_sets  # rows between lines mapping to set 0
        cache.read(0, 0)            # line A
        cache.read(stride, 0)       # line B
        cache.read(0, 0)            # A again -> most recent
        cache.read(2 * stride, 0)   # C evicts B (LRU), not A
        cache.read(0, 0)
        assert cache.stats.hits == 2  # the two repeat reads of A


class TestAccounting:
    def test_resident_bytes_bounded(self, setup):
        _, _, matrix, cache = setup
        for col in range(matrix.shape[1]):
            for row in range(0, matrix.shape[0], 16):
                cache.read(row, col)
        assert cache.resident_bytes() <= 4096

    def test_hit_rate(self, setup):
        _, _, _, cache = setup
        assert cache.stats.hit_rate == 0.0
        cache.read(0, 0)
        cache.read(0, 0)
        assert cache.stats.hit_rate == 0.5
