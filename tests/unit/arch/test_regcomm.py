"""Unit tests for the register communication networks."""

import numpy as np
import pytest

from repro.arch.mesh import Coord, CPEMesh
from repro.arch.regcomm import ITEM_BYTES, Broadcast, RegisterComm
from repro.errors import RegisterCommError


@pytest.fixture()
def comm() -> RegisterComm:
    return RegisterComm(CPEMesh())


def payload(n_doubles: int = 4, fill: float = 1.0) -> np.ndarray:
    return np.full(n_doubles, fill)


class TestRowBroadcast:
    def test_delivers_to_row_only(self, comm):
        comm.row_broadcast(Coord(2, 3), payload(fill=7.0))
        for j in range(8):
            if j == 3:
                continue
            got = comm.receive_row(Coord(2, j))
            assert np.all(got.data == 7.0)
            assert got.src == Coord(2, 3)
        # other rows received nothing
        with pytest.raises(RegisterCommError):
            comm.receive_row(Coord(3, 0))

    def test_source_does_not_receive_own_broadcast(self, comm):
        comm.row_broadcast(Coord(1, 1), payload())
        with pytest.raises(RegisterCommError):
            comm.receive_row(Coord(1, 1))

    def test_fifo_order(self, comm):
        comm.row_broadcast(Coord(0, 0), payload(fill=1.0))
        comm.row_broadcast(Coord(0, 1), payload(fill=2.0))
        first = comm.receive_row(Coord(0, 5))
        second = comm.receive_row(Coord(0, 5))
        assert first.data[0] == 1.0 and second.data[0] == 2.0


class TestColBroadcast:
    def test_delivers_to_column_only(self, comm):
        comm.col_broadcast(Coord(4, 6), payload(fill=3.0))
        for i in range(8):
            if i == 4:
                continue
            assert comm.receive_col(Coord(i, 6)).data[0] == 3.0
        with pytest.raises(RegisterCommError):
            comm.receive_col(Coord(0, 5))


class TestValidation:
    def test_payload_must_be_256bit_multiple(self, comm):
        with pytest.raises(RegisterCommError):
            comm.row_broadcast(Coord(0, 0), np.ones(3))  # 24 B

    def test_empty_payload_rejected(self, comm):
        with pytest.raises(RegisterCommError):
            comm.row_broadcast(Coord(0, 0), np.empty(0))

    def test_payload_is_copied(self, comm):
        src = payload(fill=1.0)
        comm.row_broadcast(Coord(0, 0), src)
        src[:] = 99.0
        assert comm.receive_row(Coord(0, 1)).data[0] == 1.0

    def test_broadcast_item_count(self):
        bc = Broadcast(Coord(0, 0), np.ones(16))  # 128 B = 4 items
        assert bc.items == 128 // ITEM_BYTES


class TestDrainCheck:
    def test_drained_passes(self, comm):
        comm.row_broadcast(Coord(0, 0), payload())
        for j in range(1, 8):
            comm.receive_row(Coord(0, j))
        comm.assert_drained()

    def test_undrained_fails(self, comm):
        comm.row_broadcast(Coord(0, 0), payload())
        with pytest.raises(RegisterCommError, match="undrained"):
            comm.assert_drained()

    def test_pending_counts(self, comm):
        comm.row_broadcast(Coord(0, 0), payload())
        comm.col_broadcast(Coord(0, 1), payload())
        assert comm.pending(Coord(0, 1)) == (1, 0)
        assert comm.pending(Coord(5, 1)) == (0, 1)


class TestStats:
    def test_counters(self, comm):
        comm.row_broadcast(Coord(0, 0), payload(8))  # 64 B = 2 items
        comm.col_broadcast(Coord(0, 0), payload(4))
        assert comm.stats.row_broadcasts == 1
        assert comm.stats.col_broadcasts == 1
        assert comm.stats.row_items == 2
        assert comm.stats.col_items == 1
        assert comm.stats.bytes_moved == 64 * 7 + 32 * 7
        comm.receive_row(Coord(0, 3))
        assert comm.stats.receives == 1

    def test_merge(self, comm):
        other = RegisterComm(CPEMesh())
        other.row_broadcast(Coord(0, 0), payload())
        comm.stats.merge(other.stats)
        assert comm.stats.row_broadcasts == 1
