"""Unit tests for the API-reference generator."""

import importlib.util
import pathlib

import pytest

TOOL = pathlib.Path(__file__).resolve().parents[2] / "tools" / "gen_api_docs.py"


@pytest.fixture(scope="module")
def generate():
    spec = importlib.util.spec_from_file_location("gen_api_docs", TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.generate


@pytest.fixture(scope="module")
def text(generate):
    return generate()


class TestApiDocs:
    def test_covers_every_subpackage(self, text):
        for pkg in ("repro.arch", "repro.sim", "repro.isa", "repro.core",
                    "repro.perf", "repro.apps", "repro.tuning",
                    "repro.multi", "repro.experiments", "repro.workloads"):
            assert f"## `{pkg}" in text

    def test_key_symbols_documented(self, text):
        for symbol in ("dgemm(", "CoreGroup", "BlockingParams", "Estimator",
                       "profile_kernel", "blocked_lu", "autotune"):
            assert symbol in text

    def test_no_import_failures(self, text):
        assert "import failed" not in text

    def test_substantial(self, text):
        assert len(text.splitlines()) > 400

    def test_committed_file_up_to_date(self, text):
        committed = (TOOL.parents[1] / "docs" / "api.md").read_text()
        assert committed == text, (
            "docs/api.md is stale — run python tools/gen_api_docs.py"
        )
