"""Unit tests for the repro-dgemm CLI."""

import json

import pytest

from repro.cli import (
    build_ablate_parser,
    build_chaos_parser,
    build_metrics_parser,
    build_parser,
    build_schedule_parser,
    build_serve_parser,
    build_top_parser,
    build_trace_parser,
    build_tune_parser,
    main,
    parse_fault_spec,
)


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.variant == "SCHED"
        assert args.preset == "small"

    def test_variant_case_insensitive(self):
        args = build_parser().parse_args(["--variant", "db"])
        assert args.variant == "DB"

    def test_unknown_variant_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--variant", "TURBO"])


class TestMain:
    def test_functional_run_ok(self, capsys):
        assert main(["--variant", "PE"]) == 0
        out = capsys.readouterr().out
        assert "[OK]" in out and "DMA:" in out

    def test_estimate_only(self, capsys):
        assert main(["--estimate-only", "--preset", "paper",
                     "--m", "9216", "--n", "9216", "--k", "9216"]) == 0
        out = capsys.readouterr().out
        assert "Gflop/s" in out and "modelled" in out

    def test_bad_shape_returns_error_code(self, capsys):
        assert main(["--m", "100", "--n", "64", "--k", "128"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_pad_rescues_bad_shape(self, capsys):
        assert main(["--m", "120", "--n", "60", "--k", "120", "--pad"]) == 0
        assert "[OK]" in capsys.readouterr().out

    def test_gantt_output(self, capsys):
        assert main(["--variant", "SCHED", "--gantt"]) == 0
        out = capsys.readouterr().out
        assert "compute" in out and "dma" in out

    def test_gantt_skipped_for_raw(self, capsys):
        assert main(["--variant", "RAW", "--gantt"]) == 0
        assert "skipped" in capsys.readouterr().out

    def test_alpha_beta_plumbed(self, capsys):
        assert main(["--variant", "SCHED", "--alpha", "2.5",
                     "--beta", "-0.5"]) == 0
        assert "[OK]" in capsys.readouterr().out


class TestSchedule:
    def test_parser_defaults(self):
        args = build_schedule_parser().parse_args([])
        assert args.items == 16
        assert args.cgs == 4
        assert args.variant == "SCHED"

    def test_schedule_run(self, capsys):
        assert main(["schedule", "--items", "8", "--cgs", "4"]) == 0
        out = capsys.readouterr().out
        assert "executed 8 items" in out
        assert "CG0:" in out and "CG3:" in out
        assert "makespan" in out and "load-balance efficiency" in out

    def test_schedule_estimate_only_plans_without_executing(self, capsys):
        assert main(["schedule", "--items", "6", "--cgs", "2",
                     "--estimate-only"]) == 0
        out = capsys.readouterr().out
        assert "executed" not in out
        assert "CG1:" in out and "modeled speedup" in out

    def test_schedule_bad_pool_returns_error_code(self, capsys):
        assert main(["schedule", "--cgs", "9"]) == 2
        assert "error:" in capsys.readouterr().err


class TestTrace:
    def test_parser_defaults(self):
        args = build_trace_parser().parse_args([])
        assert args.items == 8
        assert args.cgs == 4
        assert args.format == "chrome"
        assert args.out == "trace.json"

    def test_smoke_emits_valid_chrome_trace(self, capsys, tmp_path):
        out = tmp_path / "trace.json"
        assert main(["trace", "--smoke", "--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "counters reconcile" in stdout
        payload = json.loads(out.read_text())
        events = payload["traceEvents"]
        names = {e["name"] for e in events if e["ph"] == "X"}
        assert {"session.batch", "cg_dispatch", "dgemm"} <= names

    def test_jsonl_format(self, capsys, tmp_path):
        out = tmp_path / "trace.jsonl"
        assert main(["trace", "--smoke", "--format", "jsonl",
                     "--out", str(out)]) == 0
        lines = out.read_text().splitlines()
        assert lines
        assert json.loads(lines[0])["name"] == "session.batch"

    def test_report_prints_phase_table(self, capsys, tmp_path):
        out = tmp_path / "trace.json"
        assert main(["trace", "--smoke", "--report",
                     "--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "phase" in stdout and "flop/B" in stdout


class TestChaos:
    def test_parser_defaults(self):
        args = build_chaos_parser().parse_args([])
        assert args.items == 12
        assert args.cgs == 4
        assert args.retries == 2
        assert args.fault == []
        assert not args.strict

    def test_parse_fault_spec(self):
        spec = parse_fault_spec("dma.get:nth=3")
        assert spec.site == "dma.get" and spec.nth == 3
        spec = parse_fault_spec("compute:p=0.05:max=2")
        assert spec.probability == 0.05 and spec.max_fires == 2
        spec = parse_fault_spec("cg:nth=1:cg=2")
        assert spec.cg == 2
        spec = parse_fault_spec("regcomm:p=1.0:phase=kernel")
        assert spec.phase == "kernel"
        # a bare site defaults to first-call
        assert parse_fault_spec("dma.put").nth == 1

    def test_parse_fault_spec_rejects_junk(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            parse_fault_spec("dma.get:speed=11")
        with pytest.raises(ConfigError):
            parse_fault_spec("dma.get:nth")
        with pytest.raises(ConfigError):
            parse_fault_spec("warp.core:nth=1")

    def test_smoke_recovers_bit_exactly(self, capsys):
        assert main(["chaos", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "matches the fault-free run" in out
        assert "injected" in out

    def test_single_fault_recovers(self, capsys):
        assert main(["chaos", "--items", "4", "--cgs", "2",
                     "--fault", "dma.get:nth=2"]) == 0
        out = capsys.readouterr().out
        assert "recovered" in out

    def test_no_faults_is_an_error(self, capsys):
        assert main(["chaos"]) == 2
        assert "no --fault" in capsys.readouterr().err

    def test_strict_fails_on_exhaustion(self, capsys):
        # persistent compute faults with no retries and no fallback
        # exhaust the ladder -> strict exit 1, structured reporting
        assert main(["chaos", "--items", "4", "--cgs", "2", "--strict",
                     "--retries", "0", "--no-fallback",
                     "--fault", "compute:p=1.0:max=2"]) == 1
        captured = capsys.readouterr()
        assert "exhausted" in captured.out
        assert "error:" in captured.err

    def test_bad_fault_spec_returns_error_code(self, capsys):
        assert main(["chaos", "--fault", "nope:nth=1"]) == 2
        assert "error:" in capsys.readouterr().err


class TestServe:
    def test_parser_defaults(self):
        args = build_serve_parser().parse_args([])
        assert args.requests == 32
        assert args.window > 0
        assert args.batch >= 2
        assert not args.smoke

    def test_smoke_serves_with_zero_drops(self, capsys):
        assert main(["serve", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "0 dropped, 0 failed" in out
        assert "served from cache" in out
        assert "session.batch dispatches" in out
        assert "reconciles with Session.stats()" in out
        # the SLO table made it out with percentile columns
        assert "p50 ms" in out and "p99 ms" in out

    def test_zero_window_skips_coalescing_check(self, capsys):
        assert main(["serve", "--smoke", "--window", "0",
                     "--cache-wave", "0"]) == 0
        out = capsys.readouterr().out
        assert "0 dropped" in out

    def test_smoke_writes_scrapes_that_validate(self, capsys, tmp_path):
        one = tmp_path / "one.prom"
        two = tmp_path / "two.prom"
        assert main([
            "serve", "--smoke",
            "--metrics-out", str(one), "--metrics-out2", str(two),
        ]) == 0
        out = capsys.readouterr().out
        assert "sampler:" in out and "(0 errors)" in out
        for path in (one, two):
            text = path.read_text()
            assert text.endswith("# EOF\n")
            assert "# TYPE repro_serve_admitted counter" in text


class TestMetrics:
    def test_parser_defaults(self):
        args = build_metrics_parser().parse_args([])
        assert args.items > 0
        assert args.url is None

    def test_two_scrapes_to_files(self, capsys, tmp_path):
        one = tmp_path / "one.prom"
        two = tmp_path / "two.prom"
        assert main([
            "metrics", "--items", "4",
            "--out", str(one), "--out2", str(two),
        ]) == 0
        first, second = one.read_text(), two.read_text()
        assert first.endswith("# EOF\n") and second.endswith("# EOF\n")

        def value(text, name):
            for line in text.splitlines():
                if line.startswith(name + " "):
                    return float(line.split()[1])
            return None

        # counters advance between the two scrapes.
        counter = "repro_session_items_total"
        assert value(first, counter) == 4.0
        assert value(second, counter) == 8.0

    def test_single_scrape_to_stdout(self, capsys):
        assert main(["metrics", "--items", "2"]) == 0
        out = capsys.readouterr().out
        assert "# EOF" in out


class TestTop:
    def test_parser_defaults(self):
        args = build_top_parser().parse_args([])
        assert args.interval > 0
        assert not args.once

    def test_once_renders_a_full_frame(self, capsys):
        assert main(["top", "--once", "--requests", "6"]) == 0
        out = capsys.readouterr().out
        assert "requests" in out
        assert "CG0" in out
        assert "alerts:" in out


class TestAblate:
    def test_parser_defaults(self):
        args = build_ablate_parser().parse_args([])
        assert args.items == 8
        assert args.reps == 3
        assert args.cgs == 4
        assert args.variant == "SCHED"
        assert args.engine == "stepwise"
        assert not args.smoke

    def test_small_run_renders_report(self, capsys, tmp_path):
        out = tmp_path / "ablation.json"
        assert main(["ablate", "--items", "4", "--reps", "1",
                     "--cgs", "2", "--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "ablation report" in stdout
        assert "importance" in stdout
        payload = json.loads(out.read_text())
        assert payload["version"] == 1
        assert payload["baseline"]["component"] == "baseline"
        components = {r["component"] for r in payload["runs"]}
        assert "stage" in components and "blocking" in components


class TestTune:
    def test_parser_defaults(self):
        args = build_tune_parser().parse_args([])
        assert args.shape == []
        assert args.variant == "SCHED"
        assert args.engine == "stepwise"
        assert args.top == 3
        assert not args.smoke

    def test_shape_parsed_and_repeatable(self):
        args = build_tune_parser().parse_args(
            ["--shape", "96x48x80", "--shape", "192X96X160"]
        )
        assert args.shape == [(96, 48, 80), (192, 96, 160)]

    def test_bad_shape_rejected(self):
        with pytest.raises(SystemExit):
            build_tune_parser().parse_args(["--shape", "96x48"])

    def test_tune_writes_valid_table(self, capsys, tmp_path):
        out = tmp_path / "TUNED.json"
        assert main(["tune", "--shape", "64x32x64", "--top", "1",
                     "--reps", "1", "--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "bit-identical" in stdout
        payload = json.loads(out.read_text())
        assert payload["version"] == 1
        assert len(payload["entries"]) == 1
        assert payload["entries"][0]["bin"] == [64, 32, 64]
