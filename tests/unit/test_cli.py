"""Unit tests for the repro-dgemm CLI."""

import json

import pytest

from repro.cli import (
    build_parser,
    build_schedule_parser,
    build_trace_parser,
    main,
)


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.variant == "SCHED"
        assert args.preset == "small"

    def test_variant_case_insensitive(self):
        args = build_parser().parse_args(["--variant", "db"])
        assert args.variant == "DB"

    def test_unknown_variant_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--variant", "TURBO"])


class TestMain:
    def test_functional_run_ok(self, capsys):
        assert main(["--variant", "PE"]) == 0
        out = capsys.readouterr().out
        assert "[OK]" in out and "DMA:" in out

    def test_estimate_only(self, capsys):
        assert main(["--estimate-only", "--preset", "paper",
                     "--m", "9216", "--n", "9216", "--k", "9216"]) == 0
        out = capsys.readouterr().out
        assert "Gflop/s" in out and "modelled" in out

    def test_bad_shape_returns_error_code(self, capsys):
        assert main(["--m", "100", "--n", "64", "--k", "128"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_pad_rescues_bad_shape(self, capsys):
        assert main(["--m", "120", "--n", "60", "--k", "120", "--pad"]) == 0
        assert "[OK]" in capsys.readouterr().out

    def test_gantt_output(self, capsys):
        assert main(["--variant", "SCHED", "--gantt"]) == 0
        out = capsys.readouterr().out
        assert "compute" in out and "dma" in out

    def test_gantt_skipped_for_raw(self, capsys):
        assert main(["--variant", "RAW", "--gantt"]) == 0
        assert "skipped" in capsys.readouterr().out

    def test_alpha_beta_plumbed(self, capsys):
        assert main(["--variant", "SCHED", "--alpha", "2.5",
                     "--beta", "-0.5"]) == 0
        assert "[OK]" in capsys.readouterr().out


class TestSchedule:
    def test_parser_defaults(self):
        args = build_schedule_parser().parse_args([])
        assert args.items == 16
        assert args.cgs == 4
        assert args.variant == "SCHED"

    def test_schedule_run(self, capsys):
        assert main(["schedule", "--items", "8", "--cgs", "4"]) == 0
        out = capsys.readouterr().out
        assert "executed 8 items" in out
        assert "CG0:" in out and "CG3:" in out
        assert "makespan" in out and "load-balance efficiency" in out

    def test_schedule_estimate_only_plans_without_executing(self, capsys):
        assert main(["schedule", "--items", "6", "--cgs", "2",
                     "--estimate-only"]) == 0
        out = capsys.readouterr().out
        assert "executed" not in out
        assert "CG1:" in out and "modeled speedup" in out

    def test_schedule_bad_pool_returns_error_code(self, capsys):
        assert main(["schedule", "--cgs", "9"]) == 2
        assert "error:" in capsys.readouterr().err


class TestTrace:
    def test_parser_defaults(self):
        args = build_trace_parser().parse_args([])
        assert args.items == 8
        assert args.cgs == 4
        assert args.format == "chrome"
        assert args.out == "trace.json"

    def test_smoke_emits_valid_chrome_trace(self, capsys, tmp_path):
        out = tmp_path / "trace.json"
        assert main(["trace", "--smoke", "--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "counters reconcile" in stdout
        payload = json.loads(out.read_text())
        events = payload["traceEvents"]
        names = {e["name"] for e in events if e["ph"] == "X"}
        assert {"session.batch", "cg_dispatch", "dgemm"} <= names

    def test_jsonl_format(self, capsys, tmp_path):
        out = tmp_path / "trace.jsonl"
        assert main(["trace", "--smoke", "--format", "jsonl",
                     "--out", str(out)]) == 0
        lines = out.read_text().splitlines()
        assert lines
        assert json.loads(lines[0])["name"] == "session.batch"

    def test_report_prints_phase_table(self, capsys, tmp_path):
        out = tmp_path / "trace.json"
        assert main(["trace", "--smoke", "--report",
                     "--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "phase" in stdout and "flop/B" in stdout
