"""Unit tests for the N1 numerical-accuracy experiment."""

import numpy as np
import pytest

from repro.experiments import numerics


@pytest.fixture(scope="module")
def cases():
    return numerics.run(k=128)


class TestNumerics:
    def test_all_cases_within_gamma_bound(self, cases):
        assert all(c.within_bound for c in cases)

    def test_errors_are_tiny_in_absolute_terms(self, cases):
        for case in cases:
            assert case.err_vs_longdouble < 1e-13

    def test_bound_grows_with_k(self):
        assert numerics.dot_error_bound(1024) > numerics.dot_error_bound(64)

    def test_bound_matches_definition(self):
        eps = float(np.finfo(np.float64).eps)
        k = 100
        assert numerics.dot_error_bound(k) == pytest.approx(
            k * eps / (1 - k * eps)
        )

    def test_case_coverage(self, cases):
        labels = {c.label for c in cases}
        assert "gaussian O(1)" in labels
        assert any("cancellation" in l for l in labels)
        assert len(cases) == 5

    def test_render(self, cases):
        text = numerics.render(cases).render()
        assert "gamma_k" in text and "NO" not in text
