"""Unit tests for the learned tuning table and the closed loop."""

import numpy as np
import pytest

from repro.core.params import BlockingParams
from repro.core.session import Session
from repro.errors import ConfigError
from repro.tuning import (
    TABLE_VERSION,
    TunedEntry,
    TuningTable,
    shape_bin,
    tune,
)
from repro.workloads.matrices import gemm_operands


def _entry(
    variant: str = "SCHED",
    engine: str = "stepwise",
    bin_shape: tuple = (128, 64, 128),
    triple: tuple = (16, 16, 32),
) -> TunedEntry:
    return TunedEntry(
        variant=variant,
        engine=engine,
        bin=bin_shape,
        p_m=triple[0],
        p_n=triple[1],
        p_k=triple[2],
        double_buffered=True,
        measured_gflops=5.0,
        modeled_gflops=150.0,
        estimator_rank=1,
    )


class TestShapeBin:
    def test_rounds_up_to_pow2(self):
        assert shape_bin(96, 48, 80) == (128, 64, 128)

    def test_pow2_maps_to_itself(self):
        assert shape_bin(256, 128, 256) == (256, 128, 256)

    def test_positive_required(self):
        with pytest.raises(ConfigError, match="positive"):
            shape_bin(0, 64, 64)


class TestRoundTrip:
    def test_persist_load_identical(self, tmp_path):
        table = TuningTable.from_entries(
            [_entry(), _entry(engine="device", triple=(16, 8, 16))]
        )
        path = table.save(tmp_path / "TUNED.json")
        loaded = TuningTable.load(path)
        assert loaded.version == TABLE_VERSION
        assert loaded.ldm_doubles == table.ldm_doubles
        assert loaded.entries == table.entries

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "TUNED.json"
        path.write_text('{"version": 99, "entries": []}')
        with pytest.raises(ConfigError, match="version"):
            TuningTable.load(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="does not exist"):
            TuningTable.load(tmp_path / "absent.json")

    def test_duplicate_keys_rejected(self):
        doc = TuningTable.from_entries([_entry()]).as_dict()
        doc["entries"].append(doc["entries"][0])
        with pytest.raises(ConfigError, match="duplicate"):
            TuningTable.from_dict(doc)

    def test_malformed_entry_rejected(self):
        with pytest.raises(ConfigError, match="malformed"):
            TunedEntry.from_dict({"variant": "SCHED"})


class TestResolve:
    def test_hit_returns_learned_entry(self):
        table = TuningTable.from_entries([_entry()])
        resolved = table.resolve("SCHED", "stepwise", 96, 48, 80)
        assert resolved.source == "tuned"
        assert (
            resolved.params.p_m,
            resolved.params.p_n,
            resolved.params.p_k,
        ) == (16, 16, 32)

    def test_miss_falls_back_to_estimator(self):
        """Missing bin -> the analytic prior's best candidate."""
        table = TuningTable()
        resolved = table.resolve("SCHED", "stepwise", 1024, 1024, 1024)
        assert resolved.source == "estimator"
        assert resolved.entry is None
        resolved.params.validate()  # feasible by construction

    def test_fallback_memoized(self):
        table = TuningTable()
        first = table.resolve("SCHED", "stepwise", 500, 500, 500)
        second = table.resolve("SCHED", "stepwise", 300, 400, 450)
        assert first.params is second.params  # same bin, one enumeration


class TestSessionConsultation:
    def test_tuned_session_bit_identical_to_explicit_params(self):
        entry = _entry()
        table = TuningTable.from_entries([entry])
        a, b, _ = gemm_operands(*entry.bin, seed=0)
        with Session(
            variant="SCHED", engine="stepwise", tuned=table, n_core_groups=1
        ) as tuned_session:
            via_table = tuned_session.dgemm(a, b)
        with Session(
            variant="SCHED",
            engine="stepwise",
            params=entry.params(),
            n_core_groups=1,
        ) as explicit_session:
            via_params = explicit_session.dgemm(a, b)
        assert np.array_equal(via_table, via_params)

    def test_explicit_params_win_over_table(self):
        """A session constructed with params= never consults the table."""
        entry = _entry(triple=(16, 16, 32))
        table = TuningTable.from_entries([entry])
        explicit = BlockingParams(p_m=16, p_n=8, p_k=16)
        a, b, _ = gemm_operands(64, 32, 64, seed=1)
        with Session(
            variant="SCHED",
            engine="stepwise",
            params=explicit,
            tuned=table,
            n_core_groups=1,
        ) as session:
            session.dgemm(a, b)
            assert session.scheduler.params == explicit

    def test_session_estimator_fallback_on_missing_bin(self):
        """An empty table still serves every shape via the estimator."""
        a, b, _ = gemm_operands(64, 32, 64, seed=2)
        with Session(
            variant="SCHED",
            engine="stepwise",
            tuned=TuningTable(),
            n_core_groups=1,
        ) as session:
            out = session.dgemm(a, b)
        assert np.isfinite(out).all()


class TestTuneLoop:
    def test_tune_produces_feasible_winner(self):
        table = tune([(64, 32, 64)], top=1, reps=1)
        assert len(table) == 1
        entry = table.entries[0]
        assert entry.bin == (64, 32, 64)
        entry.params().validate()
        assert entry.measured_gflops > 0
        assert entry.estimator_rank >= 0

    def test_same_bin_tuned_once(self):
        table = tune([(60, 30, 60), (64, 32, 64)], top=1, reps=1)
        assert len(table) == 1

    def test_existing_table_updated_in_place(self):
        table = TuningTable.from_entries([_entry(engine="device")])
        out = tune([(64, 32, 64)], top=1, reps=1, table=table)
        assert out is table
        assert len(table) == 2

    def test_empty_shapes_rejected(self):
        with pytest.raises(ConfigError, match="at least one shape"):
            tune([])
