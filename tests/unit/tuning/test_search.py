"""Unit tests for the automatic blocking-parameter tuner."""

import pytest

from repro.core.params import BlockingParams
from repro.errors import ConfigError
from repro.tuning.search import autotune, enumerate_candidates


class TestEnumeration:
    def test_all_candidates_feasible(self):
        for params in enumerate_candidates(double_buffered=True, p_n_step=16):
            assert params.fits()
            assert params.p_m % 16 == 0
            assert params.p_n % 16 == 0
            assert params.p_k % 16 == 0

    def test_paper_configs_in_space(self):
        space = {
            (p.p_m, p.p_n, p.p_k)
            for p in enumerate_candidates(double_buffered=True, p_n_step=4)
        }
        assert (16, 32, 96) in space
        space_single = {
            (p.p_m, p.p_n, p.p_k)
            for p in enumerate_candidates(double_buffered=False, p_n_step=4)
        }
        assert (16, 48, 96) in space_single

    def test_infeasible_excluded(self):
        space = {
            (p.p_m, p.p_n, p.p_k)
            for p in enumerate_candidates(double_buffered=True, p_n_step=4)
        }
        assert (16, 48, 96) not in space  # 9216 doubles > 8192

    def test_buffering_regime_respected(self):
        assert all(
            p.double_buffered for p in enumerate_candidates(double_buffered=True,
                                                            p_n_step=32)
        )


class TestAutotune:
    @pytest.fixture(scope="class")
    def result(self):
        return autotune(9216, 9216, 9216, variant="SCHED", top=20, p_n_step=8)

    def test_ranked_descending(self, result):
        gf = [c.gflops for c in result.candidates]
        assert gf == sorted(gf, reverse=True)

    def test_paper_params_near_optimal(self, result):
        """The tuner must vindicate Sec III-C/IV-B's hand derivation."""
        rank = result.rank_of(BlockingParams.paper_double())
        assert rank <= 3
        paper_gf = result.candidates[rank].gflops
        assert paper_gf >= 0.98 * result.best.gflops

    def test_best_beats_tiny_blocks(self, result):
        tiny = autotune(
            9216, 9216, 9216, variant="SCHED", top=200, p_n_step=8
        )
        small = BlockingParams(16, 8, 16, double_buffered=True)
        assert tiny.candidates[tiny.rank_of(small)].gflops < result.best.gflops

    def test_padding_counts_against_oversized_blocks(self):
        # at a small problem, giant blocks waste padded flops
        result = autotune(256, 256, 768, variant="SCHED", top=50, p_n_step=8)
        best = result.best.params
        assert best.b_m <= 256 or best.b_n <= 256

    def test_single_buffered_variant_searches_single_space(self):
        result = autotune(1536, 1536, 1536, variant="ROW", top=5, p_n_step=16)
        assert all(not c.params.double_buffered for c in result.candidates)

    def test_validates_inputs(self):
        with pytest.raises(ConfigError):
            autotune(0, 9216, 9216)
        with pytest.raises(ConfigError):
            autotune(9216, 9216, 9216, top=0)

    def test_padded_shape_recorded(self, result):
        for cand in result.candidates:
            pm, pn, pk = cand.padded_shape
            assert pm % cand.params.b_m == 0
            assert pm >= 9216 and pn >= 9216 and pk >= 9216
