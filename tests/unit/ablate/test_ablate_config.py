"""Unit tests for ablation configs and their stable run identities."""

import pytest

from repro.ablate import COMPONENTS, AblationConfig
from repro.errors import ConfigError


class TestRunId:
    def test_equal_configs_share_an_id(self):
        a = AblationConfig(variant="SCHED", engine="stepwise")
        b = AblationConfig(variant="sched", engine="STEPWISE")
        assert a == b
        assert a.run_id() == b.run_id()

    def test_golden_ids_pin_cross_process_stability(self):
        """sha256 of the canonical string — no per-process salt, so the
        exact IDs are part of the report contract and frozen here."""
        assert AblationConfig().run_id() == "ab-d71983ae4113"
        assert AblationConfig(n_core_groups=2).run_id() == "ab-fbaa56153943"

    def test_canonical_field_string(self):
        assert AblationConfig().canonical() == (
            "variant=SCHED;engine=stepwise;policy=binned;retry=1;"
            "parallel=1;blocking=16x8x16;cgs=4"
        )

    def test_id_shape(self):
        run_id = AblationConfig(variant="DB").run_id()
        assert run_id.startswith("ab-")
        assert len(run_id) == 15
        int(run_id[3:], 16)  # the suffix is hex

    def test_every_component_flip_changes_the_id(self):
        base = AblationConfig()
        flips = {
            "stage": "DB",
            "engine": "device",
            "scheduler": "round_robin",
            "retry": False,
            "parallel": False,
            "blocking": (16, 16, 16),
        }
        assert set(flips) == set(COMPONENTS)
        for component, value in flips.items():
            flipped = base.with_component(component, value)
            assert flipped.run_id() != base.run_id(), component


class TestValidation:
    def test_unknown_variant_rejected(self):
        with pytest.raises(ConfigError, match="unknown variant"):
            AblationConfig(variant="TURBO")

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigError, match="unknown engine"):
            AblationConfig(engine="warp")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError, match="unknown policy"):
            AblationConfig(policy="lifo")

    def test_bad_blocking_rejected(self):
        with pytest.raises(ConfigError, match="triple"):
            AblationConfig(blocking=(16, 8))

    def test_unknown_component_rejected(self):
        with pytest.raises(ConfigError, match="unknown ablation component"):
            AblationConfig().with_component("luck", True)


class TestParams:
    def test_buffering_follows_variant_traits(self):
        assert AblationConfig(variant="SCHED").params().double_buffered
        assert not AblationConfig(variant="ROW").params().double_buffered

    def test_triple_carried_through(self):
        params = AblationConfig(blocking=(16, 16, 32)).params()
        assert (params.p_m, params.p_n, params.p_k) == (16, 16, 32)
