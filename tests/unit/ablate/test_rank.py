"""Unit tests for importance ranking on synthetic metrics."""

import pytest

from repro.ablate import RunMetrics, rank_importance
from repro.errors import ConfigError


def _metrics(
    component: str,
    value: str,
    *,
    modeled: float = 1.0,
    wall: float = 0.010,
    dma: int = 1000,
) -> RunMetrics:
    """Synthetic run metrics; ``modeled`` is the makespan in seconds."""
    return RunMetrics(
        run_id=f"ab-{component}-{value}"[:15],
        component=component,
        value=value,
        wall_p50_seconds=wall,
        modeled_makespan_seconds=modeled,
        flops=10**9,
        dma_bytes=dma,
        failures=0,
    )


class TestRankImportance:
    @pytest.fixture(scope="class")
    def ranking(self):
        baseline = _metrics("baseline", "baseline")
        results = [
            baseline,
            # stage off: modeled Gflop/s halves (makespan doubles).
            _metrics("stage", "RAW", modeled=2.0, dma=3000),
            _metrics("stage", "DB", modeled=1.25),
            # blocking off: 20% modeled drop.
            _metrics("blocking", "16x16x16", modeled=1.25),
            # parallel off: model-invisible, 3x wall.
            _metrics("parallel", "off", wall=0.030),
            # retry off: model-invisible, slightly *faster* wall.
            _metrics("retry", "off", wall=0.009),
        ]
        return rank_importance(baseline, results)

    def test_modeled_components_rank_above_invisible_ones(self, ranking):
        order = [c.component for c in ranking]
        assert order.index("stage") < order.index("parallel")
        assert order.index("blocking") < order.index("retry")

    def test_sorted_by_score_within_class(self, ranking):
        order = [c.component for c in ranking]
        assert order == ["stage", "blocking", "parallel", "retry"]

    def test_worst_off_value_wins(self, ranking):
        stage = next(c for c in ranking if c.component == "stage")
        assert stage.worst_value == "RAW"
        assert stage.modeled_drop == pytest.approx(0.5)
        assert stage.modeled

    def test_invisible_component_scored_by_wall(self, ranking):
        parallel = next(c for c in ranking if c.component == "parallel")
        assert not parallel.modeled
        assert parallel.score == pytest.approx(2.0)  # 30ms vs 10ms

    def test_dma_increase_captured(self, ranking):
        stage = next(c for c in ranking if c.component == "stage")
        assert stage.dma_increase == pytest.approx(2.0)  # 3000 vs 1000

    def test_deltas_keep_all_off_values(self, ranking):
        stage = next(c for c in ranking if c.component == "stage")
        assert {d.value for d in stage.deltas} == {"RAW", "DB"}

    def test_baseline_must_be_baseline(self):
        wrong = _metrics("stage", "DB")
        with pytest.raises(ConfigError, match="baseline"):
            rank_importance(wrong, [wrong])

    def test_serializable(self, ranking):
        doc = ranking[0].as_dict()
        assert doc["component"] == "stage"
        assert doc["modeled"] is True
        assert len(doc["runs"]) == 2
