"""Unit tests for ablation matrix generation."""

from dataclasses import fields

import pytest

from repro.ablate import AblationConfig, build_matrix
from repro.ablate.matrix import default_blocking_alternatives
from repro.errors import ConfigError


def _differing_fields(a: AblationConfig, b: AblationConfig) -> set:
    return {
        f.name
        for f in fields(AblationConfig)
        if getattr(a, f.name) != getattr(b, f.name)
    }


class TestBuildMatrix:
    @pytest.fixture(scope="class")
    def matrix(self):
        return build_matrix(AblationConfig())

    def test_baseline_first(self, matrix):
        assert matrix[0].component == "baseline"
        assert matrix[0].config == AblationConfig()

    def test_exactly_one_component_varied(self, matrix):
        """The property importance attribution rests on."""
        baseline = matrix[0].config
        axis_field = {
            "stage": "variant",
            "engine": "engine",
            "scheduler": "policy",
            "retry": "retry",
            "parallel": "parallel",
            "blocking": "blocking",
        }
        for run in matrix[1:]:
            diff = _differing_fields(baseline, run.config)
            assert diff == {axis_field[run.component]}, run.run_id

    def test_run_ids_unique(self, matrix):
        ids = [run.run_id for run in matrix]
        assert len(ids) == len(set(ids))

    def test_stage_ladder_below_baseline(self, matrix):
        stages = [run.value for run in matrix if run.component == "stage"]
        assert stages == ["DB", "ROW", "PE", "RAW"]

    def test_every_component_represented(self, matrix):
        components = {run.component for run in matrix}
        assert components == {
            "baseline", "stage", "engine", "scheduler", "retry",
            "parallel", "blocking",
        }

    def test_db_baseline_shortens_the_ladder(self):
        matrix = build_matrix(AblationConfig(variant="DB"))
        stages = [run.value for run in matrix if run.component == "stage"]
        assert stages == ["ROW", "PE", "RAW"]

    def test_off_axes_skip_the_baseline_value(self):
        matrix = build_matrix(
            AblationConfig(), engines=("stepwise", "device")
        )
        engine_values = [
            run.value for run in matrix if run.component == "engine"
        ]
        assert engine_values == ["device"]

    def test_collision_detected(self):
        with pytest.raises(ConfigError, match="collision"):
            build_matrix(
                AblationConfig(),
                blocking_alternatives=[(16, 16, 16), (16, 16, 16)],
            )


class TestBlockingAlternatives:
    def test_feasible_and_distinct_from_baseline(self):
        baseline = AblationConfig()
        picks = default_blocking_alternatives(baseline, count=2)
        assert len(picks) == 2
        assert baseline.blocking not in picks
        assert len(set(picks)) == len(picks)

    def test_deterministic(self):
        baseline = AblationConfig()
        assert default_blocking_alternatives(
            baseline
        ) == default_blocking_alternatives(baseline)
