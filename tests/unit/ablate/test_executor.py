"""Executor + report smoke tests on a tiny real matrix."""

import json

import pytest

from repro.ablate import (
    AblationConfig,
    build_matrix,
    render_report,
    run_ablation,
)
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def report():
    """One tiny but real ablation: baseline + 2 stage-offs + scheduler."""
    baseline = AblationConfig(n_core_groups=2)
    runs = build_matrix(
        baseline,
        stages=("DB", "RAW"),
        engines=(),
        policies=("round_robin",),
        include_retry=False,
        include_parallel=False,
        blocking_alternatives=(),
    )
    return run_ablation(runs=runs, n_items=4, reps=1)


class TestExecution:
    def test_all_runs_executed_healthy(self, report):
        assert len(report.metrics) == 4
        assert all(m.failures == 0 for m in report.metrics)

    def test_baseline_beats_stage_offs_on_modeled_gflops(self, report):
        """The deterministic signal the CI smoke gate asserts."""
        base = report.baseline
        for metrics in report.metrics:
            if metrics.component == "stage":
                assert metrics.modeled_gflops < base.modeled_gflops

    def test_metrics_positive(self, report):
        for metrics in report.metrics:
            assert metrics.wall_p50_seconds > 0
            assert metrics.modeled_makespan_seconds > 0
            assert metrics.flops > 0
            assert metrics.dma_bytes > 0

    def test_importance_covers_every_off_component(self, report):
        assert {c.component for c in report.importance} == {
            "stage", "scheduler",
        }


class TestReport:
    def test_json_round_trip(self, report, tmp_path):
        path = report.save(tmp_path / "ablation.json")
        doc = json.loads(path.read_text())
        assert doc["version"] == 1
        assert doc["baseline"]["component"] == "baseline"
        assert len(doc["runs"]) == len(doc["metrics"]) == 4
        assert [i["component"] for i in doc["importance"]] == [
            c.component for c in report.importance
        ]

    def test_render_mentions_every_run(self, report):
        text = render_report(report)
        for metrics in report.metrics:
            assert metrics.run_id in text
        assert "importance" in text

    def test_empty_matrix_rejected(self):
        with pytest.raises(ConfigError, match="empty"):
            run_ablation(runs=[])
