"""Unit tests for the bounded log-bucketed LatencyHistogram."""

import math

import pytest

from repro.errors import ConfigError
from repro.obs import LatencyHistogram


class TestBuckets:
    def test_bounds_are_geometric_and_end_with_inf(self):
        hist = LatencyHistogram(lowest=1.0, highest=8.0, growth=2.0)
        assert hist.bucket_bounds() == (1.0, 2.0, 4.0, 8.0, math.inf)

    def test_default_scale_is_bounded(self):
        hist = LatencyHistogram.for_seconds()
        # memory is O(buckets) forever: 1 us .. 1 h at ~19% growth.
        assert 100 < len(hist.bucket_bounds()) < 200

    def test_bad_scale_rejected(self):
        with pytest.raises(ConfigError):
            LatencyHistogram(lowest=0.0, highest=1.0)
        with pytest.raises(ConfigError):
            LatencyHistogram(lowest=2.0, highest=1.0)
        with pytest.raises(ConfigError):
            LatencyHistogram(lowest=1.0, highest=2.0, growth=1.0)


class TestRecording:
    def test_every_observation_lands_in_exactly_one_bucket(self):
        hist = LatencyHistogram(lowest=1.0, highest=8.0, growth=2.0)
        for value in (0.0, 0.5, 1.0, 1.5, 3.9, 8.0, 9.0, 1e9):
            hist.record(value)
        hist.validate()
        assert hist.count == 8
        assert hist.cumulative()[-1] == 8

    def test_below_lowest_and_zero_land_in_first_bucket(self):
        hist = LatencyHistogram(lowest=1.0, highest=8.0, growth=2.0)
        hist.record(0.0)
        hist.record(1.0)  # le semantics: at the bound is inside
        assert hist.cumulative()[0] == 2

    def test_overflow_lands_in_inf_bucket_not_dropped(self):
        hist = LatencyHistogram(lowest=1.0, highest=8.0, growth=2.0)
        hist.record(1e12)
        assert hist.count == 1
        hist.validate()

    def test_weighted_record(self):
        hist = LatencyHistogram()
        hist.record(0.5, n=5)
        assert hist.count == 5
        assert hist.sum == 2.5

    def test_min_max_mean_track_exactly(self):
        hist = LatencyHistogram()
        hist.extend([0.25, 0.5, 1.0])
        assert hist.min == 0.25
        assert hist.max == 1.0
        assert hist.mean == pytest.approx(1.75 / 3)

    def test_nan_and_nonpositive_n_rejected(self):
        hist = LatencyHistogram()
        with pytest.raises(ConfigError):
            hist.record(float("nan"))
        with pytest.raises(ConfigError):
            hist.record(1.0, n=0)


class TestPercentiles:
    def test_empty_returns_zero(self):
        assert LatencyHistogram().percentile(50) == 0.0

    def test_estimate_within_one_bucket(self):
        hist = LatencyHistogram(lowest=1e-3, highest=10.0, growth=2.0)
        hist.extend([0.010] * 50 + [0.100] * 50)
        p50 = hist.percentile(50)
        # nearest-rank p50 is in the 0.010 bucket; its upper bound is
        # at most one growth factor above the true value.
        assert 0.010 <= p50 <= 0.010 * 2.0

    def test_clamped_to_observed_max(self):
        hist = LatencyHistogram(lowest=1.0, highest=8.0, growth=2.0)
        hist.record(2.5)
        assert hist.percentile(99) == 2.5


class TestMerge:
    def test_merge_equals_concatenated_recording(self):
        left = LatencyHistogram(lowest=1.0, highest=64.0, growth=2.0)
        right = LatencyHistogram(lowest=1.0, highest=64.0, growth=2.0)
        both = LatencyHistogram(lowest=1.0, highest=64.0, growth=2.0)
        left.extend([0.5, 3.0, 100.0])
        right.extend([2.0, 2.0, 64.0])
        both.extend([0.5, 3.0, 100.0, 2.0, 2.0, 64.0])
        merged = left.merge(right)
        merged.validate()
        assert merged.cumulative() == both.cumulative()
        assert merged.count == both.count
        assert merged.min == both.min
        assert merged.max == both.max
        assert merged.sum == pytest.approx(both.sum, rel=1e-12)

    def test_incompatible_scales_refuse_to_merge(self):
        with pytest.raises(ConfigError):
            LatencyHistogram.for_seconds().merge(
                LatencyHistogram.for_bytes()
            )

    def test_merge_leaves_inputs_untouched(self):
        left = LatencyHistogram()
        right = LatencyHistogram()
        left.record(1.0)
        right.record(2.0)
        left.merge(right)
        assert left.count == 1 and right.count == 1


class TestSnapshot:
    def test_flat_numeric_summary(self):
        hist = LatencyHistogram()
        hist.extend([0.001, 0.002, 0.004])
        snap = hist.snapshot()
        assert snap["count"] == 3.0
        assert snap["min"] == 0.001
        assert snap["max"] == 0.004
        assert snap["p50"] >= 0.001
        assert all(isinstance(v, float) for v in snap.values())

    def test_empty_snapshot_has_no_infinities(self):
        snap = LatencyHistogram().snapshot()
        assert snap["min"] == 0.0 and snap["max"] == 0.0

    def test_len_is_count(self):
        hist = LatencyHistogram()
        hist.record(1.0, n=4)
        assert len(hist) == 4
