"""The uniform as_dict/delta/plus/zero protocol on every stats class."""

import dataclasses

import pytest

from repro.arch.dma import DMAStats
from repro.arch.memory import MemoryStats
from repro.arch.regcomm import RegCommStats
from repro.arch.swcache import CacheStats
from repro.core.context import ContextStats
from repro.core.session import SessionStats
from repro.multi.noc import NoCStats
from repro.utils.stats import StatsProtocol

ALL_STATS = [
    DMAStats, RegCommStats, CacheStats, MemoryStats, NoCStats,
    ContextStats, SessionStats,
]


@pytest.mark.parametrize("cls", ALL_STATS)
class TestProtocolUniform:
    def test_implements_protocol(self, cls):
        assert issubclass(cls, StatsProtocol)

    def test_zero_has_every_field_at_zero(self, cls):
        zero = cls.zero()
        for f in dataclasses.fields(cls):
            value = getattr(zero, f.name)
            if isinstance(value, StatsProtocol):
                assert value.as_dict() == value.zero().as_dict()
            elif isinstance(value, dict):
                assert value == {}
            else:
                assert value == 0

    def test_as_dict_covers_every_field(self, cls):
        assert set(cls.zero().as_dict()) == {
            f.name for f in dataclasses.fields(cls)
        }

    def test_delta_of_self_is_zero(self, cls):
        zero = cls.zero()
        assert zero.delta(zero).as_dict() == zero.as_dict()

    def test_plus_zero_is_identity(self, cls):
        zero = cls.zero()
        assert zero.plus(zero).as_dict() == zero.as_dict()

    def test_snapshot_is_independent(self, cls):
        zero = cls.zero()
        snap = zero.snapshot()
        assert snap is not zero
        assert snap.as_dict() == zero.as_dict()


class TestArithmetic:
    def test_numeric_fields_add_and_subtract(self):
        a = CacheStats(hits=5, misses=2, evictions=1, writebacks=0)
        b = CacheStats(hits=2, misses=1, evictions=1, writebacks=0)
        assert a.plus(b).hits == 7
        assert a.delta(b).hits == 3
        assert a.delta(b).evictions == 0

    def test_dict_fields_combine_keywise_with_missing_as_zero(self):
        a = DMAStats(bytes_get=10, by_mode={"PE_MODE": 8, "ROW_MODE": 2})
        b = DMAStats(bytes_get=4, by_mode={"PE_MODE": 3})
        assert a.plus(b).by_mode == {"PE_MODE": 11, "ROW_MODE": 2}
        assert a.delta(b).by_mode == {"PE_MODE": 5, "ROW_MODE": 2}

    def test_nested_stats_recurse(self):
        a = SessionStats(calls=2, batches=1, items=4, failures=0,
                         flops=100, padded_flops=120,
                         traffic=ContextStats(staged=3, allocations=3,
                                              plan_hits=1, dma_bytes=64,
                                              dma_transactions=2,
                                              regcomm_bytes=32))
        b = SessionStats(calls=1, batches=0, items=1, failures=0,
                         flops=40, padded_flops=48,
                         traffic=ContextStats(staged=1, allocations=1,
                                              plan_hits=0, dma_bytes=16,
                                              dma_transactions=1,
                                              regcomm_bytes=8))
        total = a.plus(b)
        assert total.calls == 3
        assert total.traffic.dma_bytes == 80
        diff = a.delta(b)
        assert diff.flops == 60
        assert diff.traffic.regcomm_bytes == 24

    def test_as_dict_nests_and_copies(self):
        stats = DMAStats(by_mode={"PE_MODE": 1})
        data = stats.as_dict()
        data["by_mode"]["PE_MODE"] = 999
        assert stats.by_mode["PE_MODE"] == 1

    def test_context_since_alias(self):
        later = ContextStats(staged=5, allocations=4, plan_hits=2,
                             dma_bytes=100, dma_transactions=10,
                             regcomm_bytes=50)
        earlier = ContextStats(staged=2, allocations=2, plan_hits=1,
                               dma_bytes=40, dma_transactions=4,
                               regcomm_bytes=20)
        assert later.since(earlier).as_dict() \
            == later.delta(earlier).as_dict()
