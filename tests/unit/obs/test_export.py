"""Exporter tests: Chrome-trace round-trip, JSONL, and text reports."""

import importlib.util
import json
import pathlib

import pytest

from repro.core.params import BlockingParams
from repro.core.session import Session
from repro.obs import (
    SpanTracer,
    chrome_trace,
    jsonl_lines,
    model_gap_report,
    phase_report,
    write_chrome_trace,
    write_jsonl,
)
from repro.workloads.matrices import mixed_batch

CHECK_TRACE = (
    pathlib.Path(__file__).resolve().parents[3] / "tools" / "check_trace.py"
)


@pytest.fixture(scope="module")
def validate_payload():
    spec = importlib.util.spec_from_file_location("check_trace", CHECK_TRACE)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.validate_payload


@pytest.fixture(scope="module")
def traced():
    """One traced two-CG batch: (tracer, session totals)."""
    params = BlockingParams.small(double_buffered=True)
    tracer = SpanTracer()
    with Session(params=params, n_core_groups=2, tracer=tracer) as session:
        result = session.batch(mixed_batch(4, params=params, seed=11))
        assert not result.errors
        totals = session.stats().traffic
    return tracer, totals


class TestChromeTrace:
    def test_round_trip_is_json_and_well_formed(self, traced, tmp_path):
        tracer, _ = traced
        path = tmp_path / "trace.json"
        write_chrome_trace(tracer.spans, path, label="test")
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == len(tracer.spans)
        for event in events:
            assert event["ph"] in ("X", "M")
            assert isinstance(event["name"], str) and event["name"]
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
        for event in complete:
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert isinstance(event["args"]["counters"], dict)

    def test_validator_accepts_real_trace(self, traced, validate_payload):
        tracer, _ = traced
        assert validate_payload(chrome_trace(tracer.spans)) == []

    def test_metadata_names_host_and_cg_tracks(self, traced):
        tracer, _ = traced
        payload = chrome_trace(tracer.spans, label="mylabel")
        meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta}
        assert "mylabel" in names        # process_name
        assert "host" in names           # track 0
        assert any(n.startswith("CG") for n in names)

    def test_spans_strictly_nested_per_track(self, traced):
        tracer, _ = traced
        events = [e for e in chrome_trace(tracer.spans)["traceEvents"]
                  if e["ph"] == "X"]
        by_track: dict = {}
        for event in events:
            by_track.setdefault(event["tid"], []).append(
                (event["ts"], event["ts"] + event["dur"]))
        eps = 1e-6
        for intervals in by_track.values():
            intervals.sort(key=lambda iv: (iv[0], -iv[1]))
            stack = []
            for start, end in intervals:
                while stack and start >= stack[-1] - eps:
                    stack.pop()
                if stack:
                    assert end <= stack[-1] + eps, "partial overlap"
                stack.append(end)

    def test_validator_rejects_partial_overlap(self, validate_payload):
        payload = {"traceEvents": [
            {"ph": "X", "name": "a", "ts": 0.0, "dur": 10.0, "pid": 1,
             "tid": 0},
            {"ph": "X", "name": "b", "ts": 5.0, "dur": 10.0, "pid": 1,
             "tid": 0},
        ]}
        errors = validate_payload(payload)
        assert any("partially overlaps" in e for e in errors)

    def test_validator_rejects_bad_fields(self, validate_payload):
        payload = {"traceEvents": [
            {"ph": "X", "name": "a", "ts": -1.0, "dur": float("nan"),
             "pid": 1, "tid": 0,
             "args": {"counters": {"bytes": "lots"}}},
            {"ph": "B", "name": "begin", "pid": 1, "tid": 0},
        ]}
        errors = validate_payload(payload)
        joined = "\n".join(errors)
        assert "ts" in joined and "dur" in joined
        assert "non-numeric" in joined
        assert "unsupported ph" in joined

    def test_validator_requires_complete_events(self, validate_payload):
        assert validate_payload({"traceEvents": []})
        assert validate_payload([]) == [
            "top level: expected an object with a traceEvents list"
        ]


class TestJsonl:
    def test_one_line_per_span_in_opening_order(self, traced, tmp_path):
        tracer, _ = traced
        path = tmp_path / "trace.jsonl"
        write_jsonl(tracer.spans, path)
        lines = path.read_text().splitlines()
        assert len(lines) == len(tracer.spans)
        records = [json.loads(line) for line in lines]
        assert [r["index"] for r in records] == sorted(
            r["index"] for r in records)
        root = records[0]
        assert root["name"] == "session.batch" and root["parent"] is None

    def test_lines_carry_counters_and_attrs(self, traced):
        tracer, _ = traced
        records = [json.loads(line) for line in jsonl_lines(tracer.spans)]
        dgemms = [r for r in records if r["name"] == "dgemm"]
        assert dgemms
        for record in dgemms:
            assert record["counters"]["ctx.dma_bytes"] > 0
            assert record["attrs"]["flops"] > 0


class TestReports:
    def test_phase_report_covers_every_phase(self, traced):
        tracer, _ = traced
        text = phase_report(tracer.spans)
        for phase in ("session.batch", "cg_dispatch", "dgemm", "stage_A",
                      "strip_mult", "store_C"):
            assert phase in text
        assert "flop/B" in text

    def test_phase_report_empty(self):
        assert phase_report([]) == "(no spans recorded)"

    def test_model_gap_report_ratio_column(self, traced):
        tracer, _ = traced
        modeled = {"session.batch": 1e-3, "absent": 0.0}
        text = model_gap_report(tracer.spans, modeled)
        assert "measured/modeled" in text
        assert "absent" in text and "-" in text
