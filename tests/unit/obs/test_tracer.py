"""Unit tests for the span tracer (nesting, timing, counter deltas)."""

import pytest

from repro.obs import NULL_TRACER, NullTracer, SpanTracer, ensure_tracer


class TestNesting:
    def test_parent_depth_and_index_restore_the_tree(self):
        tr = SpanTracer()
        with tr.span("root"):
            with tr.span("child"):
                with tr.span("grandchild"):
                    pass
            with tr.span("sibling"):
                pass
        by_name = {s.name: s for s in tr.spans}
        root = by_name["root"]
        assert root.parent is None and root.depth == 0 and root.index == 0
        assert by_name["child"].parent == root.index
        assert by_name["child"].depth == 1
        assert by_name["grandchild"].parent == by_name["child"].index
        assert by_name["grandchild"].depth == 2
        assert by_name["sibling"].parent == root.index
        assert by_name["sibling"].depth == 1

    def test_spans_close_children_first_index_restores_opening_order(self):
        tr = SpanTracer()
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        assert [s.name for s in tr.spans] == ["inner", "outer"]
        assert [s.name for s in sorted(tr.spans, key=lambda s: s.index)] \
            == ["outer", "inner"]

    def test_track_inherited_from_parent_unless_pinned(self):
        tr = SpanTracer()
        with tr.span("root"):
            with tr.span("dispatch", track=3):
                with tr.span("leaf"):
                    pass
        by_name = {s.name: s for s in tr.spans}
        assert by_name["root"].track == 0
        assert by_name["dispatch"].track == 3
        assert by_name["leaf"].track == 3

    def test_roots_in_opening_order(self):
        tr = SpanTracer()
        for name in ("first", "second"):
            with tr.span(name):
                with tr.span("child"):
                    pass
        assert [s.name for s in tr.roots()] == ["first", "second"]

    def test_intervals_strictly_nested(self):
        tr = SpanTracer()
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        by_name = {s.name: s for s in tr.spans}
        assert by_name["outer"].start <= by_name["inner"].start
        assert by_name["inner"].end <= by_name["outer"].end

    def test_span_closed_on_exception(self):
        tr = SpanTracer()
        with pytest.raises(ValueError):
            with tr.span("outer"):
                with tr.span("inner"):
                    raise ValueError("boom")
        assert [s.name for s in tr.spans] == ["inner", "outer"]
        assert tr.current() is None


class TestCounters:
    def test_meter_deltas_are_after_minus_before(self):
        counters = {"bytes": 100, "ops": 5}
        tr = SpanTracer()
        with tr.span("work", meter=lambda: dict(counters)):
            counters["bytes"] += 40
            counters["ops"] += 2
        (span,) = tr.spans
        assert span.counters == {"bytes": 40, "ops": 2}

    def test_missing_before_key_counts_from_zero(self):
        counters = {}
        tr = SpanTracer()
        with tr.span("work", meter=lambda: dict(counters)):
            counters["late"] = 7
        (span,) = tr.spans
        assert span.counters == {"late": 7}

    def test_no_meter_means_no_counters(self):
        tr = SpanTracer()
        with tr.span("work"):
            pass
        assert tr.spans[0].counters == {}

    def test_counter_totals_sums_one_phase(self):
        counters = {"x": 0}
        tr = SpanTracer()
        for bump in (3, 4):
            with tr.span("work", meter=lambda: dict(counters)):
                counters["x"] += bump
        with tr.span("other", meter=lambda: dict(counters)):
            counters["x"] += 100
        assert tr.counter_totals("work") == {"x": 7}
        assert tr.counter_totals() == {"x": 107}

    def test_attrs_recorded(self):
        tr = SpanTracer()
        with tr.span("dgemm", cat="gemm", m=4, n=8):
            pass
        (span,) = tr.spans
        assert span.cat == "gemm"
        assert span.attrs == {"m": 4, "n": 8}

    def test_total_seconds_and_duration_positive(self):
        tr = SpanTracer()
        with tr.span("work"):
            pass
        assert tr.spans[0].duration >= 0
        assert tr.total_seconds("work") == pytest.approx(
            tr.spans[0].duration)


class TestNullTracer:
    def test_ensure_tracer_resolves_none_to_singleton(self):
        assert ensure_tracer(None) is NULL_TRACER
        tr = SpanTracer()
        assert ensure_tracer(tr) is tr

    def test_null_span_is_shared_and_records_nothing(self):
        a = NULL_TRACER.span("x", meter=lambda: {"n": 1}, track=2, m=3)
        b = NULL_TRACER.span("y")
        assert a is b
        with a:
            pass  # no state, no error

    def test_enabled_flags(self):
        assert SpanTracer().enabled is True
        assert NullTracer().enabled is False


class TestMeterExceptionSafety:
    def test_meter_raising_on_enter_leaves_no_phantom_span(self):
        """A meter that raises while opening must not leave an open
        span behind to mis-parent everything that follows."""
        tr = SpanTracer()

        def broken():
            raise RuntimeError("meter down")

        with pytest.raises(RuntimeError, match="meter down"):
            with tr.span("work", meter=broken):
                pass  # pragma: no cover - never entered
        assert tr.current() is None
        with tr.span("after"):
            pass
        (span,) = tr.spans
        assert span.parent is None and span.depth == 0

    def test_meter_raising_on_exit_still_pops_and_records(self):
        tr = SpanTracer()
        calls = [0]

        def flaky():
            calls[0] += 1
            if calls[0] > 1:
                raise RuntimeError("meter down")
            return {"x": 1}

        with pytest.raises(RuntimeError, match="meter down"):
            with tr.span("work", meter=flaky):
                pass
        assert tr.current() is None
        # the span itself was still recorded (without counters)
        assert [s.name for s in tr.spans] == ["work"]
        assert tr.spans[0].counters == {}

    def test_exception_in_body_records_error_attr(self):
        tr = SpanTracer()
        with pytest.raises(ValueError):
            with tr.span("work", step=3):
                raise ValueError("boom")
        (span,) = tr.spans
        assert span.attrs == {"step": 3, "error": "ValueError"}

    def test_clean_exit_has_no_error_attr(self):
        tr = SpanTracer()
        with tr.span("work"):
            pass
        assert "error" not in tr.spans[0].attrs

    def test_key_dropped_from_after_snapshot_keeps_its_delta(self):
        """Union-of-keys: a counter present before but missing after
        still contributes (as ``0 - before``), instead of vanishing."""
        counters = {"stable": 10, "doomed": 4}
        tr = SpanTracer()

        def meter():
            return dict(counters)

        with tr.span("work", meter=meter):
            counters["stable"] = 16
            del counters["doomed"]
        (span,) = tr.spans
        assert span.counters == {"stable": 6, "doomed": -4}


class TestThreadAwareness:
    def test_threads_nest_on_their_own_stacks(self):
        import threading

        tr = SpanTracer()
        ready = threading.Barrier(3)

        def work(track):
            with tr.span("outer", track=track):
                ready.wait(timeout=30)
                with tr.span("inner"):
                    pass

        threads = [
            threading.Thread(target=work, args=(t,)) for t in (1, 2, 3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tr.spans) == 6
        # globally unique, contiguous indices under the shared lock
        assert sorted(s.index for s in tr.spans) == list(range(6))
        by_index = {s.index: s for s in tr.spans}
        for span in tr.spans:
            if span.name == "inner":
                parent = by_index[span.parent]
                # each inner span is parented to *its* thread's outer
                assert parent.name == "outer"
                assert parent.track == span.track

    def test_explicit_parent_adopts_cross_thread_subtree(self):
        import threading

        tr = SpanTracer()
        with tr.span("batch") as batch_span:
            parent = tr.current()
            assert parent is batch_span

            def work():
                with tr.span("dispatch", parent=parent, track=2):
                    pass

            t = threading.Thread(target=work)
            t.start()
            t.join()
        by_name = {s.name: s for s in tr.spans}
        assert by_name["dispatch"].parent == by_name["batch"].index
        assert by_name["dispatch"].depth == 1
        assert by_name["dispatch"].track == 2

    def test_explicit_parent_ignored_inside_enclosing_span(self):
        tr = SpanTracer()
        with tr.span("a"):
            outer = tr.current()
        with tr.span("b"):
            with tr.span("child", parent=outer):
                pass
        by_name = {s.name: s for s in tr.spans}
        assert by_name["child"].parent == by_name["b"].index

    def test_current_is_none_outside_any_span(self):
        tr = SpanTracer()
        assert tr.current() is None
        with tr.span("x"):
            assert tr.current() is not None
        assert tr.current() is None
        assert NULL_TRACER.current() is None
