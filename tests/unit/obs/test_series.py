"""Unit tests for TimeSeries rings and the MetricsSampler."""

import pytest

from repro.errors import ConfigError
from repro.obs import MetricsRegistry, MetricsSampler, TimeSeries


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestTimeSeries:
    def test_capacity_floor(self):
        with pytest.raises(ConfigError):
            TimeSeries(1)

    def test_ring_overwrites_oldest(self):
        series = TimeSeries(3)
        for t in range(5):
            series.push(float(t), float(10 * t))
        assert len(series) == 3
        assert series.points() == [(2.0, 20.0), (3.0, 30.0), (4.0, 40.0)]
        assert series.latest() == (4.0, 40.0)

    def test_window_selects_trailing_points(self):
        series = TimeSeries(8)
        for t in range(6):
            series.push(float(t), float(t))
        assert series.window(2.0) == [(3.0, 3.0), (4.0, 4.0), (5.0, 5.0)]
        assert series.window(2.0, now=10.0) == []

    def test_delta_and_rate(self):
        series = TimeSeries(8)
        series.push(0.0, 100.0)
        series.push(2.0, 150.0)
        assert series.delta(10.0) == 50.0
        assert series.rate(10.0) == 25.0

    def test_rate_clamps_counter_resets(self):
        series = TimeSeries(4)
        series.push(0.0, 100.0)
        series.push(1.0, 5.0)
        assert series.rate(10.0) == 0.0

    def test_underdetermined_is_zero(self):
        series = TimeSeries(4)
        assert series.delta(1.0) == 0.0
        series.push(0.0, 1.0)
        assert series.rate(1.0) == 0.0
        assert series.latest() == (0.0, 1.0)


class TestMetricsSampler:
    def _sampler(self, source: dict, capacity: int = 16) -> MetricsSampler:
        registry = MetricsRegistry().register("src", lambda: source)
        return MetricsSampler(
            registry, period_seconds=0.01, capacity=capacity,
            clock=FakeClock(),
        )

    def test_bad_period_rejected(self):
        with pytest.raises(ConfigError):
            MetricsSampler(MetricsRegistry(), period_seconds=0.0)

    def test_sample_once_builds_one_series_per_counter(self):
        source = {"a": 1, "b": 2}
        sampler = self._sampler(source)
        sampler.sample_once()
        source["a"] = 5
        sampler.sample_once()
        assert sampler.names() == ("src.a", "src.b")
        assert sampler.latest() == {"src.a": 5.0, "src.b": 2.0}
        assert sampler.samples == 2

    def test_deltas_telescope_to_last_minus_first(self):
        source = {"n": 0}
        sampler = self._sampler(source)
        clock = sampler.clock
        for value in (0, 3, 7, 7, 20):
            source["n"] = value
            sampler.sample_once()
            clock.now += 1.0
        deltas = sampler.deltas("src.n")
        assert [d for _, d in deltas] == [3.0, 4.0, 0.0, 13.0]
        assert sum(d for _, d in deltas) == 20.0

    def test_window_delta_and_rate_lookup(self):
        source = {"n": 0}
        sampler = self._sampler(source)
        clock = sampler.clock
        for value in (0, 10, 30):
            source["n"] = value
            sampler.sample_once()
            clock.now += 1.0
        assert sampler.delta("src.n", 10.0) == 30.0
        assert sampler.rate("src.n", 10.0) == 15.0
        assert sampler.delta("missing", 10.0) == 0.0
        assert sampler.rate("missing", 10.0) == 0.0

    def test_source_errors_counted_not_raised(self):
        registry = MetricsRegistry().register(
            "bad", lambda: (_ for _ in ()).throw(RuntimeError("boom"))
        )
        sampler = MetricsSampler(registry, clock=FakeClock())
        assert sampler.sample_once() == {}
        assert sampler.errors == 1
        assert sampler.samples == 0

    def test_listener_runs_and_errors_are_contained(self):
        source = {"a": 1}
        sampler = self._sampler(source)
        seen = []
        sampler.add_listener(lambda s, snap: seen.append(dict(snap)))
        sampler.add_listener(lambda s, snap: 1 / 0)
        sampler.sample_once()
        assert seen == [{"src.a": 1}]
        assert sampler.errors == 1

    def test_thread_lifecycle_brackets_run_with_samples(self):
        source = {"n": 0}
        registry = MetricsRegistry().register("src", lambda: source)
        sampler = MetricsSampler(registry, period_seconds=0.002)
        with sampler:
            assert sampler.running
            source["n"] = 42
        assert not sampler.running
        # start() took a baseline, stop() took a closing sample, so the
        # full change is covered regardless of thread timing.
        assert sampler.samples >= 2
        pts = sampler.series("src.n").points()
        assert pts[0][1] == 0.0 and pts[-1][1] == 42.0

    def test_stats_is_a_registry_source(self):
        sampler = self._sampler({"a": 1})
        sampler.sample_once()
        stats = sampler.stats()
        assert stats["samples"] == 1.0
        assert stats["errors"] == 0.0
        assert stats["series"] == 1.0
        assert stats["period_seconds"] == 0.01
