"""Unit tests for the OpenMetrics text exposition."""

from repro.obs import (
    HistogramFamily,
    LatencyHistogram,
    format_value,
    is_counter_name,
    metric_name,
    render_openmetrics,
)


class TestNaming:
    def test_dots_become_underscores_with_prefix(self):
        assert metric_name("serve.cache.hits") == "repro_serve_cache_hits"

    def test_illegal_characters_sanitized(self):
        assert (
            metric_name("slo.gemm:64x96x32.count")
            == "repro_slo_gemm:64x96x32_count"
        )
        assert metric_name("a b-c") == "repro_a_b_c"

    def test_prefixless_name_gets_a_legal_first_character(self):
        assert metric_name("9lives", prefix="")[0] == "_"

    def test_counter_classification_by_leaf(self):
        assert is_counter_name("cg0.dma.bytes")
        assert is_counter_name("serve.request.ctx.dma_bytes")
        assert is_counter_name("serve.admitted")
        assert is_counter_name("noc.messages")
        assert not is_counter_name("serve.inflight")
        assert not is_counter_name("memory.bytes_peak")
        assert not is_counter_name("sampler.period_seconds")


class TestValues:
    def test_ints_render_plain(self):
        assert format_value(23068672) == "23068672"

    def test_floats_round_trip_bit_exactly(self):
        for value in (0.1, 1e-9, 3.141592653589793, 1234.5678):
            assert float(format_value(value)) == value

    def test_infinities_spelled_openmetrics_style(self):
        assert format_value(float("inf")) == "+Inf"
        assert format_value(float("-inf")) == "-Inf"


class TestRender:
    def test_counters_get_total_suffix_and_type_lines(self):
        text = render_openmetrics({"serve.admitted": 6, "serve.inflight": 2})
        lines = text.splitlines()
        assert "# TYPE repro_serve_admitted counter" in lines
        assert "repro_serve_admitted_total 6" in lines
        assert "# TYPE repro_serve_inflight gauge" in lines
        assert "repro_serve_inflight 2" in lines
        assert lines[-1] == "# EOF"

    def test_negative_counter_clamped_to_zero(self):
        text = render_openmetrics({"x.hits": -3})
        assert "repro_x_hits_total 0" in text.splitlines()

    def test_name_collisions_deduplicated(self):
        lines = render_openmetrics({"a.b": 1, "a_b": 2}).splitlines()
        samples = [ln for ln in lines if ln.startswith("repro_a_b ")]
        assert samples == ["repro_a_b 1"]

    def test_histogram_family_renders_cumulative_buckets(self):
        hist = LatencyHistogram(lowest=1.0, highest=4.0, growth=2.0)
        hist.extend([0.5, 1.5, 100.0])
        family = HistogramFamily(
            name="serve.latency.total_seconds",
            label="bin",
            series=(("gemm:64x96x32", hist),),
        )
        lines = family.render()
        assert lines[0] == "# TYPE repro_serve_latency_total_seconds histogram"
        assert (
            'repro_serve_latency_total_seconds_bucket'
            '{bin="gemm:64x96x32",le="1.0"} 1' in lines
        )
        assert (
            'repro_serve_latency_total_seconds_bucket'
            '{bin="gemm:64x96x32",le="+Inf"} 3' in lines
        )
        assert (
            'repro_serve_latency_total_seconds_count'
            '{bin="gemm:64x96x32"} 3' in lines
        )

    def test_unlabelled_family_renders_bare_sum_and_count(self):
        hist = LatencyHistogram(lowest=1.0, highest=2.0, growth=2.0)
        hist.record(1.0)
        lines = HistogramFamily(name="x", label="", series=(("", hist),)).render()
        assert "repro_x_sum 1.0" in lines
        assert "repro_x_count 1" in lines

    def test_label_values_escaped(self):
        hist = LatencyHistogram(lowest=1.0, highest=2.0, growth=2.0)
        hist.record(1.0)
        family = HistogramFamily(
            name="x", label="bin", series=(('we"ird\\', hist),)
        )
        rendered = "\n".join(family.render())
        assert 'bin="we\\"ird\\\\"' in rendered

    def test_full_scrape_ends_with_eof_newline(self):
        text = render_openmetrics({"a.count": 1})
        assert text.endswith("# EOF\n")
