"""Unit tests for the event log, alert rules/engine, and dashboard."""

import io
import json

import pytest

from repro.errors import ConfigError
from repro.obs import (
    AlertEngine,
    BurnRateRule,
    EventLog,
    MetricsRegistry,
    MetricsSampler,
    RateThresholdRule,
    default_serve_rules,
    render_dashboard,
    sparkline,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def make_sampler(source: dict) -> tuple[MetricsSampler, FakeClock]:
    clock = FakeClock()
    registry = MetricsRegistry().register("", lambda: source)
    sampler = MetricsSampler(registry, clock=clock)
    return sampler, clock


class TestEventLog:
    def test_emit_retains_at_or_above_level(self):
        log = EventLog(level="warning")
        assert log.info("quiet") is None
        event = log.critical("loud", cg=2)
        assert event is not None and event.fields == {"cg": 2}
        assert [e.kind for e in log.events()] == ["loud"]

    def test_suppressed_still_counted(self):
        log = EventLog(level="warning")
        log.debug("a")
        log.info("b")
        stats = log.stats()
        assert stats["emitted"] == 2.0
        assert stats["suppressed"] == 2.0
        assert stats["retained"] == 0.0
        assert stats["debug"] == 1.0 and stats["info"] == 1.0

    def test_ring_is_bounded(self):
        log = EventLog(capacity=3)
        for i in range(10):
            log.info("e", i=i)
        assert len(log) == 3
        assert [e.fields["i"] for e in log.tail(3)] == [7, 8, 9]

    def test_sink_receives_jsonl_immediately(self):
        sink = io.StringIO()
        log = EventLog(sink=sink)
        log.info("hello", x=1)
        payload = json.loads(sink.getvalue())
        assert payload["kind"] == "hello" and payload["x"] == 1

    def test_jsonl_round_trip_and_seq_order(self):
        log = EventLog()
        log.info("a")
        log.warning("b")
        lines = log.to_jsonl().splitlines()
        seqs = [json.loads(line)["seq"] for line in lines]
        assert seqs == sorted(seqs)

    def test_unknown_level_rejected(self):
        with pytest.raises(ConfigError):
            EventLog(level="loudest")
        with pytest.raises(ConfigError):
            EventLog().emit("nope", "kind")


class TestRateThresholdRule:
    def test_fires_above_threshold(self):
        source = {"evictions": 0}
        sampler, clock = make_sampler(source)
        rule = RateThresholdRule(
            "storm", "evictions", threshold_per_second=10.0,
            window_seconds=5.0,
        )
        sampler.sample_once()
        clock.now = 1.0
        source["evictions"] = 100
        sampler.sample_once()
        firing, value, threshold = rule.evaluate(sampler)
        assert firing and value == 100.0 and threshold == 10.0

    def test_zero_threshold_fires_on_any_increase(self):
        source = {"quarantines": 0}
        sampler, clock = make_sampler(source)
        rule = RateThresholdRule(
            "quarantine", "quarantines", threshold_per_second=0.0,
        )
        sampler.sample_once()
        clock.now = 1.0
        sampler.sample_once()
        assert rule.evaluate(sampler)[0] is False
        source["quarantines"] = 1
        clock.now = 2.0
        sampler.sample_once()
        assert rule.evaluate(sampler)[0] is True


class TestBurnRateRule:
    def _rule(self) -> BurnRateRule:
        return BurnRateRule(
            "burn", error_metric="failed", total_metric="admitted",
            objective=0.01, fast_window_seconds=2.0,
            slow_window_seconds=10.0, burn_factor=10.0,
        )

    def test_fires_when_both_windows_burn(self):
        source = {"failed": 0, "admitted": 0}
        sampler, clock = make_sampler(source)
        rule = self._rule()
        for step in range(1, 6):
            source["admitted"] = 10 * step
            source["failed"] = 2 * step  # 20% errors vs 1% objective
            sampler.sample_once()
            clock.now += 1.0
        firing, value, threshold = rule.evaluate(sampler)
        assert firing and value >= threshold == 10.0

    def test_quiet_traffic_cannot_fire(self):
        source = {"failed": 0, "admitted": 0}
        sampler, clock = make_sampler(source)
        rule = self._rule()
        sampler.sample_once()
        clock.now = 1.0
        sampler.sample_once()
        assert rule.evaluate(sampler) == (False, 0.0, 10.0)

    def test_window_ordering_enforced(self):
        with pytest.raises(ConfigError):
            BurnRateRule(
                "bad", error_metric="e", total_metric="t",
                fast_window_seconds=60.0, slow_window_seconds=5.0,
            )


class TestAlertEngine:
    def test_transitions_emit_fired_and_resolved_events(self):
        source = {"rejected": 0}
        sampler, clock = make_sampler(source)
        events = EventLog()
        rule = RateThresholdRule(
            "rejections", "rejected", threshold_per_second=1.0,
            window_seconds=5.0, severity="warning",
        )
        engine = AlertEngine([rule], events=events, clock=clock)
        sampler.sample_once()
        clock.now = 1.0
        source["rejected"] = 50
        sampler.sample_once()
        active = engine.evaluate(sampler)
        assert [a.rule for a in active] == ["rejections"]
        assert engine.stats()["firing.rejections"] == 1.0
        # steady state: still firing, no new event.
        engine.evaluate(sampler)
        # recovery: rate decays once the window moves past the spike.
        clock.now = 20.0
        sampler.sample_once()
        assert engine.evaluate(sampler) == ()
        kinds = [e.kind for e in events.events()]
        assert kinds == ["alert.fired", "alert.resolved"]
        assert engine.fired == 1 and engine.resolved == 1

    def test_attach_evaluates_per_sample(self):
        source = {"rejected": 0}
        sampler, clock = make_sampler(source)
        engine = AlertEngine(
            [RateThresholdRule("r", "rejected", threshold_per_second=0.0)],
            clock=clock,
        )
        engine.attach(sampler)
        sampler.sample_once()
        clock.now = 1.0
        source["rejected"] = 3
        sampler.sample_once()
        assert engine.evaluations >= 2
        assert [a.rule for a in engine.active()] == ["r"]

    def test_duplicate_rule_names_rejected(self):
        rule = RateThresholdRule("dup", "x", threshold_per_second=1.0)
        with pytest.raises(ConfigError):
            AlertEngine([rule, rule])

    def test_default_serve_rules_cover_the_issue_list(self):
        names = {rule.name for rule in default_serve_rules()}
        assert names == {
            "slo-burn-rate",
            "cg-quarantine",
            "plan-cache-eviction-storm",
            "operand-cache-eviction-storm",
            "admission-rejections",
        }


class TestDashboard:
    def test_sparkline_scales_to_peak(self):
        line = sparkline([0.0, 1.0, 2.0, 4.0])
        assert len(line) == 4
        assert line[0] == " " and line[-1] == "█"
        assert sparkline([]) == ""
        assert sparkline([0.0, 0.0]) == "  "

    def test_frame_contains_every_section(self):
        source = {
            "serve.admitted": 8.0,
            "serve.completed": 8.0,
            "serve.failed": 0.0,
            "serve.rejected": 0.0,
            "serve.inflight": 0.0,
            "serve.batches": 2.0,
            "serve.batched_requests": 8.0,
            "serve.cache.hits": 3.0,
            "serve.cache.misses": 1.0,
            "serve.cache.evictions": 0.0,
            "plan.cache.hits": 4.0,
            "plan.cache.misses": 2.0,
            "cg0.dma.transactions": 10.0,
            "cg0.dma.bytes_get": 1000.0,
            "cg0.dma.bytes_put": 200.0,
            "cg1.dma.transactions": 0.0,
            "cg1.dma.bytes_get": 0.0,
            "cg1.dma.bytes_put": 0.0,
            "session.items": 8.0,
            "session.failures": 0.0,
            "session.flops": 1e9,
            "session.traffic.dma_bytes": 1200.0,
            "session.traffic.regcomm_bytes": 900.0,
        }
        registry = MetricsRegistry().register("", lambda: source)
        clock = FakeClock()
        sampler = MetricsSampler(registry, clock=clock)
        sampler.started_at = 0.0
        sampler.sample_once()
        clock.now = 2.0
        for key in ("serve.completed", "cg0.dma.bytes_get"):
            source[key] *= 2
        sampler.sample_once()
        events = EventLog()
        events.warning("cg.quarantined", cg=1)
        frame = render_dashboard(
            sampler,
            slo_table="bin  count\ngemm:1x1x1  8",
            alerts=AlertEngine([], clock=clock),
            events=events,
            clock=clock,
        )
        assert "requests" in frame
        assert "operand cache 75.0% hit" in frame
        assert "CG0" in frame and "CG1" in frame
        assert "session   items 8" in frame
        assert "gemm:1x1x1" in frame
        assert "alerts: none firing" in frame
        assert "cg.quarantined" in frame

    def test_firing_alert_rendered(self):
        source = {"serve.rejected": 0.0}
        sampler, clock = make_sampler(source)
        engine = AlertEngine(
            [RateThresholdRule(
                "rejections", "serve.rejected", threshold_per_second=0.0,
                severity="critical",
            )],
            clock=clock,
        )
        sampler.sample_once()
        clock.now = 1.0
        source["serve.rejected"] = 5.0
        sampler.sample_once()
        engine.evaluate(sampler)
        frame = render_dashboard(sampler, alerts=engine, clock=clock)
        assert "ALERT [critical] rejections" in frame
