"""Unit tests for the metrics registry and the meter helpers."""

import pytest

from repro.arch.core_group import CoreGroup
from repro.core.context import ExecutionContext
from repro.multi.processor import SW26010Processor
from repro.obs import (
    MetricsRegistry,
    cg_meter,
    context_meter,
    flatten,
    processor_meter,
    snapshot_core_group,
)
from repro.workloads.matrices import gemm_operands


def _run_small_dgemm(cg):
    from repro.core.api import dgemm
    from repro.core.params import BlockingParams

    params = BlockingParams.small(double_buffered=True)
    m, n, k = 2 * params.b_m, params.b_n, params.b_k
    a, b, c = gemm_operands(m, n, k, seed=3)
    return dgemm(a, b, c, beta=1.0, variant="SCHED", params=params,
                 core_group=cg)


class TestFlatten:
    def test_nested_dicts_become_dot_paths(self):
        flat = flatten("dma", {"bytes": 4, "by_mode": {"PE_MODE": 2}})
        assert flat == {"dma.bytes": 4, "dma.by_mode.pe_mode": 2}

    def test_non_numeric_and_bool_leaves_dropped(self):
        flat = flatten("x", {"n": 1, "name": "hi", "flag": True})
        assert flat == {"x.n": 1}

    def test_empty_prefix_keeps_bare_names(self):
        assert flatten("", {"N": 2}) == {"n": 2}


class TestCoreGroupNamespacing:
    def test_snapshot_uses_paper_counter_names(self):
        cg = CoreGroup()
        _run_small_dgemm(cg)
        snap = snapshot_core_group(cg)
        # the issue's canonical examples: per-mode DMA traffic and the
        # register-network broadcast counts, one flat address space.
        assert snap["dma.pe_mode.bytes"] > 0
        assert snap["regcomm.row_broadcasts"] > 0
        assert snap["dma.bytes_get"] > 0
        assert snap["memory.stores"] >= 3
        assert all(isinstance(v, (int, float)) for v in snap.values())

    def test_cg_meter_deltas_track_one_call(self):
        cg = CoreGroup()
        meter = cg_meter(cg)
        before = meter()
        _run_small_dgemm(cg)
        delta = MetricsRegistry.delta(meter(), before)
        assert delta["dma.bytes_get"] > 0
        assert delta["regcomm.bytes_moved"] > 0


class TestRegistry:
    def test_register_snapshot_delta(self):
        counters = {"hits": 1}
        registry = MetricsRegistry().register("cache", lambda: counters)
        first = registry.snapshot()
        counters["hits"] = 5
        second = registry.snapshot()
        assert first == {"cache.hits": 1}
        assert MetricsRegistry.delta(second, first) == {"cache.hits": 4}

    def test_duplicate_namespace_rejected(self):
        registry = MetricsRegistry().register("dma", {"bytes": 0})
        with pytest.raises(ValueError):
            registry.register("dma", {"bytes": 1})

    def test_bad_source_type_rejected(self):
        registry = MetricsRegistry().register("bad", object())
        with pytest.raises(TypeError):
            registry.snapshot()

    def test_for_core_group_namespaces(self):
        registry = MetricsRegistry.for_core_group(CoreGroup())
        assert registry.namespaces == ("dma", "regcomm", "memory")

    def test_for_processor_covers_every_cg_and_the_noc(self):
        processor = SW26010Processor()
        registry = MetricsRegistry.for_processor(processor)
        names = registry.namespaces
        assert "noc" in names
        for index in range(len(processor.core_groups)):
            assert f"cg{index}.dma" in names
        snap = registry.snapshot()
        assert "cg0.dma.bytes_get" in snap
        assert "noc.messages" in snap

    def test_processor_meter_is_callable_snapshot(self):
        meter = processor_meter(SW26010Processor())
        snap = meter()
        assert "cg3.regcomm.bytes_moved" in snap


class TestContextMeter:
    def test_delta_matches_context_stats_exactly(self):
        cg = CoreGroup()
        with ExecutionContext(cg) as ctx:
            meter = context_meter(ctx)
            before_snap = meter()
            before = ctx.stats()
            from repro.core.api import dgemm
            from repro.core.params import BlockingParams

            params = BlockingParams.small(double_buffered=True)
            m, n, k = 2 * params.b_m, params.b_n, params.b_k
            a, b, c = gemm_operands(m, n, k, seed=3)
            dgemm(a, b, c, beta=1.0, variant="SCHED", params=params,
                  context=ctx)
            delta = MetricsRegistry.delta(meter(), before_snap)
            expected = ctx.stats().since(before).as_dict()
        assert delta == {f"ctx.{k}": v for k, v in expected.items()}
