"""Scheduler/Session resilience: retries, fallback, quarantine, respill."""

import numpy as np
import pytest

from repro.core.batch import BatchItem, dgemm_batch
from repro.core.params import BlockingParams
from repro.core.session import Session
from repro.multi.scheduler import CGScheduler
from repro.resil import FaultInjector, FaultSpec, RetryPolicy
from repro.workloads.matrices import mixed_batch

PARAMS = BlockingParams.small(double_buffered=True)


@pytest.fixture(scope="module")
def items():
    return mixed_batch(6, params=PARAMS, seed=0)


@pytest.fixture(scope="module")
def reference(items):
    return dgemm_batch(items, params=PARAMS, pad=True).outputs


def scheduler(**kwargs):
    kwargs.setdefault("params", PARAMS)
    kwargs.setdefault("retry_policy", RetryPolicy())
    return CGScheduler(**kwargs)


class TestRetry:
    def test_transient_fault_recovers_bit_exactly(self, items, reference):
        injector = FaultInjector([FaultSpec("dma.get", nth=4)])
        result = scheduler(injector=injector).run(items)
        assert result.ok
        assert injector.stats.injected == 1
        for out, ref in zip(result.outputs, reference):
            assert np.array_equal(out, ref)
        (report,) = result.fault_reports
        assert report.recovered and report.retries == 1
        assert report.site == "dma.get"
        assert report.backoff_seconds > 0

    def test_backoff_charged_to_modeled_time(self, items):
        injector = FaultInjector([FaultSpec("compute", nth=2)])
        sched = scheduler(injector=injector)
        result = sched.run(items)
        assert result.ok
        (report,) = result.fault_reports
        home = report.core_group
        # that CG ran one extra attempt plus backoff beyond the plan
        extra = (result.per_cg[home].modeled_seconds
                 - result.plan.cg_seconds[home])
        assert extra == pytest.approx(
            result.plan.item_seconds[report.index] * report.retries
            + report.backoff_seconds
        )

    def test_no_policy_fails_fast(self, items):
        injector = FaultInjector([FaultSpec("compute", nth=2)])
        result = CGScheduler(params=PARAMS, injector=injector).run(items)
        assert len(result.errors) == 1
        assert result.errors[0].kind == "FaultInjectedError"
        (report,) = result.fault_reports
        assert not report.recovered and report.retries == 0

    def test_deterministic_errors_not_retried(self, items):
        bad = list(items)
        bad[2] = BatchItem(np.full_like(bad[2].a, np.nan), bad[2].b)
        sched = scheduler(check=True)
        result = sched.run(bad)
        assert len(result.errors) == 1 and result.errors[0].index == 2
        # no fault, no retry, no fallback -> no report
        assert result.fault_reports == ()
        assert sched.resil_stats()["retries"] == 0

    def test_isolate_failures_false_propagates_after_ladder(self, items):
        injector = FaultInjector([FaultSpec("compute", probability=1.0)])
        sched = scheduler(injector=injector,
                          retry_policy=RetryPolicy(max_retries=1))
        from repro.errors import FaultInjectedError

        with pytest.raises(FaultInjectedError):
            sched.run(items, isolate_failures=False)


class TestFallback:
    def test_vectorized_item_falls_back_to_device(self, items, reference):
        # faults only the vectorized engine's kernel phase: retries see
        # it again, the device fallback does not.
        vec_reference = scheduler(engine="vectorized").run(items).outputs
        injector = FaultInjector(
            [FaultSpec("compute", probability=1.0, phase="kernel", max_fires=2)]
        )
        sched = scheduler(engine="vectorized", injector=injector,
                          retry_policy=RetryPolicy(max_retries=1),
                          fallback_engine="device")
        result = sched.run(items)
        assert result.ok
        (report,) = result.fault_reports
        assert report.fallback_engine == "device"
        assert report.recovered
        for idx, out in enumerate(result.outputs):
            # the fallback item is bit-identical to the *device* run,
            # the undisturbed ones to the vectorized run
            ref = (reference if idx == report.index else vec_reference)[idx]
            assert np.array_equal(out, ref)
        assert sched.resil_stats()["fallbacks"] == 1

    def test_no_fallback_when_engines_match(self, items):
        injector = FaultInjector([FaultSpec("compute", probability=1.0,
                                            max_fires=4)])
        sched = scheduler(engine="device", injector=injector,
                          retry_policy=RetryPolicy(max_retries=1),
                          fallback_engine="device")
        result = sched.run(items)
        assert sched.resil_stats()["fallbacks"] == 0
        assert len(result.errors) >= 1


class TestQuarantine:
    @pytest.mark.parametrize("target", [0, 1, 2, 3])
    def test_any_single_cg_quarantine_preserves_results(
        self, items, reference, target
    ):
        injector = FaultInjector([FaultSpec("cg", nth=1, cg=target)])
        result = scheduler(injector=injector).run(items)
        assert result.ok
        for out, ref in zip(result.outputs, reference):
            assert np.array_equal(out, ref)
        assert result.quarantined == (target,)
        assert result.healthy_core_groups == 3
        assert result.per_cg[target].items == 0

    def test_quarantine_subsets_and_healthy_stats(self, items, reference):
        # quarantine every proper subset of the pool
        for subset in ([0], [1, 3], [0, 1, 2]):
            injector = FaultInjector(
                [FaultSpec("cg", probability=1.0, cg=g, max_fires=1)
                 for g in subset]
            )
            result = scheduler(injector=injector).run(items)
            assert result.ok
            for out, ref in zip(result.outputs, reference):
                assert np.array_equal(out, ref)
            assert result.quarantined == tuple(sorted(subset))
            healthy = 4 - len(subset)
            assert result.healthy_core_groups == healthy
            # load-balance counts healthy CGs only
            assert result.load_balance_efficiency == pytest.approx(
                result.modeled_speedup / healthy
            )
            for g in subset:
                assert result.per_cg[g].items == 0
            ran = sum(t.items for t in result.per_cg)
            assert ran == len(items)

    def test_all_quarantined_reports_structured_errors(self, items):
        injector = FaultInjector([FaultSpec("cg", probability=1.0)])
        result = scheduler(injector=injector, n_core_groups=2).run(items)
        assert result.healthy_core_groups == 0
        assert result.load_balance_efficiency == 0.0
        assert len(result.errors) == len(items)
        assert {e.kind for e in result.errors} == {"QuarantineError"}
        assert all(out is None for out in result.outputs)

    def test_all_quarantined_raises_without_isolation(self, items):
        from repro.errors import QuarantineError

        injector = FaultInjector([FaultSpec("cg", probability=1.0)])
        with pytest.raises(QuarantineError):
            scheduler(injector=injector, n_core_groups=2).run(
                items, isolate_failures=False
            )


class TestCleanRunCompatibility:
    def test_no_faults_matches_plan_accounting(self, items):
        result = scheduler().run(items)
        assert result.ok
        assert result.fault_reports == ()
        assert result.quarantined == ()
        assert result.healthy_core_groups == result.n_core_groups
        assert result.makespan_seconds == result.plan.makespan_seconds
        assert result.modeled_speedup == result.plan.modeled_speedup
        assert (result.load_balance_efficiency
                == result.plan.load_balance_efficiency)
        for traffic, planned in zip(result.per_cg, result.plan.cg_seconds):
            assert traffic.modeled_seconds == planned


class TestSessionWiring:
    def test_session_attaches_injector_and_recovers(self, items):
        # the bit-exactness baseline must use the same engine the
        # session batches with (vectorized), not the device reference
        with Session(params=PARAMS, n_core_groups=4) as session:
            clean = session.batch(items)
        injector = FaultInjector([FaultSpec("dma.put", nth=2)])
        with Session(params=PARAMS, n_core_groups=4,
                     injector=injector) as session:
            result = session.batch(items)
        assert result.ok
        for out, ref in zip(result.outputs, clean.outputs):
            assert np.array_equal(out, ref)
        assert injector.stats.injected == 1

    def test_session_resil_stats_namespace(self, items):
        injector = FaultInjector([FaultSpec("compute", nth=1)])
        with Session(params=PARAMS, n_core_groups=2,
                     injector=injector) as session:
            session.batch(items)
            stats = session.resil_stats()
        assert stats["recovered"] == 1
        assert stats["injection"]["injected"] == 1
        from repro.obs.registry import resil_meter

        flat = resil_meter(session.scheduler)()
        assert flat["resil.recovered"] == 1
        assert flat["resil.injection.by_site.compute"] == 1

    def test_scalar_dgemm_faults_propagate(self):
        from repro.errors import FaultInjectedError

        injector = FaultInjector([FaultSpec("memory.store", nth=1)])
        rng = np.random.default_rng(0)
        with Session(params=PARAMS, injector=injector) as session:
            with pytest.raises(FaultInjectedError):
                session.dgemm(rng.standard_normal((24, 24)),
                              rng.standard_normal((24, 24)))

    def test_resil_spans_emitted(self, items):
        from repro.obs import SpanTracer

        tracer = SpanTracer()
        injector = FaultInjector([FaultSpec("dma.get", nth=3),
                                  FaultSpec("cg", nth=1, cg=0)])
        with Session(params=PARAMS, n_core_groups=2, injector=injector,
                     tracer=tracer) as session:
            result = session.batch(items)
        assert result.ok
        names = {s.name for s in tracer.spans}
        assert {"resil.fault", "resil.retry", "resil.quarantine",
                "resil.respill"} <= names
        cats = {s.cat for s in tracer.spans if s.name.startswith("resil.")}
        assert cats == {"resil"}
