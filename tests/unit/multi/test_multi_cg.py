"""Unit tests for the 4-CG extension (NoC, processor, parallel DGEMM)."""

import numpy as np
import pytest

from repro.core.params import BlockingParams
from repro.core.reference import reference_dgemm
from repro.errors import ConfigError, MeshError, UnsupportedShapeError
from repro.multi import (
    NoC,
    SW26010Processor,
    dgemm_multi_cg,
    estimate_multi_cg,
)
from repro.workloads.matrices import gemm_operands

PARAMS = BlockingParams.small(double_buffered=True)


class TestNoC:
    def test_transfer_cost_model(self):
        noc = NoC(link_bandwidth=16e9, message_latency=2e-6)
        assert noc.transfer_seconds(16e9) == pytest.approx(1.0 + 2e-6)
        assert noc.transfer_seconds(0) == pytest.approx(2e-6)

    def test_broadcast_serializes_on_egress(self):
        noc = NoC(n_nodes=4)
        assert noc.broadcast_seconds(1024) == pytest.approx(
            3 * noc.transfer_seconds(1024)
        )

    def test_functional_copy(self):
        proc = SW26010Processor()
        src = proc.cg(0).memory
        dst = proc.cg(2).memory
        handle = src.store("X", np.arange(16.0).reshape(4, 4))
        cost = proc.noc.copy(src, dst, handle, src=0, dst=2)
        assert cost > 0
        assert np.array_equal(dst.array("X"), src.array("X"))
        assert proc.noc.stats.messages == 1
        assert proc.noc.stats.bytes_moved == 16 * 8

    def test_validation(self):
        with pytest.raises(ConfigError):
            NoC(n_nodes=0)
        with pytest.raises(ConfigError):
            NoC(link_bandwidth=0)
        noc = NoC()
        with pytest.raises(ConfigError):
            noc.transfer_seconds(-1)
        with pytest.raises(MeshError):
            proc = SW26010Processor()
            proc.noc.copy(proc.cg(0).memory, proc.cg(1).memory, "X", src=0, dst=9)


class TestProcessor:
    def test_four_isolated_cgs(self):
        proc = SW26010Processor()
        assert len(proc.core_groups) == 4
        proc.cg(1).memory.allocate("x", 16, 16)
        assert proc.cg(0).memory.used_bytes == 0

    def test_chip_peak(self):
        assert SW26010Processor().peak_flops == pytest.approx(4 * 742.4e9)

    def test_cg_index_validated(self):
        with pytest.raises(MeshError):
            SW26010Processor().cg(4)

    def test_noc_node_count_enforced(self):
        with pytest.raises(ConfigError):
            SW26010Processor(noc=NoC(n_nodes=2))


class TestMultiCGDgemm:
    def test_matches_reference(self):
        m, n, k = PARAMS.b_m, 4 * PARAMS.b_n, PARAMS.b_k
        a, b, c = gemm_operands(m, n, k, seed=5)
        out = dgemm_multi_cg(a, b, c, alpha=2.0, beta=-0.5, params=PARAMS)
        assert np.allclose(out, reference_dgemm(2.0, a, b, -0.5, c),
                           rtol=1e-12, atol=1e-9)

    def test_broadcast_traffic_counted(self):
        proc = SW26010Processor()
        m, n, k = PARAMS.b_m, 4 * PARAMS.b_n, PARAMS.b_k
        a, b, _ = gemm_operands(m, n, k, seed=6)
        dgemm_multi_cg(a, b, params=PARAMS, processor=proc)
        assert proc.noc.stats.messages == 3
        assert proc.noc.stats.bytes_moved == 3 * m * k * 8

    def test_every_cg_worked(self):
        proc = SW26010Processor()
        m, n, k = PARAMS.b_m, 4 * PARAMS.b_n, PARAMS.b_k
        a, b, _ = gemm_operands(m, n, k, seed=7)
        dgemm_multi_cg(a, b, params=PARAMS, processor=proc)
        for cg in proc.core_groups:
            assert cg.dma.stats.bytes_total > 0

    def test_bad_panel_split_rejected(self):
        m, n, k = PARAMS.b_m, 2 * PARAMS.b_n, PARAMS.b_k
        a, b, _ = gemm_operands(m, n, k)
        with pytest.raises(UnsupportedShapeError):
            dgemm_multi_cg(a, b, params=PARAMS)

    def test_beta_without_c_rejected(self):
        a, b, _ = gemm_operands(PARAMS.b_m, 4 * PARAMS.b_n, PARAMS.b_k)
        with pytest.raises(UnsupportedShapeError):
            dgemm_multi_cg(a, b, beta=1.0, params=PARAMS)

    def test_pad_rescues_odd_shapes(self):
        """Harmonized kwargs: pad=True works like the single-CG path."""
        rng = np.random.default_rng(8)
        a = rng.standard_normal((100, 70))
        b = rng.standard_normal((70, 90))
        out = dgemm_multi_cg(a, b, params=PARAMS, pad=True)
        assert out.shape == (100, 90)
        assert np.allclose(out, a @ b, rtol=1e-11, atol=1e-8)

    def test_trans_flags(self):
        rng = np.random.default_rng(9)
        m, n, k = PARAMS.b_m, 4 * PARAMS.b_n, PARAMS.b_k
        a = rng.standard_normal((k, m))
        b = rng.standard_normal((n, k))
        out = dgemm_multi_cg(a, b, transa="T", transb="T", params=PARAMS)
        assert np.allclose(out, a.T @ b.T, rtol=1e-11, atol=1e-8)

    def test_check_kwarg(self):
        m, n, k = PARAMS.b_m, 4 * PARAMS.b_n, PARAMS.b_k
        a, b, _ = gemm_operands(m, n, k, seed=10)
        dgemm_multi_cg(a, b, params=PARAMS, check=True)
        with pytest.raises(AssertionError):
            dgemm_multi_cg(np.full((m, k), np.nan), b, params=PARAMS,
                           check=True)

    def test_broadcast_operands_freed(self):
        """The 'mc.A' staging copies must not outlive the call."""
        proc = SW26010Processor()
        proc.cg(1).memory.store("user.resident", np.ones((8, 8)))
        baselines = [cg.memory.used_bytes for cg in proc.core_groups]
        m, n, k = PARAMS.b_m, 4 * PARAMS.b_n, PARAMS.b_k
        a, b, _ = gemm_operands(m, n, k, seed=11)
        dgemm_multi_cg(a, b, params=PARAMS, processor=proc)
        assert [cg.memory.used_bytes for cg in proc.core_groups] == baselines

    def test_broadcast_operands_freed_on_raise(self):
        proc = SW26010Processor()
        baselines = [cg.memory.used_bytes for cg in proc.core_groups]
        m, n, k = PARAMS.b_m, 4 * PARAMS.b_n, PARAMS.b_k
        a, b, _ = gemm_operands(m, n, k, seed=12)
        with pytest.raises(AssertionError):
            dgemm_multi_cg(np.full((m, k), np.nan), b, params=PARAMS,
                           processor=proc, check=True)
        assert [cg.memory.used_bytes for cg in proc.core_groups] == baselines

    def test_contexts_kwarg_validated(self):
        from repro.core.context import ExecutionContext
        from repro.errors import ConfigError as CfgErr

        proc = SW26010Processor()
        m, n, k = PARAMS.b_m, 4 * PARAMS.b_n, PARAMS.b_k
        a, b, _ = gemm_operands(m, n, k, seed=13)
        with pytest.raises(CfgErr):
            dgemm_multi_cg(a, b, params=PARAMS, processor=proc,
                           contexts=[ExecutionContext(proc.cg(0))])


class TestMultiCGEstimate:
    def test_speedup_band(self):
        est = estimate_multi_cg(9216, 9216, 9216)
        assert 2.5 <= est.speedup_vs_single_cg <= 4.0
        assert est.parallel_efficiency <= 1.0

    def test_broadcast_hurts_small_problems(self):
        small = estimate_multi_cg(3072, 3072, 3072)
        large = estimate_multi_cg(15360, 15360, 15360)
        assert small.parallel_efficiency < large.parallel_efficiency

    def test_free_noc_gives_near_linear_scaling(self):
        free = NoC(link_bandwidth=1e15, message_latency=0.0)
        est = estimate_multi_cg(9216, 9216, 9216, noc=free)
        assert est.speedup_vs_single_cg > 3.7

    def test_n_must_split(self):
        with pytest.raises(UnsupportedShapeError):
            estimate_multi_cg(9216, 9217, 9216)

    def test_gflops_accounting(self):
        est = estimate_multi_cg(9216, 9216, 9216)
        assert est.gflops == pytest.approx(
            2 * 9216**3 / est.seconds / 1e9
        )
