"""Per-item blocking overrides and dispatch policies on the scheduler.

Covers the ``blocking=`` pass-through from ``Session.batch`` to
``CGScheduler`` (validation errors name the offending item index, the
``dgemm_batch`` convention), the ``round_robin`` ablation policy, and
the tuned-table consultation path on batches.
"""

import numpy as np
import pytest

from repro.api import GemmRequest
from repro.core.params import BlockingParams
from repro.core.session import Session
from repro.errors import ConfigError
from repro.multi import CGScheduler
from repro.multi.scheduler import POLICIES
from repro.tuning import TunedEntry, TuningTable
from repro.workloads.matrices import gemm_operands

PARAMS = BlockingParams.small(double_buffered=True)
ALT = BlockingParams(p_m=16, p_n=16, p_k=32)


def items_of(shapes, seed=0):
    return [
        GemmRequest(*gemm_operands(m, n, k, seed=seed + i)[:2])
        for i, (m, n, k) in enumerate(shapes)
    ]


SHAPES = [(64, 32, 64), (128, 64, 128), (64, 32, 64)]


class TestResolveBlocking:
    def test_single_override_broadcasts(self):
        scheduler = CGScheduler(n_core_groups=2)
        resolved = scheduler.resolve_blocking(SHAPES, blocking=ALT)
        assert resolved == [ALT] * 3

    def test_per_item_list(self):
        scheduler = CGScheduler(n_core_groups=2)
        overrides = [ALT, None, PARAMS]
        resolved = scheduler.resolve_blocking(SHAPES, blocking=overrides)
        assert resolved[0] == ALT
        assert resolved[1] == scheduler.params  # None -> scheduler default
        assert resolved[2] == PARAMS

    def test_length_mismatch_counts_both_sides(self):
        scheduler = CGScheduler(n_core_groups=2)
        with pytest.raises(
            ConfigError, match=r"carries 2 overrides for 3 items"
        ):
            scheduler.resolve_blocking(SHAPES, blocking=[ALT, PARAMS])

    def test_bad_entry_names_item_index(self):
        scheduler = CGScheduler(n_core_groups=2)
        with pytest.raises(ConfigError, match=r"batch item 1:.*got str"):
            scheduler.resolve_blocking(SHAPES, blocking=[ALT, "16x8x16", None])

    def test_infeasible_override_names_item_index(self):
        huge = BlockingParams(p_m=32, p_n=48, p_k=96)
        scheduler = CGScheduler(n_core_groups=2)
        with pytest.raises(ConfigError, match=r"batch item 2"):
            scheduler.resolve_blocking(SHAPES, blocking=[None, None, huge])

    def test_wrong_buffering_regime_names_item_index(self):
        single = BlockingParams(p_m=16, p_n=8, p_k=16, double_buffered=False)
        scheduler = CGScheduler(n_core_groups=2, variant="SCHED")
        with pytest.raises(
            ConfigError, match=r"batch item 0.*double-buffered"
        ):
            scheduler.resolve_blocking(SHAPES, blocking=[single, None, None])


class TestBatchOverrides:
    def test_override_matches_explicit_session_bitwise(self):
        items = items_of(SHAPES)
        with Session(n_core_groups=2) as session:
            via_override = session.batch(items, blocking=ALT)
        with Session(n_core_groups=2, params=ALT) as session:
            via_params = session.batch(items)
        for got, want in zip(via_override.outputs, via_params.outputs):
            assert np.array_equal(got, want)
        assert via_override.flops == via_params.flops

    def test_mixed_overrides_execute_correctly(self):
        items = items_of(SHAPES)
        with Session(n_core_groups=2) as session:
            result = session.batch(items, blocking=[ALT, None, PARAMS])
        assert not result.errors
        for item, out in zip(items, result.outputs):
            want = np.asarray(item.a) @ np.asarray(item.b)
            np.testing.assert_allclose(out, want, rtol=1e-10)


class TestPolicies:
    def test_policies_constant(self):
        assert POLICIES == ("binned", "round_robin")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError, match="policy"):
            CGScheduler(n_core_groups=2, policy="lifo")

    def test_round_robin_assignment(self):
        scheduler = CGScheduler(n_core_groups=2, policy="round_robin")
        plan = scheduler.plan_shapes(SHAPES)
        assert list(plan.assignments) == [0, 1, 0]

    def test_round_robin_matches_binned_bitwise(self):
        items = items_of(SHAPES)
        with Session(n_core_groups=2, policy="round_robin") as session:
            rr = session.batch(items)
        with Session(n_core_groups=2, policy="binned") as session:
            binned = session.batch(items)
        for got, want in zip(rr.outputs, binned.outputs):
            assert np.array_equal(got, want)


class TestTunedBatches:
    def test_batch_consults_table_bitwise(self):
        entry = TunedEntry(
            variant="SCHED",
            engine="stepwise",
            bin=(64, 32, 64),
            p_m=ALT.p_m,
            p_n=ALT.p_n,
            p_k=ALT.p_k,
            double_buffered=True,
            measured_gflops=1.0,
            modeled_gflops=1.0,
            estimator_rank=0,
        )
        table = TuningTable.from_entries([entry])
        items = items_of([(64, 32, 64), (60, 30, 60)])
        with Session(
            n_core_groups=2, engine="stepwise", tuned=table
        ) as session:
            via_table = session.batch(items)
        with Session(n_core_groups=2, engine="stepwise") as session:
            via_explicit = session.batch(items, blocking=[ALT, ALT])
        for got, want in zip(via_table.outputs, via_explicit.outputs):
            assert np.array_equal(got, want)
