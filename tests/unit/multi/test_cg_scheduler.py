"""Unit tests for the multi-CG batch scheduler (CGScheduler)."""

import numpy as np
import pytest

from repro.core.batch import BatchItem, dgemm_batch
from repro.core.params import BlockingParams
from repro.errors import ConfigError
from repro.multi import CGScheduler, SW26010Processor
from repro.workloads.matrices import gemm_operands, mixed_batch

PARAMS = BlockingParams.small(double_buffered=True)


def same_shape_items(n, m=None, cols=None, k=None, seed=0):
    m = m or PARAMS.b_m
    cols = cols or PARAMS.b_n
    k = k or PARAMS.b_k
    return [
        BatchItem(*gemm_operands(m, cols, k, seed=seed + s)[:2])
        for s in range(n)
    ]


class TestConstruction:
    def test_builds_processor_when_missing(self):
        scheduler = CGScheduler(params=PARAMS)
        assert scheduler.n_core_groups == 4
        assert scheduler.processor.N_CORE_GROUPS == 4

    def test_pool_size_validated(self):
        with pytest.raises(ConfigError):
            CGScheduler(n_core_groups=0, params=PARAMS)
        with pytest.raises(ConfigError):
            CGScheduler(n_core_groups=5, params=PARAMS)

    def test_empty_batch_rejected(self):
        scheduler = CGScheduler(params=PARAMS)
        with pytest.raises(ConfigError):
            scheduler.run([])
        with pytest.raises(ConfigError):
            scheduler.plan([])


class TestPlanning:
    def test_same_shape_items_bin_but_do_not_starve(self):
        """Affinity must not serialize a uniform batch on one CG."""
        scheduler = CGScheduler(n_core_groups=4, params=PARAMS)
        plan = scheduler.plan_shapes([(PARAMS.b_m, PARAMS.b_n, PARAMS.b_k)] * 8)
        used = set(plan.assignments)
        assert len(used) == 4
        assert max(plan.cg_seconds) <= 3 * min(plan.cg_seconds)

    def test_distinct_shapes_spread_least_loaded(self):
        scheduler = CGScheduler(n_core_groups=4, params=PARAMS)
        shapes = [
            (PARAMS.b_m, PARAMS.b_n, PARAMS.b_k),
            (2 * PARAMS.b_m, PARAMS.b_n, PARAMS.b_k),
            (PARAMS.b_m, 2 * PARAMS.b_n, PARAMS.b_k),
            (PARAMS.b_m, PARAMS.b_n, 2 * PARAMS.b_k),
        ]
        plan = scheduler.plan_shapes(shapes)
        # four distinct shapes on an idle pool: one CG each
        assert sorted(plan.assignments) == [0, 1, 2, 3]

    def test_repeated_shape_keeps_home_cg(self):
        """A recurring shape sticks to its bin while loads stay close."""
        scheduler = CGScheduler(n_core_groups=4, params=PARAMS)
        shape = (PARAMS.b_m, PARAMS.b_n, PARAMS.b_k)
        other = (2 * PARAMS.b_m, 2 * PARAMS.b_n, 2 * PARAMS.b_k)
        plan = scheduler.plan_shapes([shape, other, shape])
        assert plan.assignments[0] == plan.assignments[2]

    def test_padded_shapes_share_a_bin(self):
        """Shapes that pad to the same block multiple are one bin."""
        scheduler = CGScheduler(n_core_groups=4, params=PARAMS)
        a = (PARAMS.b_m - 8, PARAMS.b_n - 8, PARAMS.b_k - 8)
        b = (PARAMS.b_m, PARAMS.b_n, PARAMS.b_k)
        plan = scheduler.plan_shapes([a, b])
        assert plan.assignments[0] == plan.assignments[1]
        assert len(plan.shape_bins) == 1

    def test_makespan_never_exceeds_serial(self):
        scheduler = CGScheduler(n_core_groups=4, params=PARAMS)
        items = mixed_batch(16, params=PARAMS, seed=0)
        plan = scheduler.plan(items)
        assert plan.makespan_seconds <= plan.serial_seconds
        assert plan.modeled_speedup >= 1.0
        assert 0.0 < plan.load_balance_efficiency <= 1.0

    def test_single_cg_pool_is_the_serial_baseline(self):
        scheduler = CGScheduler(n_core_groups=1, params=PARAMS)
        plan = scheduler.plan(mixed_batch(6, params=PARAMS, seed=0))
        assert plan.makespan_seconds == pytest.approx(plan.serial_seconds)
        assert plan.modeled_speedup == pytest.approx(1.0)

    def test_plan_shapes_allocates_nothing(self):
        """Paper-scale planning runs on bare shape tuples."""
        scheduler = CGScheduler(n_core_groups=4,
                                params=BlockingParams.paper_double())
        plan = scheduler.plan_shapes(
            [(16384, 16384, 16384), (8192, 4096, 12288)] * 4
        )
        assert len(plan.assignments) == 8
        assert plan.serial_seconds > 0

    def test_estimates_cached_per_padded_shape(self):
        scheduler = CGScheduler(n_core_groups=4, params=PARAMS)
        scheduler.plan_shapes([(PARAMS.b_m, PARAMS.b_n, PARAMS.b_k)] * 50)
        assert len(scheduler._seconds_cache) == 1


class TestExecution:
    def test_matches_serial_dgemm_batch_bitwise(self):
        items = mixed_batch(16, params=PARAMS, seed=0)
        serial = dgemm_batch(items, params=PARAMS)
        result = CGScheduler(n_core_groups=4, params=PARAMS).run(items)
        assert result.ok
        assert all(
            np.array_equal(x, y)
            for x, y in zip(serial.outputs, result.outputs)
        )
        assert result.makespan_seconds <= result.serial_seconds

    def test_all_cg_budgets_restored(self):
        proc = SW26010Processor()
        proc.cg(3).memory.store("user.resident", np.ones((8, 8)))
        baselines = [proc.cg(g).memory.used_bytes for g in range(4)]
        CGScheduler(proc, params=PARAMS).run(
            mixed_batch(8, params=PARAMS, seed=1)
        )
        assert [proc.cg(g).memory.used_bytes for g in range(4)] == baselines

    def test_traffic_attributed_per_cg(self):
        result = CGScheduler(n_core_groups=4, params=PARAMS).run(
            mixed_batch(8, params=PARAMS, seed=2)
        )
        active = [t for t in result.per_cg if t.items]
        assert len(active) >= 2
        for t in active:
            assert t.stats.dma_bytes > 0
            assert t.stats.staged == 3 * t.items
        assert result.dma_bytes == sum(t.stats.dma_bytes for t in result.per_cg)
        assert sum(t.items for t in result.per_cg) == len(result)

    def test_binned_items_hit_the_staging_plan_cache(self):
        """Same-shape items on one CG restage in place (the binning win)."""
        result = CGScheduler(n_core_groups=4, params=PARAMS).run(
            same_shape_items(8)
        )
        hits = sum(t.stats.plan_hits for t in result.per_cg)
        allocs = sum(t.stats.allocations for t in result.per_cg)
        # 8 items x 3 slots staged; at most one allocation per slot per CG
        assert hits + allocs == 3 * 8
        assert allocs <= 3 * 4

    def test_failure_isolated_to_item(self):
        proc = SW26010Processor()
        baselines = [proc.cg(g).memory.used_bytes for g in range(4)]
        items = same_shape_items(6)
        items[2] = BatchItem(np.full_like(items[2].a, np.nan), items[2].b)
        scheduler = CGScheduler(proc, params=PARAMS, check=True)
        result = scheduler.run(items)
        assert len(result.errors) == 1
        error = result.errors[0]
        assert error.index == 2
        assert error.kind == "AssertionError"
        assert result.outputs[2] is None
        assert all(
            result.outputs[i] is not None for i in range(6) if i != 2
        )
        assert result.per_cg[error.core_group].failures == 1
        # the CG's context stays usable and budgets are intact
        assert CGScheduler(proc, params=PARAMS).run(same_shape_items(2)).ok
        assert [proc.cg(g).memory.used_bytes for g in range(4)] == baselines

    def test_isolate_failures_false_raises(self):
        items = same_shape_items(3)
        items[1] = BatchItem(np.full_like(items[1].a, np.nan), items[1].b)
        scheduler = CGScheduler(n_core_groups=4, params=PARAMS, check=True)
        with pytest.raises(AssertionError):
            scheduler.run(items, isolate_failures=False)

    def test_flops_count_successes_only(self):
        items = same_shape_items(4)
        items[0] = BatchItem(np.full_like(items[0].a, np.nan), items[0].b)
        result = CGScheduler(n_core_groups=4, params=PARAMS, check=True).run(items)
        m, n, k = PARAMS.b_m, PARAMS.b_n, PARAMS.b_k
        assert result.flops == 3 * 2 * m * n * k

    def test_trans_items_supported(self):
        rng = np.random.default_rng(5)
        a = rng.standard_normal((PARAMS.b_k, PARAMS.b_m))   # to transpose
        b = rng.standard_normal((PARAMS.b_n, PARAMS.b_k))
        items = [BatchItem(a, b, transa="T", transb="T")]
        result = CGScheduler(n_core_groups=2, params=PARAMS).run(items)
        assert result.ok
        assert np.allclose(result.outputs[0], a.T @ b.T, rtol=1e-11, atol=1e-8)

    def test_scheduler_reusable_across_runs(self):
        scheduler = CGScheduler(n_core_groups=4, params=PARAMS)
        first = scheduler.run(same_shape_items(3))
        second = scheduler.run(same_shape_items(3, seed=7))
        assert first.ok and second.ok


class TestDgemmBatchDelegation:
    def test_n_core_groups_path_matches_serial(self):
        items = mixed_batch(8, params=PARAMS, seed=0)
        serial = dgemm_batch(items, params=PARAMS)
        pooled = dgemm_batch(items, params=PARAMS, n_core_groups=4)
        assert all(
            np.array_equal(x, y)
            for x, y in zip(serial.outputs, pooled.outputs)
        )
        assert pooled.n_core_groups == 4
        assert pooled.flops == serial.flops

    def test_processor_path(self):
        proc = SW26010Processor()
        result = dgemm_batch(
            same_shape_items(4), params=PARAMS, processor=proc
        )
        assert result.ok

    def test_pool_path_raises_on_failure(self):
        """Delegation keeps the serial raise-on-error contract."""
        items = same_shape_items(3)
        items[1] = BatchItem(np.full_like(items[1].a, np.nan), items[1].b)
        with pytest.raises(AssertionError):
            dgemm_batch(items, params=PARAMS, n_core_groups=4, check=True)

    def test_pool_and_single_cg_kwargs_conflict(self):
        from repro.arch.core_group import CoreGroup

        with pytest.raises(ConfigError):
            dgemm_batch(
                same_shape_items(2), params=PARAMS,
                core_group=CoreGroup(), n_core_groups=4,
            )
