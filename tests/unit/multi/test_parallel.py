"""Concurrency suite for ``CGScheduler.run(parallel=True)``.

The contract under test: parallel dispatch is an *implementation*
detail — outputs, accounting, resilience behavior and span-counter
reconciliation are indistinguishable from serial mode, and the
coordination layer neither corrupts shared state nor lets two runs
overlap on one scheduler.
"""

import threading

import numpy as np
import pytest

from repro.core.batch import BatchItem
from repro.core.params import BlockingParams
from repro.core.session import Session
from repro.errors import ConfigError, QuarantineError
from repro.multi.scheduler import CGScheduler
from repro.obs import SpanTracer
from repro.resil import FaultInjector, FaultSpec, RetryPolicy
from repro.workloads.matrices import mixed_batch

PARAMS = BlockingParams.small(double_buffered=True)


def build_scheduler(**kw):
    kw.setdefault("n_core_groups", 4)
    kw.setdefault("params", PARAMS)
    return CGScheduler(**kw)


class TestParallelEquivalence:
    def test_outputs_bit_identical_to_serial(self):
        items = mixed_batch(12, params=PARAMS, seed=7)
        with build_scheduler() as serial_sched:
            serial = serial_sched.run(items)
        with build_scheduler() as par_sched:
            par = par_sched.run(items, parallel=True)
        assert serial.ok and par.ok
        for ref, out in zip(serial.outputs, par.outputs):
            assert np.array_equal(ref, out)

    def test_accounting_identical_to_serial(self):
        items = mixed_batch(10, params=PARAMS, seed=3)
        with build_scheduler() as s1, build_scheduler() as s2:
            serial = s1.run(items)
            par = s2.run(items, parallel=True)
        assert serial.flops == par.flops
        assert serial.padded_flops == par.padded_flops
        assert serial.traffic.as_dict() == par.traffic.as_dict()
        for ts, tp in zip(serial.per_cg, par.per_cg):
            assert ts.items == tp.items
            assert ts.failures == tp.failures
            # each CG accumulates the same items in the same order, so
            # even the float accumulation is bit-identical
            assert ts.modeled_seconds == tp.modeled_seconds
            assert ts.stats.as_dict() == tp.stats.as_dict()
        assert sum(t.items for t in par.per_cg) == len(items)

    def test_single_cg_pool_falls_back_to_serial_loop(self):
        items = mixed_batch(4, params=PARAMS, seed=1)
        with build_scheduler(n_core_groups=1) as sched:
            result = sched.run(items, parallel=True)
        assert result.ok
        assert sched._workers is None  # no pool spun up for one CG


class TestParallelSession:
    def test_session_batch_parallel_with_faults_and_tracing(self):
        """The satellite stress case: 4 CGs, mixed shapes, an active
        injector, tracing on — outputs bit-identical to serial, span
        deltas reconcile bit-exactly with ``Session.stats()``."""
        items = mixed_batch(12, params=PARAMS, seed=11)
        with Session(params=PARAMS, n_core_groups=4) as s:
            reference = s.batch(items)
        assert reference.ok

        tracer = SpanTracer()
        injector = FaultInjector([
            FaultSpec("dma.get", nth=2),
            FaultSpec("regcomm", nth=5),
            FaultSpec("cg", nth=1, cg=3),
        ])
        with Session(
            params=PARAMS, n_core_groups=4, tracer=tracer, injector=injector,
        ) as s:
            result = s.batch(items, parallel=True)
            totals = s.stats().traffic.as_dict()

        assert result.ok, result.errors
        for ref, out in zip(reference.outputs, result.outputs):
            assert np.array_equal(ref, out)
        assert result.quarantined == (3,)
        assert result.fault_reports  # the disturbed items reported in
        assert all(r.recovered for r in result.fault_reports)

        # bit-exact attribution: summing every dgemm span's counter
        # deltas reproduces the session's cumulative traffic
        deltas = tracer.counter_totals("dgemm")
        for field, total in totals.items():
            assert deltas.get(f"ctx.{field}", 0) == total, field
        # every span closed, one globally ordered index space
        assert tracer.current() is None
        assert sorted(s.index for s in tracer.spans) == list(
            range(len(tracer.spans))
        )
        # worker-thread subtrees adopted the batch span, not orphaned
        roots = tracer.roots()
        assert [r.name for r in roots] == ["session.batch"]
        # each CG renders on its own Chrome-trace row
        tracks = {s.track for s in tracer.spans if s.name == "cg_dispatch"}
        assert tracks <= {1, 2, 3, 4}

    def test_parallel_span_tree_parents_are_consistent(self):
        items = mixed_batch(6, params=PARAMS, seed=2)
        tracer = SpanTracer()
        with Session(params=PARAMS, n_core_groups=4, tracer=tracer) as s:
            s.batch(items, parallel=True)
        by_index = {s.index: s for s in tracer.spans}
        for span in tracer.spans:
            if span.parent is None:
                assert span.depth == 0
                continue
            parent = by_index[span.parent]
            assert span.depth == parent.depth + 1
            assert parent.start <= span.start
            assert span.end <= parent.end


class TestReentrancyGuard:
    def test_guard_raises_while_held(self):
        items = mixed_batch(2, params=PARAMS, seed=0)
        with build_scheduler() as sched:
            assert sched._run_guard.acquire(blocking=False)
            try:
                with pytest.raises(ConfigError, match="not reentrant"):
                    sched.run(items)
            finally:
                sched._run_guard.release()
            # guard released cleanly: the scheduler still works
            assert sched.run(items).ok

    def test_overlapping_run_from_second_thread_raises(self):
        """Deterministic overlap: a hooked injector parks the first run
        mid-flight while a second thread calls ``run`` on the same
        scheduler — which must fail loudly, not corrupt the contexts."""
        started = threading.Event()
        release = threading.Event()

        class Parking(FaultInjector):
            def fire(self, site, *, cg=None):
                if site == "cg" and not started.is_set():
                    started.set()
                    release.wait(timeout=30)
                super().fire(site, cg=cg)

        items = mixed_batch(4, params=PARAMS, seed=5)
        with build_scheduler(injector=Parking()) as sched:
            errors = []
            results = []

            def first():
                results.append(sched.run(items, parallel=True))

            t = threading.Thread(target=first)
            t.start()
            assert started.wait(timeout=30)
            with pytest.raises(ConfigError, match="not reentrant"):
                sched.run(items)
            release.set()
            t.join(timeout=60)
            assert not t.is_alive()
            assert not errors
            assert results and results[0].ok


class TestParallelResilience:
    def test_quarantine_respills_across_worker_threads(self):
        items = mixed_batch(8, params=PARAMS, seed=9)
        with Session(params=PARAMS, n_core_groups=4) as s:
            reference = s.batch(items)
        injector = FaultInjector([FaultSpec("cg", nth=1, cg=2)])
        with Session(params=PARAMS, n_core_groups=4, injector=injector) as s:
            result = s.batch(items, parallel=True)
        assert result.ok
        assert result.quarantined == (2,)
        for ref, out in zip(reference.outputs, result.outputs):
            assert np.array_equal(ref, out)
        # the dead CG executed nothing; its queue landed elsewhere
        assert result.per_cg[2].items == 0
        assert sum(t.items for t in result.per_cg) == len(items)
        assert result.healthy_core_groups == 3

    @pytest.mark.parametrize("parallel", [False, True])
    def test_all_quarantined_items_are_unplaced(self, parallel):
        items = mixed_batch(5, params=PARAMS, seed=4)
        injector = FaultInjector([FaultSpec("cg", probability=1.0)])
        with build_scheduler(n_core_groups=2, injector=injector) as sched:
            result = sched.run(items, parallel=parallel)
        assert not result.ok
        assert result.unplaced == tuple(range(len(items)))
        assert all(out is None for out in result.outputs)
        assert all(e.kind == "QuarantineError" for e in result.errors)
        # an item that never executed is charged to no CG
        assert all(t.items == 0 and t.failures == 0 for t in result.per_cg)
        assert result.healthy_core_groups == 0

    @pytest.mark.parametrize("parallel", [False, True])
    def test_all_quarantined_raises_without_isolation(self, parallel):
        items = mixed_batch(3, params=PARAMS, seed=4)
        injector = FaultInjector([FaultSpec("cg", probability=1.0)])
        with build_scheduler(n_core_groups=2, injector=injector) as sched:
            with pytest.raises(QuarantineError):
                sched.run(items, parallel=parallel, isolate_failures=False)
        # the abort tore down cleanly: a fresh run on the same
        # scheduler works once the injector is disarmed
        with build_scheduler(n_core_groups=2) as sched:
            assert sched.run(items, parallel=parallel).ok

    def test_parallel_abort_propagates_first_failure(self):
        items = mixed_batch(6, params=PARAMS, seed=8)
        injector = FaultInjector([FaultSpec("compute", nth=1)])
        with build_scheduler(injector=injector) as sched:
            with pytest.raises(Exception, match="compute"):
                sched.run(items, parallel=True, isolate_failures=False)

    def test_stress_probability_faults_never_corrupt(self):
        """Larger parallel batch under probabilistic chaos: every item
        either recovers bit-exactly or fails structurally — silent
        corruption is the one forbidden state.

        Reference and chaos run use the same engine (no fallback): a
        fallback would re-run disturbed items on a *different* engine,
        whose results match to tolerance rather than bit-for-bit."""
        items = mixed_batch(16, params=PARAMS, seed=13)
        with build_scheduler() as ref_sched:
            reference = ref_sched.run(items)
        assert reference.ok
        injector = FaultInjector(
            [
                FaultSpec("dma.get", probability=0.05),
                FaultSpec("compute", probability=0.05),
                FaultSpec("cg", probability=0.02),
            ],
            seed=99,
        )
        with build_scheduler(
            injector=injector, retry_policy=RetryPolicy(),
        ) as sched:
            result = sched.run(items, parallel=True)
        failed = {e.index for e in result.errors}
        for i, out in enumerate(result.outputs):
            if i in failed:
                assert out is None
            else:
                assert np.array_equal(out, reference.outputs[i])
        assert sum(t.items for t in result.per_cg) + len(result.unplaced) == len(
            items
        )
        assert sum(t.failures for t in result.per_cg) + len(
            result.unplaced
        ) == len(result.errors)


class TestSchedulerLifecycle:
    def test_close_is_idempotent_and_pool_is_lazy(self):
        sched = build_scheduler()
        assert sched._workers is None
        sched.run(mixed_batch(4, params=PARAMS, seed=0), parallel=True)
        assert sched._workers is not None
        sched.close()
        assert sched._workers is None
        sched.close()

    def test_session_close_releases_worker_pool(self):
        with Session(params=PARAMS, n_core_groups=4) as s:
            s.batch(mixed_batch(4, params=PARAMS, seed=0), parallel=True)
            assert s.scheduler._workers is not None
        assert s.scheduler._workers is None
