"""Unit tests for the A6 software-cache ablation."""

import pytest

from repro.experiments import cache_ablation


@pytest.fixture(scope="module")
def result():
    return cache_ablation.run(n=32)


class TestCacheAblation:
    def test_numerically_exact(self, result):
        assert result.max_error < 1e-10

    def test_high_hit_rate_yet_slow(self, result):
        """The point of the ablation: even >95% hit rate cannot save
        per-access software overhead."""
        assert result.stats.hit_rate > 0.90
        assert result.slowdown > 20.0

    def test_cycles_per_flop_dominated_by_tag_checks(self, result):
        # 3+ accesses per inner FMA * 10 cycles >> 1/8 cycle of math
        assert result.cycles_per_flop > 5.0

    def test_access_count_matches_loop_structure(self, result):
        n = result.n
        # i-k-j loop: A read n^2 times; B and C read n^3 times; C
        # written n^3 times (writes also probe the cache)
        expected = n * n + 3 * n**3
        assert result.stats.accesses == expected

    def test_render(self, result):
        text = cache_ablation.render(result).render()
        assert "slowdown" in text and "hit rate" in text
