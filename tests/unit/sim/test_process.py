"""Unit tests for generator processes."""

import pytest

from repro.errors import SimulationError
from repro.sim import Engine


@pytest.fixture()
def engine() -> Engine:
    return Engine()


class TestProcess:
    def test_process_waits_on_yielded_events(self, engine):
        def body():
            yield engine.timeout(2.0)
            yield engine.timeout(3.0)
            return engine.now

        proc = engine.process(body())
        assert engine.run(proc) == 5.0

    def test_yield_receives_event_value(self, engine):
        def body():
            got = yield engine.timeout(1.0, value=42)
            return got

        assert engine.run(engine.process(body())) == 42

    def test_process_is_event_for_other_processes(self, engine):
        def child():
            yield engine.timeout(4.0)
            return "child done"

        def parent():
            result = yield engine.process(child())
            return (result, engine.now)

        assert engine.run(engine.process(parent())) == ("child done", 4.0)

    def test_processes_run_concurrently(self, engine):
        log = []

        def worker(name, delay):
            yield engine.timeout(delay)
            log.append((engine.now, name))

        engine.process(worker("slow", 3.0))
        engine.process(worker("fast", 1.0))
        engine.run()
        assert log == [(1.0, "fast"), (3.0, "slow")]

    def test_non_generator_rejected(self, engine):
        with pytest.raises(SimulationError):
            engine.process(lambda: None)  # type: ignore[arg-type]

    def test_yielding_non_event_rejected(self, engine):
        def body():
            yield 3.0  # not an Event

        engine.process(body())
        with pytest.raises(SimulationError, match="only yield Event"):
            engine.run()

    def test_immediate_return(self, engine):
        def body():
            return "done"
            yield  # pragma: no cover

        assert engine.run(engine.process(body())) == "done"
        assert engine.now == 0.0
