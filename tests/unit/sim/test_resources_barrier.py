"""Unit tests for Resource and Barrier."""

import pytest

from repro.errors import SimulationError
from repro.sim import Barrier, Engine, Resource


@pytest.fixture()
def engine() -> Engine:
    return Engine()


class TestResource:
    def test_serializes_at_capacity_one(self, engine):
        res = Resource(engine, 1)
        finish = []

        def worker(name, hold):
            yield engine.process(res.use(hold))
            finish.append((engine.now, name))

        engine.process(worker("a", 2.0))
        engine.process(worker("b", 3.0))
        engine.run()
        assert finish == [(2.0, "a"), (5.0, "b")]

    def test_capacity_two_overlaps(self, engine):
        res = Resource(engine, 2)
        finish = []

        def worker(hold):
            yield engine.process(res.use(hold))
            finish.append(engine.now)

        for _ in range(3):
            engine.process(worker(2.0))
        engine.run()
        assert finish == [2.0, 2.0, 4.0]

    def test_fifo_admission(self, engine):
        res = Resource(engine, 1)
        order = []

        def worker(name):
            yield engine.process(res.use(1.0))
            order.append(name)

        for name in "abc":
            engine.process(worker(name))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_release_without_request_raises(self, engine):
        res = Resource(engine, 1)
        with pytest.raises(SimulationError):
            res.release()

    def test_busy_time_and_utilization(self, engine):
        res = Resource(engine, 1)

        def worker():
            yield engine.process(res.use(3.0))
            yield engine.timeout(1.0)

        engine.run(engine.process(worker()))
        assert res.busy_time == pytest.approx(3.0)
        assert res.utilization() == pytest.approx(3.0 / 4.0)

    def test_bad_capacity(self, engine):
        with pytest.raises(SimulationError):
            Resource(engine, 0)

    def test_queue_depth_visible(self, engine):
        res = Resource(engine, 1)
        res.request()
        res.request()
        assert res.in_use == 1
        assert res.queued == 1


class TestBarrier:
    def test_releases_when_full(self, engine):
        barrier = Barrier(engine, 3)
        times = []

        def party(delay):
            yield engine.timeout(delay)
            yield barrier.wait()
            times.append(engine.now)

        for d in (1.0, 5.0, 3.0):
            engine.process(party(d))
        engine.run()
        assert times == [5.0, 5.0, 5.0]
        assert barrier.generations == 1

    def test_cyclic_reuse(self, engine):
        barrier = Barrier(engine, 2)
        log = []

        def party(name):
            for round_ in range(3):
                yield engine.timeout(1.0)
                gen = yield barrier.wait()
                log.append((name, gen))

        engine.process(party("x"))
        engine.process(party("y"))
        engine.run()
        assert barrier.generations == 3
        assert log.count(("x", 1)) == 1 and log.count(("y", 3)) == 1

    def test_single_party_never_blocks(self, engine):
        barrier = Barrier(engine, 1)

        def body():
            yield barrier.wait()
            return engine.now

        assert engine.run(engine.process(body())) == 0.0

    def test_bad_parties(self, engine):
        with pytest.raises(SimulationError):
            Barrier(engine, 0)

    def test_arrived_count(self, engine):
        barrier = Barrier(engine, 3)
        barrier.wait()
        assert barrier.arrived == 1
