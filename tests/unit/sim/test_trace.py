"""Unit tests for the span tracer."""

import pytest

from repro.sim import Tracer


@pytest.fixture()
def tracer() -> Tracer:
    return Tracer()


class TestRecording:
    def test_record_and_total(self, tracer):
        tracer.record("dma", "a", 0.0, 2.0)
        tracer.record("dma", "b", 5.0, 6.0)
        assert tracer.total("dma") == pytest.approx(3.0)

    def test_backwards_span_rejected(self, tracer):
        with pytest.raises(ValueError):
            tracer.record("x", "bad", 2.0, 1.0)

    def test_categories(self, tracer):
        tracer.record("dma", "", 0, 1)
        tracer.record("compute", "", 0, 1)
        assert tracer.categories() == ["compute", "dma"]

    def test_filter(self, tracer):
        tracer.record("dma", "a", 0, 1)
        tracer.record("compute", "b", 0, 1)
        assert [s.label for s in tracer.filter("dma")] == ["a"]


class TestBusyUnion:
    def test_overlapping_spans_counted_once(self, tracer):
        tracer.record("dma", "a", 0.0, 3.0)
        tracer.record("dma", "b", 2.0, 5.0)
        assert tracer.busy("dma") == pytest.approx(5.0)
        assert tracer.total("dma") == pytest.approx(6.0)

    def test_disjoint_spans(self, tracer):
        tracer.record("dma", "a", 0.0, 1.0)
        tracer.record("dma", "b", 3.0, 4.0)
        assert tracer.busy("dma") == pytest.approx(2.0)

    def test_empty_category(self, tracer):
        assert tracer.busy("none") == 0.0


class TestOverlap:
    def test_overlap_between_categories(self, tracer):
        tracer.record("dma", "", 0.0, 4.0)
        tracer.record("compute", "", 2.0, 6.0)
        assert tracer.overlap("dma", "compute") == pytest.approx(2.0)

    def test_no_overlap(self, tracer):
        tracer.record("dma", "", 0.0, 1.0)
        tracer.record("compute", "", 2.0, 3.0)
        assert tracer.overlap("dma", "compute") == 0.0

    def test_multiple_intervals(self, tracer):
        tracer.record("dma", "", 0.0, 2.0)
        tracer.record("dma", "", 4.0, 6.0)
        tracer.record("compute", "", 1.0, 5.0)
        assert tracer.overlap("dma", "compute") == pytest.approx(2.0)

    def test_makespan(self, tracer):
        tracer.record("dma", "", 1.0, 2.0)
        tracer.record("compute", "", 4.0, 9.0)
        assert tracer.makespan() == pytest.approx(8.0)
        assert Tracer().makespan() == 0.0
