"""Unit tests for the event engine, events and combinators."""

import pytest

from repro.errors import SimulationError
from repro.sim import AllOf, AnyOf, Engine


@pytest.fixture()
def engine() -> Engine:
    return Engine()


class TestEngineBasics:
    def test_timeout_advances_clock(self, engine):
        ev = engine.timeout(5.0, value="done")
        assert engine.run(ev) == "done"
        assert engine.now == 5.0

    def test_events_fire_in_time_order(self, engine):
        order = []
        engine.schedule(3.0, lambda: order.append("b"))
        engine.schedule(1.0, lambda: order.append("a"))
        engine.schedule(7.0, lambda: order.append("c"))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_fifo_within_same_timestamp(self, engine):
        order = []
        engine.schedule(1.0, lambda: order.append(1))
        engine.schedule(1.0, lambda: order.append(2))
        engine.run()
        assert order == [1, 2]

    def test_negative_delay_rejected(self, engine):
        with pytest.raises(SimulationError):
            engine.schedule(-1.0, lambda: None)

    def test_run_until_time(self, engine):
        hits = []
        engine.schedule(1.0, lambda: hits.append(1))
        engine.schedule(10.0, lambda: hits.append(2))
        engine.run(until=5.0)
        assert hits == [1]
        assert engine.now == 5.0
        assert engine.pending_count == 1

    def test_step_on_empty_heap_raises(self, engine):
        with pytest.raises(SimulationError):
            engine.step()

    def test_run_until_unreachable_event_raises(self, engine):
        ev = engine.event("never")
        with pytest.raises(SimulationError, match="never fire"):
            engine.run(ev)


class TestEvent:
    def test_double_trigger_rejected(self, engine):
        ev = engine.event("x")
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_late_callback_runs_immediately(self, engine):
        ev = engine.event()
        ev.succeed("v")
        got = []
        ev.add_callback(lambda e: got.append(e.value))
        assert got == ["v"]


class TestCombinators:
    def test_all_of_waits_for_every_child(self, engine):
        evs = [engine.timeout(t) for t in (1.0, 3.0, 2.0)]
        combined = AllOf(engine, evs)
        engine.run(combined)
        assert engine.now == 3.0

    def test_all_of_collects_values_in_order(self, engine):
        evs = [engine.timeout(2.0, "late"), engine.timeout(1.0, "early")]
        combined = AllOf(engine, evs)
        assert engine.run(combined) == ["late", "early"]

    def test_all_of_empty_fires_immediately(self, engine):
        assert AllOf(engine, []).triggered

    def test_any_of_fires_on_first(self, engine):
        evs = [engine.timeout(5.0, "slow"), engine.timeout(1.0, "fast")]
        idx, value = engine.run(AnyOf(engine, evs))
        assert (idx, value) == (1, "fast")
        assert engine.now == 1.0

    def test_any_of_with_pretriggered_child(self, engine):
        done = engine.event()
        done.succeed("now")
        idx, value = AnyOf(engine, [engine.timeout(1.0), done]).value
        assert (idx, value) == (1, "now")
