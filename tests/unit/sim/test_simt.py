"""Unit tests for the lockstep SIMT executor."""

import numpy as np
import pytest

from repro.arch.core_group import CoreGroup
from repro.arch.mesh import Coord
from repro.core.kernel_functional import tile_multiply
from repro.core.params import GRID
from repro.core.sharing import Role, Scheme, role_of
from repro.errors import SimulationError
from repro.sim.simt import BARRIER, run_lockstep


class TestLockstepBasics:
    def test_threads_advance_together(self):
        log = []

        def worker(name):
            log.append(("phase1", name))
            yield BARRIER
            log.append(("phase2", name))
            return name

        results = run_lockstep([worker("a"), worker("b")])
        assert results == {0: "a", 1: "b"}
        # all phase1 entries precede all phase2 entries
        phases = [entry[0] for entry in log]
        assert phases == ["phase1", "phase1", "phase2", "phase2"]

    def test_mapping_input_keys_preserved(self):
        def worker():
            yield BARRIER
            return 42

        results = run_lockstep({Coord(0, 0): worker(), Coord(1, 1): worker()})
        assert set(results) == {Coord(0, 0), Coord(1, 1)}

    def test_no_threads_rejected(self):
        with pytest.raises(SimulationError):
            run_lockstep([])

    def test_non_barrier_yield_rejected(self):
        def bad():
            yield "not a barrier"

        with pytest.raises(SimulationError, match="only yield BARRIER"):
            run_lockstep([bad()])

    def test_divergent_exit_detected(self):
        def short():
            yield BARRIER
            return "done"

        def long():
            yield BARRIER
            yield BARRIER
            return "late"

        with pytest.raises(SimulationError, match="hang"):
            run_lockstep([short(), long()])

    def test_max_steps_guard(self):
        def forever():
            while True:
                yield BARRIER

        with pytest.raises(SimulationError, match="converge"):
            run_lockstep([forever(), forever()], max_steps=10)


class TestSIMTStripMultiply:
    """The keystone: a full strip multiplication executed as 64 real
    coroutines matches the bulk-synchronous implementation."""

    def test_matches_bulk_synchronous(self, cg, rng):
        p_m, p_k, p_n = 4, 8, 4
        a_tiles = {c: rng.standard_normal((p_m, p_k)) for c in cg.mesh.coords()}
        b_tiles = {c: rng.standard_normal((p_k, p_n)) for c in cg.mesh.coords()}
        c_simt = {c: np.zeros((p_m, p_n)) for c in cg.mesh.coords()}

        def thread(coord: Coord):
            comm = cg.regcomm
            for step in range(GRID):
                role = role_of(coord, step, Scheme.PE)
                # broadcast phase: owners push
                if role in (Role.DIAGONAL, Role.A_OWNER):
                    comm.row_broadcast(coord, a_tiles[coord])
                if role in (Role.DIAGONAL, Role.B_OWNER):
                    comm.col_broadcast(coord, b_tiles[coord])
                yield BARRIER  # all sends posted before any receive
                a_part = (
                    a_tiles[coord]
                    if role in (Role.DIAGONAL, Role.A_OWNER)
                    else comm.receive_row(coord).data
                )
                b_part = (
                    b_tiles[coord]
                    if role in (Role.DIAGONAL, Role.B_OWNER)
                    else comm.receive_col(coord).data
                )
                tile_multiply(c_simt[coord], a_part, b_part, 1.0)
                yield BARRIER  # step boundary (the cluster sync)
            return coord

        run_lockstep({c: thread(c) for c in cg.mesh.coords()})
        cg.regcomm.assert_drained()

        # reference: the bulk-synchronous exchange used by the variants
        from repro.core.sharing import exchange_step

        cg2 = CoreGroup()
        c_bulk = {c: np.zeros((p_m, p_n)) for c in cg2.mesh.coords()}
        for step in range(GRID):
            operands = exchange_step(cg2, step, Scheme.PE, a_tiles, b_tiles)
            for coord, (a_part, b_part) in operands.items():
                tile_multiply(c_bulk[coord], a_part, b_part, 1.0)

        for coord in cg.mesh.coords():
            assert np.allclose(c_simt[coord], c_bulk[coord], rtol=1e-13)
