"""Unit tests for the kernel cycle model."""

import pytest

from repro.core.params import BlockingParams
from repro.errors import ConfigError
from repro.perf.kernel_model import KernelModel


@pytest.fixture()
def model() -> KernelModel:
    return KernelModel()


class TestBlockMultiply:
    def test_scheduled_faster_than_naive(self, model):
        p = BlockingParams.paper_double()
        assert model.block_multiply_seconds(p, "scheduled") < model.block_multiply_seconds(p, "naive")

    def test_seconds_match_cycles(self, model):
        p = BlockingParams.paper_double()
        prof = model.profile(p, "scheduled")
        assert model.block_multiply_seconds(p, "scheduled") == pytest.approx(
            prof.strip_cycles / model.spec.clock_hz
        )

    def test_unknown_kernel_class(self, model):
        with pytest.raises(ConfigError):
            model.block_multiply_seconds(BlockingParams.paper_double(), "magic")

    def test_efficiency_bands(self, model):
        p = BlockingParams.paper_double()
        assert model.kernel_efficiency(p, "scheduled") > 0.95
        assert 0.40 < model.kernel_efficiency(p, "naive") < 0.52


class TestThreadTileMultiply:
    def test_scales_with_tiles(self, model):
        one = model.thread_tile_multiply_seconds(16, 4, 48)
        four = model.thread_tile_multiply_seconds(16, 16, 48)
        assert four == pytest.approx(4 * one)

    def test_raw_tile_geometry_supported(self, model):
        assert model.thread_tile_multiply_seconds(48, 48, 48) > 0


class TestCaching:
    def test_profiles_are_cached(self, model):
        p = BlockingParams.paper_double()
        assert model.profile(p, "scheduled") is model.profile(p, "scheduled")
