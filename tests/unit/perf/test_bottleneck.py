"""Unit tests for the bottleneck analysis."""

import pytest

from repro.perf.bottleneck import Binding, analyze

SIZE = 9216


class TestBindings:
    def test_sched_is_compute_bound(self):
        report = analyze("SCHED", SIZE, SIZE, SIZE)
        assert report.binding is Binding.COMPUTE
        # even the fast kernel leaves the channel busy a good fraction
        assert 0.3 < report.secondary_utilization < 1.0

    def test_db_is_compute_bound_with_more_headroom(self):
        sched = analyze("SCHED", SIZE, SIZE, SIZE)
        db = analyze("DB", SIZE, SIZE, SIZE)
        assert db.binding is Binding.COMPUTE
        # the slow kernel leaves the DMA relatively idler
        assert db.secondary_utilization < sched.secondary_utilization

    def test_raw_is_memory_bound(self):
        report = analyze("RAW", SIZE, SIZE, SIZE)
        assert report.binding is Binding.DMA

    def test_single_buffered_reported_serial(self):
        for variant in ("PE", "ROW"):
            report = analyze(variant, SIZE, SIZE, SIZE)
            assert report.binding is Binding.SERIAL
            assert report.crossover_bandwidth_scale is None
            assert report.headroom == "n/a"


class TestCrossover:
    def test_sched_survives_some_bandwidth_loss(self):
        """SCHED stays compute-bound until bandwidth drops below the
        crossover scale — which must be < 1 (headroom exists)."""
        report = analyze("SCHED", SIZE, SIZE, SIZE)
        assert report.crossover_bandwidth_scale is not None
        assert 0.3 < report.crossover_bandwidth_scale < 1.0

    def test_db_has_more_headroom_than_sched(self):
        db = analyze("DB", SIZE, SIZE, SIZE)
        sched = analyze("SCHED", SIZE, SIZE, SIZE)
        assert db.crossover_bandwidth_scale < sched.crossover_bandwidth_scale

    def test_headroom_formatting(self):
        report = analyze("SCHED", SIZE, SIZE, SIZE)
        assert report.headroom.endswith("x")
