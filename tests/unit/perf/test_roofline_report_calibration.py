"""Unit tests for roofline, report helpers and calibration."""

import pytest

from repro.errors import ConfigError
from repro.perf.calibration import Calibration, DEFAULT_CALIBRATION
from repro.perf.report import ComparisonRow, comparison_table, series_table
from repro.perf.roofline import arithmetic_intensity, machine_balance, roofline_gflops


class TestRoofline:
    def test_machine_balance(self):
        assert machine_balance() == pytest.approx(742.4e9 / 34e9)

    def test_memory_bound_region(self):
        # below the balance point, performance scales with intensity
        assert roofline_gflops(1.0) == pytest.approx(34.0)

    def test_compute_bound_region(self):
        assert roofline_gflops(1000.0) == pytest.approx(742.4)

    def test_custom_bandwidth(self):
        assert roofline_gflops(1.0, bandwidth=17e9) == pytest.approx(17.0)

    def test_intensity(self):
        assert arithmetic_intensity(100.0, 50.0) == 2.0
        with pytest.raises(ConfigError):
            arithmetic_intensity(1.0, 0.0)

    def test_roofline_validates(self):
        with pytest.raises(ConfigError):
            roofline_gflops(0.0)

    def test_blocked_dgemm_is_compute_bound(self):
        # S = 307 flops per element = 38.4 flops/byte > balance 21.8
        from repro.core.model import bandwidth_reduction

        s = bandwidth_reduction(256, 768)
        assert s / 8 > machine_balance()


class TestCalibration:
    def test_frozen_defaults(self):
        cal = DEFAULT_CALIBRATION
        assert cal.tx_overhead_s == 0.28e-9
        assert cal.segment_overhead_s == 2.52e-9
        with pytest.raises(AttributeError):
            cal.tx_overhead_s = 0.0  # type: ignore[misc]

    def test_sync_seconds(self):
        cal = Calibration(cluster_sync_cycles=1450)
        assert cal.sync_seconds() == pytest.approx(1e-6)


class TestReport:
    def test_comparison_row_deviation(self):
        row = ComparisonRow("x", 100.0, 110.0)
        assert row.deviation == pytest.approx(0.10)

    def test_deviation_none_without_paper_value(self):
        assert ComparisonRow("x", None, 5.0).deviation is None

    def test_comparison_table_renders(self):
        table = comparison_table(
            [ComparisonRow("peak", 706.1, 701.0), ComparisonRow("new", None, 1.0)],
            title="t",
        )
        text = table.render()
        assert "706.1" in text and "-0.7%" in text and "t" in text

    def test_series_table(self):
        table = series_table("x", [1, 2], {"a": [1.0, 2.0], "b": [3.0, 4.0]})
        assert "4.0" in table.render()

    def test_series_table_validates_lengths(self):
        with pytest.raises(ValueError):
            series_table("x", [1, 2], {"a": [1.0]})
