"""Unit tests for the ASCII Gantt renderer."""

import pytest

from repro.errors import ConfigError
from repro.perf.gantt import render_gantt
from repro.sim.trace import Tracer


@pytest.fixture()
def tracer() -> Tracer:
    t = Tracer()
    t.record("dma", "a", 0.0, 4.0)
    t.record("compute", "m", 2.0, 10.0)
    return t


class TestRenderGantt:
    def test_one_lane_per_category(self, tracer):
        text = render_gantt(tracer, width=20)
        lines = text.splitlines()
        assert len(lines) == 3  # header + 2 lanes
        assert lines[1].startswith("compute")
        assert lines[2].startswith("dma")

    def test_busy_cells_marked(self, tracer):
        text = render_gantt(tracer, width=10)
        dma_lane = [l for l in text.splitlines() if l.startswith("dma")][0]
        cells = dma_lane.split("|")[1]
        # dma active for the first 40% of the window only
        assert cells[0] == "#"
        assert cells[-1] == " "

    def test_partial_cells_shaded(self):
        t = Tracer()
        t.record("dma", "", 0.0, 0.25)  # half of the first 0.5-wide cell
        text = render_gantt(t, width=8, end=4.0, start=0.0)
        cells = text.splitlines()[1].split("|")[1]
        assert cells[0] not in (" ", "#")  # intermediate glyph

    def test_width_validated(self, tracer):
        with pytest.raises(ConfigError):
            render_gantt(tracer, width=4)

    def test_empty_trace(self):
        assert render_gantt(Tracer()) == "(empty trace)"

    def test_bad_window(self, tracer):
        with pytest.raises(ConfigError):
            render_gantt(tracer, start=5.0, end=5.0)

    def test_category_filter(self, tracer):
        text = render_gantt(tracer, categories=["dma"])
        assert "compute" not in text

    def test_db_timeline_shows_overlap(self):
        """End to end: Algorithm 2's DMA lane nests under compute."""
        from repro.perf.timeline import TimelineSimulator

        result = TimelineSimulator().run("SCHED", 512, 512, 1536)
        text = render_gantt(result.tracer, width=60)
        assert "dma" in text and "compute" in text
        compute_lane = [l for l in text.splitlines() if l.startswith("compute")][0]
        assert "#" in compute_lane
