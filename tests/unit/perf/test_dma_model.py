"""Unit tests for the segment-level DMA cost model."""

import pytest

from repro.errors import DMAError
from repro.perf.calibration import Calibration
from repro.perf.dma_model import BlockTransfer, DMACostModel


@pytest.fixture()
def model() -> DMACostModel:
    return DMACostModel()


class TestBlockTransfer:
    def test_geometry_accounting(self):
        tr = BlockTransfer("A", segments=96, segment_doubles=128)
        assert tr.nbytes == 96 * 128 * 8
        assert tr.transactions == tr.nbytes // 128

    def test_rejects_empty(self):
        with pytest.raises(DMAError):
            BlockTransfer("x", segments=0, segment_doubles=16)

    def test_rejects_misaligned_segment(self):
        with pytest.raises(DMAError):
            BlockTransfer("x", segments=1, segment_doubles=10)  # 80 B


class TestEffectiveBandwidth:
    def test_longer_segments_are_faster(self, model):
        bw16 = model.effective_bandwidth(16)
        bw96 = model.effective_bandwidth(96)
        bw128 = model.effective_bandwidth(128)
        assert bw16 < bw96 < bw128 < model.spec.dma.peak_bandwidth

    def test_pe_mode_plateau_in_fig4_band(self, model):
        """16-double segments (the instinctive A/C tiles): ~19-23 GB/s."""
        assert 17e9 <= model.effective_bandwidth(16) <= 23e9

    def test_row_mode_plateau_in_fig4_band(self, model):
        """128-double ROW_MODE columns: ~27-30 GB/s."""
        assert 27e9 <= model.effective_bandwidth(128) <= 30e9

    def test_bandwidth_asymptote_below_channel_peak(self, model):
        # long segments amortize the per-segment overhead but every
        # transaction still pays arbitration: the asymptote is
        # 128 B / (128/34e9 + tx_overhead) ~ 31.7 GB/s < 34 GB/s
        bw = model.effective_bandwidth(16384)
        assert 0.90 * model.spec.dma.peak_bandwidth < bw < model.spec.dma.peak_bandwidth


class TestSeconds:
    def test_monotone_in_bytes(self, model):
        small = model.seconds(BlockTransfer("s", 10, 16))
        large = model.seconds(BlockTransfer("l", 20, 16))
        assert large > small

    def test_request_latency_toggle(self, model):
        tr = BlockTransfer("x", 1, 16)
        with_req = model.seconds(tr, include_request=True)
        without = model.seconds(tr, include_request=False)
        assert with_req - without == pytest.approx(model.cal.request_latency_s)

    def test_zero_overhead_calibration_hits_channel_peak(self):
        free = DMACostModel(calibration=Calibration(
            tx_overhead_s=0.0, segment_overhead_s=0.0))
        assert free.effective_bandwidth(16) == pytest.approx(34e9)


class TestConstructors:
    def test_pe_tile_block(self, model):
        tr = model.pe_tile_block("A", tile_rows=16, tile_cols=96, n_cpes=64)
        assert tr.segments == 96 * 64
        assert tr.segment_doubles == 16
        assert tr.nbytes == 128 * 768 * 8  # one full CG block

    def test_row_strip_block(self, model):
        tr = model.row_strip_block("A", b_m=128, strip_cols=96, n_strips=8)
        assert tr.segments == 96 * 8
        assert tr.segment_doubles == 128
        assert tr.nbytes == 128 * 768 * 8

    def test_same_block_row_mode_is_faster(self, model):
        pe = model.pe_tile_block("A", 16, 96, 64)
        row = model.row_strip_block("A", 128, 96, 8)
        assert pe.nbytes == row.nbytes
        assert model.seconds(row) < model.seconds(pe)
