"""Unit tests for the closed-form estimator."""

import pytest

from repro.core.params import BlockingParams
from repro.errors import ConfigError, UnsupportedShapeError
from repro.perf.estimator import Estimator

SIZE = 9216


@pytest.fixture(scope="module")
def est() -> Estimator:
    return Estimator()


class TestOrdering:
    def test_paper_ordering_strict(self, est):
        g = {v: est.estimate(v, SIZE, SIZE, SIZE).gflops
             for v in ("RAW", "PE", "ROW", "DB", "SCHED")}
        assert g["RAW"] < g["PE"] < g["ROW"] < g["DB"] < g["SCHED"]

    def test_all_below_peak(self, est):
        for v in ("RAW", "PE", "ROW", "DB", "SCHED"):
            assert est.estimate(v, SIZE, SIZE, SIZE).efficiency() < 1.0


class TestGemmEstimate:
    def test_flops_accounting(self, est):
        e = est.estimate("SCHED", 1536, 1536, 1536)
        assert e.flops == 2 * 1536 ** 3
        assert e.gflops == pytest.approx(e.flops / e.seconds / 1e9)

    def test_breakdown_present(self, est):
        e = est.estimate("DB", 1536, 1536, 1536)
        assert {"t_a", "t_b", "t_c", "t_compute", "grid"} <= set(e.breakdown)

    def test_shape_admission(self, est):
        with pytest.raises(UnsupportedShapeError):
            est.estimate("SCHED", 1000, 1536, 1536)

    def test_custom_params(self, est):
        p = BlockingParams.small(double_buffered=True)
        e = est.estimate("SCHED", p.b_m, p.b_n, p.b_k, params=p)
        assert e.seconds > 0


class TestBlockTransfers:
    def test_row_vs_pe_geometry(self, est):
        p = BlockingParams.paper_double()
        from repro.core.variants import VARIANTS

        row_tr = est.block_transfers(VARIANTS["ROW"].traits, p)
        pe_tr = est.block_transfers(VARIANTS["PE"].traits, p)
        assert row_tr["A"].segment_doubles == p.b_m
        assert pe_tr["A"].segment_doubles == p.p_m
        assert row_tr["A"].nbytes == pe_tr["A"].nbytes
        # B is PE_MODE in both
        assert row_tr["B"].segment_doubles == pe_tr["B"].segment_doubles == p.p_k

    def test_unknown_mode_rejected(self, est):
        from repro.core.variants.base import VariantTraits

        bad = VariantTraits("X", ac_mode="WAT", shared=True,
                            double_buffered=False, kernel="naive")
        with pytest.raises(ConfigError):
            est.block_transfers(bad, BlockingParams.paper_double())


class TestDoubleBufferingStructure:
    def test_db_faster_than_single_buffered_same_params(self, est):
        """Same blocking, only the overlap differs."""
        p_db = BlockingParams.paper_double()
        p_sb = BlockingParams(16, 32, 96, double_buffered=False)
        from repro.core.variants import VARIANTS

        costs_db = est.block_costs(VARIANTS["DB"].traits, p_db)
        grid = p_db.check_shape(SIZE, SIZE, SIZE)
        t_db, _ = est._double_buffered_seconds(costs_db, *grid)
        costs_sb = est.block_costs(VARIANTS["ROW"].traits, p_sb)
        t_sb, _ = est._single_buffered_seconds(costs_sb, *grid)
        assert t_db < t_sb

    def test_grid_m_one_degenerate(self, est):
        p = BlockingParams.paper_double()
        e = est.estimate("DB", p.b_m, 1536, 1536, params=p)
        assert e.seconds > 0

    def test_overlap_bounded_by_serial(self, est):
        """max(dma, compute) per iteration can never beat the larger leg."""
        e = est.estimate("SCHED", SIZE, SIZE, SIZE)
        assert e.seconds >= e.compute_seconds * 0.999


class TestRawEstimate:
    def test_memory_bound_at_paper_sizes(self, est):
        e = est.estimate("RAW", SIZE, SIZE, SIZE)
        assert e.dma_seconds > e.compute_seconds
        assert e.seconds == pytest.approx(e.dma_seconds)

    def test_traffic_blowup_vs_blocked(self, est):
        raw = est.estimate("RAW", SIZE, SIZE, SIZE)
        sched = est.estimate("SCHED", SIZE, SIZE, SIZE)
        assert raw.bytes_moved > 2 * sched.bytes_moved

    def test_breakdown_has_tiles(self, est):
        e = est.estimate("RAW", 1536, 1536, 1536)
        assert "tiles" in e.breakdown


class TestPredictedBytes:
    def test_matches_sec3c_formula(self, est):
        from repro.core.variants import VARIANTS

        p = BlockingParams.paper_double()
        m = n = k = 1536
        grid_k, grid_n = k // p.b_k, n // p.b_n
        expected = (2 * grid_k * m * n + grid_n * m * k + k * n) * 8
        assert est.predicted_bytes(VARIANTS["SCHED"].traits, m, n, k, p) == expected
