"""Unit tests for the 64-thread RAW event timeline."""

import pytest

from repro.perf.estimator import Estimator
from repro.perf.raw_timeline import simulate_raw


@pytest.fixture(scope="module")
def result():
    return simulate_raw(512, 512, 512)


class TestRawTimeline:
    def test_channel_saturated(self, result):
        """RAW is memory bound: the channel must be ~fully busy."""
        assert result.channel_utilization > 0.97

    def test_threads_balanced(self, result):
        """Identical work per thread: finish times nearly equal."""
        assert result.last_thread_done / result.first_thread_done < 1.05

    def test_closed_form_agrees(self, result):
        closed = Estimator().estimate("RAW", 512, 512, 512)
        assert result.seconds == pytest.approx(closed.seconds, rel=0.05)

    def test_event_sim_never_beats_channel_bound(self, result):
        """Contention can only add time over the pure channel bound."""
        closed = Estimator().estimate("RAW", 512, 512, 512)
        assert result.seconds >= closed.dma_seconds * 0.999

    def test_gflops_accounting(self, result):
        assert result.gflops == pytest.approx(
            2 * 512**3 / result.seconds / 1e9
        )

    def test_larger_tiles_do_better(self):
        """1024^3 gets 32-wide tiles vs 512^3's — more reuse, more
        Gflop/s (the S = 2/(1/tM + 1/tN) effect)."""
        small = simulate_raw(512, 512, 512)
        # 768/8 = 96 -> 48-wide tiles
        large = simulate_raw(768, 768, 768)
        assert large.gflops > small.gflops
