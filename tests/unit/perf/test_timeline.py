"""Unit tests for the event-driven timeline."""

import pytest

from repro.core.params import BlockingParams
from repro.errors import ConfigError
from repro.perf.timeline import TimelineSimulator

# small paper-shaped problem: grids (4, 2, 2) for DB params
M, N, K = 4 * 128, 2 * 256, 2 * 768


@pytest.fixture(scope="module")
def sim() -> TimelineSimulator:
    return TimelineSimulator()


class TestBasics:
    def test_db_timeline_runs(self, sim):
        res = sim.run("DB", M, N, K)
        assert res.seconds > 0
        assert res.gflops > 0

    def test_raw_rejected(self, sim):
        with pytest.raises(ConfigError):
            sim.run("RAW", M, N, K)

    def test_tracer_has_both_categories(self, sim):
        res = sim.run("SCHED", M, N, K)
        assert set(res.tracer.categories()) == {"compute", "dma"}

    def test_channel_busy_le_makespan(self, sim):
        res = sim.run("SCHED", M, N, K)
        assert res.channel_busy <= res.seconds + 1e-12


class TestOverlapSemantics:
    def test_single_buffered_has_no_overlap(self, sim):
        p = BlockingParams.small(double_buffered=False)
        res = sim.run("ROW", 2 * p.b_m, p.b_n, p.b_k, params=p)
        assert res.overlap_seconds == pytest.approx(0.0, abs=1e-15)

    def test_double_buffered_overlaps(self, sim):
        res = sim.run("SCHED", M, N, K)
        assert res.overlap_seconds > 0

    def test_db_beats_row_wall_clock(self, sim):
        """Same naive kernel; overlap alone must win despite DB's
        smaller bN (more B reloads).  Shape chosen as a common multiple
        of both variants' block factors."""
        m, n, k = 512, 768, 1536
        db = sim.run("DB", m, n, k)
        row = sim.run("ROW", m, n, k, params=BlockingParams.paper_single())
        assert db.gflops > row.gflops

    def test_compute_busy_equals_total_compute(self, sim):
        res = sim.run("DB", M, N, K)
        p = BlockingParams.paper_double()
        grid_m, grid_n, grid_k = p.check_shape(M, N, K)
        from repro.core.variants import VARIANTS
        from repro.perf.estimator import Estimator

        costs = Estimator().block_costs(VARIANTS["DB"].traits, p)
        expected = grid_m * grid_n * grid_k * costs.t_compute
        assert res.tracer.total("compute") == pytest.approx(expected, rel=1e-9)


class TestAgainstClosedForm:
    @pytest.mark.parametrize("variant", ["PE", "ROW", "DB", "SCHED"])
    def test_timeline_matches_estimator(self, sim, variant):
        from repro.perf.estimator import Estimator

        params = (
            BlockingParams.paper_single()
            if variant in ("PE", "ROW")
            else BlockingParams.paper_double()
        )
        m, n, k = 3 * params.b_m, 2 * params.b_n, 2 * params.b_k
        timeline = sim.run(variant, m, n, k, params=params)
        closed = Estimator().estimate(variant, m, n, k, params=params)
        assert timeline.seconds == pytest.approx(closed.seconds, rel=1e-9)

    def test_grid_m_one(self, sim):
        from repro.perf.estimator import Estimator

        p = BlockingParams.paper_double()
        m, n, k = p.b_m, p.b_n, p.b_k
        timeline = sim.run("DB", m, n, k, params=p)
        closed = Estimator().estimate("DB", m, n, k, params=p)
        assert timeline.seconds == pytest.approx(closed.seconds, rel=1e-9)

    def test_grid_m_two(self, sim):
        from repro.perf.estimator import Estimator

        p = BlockingParams.paper_double()
        m, n, k = 2 * p.b_m, p.b_n, p.b_k
        timeline = sim.run("DB", m, n, k, params=p)
        closed = Estimator().estimate("DB", m, n, k, params=p)
        assert timeline.seconds == pytest.approx(closed.seconds, rel=1e-9)
