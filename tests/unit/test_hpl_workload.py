"""Unit tests for the HPL trace workload and the E8 projection."""

import pytest

from repro.errors import ConfigError
from repro.experiments import hpl_projection
from repro.workloads.hpl import hpl_trace


class TestHPLTrace:
    def test_update_sequence(self):
        trace = hpl_trace(4 * 768, 768)
        assert len(trace.updates) == 3
        assert trace.updates[0] == (3 * 768, 3 * 768, 768)
        assert trace.updates[-1] == (768, 768, 768)

    def test_non_divisible_n(self):
        trace = hpl_trace(1000, 300)
        # offsets 300, 600, 900 -> trailing 700, 400, 100
        assert trace.updates == ((700, 700, 300), (400, 400, 300), (100, 100, 100))

    def test_gemm_fraction_grows_with_n(self):
        small = hpl_trace(4 * 768, 768)
        large = hpl_trace(20 * 768, 768)
        assert large.gemm_fraction > small.gemm_fraction
        assert 0.0 < small.gemm_fraction < 1.0

    def test_gemm_flops_bounded_by_total(self):
        trace = hpl_trace(8 * 768, 768)
        assert trace.gemm_flops < trace.total_flops

    def test_validation(self):
        with pytest.raises(ConfigError):
            hpl_trace(0, 64)
        with pytest.raises(ConfigError):
            hpl_trace(64, 128)

    def test_single_panel_has_no_updates(self):
        assert hpl_trace(768, 768).updates == ()


class TestProjection:
    @pytest.fixture(scope="class")
    def result(self):
        return hpl_projection.run(n=6144, nb=768)

    def test_gemm_dominates_flops(self, result):
        assert result.trace.gemm_fraction > 0.70

    def test_weighted_rate_between_extremes(self, result):
        """The mix of shapes lands between the small-m penalty floor
        and the saturated rate."""
        assert 600.0 < result.weighted_gflops < 710.0

    def test_efficiency_orderings(self, result):
        assert result.hpl_efficiency_projected < result.hpl_efficiency_ceiling <= 1.0

    def test_render(self, result):
        text = hpl_projection.render(result).render()
        assert "DGEMM share" in text and "74.2%" in text
