"""Unit tests for the HPL trace workload and the E8 projection."""

import numpy as np
import pytest

from repro.arch.core_group import CoreGroup
from repro.core.params import BlockingParams
from repro.errors import ConfigError
from repro.experiments import hpl_projection
from repro.workloads.hpl import hpl_trace, run_trace, trace_items


class TestHPLTrace:
    def test_update_sequence(self):
        trace = hpl_trace(4 * 768, 768)
        assert len(trace.updates) == 3
        assert trace.updates[0] == (3 * 768, 3 * 768, 768)
        assert trace.updates[-1] == (768, 768, 768)

    def test_non_divisible_n(self):
        trace = hpl_trace(1000, 300)
        # offsets 300, 600, 900 -> trailing 700, 400, 100
        assert trace.updates == ((700, 700, 300), (400, 400, 300), (100, 100, 100))

    def test_gemm_fraction_grows_with_n(self):
        small = hpl_trace(4 * 768, 768)
        large = hpl_trace(20 * 768, 768)
        assert large.gemm_fraction > small.gemm_fraction
        assert 0.0 < small.gemm_fraction < 1.0

    def test_gemm_flops_bounded_by_total(self):
        trace = hpl_trace(8 * 768, 768)
        assert trace.gemm_flops < trace.total_flops

    def test_validation(self):
        with pytest.raises(ConfigError):
            hpl_trace(0, 64)
        with pytest.raises(ConfigError):
            hpl_trace(64, 128)

    def test_single_panel_has_no_updates(self):
        assert hpl_trace(768, 768).updates == ()


class TestRunTrace:
    PARAMS = BlockingParams.small(double_buffered=True)

    def test_one_output_per_update(self):
        trace = hpl_trace(40, 16)
        result = run_trace(trace, params=self.PARAMS)
        assert len(result) == len(trace.updates)

    def test_outputs_match_numpy(self):
        trace = hpl_trace(40, 16)
        items = trace_items(trace, seed=4)
        result = run_trace(trace, params=self.PARAMS, seed=4)
        for item, out in zip(items, result.outputs):
            expected = -item.a @ item.b + item.c
            assert np.allclose(out, expected, rtol=1e-11, atol=1e-8)

    def test_padded_flops_cover_odd_shapes(self):
        # 40/16 gives updates (24,24,16) and (8,8,8): not block multiples
        result = run_trace(hpl_trace(40, 16), params=self.PARAMS)
        assert result.padded_flops > result.flops

    def test_shared_group_budget_restored(self):
        cg = CoreGroup()
        baseline = cg.memory.used_bytes
        run_trace(hpl_trace(40, 16), params=self.PARAMS, core_group=cg)
        assert cg.memory.used_bytes == baseline
        assert cg.memory.handles() == []

    def test_trace_items_shapes(self):
        trace = hpl_trace(40, 16)
        items = trace_items(trace)
        assert len(items) == len(trace.updates)
        for (m, n, k), item in zip(trace.updates, items):
            assert item.a.shape == (m, k)
            assert item.b.shape == (k, n)
            assert item.c.shape == (m, n)
            assert item.alpha == -1.0 and item.beta == 1.0


class TestProjection:
    @pytest.fixture(scope="class")
    def result(self):
        return hpl_projection.run(n=6144, nb=768)

    def test_gemm_dominates_flops(self, result):
        assert result.trace.gemm_fraction > 0.70

    def test_weighted_rate_between_extremes(self, result):
        """The mix of shapes lands between the small-m penalty floor
        and the saturated rate."""
        assert 600.0 < result.weighted_gflops < 710.0

    def test_efficiency_orderings(self, result):
        assert result.hpl_efficiency_projected < result.hpl_efficiency_ceiling <= 1.0

    def test_render(self, result):
        text = hpl_projection.render(result).render()
        assert "DGEMM share" in text and "74.2%" in text
