"""Unit tests for the utils package."""

import pytest

from repro.errors import ConfigError
from repro.utils.format import Table, format_si
from repro.utils.units import (
    BYTES_PER_DOUBLE,
    cycles_to_seconds,
    gflops,
    seconds_to_cycles,
)
from repro.utils.validation import (
    check_multiple,
    check_positive,
    check_positive_int,
    check_range,
)


class TestUnits:
    def test_bytes_per_double(self):
        assert BYTES_PER_DOUBLE == 8

    def test_cycle_seconds_roundtrip(self):
        s = cycles_to_seconds(1.45e9, 1.45e9)
        assert s == pytest.approx(1.0)
        assert seconds_to_cycles(s, 1.45e9) == pytest.approx(1.45e9)

    def test_gflops(self):
        assert gflops(742.4e9, 1.0) == pytest.approx(742.4)

    @pytest.mark.parametrize("fn", [cycles_to_seconds, seconds_to_cycles])
    def test_bad_clock(self, fn):
        with pytest.raises(ValueError):
            fn(1.0, 0.0)

    def test_gflops_bad_time(self):
        with pytest.raises(ValueError):
            gflops(1.0, 0.0)


class TestValidation:
    def test_positive_int_accepts(self):
        assert check_positive_int("x", 5) == 5

    @pytest.mark.parametrize("bad", [0, -1, 1.5, "3", True])
    def test_positive_int_rejects(self, bad):
        with pytest.raises(ConfigError):
            check_positive_int("x", bad)

    def test_positive_int_accepts_numpy(self):
        import numpy as np

        assert check_positive_int("x", np.int64(7)) == 7

    def test_positive_float(self):
        assert check_positive("x", 2.5) == 2.5
        with pytest.raises(ConfigError):
            check_positive("x", 0.0)
        with pytest.raises(ConfigError):
            check_positive("x", "not a number")

    def test_multiple(self):
        assert check_multiple("x", 96, 16) == 96
        with pytest.raises(ConfigError):
            check_multiple("x", 97, 16)

    def test_range(self):
        assert check_range("x", 3, 0, 7) == 3
        with pytest.raises(ConfigError):
            check_range("x", 8, 0, 7)


class TestFormat:
    def test_format_si(self):
        assert format_si(7.061e11, "flop/s") == "706.1 Gflop/s"
        assert format_si(1.5e3) == "1.5 K"
        assert format_si(12.0) == "12.0"

    def test_table_renders_aligned(self):
        t = Table(["size", "Gflop/s"], title="demo")
        t.add_row([1536, 623.9])
        text = t.render()
        assert "demo" in text
        assert "1536" in text and "623.9" in text
        assert str(t) == text

    def test_table_rejects_ragged_rows(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_float_formatting(self):
        t = Table(["v"])
        t.add_row([1.23456])
        assert "1.2" in t.render()
