"""Unit tests for the execution-engine registry and its contracts."""

import numpy as np
import pytest

from repro.core.batch import BatchItem, dgemm_batch
from repro.core.api import dgemm
from repro.core.engine import (
    ENGINES,
    DeviceEngine,
    StepwiseEngine,
    VectorizedEngine,
    get_engine,
)
from repro.core.engine.base import Engine
from repro.core.kernel_functional import tile_multiply_batched
from repro.core.params import BlockingParams
from repro.core.session import Session
from repro.errors import ConfigError
from repro.workloads.matrices import gemm_operands

SINGLE = BlockingParams.small(double_buffered=False)
DOUBLE = BlockingParams.small(double_buffered=True)


class TestRegistry:
    def test_known_names_resolve(self):
        assert isinstance(get_engine("device"), DeviceEngine)
        assert isinstance(get_engine("vectorized"), VectorizedEngine)
        assert isinstance(get_engine("DEVICE"), DeviceEngine)
        assert isinstance(get_engine("stepwise"), StepwiseEngine)
        assert get_engine("stepwise").stepwise
        assert set(ENGINES) == {"device", "vectorized", "stepwise"}

    def test_instances_pass_through(self):
        eng = VectorizedEngine(stepwise=True)
        assert get_engine(eng) is eng

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigError, match="unknown engine"):
            get_engine("hardware")

    def test_every_engine_subclasses_engine(self):
        for cls in ENGINES.values():
            assert issubclass(cls, Engine)
            assert cls.name in ENGINES


class TestVectorizedContracts:
    """The vectorized engine enforces the same rules as the device path."""

    def test_double_buffered_variant_rejects_single_params(self):
        a, b, c = gemm_operands(DOUBLE.b_m, DOUBLE.b_n, DOUBLE.b_k, seed=0)
        with pytest.raises(ValueError, match="requires double-buffered"):
            dgemm(a, b, c, beta=1.0, variant="SCHED", engine="vectorized",
                  params=SINGLE)

    def test_single_buffered_variant_rejects_double_params(self):
        a, b, c = gemm_operands(DOUBLE.b_m, DOUBLE.b_n, DOUBLE.b_k, seed=0)
        with pytest.raises(ValueError, match="single-buffered variant"):
            dgemm(a, b, c, beta=1.0, variant="PE", engine="vectorized",
                  params=DOUBLE)

    def test_variant_without_owner_tables_is_rejected(self):
        # CANNON shares by shifting, not broadcasting — it has no owner
        # index tables, so the vectorized engine refuses it up front
        # (before touching the device or the operands).
        from repro.core.variants.cannon import CannonVariant

        with pytest.raises(ConfigError, match="no vectorized execution"):
            VectorizedEngine().run(CannonVariant(), None, None, None, None)

    def test_tile_multiply_batched_rejects_ragged_stacks(self):
        c = np.zeros((64, 4, 4))
        a = np.zeros((32, 4, 4))
        b = np.zeros((64, 4, 4))
        with pytest.raises(ConfigError, match="stack depths differ"):
            tile_multiply_batched(c, a, b)


class TestEngineSelection:
    """engine= threads through every entry point, with per-path defaults."""

    def test_dgemm_vectorized_matches_reference(self):
        a, b, c = gemm_operands(DOUBLE.b_m, DOUBLE.b_n, DOUBLE.b_k, seed=3)
        out = dgemm(a, b, c, alpha=1.5, beta=-0.5, variant="SCHED",
                    engine="vectorized", params=DOUBLE)
        assert np.allclose(out, 1.5 * a @ b - 0.5 * c, rtol=1e-12, atol=1e-9)

    def test_dgemm_accepts_engine_instance(self):
        a, b, c = gemm_operands(DOUBLE.b_m, DOUBLE.b_n, DOUBLE.b_k, seed=4)
        out = dgemm(a, b, c, beta=1.0, variant="DB",
                    engine=VectorizedEngine(stepwise=True), params=DOUBLE)
        assert np.allclose(out, a @ b + c, rtol=1e-12, atol=1e-9)

    def test_dgemm_batch_engine_kwarg(self):
        items = [
            BatchItem(*gemm_operands(DOUBLE.b_m, DOUBLE.b_n, DOUBLE.b_k,
                                     seed=s), alpha=1.0, beta=1.0)
            for s in (5, 6)
        ]
        result = dgemm_batch(items, engine="vectorized", params=DOUBLE,
                             pad=False)
        for item, out in zip(items, result.outputs):
            assert np.allclose(out, item.a @ item.b + item.c,
                               rtol=1e-12, atol=1e-9)

    def test_session_batch_defaults_to_vectorized(self):
        with Session(params=DOUBLE) as s:
            assert s.engine is None
            assert s.scheduler.engine == "vectorized"

    def test_session_explicit_engine_overrides_both_paths(self):
        with Session(params=DOUBLE, engine="device") as s:
            assert s.engine == "device"
            assert s.scheduler.engine == "device"

    def test_session_scalar_engine_override(self):
        a, b, c = gemm_operands(100, 60, 70, seed=7)
        with Session(params=DOUBLE) as s:
            out = s.dgemm(a, b, c, beta=1.0, engine="vectorized")
            assert np.allclose(out, a @ b + c, rtol=1e-11, atol=1e-8)
