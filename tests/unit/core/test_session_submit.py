"""Session.submit (typed requests) and thread-safe close/accounting."""

import threading

import numpy as np
import pytest

from repro.api import (
    ConvRequest,
    GemmRequest,
    LuRequest,
    SubmitOptions,
)
from repro.core.context import ContextStats
from repro.core.params import BlockingParams
from repro.core.reference import reference_dgemm
from repro.core.session import Session
from repro.errors import ConfigError
from repro.resil import FaultInjector, FaultSpec
from repro.workloads.matrices import gemm_operands, mixed_batch

PARAMS = BlockingParams.small(double_buffered=True)


class TestSubmitGemm:
    def test_returns_value_and_bin(self):
        with Session(params=PARAMS, n_core_groups=2) as s:
            a, b, c = gemm_operands(100, 60, 70, seed=0)
            result = s.submit(GemmRequest(a=a, b=b, c=c, beta=1.0))
            assert result.ok
            assert result.bin.startswith("gemm:")
            expected = reference_dgemm(1.0, a, b, 1.0, c)
            np.testing.assert_allclose(result.value, expected, atol=1e-9)

    def test_malformed_request_is_a_structured_error(self):
        with Session(params=PARAMS, n_core_groups=2) as s:
            result = s.submit(
                GemmRequest(a=np.zeros((4, 3)), b=np.zeros((5, 2)))
            )
            assert not result.ok
            assert result.error.kind == "UnsupportedShapeError"
            assert "inner dimensions" in result.error.message
            assert result.traffic == ContextStats.zero()

    def test_non_request_is_a_structured_error(self):
        with Session(params=PARAMS, n_core_groups=2) as s:
            result = s.submit([np.eye(4), np.eye(4)])
            assert not result.ok
            assert result.error.kind == "ConfigError"

    def test_zero_retry_budget_surfaces_exhaustion(self):
        injector = FaultInjector(
            [FaultSpec("compute", probability=1.0)], seed=0
        )
        with Session(
            params=PARAMS, n_core_groups=1, injector=injector,
            fallback_engine=None,
        ) as s:
            a, b, _ = gemm_operands(64, 64, 64, seed=1)
            result = s.submit(
                GemmRequest(a=a, b=b), options=SubmitOptions(max_retries=0)
            )
            assert not result.ok
            assert result.fault_reports
            assert result.fault_reports[0].retries == 0


class TestSubmitConvAndLu:
    def test_conv_folds_back_to_feature_maps(self):
        rng = np.random.default_rng(2)
        request = ConvRequest(
            images=rng.standard_normal((2, 2, 8, 8)),
            kernels=rng.standard_normal((3, 2, 3, 3)),
        )
        with Session(params=PARAMS, n_core_groups=2) as s:
            result = s.submit(request)
            assert result.ok
            assert result.bin.startswith("conv:")
            assert result.value.shape == request.fold_shape()
            gemm = request.lower()
            expected = request.fold(np.asarray(gemm.a) @ np.asarray(gemm.b))
            np.testing.assert_allclose(result.value, expected, atol=1e-9)

    def test_lu_runs_on_the_scalar_context(self):
        rng = np.random.default_rng(3)
        n = 48
        a = rng.standard_normal((n, n)) + n * np.eye(n)
        with Session(params=PARAMS, n_core_groups=2) as s:
            result = s.submit(LuRequest(a=a, panel=16))
            assert result.ok
            assert result.bin == f"lu:{n}x16"
            from repro.apps.lu import lu_residual

            assert lu_residual(a, result.value) < 50

    def test_lu_failure_is_structured(self):
        with Session(params=PARAMS, n_core_groups=1) as s:
            result = s.submit(LuRequest(a=np.zeros((16, 16))))
            assert not result.ok
            assert result.error.kind == "ConfigError"
            assert "singular" in result.error.message


class TestTrafficReconciliation:
    def test_per_request_traffic_sums_to_session_stats(self):
        rng = np.random.default_rng(4)
        requests = [
            GemmRequest(*gemm_operands(100, 60, 70, seed=0)[:2]),
            ConvRequest(
                images=rng.standard_normal((1, 2, 6, 6)),
                kernels=rng.standard_normal((2, 2, 3, 3)),
            ),
            LuRequest(
                a=rng.standard_normal((32, 32)) + 32 * np.eye(32), panel=8
            ),
            GemmRequest(a=np.zeros((4, 3)), b=np.zeros((5, 2))),  # fails
        ]
        with Session(params=PARAMS, n_core_groups=2) as s:
            total = ContextStats.zero()
            for request in requests:
                total = total.plus(s.submit(request).traffic)
            assert total.as_dict() == s.stats().traffic.as_dict()

    def test_batch_item_traffic_partitions_batch_traffic(self):
        items = mixed_batch(6, params=PARAMS, seed=5)
        with Session(params=PARAMS, n_core_groups=2) as s:
            result = s.batch(items, parallel=True)
            assert len(result.item_traffic) == len(items)
            total = ContextStats.zero()
            for item in result.item_traffic:
                total = total.plus(item)
            assert total.as_dict() == result.traffic.as_dict()


class TestBatchOptions:
    def test_engine_override_applies_per_batch(self):
        items = mixed_batch(3, params=PARAMS, seed=6)
        with Session(params=PARAMS, n_core_groups=2) as s:
            forced = s.batch(items, options=SubmitOptions(engine="device"))
            default = s.batch(items)
            assert forced.ok and default.ok
            for x, y in zip(forced.outputs, default.outputs):
                np.testing.assert_allclose(x, y, atol=1e-9)


class TestCloseConcurrency:
    def test_close_waits_out_inflight_batch(self):
        items = mixed_batch(6, params=PARAMS, seed=7)
        s = Session(params=PARAMS, n_core_groups=2)
        results = {}

        def run_batch():
            try:
                results["batch"] = s.batch(items, parallel=True)
            except ConfigError:
                results["refused"] = True

        worker = threading.Thread(target=run_batch)
        worker.start()
        s.close()
        worker.join()
        # the batch either completed cleanly before the close landed
        # or was refused outright — never half-executed.
        if "batch" in results:
            assert results["batch"].ok
        else:
            assert results.get("refused")
        with pytest.raises(ConfigError):
            s.batch(items)

    def test_double_close_from_two_threads(self):
        s = Session(params=PARAMS, n_core_groups=2)
        s.batch(mixed_batch(2, params=PARAMS, seed=8))
        threads = [threading.Thread(target=s.close) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        with pytest.raises(ConfigError):
            s.dgemm(np.eye(8), np.eye(8))
