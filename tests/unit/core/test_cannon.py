"""Unit tests for the Cannon ablation variant (A7)."""

import numpy as np
import pytest

from repro.arch.mesh import Coord
from repro.core.params import BlockingParams
from repro.core.reference import reference_dgemm
from repro.core.variants.cannon import CannonVariant
from repro.experiments import ablations
from repro.workloads.matrices import gemm_operands

PARAMS = BlockingParams.small(double_buffered=False)


def run_cannon(cg, m, n, k, alpha=1.0, beta=0.0, seed=0):
    a, b, c = gemm_operands(m, n, k, seed=seed)
    ha = cg.memory.store("A", a)
    hb = cg.memory.store("B", b)
    hc = cg.memory.store("C", c)
    CannonVariant().run(cg, ha, hb, hc, alpha=alpha, beta=beta, params=PARAMS)
    return cg.memory.read(hc), reference_dgemm(alpha, a, b, beta, c)


class TestCannonCorrectness:
    def test_single_block(self, cg):
        got, expected = run_cannon(cg, PARAMS.b_m, PARAMS.b_n, PARAMS.b_k,
                                   alpha=2.0, beta=-1.0)
        assert np.allclose(got, expected, rtol=1e-12, atol=1e-9)

    def test_multi_block(self, cg):
        got, expected = run_cannon(cg, 2 * PARAMS.b_m, PARAMS.b_n,
                                   2 * PARAMS.b_k, alpha=0.5, beta=0.25, seed=3)
        assert np.allclose(got, expected, rtol=1e-12, atol=1e-9)

    def test_buffers_drained(self, cg):
        run_cannon(cg, PARAMS.b_m, PARAMS.b_n, PARAMS.b_k)
        cg.regcomm.assert_drained()

    def test_uses_p2p_not_broadcast(self, cg):
        run_cannon(cg, PARAMS.b_m, PARAMS.b_n, PARAMS.b_k)
        assert cg.regcomm.stats.p2p_sends > 0
        assert cg.regcomm.stats.row_broadcasts == 0
        assert cg.regcomm.stats.col_broadcasts == 0


class TestSkewShift:
    def test_shift_rotates_rows(self, cg):
        tiles = {c: np.full((4, 4), float(c.col)) for c in cg.mesh.coords()}
        shifted = CannonVariant._shift(cg, tiles, "A")
        for coord in cg.mesh.coords():
            assert shifted[coord][0, 0] == float((coord.col + 1) % 8)

    def test_shift_rotates_columns_for_b(self, cg):
        tiles = {c: np.full((4, 4), float(c.row)) for c in cg.mesh.coords()}
        shifted = CannonVariant._shift(cg, tiles, "B")
        for coord in cg.mesh.coords():
            assert shifted[coord][0, 0] == float((coord.row + 1) % 8)

    def test_skew_alignment(self, cg):
        """After skewing, position (i, j) holds A block (i, (j+i)%8)."""
        tiles = {c: np.full((4, 4), 10.0 * c.row + c.col) for c in cg.mesh.coords()}
        skewed = CannonVariant._skew(cg, tiles, "A")
        for coord in cg.mesh.coords():
            expect = 10.0 * coord.row + (coord.col + coord.row) % 8
            assert skewed[coord][0, 0] == expect

    def test_skew_b_alignment(self, cg):
        tiles = {c: np.full((4, 4), 10.0 * c.row + c.col) for c in cg.mesh.coords()}
        skewed = CannonVariant._skew(cg, tiles, "B")
        for coord in cg.mesh.coords():
            expect = 10.0 * ((coord.row + coord.col) % 8) + coord.col
            assert skewed[coord][0, 0] == expect


class TestP2PRegcomm:
    def test_send_row_targets_one_cpe(self, cg):
        cg.regcomm.send_row(Coord(1, 2), 5, np.full(4, 9.0))
        assert cg.regcomm.receive_row(Coord(1, 5)).data[0] == 9.0
        # nobody else got it
        for j in (0, 1, 2, 3, 4, 6, 7):
            assert cg.regcomm.pending(Coord(1, j)) == (0, 0)

    def test_self_send_rejected(self, cg):
        from repro.errors import RegisterCommError

        with pytest.raises(RegisterCommError):
            cg.regcomm.send_row(Coord(0, 0), 0, np.zeros(4))

    def test_stats_counted(self, cg):
        cg.regcomm.send_col(Coord(3, 3), 0, np.zeros(8))
        assert cg.regcomm.stats.p2p_sends == 1
        assert cg.regcomm.stats.p2p_items == 2
        assert cg.regcomm.stats.bytes_moved == 64


class TestAblationA7:
    def test_cannon_loses_on_both_axes(self):
        data = ablations.cannon_comparison()
        assert data["traffic_bytes"]["cannon"] > data["traffic_bytes"]["broadcast"]
        assert data["kernel_slowdown"] > 1.2

    def test_render(self):
        text = ablations.render_cannon().render()
        assert "Cannon" in text and "slowdown" in text
