"""Unit tests for the scoped staging ExecutionContext."""

import numpy as np
import pytest

from repro.arch.core_group import CoreGroup
from repro.core.api import dgemm
from repro.core.context import ContextStats, ExecutionContext
from repro.core.params import BlockingParams
from repro.errors import ConfigError
from repro.workloads.matrices import gemm_operands

PARAMS = BlockingParams.small(double_buffered=True)


class TestLifecycle:
    def test_handles_freed_on_exit(self, cg):
        with ExecutionContext(cg) as ctx:
            ctx.stage("A", np.ones((32, 16)))
            ctx.stage("B", np.ones((16, 8)))
            assert len(cg.memory.handles()) == 2
        assert cg.memory.handles() == []
        assert cg.memory.used_bytes == 0

    def test_handles_freed_when_body_raises(self, cg):
        baseline = cg.memory.used_bytes
        with pytest.raises(RuntimeError):
            with ExecutionContext(cg) as ctx:
                ctx.stage("A", np.ones((32, 16)))
                raise RuntimeError("variant exploded")
        assert cg.memory.used_bytes == baseline
        assert cg.memory.handles() == []

    def test_close_is_idempotent(self, cg):
        ctx = ExecutionContext(cg)
        with ctx:
            ctx.stage("A", np.ones((16, 16)))
        ctx.close()
        ctx.close()
        assert cg.memory.used_bytes == 0

    def test_stage_outside_open_context_rejected(self, cg):
        ctx = ExecutionContext(cg)
        with pytest.raises(ConfigError):
            ctx.stage("A", np.ones((16, 16)))  # never entered
        with ctx:
            ctx.stage("A", np.ones((16, 16)))
        with pytest.raises(ConfigError):
            ctx.stage("A", np.ones((16, 16)))  # closed: would leak
        assert cg.memory.used_bytes == 0

    def test_context_reusable_after_close(self, cg):
        ctx = ExecutionContext(cg)
        for fill in (1.0, 2.0):
            with ctx:
                h = ctx.stage("A", np.full((8, 8), fill))
                assert cg.memory.array(h)[0, 0] == fill
            assert cg.memory.used_bytes == 0

    def test_not_reentrant(self, cg):
        with ExecutionContext(cg) as ctx:
            with pytest.raises(ConfigError):
                ctx.__enter__()

    def test_externally_freed_handle_tolerated(self, cg):
        with ExecutionContext(cg) as ctx:
            h = ctx.stage("A", np.ones((16, 16)))
            cg.memory.free(h.name)
        assert cg.memory.used_bytes == 0


class TestUniqueNames:
    def test_two_contexts_never_clobber(self, cg):
        with ExecutionContext(cg) as ctx1, ExecutionContext(cg) as ctx2:
            h1 = ctx1.stage("A", np.full((8, 8), 1.0))
            h2 = ctx2.stage("A", np.full((8, 8), 2.0))
            assert h1.name != h2.name
            assert cg.memory.array(h1)[0, 0] == 1.0
            assert cg.memory.array(h2)[0, 0] == 2.0

    def test_genuine_name_conflict_raises(self, cg):
        cg.memory.store("mine.A[8x8]", np.zeros((8, 8)))
        with ExecutionContext(cg, namespace="mine") as ctx:
            with pytest.raises(ConfigError):
                ctx.stage("A", np.ones((8, 8)))

    def test_executing_guard_rejects_interleaved_calls(self, cg):
        a, b, _ = gemm_operands(PARAMS.b_m, PARAMS.b_n, PARAMS.b_k)
        with ExecutionContext(cg) as ctx:
            with ctx.executing():
                with pytest.raises(ConfigError):
                    dgemm(a, b, params=PARAMS, context=ctx)

    def test_context_core_group_mismatch_raises(self):
        ctx = ExecutionContext(CoreGroup())
        other = CoreGroup()
        a, b, _ = gemm_operands(PARAMS.b_m, PARAMS.b_n, PARAMS.b_k)
        with pytest.raises(ConfigError):
            dgemm(a, b, params=PARAMS, context=ctx, core_group=other)


class TestPlanCache:
    def test_same_shape_restage_reuses_allocation(self, cg):
        with ExecutionContext(cg) as ctx:
            h1 = ctx.stage("A", np.full((16, 16), 1.0))
            backing = cg.memory.array(h1)
            allocs = cg.memory.stats.allocations
            h2 = ctx.stage("A", np.full((16, 16), 2.0))
            assert h2.name == h1.name
            assert cg.memory.stats.allocations == allocs  # no realloc
            assert cg.memory.array(h2) is backing  # same buffer, rewritten
            assert backing[0, 0] == 2.0
            assert ctx.stats().plan_hits == 1

    def test_distinct_shapes_get_distinct_plans(self, cg):
        with ExecutionContext(cg) as ctx:
            h1 = ctx.stage("A", np.ones((16, 16)))
            h2 = ctx.stage("A", np.ones((32, 16)))
            assert h1.name != h2.name
            assert len(cg.memory.handles()) == 2

    def test_eviction_frees_cold_plans(self, cg):
        with ExecutionContext(cg, cache_capacity=2) as ctx:
            for rows in (16, 32, 48):
                ctx.stage("A", np.ones((rows, 8)))
            assert len(cg.memory.handles()) == 2  # 16-row plan evicted
        assert cg.memory.used_bytes == 0

    def test_padded_stage_zero_fills_border(self, cg):
        with ExecutionContext(cg) as ctx:
            h = ctx.stage("A", np.ones((3, 3)), rows=8, cols=8)
            arr = cg.memory.array(h)
            assert arr.shape == (8, 8)
            assert np.all(arr[:3, :3] == 1.0)
            assert np.all(arr[3:, :] == 0.0) and np.all(arr[:3, 3:] == 0.0)
            # restage smaller content into the same padded plan: border
            # must be re-zeroed in place
            ctx.stage("A", np.full((2, 2), 5.0), rows=8, cols=8)
            assert arr[0, 0] == 5.0 and np.all(arr[2:, :] == 0.0)

    def test_stage_zeros_makes_no_host_copy(self, cg):
        with ExecutionContext(cg) as ctx:
            h = ctx.stage_zeros("C", 16, 8)
            assert np.all(cg.memory.array(h) == 0.0)

    def test_bad_cache_capacity_rejected(self, cg):
        with pytest.raises(ConfigError):
            ExecutionContext(cg, cache_capacity=0)


class TestAccounting:
    def test_stat_deltas_start_at_zero(self, cg):
        with ExecutionContext(cg) as ctx:
            assert ctx.stats() == ContextStats(0, 0, 0, 0, 0, 0)

    def test_deltas_exclude_prior_traffic(self):
        cg = CoreGroup()
        a, b, _ = gemm_operands(PARAMS.b_m, PARAMS.b_n, PARAMS.b_k)
        dgemm(a, b, params=PARAMS, core_group=cg)  # pre-existing traffic
        before = cg.dma.stats.bytes_total
        assert before > 0
        with ExecutionContext(cg) as ctx:
            dgemm(a, b, params=PARAMS, context=ctx)
            assert ctx.dma_bytes == cg.dma.stats.bytes_total - before
            assert ctx.dma_transactions > 0
            assert ctx.regcomm_bytes > 0

    def test_stats_since_subtracts(self, cg):
        with ExecutionContext(cg) as ctx:
            ctx.stage("A", np.ones((16, 16)))
            snap = ctx.stats()
            ctx.stage("A", np.ones((16, 16)))
            delta = ctx.stats().since(snap)
            assert delta.staged == 1 and delta.plan_hits == 1
            assert delta.allocations == 0

    def test_baseline_bytes_records_entry_level(self, cg):
        cg.memory.store("resident", np.ones((16, 16)))
        with ExecutionContext(cg) as ctx:
            assert ctx.baseline_bytes == 16 * 16 * 8
            ctx.stage("A", np.ones((8, 8)))
        assert cg.memory.used_bytes == 16 * 16 * 8
