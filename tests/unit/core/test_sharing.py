"""Unit tests for the collective data-sharing scheme (Sec III-B)."""

import numpy as np
import pytest

from repro.arch.mesh import Coord
from repro.core.sharing import Role, Scheme, exchange_step, role_of
from repro.errors import SharingError


class TestRoles:
    def test_pe_scheme_matches_figure3(self):
        step = 2
        assert role_of(Coord(2, 2), step, Scheme.PE) is Role.DIAGONAL
        assert role_of(Coord(5, 2), step, Scheme.PE) is Role.A_OWNER   # column 2
        assert role_of(Coord(2, 5), step, Scheme.PE) is Role.B_OWNER   # row 2
        assert role_of(Coord(4, 5), step, Scheme.PE) is Role.RECEIVER

    def test_row_scheme_transposes_ownership(self):
        step = 3
        assert role_of(Coord(3, 3), step, Scheme.ROW) is Role.DIAGONAL
        assert role_of(Coord(3, 6), step, Scheme.ROW) is Role.A_OWNER  # row 3
        assert role_of(Coord(6, 3), step, Scheme.ROW) is Role.B_OWNER  # column 3
        assert role_of(Coord(1, 6), step, Scheme.ROW) is Role.RECEIVER

    def test_role_census_per_step(self):
        for scheme in Scheme:
            for step in range(8):
                roles = [role_of(c, step, scheme) for c in
                         (Coord(i, j) for i in range(8) for j in range(8))]
                assert roles.count(Role.DIAGONAL) == 1
                assert roles.count(Role.A_OWNER) == 7
                assert roles.count(Role.B_OWNER) == 7
                assert roles.count(Role.RECEIVER) == 49

    def test_step_bounds(self):
        with pytest.raises(SharingError):
            role_of(Coord(0, 0), 8, Scheme.PE)


def _tiles(cg, fill_fn):
    return {c: fill_fn(c) for c in cg.mesh.coords()}


class TestExchangeStep:
    @pytest.mark.parametrize("scheme", [Scheme.PE, Scheme.ROW])
    @pytest.mark.parametrize("step", [0, 3, 7])
    def test_every_cpe_gets_the_owners_tiles(self, cg, scheme, step):
        # tag each tile with its owner's coordinates so provenance is
        # checkable after the exchange
        a_tiles = _tiles(cg, lambda c: np.full((4, 4), 100 * c.row + c.col, dtype=float))
        b_tiles = _tiles(cg, lambda c: np.full((4, 4), -(100 * c.row + c.col) - 1.0))
        operands = exchange_step(cg, step, scheme, a_tiles, b_tiles)
        for coord, (a_part, b_part) in operands.items():
            if scheme is Scheme.PE:
                a_owner = Coord(coord.row, step)
                b_owner = Coord(step, coord.col)
            else:
                a_owner = Coord(step, coord.col)
                b_owner = Coord(coord.row, step)
            assert np.all(a_part == 100 * a_owner.row + a_owner.col)
            assert np.all(b_part == -(100 * b_owner.row + b_owner.col) - 1.0)

    def test_buffers_drained_after_exchange(self, cg):
        a_tiles = _tiles(cg, lambda c: np.zeros((4, 4)))
        b_tiles = _tiles(cg, lambda c: np.zeros((4, 4)))
        exchange_step(cg, 0, Scheme.PE, a_tiles, b_tiles)
        cg.regcomm.assert_drained()

    def test_broadcast_counts(self, cg):
        a_tiles = _tiles(cg, lambda c: np.zeros((4, 4)))
        b_tiles = _tiles(cg, lambda c: np.zeros((4, 4)))
        exchange_step(cg, 5, Scheme.PE, a_tiles, b_tiles)
        # 8 A row-broadcasts + 8 B column-broadcasts
        assert cg.regcomm.stats.row_broadcasts == 8
        assert cg.regcomm.stats.col_broadcasts == 8
        # every non-owner receives: 2 * 56 pops
        assert cg.regcomm.stats.receives == 112

    def test_full_eight_steps_consume_full_k(self, cg):
        """Over all 8 steps each CPE sees each owner line exactly once."""
        seen: dict[Coord, list[float]] = {c: [] for c in cg.mesh.coords()}
        for step in range(8):
            a_tiles = _tiles(cg, lambda c: np.full((4, 4), float(c.col)))
            b_tiles = _tiles(cg, lambda c: np.zeros((4, 4)))
            operands = exchange_step(cg, step, Scheme.PE, a_tiles, b_tiles)
            for coord, (a_part, _) in operands.items():
                seen[coord].append(float(a_part[0, 0]))
        for coord, cols in seen.items():
            # in the PE scheme, step s serves column s's A tiles
            assert cols == [float(s) for s in range(8)]
