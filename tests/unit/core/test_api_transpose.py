"""Unit tests for the transpose extension of dgemm."""

import numpy as np
import pytest

from repro.core.api import dgemm
from repro.core.params import BlockingParams
from repro.errors import UnsupportedShapeError
from repro.workloads.matrices import random_matrix

PARAMS = BlockingParams.small(double_buffered=True)
M, N, K = PARAMS.b_m, PARAMS.b_n, PARAMS.b_k


class TestTranspose:
    def test_transa(self):
        a_t = random_matrix(K, M, seed=1)  # stored as A^T
        b = random_matrix(K, N, seed=2)
        out = dgemm(a_t, b, transa="T", params=PARAMS)
        assert np.allclose(out, a_t.T @ b, rtol=1e-12, atol=1e-9)

    def test_transb(self):
        a = random_matrix(M, K, seed=3)
        b_t = random_matrix(N, K, seed=4)
        out = dgemm(a, b_t, transb="T", params=PARAMS)
        assert np.allclose(out, a @ b_t.T, rtol=1e-12, atol=1e-9)

    def test_both_transposed(self):
        a_t = random_matrix(K, M, seed=5)
        b_t = random_matrix(N, K, seed=6)
        c = random_matrix(M, N, seed=7)
        out = dgemm(a_t, b_t, c, alpha=2.0, beta=1.0, transa="T", transb="T",
                    params=PARAMS)
        assert np.allclose(out, 2.0 * a_t.T @ b_t.T + c, rtol=1e-12, atol=1e-9)

    def test_lowercase_accepted(self):
        a_t = random_matrix(K, M, seed=8)
        b = random_matrix(K, N, seed=9)
        out = dgemm(a_t, b, transa="t", params=PARAMS)
        assert np.allclose(out, a_t.T @ b, rtol=1e-12, atol=1e-9)

    def test_invalid_flag_rejected(self):
        a = random_matrix(M, K)
        b = random_matrix(K, N)
        with pytest.raises(UnsupportedShapeError):
            dgemm(a, b, transa="C", params=PARAMS)

    def test_shape_check_happens_after_transpose(self):
        # A^T has the right inner dimension only after transposing
        a_t = random_matrix(K, 2 * M, seed=10)
        b = random_matrix(K, N, seed=11)
        out = dgemm(a_t, b, transa="T", params=PARAMS)
        assert out.shape == (2 * M, N)
        with pytest.raises(UnsupportedShapeError):
            dgemm(a_t, b, params=PARAMS)  # inner dims 2M vs K mismatch

    def test_check_flag_with_transpose(self):
        a_t = random_matrix(K, M, seed=12)
        b = random_matrix(K, N, seed=13)
        dgemm(a_t, b, transa="T", params=PARAMS, check=True)
