"""Unit tests for the two data-thread mappings (Sec III-A / IV-A)."""

import numpy as np
import pytest

from repro.arch.dma import row_mode_owner_rows
from repro.core.mapping import BUF_A, BUF_B, BUF_C, PEMapping, RowMapping
from repro.core.params import BlockingParams


@pytest.fixture()
def params() -> BlockingParams:
    return BlockingParams.small(double_buffered=False)


@pytest.fixture()
def staged(cg, params, rng):
    """A core group with one CG block of each matrix resident."""
    p = params
    a = np.asfortranarray(rng.standard_normal((2 * p.b_m, 2 * p.b_k)))
    b = np.asfortranarray(rng.standard_normal((2 * p.b_k, 2 * p.b_n)))
    c = np.asfortranarray(rng.standard_normal((2 * p.b_m, 2 * p.b_n)))
    return (
        cg,
        cg.memory.store("A", a),
        cg.memory.store("B", b),
        cg.memory.store("C", c),
        (a, b, c),
    )


class TestAllocation:
    def test_single_buffered_names(self, cg, params):
        PEMapping(params).allocate(cg)
        names = set(cg.cpe((0, 0)).ldm.names())
        assert names == {BUF_A, BUF_B, BUF_C}

    def test_double_buffered_names(self, cg):
        params = BlockingParams.small(double_buffered=True)
        RowMapping(params).allocate(cg)
        names = set(cg.cpe((0, 0)).ldm.names())
        assert names == {"A0", "A1", "C0", "C1", "B"}

    def test_tile_shapes(self, params):
        m = PEMapping(params)
        assert m.tile_shape(BUF_A) == (params.p_m, params.p_k)
        assert m.tile_shape(BUF_B) == (params.p_k, params.p_n)
        assert m.tile_shape(BUF_C) == (params.p_m, params.p_n)


class TestPEMapping:
    def test_thread_uv_owns_block_uv(self, staged, params):
        cg, ha, hb, hc, (a, b, c) = staged
        mapping = PEMapping(params)
        mapping.allocate(cg)
        mapping.load_a(cg, ha, 1, 0)
        mapping.load_b(cg, hb, 0, 1)
        mapping.load_c(cg, hc, 1, 1)
        p = params
        for coord in cg.mesh.coords():
            u, v = coord
            got_a = cg.cpe(coord).ldm.get(BUF_A).data
            expect_a = a[
                p.b_m + u * p.p_m : p.b_m + (u + 1) * p.p_m,
                v * p.p_k : (v + 1) * p.p_k,
            ]
            assert np.array_equal(got_a, expect_a)
            got_b = cg.cpe(coord).ldm.get(BUF_B).data
            expect_b = b[
                u * p.p_k : (u + 1) * p.p_k,
                p.b_n + v * p.p_n : p.b_n + (v + 1) * p.p_n,
            ]
            assert np.array_equal(got_b, expect_b)

    def test_store_c_roundtrip(self, staged, params):
        cg, ha, hb, hc, (a, b, c) = staged
        mapping = PEMapping(params)
        mapping.allocate(cg)
        mapping.load_c(cg, hc, 0, 0)
        for coord in cg.mesh.coords():
            cg.cpe(coord).ldm.get(BUF_C).data *= 2.0
        mapping.store_c(cg, hc, 0, 0)
        got = cg.memory.array(hc)
        p = params
        assert np.array_equal(got[: p.b_m, : p.b_n], 2.0 * c[: p.b_m, : p.b_n])
        # other blocks untouched
        assert np.array_equal(got[p.b_m :, :], c[p.b_m :, :])


class TestRowMapping:
    def test_a_distribution_interleaved(self, staged, params):
        cg, ha, hb, hc, (a, b, c) = staged
        mapping = RowMapping(params)
        mapping.allocate(cg)
        mapping.load_a(cg, ha, 0, 1)
        p = params
        for coord in cg.mesh.coords():
            strip, j = coord
            block = a[: p.b_m, p.b_k + strip * p.p_k : p.b_k + (strip + 1) * p.p_k]
            mine = row_mode_owner_rows(p.b_m, j)
            assert np.array_equal(cg.cpe(coord).ldm.get(BUF_A).data, block[mine, :])

    def test_b_remapped_distribution(self, staged, params):
        cg, ha, hb, hc, (a, b, c) = staged
        mapping = RowMapping(params)
        mapping.allocate(cg)
        mapping.load_b(cg, hb, 1, 0)
        p = params
        for coord in cg.mesh.coords():
            i, j = coord
            expect = b[
                p.b_k + j * p.p_k : p.b_k + (j + 1) * p.p_k,
                i * p.p_n : (i + 1) * p.p_n,
            ]
            assert np.array_equal(cg.cpe(coord).ldm.get(BUF_B).data, expect)

    def test_c_store_roundtrip_preserves_interleave(self, staged, params):
        cg, ha, hb, hc, (a, b, c) = staged
        mapping = RowMapping(params)
        mapping.allocate(cg)
        mapping.load_c(cg, hc, 1, 0)
        mapping.store_c(cg, hc, 1, 0)
        assert np.array_equal(cg.memory.array(hc), c)

    def test_a_and_c_share_row_subsets(self, staged, params):
        """The correctness keystone: a CPE's A rows == its C rows."""
        cg, ha, hb, hc, (a, b, c) = staged
        mapping = RowMapping(params)
        mapping.allocate(cg)
        mapping.load_a(cg, ha, 0, 0)
        mapping.load_c(cg, hc, 0, 0)
        p = params
        for coord in cg.mesh.coords():
            strip, j = coord
            mine = row_mode_owner_rows(p.b_m, j)
            a_rows = a[mine, strip * p.p_k : (strip + 1) * p.p_k]
            c_rows = c[mine, strip * p.p_n : (strip + 1) * p.p_n]
            assert np.array_equal(cg.cpe(coord).ldm.get(BUF_A).data, a_rows)
            assert np.array_equal(cg.cpe(coord).ldm.get(BUF_C).data, c_rows)
