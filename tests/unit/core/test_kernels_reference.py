"""Unit tests for the functional kernels and the reference GEMM."""

import numpy as np
import pytest

from repro.arch.regfile import VectorRegisterFile
from repro.core.kernel_functional import (
    register_tile_multiply,
    tile_multiply,
)
from repro.core.reference import reference_dgemm
from repro.errors import ConfigError, UnsupportedShapeError


class TestTileMultiply:
    def test_accumulates_in_place(self, rng):
        a = rng.standard_normal((16, 8))
        b = rng.standard_normal((8, 12))
        c = rng.standard_normal((16, 12))
        expected = c + 2.0 * (a @ b)
        tile_multiply(c, a, b, alpha=2.0)
        assert np.allclose(c, expected)

    def test_shape_validation(self):
        with pytest.raises(ConfigError):
            tile_multiply(np.zeros((4, 4)), np.zeros((5, 4)), np.zeros((4, 4)))
        with pytest.raises(ConfigError):
            tile_multiply(np.zeros((4, 4)), np.zeros((4, 3)), np.zeros((4, 4)))


class TestRegisterTileMultiply:
    def test_matches_numpy(self, rng):
        regs = VectorRegisterFile()
        a = rng.standard_normal((16, 8))
        b = rng.standard_normal((8, 8))
        c = np.asfortranarray(rng.standard_normal((16, 8)))
        expected = c + 1.5 * (a @ b)
        register_tile_multiply(regs, c, a, b, alpha=1.5)
        assert np.allclose(c, expected, rtol=1e-12, atol=1e-12)

    def test_instruction_counts(self, rng):
        regs = VectorRegisterFile()
        p_k, p_n = 8, 8
        a = rng.standard_normal((16, p_k))
        b = rng.standard_normal((p_k, p_n))
        c = np.zeros((16, p_n), order="F")
        counts = register_tile_multiply(regs, c, a, b)
        tiles = p_n // 4
        assert counts.vmad == tiles * p_k * 16
        assert counts.a_loads == tiles * p_k * 4
        assert counts.b_loads == tiles * p_k * 4
        assert counts.c_loads == counts.c_stores == tiles * 16

    def test_vmad_flop_accounting_matches_gemm(self):
        # 2*pM*pN*pK flops = vmads * 8
        regs = VectorRegisterFile()
        p_k, p_n = 4, 8
        counts = register_tile_multiply(
            regs, np.zeros((16, p_n), order="F"),
            np.ones((16, p_k)), np.ones((p_k, p_n)),
        )
        assert counts.vmad * 8 == 2 * 16 * p_n * p_k

    def test_rejects_wrong_pm(self):
        regs = VectorRegisterFile()
        with pytest.raises(ConfigError):
            register_tile_multiply(
                regs, np.zeros((8, 4)), np.zeros((8, 4)), np.zeros((4, 4))
            )

    def test_rejects_mismatched_tiles(self):
        regs = VectorRegisterFile()
        with pytest.raises(ConfigError):
            register_tile_multiply(
                regs, np.zeros((16, 4)), np.zeros((16, 5)), np.zeros((4, 4))
            )

    def test_rejects_pn_not_multiple_of_4(self):
        regs = VectorRegisterFile()
        with pytest.raises(ConfigError):
            register_tile_multiply(
                regs, np.zeros((16, 6)), np.zeros((16, 4)), np.zeros((4, 6))
            )


class TestReference:
    def test_blas_contract(self, rng):
        a = rng.standard_normal((6, 4))
        b = rng.standard_normal((4, 5))
        c = rng.standard_normal((6, 5))
        out = reference_dgemm(2.0, a, b, -1.0, c)
        assert np.allclose(out, 2.0 * a @ b - c)

    def test_input_c_not_modified(self, rng):
        c = rng.standard_normal((4, 4))
        before = c.copy()
        reference_dgemm(1.0, np.eye(4), np.eye(4), 3.0, c)
        assert np.array_equal(c, before)

    def test_shape_checks(self):
        with pytest.raises(UnsupportedShapeError):
            reference_dgemm(1.0, np.zeros((2, 3)), np.zeros((4, 2)), 0.0, np.zeros((2, 2)))
        with pytest.raises(UnsupportedShapeError):
            reference_dgemm(1.0, np.zeros(3), np.zeros((3, 2)), 0.0, np.zeros((1, 2)))

    def test_output_fortran_order(self, rng):
        out = reference_dgemm(
            1.0, rng.standard_normal((3, 3)), rng.standard_normal((3, 3)),
            0.0, np.zeros((3, 3)),
        )
        assert out.flags.f_contiguous
