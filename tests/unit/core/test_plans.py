"""Unit tests for the execution-plan layer (plans.py).

The cache contracts under test: one build per signature no matter how
many threads race, LRU eviction bounded by the LDM-derived byte budget,
counters that reconcile (``builds == misses``), and drain-on-close
through ``Session``/``CGScheduler``.
"""

import threading

import numpy as np
import pytest

from repro.api import GemmRequest
from repro.arch.config import DEFAULT_SPEC
from repro.core.batch import dgemm_batch
from repro.core.engine.plans import (
    IndexPlan,
    PlanCache,
    default_plan_cache,
)
from repro.core.params import GRID, BlockingParams
from repro.core.session import Session
from repro.core.sharing import Scheme, step_owner_indices, step_owner_slots
from repro.core.variants import get_variant
from repro.errors import ConfigError
from repro.workloads.matrices import gemm_operands

PARAMS = BlockingParams.small(double_buffered=True)
SCHED = get_variant("SCHED")


def _shape(mult=1):
    return (mult * PARAMS.b_m, mult * PARAMS.b_n, mult * PARAMS.b_k)


class TestOwnerSlots:
    @pytest.mark.parametrize("scheme", [Scheme.PE, Scheme.ROW])
    def test_expand_reproduces_full_tables(self, scheme):
        slots = step_owner_slots(scheme)
        full_a, full_b = step_owner_indices(scheme)
        exp_a, exp_b = slots.expand()
        assert np.array_equal(exp_a, full_a)
        assert np.array_equal(exp_b, full_b)

    def test_slots_are_immutable(self):
        slots = step_owner_slots(Scheme.PE)
        with pytest.raises(ValueError):
            slots.a_slots[0, 0] = 7


class TestIndexPlan:
    def test_build_freezes_tables_and_sizes(self):
        cache = PlanCache()
        plan = cache.get_or_build(SCHED, PARAMS, *_shape())
        assert isinstance(plan, IndexPlan)
        for table in (plan.owner_a, plan.owner_b, plan.m_origins,
                      plan.n_origins, plan.k_origins):
            assert not table.flags.writeable
            assert table.dtype == np.int32
        assert plan.owner_a.shape == (GRID, GRID * GRID)
        assert plan.nbytes > 0
        assert plan.a4_shape == (GRID, GRID, PARAMS.p_m, PARAMS.p_k)
        assert plan.c4_shape == (GRID, GRID, PARAMS.p_m, PARAMS.p_n)

    @pytest.mark.parametrize("variant", ["PE", "ROW", "DB", "SCHED"])
    def test_step_views_match_gather_tables(self, variant):
        """A step's broadcast views multiply exactly the tile pairs the
        full gather tables name — per step, per mesh position."""
        impl = get_variant(variant)
        p = BlockingParams.small(
            double_buffered=impl.traits.double_buffered)
        cache = PlanCache()
        plan = cache.get_or_build(impl, p, p.b_m, p.b_n, p.b_k)
        rng = np.random.default_rng(3)
        a = rng.standard_normal((GRID * GRID, p.p_m, p.p_k))
        b = rng.standard_normal((GRID * GRID, p.p_k, p.p_n))
        a4 = a.reshape(plan.a4_shape)
        b4 = b.reshape(plan.b4_shape)
        idx_a, idx_b = step_owner_indices(impl.scheme)
        for step in range(GRID):
            av, bv = plan.step_views(a4, b4, step)
            prod = np.matmul(av, bv).reshape(GRID * GRID, p.p_m, p.p_n)
            expected = np.matmul(a[idx_a[step]], b[idx_b[step]])
            assert np.array_equal(prod, expected)


class TestPlanCache:
    def test_one_build_then_hits(self):
        cache = PlanCache()
        first = cache.get_or_build(SCHED, PARAMS, *_shape())
        second = cache.get_or_build(SCHED, PARAMS, *_shape())
        assert first is second
        stats = cache.stats()
        assert stats.builds == 1 == stats.misses
        assert stats.hits == 1
        assert stats.plans == 1
        assert stats.bytes == first.nbytes

    def test_distinct_signatures_build_separately(self):
        cache = PlanCache()
        small = cache.get_or_build(SCHED, PARAMS, *_shape())
        big = cache.get_or_build(SCHED, PARAMS, *_shape(2))
        assert small is not big
        assert cache.stats().builds == 2
        pe = get_variant("PE")
        cache.get_or_build(
            pe, BlockingParams.small(double_buffered=False), *_shape())
        assert cache.stats().builds == 3

    def test_default_budget_models_ldm_pressure(self):
        assert PlanCache().max_bytes == DEFAULT_SPEC.ldm_doubles * 8
        assert (PlanCache(n_core_groups=4).max_bytes
                == 4 * DEFAULT_SPEC.ldm_doubles * 8)

    def test_eviction_at_one_byte_budget(self):
        """A 1-byte budget keeps exactly the most recent plan: every
        new signature evicts the previous one, and the single resident
        plan may exceed the budget (it must still execute)."""
        cache = PlanCache(max_bytes=1)
        first = cache.get_or_build(SCHED, PARAMS, *_shape())
        assert cache.stats().plans == 1       # oversized but resident
        assert cache.stats().bytes == first.nbytes > cache.max_bytes
        second = cache.get_or_build(SCHED, PARAMS, *_shape(2))
        stats = cache.stats()
        assert stats.plans == 1
        assert stats.evictions == 1
        assert stats.bytes == second.nbytes
        # the evicted signature rebuilds on next use
        cache.get_or_build(SCHED, PARAMS, *_shape())
        assert cache.stats().builds == 3

    def test_eviction_is_lru(self):
        cache = PlanCache()
        a = cache.get_or_build(SCHED, PARAMS, *_shape())
        b = cache.get_or_build(SCHED, PARAMS, *_shape(2))
        # touch `a` so `b` is the cold entry, then shrink the budget to
        # force one eviction on the next insert (with slack for the new
        # plan's slightly larger origin tables).
        cache.get_or_build(SCHED, PARAMS, *_shape())
        cache.max_bytes = a.nbytes + b.nbytes + 128
        cache.get_or_build(SCHED, PARAMS, *_shape(3))
        assert cache.stats().evictions == 1
        cache.get_or_build(SCHED, PARAMS, *_shape())      # `a` survived
        cache.get_or_build(SCHED, PARAMS, *_shape(2))     # `b` rebuilt
        stats = cache.stats()
        assert stats.builds == 4

    def test_clear_drains_without_counting_evictions(self):
        cache = PlanCache()
        cache.get_or_build(SCHED, PARAMS, *_shape())
        cache.clear()
        stats = cache.stats()
        assert stats.plans == 0 and stats.bytes == 0
        assert stats.evictions == 0
        assert len(cache) == 0

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ConfigError):
            PlanCache(n_core_groups=0)
        with pytest.raises(ConfigError):
            PlanCache(max_bytes=0)

    def test_four_workers_one_build(self):
        """Four threads racing on one signature produce exactly one
        build and share the identical plan object."""
        cache = PlanCache(n_core_groups=4)
        barrier = threading.Barrier(4)
        plans = []
        lock = threading.Lock()

        def worker():
            barrier.wait()
            plan = cache.get_or_build(SCHED, PARAMS, *_shape())
            with lock:
                plans.append(plan)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(plans) == 4
        assert all(p is plans[0] for p in plans)
        stats = cache.stats()
        assert stats.builds == 1
        assert stats.hits == 3

    def test_default_cache_is_process_wide(self):
        assert default_plan_cache() is default_plan_cache()


class TestBatchRegression:
    def test_one_build_per_signature_across_a_batch(self):
        """The bug the plan cache fixes: the stepwise engine used to
        re-derive its owner tables on every call even when one batch
        repeats a single shape.  Now a repeated-shape batch compiles
        exactly one plan and hits it for every other item."""
        m, n, k = _shape()
        items = [
            GemmRequest(*gemm_operands(m, n, k, seed=s)[:2]) for s in range(4)
        ]
        cache = PlanCache()
        result = dgemm_batch(items, engine="stepwise", params=PARAMS,
                             plan_cache=cache)
        assert len(result.outputs) == 4
        stats = cache.stats()
        assert stats.builds == 1 == stats.misses
        assert stats.hits == 3


class TestSessionIntegration:
    def test_parallel_batches_hit_shared_cache_and_close_drains(self):
        """Repeated ``Session.batch(parallel=True)`` waves build each
        plan once and hit it thereafter — across all CG worker threads
        — and ``Session.close`` drains the cache to zero bytes."""
        m, n, k = _shape()
        items = [
            GemmRequest(*gemm_operands(m, n, k, seed=s)[:2]) for s in range(6)
        ]
        session = Session(params=PARAMS, engine="stepwise", n_core_groups=2)
        try:
            session.batch(items, parallel=True)
            after_first = session.plan_cache.stats()
            assert after_first.builds == 1
            assert after_first.hits == len(items) - 1
            session.batch(items, parallel=True)
            after_second = session.plan_cache.stats()
            assert after_second.builds == 1       # warm across batches
            assert after_second.hits == 2 * len(items) - 1
            assert after_second.bytes <= session.plan_cache.max_bytes
        finally:
            session.close()
        drained = session.plan_cache.stats()
        assert drained.plans == 0 and drained.bytes == 0

    def test_scalar_calls_share_the_session_cache(self):
        m, n, k = _shape()
        a, b, _ = gemm_operands(m, n, k, seed=0)
        with Session(params=PARAMS, engine="stepwise",
                     n_core_groups=1) as session:
            session.dgemm(a, b)
            session.dgemm(a, b)
            stats = session.plan_cache.stats()
            assert stats.builds == 1
            assert stats.hits == 1
