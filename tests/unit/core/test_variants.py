"""Unit tests for the five GEMM variants' functional execution."""

import numpy as np
import pytest

from repro.core.params import BlockingParams
from repro.core.reference import reference_dgemm
from repro.core.variants import VARIANTS, get_variant
from repro.core.variants.raw import RawVariant, pick_tile
from repro.errors import UnsupportedShapeError
from repro.workloads.matrices import gemm_operands


def run_variant(cg, name, m, n, k, alpha=1.0, beta=0.0, params=None, seed=0):
    a, b, c = gemm_operands(m, n, k, seed=seed)
    ha = cg.memory.store("A", a)
    hb = cg.memory.store("B", b)
    hc = cg.memory.store("C", c)
    get_variant(name).run(cg, ha, hb, hc, alpha=alpha, beta=beta, params=params)
    got = cg.memory.read(hc)
    expected = reference_dgemm(alpha, a, b, beta, c)
    return got, expected


class TestRegistry:
    def test_paper_order(self):
        assert list(VARIANTS) == ["RAW", "PE", "ROW", "DB", "SCHED"]

    def test_lookup_case_insensitive(self):
        assert get_variant("sched").traits.name == "SCHED"

    def test_unknown_variant(self):
        with pytest.raises(KeyError):
            get_variant("TURBO")

    def test_traits_progression(self):
        assert VARIANTS["RAW"].traits.shared is False
        assert VARIANTS["PE"].traits.ac_mode == "PE"
        assert VARIANTS["ROW"].traits.ac_mode == "ROW"
        assert VARIANTS["DB"].traits.double_buffered is True
        assert VARIANTS["SCHED"].traits.kernel == "scheduled"
        assert VARIANTS["DB"].traits.kernel == "naive"


class TestBlockedVariants:
    @pytest.mark.parametrize("name", ["PE", "ROW"])
    def test_single_buffered_correct(self, cg, name, small_single):
        p = small_single
        got, expected = run_variant(
            cg, name, 2 * p.b_m, p.b_n, 2 * p.b_k, alpha=1.5, beta=0.5, params=p
        )
        assert np.allclose(got, expected, rtol=1e-12, atol=1e-9)

    @pytest.mark.parametrize("name", ["DB", "SCHED"])
    def test_double_buffered_correct(self, cg, name, small_double):
        p = small_double
        got, expected = run_variant(
            cg, name, 3 * p.b_m, p.b_n, p.b_k, alpha=-0.5, beta=2.0, params=p
        )
        assert np.allclose(got, expected, rtol=1e-12, atol=1e-9)

    def test_db_single_block_m(self, cg, small_double):
        """grid_m == 1 takes Algorithm 2's degenerate path."""
        p = small_double
        got, expected = run_variant(cg, "DB", p.b_m, p.b_n, p.b_k, params=p)
        assert np.allclose(got, expected, rtol=1e-12, atol=1e-9)

    def test_db_two_blocks_m(self, cg, small_double):
        """grid_m == 2 exercises the empty steady-state loop."""
        p = small_double
        got, expected = run_variant(cg, "DB", 2 * p.b_m, p.b_n, p.b_k, params=p)
        assert np.allclose(got, expected, rtol=1e-12, atol=1e-9)

    def test_beta_zero_ignores_input_c(self, cg, small_single):
        p = small_single
        got, expected = run_variant(cg, "PE", p.b_m, p.b_n, p.b_k, beta=0.0, params=p)
        assert np.allclose(got, expected, rtol=1e-12, atol=1e-9)

    def test_variant_buffer_regime_enforced(self, cg, small_single, small_double):
        a, b, c = gemm_operands(128, 64, 128)
        ha, hb, hc = (cg.memory.store(n, m) for n, m in zip("ABC", (a, b, c)))
        with pytest.raises(ValueError):
            get_variant("PE").run(cg, ha, hb, hc, params=small_double)
        with pytest.raises(ValueError):
            get_variant("DB").run(cg, ha, hb, hc, params=small_single)

    def test_shape_must_be_block_multiple(self, cg, small_single):
        a, b, c = gemm_operands(100, 64, 128)
        ha, hb, hc = (cg.memory.store(n, m) for n, m in zip("ABC", (a, b, c)))
        with pytest.raises(UnsupportedShapeError):
            get_variant("PE").run(cg, ha, hb, hc, params=small_single)

    def test_inconsistent_operands_rejected(self, cg, small_single):
        ha = cg.memory.store("A", np.zeros((128, 128)))
        hb = cg.memory.store("B", np.zeros((64, 64)))
        hc = cg.memory.store("C", np.zeros((128, 64)))
        with pytest.raises(UnsupportedShapeError):
            get_variant("PE").run(cg, ha, hb, hc, params=small_single)


class TestRawVariant:
    def test_correct(self, cg):
        got, expected = run_variant(cg, "RAW", 256, 128, 96, alpha=2.0, beta=-1.0)
        assert np.allclose(got, expected, rtol=1e-12, atol=1e-9)

    def test_tile_geometry_alignment(self):
        t_m, t_n, t_k = RawVariant.tile_geometry(1920 * 8, 1920 * 8, 15360)
        assert t_m % 16 == 0 and t_k % 16 == 0 and t_n % 4 == 0
        assert t_m <= 48 and t_n <= 48 and t_k <= 48

    def test_tile_geometry_divides(self):
        t_m, t_n, t_k = RawVariant.tile_geometry(256, 128, 96)
        assert (256 // 8) % t_m == 0
        assert (128 // 8) % t_n == 0
        assert 96 % t_k == 0

    def test_requires_grid_divisibility(self):
        with pytest.raises(UnsupportedShapeError):
            RawVariant.tile_geometry(100, 128, 96)

    def test_pick_tile(self):
        assert pick_tile(96, 16) == 48
        assert pick_tile(32, 16) == 32
        assert pick_tile(16, 16) == 16
        assert pick_tile(60, 4) == 20  # largest 4-multiple <= 48 dividing 60

    def test_pick_tile_rejects_misaligned(self):
        with pytest.raises(UnsupportedShapeError):
            pick_tile(24, 16)

    def test_ldm_respected(self, cg):
        run_variant(cg, "RAW", 384, 384, 768)
        assert all(
            cpe.ldm.high_water_bytes <= cpe.ldm.capacity_bytes for cpe in cg.cpes()
        )
