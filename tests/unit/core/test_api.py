"""Unit tests for the public dgemm entry point."""

import numpy as np
import pytest

from repro.arch.core_group import CoreGroup
from repro.core.api import dgemm
from repro.core.context import ExecutionContext
from repro.core.params import BlockingParams
from repro.core.reference import reference_dgemm
from repro.errors import UnsupportedShapeError
from repro.workloads.matrices import gemm_operands


@pytest.fixture()
def small() -> BlockingParams:
    return BlockingParams.small(double_buffered=True)


class TestBasics:
    def test_default_variant_is_sched(self, small):
        a, b, c = gemm_operands(small.b_m, small.b_n, small.b_k)
        out = dgemm(a, b, c, alpha=1.0, beta=1.0, params=small, check=True)
        assert out.shape == (small.b_m, small.b_n)

    def test_c_optional_when_beta_zero(self, small):
        a, b, _ = gemm_operands(small.b_m, small.b_n, small.b_k)
        out = dgemm(a, b, params=small)
        assert np.allclose(out, a @ b, rtol=1e-12, atol=1e-9)

    def test_beta_without_c_rejected(self, small):
        a, b, _ = gemm_operands(small.b_m, small.b_n, small.b_k)
        with pytest.raises(UnsupportedShapeError):
            dgemm(a, b, beta=1.0, params=small)

    def test_input_arrays_unchanged(self, small):
        a, b, c = gemm_operands(small.b_m, small.b_n, small.b_k)
        snapshots = (a.copy(), b.copy(), c.copy())
        dgemm(a, b, c, beta=1.0, params=small)
        for arr, snap in zip((a, b, c), snapshots):
            assert np.array_equal(arr, snap)

    @pytest.mark.parametrize("variant", ["RAW", "PE", "ROW", "DB", "SCHED"])
    def test_all_variants_through_api(self, variant):
        if variant in ("PE", "ROW"):
            params = BlockingParams.small(double_buffered=False)
        else:
            params = BlockingParams.small(double_buffered=True)
        m, n, k = params.b_m, params.b_n, params.b_k
        a, b, c = gemm_operands(m, n, k, seed=3)
        out = dgemm(a, b, c, alpha=0.7, beta=0.3, variant=variant, params=params)
        assert np.allclose(out, reference_dgemm(0.7, a, b, 0.3, c), rtol=1e-12, atol=1e-9)


class TestShapeHandling:
    def test_non_multiple_rejected_without_pad(self, small):
        a = np.ones((small.b_m + 8, small.b_k))
        b = np.ones((small.b_k, small.b_n))
        with pytest.raises(UnsupportedShapeError):
            dgemm(a, b, params=small)

    def test_pad_extension(self, small, rng):
        m, n, k = small.b_m - 8, small.b_n - 4, small.b_k - 8
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        c = rng.standard_normal((m, n))
        out = dgemm(a, b, c, alpha=1.2, beta=0.8, params=small, pad=True)
        assert out.shape == (m, n)
        assert np.allclose(out, reference_dgemm(1.2, a, b, 0.8, c), rtol=1e-12, atol=1e-9)

    def test_inner_dim_mismatch(self, small):
        with pytest.raises(UnsupportedShapeError):
            dgemm(np.ones((16, 8)), np.ones((9, 16)), params=small)

    def test_c_shape_mismatch(self, small):
        a = np.ones((small.b_m, small.b_k))
        b = np.ones((small.b_k, small.b_n))
        with pytest.raises(UnsupportedShapeError):
            dgemm(a, b, np.ones((4, 4)), beta=1.0, params=small)

    def test_non_2d_rejected(self, small):
        with pytest.raises(UnsupportedShapeError):
            dgemm(np.ones(4), np.ones((4, 4)), params=small)


class TestCoreGroupReuse:
    def test_stats_accumulate_on_shared_group(self, small):
        cg = CoreGroup()
        a, b, _ = gemm_operands(small.b_m, small.b_n, small.b_k)
        dgemm(a, b, params=small, core_group=cg)
        first = cg.dma.stats.bytes_total
        dgemm(a, b, params=small, core_group=cg)
        assert cg.dma.stats.bytes_total > first

    def test_fresh_group_frees_operands(self, small):
        # dgemm with no core_group must not leak matrices into a
        # caller-visible device; just check it runs twice cleanly
        a, b, _ = gemm_operands(small.b_m, small.b_n, small.b_k)
        dgemm(a, b, params=small)
        dgemm(a, b, params=small)

    def test_check_flag_passes_on_correct_result(self, small):
        a, b, c = gemm_operands(small.b_m, small.b_n, small.b_k)
        dgemm(a, b, c, beta=1.0, params=small, check=True)


class TestStagingLifecycle:
    """The memory-budget invariant: a dgemm call owns its staging."""

    def test_shared_group_budget_restored(self, small):
        cg = CoreGroup()
        a, b, _ = gemm_operands(small.b_m, small.b_n, small.b_k)
        baseline = cg.memory.used_bytes
        dgemm(a, b, params=small, core_group=cg)
        assert cg.memory.used_bytes == baseline
        assert cg.memory.handles() == []

    def test_no_legacy_staging_names_survive(self, small):
        cg = CoreGroup()
        a, b, _ = gemm_operands(small.b_m, small.b_n, small.b_k)
        dgemm(a, b, params=small, core_group=cg)
        names = {h.name for h in cg.memory.handles()}
        assert not any(n.startswith("dgemm.") for n in names)
        assert names == set()

    def test_budget_restored_when_variant_raises(self, small, monkeypatch):
        class ExplodingVariant:
            def default_params(self):
                return small

            def run(self, cg, a, b, c, **kwargs):
                raise RuntimeError("mid-run failure")

        monkeypatch.setattr(
            "repro.core.api.get_variant", lambda name: ExplodingVariant()
        )
        cg = CoreGroup()
        a, b, _ = gemm_operands(small.b_m, small.b_n, small.b_k)
        baseline = cg.memory.used_bytes
        with pytest.raises(RuntimeError):
            dgemm(a, b, params=small, core_group=cg)
        assert cg.memory.used_bytes == baseline
        assert cg.memory.handles() == []

    def test_unrelated_resident_matrices_untouched(self, small):
        cg = CoreGroup()
        cg.memory.store("user.X", np.full((16, 16), 3.0))
        a, b, _ = gemm_operands(small.b_m, small.b_n, small.b_k)
        dgemm(a, b, params=small, core_group=cg)
        assert [h.name for h in cg.memory.handles()] == ["user.X"]
        assert cg.memory.array("user.X")[0, 0] == 3.0

    def test_external_context_keeps_staging_warm(self, small):
        cg = CoreGroup()
        a, b, _ = gemm_operands(small.b_m, small.b_n, small.b_k)
        with ExecutionContext(cg) as ctx:
            dgemm(a, b, params=small, context=ctx)
            allocs = cg.memory.stats.allocations
            dgemm(a, b, params=small, context=ctx)
            # second same-shape call restages in place: zero new arrays
            assert cg.memory.stats.allocations == allocs
        assert cg.memory.used_bytes == 0

    def test_single_host_copy_per_operand(self, small):
        cg = CoreGroup()
        a, b, c = gemm_operands(small.b_m, small.b_n, small.b_k)
        dgemm(a, b, c, beta=1.0, params=small, core_group=cg)
        # three operands, three allocations, no asfortranarray+copy churn
        assert cg.memory.stats.allocations == 3
        assert cg.memory.stats.in_place_stores == 0
