"""Unit tests for the batched DGEMM interface."""

import numpy as np
import pytest

from repro.arch.core_group import CoreGroup
from repro.core.batch import BatchItem, BatchResult, dgemm_batch, validate_items
from repro.core.params import BlockingParams
from repro.errors import ConfigError, UnsupportedShapeError
from repro.workloads.matrices import gemm_operands

PARAMS = BlockingParams.small(double_buffered=True)


def make_items(count: int, seed: int = 0) -> list[BatchItem]:
    items = []
    for i in range(count):
        a, b, c = gemm_operands(PARAMS.b_m, PARAMS.b_n, PARAMS.b_k, seed=seed + 7 * i)
        items.append(BatchItem(a, b, c, alpha=1.0 + i, beta=0.5))
    return items


class TestBatch:
    def test_outputs_match_individual_runs(self):
        items = make_items(3)
        result = dgemm_batch(items, params=PARAMS)
        assert len(result) == 3
        for item, out in zip(items, result.outputs):
            expected = item.alpha * item.a @ item.b + item.beta * item.c
            assert np.allclose(out, expected, rtol=1e-12, atol=1e-9)

    def test_accounting_accumulates(self):
        one = dgemm_batch(make_items(1), params=PARAMS)
        three = dgemm_batch(make_items(3), params=PARAMS)
        assert three.dma_bytes == 3 * one.dma_bytes
        assert three.flops == 3 * one.flops
        assert three.regcomm_bytes == 3 * one.regcomm_bytes

    def test_pad_default_accepts_odd_shapes(self, rng):
        a = rng.standard_normal((100, 50))
        b = rng.standard_normal((50, 30))
        result = dgemm_batch([BatchItem(a, b)], params=PARAMS)
        assert np.allclose(result.outputs[0], a @ b, rtol=1e-11, atol=1e-9)

    def test_shared_core_group_visible_to_caller(self):
        cg = CoreGroup()
        dgemm_batch(make_items(2), params=PARAMS, core_group=cg)
        assert cg.dma.stats.bytes_total > 0

    def test_empty_batch_rejected(self):
        with pytest.raises(ConfigError):
            dgemm_batch([])

    def test_non_item_rejected(self):
        with pytest.raises(ConfigError):
            dgemm_batch([("a", "b")])  # type: ignore[list-item]

    def test_mixed_sizes_in_one_batch(self, rng):
        items = [
            BatchItem(rng.standard_normal((64, 32)), rng.standard_normal((32, 16))),
            BatchItem(rng.standard_normal((128, 128)), rng.standard_normal((128, 64))),
        ]
        result = dgemm_batch(items, params=PARAMS)
        for item, out in zip(items, result.outputs):
            assert np.allclose(out, item.a @ item.b, rtol=1e-11, atol=1e-9)

    def test_generator_input_accepted(self):
        result = dgemm_batch(iter(make_items(2)), params=PARAMS)
        assert isinstance(result, BatchResult) and len(result) == 2

    def test_shared_group_reports_only_batch_delta(self):
        """A pre-used device's earlier traffic must not be attributed
        to this batch."""
        cg = CoreGroup()
        first = dgemm_batch(make_items(1), params=PARAMS, core_group=cg)
        second = dgemm_batch(make_items(1, seed=9), params=PARAMS, core_group=cg)
        assert second.dma_bytes == first.dma_bytes
        assert cg.dma.stats.bytes_total == first.dma_bytes + second.dma_bytes


class TestUpFrontValidation:
    def test_inner_dim_mismatch_names_the_item(self, rng):
        items = make_items(2)
        items.insert(1, BatchItem(rng.standard_normal((32, 16)),
                                  rng.standard_normal((24, 8))))
        with pytest.raises(UnsupportedShapeError, match="item 1"):
            dgemm_batch(items, params=PARAMS)

    def test_c_shape_mismatch_names_the_item(self, rng):
        bad = BatchItem(rng.standard_normal((32, 16)),
                        rng.standard_normal((16, 8)),
                        rng.standard_normal((32, 9)), beta=1.0)
        with pytest.raises(UnsupportedShapeError, match="item 2"):
            dgemm_batch([*make_items(2), bad], params=PARAMS)

    def test_beta_without_c_names_the_item(self, rng):
        bad = BatchItem(rng.standard_normal((32, 16)),
                        rng.standard_normal((16, 8)), beta=0.5)
        with pytest.raises(UnsupportedShapeError, match="item 0"):
            dgemm_batch([bad], params=PARAMS)

    def test_bad_batch_fails_before_any_execution(self, rng):
        """The bugfix: earlier items must not run before the rejection."""
        cg = CoreGroup()
        items = make_items(2)
        items.append(BatchItem(rng.standard_normal((32, 16)),
                               rng.standard_normal((24, 8))))
        with pytest.raises(UnsupportedShapeError, match="item 2"):
            dgemm_batch(items, params=PARAMS, core_group=cg)
        assert cg.dma.stats.bytes_total == 0

    def test_validate_items_returns_trans_aware_shapes(self, rng):
        shapes = validate_items([
            BatchItem(rng.standard_normal((16, 32)),
                      rng.standard_normal((8, 16)),
                      transa="T", transb="T"),
        ])
        assert shapes == [(32, 8, 16)]

    def test_bad_trans_flag_names_the_item(self, rng):
        bad = BatchItem(rng.standard_normal((16, 16)),
                        rng.standard_normal((16, 16)), transa="C")
        with pytest.raises(UnsupportedShapeError, match="item 0"):
            validate_items([bad])


class TestHarmonizedKwargs:
    def test_trans_items_match_reference(self, rng):
        a = rng.standard_normal((64, 96))   # A^T is 96x64
        b = rng.standard_normal((48, 64))   # B^T is 64x48
        result = dgemm_batch(
            [BatchItem(a, b, transa="T", transb="T")], params=PARAMS
        )
        assert np.allclose(result.outputs[0], a.T @ b.T, rtol=1e-11, atol=1e-8)
        assert result.flops == 2 * 96 * 48 * 64

    def test_check_kwarg_verifies_each_item(self, rng):
        good = BatchItem(rng.standard_normal((32, 16)),
                         rng.standard_normal((16, 8)))
        nan = BatchItem(np.full((32, 16), np.nan),
                        rng.standard_normal((16, 8)))
        dgemm_batch([good], params=PARAMS, check=True)
        with pytest.raises(AssertionError):
            dgemm_batch([good, nan], params=PARAMS, check=True)


class TestMemoryInvariant:
    def test_shared_group_budget_restored_after_batch(self):
        cg = CoreGroup()
        baseline = cg.memory.used_bytes
        dgemm_batch(make_items(3), params=PARAMS, core_group=cg)
        assert cg.memory.used_bytes == baseline
        assert cg.memory.handles() == []

    def test_budget_restored_when_item_raises(self):
        cg = CoreGroup()
        baseline = cg.memory.used_bytes
        good = make_items(1)
        bad = [good[0], ("not", "an item")]
        with pytest.raises(ConfigError):
            dgemm_batch(bad, params=PARAMS, core_group=cg)  # type: ignore[list-item]
        assert cg.memory.used_bytes == baseline
        assert cg.memory.handles() == []

    def test_batch_allocations_bounded_by_first_item(self):
        cg = CoreGroup()
        dgemm_batch(make_items(5), params=PARAMS, core_group=cg)
        assert cg.memory.stats.allocations == 3
        assert cg.memory.stats.in_place_stores == 12


class TestFlopsAccounting:
    def test_exact_shapes_have_equal_flop_fields(self):
        result = dgemm_batch(make_items(2), params=PARAMS)
        assert result.flops == result.padded_flops
        assert result.padding_overhead == 1.0

    def test_padded_flops_reported_separately(self, rng):
        a = rng.standard_normal((100, 50))
        b = rng.standard_normal((50, 30))
        result = dgemm_batch([BatchItem(a, b)], params=PARAMS)
        assert result.flops == 2 * 100 * 30 * 50
        pm, pn, pk = PARAMS.pad_shape(100, 30, 50)
        assert result.padded_flops == 2 * pm * pn * pk
        assert result.padded_flops > result.flops
        assert result.padding_overhead > 1.0
