"""Direct tests of the shared strip-multiply helper."""

import numpy as np
import pytest

from repro.core.mapping import PEMapping, RowMapping
from repro.core.params import BlockingParams
from repro.core.sharing import Scheme
from repro.core.variants.base import GEMMVariant
from repro.workloads.matrices import random_matrix


@pytest.fixture()
def params():
    return BlockingParams.small(double_buffered=False)


def stage_block(cg, params, scheme, seed=0):
    """Load one CG block of A, B, C through the scheme's mapping."""
    mapping = (PEMapping if scheme is Scheme.PE else RowMapping)(params)
    mapping.allocate(cg)
    a = random_matrix(params.b_m, params.b_k, seed=seed)
    b = random_matrix(params.b_k, params.b_n, seed=seed + 1)
    c = random_matrix(params.b_m, params.b_n, seed=seed + 2)
    ha = cg.memory.store("A", a)
    hb = cg.memory.store("B", b)
    hc = cg.memory.store("C", c)
    mapping.load_a(cg, ha, 0, 0)
    mapping.load_b(cg, hb, 0, 0)
    mapping.load_c(cg, hc, 0, 0)
    return mapping, (a, b, c), hc


@pytest.mark.parametrize("scheme", [Scheme.PE, Scheme.ROW])
def test_strip_multiply_computes_block_product(cg, params, scheme):
    mapping, (a, b, c), hc = stage_block(cg, params, scheme)
    GEMMVariant.strip_multiply(cg, scheme, alpha=2.0)
    mapping.store_c(cg, hc, 0, 0)
    got = cg.memory.array(hc)
    assert np.allclose(got, c + 2.0 * a @ b, rtol=1e-12, atol=1e-9)


def test_strip_multiply_accumulates_on_repeat(cg, params):
    mapping, (a, b, c), hc = stage_block(cg, params, Scheme.PE)
    GEMMVariant.strip_multiply(cg, Scheme.PE, alpha=1.0)
    GEMMVariant.strip_multiply(cg, Scheme.PE, alpha=1.0)
    mapping.store_c(cg, hc, 0, 0)
    got = cg.memory.array(hc)
    assert np.allclose(got, c + 2.0 * (a @ b), rtol=1e-12, atol=1e-9)


def test_scale_c_applies_beta(cg, params):
    mapping, (a, b, c), hc = stage_block(cg, params, Scheme.PE)
    GEMMVariant.scale_c(cg, "C", 0.5)
    mapping.store_c(cg, hc, 0, 0)
    assert np.allclose(cg.memory.array(hc), 0.5 * c, rtol=1e-13)


def test_scale_c_beta_one_is_noop(cg, params):
    mapping, (a, b, c), hc = stage_block(cg, params, Scheme.PE)
    before = {
        coord: cg.cpe(coord).ldm.get("C").data.copy() for coord in cg.mesh.coords()
    }
    GEMMVariant.scale_c(cg, "C", 1.0)
    for coord, snapshot in before.items():
        assert np.array_equal(cg.cpe(coord).ldm.get("C").data, snapshot)


def test_regcomm_drained_after_strip(cg, params):
    stage_block(cg, params, Scheme.ROW)
    GEMMVariant.strip_multiply(cg, Scheme.ROW, alpha=1.0)
    cg.regcomm.assert_drained()
