"""Unit tests for the Sec III-C analytic model."""

import pytest

from repro.core import model
from repro.errors import ConfigError


class TestTraffic:
    def test_cg_traffic_formula(self):
        # 2*K*m*n + N*m*k + k*n with (M,N,K) grids of CG blocks
        m = n = k = 1536
        b_n, b_k = 384, 768
        traffic = model.cg_traffic_elements(m, n, k, b_n, b_k)
        big_k, big_n = k // b_k, n // b_n
        assert traffic == 2 * big_k * m * n + big_n * m * k + k * n

    def test_traffic_positive_args(self):
        with pytest.raises(ConfigError):
            model.cg_traffic_elements(0, 1, 1, 1, 1)


class TestBandwidthReduction:
    def test_asymptotic_form(self):
        s = model.bandwidth_reduction(384, 768)
        assert s == pytest.approx(2.0 / (2.0 / 768 + 1.0 / 384))

    def test_finite_m_reduces_s(self):
        assert model.bandwidth_reduction(384, 768, m=1536) < model.bandwidth_reduction(384, 768)

    def test_larger_blocks_increase_s(self):
        assert model.bandwidth_reduction(512, 1024) > model.bandwidth_reduction(384, 768)

    def test_positive_args(self):
        with pytest.raises(ConfigError):
            model.bandwidth_reduction(0, 768)
        with pytest.raises(ConfigError):
            model.bandwidth_reduction(384, 768, m=0)


class TestPaperConstants:
    def test_min_bn_is_174_7(self):
        assert model.min_block_n() == pytest.approx(174.68, abs=0.05)

    def test_paper_rounds_to_175_and_350(self):
        min_bn = model.min_block_n()
        assert 174 < min_bn < 175  # paper: bN >= 175, bK >= 350

    def test_required_bandwidth_below_peak_at_paper_blocks(self):
        s = model.bandwidth_reduction(384, 768)
        assert model.required_bandwidth(s) < 34e9

    def test_required_bandwidth_validates(self):
        with pytest.raises(ConfigError):
            model.required_bandwidth(0.0)


class TestLDM:
    def test_paper_single_buffered_fits(self):
        assert model.ldm_fits(16, 48, 96)
        assert model.ldm_doubles(16, 48, 96) == 6912

    def test_too_large_rejected(self):
        assert not model.ldm_fits(64, 64, 64)  # 12288 doubles

    def test_exactly_8192_fails_strict(self):
        # 32*64 + 64*64 + 32*64 = 8192 exactly
        assert model.ldm_doubles(32, 64, 64) == 8192
        assert not model.ldm_fits(32, 64, 64)

    def test_validates(self):
        with pytest.raises(ConfigError):
            model.ldm_doubles(0, 1, 1)


class TestRegisterModel:
    def test_budget(self):
        assert model.register_budget(4, 4) == 24

    def test_fits_strict(self):
        assert model.register_fits(4, 4)
        assert not model.register_fits(2, 10)  # exactly 32

    def test_reduction_symmetric(self):
        assert model.register_bandwidth_reduction(4, 4) == pytest.approx(4.0)
        assert model.register_bandwidth_reduction(2, 8) == pytest.approx(3.2)

    def test_optimal_tile_is_4x4(self):
        assert model.optimal_register_tile() == (4, 4)

    def test_optimal_tile_respects_pn_divisibility(self):
        # pN = 20: rN must divide 20 -> candidates 1,2,4,5,10,20
        r_m, r_n = model.optimal_register_tile(p_m=16, p_n=20)
        assert 20 % r_n == 0 and 16 % (r_m * 4) == 0

    def test_validates(self):
        with pytest.raises(ConfigError):
            model.register_budget(0, 4)
        with pytest.raises(ConfigError):
            model.register_bandwidth_reduction(-1, 4)


class TestSplitOptimum:
    def test_bk_equals_2bn(self):
        b_k, b_n = model.optimal_bk_bn_split(1024)
        assert b_k == pytest.approx(2 * b_n)
        assert b_k + 2 * b_n == pytest.approx(1024)

    def test_optimum_beats_other_splits(self):
        budget = 1024.0
        b_k_opt, b_n_opt = model.optimal_bk_bn_split(budget)
        s_opt = model.bandwidth_reduction(b_n_opt, b_k_opt)
        for ratio in (0.5, 1.0, 3.0, 8.0):
            b_n = budget / (2 + ratio)
            s = model.bandwidth_reduction(b_n, ratio * b_n)
            assert s <= s_opt + 1e-9

    def test_validates(self):
        with pytest.raises(ConfigError):
            model.optimal_bk_bn_split(0)
