"""Unit tests for the verification battery."""

import pytest

from repro.core.verify import verify_variants


class TestVerifyVariants:
    @pytest.fixture(scope="class")
    def report(self):
        return verify_variants(grids=((1, 1, 1),))

    def test_all_variants_pass(self, report):
        assert report.all_passed
        assert report.failures() == []

    def test_case_coverage(self, report):
        variants = {c.variant for c in report.cases}
        assert variants == {"RAW", "PE", "ROW", "DB", "SCHED"}
        # 5 variants x 1 grid x 2 scalar pairs
        assert len(report.cases) == 10

    def test_worst_case_reported(self, report):
        worst = report.worst
        assert worst.max_abs_error == max(c.max_abs_error for c in report.cases)

    def test_tight_atol_fails(self):
        report = verify_variants(
            variants=("SCHED",), grids=((1, 1, 1),), atol=0.0
        )
        # float accumulation order differs from numpy: exact zero error
        # is not achievable, so the battery must report failures
        assert not report.all_passed

    def test_seed_changes_operands(self):
        r1 = verify_variants(variants=("PE",), grids=((1, 1, 1),),
                             scalars=((1.0, 0.0),), seed=1)
        r2 = verify_variants(variants=("PE",), grids=((1, 1, 1),),
                             scalars=((1.0, 0.0),), seed=2)
        assert r1.cases[0].max_abs_error != r2.cases[0].max_abs_error
