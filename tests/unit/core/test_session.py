"""Unit tests for the Session facade (the documented entry point)."""

import numpy as np
import pytest

from repro import BatchItem, Session
from repro.core.params import BlockingParams
from repro.errors import ConfigError
from repro.multi import SW26010Processor
from repro.workloads.matrices import gemm_operands, mixed_batch

PARAMS = BlockingParams.small(double_buffered=True)


class TestLifecycle:
    def test_context_manager_frees_everything(self):
        proc = SW26010Processor()
        baselines = [proc.cg(g).memory.used_bytes for g in range(4)]
        with Session(processor=proc, params=PARAMS) as s:
            a, b, _ = gemm_operands(100, 60, 70, seed=0)
            s.dgemm(a, b)
            s.batch(mixed_batch(4, params=PARAMS, seed=0))
        assert [proc.cg(g).memory.used_bytes for g in range(4)] == baselines

    def test_close_idempotent_and_closed_session_raises(self):
        s = Session(params=PARAMS)
        s.close()
        s.close()
        with pytest.raises(ConfigError):
            s.dgemm(np.eye(8), np.eye(8))
        with pytest.raises(ConfigError):
            s.batch(mixed_batch(2, params=PARAMS))
        with pytest.raises(ConfigError):
            with s:
                pass

    def test_pool_size_plumbed(self):
        with Session(params=PARAMS, n_core_groups=2) as s:
            assert s.n_core_groups == 2
            assert s.batch(mixed_batch(4, params=PARAMS)).n_core_groups == 2


class TestDgemm:
    def test_matches_reference_and_pads_by_default(self):
        with Session(params=PARAMS) as s:
            a, b, c = gemm_operands(100, 60, 70, seed=1)
            out = s.dgemm(a, b, c, alpha=2.0, beta=-1.0)
            assert np.allclose(out, 2.0 * a @ b - c, rtol=1e-11, atol=1e-8)

    def test_trans_flags(self):
        with Session(params=PARAMS) as s:
            rng = np.random.default_rng(2)
            a = rng.standard_normal((64, 96))
            b = rng.standard_normal((48, 64))
            out = s.dgemm(a, b, transa="T", transb="T")
            assert np.allclose(out, a.T @ b.T, rtol=1e-11, atol=1e-8)

    def test_staging_stays_warm_across_calls(self):
        """Repeated same-shape calls hit the staging-plan cache."""
        with Session(params=PARAMS) as s:
            a, b, _ = gemm_operands(PARAMS.b_m, PARAMS.b_n, PARAMS.b_k, seed=3)
            s.dgemm(a, b)
            first = s.stats().traffic
            s.dgemm(a, b)
            second = s.stats().traffic
            assert second.plan_hits - first.plan_hits == 3
            assert second.allocations == first.allocations

    def test_per_call_check_override(self):
        with Session(params=PARAMS, check=False) as s:
            a = np.full((PARAMS.b_m, PARAMS.b_k), np.nan)
            b = np.ones((PARAMS.b_k, PARAMS.b_n))
            s.dgemm(a, b)            # NaNs compute fine unchecked
            with pytest.raises(AssertionError):
                s.dgemm(a, b, check=True)


class TestBatch:
    def test_batch_dispatches_and_isolates_by_default(self):
        with Session(params=PARAMS, check=True) as s:
            items = mixed_batch(6, params=PARAMS, seed=4)
            items[1] = BatchItem(np.full_like(items[1].a, np.nan), items[1].b)
            result = s.batch(items)
            assert len(result.errors) == 1
            assert result.errors[0].index == 1

    def test_batch_can_propagate_failures(self):
        with Session(params=PARAMS, check=True) as s:
            items = mixed_batch(3, params=PARAMS, seed=5)
            items[0] = BatchItem(np.full_like(items[0].a, np.nan), items[0].b)
            with pytest.raises(AssertionError):
                s.batch(items, isolate_failures=False)


class TestStats:
    def test_accumulates_across_calls_and_batches(self):
        with Session(params=PARAMS) as s:
            a, b, _ = gemm_operands(PARAMS.b_m, PARAMS.b_n, PARAMS.b_k, seed=6)
            s.dgemm(a, b)
            s.batch(mixed_batch(4, params=PARAMS, seed=6))
            s.batch(mixed_batch(2, params=PARAMS, seed=7))
            stats = s.stats()
            assert stats.calls == 1
            assert stats.batches == 2
            assert stats.items == 6
            assert stats.failures == 0
            assert stats.flops > 0
            assert stats.padded_flops >= stats.flops
            assert stats.traffic.dma_bytes > 0
            assert stats.traffic.staged == 3 * 7

    def test_flops_account_trans_shapes(self):
        with Session(params=PARAMS) as s:
            rng = np.random.default_rng(8)
            m, n, k = 32, 48, 80
            s.dgemm(rng.standard_normal((k, m)),
                    rng.standard_normal((k, n)), transa="T")
            assert s.stats().flops == 2 * m * n * k
