"""Unit tests for blocking parameters."""

import pytest

from repro.core.params import BlockingParams
from repro.errors import BlockingError, ConfigError, UnsupportedShapeError


class TestPaperConfigurations:
    def test_single_buffered_paper_values(self):
        p = BlockingParams.paper_single()
        assert (p.p_m, p.p_n, p.p_k) == (16, 48, 96)
        assert (p.b_m, p.b_n, p.b_k) == (128, 384, 768)
        assert not p.double_buffered
        p.validate()

    def test_double_buffered_paper_values(self):
        p = BlockingParams.paper_double()
        assert (p.p_m, p.p_n, p.p_k) == (16, 32, 96)
        assert (p.b_m, p.b_n, p.b_k) == (128, 256, 768)
        assert p.double_buffered
        p.validate()

    def test_small_fits(self):
        BlockingParams.small(True).validate()
        BlockingParams.small(False).validate()


class TestLDMAccounting:
    def test_single_buffered_doubles(self):
        p = BlockingParams.paper_single()
        assert p.ldm_doubles_per_cpe == 16 * 48 + 48 * 96 + 96 * 16  # 6912

    def test_double_buffered_doubles(self):
        p = BlockingParams.paper_double()
        assert p.ldm_doubles_per_cpe == 2 * 16 * 96 + 96 * 32 + 2 * 16 * 32  # 7168

    def test_pn48_double_buffered_overflows(self):
        p = BlockingParams(16, 48, 96, double_buffered=True)
        assert p.ldm_doubles_per_cpe == 9216
        with pytest.raises(BlockingError):
            p.validate()
        assert not p.fits()

    def test_exactly_8192_rejected(self):
        # the paper's constraint is strict: pM*pN + pN*pK + pK*pM < 8192
        p = BlockingParams(16, 240, 16, double_buffered=False)
        assert p.ldm_doubles_per_cpe == 16 * 240 + 240 * 16 + 16 * 16  # 7936 < 8192
        p.validate()
        q = BlockingParams(16, 244, 16, double_buffered=False)
        assert q.ldm_doubles_per_cpe == 8064
        q.validate()


class TestConstraints:
    @pytest.mark.parametrize("bad", [
        dict(p_m=8),    # not a multiple of 16 (DMA granule / register tile)
        dict(p_m=0),
        dict(p_k=40),   # not a multiple of 16
        dict(p_n=30),   # not a multiple of rN=4
        dict(p_n=-4),
    ])
    def test_invalid_tile_sizes(self, bad):
        with pytest.raises((BlockingError, ConfigError)):
            BlockingParams(**bad)

    def test_mesh_mismatch_detected(self):
        from repro.arch.config import SW26010Spec

        odd = SW26010Spec(mesh_rows=4, mesh_cols=4)
        with pytest.raises(BlockingError):
            BlockingParams.small().validate(odd)


class TestShapeAdmission:
    def test_exact_multiples_accepted(self):
        p = BlockingParams.paper_double()
        assert p.check_shape(256, 512, 1536) == (2, 2, 2)

    @pytest.mark.parametrize("shape", [
        (100, 256, 768),
        (128, 100, 768),
        (128, 256, 100),
        (0, 256, 768),
    ])
    def test_non_multiples_rejected(self, shape):
        with pytest.raises(UnsupportedShapeError):
            BlockingParams.paper_double().check_shape(*shape)
