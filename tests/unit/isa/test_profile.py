"""Unit tests for kernel profiles (the paper's Sec IV-C numbers)."""

import pytest

from repro.isa.kernels import MicrokernelSpec
from repro.isa.profile import profile_kernel


class TestScheduledProfile:
    def test_strip_cycles_match_paper_within_3pct(self):
        prof = profile_kernel(scheduled=True)
        assert abs(prof.strip_cycles - 101_858) / 101_858 < 0.03

    def test_vmad_occupancy_97pct(self):
        prof = profile_kernel(scheduled=True)
        assert 0.95 <= prof.vmad_occupancy <= 0.99

    def test_vmad_count_is_exact(self):
        # 64 tiles x 96 iterations x 16 vmads
        prof = profile_kernel(scheduled=True)
        assert prof.vmad_count == 64 * 96 * 16
        assert prof.flops_per_strip == prof.vmad_count * 8

    def test_efficiency_above_95(self):
        assert profile_kernel(scheduled=True).efficiency > 0.95

    def test_cycles_per_iteration_near_16(self):
        prof = profile_kernel(scheduled=True)
        assert 16.0 <= prof.cycles_per_iteration < 17.0


class TestNaiveProfile:
    def test_efficiency_band(self):
        # the DB version runs at ~44% of peak (330/742); the naive
        # kernel model must land in that neighbourhood
        prof = profile_kernel(scheduled=False)
        assert 0.40 <= prof.efficiency <= 0.52

    def test_speedup_matches_sched_improvement(self):
        # paper: SCHED is +113.9% over DB => kernel ratio ~2.14
        sched = profile_kernel(scheduled=True)
        naive = profile_kernel(scheduled=False)
        ratio = naive.strip_cycles / sched.strip_cycles
        assert 1.85 <= ratio <= 2.35


class TestScaling:
    def test_profile_scales_with_pn(self):
        small = profile_kernel(MicrokernelSpec(p_n=16), scheduled=True)
        large = profile_kernel(MicrokernelSpec(p_n=32), scheduled=True)
        assert large.strip_cycles == 2 * small.strip_cycles

    def test_cycles_per_flop_positive(self):
        prof = profile_kernel(scheduled=True)
        assert prof.cycles_per_flop == pytest.approx(
            prof.strip_cycles / prof.flops_per_strip
        )
