"""Unit tests for the microkernel instruction streams."""

import pytest

from repro.errors import ConfigError
from repro.isa.kernels import (
    FLOPS_PER_ITERATION,
    MicrokernelSpec,
    naive_iteration,
    naive_pipeline,
    scheduled_iteration,
    scheduled_pipeline,
    strip_cycles,
    tile_program,
)


class TestMicrokernelSpec:
    def test_paper_db_spec(self):
        spec = MicrokernelSpec()
        assert (spec.p_m, spec.p_n, spec.p_k) == (16, 32, 96)
        assert spec.tiles_per_thread_multiply == 8
        assert spec.tiles_per_strip == 64
        assert spec.flops_per_tile == 96 * 128

    def test_raw_tile_spec(self):
        spec = MicrokernelSpec(p_m=48, p_n=48, p_k=48)
        assert spec.tiles_per_thread_multiply == 3 * 12

    @pytest.mark.parametrize("bad", [dict(p_m=8), dict(p_n=30), dict(p_k=1)])
    def test_invalid_specs(self, bad):
        with pytest.raises(ConfigError):
            MicrokernelSpec(**bad)

    def test_flops_per_iteration(self):
        assert FLOPS_PER_ITERATION == 128


class TestScheduledIteration:
    def test_shape_matches_algorithm3(self):
        body = scheduled_iteration()
        ops = [i.op for i in body]
        assert ops.count("vmad") == 16
        assert ops.count("vldr") == 4
        assert ops.count("lddec") == 4
        assert ops.count("addl") == 2
        assert ops.count("nop") == 5
        # 16 fp + 15 secondary (last vmad unpaired)
        assert len(body) == 31

    def test_all_16_accumulators_touched_once(self):
        vmads = [i for i in scheduled_iteration() if i.op == "vmad"]
        assert sorted(i.dst for i in vmads) == sorted(f"rC{k}" for k in range(16))

    def test_steady_state_is_16_cycles(self):
        pipe = scheduled_pipeline()
        assert pipe.steady_state_cycles(scheduled_iteration()) == pytest.approx(16.0)

    def test_consecutive_vmads_never_share_accumulator(self):
        vmads = [i for i in scheduled_iteration() if i.op == "vmad"]
        for a, b in zip(vmads, vmads[1:]):
            assert a.dst != b.dst

    def test_operand_registers_reloaded_after_last_read(self):
        """Within one iteration, a reload of rX never precedes a read
        of rX (same-line WAR pairs excepted, which hardware permits)."""
        body = scheduled_iteration()
        reload_pos: dict[str, int] = {}
        for pos, ins in enumerate(body):
            if ins.op in ("vldr", "lddec"):
                reload_pos[ins.dst] = pos
        for pos, ins in enumerate(body):
            if ins.op != "vmad":
                continue
            for src in ins.srcs[:2]:  # rA, rB operands
                if src in reload_pos:
                    # reads after the reload are fine only if the
                    # pipeline's 4-cycle latency has elapsed (Sec IV-C)
                    gap = pos - reload_pos[src]
                    assert gap <= 0 or gap >= 8, (
                        f"{ins} reads {src} {gap} slots after its reload; "
                        "value would be mid-flight"
                    )


class TestNaiveIteration:
    def test_instruction_mix(self):
        ops = [i.op for i in naive_iteration()]
        assert ops.count("vmad") == 16
        assert ops.count("lddec") == 4
        assert ops.count("vldd") == 4
        assert ops.count("addl") == 2

    def test_slower_than_scheduled(self):
        sched = scheduled_pipeline().steady_state_cycles(scheduled_iteration())
        naive = naive_pipeline().steady_state_cycles(naive_iteration())
        assert naive > 1.8 * sched


class TestTilePrograms:
    def test_scheduled_tile_vmad_count(self):
        spec = MicrokernelSpec()
        prog = tile_program(spec, scheduled=True)
        vmads = sum(1 for i in prog if i.op == "vmad")
        assert vmads == 16 * spec.p_k

    def test_naive_tile_vmad_count(self):
        spec = MicrokernelSpec()
        prog = tile_program(spec, scheduled=False)
        assert sum(1 for i in prog if i.op == "vmad") == 16 * spec.p_k

    def test_tile_has_c_prologue_and_epilogue(self):
        prog = tile_program(MicrokernelSpec(), scheduled=True)
        assert sum(1 for i in prog if i.op == "vldd" and i.dst and i.dst.startswith("rC")) == 16
        assert sum(1 for i in prog if i.op == "vstd") == 16

    def test_strip_cycles_scale_with_tiles(self):
        spec32 = MicrokernelSpec(p_n=32)
        spec16 = MicrokernelSpec(p_n=16)
        c32 = strip_cycles(spec32, scheduled=True)
        c16 = strip_cycles(spec16, scheduled=True)
        assert c32 == 2 * c16

    def test_scheduled_strip_near_paper_profile(self):
        cycles = strip_cycles(MicrokernelSpec(), scheduled=True)
        assert abs(cycles - 101_858) / 101_858 < 0.03
