"""Unit tests for the issue diagram renderer."""

import pytest

from repro.errors import PipelineError
from repro.isa.diagram import issue_diagram
from repro.isa.instructions import addl, vldd, vmad
from repro.isa.kernels import scheduled_iteration
from repro.isa.pipeline import Pipeline


class TestIssueDiagram:
    def test_paired_instructions_share_a_row(self):
        prog = [vmad("rC0", "rA0", "rB0", "rC0"), addl("p", "q")]
        text = issue_diagram(prog)
        row0 = [l for l in text.splitlines() if l.strip().startswith("0")][0]
        assert "vmad" in row0 and "addl" in row0

    def test_stall_bubbles_visible(self):
        prog = [vldd("rA0"), vmad("rC0", "rA0", "rB0", "rC0")]
        text = issue_diagram(prog)
        lines = text.splitlines()
        # cycles 1-3 are all-idle while the load's latency drains
        bubble = [l for l in lines if l.strip().startswith("2")][0]
        assert "vmad" not in bubble and "vldd" not in bubble
        row4 = [l for l in lines if l.strip().startswith("4")][0]
        assert "vmad" in row4

    def test_algorithm3_diagram_is_dense(self):
        """Two steady iterations: every cycle row issues a vmad."""
        body = scheduled_iteration() * 3
        text = issue_diagram(body)
        rows = [l for l in text.splitlines()[2:] if l.strip()]
        # skip the first iteration (cold scoreboard), check the middle
        middle = rows[16:32]
        assert all("vmad" in row for row in middle)

    def test_max_cycles_truncation(self):
        body = scheduled_iteration() * 4
        text = issue_diagram(body, max_cycles=8)
        assert "cycles total" in text
        data_rows = [l for l in text.splitlines()[2:] if not l.startswith("...")]
        assert len(data_rows) == 8

    def test_max_cycles_validated(self):
        with pytest.raises(PipelineError):
            issue_diagram([addl("a", "b")], max_cycles=0)

    def test_empty_program(self):
        assert issue_diagram([]) == "(empty program)"

    def test_single_issue_pipeline_never_pairs(self):
        prog = [vmad("rC0", "rA0", "rB0", "rC0"), addl("p", "q")]
        text = issue_diagram(prog, pipeline=Pipeline(dual_issue=False))
        row0 = [l for l in text.splitlines() if l.strip().startswith("0")][0]
        assert "vmad" in row0 and "addl" not in row0
