"""Unit tests for the dual-issue pipeline simulator."""

import pytest

from repro.errors import PipelineError
from repro.isa.instructions import addl, nop, vldd, vldr, vmad
from repro.isa.pipeline import Pipeline


@pytest.fixture()
def pipe() -> Pipeline:
    return Pipeline(dual_issue=True)


@pytest.fixture()
def single() -> Pipeline:
    return Pipeline(dual_issue=False)


class TestIssueRules:
    def test_independent_fp_sec_pair_issues_same_cycle(self, pipe):
        prog = [vmad("rC0", "rA0", "rB0", "rC0"), addl("p", "q")]
        assert pipe.run(prog).cycles == 1

    def test_two_fp_ops_take_two_cycles(self, pipe):
        prog = [
            vmad("rC0", "rA0", "rB0", "rC0"),
            vmad("rC1", "rA0", "rB1", "rC1"),
        ]
        assert pipe.run(prog).cycles == 2

    def test_two_secondary_ops_take_two_cycles(self, pipe):
        assert pipe.run([addl("a"), addl("b")]).cycles == 2

    def test_single_issue_never_pairs(self, single):
        prog = [vmad("rC0", "rA0", "rB0", "rC0"), addl("p", "q")]
        assert single.run(prog).cycles == 2


class TestHazards:
    def test_raw_stall_on_load(self, pipe):
        # vldd latency 4: dependent vmad waits 4 cycles after the load
        prog = [vldd("rA0"), vmad("rC0", "rA0", "rB0", "rC0")]
        result = pipe.run(prog)
        # load at 0, vmad at 4, ends at 5
        assert result.cycles == 5

    def test_raw_stall_on_vmad_chain(self, pipe):
        # dependent FMAs 6 cycles apart (dot-product accumulation chain)
        prog = [
            vmad("acc", "a", "b", "acc"),
            vmad("acc", "c", "d", "acc"),
        ]
        assert pipe.run(prog).cycles == 7  # issue at 0 and 6

    def test_independent_vmads_fully_pipelined(self, pipe):
        prog = [vmad(f"rC{i}", "rA0", "rB0", f"rC{i}") for i in range(8)]
        assert pipe.run(prog).cycles == 8

    def test_war_is_free(self, pipe):
        # the Algorithm 3 trick: reload a register on the same cycle
        # its old value is consumed
        prog = [vmad("rC0", "rA0", "rB0", "rC0"), vldr("rA0")]
        assert pipe.run(prog).cycles == 1

    def test_waw_stalls(self, pipe):
        # two writes to the same register cannot reorder (no renaming)
        prog = [vldd("rA0"), vldd("rA0")]
        result = pipe.run(prog)
        assert result.cycles == 5  # second issues at 4

    def test_in_order_blocking(self, pipe):
        # a stalled older instruction blocks a ready younger one
        prog = [
            vldd("rA0"),
            vmad("rC0", "rA0", "rB0", "rC0"),  # stalls to cycle 4
            addl("p"),  # could issue at 1, but must wait for the vmad
        ]
        result = pipe.run(prog, collect_issues=True)
        cycles = {rec.op: rec.cycle for rec in result.issues}
        assert cycles["vmad"] == 4
        assert cycles["addl"] == 4  # pairs with the vmad, not earlier


class TestAccounting:
    def test_occupancy(self, pipe):
        prog = [vmad("rC0", "a", "b", "rC0"), nop(), addl("p")]
        result = pipe.run(prog)
        # cycle 0: vmad+nop, cycle 1: addl => vmad occupies 1 of 2
        assert result.cycles == 2
        assert result.occupancy("vmad") == pytest.approx(0.5)

    def test_op_counts(self, pipe):
        prog = [nop(), nop(), addl("p")]
        result = pipe.run(prog)
        assert result.op_counts == {"nop": 2, "addl": 1}

    def test_ipc(self, pipe):
        prog = [vmad("rC0", "a", "b", "rC0"), addl("p")]
        assert pipe.run(prog).ipc() == pytest.approx(2.0)

    def test_empty_program(self, pipe):
        result = pipe.run([])
        assert result.cycles == 0
        assert result.occupancy("vmad") == 0.0
        assert result.ipc() == 0.0

    def test_collect_issues_records_units(self, pipe):
        result = pipe.run([nop()], collect_issues=True)
        assert len(result.issues) == 1
        assert result.issues[0].cycle == 0


class TestValidationAndSteadyState:
    def test_non_instr_rejected(self, pipe):
        with pytest.raises(PipelineError):
            pipe.run(["vmad"])  # type: ignore[list-item]

    def test_unknown_latency_class(self, pipe):
        from repro.isa.instructions import Instr, Unit

        bad = Instr("weird", "d", (), Unit.FP, "no_such_class")
        with pytest.raises(PipelineError):
            pipe.run([bad])

    def test_steady_state_removes_fill(self, pipe):
        body = [vmad(f"rC{i}", "rA0", "rB0", f"rC{i}") for i in range(8)]
        assert pipe.steady_state_cycles(body) == pytest.approx(8.0)

    def test_steady_state_validates_args(self, pipe):
        with pytest.raises(PipelineError):
            pipe.steady_state_cycles([nop()], warmup=0)
