"""Unit tests for symbolic schedule verification."""

import pytest

from repro.errors import PipelineError
from repro.isa.instructions import addl, lddec, nop, vldd, vldr, vmad, vstd
from repro.isa.kernels import MicrokernelSpec, tile_program
from repro.isa.scheduler import list_schedule
from repro.isa.semantics import symbolic_execute, verify_tile_semantics

SPEC = MicrokernelSpec(p_n=4)  # one register tile


class TestVerifiedKernels:
    def test_algorithm3_tile_is_semantically_exact(self):
        assert verify_tile_semantics(tile_program(SPEC, scheduled=True), SPEC.p_k) == []

    def test_naive_tile_is_semantically_exact(self):
        assert verify_tile_semantics(tile_program(SPEC, scheduled=False), SPEC.p_k) == []

    def test_small_pk(self):
        spec = MicrokernelSpec(p_n=4, p_k=2)
        assert verify_tile_semantics(tile_program(spec, scheduled=True), 2) == []


class TestCorruptedSchedules:
    def test_swapped_accumulators_detected(self):
        prog = tile_program(SPEC, scheduled=True)
        corrupted = []
        for ins in prog:
            if ins.op == "vmad" and ins.dst == "rC0":
                corrupted.append(vmad("rC1", *ins.srcs[:2], "rC1"))
            else:
                corrupted.append(ins)
        errors = verify_tile_semantics(corrupted, SPEC.p_k)
        assert any("rC0" in e for e in errors)
        assert any("rC1" in e for e in errors)

    def test_dropped_load_detected(self):
        """Dropping the first rB1 load leaves a vmad reading an unbound
        register — the executor fails loudly."""
        prog = tile_program(SPEC, scheduled=True)
        dropped = False
        corrupted = []
        for ins in prog:
            if not dropped and ins.op == "lddec" and ins.dst == "rB1":
                corrupted.append(nop())
                dropped = True
            else:
                corrupted.append(ins)
        with pytest.raises(PipelineError, match="before any load"):
            verify_tile_semantics(corrupted, SPEC.p_k)

    def test_dropped_mid_stream_load_detected_as_stale(self):
        """Dropping a *reload* (not the first load) leaves stale data:
        detected as wrong terms rather than an unbound read."""
        prog = tile_program(SPEC, scheduled=True)
        seen = 0
        corrupted = []
        for ins in prog:
            if ins.op == "lddec" and ins.dst == "rB1":
                seen += 1
                if seen == 3:  # a mid-kernel reload
                    corrupted.append(nop())
                    continue
            corrupted.append(ins)
        errors = verify_tile_semantics(corrupted, SPEC.p_k)
        assert errors

    def test_missing_pointer_bump_detected(self):
        prog = [i for i in tile_program(SPEC, scheduled=True)
                if not (i.op == "addl" and i.dst == "ldmA")]
        errors = verify_tile_semantics(prog, SPEC.p_k)
        assert errors

    def test_missing_c_store_detected(self):
        prog = [i for i in tile_program(SPEC, scheduled=True)
                if not (i.op == "vstd" and i.srcs[0] == "rC5")]
        errors = verify_tile_semantics(prog, SPEC.p_k)
        assert any("never stored" in e for e in errors)

    def test_auto_scheduled_naive_body_stays_exact(self):
        """Reordering by the list scheduler must not change semantics
        ... for the naive body, whose loads all precede the pointer
        bumps (the scheduler preserves load/addl orderings via WAW/RAW
        edges on the pointer registers)."""
        from repro.isa.kernels import _c_epilogue, _c_prologue, naive_iteration

        body = list_schedule(naive_iteration(), software_pipeline=False)
        prog = _c_prologue() + body * SPEC.p_k + _c_epilogue()
        assert verify_tile_semantics(prog, SPEC.p_k) == []


class TestSymbolicExecutor:
    def test_operand_before_load_rejected(self):
        with pytest.raises(PipelineError, match="before any load"):
            symbolic_execute([vmad("rC0", "rA0", "rB0", "rC0")])

    def test_bad_register_naming_rejected(self):
        with pytest.raises(PipelineError):
            symbolic_execute([vldr("weird7", "ldmA")])

    def test_report_tracks_init_and_store(self):
        report = symbolic_execute([vldd("rC0", "ldmC"), vstd("rC0", "ldmC")])
        assert "rC0" in report.initialized
        assert "rC0" in report.stored

    def test_pointer_advance_scopes_later_loads(self):
        prog = [
            vldr("rA0", "ldmA"),
            addl("ldmA", "PM", "ldmA"),
            vldr("rA1", "ldmA"),
            lddec("rB0", "ldmB"),
            vmad("rC0", "rA0", "rB0", "rC0"),
            vmad("rC1", "rA1", "rB0", "rC1"),
        ]
        report = symbolic_execute(prog)
        assert list(report.terms["rC0"]) == [(("A", 0, 0), ("B", 0, 0))]
        assert list(report.terms["rC1"]) == [(("A", 1, 1), ("B", 0, 0))]
