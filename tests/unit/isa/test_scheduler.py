"""Unit tests for the automatic list scheduler (A5 extension)."""

from collections import Counter

import pytest

from repro.isa.instructions import addl, lddec, vldd, vldr, vmad
from repro.isa.kernels import naive_iteration, scheduled_iteration, scheduled_pipeline
from repro.isa.scheduler import DependenceGraph, list_schedule


class TestDependenceGraph:
    def test_raw_edge(self):
        prog = [vldd("rA0"), vmad("rC0", "rA0", "rB0", "rC0")]
        g = DependenceGraph.build(prog)
        assert 1 in g.succs[0]

    def test_waw_edge(self):
        prog = [vldd("rA0"), vldd("rA0")]
        g = DependenceGraph.build(prog)
        assert 1 in g.succs[0]

    def test_war_edge(self):
        prog = [vmad("rC0", "rA0", "rB0", "rC0"), vldr("rA0")]
        g = DependenceGraph.build(prog)
        assert 1 in g.succs[0]

    def test_independent_ops_unordered(self):
        prog = [vldd("rA0"), vldd("rB0")]
        g = DependenceGraph.build(prog)
        assert not g.succs[0] and not g.preds[1]

    def test_critical_path(self):
        prog = [vldd("rA0"), vmad("rC0", "rA0", "rB0", "rC0")]
        g = DependenceGraph.build(prog)
        depth = g.critical_path({0: 4, 1: 6})
        assert depth == [10, 6]


class TestListSchedule:
    def test_output_is_permutation(self):
        body = naive_iteration()
        out = list_schedule(body)
        assert Counter(map(str, out)) == Counter(map(str, body))

    def test_preserves_war_ordering_without_pipelining(self):
        body = [vmad("rC0", "rA0", "rB0", "rC0"), vldr("rA0"), addl("p")]
        out = list_schedule(body, software_pipeline=False)
        assert [i.op for i in out].index("vmad") < [i.op for i in out].index("vldr")

    def test_beats_naive_ordering(self):
        pipe = scheduled_pipeline()
        naive = pipe.steady_state_cycles(naive_iteration())
        auto = pipe.steady_state_cycles(list_schedule(naive_iteration()))
        assert auto < naive

    def test_within_50pct_of_hand_schedule(self):
        pipe = scheduled_pipeline()
        hand = pipe.steady_state_cycles(scheduled_iteration())
        auto = pipe.steady_state_cycles(list_schedule(naive_iteration()))
        assert auto <= 1.5 * hand

    def test_custom_latencies_accepted(self):
        body = [vldd("rA0"), lddec("rB0")]
        out = list_schedule(body, latency_of={"vldd": 1, "lddec": 1})
        assert len(out) == 2

    def test_deterministic(self):
        body = naive_iteration()
        assert [str(i) for i in list_schedule(body)] == [
            str(i) for i in list_schedule(body)
        ]
