"""Unit tests for the assembler, including the Algorithm 3 quotation."""

import pytest

from repro.errors import PipelineError
from repro.isa.assembler import assemble, assemble_line, disassemble
from repro.isa.instructions import Unit
from repro.isa.kernels import scheduled_iteration

#: Algorithm 3 from the paper, quoted with regA/regB as printed
#: (operand addresses abbreviated to the pointer names the model uses).
ALGORITHM_3 = """
vmad rC0,  rA0, rB0, rC0;  regA rA3, ldmA
vmad rC1,  rA0, rB1, rC1;  regB rB3, ldmB
vmad rC4,  rA1, rB0, rC4;  addl ldmA, PM, ldmA
vmad rC5,  rA1, rB1, rC5;  addl ldmB, two, ldmB
vmad rC2,  rA0, rB2, rC2;  nop
vmad rC8,  rA2, rB0, rC8;  nop
vmad rC3,  rA0, rB3, rC3;  regA rA0, ldmA
vmad rC12, rA3, rB0, rC12; nop
vmad rC6,  rA1, rB2, rC6;  regB rB0, ldmB
vmad rC7,  rA1, rB3, rC7;  regA rA1, ldmA
vmad rC9,  rA2, rB1, rC9;  nop
vmad rC13, rA3, rB1, rC13; regB rB1, ldmB
vmad rC10, rA2, rB2, rC10; nop
vmad rC11, rA2, rB3, rC11; regA rA2, ldmA
vmad rC14, rA3, rB2, rC14; regB rB2, ldmB
vmad rC15, rA3, rB3, rC15
"""


class TestParsing:
    def test_vmad(self):
        ins = assemble_line("vmad rC0, rA0, rB0, rC0")
        assert ins.op == "vmad" and ins.unit is Unit.FP
        assert ins.dst == "rC0" and ins.srcs == ("rA0", "rB0", "rC0")

    def test_reg_aliases(self):
        assert assemble_line("regA rA3, ldmA").op == "vldr"
        assert assemble_line("regB rB3, ldmB").op == "lddec"

    def test_default_address(self):
        assert assemble_line("vldd rA0").srcs == ("ldm",)

    def test_comments_and_separators(self):
        prog = assemble("nop; nop  # trailing comment\n# full line\naddl a, b, c")
        assert [i.op for i in prog] == ["nop", "nop", "addl"]

    def test_receives(self):
        assert assemble_line("getr rA1").op == "getr"
        assert assemble_line("getc rB1").op == "getc"

    @pytest.mark.parametrize("bad", [
        "frobnicate r1",
        "vmad rC0, rA0",          # wrong arity
        "addl a",                 # wrong arity
        "nop extra",
    ])
    def test_errors(self, bad):
        with pytest.raises(PipelineError):
            assemble_line(bad)


class TestAlgorithm3Quotation:
    def test_matches_hand_transcription(self):
        """The quoted listing assembles to exactly the stream
        `scheduled_iteration` builds programmatically."""
        quoted = assemble(ALGORITHM_3)
        built = scheduled_iteration()
        assert [str(i) for i in quoted] == [str(i) for i in built]

    def test_quotation_has_31_instructions(self):
        assert len(assemble(ALGORITHM_3)) == 31


class TestRoundtrip:
    def test_disassemble_assemble_identity(self):
        prog = scheduled_iteration()
        text = disassemble(prog)
        again = assemble(text)
        assert [str(i) for i in again] == [str(i) for i in prog]

    def test_store_roundtrip(self):
        text = "vstd rC3, ldmC"
        assert disassemble(assemble(text)) == text
