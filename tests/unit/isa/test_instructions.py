"""Unit tests for the instruction vocabulary."""

import pytest

from repro.errors import PipelineError
from repro.isa.instructions import (
    Instr,
    Unit,
    addl,
    getc,
    getr,
    lddec,
    nop,
    vldd,
    vldr,
    vmad,
    vstd,
)


class TestConstructors:
    def test_vmad_is_fp(self):
        ins = vmad("rC0", "rA0", "rB0", "rC0")
        assert ins.unit is Unit.FP
        assert ins.latency_class == "vmad"
        assert ins.dst == "rC0"
        assert ins.srcs == ("rA0", "rB0", "rC0")

    @pytest.mark.parametrize(
        "factory,cls",
        [
            (lambda: vldr("rA0"), "regcomm"),
            (lambda: lddec("rB0"), "regcomm"),
            (lambda: getr("rA0"), "regcomm"),
            (lambda: getc("rB0"), "regcomm"),
            (lambda: vldd("rA0"), "ldm_load"),
            (lambda: addl("ptr", "x"), "integer"),
            (nop, "integer"),
        ],
    )
    def test_secondary_pipe_ops(self, factory, cls):
        ins = factory()
        assert ins.unit is Unit.SECONDARY
        assert ins.latency_class == cls

    def test_vstd_has_no_destination(self):
        ins = vstd("rC0")
        assert ins.dst is None
        assert "rC0" in ins.srcs

    def test_nop_has_no_operands(self):
        ins = nop()
        assert ins.dst is None and ins.srcs == ()

    def test_str_rendering(self):
        assert str(vmad("rC0", "rA0", "rB0", "rC0")) == "vmad rC0 rA0 rB0 rC0"


class TestValidation:
    def test_empty_op_rejected(self):
        with pytest.raises(PipelineError):
            Instr("", "d", (), Unit.FP, "vmad")

    def test_empty_dst_rejected(self):
        with pytest.raises(PipelineError):
            Instr("vmad", "", (), Unit.FP, "vmad")

    def test_frozen(self):
        ins = nop()
        with pytest.raises(AttributeError):
            ins.op = "x"  # type: ignore[misc]
