"""Integration tests for the asyncio serving tier (ReproServer)."""

import asyncio

import numpy as np
import pytest

from repro.api import (
    ConvRequest,
    GemmRequest,
    LuRequest,
    SubmitOptions,
)
from repro.core.params import BlockingParams
from repro.core.reference import reference_dgemm
from repro.core.session import Session
from repro.errors import ConfigError
from repro.obs import SpanTracer
from repro.resil import FaultInjector, FaultSpec
from repro.serve import LoadGenerator, ReproServer, ServeConfig
from repro.workloads.matrices import gemm_operands

PARAMS = BlockingParams.small(double_buffered=True)


def run(coro):
    return asyncio.run(coro)


def make_server(config=None, **session_kwargs):
    session_kwargs.setdefault("params", PARAMS)
    session_kwargs.setdefault("n_core_groups", 2)
    return ReproServer(config=config, **session_kwargs)


class TestRequestPath:
    def test_single_gemm_round_trip(self):
        async def scenario():
            async with make_server() as server:
                a, b, c = gemm_operands(100, 60, 70, seed=0)
                result = await server.submit(
                    GemmRequest(a=a, b=b, c=c, beta=1.0)
                )
                assert result.ok
                expected = reference_dgemm(1.0, a, b, 1.0, c)
                np.testing.assert_allclose(result.value, expected, atol=1e-9)
                assert result.total_seconds > 0
                assert result.bin.startswith("gemm:")

        run(scenario())

    def test_mixed_concurrent_wave_drops_nothing(self):
        async def scenario():
            config = ServeConfig(window_seconds=0.02, max_batch_size=8)
            async with make_server(config) as server:
                generator = LoadGenerator(seed=0, params=PARAMS)
                requests = generator.generate(32)
                results = await generator.run(
                    server, requests, concurrency=32
                )
                assert len(results) == 32
                assert all(r is not None for r in results)
                assert all(r.ok for r in results)
                kinds = {r.bin.split(":")[0] for r in results}
                assert {"gemm", "conv", "lu"} <= kinds
                report = server.slo_report()
                assert report, "SLO report must not be empty"
                for entry in report:
                    assert (
                        entry.p50_seconds
                        <= entry.p95_seconds
                        <= entry.p99_seconds
                    )

        run(scenario())

    def test_invalid_request_is_structured_not_raised(self):
        async def scenario():
            async with make_server() as server:
                result = await server.submit(
                    GemmRequest(a=np.zeros((4, 3)), b=np.zeros((5, 2)))
                )
                assert not result.ok
                assert result.error.kind == "UnsupportedShapeError"
                assert not result.error.retryable

        run(scenario())

    def test_conv_request_folds_to_feature_maps(self):
        async def scenario():
            rng = np.random.default_rng(1)
            request = ConvRequest(
                images=rng.standard_normal((2, 2, 6, 6)),
                kernels=rng.standard_normal((3, 2, 3, 3)),
            )
            async with make_server() as server:
                result = await server.submit(request)
                assert result.ok
                assert result.value.shape == request.fold_shape()

        run(scenario())


class TestCoalescing:
    def test_same_bin_requests_share_dispatches(self):
        async def scenario():
            config = ServeConfig(window_seconds=0.1, max_batch_size=8)
            async with make_server(config) as server:
                rng = np.random.default_rng(2)
                requests = [
                    GemmRequest(
                        a=rng.standard_normal((64, 64)),
                        b=rng.standard_normal((64, 64)),
                    )
                    for _ in range(8)
                ]
                results = await asyncio.gather(
                    *(server.submit(r) for r in requests)
                )
                assert all(r.ok for r in results)
                tracer = server.session.tracer
                dispatches = sum(
                    1 for s in tracer.spans if s.name == "session.batch"
                )
                # strictly fewer dispatches than requests — the window
                # coalesced same-bin arrivals into shared batches.
                assert dispatches < len(requests)
                assert server.stats()["batches"] == dispatches

        run(scenario())

    def test_zero_window_disables_coalescing(self):
        async def scenario():
            config = ServeConfig(window_seconds=0.0)
            async with make_server(config) as server:
                rng = np.random.default_rng(3)
                requests = [
                    GemmRequest(
                        a=rng.standard_normal((64, 64)),
                        b=rng.standard_normal((64, 64)),
                    )
                    for _ in range(4)
                ]
                results = await asyncio.gather(
                    *(server.submit(r) for r in requests)
                )
                assert all(r.ok for r in results)
                assert server.stats()["batches"] == len(requests)

        run(scenario())

    def test_full_bin_dispatches_before_the_window(self):
        async def scenario():
            # a window far longer than the test: only the size trigger
            # can dispatch, so completion proves the early flush.
            config = ServeConfig(window_seconds=30.0, max_batch_size=2)
            async with make_server(config) as server:
                rng = np.random.default_rng(4)
                requests = [
                    GemmRequest(
                        a=rng.standard_normal((64, 64)),
                        b=rng.standard_normal((64, 64)),
                    )
                    for _ in range(4)
                ]
                results = await asyncio.wait_for(
                    asyncio.gather(*(server.submit(r) for r in requests)),
                    timeout=60,
                )
                assert all(r.ok for r in results)
                assert server.stats()["batches"] == 2

        run(scenario())


class TestBackpressure:
    def test_overload_is_rejected_structurally(self):
        async def scenario():
            config = ServeConfig(
                window_seconds=0.05, max_batch_size=4, max_pending=2
            )
            async with make_server(config) as server:
                rng = np.random.default_rng(5)
                requests = [
                    GemmRequest(
                        a=rng.standard_normal((64, 64)),
                        b=rng.standard_normal((64, 64)),
                    )
                    for _ in range(8)
                ]
                results = await asyncio.gather(
                    *(server.submit(r) for r in requests)
                )
                rejected = [r for r in results if r.rejected]
                served = [r for r in results if r.ok]
                assert rejected, "max_pending=2 must reject an 8-burst"
                assert served, "admitted requests must still be served"
                for r in rejected:
                    assert r.error.kind == "RejectedError"
                    assert r.error.retryable
                    assert "retry" in r.error.message
                assert server.stats()["rejected"] == len(rejected)

        run(scenario())


class TestRetryBudget:
    def test_exhaustion_surfaces_fault_reports(self):
        async def scenario():
            injector = FaultInjector(
                [FaultSpec("compute", probability=1.0)], seed=0
            )
            session = Session(
                params=PARAMS, n_core_groups=1, injector=injector,
                fallback_engine=None, tracer=SpanTracer(),
            )
            config = ServeConfig(window_seconds=0.0, cache_entries=0)
            async with ReproServer(session=session, config=config) as server:
                a, b, _ = gemm_operands(64, 64, 64, seed=6)
                result = await server.submit(
                    GemmRequest(a=a, b=b),
                    options=SubmitOptions(max_retries=0),
                )
                assert not result.ok
                assert result.fault_reports
                assert result.fault_reports[0].retries == 0
            session.close()

        run(scenario())


class TestOperandCacheIntegration:
    def test_second_submission_hits_with_zero_traffic(self):
        async def scenario():
            async with make_server() as server:
                a, b, _ = gemm_operands(80, 48, 56, seed=7)
                request = GemmRequest(a=a, b=b)
                first = await server.submit(request)
                second = await server.submit(request)
                assert first.ok and second.ok
                assert not first.cache_hit
                assert second.cache_hit
                assert second.traffic.as_dict() == {
                    k: 0 for k in second.traffic.as_dict()
                }
                np.testing.assert_array_equal(first.value, second.value)
                assert server.stats()["cache_hits"] == 1

        run(scenario())

    def test_different_options_miss(self):
        async def scenario():
            async with make_server() as server:
                a, b, _ = gemm_operands(80, 48, 56, seed=8)
                request = GemmRequest(a=a, b=b)
                await server.submit(request)
                other = await server.submit(
                    request, options=SubmitOptions(engine="device")
                )
                assert other.ok
                assert not other.cache_hit

        run(scenario())


class TestReconciliation:
    def test_span_traffic_matches_session_stats_bit_exactly(self):
        async def scenario():
            config = ServeConfig(window_seconds=0.02, max_batch_size=8)
            async with make_server(config) as server:
                generator = LoadGenerator(seed=9, params=PARAMS)
                requests = generator.generate(16)
                results = await generator.run(
                    server, requests, concurrency=16
                )
                assert all(r.ok for r in results)
                tracer = server.session.tracer
                deltas = tracer.counter_totals("serve.request")
                totals = server.session.stats().traffic.as_dict()
                assert totals, "session must have accounted traffic"
                for field, total in totals.items():
                    assert deltas.get(f"ctx.{field}", 0) == total

        run(scenario())


class TestTelemetry:
    def test_sampler_runs_for_the_server_lifetime(self):
        async def scenario():
            config = ServeConfig(
                window_seconds=0.01, sampler_period_seconds=0.005
            )
            async with make_server(config) as server:
                assert server.sampler is not None
                assert server.sampler.running
                generator = LoadGenerator(seed=3, params=PARAMS)
                await generator.run(
                    server, generator.generate(4), concurrency=4
                )
                sampler = server.sampler
            assert not sampler.running
            assert sampler.errors == 0
            # baseline + final samples bracket the run.
            points = sampler.series("serve.admitted").points()
            assert points[0][1] == 0.0 and points[-1][1] == 4.0

        run(scenario())

    def test_sampler_and_alerts_can_be_disabled(self):
        async def scenario():
            config = ServeConfig(
                sampler_period_seconds=None, alerts=False
            )
            async with make_server(config) as server:
                assert server.sampler is None
                assert server.alerts is None

        run(scenario())

    def test_metrics_registry_is_cached_and_composed(self):
        async def scenario():
            async with make_server() as server:
                registry = server.metrics_registry()
                assert registry is server.metrics_registry()
                snap = registry.snapshot()
                # serving tier, session tier, and obs tier all present.
                assert "serve.admitted" in snap
                assert "cg0.dma.transactions" in snap
                assert "plan.cache.hits" in snap
                assert "events.emitted" in snap
                assert "sampler.samples" in snap

        run(scenario())

    def test_openmetrics_text_is_valid_and_reconciles(self):
        async def scenario():
            config = ServeConfig(window_seconds=0.01)
            async with make_server(config) as server:
                generator = LoadGenerator(seed=4, params=PARAMS)
                results = await generator.run(
                    server, generator.generate(6), concurrency=6
                )
                assert all(r.ok for r in results)
                text = server.openmetrics()
                totals = server.session.stats().traffic.as_dict()
            assert text.endswith("# EOF\n")
            assert "# TYPE repro_serve_admitted counter" in text
            assert "# TYPE repro_serve_latency_total_seconds histogram" in text
            samples = {}
            for line in text.splitlines():
                if line.startswith("#") or "{" in line:
                    continue
                name, _, value = line.partition(" ")
                samples[name] = value
            for field, total in totals.items():
                key = f"repro_serve_request_ctx_{field}_total"
                assert int(samples[key]) == total, field

        run(scenario())

    def test_http_endpoint_serves_scrapes_and_health(self):
        async def fetch(address, target):
            reader, writer = await asyncio.open_connection(*address)
            writer.write(
                f"GET {target} HTTP/1.1\r\nHost: x\r\n\r\n".encode()
            )
            await writer.drain()
            raw = await reader.read()
            writer.close()
            head, _, body = raw.decode().partition("\r\n\r\n")
            return head.splitlines()[0], body

        async def scenario():
            config = ServeConfig(metrics_port=0)
            async with make_server(config) as server:
                assert server.metrics_address is not None
                status, body = await fetch(
                    server.metrics_address, "/metrics"
                )
                assert " 200 " in status
                assert body.endswith("# EOF\n")
                status, body = await fetch(
                    server.metrics_address, "/healthz"
                )
                assert " 200 " in status and body == "ok\n"
                status, _ = await fetch(
                    server.metrics_address, "/nope"
                )
                assert " 404 " in status

        run(scenario())

    def test_lifecycle_events_are_logged(self):
        async def scenario():
            server = make_server()
            await server.start()
            await server.submit(GemmRequest(a=np.eye(8), b=np.eye(8)))
            await server.stop()
            kinds = [e.kind for e in server.events.events()]
            assert kinds[0] == "server.started"
            assert kinds[-1] == "server.stopped"
            stopped = server.events.events()[-1]
            assert stopped.fields["completed"] == 1

        run(scenario())


class TestLifecycle:
    def test_submit_before_start_raises(self):
        async def scenario():
            server = make_server()
            with pytest.raises(ConfigError, match="not running"):
                await server.submit(GemmRequest(a=np.eye(8), b=np.eye(8)))
            await server.start()
            await server.stop()

        run(scenario())

    def test_submit_after_stop_is_structured_shutdown(self):
        async def scenario():
            server = make_server()
            await server.start()
            result = await server.submit(
                GemmRequest(a=np.eye(8), b=np.eye(8))
            )
            assert result.ok
            await server.stop()
            await server.stop()  # idempotent
            refused = await server.submit(
                GemmRequest(a=np.eye(8), b=np.eye(8))
            )
            assert not refused.ok
            assert refused.error.kind == "ShutdownError"
            assert not refused.error.retryable

        run(scenario())

    def test_stop_drains_admitted_requests(self):
        async def scenario():
            config = ServeConfig(window_seconds=10.0, max_batch_size=64)
            server = make_server(config)
            await server.start()
            a, b, _ = gemm_operands(64, 64, 64, seed=10)
            task = asyncio.create_task(
                server.submit(GemmRequest(a=a, b=b))
            )
            await asyncio.sleep(0.05)  # parked in the window
            await server.stop()  # must flush, not strand the future
            result = await asyncio.wait_for(task, timeout=60)
            assert result.ok

        run(scenario())

    def test_caller_owned_session_stays_open(self):
        async def scenario():
            session = Session(params=PARAMS, n_core_groups=2)
            async with ReproServer(session=session) as server:
                result = await server.submit(
                    GemmRequest(a=np.eye(16), b=np.eye(16))
                )
                assert result.ok
            # the server must not close a session it does not own
            session.dgemm(np.eye(8), np.eye(8))
            session.close()

        run(scenario())

    def test_session_kwargs_conflict_with_session(self):
        session = Session(params=PARAMS, n_core_groups=1)
        try:
            with pytest.raises(ConfigError, match="not both"):
                ReproServer(session=session, n_core_groups=2)
        finally:
            session.close()
