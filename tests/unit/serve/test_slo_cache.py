"""Unit tests for the serving tier's SLO ledger and operand cache."""

import numpy as np
import pytest

from repro.api import SubmitOptions
from repro.errors import ConfigError
from repro.serve import OperandCache, ServeConfig, SLOTracker
from repro.serve.slo import percentile


class TestPercentile:
    def test_nearest_rank_returns_observed_samples(self):
        samples = [float(v) for v in range(1, 101)]
        assert percentile(samples, 50) == 50.0
        assert percentile(samples, 95) == 95.0
        assert percentile(samples, 99) == 99.0
        assert percentile(samples, 100) == 100.0

    def test_small_sample_counts(self):
        assert percentile([3.0], 99) == 3.0
        assert percentile([1.0, 2.0], 50) == 1.0
        assert percentile([], 50) == 0.0


class TestSLOTracker:
    def test_per_bin_reports_are_ordered(self):
        slo = SLOTracker()
        for ms in (1, 9, 5, 7, 3):
            slo.record("gemm:64x64x64", total_seconds=ms / 1e3)
        slo.record("lu:128x32", total_seconds=0.5, error=True)
        reports = slo.report()
        assert [r.bin for r in reports] == ["gemm:64x64x64", "lu:128x32"]
        gemm = reports[0]
        assert gemm.count == 5
        assert gemm.p50_seconds == 0.005
        assert gemm.p50_seconds <= gemm.p95_seconds <= gemm.p99_seconds
        assert reports[1].errors == 1

    def test_snapshot_is_flat_and_numeric(self):
        slo = SLOTracker()
        slo.record("gemm:64x64x64", total_seconds=0.25, cache_hit=True)
        snap = slo.snapshot()
        assert snap["gemm:64x64x64.count"] == 1.0
        assert snap["gemm:64x64x64.cache_hits"] == 1.0
        assert all(
            isinstance(v, float) for v in snap.values()
        )

    def test_render_mentions_every_bin(self):
        slo = SLOTracker()
        slo.record("gemm:64x64x64", total_seconds=0.001)
        table = slo.render()
        assert "gemm:64x64x64" in table
        assert "p99" in table


class TestSLOTrackerHistogramBacking:
    def test_memory_is_bounded_but_percentiles_stay_useful(self):
        slo = SLOTracker(exact_reservoir=100)
        for i in range(10_000):
            slo.record("gemm:64x64x64", total_seconds=0.001 * (1 + i % 10))
        report = slo.report()[0]
        assert report.count == 10_000
        assert not report.exact  # reservoir overflowed -> histogram
        # log buckets guarantee at most one growth factor of error.
        assert 0.005 <= report.p50_seconds <= 0.005 * 1.25

    def test_small_bins_report_exact_percentiles(self):
        slo = SLOTracker()
        for ms in (1, 2, 3):
            slo.record("gemm:8x8x8", total_seconds=ms / 1e3)
        report = slo.report()[0]
        assert report.exact
        assert report.p50_seconds == 0.002  # an observed sample

    def test_zero_reservoir_disables_exact_mode(self):
        slo = SLOTracker(exact_reservoir=0)
        slo.record("gemm:8x8x8", total_seconds=0.004)
        assert not slo.report()[0].exact

    def test_gflops_and_dma_bytes_distributions(self):
        slo = SLOTracker()
        slo.record(
            "gemm:64x64x64",
            total_seconds=0.01,
            gflops=12.0,
            dma_bytes=4096.0,
        )
        slo.record("gemm:64x64x64", total_seconds=0.01)  # a cache hit
        report = slo.report()[0]
        assert report.p50_gflops > 0
        assert report.mean_dma_bytes == 4096.0
        snap = slo.snapshot()
        assert snap["gemm:64x64x64.p50_gflops"] == report.p50_gflops

    def test_histogram_families_cover_all_latency_bins(self):
        slo = SLOTracker()
        slo.record("gemm:64x64x64", total_seconds=0.01, gflops=3.0)
        slo.record("lu:128x32", total_seconds=0.02)
        families = {f.name: f for f in slo.histogram_families()}
        total = families["serve.latency.total_seconds"]
        assert [label for label, _ in total.series] == [
            "gemm:64x64x64",
            "lu:128x32",
        ]
        assert total.label == "bin"
        # optional distributions omit bins that never recorded them.
        gflops = families["serve.gflops"]
        assert [label for label, _ in gflops.series] == ["gemm:64x64x64"]

    def test_queue_and_service_means(self):
        slo = SLOTracker()
        slo.record(
            "gemm:8x8x8",
            total_seconds=0.010,
            queue_seconds=0.004,
            service_seconds=0.006,
        )
        report = slo.report()[0]
        assert report.mean_queue_seconds == pytest.approx(0.004)
        assert report.mean_service_seconds == pytest.approx(0.006)


class TestOperandCache:
    def test_hit_returns_an_independent_copy(self):
        cache = OperandCache(4)
        key = ("abc", SubmitOptions())
        value = np.ones((3, 3))
        cache.put(key, value)
        value[0, 0] = 99.0  # caller mutates after insert
        hit, out = cache.get(key)
        assert hit
        assert out[0, 0] == 1.0
        out[1, 1] = 77.0  # response mutates after serve
        _, again = cache.get(key)
        assert again[1, 1] == 1.0

    def test_lru_eviction_order(self):
        cache = OperandCache(2)
        opts = SubmitOptions()
        cache.put(("a", opts), 1)
        cache.put(("b", opts), 2)
        assert cache.get(("a", opts))[0]  # refresh a
        cache.put(("c", opts), 3)  # evicts b
        assert not cache.get(("b", opts))[0]
        assert cache.get(("a", opts))[0]
        assert cache.get(("c", opts))[0]

    def test_options_are_part_of_the_key(self):
        cache = OperandCache(4)
        cache.put(("h", SubmitOptions(engine="device")), 1)
        assert not cache.get(("h", SubmitOptions()))[0]

    def test_zero_capacity_disables_storage(self):
        cache = OperandCache(0)
        cache.put(("h", SubmitOptions()), 1)
        assert not cache.get(("h", SubmitOptions()))[0]
        assert cache.stats()["entries"] == 0

    def test_evictions_are_counted(self):
        cache = OperandCache(2)
        opts = SubmitOptions()
        for key in ("a", "b", "c", "d"):
            cache.put((key, opts), 1)
        stats = cache.stats()
        assert stats["evictions"] == 2
        assert stats["entries"] == 2


class TestServeConfig:
    def test_validation(self):
        with pytest.raises(ConfigError, match="window_seconds"):
            ServeConfig(window_seconds=-1)
        with pytest.raises(ConfigError, match="max_batch_size"):
            ServeConfig(max_batch_size=0)
        with pytest.raises(ConfigError, match="max_pending"):
            ServeConfig(max_pending=0)
        with pytest.raises(ConfigError, match="cache_entries"):
            ServeConfig(cache_entries=-1)

    def test_defaults_are_sane(self):
        config = ServeConfig()
        assert config.window_seconds > 0
        assert config.max_batch_size >= 2
        assert config.options == SubmitOptions()
