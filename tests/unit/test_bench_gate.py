"""Unit tests for the engine-benchmark perf-regression gate.

Covers the pure decision logic of ``benchmarks/bench_engine.py``
(baseline comparison, smoke-section shape, warn-and-pass fallbacks)
without running the timed benchmark itself.
"""

import json
import sys
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"
sys.path.insert(0, str(BENCH_DIR))

import bench_engine  # noqa: E402


def fake_record(device_p50: float, vec_p50: float) -> dict:
    return {
        "shape": {"m": 256, "n": 128, "k": 256},
        "device_timing": {"p50": device_p50},
        "vectorized_timing": {"p50": vec_p50},
    }


def fake_plan_record(legacy_p50: float, warm_p50: float) -> dict:
    return {
        "shape": {"m": 256, "n": 128, "k": 256},
        "legacy_timing": {"p50": legacy_p50},
        "warm_timing": {"p50": warm_p50},
    }


def write_baseline(path: Path, speedups: dict) -> None:
    path.write_text(json.dumps({
        "benchmark": "bench_engine",
        "smoke": {"speedup_p50": speedups},
    }))


class TestSmokeSection:
    def test_p50_speedups_and_shapes(self):
        section = bench_engine.smoke_section({
            "PE": fake_record(1.0, 0.01),
            "SCHED": fake_record(2.0, 0.02),
        })
        assert section["speedup_p50"] == {"PE": 100.0, "SCHED": 100.0}
        assert section["shapes"]["PE"]["m"] == 256

    def test_handles_both_record_shapes(self):
        """Engine records compare device/vectorized; stepwise-plan
        records compare legacy/warm — one section covers both."""
        section = bench_engine.smoke_section({
            "SCHED": fake_record(1.0, 0.01),
            "STEPWISE_PLAN": fake_plan_record(1.0, 0.25),
        })
        assert section["speedup_p50"] == {"SCHED": 100.0,
                                          "STEPWISE_PLAN": 4.0}


class TestCheckRegression:
    def test_passes_within_allowance(self, tmp_path, capsys):
        baseline = tmp_path / "b.json"
        write_baseline(baseline, {"PE": 100.0})
        # 80x vs 100x baseline is inside the 25% allowance (floor 75x)
        records = {"PE": fake_record(1.0, 1 / 80)}
        assert bench_engine.check_regression(records, str(baseline), 0.25) == []
        assert "ok" in capsys.readouterr().out

    def test_fails_beyond_allowance(self, tmp_path, capsys):
        baseline = tmp_path / "b.json"
        write_baseline(baseline, {"PE": 100.0})
        records = {"PE": fake_record(1.0, 1 / 60)}  # 60x < 75x floor
        failures = bench_engine.check_regression(records, str(baseline), 0.25)
        assert len(failures) == 1 and "regressed" in failures[0]
        assert "REGRESSION" in capsys.readouterr().out

    def test_missing_smoke_section_warns_and_passes(self, tmp_path, capsys):
        baseline = tmp_path / "b.json"
        baseline.write_text(json.dumps({"benchmark": "bench_engine"}))
        records = {"PE": fake_record(1.0, 1.0)}
        assert bench_engine.check_regression(records, str(baseline), 0.25) == []
        assert "no smoke section" in capsys.readouterr().err

    def test_unreadable_baseline_warns_and_passes(self, tmp_path, capsys):
        records = {"PE": fake_record(1.0, 1.0)}
        missing = tmp_path / "nope.json"
        assert bench_engine.check_regression(records, str(missing), 0.25) == []
        assert "unreadable" in capsys.readouterr().err

    def test_unknown_variant_warns_and_passes(self, tmp_path, capsys):
        baseline = tmp_path / "b.json"
        write_baseline(baseline, {"SCHED": 50.0})
        records = {"PE": fake_record(1.0, 1 / 10)}
        assert bench_engine.check_regression(records, str(baseline), 0.25) == []
        assert "no smoke entry for PE" in capsys.readouterr().err


class TestWriteBaseline:
    def test_merges_into_existing_payload(self, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        path.write_text(json.dumps({"benchmark": "bench_engine",
                                    "variants": {"RAW": {}}}))
        bench_engine.write_smoke_baseline({"PE": fake_record(2.0, 0.5)},
                                          str(path))
        payload = json.loads(path.read_text())
        assert payload["variants"] == {"RAW": {}}  # untouched
        assert payload["smoke"]["speedup_p50"]["PE"] == 4.0

    def test_creates_fresh_payload(self, tmp_path):
        path = tmp_path / "new.json"
        bench_engine.write_smoke_baseline({"PE": fake_record(1.0, 0.25)},
                                          str(path))
        payload = json.loads(path.read_text())
        assert payload["smoke"]["speedup_p50"]["PE"] == 4.0


class TestArgParsing:
    def test_baseline_requires_smoke(self, capsys):
        with pytest.raises(SystemExit):
            bench_engine.main(["--baseline", "x.json"])

    def test_max_regression_bounds(self, capsys):
        with pytest.raises(SystemExit):
            bench_engine.main(["--smoke", "--max-regression", "1.5"])


class TestPlanRegression:
    def test_plan_record_gated_like_engine_records(self, tmp_path, capsys):
        baseline = tmp_path / "b.json"
        write_baseline(baseline, {"STEPWISE_PLAN": 4.0})
        records = {"STEPWISE_PLAN": fake_plan_record(1.0, 0.5)}  # 2x < 3x floor
        failures = bench_engine.check_regression(records, str(baseline), 0.25)
        assert len(failures) == 1 and "regressed" in failures[0]
        assert "REGRESSION" in capsys.readouterr().out


def test_committed_baseline_has_smoke_section():
    """The perf gate is only armed if the committed trajectory file
    carries the smoke section the CI job compares against."""
    committed = BENCH_DIR.parent / "BENCH_engine.json"
    payload = json.loads(committed.read_text())
    speedups = payload["smoke"]["speedup_p50"]
    assert set(speedups) == {"PE", "SCHED", "STEPWISE_PLAN"}
    assert all(v > 1.0 for v in speedups.values())
    plan = payload["stepwise_plan"]
    assert plan["speedup_p50"] >= bench_engine.STEPWISE_PLAN_SPEEDUP_FLOOR
    assert plan["results_bitwise_equal"] and plan["stats_match"]
    assert plan["plan_cache"]["builds"] == 1
