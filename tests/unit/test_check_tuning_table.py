"""Unit tests for tools/check_tuning_table.py (the TUNED.json validator)."""

import importlib.util
import json
import pathlib

import pytest

from repro.tuning import TunedEntry, TuningTable, tune

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
CHECK_TUNING_TABLE = REPO_ROOT / "tools" / "check_tuning_table.py"


@pytest.fixture(scope="module")
def checker():
    spec = importlib.util.spec_from_file_location(
        "check_tuning_table", CHECK_TUNING_TABLE
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def tuned_table():
    """A real (tiny) tuned table: one measured bin."""
    return tune([(64, 32, 64)], top=1, reps=1)


class TestValidateDict:
    def test_valid_document_clean(self, checker, tuned_table):
        assert checker.validate_dict(tuned_table.as_dict()) == []

    def test_wrong_version_flagged(self, checker, tuned_table):
        doc = tuned_table.as_dict()
        doc["version"] = 99
        assert any("version" in e for e in checker.validate_dict(doc))

    def test_non_pow2_bin_flagged(self, checker, tuned_table):
        doc = tuned_table.as_dict()
        doc["entries"][0]["bin"] = [96, 48, 80]
        assert any("powers" in e for e in checker.validate_dict(doc))

    def test_duplicate_key_flagged(self, checker, tuned_table):
        doc = tuned_table.as_dict()
        doc["entries"].append(dict(doc["entries"][0]))
        assert any("duplicate" in e for e in checker.validate_dict(doc))

    def test_bad_gflops_flagged(self, checker, tuned_table):
        doc = tuned_table.as_dict()
        doc["entries"][0]["measured_gflops"] = -1.0
        assert any(
            "measured_gflops" in e for e in checker.validate_dict(doc)
        )

    def test_unknown_variant_flagged(self, checker, tuned_table):
        doc = tuned_table.as_dict()
        doc["entries"][0]["variant"] = "TURBO"
        assert any("variant" in e for e in checker.validate_dict(doc))

    def test_non_object_rejected(self, checker):
        assert checker.validate_dict([1, 2]) != []


class TestValidateTable:
    def test_real_table_passes_with_rank_recompute(
        self, checker, tuned_table
    ):
        assert checker.validate_table(tuned_table, check_rank=True) == []

    def test_ldm_infeasible_entry_flagged(self, checker):
        table = TuningTable.from_entries(
            [
                TunedEntry(
                    variant="SCHED",
                    engine="stepwise",
                    bin=(64, 32, 64),
                    p_m=32,
                    p_n=48,
                    p_k=96,  # 2x(32*96 + 96*48) + 32*48 > 8192 doubles
                    double_buffered=True,
                    measured_gflops=1.0,
                    modeled_gflops=1.0,
                    estimator_rank=0,
                )
            ]
        )
        errors = checker.validate_table(table, check_rank=False)
        assert any("LDM-infeasible" in e for e in errors)

    def test_wrong_recorded_rank_flagged(self, checker, tuned_table):
        entry = tuned_table.entries[0]
        doc = tuned_table.as_dict()
        doc["entries"][0]["estimator_rank"] = entry.estimator_rank + 7
        table = TuningTable.from_dict(doc)
        errors = checker.validate_table(table, check_rank=True)
        assert any("estimator_rank" in e for e in errors)

    def test_wrong_buffering_regime_flagged(self, checker):
        table = TuningTable.from_entries(
            [
                TunedEntry(
                    variant="SCHED",  # traits demand double buffering
                    engine="stepwise",
                    bin=(64, 32, 64),
                    p_m=16,
                    p_n=8,
                    p_k=16,
                    double_buffered=False,
                    measured_gflops=1.0,
                    modeled_gflops=1.0,
                    estimator_rank=0,
                )
            ]
        )
        errors = checker.validate_table(table, check_rank=False)
        assert any("double-buffered" in e for e in errors)


class TestMain:
    def test_committed_table_passes(self, checker, capsys):
        """The repo's own TUNED.json must satisfy its validator."""
        committed = REPO_ROOT / "TUNED.json"
        assert checker.main(["check", "--no-rank", str(committed)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_good_file_ok(self, checker, tuned_table, tmp_path, capsys):
        path = tuned_table.save(tmp_path / "TUNED.json")
        assert checker.main(["check", str(path)]) == 0
        assert "OK (1 entries)" in capsys.readouterr().out

    def test_bad_file_fails(self, checker, tuned_table, tmp_path, capsys):
        doc = tuned_table.as_dict()
        doc["version"] = 99
        path = tmp_path / "TUNED.json"
        path.write_text(json.dumps(doc))
        assert checker.main(["check", str(path)]) == 1
        assert "version" in capsys.readouterr().err

    def test_not_json_fails(self, checker, tmp_path, capsys):
        path = tmp_path / "TUNED.json"
        path.write_text("{nope")
        assert checker.main(["check", str(path)]) == 1

    def test_usage_on_bad_args(self, checker, capsys):
        assert checker.main(["check"]) == 2
        assert "usage" in capsys.readouterr().err
