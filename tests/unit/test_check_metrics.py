"""Unit tests for tools/check_metrics.py (the OpenMetrics validator)."""

import importlib.util
import pathlib

import pytest

from repro.obs import HistogramFamily, LatencyHistogram, render_openmetrics

CHECK_METRICS = (
    pathlib.Path(__file__).resolve().parents[2]
    / "tools" / "check_metrics.py"
)


@pytest.fixture(scope="module")
def checker():
    spec = importlib.util.spec_from_file_location(
        "check_metrics", CHECK_METRICS
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def render_sample_scrape(counter: int = 5) -> str:
    hist = LatencyHistogram(lowest=0.001, highest=1.0, growth=2.0)
    hist.extend([0.002, 0.01, 5.0])
    return render_openmetrics(
        {
            "serve.admitted": counter,
            "serve.inflight": 2,
            "slo.gemm:64x96x32.p50_seconds": 0.0125,
        },
        families=(
            HistogramFamily(
                name="serve.latency.total_seconds",
                label="bin",
                series=(("gemm:64x96x32", hist),),
            ),
        ),
    )


class TestValidateText:
    def test_rendered_scrape_is_clean(self, checker):
        assert checker.validate_text(render_sample_scrape()) == []

    def test_missing_eof_flagged(self, checker):
        text = render_sample_scrape().replace("# EOF\n", "")
        assert any("EOF" in e for e in checker.validate_text(text))

    def test_counter_without_total_suffix_flagged(self, checker):
        text = "# TYPE repro_x counter\nrepro_x 5\n# EOF"
        errors = checker.validate_text(text)
        assert any("_total" in e for e in errors)

    def test_negative_counter_flagged(self, checker):
        text = "# TYPE repro_x counter\nrepro_x_total -1\n# EOF"
        assert any("negative" in e for e in checker.validate_text(text))

    def test_sample_without_type_flagged(self, checker):
        text = "repro_x 1\n# EOF"
        assert any("TYPE" in e for e in checker.validate_text(text))

    def test_duplicate_type_flagged(self, checker):
        text = (
            "# TYPE repro_x gauge\nrepro_x 1\n"
            "# TYPE repro_x gauge\nrepro_x 2\n# EOF"
        )
        assert any("duplicate" in e for e in checker.validate_text(text))

    def test_non_cumulative_histogram_flagged(self, checker):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1.0"} 5\n'
            'repro_h_bucket{le="+Inf"} 3\n'
            "repro_h_sum 1.0\n"
            "repro_h_count 3\n"
            "# EOF"
        )
        assert any(
            "cumulative" in e for e in checker.validate_text(text)
        )

    def test_inf_bucket_must_equal_count(self, checker):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1.0"} 2\n'
            'repro_h_bucket{le="+Inf"} 3\n'
            "repro_h_sum 1.0\n"
            "repro_h_count 7\n"
            "# EOF"
        )
        assert any(
            "exact-count" in e for e in checker.validate_text(text)
        )

    def test_histogram_missing_sum_flagged(self, checker):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="+Inf"} 1\n'
            "repro_h_count 1\n"
            "# EOF"
        )
        assert any("_sum" in e for e in checker.validate_text(text))

    def test_unparseable_sample_flagged(self, checker):
        text = "# TYPE repro_x gauge\nrepro_x one two three\n# EOF"
        assert any(
            "unparseable" in e or "bad value" in e
            for e in checker.validate_text(text)
        )

    def test_empty_scrape_flagged(self, checker):
        assert any(
            "no samples" in e for e in checker.validate_text("# EOF")
        )


class TestCompareScrapes:
    def test_monotonic_counters_pass(self, checker):
        first = render_sample_scrape(counter=5)
        second = render_sample_scrape(counter=9)
        assert checker.compare_scrapes(first, second) == []

    def test_decreasing_counter_flagged(self, checker):
        first = render_sample_scrape(counter=9)
        second = render_sample_scrape(counter=5)
        errors = checker.compare_scrapes(first, second)
        assert any("decreased" in e for e in errors)

    def test_gauges_may_decrease(self, checker):
        first = "# TYPE repro_g gauge\nrepro_g 9\n# EOF"
        second = "# TYPE repro_g gauge\nrepro_g 1\n# EOF"
        assert checker.compare_scrapes(first, second) == []


class TestMain:
    def test_ok_pair_exits_zero(self, checker, tmp_path, capsys):
        one = tmp_path / "one.prom"
        two = tmp_path / "two.prom"
        one.write_text(render_sample_scrape(counter=1))
        two.write_text(render_sample_scrape(counter=4))
        assert checker.main(["check", str(one), str(two)]) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "monotonic" in out

    def test_violation_exits_one(self, checker, tmp_path, capsys):
        bad = tmp_path / "bad.prom"
        bad.write_text("repro_x 1\n")
        assert checker.main(["check", str(bad)]) == 1
        assert "TYPE" in capsys.readouterr().err

    def test_usage_exits_two(self, checker, capsys):
        assert checker.main(["check"]) == 2
        assert "usage" in capsys.readouterr().err

    def test_unreadable_file_exits_one(self, checker, tmp_path, capsys):
        assert checker.main(["check", str(tmp_path / "none.prom")]) == 1
        assert "unreadable" in capsys.readouterr().err
