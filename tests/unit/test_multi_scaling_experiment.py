"""Unit tests for the E7 multi-CG scaling experiment."""

import pytest

from repro.experiments import multi_cg_scaling


@pytest.fixture(scope="module")
def result():
    return multi_cg_scaling.run(sizes=(3072, 9216, 15360))


class TestMultiCGScaling:
    def test_efficiency_grows_with_size(self, result):
        effs = [e.parallel_efficiency for e in result.estimates]
        assert effs == sorted(effs)

    def test_efficiency_bands(self, result):
        assert 0.5 < result.efficiency_at(3072) < 0.9
        assert 0.8 < result.efficiency_at(15360) < 1.0

    def test_faster_noc_helps(self, result):
        slow = result.sensitivity[8e9]
        fast = result.sensitivity[32e9]
        assert all(f > s for s, f in zip(slow, fast))

    def test_chip_throughput_exceeds_single_cg(self, result):
        assert all(e.gflops > 800 for e in result.estimates)

    def test_unknown_size_raises(self, result):
        with pytest.raises(KeyError):
            result.efficiency_at(1234)

    def test_render(self, result):
        text = multi_cg_scaling.render(result).render()
        assert "speedup" in text and "NoC" in text
