"""Unit tests for the blocked LU application layer."""

import numpy as np
import pytest

from repro.apps.lu import blocked_lu, lu_residual, lu_solve
from repro.core.params import BlockingParams
from repro.errors import ConfigError, UnsupportedShapeError


def well_conditioned(n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, n)) + n * np.eye(n)


PARAMS = BlockingParams.small(double_buffered=True)


class TestFactorization:
    @pytest.mark.parametrize("n,panel", [(64, 16), (96, 32), (128, 64)])
    def test_residual_small(self, n, panel):
        a = well_conditioned(n, seed=n)
        result = blocked_lu(a, panel=panel, params=PARAMS)
        assert lu_residual(a, result) < 16.0  # the HPL acceptance bound

    def test_matches_scipy_style_reconstruction(self):
        n = 96
        a = well_conditioned(n, seed=4)
        result = blocked_lu(a, panel=32, params=PARAMS)
        l = np.tril(result.lu, -1) + np.eye(n)
        u = np.triu(result.lu)
        pa = a[result.permutation(), :]
        assert np.allclose(pa, l @ u, rtol=1e-10, atol=1e-10)

    def test_pivoting_actually_pivots(self):
        # a matrix needing row swaps: zero leading pivot
        a = np.array([[0.0, 1.0], [1.0, 0.0]])
        result = blocked_lu(a, panel=2)
        assert lu_residual(a, result) < 16.0
        assert result.piv[0] == 1

    def test_panel_equal_to_n(self):
        a = well_conditioned(48)
        result = blocked_lu(a, panel=48, params=PARAMS)
        assert result.gemm_flops == 0  # single panel, no trailing update
        assert lu_residual(a, result) < 16.0

    def test_gemm_flops_accounted(self):
        n, panel = 96, 32
        a = well_conditioned(n)
        result = blocked_lu(a, panel=panel, params=PARAMS)
        expected = sum(
            2 * (n - hi) * (n - hi) * panel
            for hi in (panel, 2 * panel)
        )
        assert result.gemm_flops == expected

    def test_singular_matrix_rejected(self):
        with pytest.raises(ConfigError):
            blocked_lu(np.zeros((8, 8)), panel=4)

    def test_non_square_rejected(self):
        with pytest.raises(UnsupportedShapeError):
            blocked_lu(np.ones((4, 6)))

    def test_bad_panel(self):
        with pytest.raises(ConfigError):
            blocked_lu(np.eye(4), panel=0)

    def test_input_not_modified(self):
        a = well_conditioned(32)
        snapshot = a.copy()
        blocked_lu(a, panel=16, params=PARAMS)
        assert np.array_equal(a, snapshot)

    @pytest.mark.parametrize("variant", ["PE", "SCHED"])
    def test_variant_choice(self, variant):
        a = well_conditioned(64, seed=8)
        params = (
            BlockingParams.small(double_buffered=False)
            if variant == "PE"
            else PARAMS
        )
        result = blocked_lu(a, panel=32, variant=variant, params=params)
        assert lu_residual(a, result) < 16.0


class TestSolve:
    def test_solution_accuracy(self):
        n = 96
        a = well_conditioned(n, seed=6)
        b = np.random.default_rng(1).standard_normal(n)
        result = blocked_lu(a, panel=32, params=PARAMS)
        x = lu_solve(result, b)
        assert np.linalg.norm(a @ x - b) / np.linalg.norm(b) < 1e-10

    def test_rhs_shape_checked(self):
        result = blocked_lu(well_conditioned(16), panel=8, params=PARAMS)
        with pytest.raises(UnsupportedShapeError):
            lu_solve(result, np.ones(8))

    def test_identity_system(self):
        result = blocked_lu(np.eye(32), panel=16, params=PARAMS)
        b = np.arange(32.0)
        assert np.allclose(lu_solve(result, b), b)


class TestPoolRouting:
    def test_processor_path_matches_single_cg(self):
        from repro.multi import SW26010Processor

        a = well_conditioned(96, seed=21)
        proc = SW26010Processor()
        baselines = [cg.memory.used_bytes for cg in proc.core_groups]
        pooled = blocked_lu(a, panel=32, params=PARAMS, processor=proc)
        single = blocked_lu(a, panel=32, params=PARAMS)
        assert np.allclose(pooled.lu, single.lu, rtol=1e-11, atol=1e-8)
        assert np.array_equal(pooled.piv, single.piv)
        assert lu_residual(a, pooled) < 16.0
        # the trailing updates touched more than one CG
        assert sum(1 for cg in proc.core_groups if cg.dma.stats.bytes_total) >= 2
        assert [cg.memory.used_bytes for cg in proc.core_groups] == baselines

    def test_processor_conflicts_with_single_cg_kwargs(self):
        from repro.arch.core_group import CoreGroup
        from repro.multi import SW26010Processor

        with pytest.raises(ConfigError):
            blocked_lu(well_conditioned(32), params=PARAMS,
                       processor=SW26010Processor(), core_group=CoreGroup())
