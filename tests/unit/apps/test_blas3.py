"""Unit tests for the DTRSM/DSYRK extensions."""

import numpy as np
import pytest

from repro.apps.blas3 import dsyrk_ln, dtrsm_llnu
from repro.core.params import BlockingParams
from repro.errors import ConfigError, UnsupportedShapeError

PARAMS = BlockingParams.small(double_buffered=True)


def unit_lower(n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.tril(rng.standard_normal((n, n)) / np.sqrt(n), -1) + np.eye(n)


class TestDtrsm:
    @pytest.mark.parametrize("n,nrhs,block", [(64, 32, 16), (96, 48, 32), (50, 10, 64)])
    def test_solves_unit_lower_system(self, n, nrhs, block):
        l = unit_lower(n, seed=n)
        rng = np.random.default_rng(1)
        b = rng.standard_normal((n, nrhs))
        x = dtrsm_llnu(l, b, block=block, params=PARAMS)
        assert np.allclose(l @ x, b, rtol=1e-9, atol=1e-9)

    def test_ignores_strict_upper_and_diagonal(self):
        n = 48
        l = unit_lower(n, seed=3)
        garbage = l + np.triu(np.full((n, n), 7.0), 1) + 4.0 * np.eye(n)
        b = np.random.default_rng(2).standard_normal((n, 8))
        x_clean = dtrsm_llnu(l, b, block=16, params=PARAMS)
        x_garbage = dtrsm_llnu(garbage, b, block=16, params=PARAMS)
        assert np.allclose(x_clean, x_garbage, rtol=1e-12)

    def test_identity_l_returns_b(self):
        b = np.arange(32.0 * 4).reshape(32, 4)
        assert np.allclose(dtrsm_llnu(np.eye(32), b, block=8, params=PARAMS), b)

    def test_validation(self):
        with pytest.raises(UnsupportedShapeError):
            dtrsm_llnu(np.ones((4, 5)), np.ones((4, 2)))
        with pytest.raises(UnsupportedShapeError):
            dtrsm_llnu(np.eye(4), np.ones((5, 2)))
        with pytest.raises(ConfigError):
            dtrsm_llnu(np.eye(4), np.ones((4, 2)), block=0)

    def test_matches_numpy_solve(self):
        n = 64
        l = unit_lower(n, seed=9)
        b = np.random.default_rng(4).standard_normal((n, 16))
        x = dtrsm_llnu(l, b, block=32, params=PARAMS)
        assert np.allclose(x, np.linalg.solve(l, b), rtol=1e-9, atol=1e-9)


class TestDsyrk:
    @pytest.mark.parametrize("n,k,block", [(64, 32, 32), (96, 128, 48), (40, 12, 64)])
    def test_matches_reference_lower(self, n, k, block):
        rng = np.random.default_rng(n + k)
        a = rng.standard_normal((n, k))
        c = rng.standard_normal((n, n))
        got = dsyrk_ln(a, c, alpha=1.5, beta=0.5, block=block, params=PARAMS)
        expected = np.tril(1.5 * a @ a.T + 0.5 * c)
        assert np.allclose(got, expected, rtol=1e-9, atol=1e-9)

    def test_upper_triangle_zeroed(self):
        a = np.random.default_rng(1).standard_normal((32, 8))
        got = dsyrk_ln(a, block=16, params=PARAMS)
        assert np.array_equal(got, np.tril(got))

    def test_beta_zero_needs_no_c(self):
        a = np.random.default_rng(2).standard_normal((32, 8))
        got = dsyrk_ln(a, block=16, params=PARAMS)
        assert np.allclose(got, np.tril(a @ a.T), rtol=1e-10)

    def test_result_diagonal_nonnegative_for_gram(self):
        a = np.random.default_rng(3).standard_normal((48, 16))
        got = dsyrk_ln(a, block=24, params=PARAMS)
        assert np.all(np.diag(got) >= 0.0)

    def test_validation(self):
        with pytest.raises(UnsupportedShapeError):
            dsyrk_ln(np.ones((4, 4)), beta=1.0)  # beta without C
        with pytest.raises(UnsupportedShapeError):
            dsyrk_ln(np.ones((4, 4)), np.ones((3, 3)), beta=1.0)
        with pytest.raises(ConfigError):
            dsyrk_ln(np.ones((4, 4)), block=-1)
