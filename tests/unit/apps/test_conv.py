"""Unit tests for convolution-as-GEMM."""

import numpy as np
import pytest

from repro.apps.conv import conv2d_gemm, conv2d_reference, im2col
from repro.core.params import BlockingParams
from repro.errors import ConfigError, UnsupportedShapeError

PARAMS = BlockingParams.small(double_buffered=True)


class TestIm2col:
    def test_shape(self):
        images = np.zeros((2, 3, 8, 8))
        cols = im2col(images, 3, 3)
        assert cols.shape == (3 * 9, 2 * 6 * 6)

    def test_patch_contents(self):
        images = np.arange(16.0).reshape(1, 1, 4, 4)
        cols = im2col(images, 2, 2)
        # first output pixel's receptive field: rows 0-1, cols 0-1
        assert cols[:, 0].tolist() == [0.0, 1.0, 4.0, 5.0]
        # last output pixel: rows 2-3, cols 2-3
        assert cols[:, -1].tolist() == [10.0, 11.0, 14.0, 15.0]

    def test_stride(self):
        images = np.zeros((1, 1, 8, 8))
        cols = im2col(images, 2, 2, stride=2)
        assert cols.shape == (4, 16)

    def test_kernel_too_large(self):
        with pytest.raises(UnsupportedShapeError):
            im2col(np.zeros((1, 1, 2, 2)), 3, 3)

    def test_validates_inputs(self):
        with pytest.raises(UnsupportedShapeError):
            im2col(np.zeros((3, 8, 8)), 3, 3)
        with pytest.raises(ConfigError):
            im2col(np.zeros((1, 1, 8, 8)), 3, 3, stride=0)


class TestConv2dGemm:
    @pytest.mark.parametrize("stride", [1, 2])
    def test_matches_direct_convolution(self, rng, stride):
        images = rng.standard_normal((2, 3, 10, 10))
        kernels = rng.standard_normal((4, 3, 3, 3))
        out = conv2d_gemm(images, kernels, stride=stride, params=PARAMS)
        ref = conv2d_reference(images, kernels, stride=stride)
        assert out.shape == ref.shape
        assert np.allclose(out, ref, rtol=1e-10, atol=1e-10)

    def test_1x1_convolution_is_channel_mix(self, rng):
        images = rng.standard_normal((1, 4, 6, 6))
        kernels = rng.standard_normal((2, 4, 1, 1))
        out = conv2d_gemm(images, kernels, params=PARAMS)
        expected = np.einsum("oc,nchw->nohw", kernels[:, :, 0, 0], images)
        assert np.allclose(out, expected, rtol=1e-10)

    def test_channel_mismatch_rejected(self):
        with pytest.raises(UnsupportedShapeError):
            conv2d_gemm(np.zeros((1, 3, 8, 8)), np.zeros((2, 4, 3, 3)))

    def test_kernel_rank_checked(self):
        with pytest.raises(UnsupportedShapeError):
            conv2d_gemm(np.zeros((1, 3, 8, 8)), np.zeros((2, 3, 3)))

    def test_delta_kernel_is_identity(self):
        images = np.random.default_rng(3).standard_normal((1, 1, 6, 6))
        delta = np.zeros((1, 1, 3, 3))
        delta[0, 0, 1, 1] = 1.0
        out = conv2d_gemm(images, delta, params=PARAMS)
        assert np.allclose(out[0, 0], images[0, 0, 1:-1, 1:-1])


class TestConvBatch:
    def _layers(self, seed=0):
        rng = np.random.default_rng(seed)
        return [
            (rng.standard_normal((2, 3, 10, 10)),
             rng.standard_normal((4, 3, 3, 3))),
            (rng.standard_normal((1, 2, 8, 8)),
             rng.standard_normal((3, 2, 5, 5))),
            (rng.standard_normal((2, 3, 10, 10)),
             rng.standard_normal((4, 3, 3, 3))),
        ]

    def test_serial_batch_matches_reference(self):
        from repro.apps.conv import conv2d_gemm_batch

        layers = self._layers()
        maps = conv2d_gemm_batch(layers, params=PARAMS)
        assert len(maps) == 3
        for out, (images, kernels) in zip(maps, layers):
            assert np.allclose(out, conv2d_reference(images, kernels),
                               rtol=1e-9, atol=1e-7)

    def test_pool_batch_bit_identical_to_serial(self):
        from repro.apps.conv import conv2d_gemm_batch
        from repro.multi import SW26010Processor

        layers = self._layers(seed=1)
        proc = SW26010Processor()
        baselines = [cg.memory.used_bytes for cg in proc.core_groups]
        pooled = conv2d_gemm_batch(layers, params=PARAMS, processor=proc)
        serial = conv2d_gemm_batch(layers, params=PARAMS)
        assert all(np.array_equal(x, y) for x, y in zip(pooled, serial))
        assert [cg.memory.used_bytes for cg in proc.core_groups] == baselines

    def test_empty_batch_rejected(self):
        from repro.apps.conv import conv2d_gemm_batch

        with pytest.raises(ConfigError):
            conv2d_gemm_batch([])
