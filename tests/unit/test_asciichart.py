"""Unit tests for the ASCII chart renderer and the chart experiments."""

import pytest

from repro.errors import ConfigError
from repro.utils.asciichart import GLYPHS, line_chart


class TestLineChart:
    def test_basic_render(self):
        text = line_chart([0, 1, 2], {"a": [0.0, 1.0, 2.0]}, width=20, height=6)
        assert "a" in text.splitlines()[-1]       # legend
        assert "o" in text                        # first glyph
        assert "2.0" in text and "0.0" in text    # y ticks

    def test_max_at_top_min_at_bottom(self):
        text = line_chart([0, 1], {"a": [0.0, 10.0]}, width=20, height=6)
        lines = text.splitlines()
        top_row = [l for l in lines if l.strip().startswith("10.0")][0]
        bottom_row = [l for l in lines if l.strip().startswith("0.0")][0]
        assert "o" in top_row and "o" in bottom_row
        assert lines.index(top_row) < lines.index(bottom_row)

    def test_multiple_series_get_distinct_glyphs(self):
        text = line_chart(
            [0, 1], {"a": [0.0, 1.0], "b": [1.0, 0.0]}, width=20, height=6
        )
        assert "o=a" in text and "x=b" in text
        assert "x" in text and "o" in text

    def test_flat_series_handled(self):
        text = line_chart([0, 1, 2], {"flat": [5.0, 5.0, 5.0]}, width=20, height=6)
        assert "flat" in text

    def test_labels(self):
        text = line_chart([0, 1], {"a": [0.0, 1.0]}, width=20, height=6,
                          y_label="Gflop/s", x_label="size")
        assert text.startswith("Gflop/s")
        assert "size" in text

    @pytest.mark.parametrize("kwargs", [
        dict(width=4), dict(height=2),
    ])
    def test_geometry_validated(self, kwargs):
        with pytest.raises(ConfigError):
            line_chart([0, 1], {"a": [0.0, 1.0]}, **kwargs)

    def test_empty_inputs_rejected(self):
        with pytest.raises(ConfigError):
            line_chart([], {"a": []})
        with pytest.raises(ConfigError):
            line_chart([0], {})

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            line_chart([0, 1], {"a": [1.0]})

    def test_too_many_series_rejected(self):
        series = {f"s{i}": [0.0, 1.0] for i in range(len(GLYPHS) + 1)}
        with pytest.raises(ConfigError):
            line_chart([0, 1], series)


class TestChartExperiments:
    def test_fig6_chart_shows_all_variants(self):
        from repro.experiments.charts import fig6_chart

        text = fig6_chart()
        for name in ("RAW", "PE", "ROW", "DB", "SCHED"):
            assert name in text

    def test_fig4_chart(self):
        from repro.experiments.charts import fig4_chart

        text = fig4_chart()
        assert "PE_MODE" in text and "ROW_MODE" in text and "GB/s" in text

    def test_fig7_chart(self):
        from repro.experiments.charts import fig7_chart

        text = fig7_chart()
        assert "vary m" in text

    def test_to_csv(self):
        from repro.experiments.charts import to_csv

        csv = to_csv([1, 2], {"a": [1.5, 2.5], "b": [0.0, 1.0]}, x_name="size")
        lines = csv.strip().splitlines()
        assert lines[0] == "size,a,b"
        assert lines[1].startswith("1,1.5")
        # full float precision preserved
        assert repr(2.5) in lines[2] or "2.5" in lines[2]
