"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch import CoreGroup, SW26010Spec
from repro.core.params import BlockingParams


@pytest.fixture()
def spec() -> SW26010Spec:
    return SW26010Spec()


@pytest.fixture()
def cg(spec: SW26010Spec) -> CoreGroup:
    return CoreGroup(spec)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture()
def small_single() -> BlockingParams:
    """Scaled-down single-buffered params for fast functional runs."""
    return BlockingParams.small(double_buffered=False)


@pytest.fixture()
def small_double() -> BlockingParams:
    """Scaled-down double-buffered params for fast functional runs."""
    return BlockingParams.small(double_buffered=True)
