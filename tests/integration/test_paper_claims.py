"""Integration: the paper's quantitative claims, asserted with the
tolerances EXPERIMENTS.md documents.

Each test names the paper artifact it guards.  These are the tests that
fail if a calibration constant or model change breaks the reproduction.
"""

import pytest

from repro.arch.config import DEFAULT_SPEC
from repro.experiments import (
    fig4_dma_bandwidth,
    fig6_variants,
    fig7_shapes,
    sched_profile,
    table_blocksize,
)


@pytest.fixture(scope="module")
def fig6():
    return fig6_variants.run()


@pytest.fixture(scope="module")
def fig4():
    return fig4_dma_bandwidth.run()


@pytest.fixture(scope="module")
def fig7():
    return fig7_shapes.run()


class TestFigure6:
    def test_strict_variant_ordering_at_every_size(self, fig6):
        for idx in range(len(fig6.sizes)):
            series = [fig6.gflops[v][idx] for v in ("RAW", "PE", "ROW", "DB", "SCHED")]
            assert series == sorted(series)
            assert len(set(series)) == 5

    def test_sched_peak_95pct(self, fig6):
        """Paper: 706.1 Gflop/s = 95% of peak."""
        assert 0.92 <= fig6.peak_efficiency("SCHED") <= 0.97

    def test_sched_sustained_within_3pct_of_paper(self, fig6):
        assert fig6.sustained("SCHED") == pytest.approx(706.1, rel=0.03)

    def test_raw_sustained_within_10pct_of_paper(self, fig6):
        assert fig6.sustained("RAW") == pytest.approx(157.9, rel=0.10)

    @pytest.mark.parametrize("variant,paper,tol", [
        ("PE", 224.7, 0.15), ("ROW", 262.0, 0.10), ("DB", 330.1, 0.10),
    ])
    def test_mid_variants_within_tolerance(self, fig6, variant, paper, tol):
        assert fig6.sustained(variant) == pytest.approx(paper, rel=tol)

    def test_db_over_row_improvement(self, fig6):
        """Paper: +26%."""
        assert fig6.improvement("DB", "ROW") == pytest.approx(0.26, abs=0.06)

    def test_sched_over_db_improvement(self, fig6):
        """Paper: +113.9%."""
        assert fig6.improvement("SCHED", "DB") == pytest.approx(1.139, abs=0.15)

    def test_pe_over_raw_improvement_sign_and_scale(self, fig6):
        """Paper: +42.3%; the model runs hot here (documented) but the
        gain must be large and positive."""
        assert 0.25 <= fig6.improvement("PE", "RAW") <= 0.80

    def test_row_over_pe_improvement_sign_and_scale(self, fig6):
        """Paper: +16.6%; ours is smaller (documented) but positive."""
        assert 0.05 <= fig6.improvement("ROW", "PE") <= 0.25

    def test_monotone_rise_to_saturation(self, fig6):
        for variant in ("RAW", "PE", "ROW", "DB", "SCHED"):
            series = fig6.gflops[variant]
            assert all(a <= b + 1e-9 for a, b in zip(series, series[1:]))

    def test_saturation_by_9216(self, fig6):
        """Paper: 'maximum performance reaches when size is around
        9216' — past it the curve gains < 1.5%."""
        sched = dict(zip(fig6.sizes, fig6.gflops["SCHED"]))
        assert sched[15360] / sched[9216] < 1.015

    def test_sched_series_tracks_paper_labels(self, fig6):
        for size, paper_val in zip(fig6.sizes, fig6_variants.PAPER_SCHED_SERIES):
            ours = dict(zip(fig6.sizes, fig6.gflops["SCHED"]))[size]
            assert ours == pytest.approx(paper_val, rel=0.03)

    def test_pe_version_about_one_third_of_peak(self, fig6):
        """Sec IV: blocking alone yields 'less than 1/3 of the peak'.
        Our PE lands at ~33.5%, right at the claim's boundary."""
        assert fig6.peak_efficiency("PE") <= 0.36


class TestFigure4:
    def test_row_superior_everywhere(self, fig4):
        for pe, row in zip(fig4.pe_bandwidth, fig4.row_bandwidth):
            assert row > pe

    def test_both_rise_monotonically(self, fig4):
        for series in (fig4.pe_bandwidth, fig4.row_bandwidth):
            assert all(a <= b + 1e-9 for a, b in zip(series, series[1:]))

    def test_plateaus_in_paper_bands(self, fig4):
        """Fig 4 axis range is 10-30 GB/s; PE saturates low 20s (ours
        is conservative at ~19), ROW high 20s."""
        assert 17.0 <= fig4.plateau("PE") <= 23.0
        assert 26.0 <= fig4.plateau("ROW") <= 30.0

    def test_low_end_below_plateau(self, fig4):
        assert fig4.pe_bandwidth[0] < 0.75 * fig4.plateau("PE")
        assert fig4.row_bandwidth[0] < 0.70 * fig4.plateau("ROW")

    def test_below_channel_peak(self, fig4):
        assert max(fig4.row_bandwidth) < 34.0


class TestFigure7:
    def test_small_m_hurts(self, fig7):
        by_shape = fig7.by_shape()
        assert by_shape[(1536, 9216, 9216)] < 0.95 * by_shape[(12288, 9216, 9216)]

    def test_m_recovers_with_size(self, fig7):
        by_shape = fig7.by_shape()
        ms = [by_shape[(v, 9216, 9216)] for v in (1536, 3072, 6144, 12288)]
        assert ms == sorted(ms)

    def test_n_k_negligible(self, fig7):
        assert fig7.spread("n") < 0.02
        assert fig7.spread("k") < 0.02
        assert fig7.spread("m") > 0.05


class TestSecIIIC:
    def test_block_size_constants(self):
        result = table_blocksize.run()
        assert result.min_b_n == pytest.approx(174.68, abs=0.05)
        assert result.min_b_k == pytest.approx(349.36, abs=0.1)
        assert result.register_tile == (4, 4)
        assert result.register_budget == 24
        assert result.register_reduction == pytest.approx(4.0)
        assert result.ldm_single == 6912 < 8192
        assert result.ldm_double == 7168 < 8192

    def test_required_bandwidth_below_channel(self):
        result = table_blocksize.run()
        assert result.required_bw_gbs < 34.0


class TestSecIVC:
    def test_strip_cycles_and_occupancy(self):
        result = sched_profile.run()
        assert result.scheduled.strip_cycles == pytest.approx(101_858, rel=0.03)
        assert result.scheduled.vmad_occupancy == pytest.approx(0.97, abs=0.015)

    def test_kernel_speedup_matches_sched_gain(self):
        result = sched_profile.run()
        assert result.speedup == pytest.approx(2.139, rel=0.12)

    def test_hand_schedule_hits_theoretical_16(self):
        result = sched_profile.run()
        assert result.hand_cycles_per_iteration == pytest.approx(16.0)

    def test_auto_scheduler_between_naive_and_hand(self):
        result = sched_profile.run()
        assert (
            result.hand_cycles_per_iteration
            <= result.auto_cycles_per_iteration
            < result.naive_cycles_per_iteration
        )


class TestPeakHardware:
    def test_peak_is_742_4(self):
        assert DEFAULT_SPEC.peak_flops / 1e9 == pytest.approx(742.4)
