"""Integration: the functional device's DMA statistics must equal the
performance model's byte accounting — the guarantee that what we time
is what we execute."""

import pytest

from repro.arch.core_group import CoreGroup
from repro.core.api import dgemm
from repro.core.params import BlockingParams
from repro.core.variants import VARIANTS
from repro.perf.estimator import Estimator
from repro.workloads.matrices import gemm_operands


def run_and_measure(variant: str, m: int, n: int, k: int, params=None) -> int:
    cg = CoreGroup()
    a, b, c = gemm_operands(m, n, k, seed=2)
    dgemm(a, b, c, beta=1.0, variant=variant, params=params, core_group=cg)
    return cg.dma.stats.bytes_total


@pytest.mark.parametrize("variant", ["PE", "ROW", "DB", "SCHED"])
def test_blocked_variant_bytes_match_sec3c_formula(variant):
    single = BlockingParams.small(double_buffered=False)
    double = BlockingParams.small(double_buffered=True)
    params = single if variant in ("PE", "ROW") else double
    m, n, k = 2 * params.b_m, 2 * params.b_n, 2 * params.b_k
    measured = run_and_measure(variant, m, n, k, params)
    predicted = Estimator.predicted_bytes(VARIANTS[variant].traits, m, n, k, params)
    assert measured == predicted


def test_raw_bytes_match_estimator():
    m, n, k = 256, 128, 96
    measured = run_and_measure("RAW", m, n, k)
    predicted = Estimator().estimate("RAW", m, n, k).bytes_moved
    assert measured == predicted


def test_row_moves_fewer_requests_not_fewer_bytes():
    """The ROW mapping changes the transfer geometry, never the volume."""
    single = BlockingParams.small(double_buffered=False)
    m, n, k = 2 * single.b_m, single.b_n, single.b_k
    pe_bytes = run_and_measure("PE", m, n, k, single)
    row_bytes = run_and_measure("ROW", m, n, k, single)
    assert pe_bytes == row_bytes


def test_db_same_traffic_as_row_same_params():
    """Double buffering overlaps transfers; it must not add traffic."""
    params = BlockingParams.small(double_buffered=True)
    single = BlockingParams(
        params.p_m, params.p_n, params.p_k, double_buffered=False
    )
    m, n, k = 2 * params.b_m, params.b_n, params.b_k
    assert run_and_measure("DB", m, n, k, params) == run_and_measure(
        "ROW", m, n, k, single
    )


def test_regcomm_traffic_scales_with_steps():
    """Register communication moves (A + B tiles) x 7 receivers per
    step, 8 steps per block multiply."""
    params = BlockingParams.small(double_buffered=False)
    cg = CoreGroup()
    m, n, k = params.b_m, params.b_n, params.b_k
    a, b, c = gemm_operands(m, n, k, seed=3)
    dgemm(a, b, c, beta=1.0, variant="PE", params=params, core_group=cg)
    p = params
    per_step = (p.p_m * p.p_k + p.p_k * p.p_n) * 8 * 7 * 8  # bytes
    assert cg.regcomm.stats.bytes_moved == 8 * per_step
