"""Integration: every example script runs clean end to end.

Examples are documentation that executes; a broken example is a broken
promise.  Each runs in a subprocess with the repo's interpreter and
must exit 0 (examples contain their own assertions).
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_populated():
    assert len(EXAMPLES) >= 6


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, (
        f"{script.name} failed\nstdout:\n{result.stdout[-2000:]}\n"
        f"stderr:\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script.name} printed nothing"
