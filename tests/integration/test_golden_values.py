"""Golden-value snapshots of the headline numbers.

The paper-claims tests use tolerance bands; these pin the *exact*
model outputs (to 0.1 Gflop/s / 0.1 GB/s) so any change to a model or
calibration constant shows up as a diff here even when it stays inside
the bands. Update deliberately, alongside EXPERIMENTS.md.
"""

import pytest

from repro.experiments import (
    fig4_dma_bandwidth,
    fig6_variants,
    sched_profile,
)

GOLDEN_FIG6_SUSTAINED = {
    "RAW": 156.7,
    "PE": 248.4,
    "ROW": 272.7,
    "DB": 340.5,
    "SCHED": 701.0,
}

GOLDEN_SCHED_SERIES = (626.8, 665.9, 680.1, 687.4, 691.9,
                       694.9, 697.1, 698.7, 700.0, 701.0)

GOLDEN_FIG4_PLATEAUS = {"PE": 18.9, "ROW": 28.1}


class TestGoldenFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return fig6_variants.run()

    def test_sustained_values(self, result):
        for variant, golden in GOLDEN_FIG6_SUSTAINED.items():
            assert result.sustained(variant) == pytest.approx(golden, abs=0.1), variant

    def test_sched_series(self, result):
        for got, golden in zip(result.gflops["SCHED"], GOLDEN_SCHED_SERIES):
            assert got == pytest.approx(golden, abs=0.1)


class TestGoldenFig4:
    def test_plateaus(self):
        result = fig4_dma_bandwidth.run()
        assert result.plateau("PE") == pytest.approx(GOLDEN_FIG4_PLATEAUS["PE"], abs=0.1)
        assert result.plateau("ROW") == pytest.approx(GOLDEN_FIG4_PLATEAUS["ROW"], abs=0.1)


class TestGoldenKernel:
    def test_strip_cycles_exact(self):
        result = sched_profile.run()
        assert result.scheduled.strip_cycles == 100_736
        assert result.naive.strip_cycles == 210_944
        assert result.hand_cycles_per_iteration == 16.0
        assert result.naive_cycles_per_iteration == 34.0
