"""Integration: Figure 6's conclusions survive calibration perturbation."""

import pytest

from repro.experiments import robustness


@pytest.fixture(scope="module")
def cases():
    return robustness.run()


class TestRobustness:
    def test_every_corner_covered(self, cases):
        perturbed = [(c.field, c.scale) for c in cases if c.scale != 1.0]
        assert len(perturbed) == len(robustness.PERTURBED_FIELDS) * 2

    def test_ordering_holds_everywhere(self, cases):
        assert all(c.ordering_holds for c in cases)

    def test_sched_efficiency_band_everywhere(self, cases):
        for case in cases:
            assert 0.90 <= case.sched_efficiency <= 0.97, (
                f"SCHED efficiency {case.sched_efficiency:.3f} outside band "
                f"under {case.field} x{case.scale}"
            )

    def test_db_over_row_stable(self, cases):
        for case in cases:
            improvement = case.gflops["DB"] / case.gflops["ROW"] - 1.0
            assert 0.15 <= improvement <= 0.40

    def test_sched_over_db_stable(self, cases):
        for case in cases:
            improvement = case.gflops["SCHED"] / case.gflops["DB"] - 1.0
            assert 0.9 <= improvement <= 1.3

    def test_segment_overhead_moves_memory_bound_variants_most(self, cases):
        """RAW (memory bound) must react to segment overhead far more
        than SCHED (compute bound) — a sanity check that the
        perturbation reaches the right code paths."""
        by_key = {(c.field, c.scale): c for c in cases}
        base = by_key[("tx_overhead_s", 1.0)]
        heavy = by_key[("segment_overhead_s", 2.0)]
        raw_drop = 1 - heavy.gflops["RAW"] / base.gflops["RAW"]
        sched_drop = 1 - heavy.gflops["SCHED"] / base.gflops["SCHED"]
        assert raw_drop > 10 * sched_drop

    def test_render(self, cases):
        text = robustness.render(cases).render()
        assert "holds" in text and "BROKEN" not in text
