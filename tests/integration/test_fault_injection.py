"""Fault injection: the device model must *catch* broken algorithms.

These tests deliberately corrupt pieces of the implementation and
assert the failure is loud — either a device-model error (the hardware
would deadlock/trap) or a detected numerical divergence.  They are the
evidence that the functional validation has teeth: a reproduction whose
checks cannot fail proves nothing.
"""

import numpy as np
import pytest

from repro.arch.mesh import Coord
from repro.core import sharing
from repro.core.api import dgemm
from repro.core.params import BlockingParams
from repro.core.reference import reference_dgemm
from repro.errors import LDMAllocationError, RegisterCommError
from repro.workloads.matrices import gemm_operands

SINGLE = BlockingParams.small(double_buffered=False)
DOUBLE = BlockingParams.small(double_buffered=True)


def run_pe(monkeypatch_ctx=None):
    m, n, k = SINGLE.b_m, SINGLE.b_n, SINGLE.b_k
    a, b, c = gemm_operands(m, n, k, seed=44)
    got = dgemm(a, b, c, beta=1.0, variant="PE", params=SINGLE)
    return got, reference_dgemm(1.0, a, b, 1.0, c)


class TestSharingFaults:
    def test_swapped_owner_roles_fail_loudly(self, monkeypatch):
        """Broadcasting from the wrong mesh line must either trip the
        producer/consumer discipline or corrupt the result."""
        real_exchange = sharing.exchange_step

        def corrupted(cg, step, scheme, a_tiles, b_tiles):
            # serve step 1's owners in place of step 0's: k-slice 1 is
            # accumulated twice and slice 0 never (a mere rotation of
            # all steps would only permute the sum and stay correct)
            return real_exchange(cg, step if step != 0 else 1, scheme,
                                 a_tiles, b_tiles)

        monkeypatch.setattr(
            "repro.core.variants.base.exchange_step", corrupted
        )
        got, expected = run_pe()
        assert not np.allclose(got, expected, rtol=1e-6, atol=1e-6)

    def test_skipped_receive_detected_at_barrier(self, cg):
        """A thread that forgets to drain its buffer is caught by the
        barrier check, as the real mesh would hang."""
        a_tiles = {c: np.zeros((4, 4)) for c in cg.mesh.coords()}
        b_tiles = dict(a_tiles)
        from repro.core.sharing import Scheme

        # do the broadcast phase manually, then "forget" the receives
        for line in range(8):
            cg.regcomm.row_broadcast(Coord(line, 0), a_tiles[Coord(line, 0)])
        with pytest.raises(RegisterCommError):
            cg.regcomm.assert_drained()

    def test_double_receive_raises(self, cg):
        cg.regcomm.row_broadcast(Coord(0, 0), np.zeros(4))
        cg.regcomm.receive_row(Coord(0, 1))
        with pytest.raises(RegisterCommError):
            cg.regcomm.receive_row(Coord(0, 1))


class TestBufferFaults:
    def test_oversized_blocking_trips_ldm(self, cg):
        """Pretending the LDM is bigger than 64 KB is impossible: the
        allocator rejects the paper's pN=48 double-buffered layout."""
        from repro.core.mapping import RowMapping

        params = BlockingParams(16, 48, 96, double_buffered=True)
        with pytest.raises(LDMAllocationError):
            RowMapping(params).allocate(cg)

    def test_wrong_slot_order_corrupts_c(self, monkeypatch):
        """Off-by-one in Algorithm 2's slot parity corrupts the result
        (caught by the reference comparison, proving the functional DB
        path actually validates the buffer juggling)."""
        from repro.core.variants import db as db_module

        original_run = db_module.DoubleBufferedVariant.run

        def crooked_run(self, cg, a, b, c, alpha=1.0, beta=0.0, params=None):
            params = params or self.default_params()
            mapping = self.mapping_cls(params)
            grid_m, grid_n, grid_k = self.prepare(cg, mapping, params, a, b, c)
            for j in range(grid_n):
                for l in range(grid_k):
                    beta_now = beta if l == 0 else 1.0
                    mapping.load_b(cg, b, l, j)
                    for i in range(grid_m):
                        slot = (i + 1) % 2  # WRONG parity
                        mapping.load_a(cg, a, i, l, buf=f"A{slot}")
                        mapping.load_c(cg, c, i, j, buf=f"C{slot}")
                        if beta_now != 1.0:
                            self.scale_c(cg, f"C{slot}", beta_now)
                        self.strip_multiply(
                            cg, self.scheme, alpha,
                            a_buf=f"A{i % 2}", c_buf=f"C{i % 2}",  # stale slot!
                        )
                        mapping.store_c(cg, c, i, j, buf=f"C{i % 2}")

        monkeypatch.setattr(db_module.DoubleBufferedVariant, "run", crooked_run)
        m, n, k = 2 * DOUBLE.b_m, DOUBLE.b_n, DOUBLE.b_k
        a, b, c = gemm_operands(m, n, k, seed=5)
        got = dgemm(a, b, c, beta=1.0, variant="DB", params=DOUBLE)
        expected = reference_dgemm(1.0, a, b, 1.0, c)
        assert not np.allclose(got, expected, rtol=1e-6, atol=1e-6)
        monkeypatch.setattr(db_module.DoubleBufferedVariant, "run", original_run)


class TestMappingFaults:
    def test_mismatched_interleave_breaks_row_variant(self, monkeypatch):
        """If C used the contiguous mapping while A uses ROW_MODE's
        interleave, rows land in the wrong place."""
        from repro.core import mapping as mapping_module

        params = SINGLE

        def contiguous_load_c(self, cg, handle, blk_i, blk_j, buf="C"):
            return mapping_module.PEMapping.load_c(self, cg, handle, blk_i, blk_j, buf)

        monkeypatch.setattr(mapping_module.RowMapping, "load_c", contiguous_load_c)
        m, n, k = params.b_m, params.b_n, params.b_k
        a, b, c = gemm_operands(m, n, k, seed=6)
        got = dgemm(a, b, c, beta=1.0, variant="ROW", params=params)
        expected = reference_dgemm(1.0, a, b, 1.0, c)
        assert not np.allclose(got, expected, rtol=1e-6, atol=1e-6)
