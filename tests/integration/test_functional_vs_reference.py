"""Integration: every variant, many shapes and scalar combinations,
always exactly matching the numpy reference."""

import numpy as np
import pytest

from repro.arch.core_group import CoreGroup
from repro.core.api import dgemm
from repro.core.params import BlockingParams
from repro.core.reference import reference_dgemm
from repro.workloads.matrices import gemm_operands, hilbert_like
from repro.workloads.shapes import functional_shapes

SINGLE = BlockingParams.small(double_buffered=False)
DOUBLE = BlockingParams.small(double_buffered=True)


def params_for(variant: str) -> BlockingParams:
    return SINGLE if variant in ("PE", "ROW") else DOUBLE


@pytest.mark.parametrize("variant", ["RAW", "PE", "ROW", "DB", "SCHED"])
@pytest.mark.parametrize("alpha,beta", [(1.0, 0.0), (1.0, 1.0), (-2.5, 0.75)])
def test_variant_matches_reference(variant, alpha, beta):
    p = params_for(variant)
    m, n, k = 2 * p.b_m, p.b_n, p.b_k
    a, b, c = gemm_operands(m, n, k, seed=hash((variant, alpha)) % 2**16)
    out = dgemm(a, b, c, alpha=alpha, beta=beta, variant=variant, params=p)
    assert np.allclose(out, reference_dgemm(alpha, a, b, beta, c), rtol=1e-12, atol=1e-9)


@pytest.mark.parametrize("shape", functional_shapes(128, 64, 128, max_blocks=2))
def test_sched_all_block_grids(shape):
    m, n, k = shape
    a, b, c = gemm_operands(m, n, k, seed=5)
    out = dgemm(a, b, c, alpha=1.1, beta=-0.2, variant="SCHED", params=DOUBLE)
    assert np.allclose(out, reference_dgemm(1.1, a, b, -0.2, c), rtol=1e-12, atol=1e-9)


def test_ill_conditioned_operands():
    """Blocked accumulation order on poorly scaled data stays close to
    the reference (same data, different summation order)."""
    p = DOUBLE
    m, n, k = p.b_m, p.b_n, 2 * p.b_k
    a = hilbert_like(m, k) * 1e8
    b = hilbert_like(k, n)
    out = dgemm(a, b, variant="SCHED", params=p)
    ref = a @ b
    assert np.allclose(out, ref, rtol=1e-9)


def test_identity_propagation():
    p = DOUBLE
    n = p.b_n
    a = np.eye(p.b_m, p.b_k)
    b = np.zeros((p.b_k, n))
    b[: p.b_m, :] = np.arange(p.b_m * n).reshape(p.b_m, n)
    out = dgemm(a, b, variant="SCHED", params=p)
    assert np.array_equal(out, b[: p.b_m, :])


def test_zero_alpha_scales_c_only():
    p = SINGLE
    a, b, c = gemm_operands(p.b_m, p.b_n, p.b_k, seed=9)
    out = dgemm(a, b, c, alpha=0.0, beta=3.0, variant="PE", params=p)
    assert np.allclose(out, 3.0 * c, rtol=1e-13)


def test_repeated_runs_on_one_device_are_deterministic():
    cg = CoreGroup()
    p = DOUBLE
    a, b, c = gemm_operands(p.b_m, p.b_n, p.b_k, seed=11)
    first = dgemm(a, b, c, beta=1.0, variant="SCHED", params=p, core_group=cg)
    second = dgemm(a, b, c, beta=1.0, variant="SCHED", params=p, core_group=cg)
    assert np.array_equal(first, second)


def test_paper_params_one_block():
    """One full paper-sized CG block through DB params (the smallest
    admissible paper shape: 128 x 256 x 768)."""
    p = BlockingParams.paper_double()
    a, b, c = gemm_operands(p.b_m, p.b_n, p.b_k, seed=21)
    out = dgemm(a, b, c, alpha=2.0, beta=-1.0, variant="SCHED", params=p)
    assert np.allclose(out, reference_dgemm(2.0, a, b, -1.0, c), rtol=1e-12, atol=1e-9)
