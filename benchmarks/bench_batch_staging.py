"""Staging cost of batched DGEMM under the plan cache.

Not a paper artifact — this measures the *library*: what the scoped
``ExecutionContext`` buys on a same-shape batch. A warm context restages
every operand in place (one host-side copy each, zero fresh
allocations), where per-call contexts re-allocate all three slots every
item. The printed counter table is the evidence; the timing shows the
allocation churn is also measurable wall-clock.
"""

import numpy as np
import pytest

from repro.arch.core_group import CoreGroup
from repro.api import GemmRequest
from repro.core.batch import dgemm_batch
from repro.core.context import ExecutionContext
from repro.core.params import BlockingParams
from repro.workloads.matrices import gemm_operands

PARAMS = BlockingParams.small(double_buffered=True)
ITEMS = 8


def make_items() -> list[GemmRequest]:
    return [
        GemmRequest(*gemm_operands(PARAMS.b_m, PARAMS.b_n, PARAMS.b_k, seed=s))
        for s in range(ITEMS)
    ]


def test_batch_staging_warm_context(benchmark, show):
    items = make_items()

    def run():
        cg = CoreGroup()
        with ExecutionContext(cg) as ctx:
            for item in items:
                ctx.stage("A", item.a)
                ctx.stage("B", item.b)
                ctx.stage("C", item.c)
        return cg.memory.stats

    stats = benchmark(run)
    show(
        f"warm context, {ITEMS} same-shape items: "
        f"{stats.allocations} allocations, "
        f"{stats.in_place_stores} in-place restores "
        f"(one allocation per operand slot)"
    )
    assert stats.allocations == 3
    assert stats.in_place_stores == 3 * (ITEMS - 1)


def test_batch_staging_counters_via_dgemm_batch(show):
    """The same reuse holds through the public batch entry point."""
    cg = CoreGroup()
    dgemm_batch(make_items(), params=PARAMS, core_group=cg)
    stats = cg.memory.stats
    show(
        f"dgemm_batch, {ITEMS} same-shape items: "
        f"{stats.allocations} allocations, "
        f"{stats.in_place_stores} in-place restores"
    )
    assert stats.allocations == 3
    assert stats.in_place_stores == 3 * (ITEMS - 1)


def test_batch_staging_cold_contexts(benchmark, show):
    """Baseline: a fresh context per item, as separate dgemm calls get."""
    items = make_items()

    def run():
        cg = CoreGroup()
        for item in items:
            with ExecutionContext(cg) as ctx:
                ctx.stage("A", item.a)
                ctx.stage("B", item.b)
                ctx.stage("C", item.c)
        return cg.memory.stats

    stats = benchmark(run)
    show(
        f"cold contexts, {ITEMS} same-shape items: "
        f"{stats.allocations} allocations, "
        f"{stats.in_place_stores} in-place restores"
    )
    assert stats.allocations == 3 * ITEMS
    assert stats.in_place_stores == 0


def test_single_copy_staging(benchmark):
    """Staging a C-order operand costs exactly one host copy."""
    cg = CoreGroup()
    a = np.ascontiguousarray(np.arange(128.0 * 128).reshape(128, 128))

    def run():
        with ExecutionContext(cg) as ctx:
            ctx.stage("A", a)
        return cg.memory.stats.allocations

    benchmark(run)
    per_call = cg.memory.stats.allocations / cg.memory.stats.stores
    assert per_call == 1.0
