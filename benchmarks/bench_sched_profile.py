"""E5/A5 — regenerate the Sec IV-C instruction-scheduling profile."""

import pytest

from repro.experiments import sched_profile
from repro.isa.kernels import MicrokernelSpec, scheduled_pipeline, tile_program
from repro.isa.profile import profile_kernel


def test_sched_profile_table(benchmark, show):
    result = benchmark(sched_profile.run)
    show(sched_profile.render(result))
    assert result.scheduled.strip_cycles == pytest.approx(101_858, rel=0.03)
    assert result.scheduled.vmad_occupancy == pytest.approx(0.97, abs=0.015)


def test_pipeline_simulation_throughput(benchmark):
    """Raw speed of the cycle simulator over one full tile program
    (~3000 instructions)."""
    pipe = scheduled_pipeline()
    program = tile_program(MicrokernelSpec(), scheduled=True)
    result = benchmark(pipe.run, program)
    assert result.cycles > 0


@pytest.mark.parametrize("scheduled", [True, False], ids=["algorithm3", "naive"])
def test_kernel_profile(benchmark, scheduled):
    prof = benchmark(profile_kernel, MicrokernelSpec(), scheduled)
    assert prof.strip_cycles > 0
