"""Throughput of the event-driven timeline simulator.

Also not a paper artifact: measures how fast the discrete-event replay
of Algorithm 2 runs, and demonstrates it agrees with the closed form it
validates.
"""

import pytest

from repro.perf.estimator import Estimator
from repro.perf.timeline import TimelineSimulator


def test_timeline_db_medium(benchmark):
    sim = TimelineSimulator()
    result = benchmark(sim.run, "SCHED", 1536, 1536, 1536)
    closed = Estimator().estimate("SCHED", 1536, 1536, 1536)
    assert result.seconds == pytest.approx(closed.seconds, rel=1e-9)


def test_timeline_overlap_report(benchmark, show):
    sim = TimelineSimulator()
    result = benchmark(sim.run, "SCHED", 1536, 1536, 1536)
    hidden = result.overlap_seconds / result.tracer.busy("dma")
    show(
        f"SCHED @1536^3: {result.gflops:.1f} Gflop/s, "
        f"{100 * hidden:.1f}% of DMA time hidden under compute"
    )
    assert hidden > 0.5
