"""E7/E8/A6 + the auto-tuner: benches for the extension experiments."""

import pytest

from repro.core.params import BlockingParams
from repro.experiments import cache_ablation, hpl_projection, multi_cg_scaling
from repro.tuning import autotune


def test_multi_cg_scaling(benchmark, show):
    result = benchmark(multi_cg_scaling.run)
    show(multi_cg_scaling.render(result))
    assert result.efficiency_at(15360) > 0.8


def test_hpl_projection(benchmark, show):
    result = benchmark(hpl_projection.run)
    show(hpl_projection.render(result))
    assert result.trace.gemm_fraction > 0.9


def test_cache_ablation(benchmark, show):
    result = benchmark(cache_ablation.run, 32)
    show(cache_ablation.render(result))
    assert result.slowdown > 20


def test_autotune_search(benchmark, show):
    result = benchmark(
        autotune, 9216, 9216, 9216, "SCHED", None, 10, p_n_step=8
    )
    paper_rank = result.rank_of(BlockingParams.paper_double())
    show(
        f"autotune: best {result.best.params.p_m}x{result.best.params.p_n}"
        f"x{result.best.params.p_k} at {result.best.gflops:.1f} Gflop/s; "
        f"paper's (16,32,96) ranks #{paper_rank}"
    )
    assert paper_rank <= 3


def test_future_hardware_whatifs(benchmark, show):
    from repro.experiments import future_hw

    scenarios = benchmark(future_hw.run)
    show(future_hw.render(scenarios))
    base = next(s for s in scenarios if "LDM x1" in s.label)
    assert base.best_blocking == (16, 32, 96)
