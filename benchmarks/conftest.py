"""Shared helpers for the benchmark harness.

Every ``bench_*`` module regenerates one of the paper's tables or
figures: the benchmarked callable *is* the experiment, and after timing
it the test prints the same rows/series the paper reports (visible in
the pytest-benchmark run via ``capsys.disabled``).
"""

from __future__ import annotations

import pytest


@pytest.fixture()
def show(capsys):
    """Print a table to the real terminal even under capture."""

    def _show(renderable) -> None:
        with capsys.disabled():
            print()
            print(renderable if isinstance(renderable, str) else renderable.render())

    return _show
