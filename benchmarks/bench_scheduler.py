"""1 -> 4-CG scaling of the batch scheduler on mixed-shape batches.

Not a paper artifact — this measures the *library*: what
:class:`~repro.multi.scheduler.CGScheduler` buys over serializing the
same batch on one core group.  Three claims are checked:

- the **modeled makespan** on the pool never exceeds the serial
  single-CG modeled time (the acceptance bar for the scheduler), and
  approaches ``serial / n_cgs`` as the mix balances;
- the **functional outputs** are bit-identical to the serial
  ``dgemm_batch`` run, so the dispatch layer costs no numerics;
- **parallel dispatch** (``run(parallel=True)``, fused vectorized
  engine, paper-sized blocking) beats serial dispatch in *wall-clock*
  p50 — the fused strip multiplies release the GIL, so on a >=4-core
  host a 4-CG batch must reach at least
  :data:`PARALLEL_SPEEDUP_FLOOR`x; on smaller hosts the wall-clock
  gate downgrades to a warning (there is nothing to overlap on one
  core) while the bit-identity checks stay hard.

Runnable standalone (used by CI)::

    PYTHONPATH=src python benchmarks/bench_scheduler.py --smoke
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np
import pytest

from repro.core.batch import dgemm_batch
from repro.core.params import BlockingParams
from repro.core.variants import get_variant
from repro.multi.processor import SW26010Processor
from repro.multi.scheduler import CGScheduler
from repro.workloads.matrices import mixed_batch

PARAMS = BlockingParams.small(double_buffered=True)
ITEMS = 16

#: the parallel-dispatch bench runs fused mode at paper-sized blocking.
PAPER_PARAMS = get_variant("SCHED").default_params()
PARALLEL_ITEMS = 16
PARALLEL_REPS = 5
#: wall-clock acceptance bar for a 4-CG fused batch on a >=4-core host.
PARALLEL_SPEEDUP_FLOOR = 2.0
#: softer bar when only 2-3 cores are available to overlap on.
PARALLEL_SPEEDUP_FLOOR_2CORE = 1.1


def effective_cores() -> int:
    """Cores this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _p50(samples: list[float]) -> float:
    return float(np.percentile(np.asarray(samples, dtype=np.float64), 50))


def measure_parallel_dispatch(
    reps: int = PARALLEL_REPS,
) -> tuple[dict, list[str], list[str]]:
    """Serial vs parallel dispatch of one fused-mode paper-size batch.

    Returns ``(record, failures, warnings)``.  Bit-identity of the
    parallel outputs is always a hard failure; the wall-clock p50
    speedup bar scales with the host's effective core count (a 1-core
    runner cannot overlap anything, so there it only warns).
    """
    items = mixed_batch(PARALLEL_ITEMS, params=PAPER_PARAMS, seed=2)
    cores = effective_cores()
    failures: list[str] = []
    warnings: list[str] = []
    serial_samples: list[float] = []
    parallel_samples: list[float] = []
    with CGScheduler(
        n_core_groups=4, params=PAPER_PARAMS, engine="vectorized"
    ) as serial_sched, CGScheduler(
        n_core_groups=4, params=PAPER_PARAMS, engine="vectorized"
    ) as par_sched:
        # warmup both paths (staging-plan caches, thread pool spin-up)
        # and take the bit-identity reference from the serial run.
        reference = serial_sched.run(items)
        parallel = par_sched.run(items, parallel=True)
        if not reference.ok or not parallel.ok:
            failures.append(
                f"dispatch reported item errors: "
                f"{reference.errors + parallel.errors}"
            )
        if not all(
            np.array_equal(x, y)
            for x, y in zip(reference.outputs, parallel.outputs)
        ):
            failures.append(
                "parallel outputs are not bit-identical to serial dispatch"
            )
        for _ in range(reps):
            t0 = time.perf_counter()
            serial_sched.run(items)
            serial_samples.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            par_sched.run(items, parallel=True)
            parallel_samples.append(time.perf_counter() - t0)

    serial_p50 = _p50(serial_samples)
    parallel_p50 = _p50(parallel_samples)
    speedup = serial_p50 / parallel_p50 if parallel_p50 else float("inf")
    record = {
        "items": PARALLEL_ITEMS,
        "reps": reps,
        "effective_cores": cores,
        "serial_p50_seconds": serial_p50,
        "parallel_p50_seconds": parallel_p50,
        "p50_speedup": speedup,
        "modeled_speedup": parallel.modeled_speedup,
    }

    if cores >= 4 and speedup < PARALLEL_SPEEDUP_FLOOR:
        failures.append(
            f"parallel dispatch p50 speedup {speedup:.2f}x is below the "
            f"{PARALLEL_SPEEDUP_FLOOR:.1f}x floor on a {cores}-core host"
        )
    elif cores >= 2 and speedup < PARALLEL_SPEEDUP_FLOOR_2CORE:
        failures.append(
            f"parallel dispatch p50 speedup {speedup:.2f}x is below the "
            f"{PARALLEL_SPEEDUP_FLOOR_2CORE:.1f}x floor on a "
            f"{cores}-core host"
        )
    elif cores < 2:
        warnings.append(
            f"single-core host: wall-clock gate skipped "
            f"(p50 speedup {speedup:.2f}x informational only)"
        )
    return record, failures, warnings


def test_scheduler_vs_serial_outputs(benchmark, show):
    items = mixed_batch(ITEMS, params=PARAMS, seed=0)
    serial = dgemm_batch(items, params=PARAMS)

    def run():
        return CGScheduler(n_core_groups=4, params=PARAMS).run(items)

    result = benchmark(run)
    show(
        f"{ITEMS} mixed-shape items on 4 CGs: modeled makespan "
        f"{result.makespan_seconds * 1e3:.3f} ms vs serial "
        f"{result.serial_seconds * 1e3:.3f} ms "
        f"({result.modeled_speedup:.2f}x, load balance "
        f"{100 * result.load_balance_efficiency:.1f}%)"
    )
    assert result.ok
    assert all(
        np.array_equal(x, y) for x, y in zip(serial.outputs, result.outputs)
    )
    assert result.makespan_seconds <= result.serial_seconds


@pytest.mark.parametrize("pool", [1, 2, 4])
def test_scheduler_pool_scaling(pool, benchmark, show):
    items = mixed_batch(ITEMS, params=PARAMS, seed=1)
    scheduler = CGScheduler(n_core_groups=pool, params=PARAMS)

    result = benchmark(scheduler.run, items)
    show(
        f"pool={pool}: modeled speedup {result.modeled_speedup:.2f}x, "
        f"DMA {result.dma_bytes / 1e6:.2f} MB across "
        f"{sum(1 for t in result.per_cg if t.items)} active CG(s)"
    )
    assert result.ok
    assert result.makespan_seconds <= result.serial_seconds + 1e-15


def test_parallel_dispatch_wall_clock(show):
    """Fused-mode wall-clock: parallel workers vs the inline loop."""
    record, failures, warnings = measure_parallel_dispatch(reps=3)
    show(
        f"parallel dispatch ({record['effective_cores']} cores): serial p50 "
        f"{record['serial_p50_seconds'] * 1e3:.1f} ms, parallel p50 "
        f"{record['parallel_p50_seconds'] * 1e3:.1f} ms "
        f"-> {record['p50_speedup']:.2f}x wall-clock "
        f"({record['modeled_speedup']:.2f}x modeled)"
    )
    for warning in warnings:
        show(f"WARN: {warning}")
    assert not failures, failures


def smoke() -> int:
    """Fast scheduler regression check for CI (no benchmark harness)."""
    items = mixed_batch(ITEMS, params=PARAMS, seed=0)
    serial = dgemm_batch(items, params=PARAMS)
    proc = SW26010Processor()
    baselines = [proc.cg(g).memory.used_bytes for g in range(4)]
    result = CGScheduler(proc, params=PARAMS).run(items)

    failures: list[str] = []
    if not result.ok:
        failures.append(f"scheduler reported item errors: {result.errors}")
    if not all(
        np.array_equal(x, y) for x, y in zip(serial.outputs, result.outputs)
    ):
        failures.append("pool outputs differ from serial dgemm_batch")
    if result.makespan_seconds > result.serial_seconds:
        failures.append(
            f"modeled makespan {result.makespan_seconds} exceeds serial "
            f"time {result.serial_seconds}"
        )
    after = [proc.cg(g).memory.used_bytes for g in range(4)]
    if after != baselines:
        failures.append(f"CG byte budgets leaked: {baselines} -> {after}")

    record, par_failures, warnings = measure_parallel_dispatch(reps=3)
    failures.extend(par_failures)
    for warning in warnings:
        print(f"WARN: {warning}", file=sys.stderr)

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(
            f"scheduler smoke OK: {ITEMS} items, "
            f"{result.modeled_speedup:.2f}x modeled speedup on 4 CGs, "
            f"budgets restored; parallel dispatch "
            f"{record['p50_speedup']:.2f}x wall-clock p50 on "
            f"{record['effective_cores']} core(s), outputs bit-identical"
        )
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the fast CI regression check and exit",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return smoke()
    return pytest.main([__file__, "-q"])


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
