"""1 -> 4-CG scaling of the batch scheduler on mixed-shape batches.

Not a paper artifact — this measures the *library*: what
:class:`~repro.multi.scheduler.CGScheduler` buys over serializing the
same batch on one core group.  Two claims are checked:

- the **modeled makespan** on the pool never exceeds the serial
  single-CG modeled time (the acceptance bar for the scheduler), and
  approaches ``serial / n_cgs`` as the mix balances;
- the **functional outputs** are bit-identical to the serial
  ``dgemm_batch`` run, so the dispatch layer costs no numerics.

Runnable standalone (used by CI)::

    PYTHONPATH=src python benchmarks/bench_scheduler.py --smoke
"""

from __future__ import annotations

import argparse
import sys

import numpy as np
import pytest

from repro.core.batch import dgemm_batch
from repro.core.params import BlockingParams
from repro.multi.processor import SW26010Processor
from repro.multi.scheduler import CGScheduler
from repro.workloads.matrices import mixed_batch

PARAMS = BlockingParams.small(double_buffered=True)
ITEMS = 16


def test_scheduler_vs_serial_outputs(benchmark, show):
    items = mixed_batch(ITEMS, params=PARAMS, seed=0)
    serial = dgemm_batch(items, params=PARAMS)

    def run():
        return CGScheduler(n_core_groups=4, params=PARAMS).run(items)

    result = benchmark(run)
    show(
        f"{ITEMS} mixed-shape items on 4 CGs: modeled makespan "
        f"{result.makespan_seconds * 1e3:.3f} ms vs serial "
        f"{result.serial_seconds * 1e3:.3f} ms "
        f"({result.modeled_speedup:.2f}x, load balance "
        f"{100 * result.load_balance_efficiency:.1f}%)"
    )
    assert result.ok
    assert all(
        np.array_equal(x, y) for x, y in zip(serial.outputs, result.outputs)
    )
    assert result.makespan_seconds <= result.serial_seconds


@pytest.mark.parametrize("pool", [1, 2, 4])
def test_scheduler_pool_scaling(pool, benchmark, show):
    items = mixed_batch(ITEMS, params=PARAMS, seed=1)
    scheduler = CGScheduler(n_core_groups=pool, params=PARAMS)

    result = benchmark(scheduler.run, items)
    show(
        f"pool={pool}: modeled speedup {result.modeled_speedup:.2f}x, "
        f"DMA {result.dma_bytes / 1e6:.2f} MB across "
        f"{sum(1 for t in result.per_cg if t.items)} active CG(s)"
    )
    assert result.ok
    assert result.makespan_seconds <= result.serial_seconds + 1e-15


def smoke() -> int:
    """Fast scheduler regression check for CI (no benchmark harness)."""
    items = mixed_batch(ITEMS, params=PARAMS, seed=0)
    serial = dgemm_batch(items, params=PARAMS)
    proc = SW26010Processor()
    baselines = [proc.cg(g).memory.used_bytes for g in range(4)]
    result = CGScheduler(proc, params=PARAMS).run(items)

    failures: list[str] = []
    if not result.ok:
        failures.append(f"scheduler reported item errors: {result.errors}")
    if not all(
        np.array_equal(x, y) for x, y in zip(serial.outputs, result.outputs)
    ):
        failures.append("pool outputs differ from serial dgemm_batch")
    if result.makespan_seconds > result.serial_seconds:
        failures.append(
            f"modeled makespan {result.makespan_seconds} exceeds serial "
            f"time {result.serial_seconds}"
        )
    after = [proc.cg(g).memory.used_bytes for g in range(4)]
    if after != baselines:
        failures.append(f"CG byte budgets leaked: {baselines} -> {after}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(
            f"scheduler smoke OK: {ITEMS} items, "
            f"{result.modeled_speedup:.2f}x modeled speedup on 4 CGs, "
            f"budgets restored"
        )
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the fast CI regression check and exit",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return smoke()
    return pytest.main([__file__, "-q"])


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
