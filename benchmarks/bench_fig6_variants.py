"""E2/E6 — regenerate Figure 6 (five DGEMM versions, square sizes)."""

import pytest

from repro.experiments import fig6_variants as fig6
from repro.perf.estimator import Estimator


def test_fig6_full_grid(benchmark, show):
    result = benchmark(fig6.run)
    show(fig6.render(result))
    show(fig6.render_headlines(result))
    g = result.gflops
    for idx in range(len(result.sizes)):
        series = [g[v][idx] for v in ("RAW", "PE", "ROW", "DB", "SCHED")]
        assert series == sorted(series)
    assert result.sustained("SCHED") == pytest.approx(706.1, rel=0.03)


@pytest.mark.parametrize("variant", ["RAW", "PE", "ROW", "DB", "SCHED"])
def test_fig6_single_point(benchmark, variant):
    """Per-variant estimate at the paper's saturated size."""
    estimator = Estimator()
    estimate = benchmark(estimator.estimate, variant, 9216, 9216, 9216)
    assert estimate.gflops > 0
