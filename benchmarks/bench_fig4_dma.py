"""E1 — regenerate Figure 4 (DMA sustained bandwidth, PE vs ROW)."""

from repro.experiments import fig4_dma_bandwidth as fig4


def test_fig4_bandwidth_sweep(benchmark, show):
    result = benchmark(fig4.run)
    show(fig4.render(result))
    # the figure's shape: ROW strictly above PE, both rising
    assert all(r > p for p, r in zip(result.pe_bandwidth, result.row_bandwidth))
    assert result.plateau("ROW") > 26.0


def test_fig4_functional_distribution(benchmark, show):
    """Drive the functional DMA device over one CG block per mode."""
    got = benchmark(fig4.verify_distribution_bytes)
    show(
        f"functional DMA check: PE moved {got['PE']} B, ROW moved "
        f"{got['ROW']} B, block is {got['block']} B"
    )
    assert got["PE"] == got["ROW"] == got["block"]
