"""Throughput of the functional device simulation itself.

Not a paper artifact — this measures the *library*: how fast the
full functional path (DMA distribution + register-communication
exchange + per-CPE tile math on 64 simulated CPEs) executes a small
DGEMM, per variant.
"""

import numpy as np
import pytest

from repro.core.api import dgemm
from repro.core.params import BlockingParams
from repro.workloads.matrices import gemm_operands

SINGLE = BlockingParams.small(double_buffered=False)
DOUBLE = BlockingParams.small(double_buffered=True)


@pytest.mark.parametrize("variant", ["RAW", "PE", "ROW", "DB", "SCHED"])
def test_functional_dgemm(benchmark, variant):
    params = SINGLE if variant in ("PE", "ROW") else DOUBLE
    m, n, k = params.b_m, params.b_n, params.b_k
    a, b, c = gemm_operands(m, n, k, seed=1)
    out = benchmark(dgemm, a, b, c, beta=1.0, variant=variant, params=params)
    assert np.isfinite(out).all()


def test_functional_dgemm_two_blocks_each_dim(benchmark):
    p = DOUBLE
    m, n, k = 2 * p.b_m, 2 * p.b_n, 2 * p.b_k
    a, b, c = gemm_operands(m, n, k, seed=2)
    out = benchmark(dgemm, a, b, c, beta=1.0, variant="SCHED", params=p)
    assert out.shape == (m, n)
