"""Throughput of the functional device simulation itself.

Not a paper artifact — this measures the *library*: how fast the
full functional path (DMA distribution + register-communication
exchange + per-CPE tile math on 64 simulated CPEs) executes a small
DGEMM, per variant — and what the vectorized execution engine buys
over it (``benchmarks/bench_engine.py`` measures the engines at paper
size; this keeps the comparison visible at benchmark-suite scale).
"""

import numpy as np
import pytest

from repro.core.api import dgemm
from repro.core.params import BlockingParams
from repro.workloads.matrices import gemm_operands

SINGLE = BlockingParams.small(double_buffered=False)
DOUBLE = BlockingParams.small(double_buffered=True)


@pytest.mark.parametrize("engine", ["device", "vectorized"])
@pytest.mark.parametrize("variant", ["RAW", "PE", "ROW", "DB", "SCHED"])
def test_functional_dgemm(benchmark, variant, engine):
    params = SINGLE if variant in ("PE", "ROW") else DOUBLE
    m, n, k = params.b_m, params.b_n, params.b_k
    a, b, c = gemm_operands(m, n, k, seed=1)
    out = benchmark(dgemm, a, b, c, beta=1.0, variant=variant,
                    engine=engine, params=params)
    assert np.isfinite(out).all()


@pytest.mark.parametrize("engine", ["device", "vectorized"])
def test_functional_dgemm_two_blocks_each_dim(benchmark, engine):
    p = DOUBLE
    m, n, k = 2 * p.b_m, 2 * p.b_n, 2 * p.b_k
    a, b, c = gemm_operands(m, n, k, seed=2)
    out = benchmark(dgemm, a, b, c, beta=1.0, variant="SCHED",
                    engine=engine, params=p)
    assert out.shape == (m, n)
