"""E3 — regenerate Figure 7 (SCHED across matrix shapes)."""

from repro.experiments import fig7_shapes as fig7


def test_fig7_shape_grid(benchmark, show):
    result = benchmark(fig7.run)
    show(fig7.render(result))
    assert result.spread("m") > 0.05       # small m hurts
    assert result.spread("n") < 0.02       # n negligible
    assert result.spread("k") < 0.02       # k negligible


def test_fig7_small_m_penalty(benchmark):
    """The single data point behind the paper's explanation: the
    double-buffer prologue cost at m = 1536 vs m = 12288."""
    from repro.perf.estimator import Estimator

    estimator = Estimator()

    def penalty() -> float:
        small = estimator.estimate("SCHED", 1536, 9216, 9216).gflops
        large = estimator.estimate("SCHED", 12288, 9216, 9216).gflops
        return small / large

    ratio = benchmark(penalty)
    assert ratio < 0.95
