"""E4 — regenerate the Sec III-C block-size determination table."""

import pytest

from repro.core import model
from repro.experiments import table_blocksize


def test_blocksize_table(benchmark, show):
    result = benchmark(table_blocksize.run)
    show(table_blocksize.render(result))
    assert result.min_b_n == pytest.approx(174.68, abs=0.05)
    assert result.register_tile == (4, 4)


def test_register_tile_search(benchmark):
    r_m, r_n = benchmark(model.optimal_register_tile)
    assert (r_m, r_n) == (4, 4)


def test_bandwidth_reduction_eval(benchmark):
    s = benchmark(model.bandwidth_reduction, 256.0, 768.0, 9216.0)
    assert s > 0
