"""Device vs vectorized execution engine: wall-clock and traffic.

Not a paper artifact — this measures the *library*: what
``engine="vectorized"`` buys over the per-CPE device model on the
functional GEMM hot path, per variant.  Every timed configuration is
also *verified*: the vectorized result must match the device result to
the library comparison tolerance (``rtol=1e-12 / atol=1e-9``, the same
bar ``dgemm(check=True)`` applies) and the DMA / register-communication
statistics must match exactly, otherwise the run fails.

The stepwise plan path is covered too: warm plan-compiled stepwise runs
are measured against the legacy per-call index derivation (bitwise
equality plus exact-stats verification), gated at
``STEPWISE_PLAN_SPEEDUP_FLOOR`` at the 768^3 paper size in full mode,
and the smoke run additionally asserts the plan-cache counters (one
build per signature, hits across repeated parallel ``Session`` batches,
drain on close).

Timings cover ``engine.run`` on pre-staged operands — the execution
engine itself, excluding the engine-independent host staging copies.
Every repetition's wall-clock is kept; records report the best-of-reps
headline number plus a min/p50/p95/mean summary so the trajectory file
captures run-to-run jitter, not just the fastest sample.

Runnable standalone::

    PYTHONPATH=src python benchmarks/bench_engine.py --json BENCH_engine.json
    PYTHONPATH=src python benchmarks/bench_engine.py --smoke   # CI gate
    PYTHONPATH=src python benchmarks/bench_engine.py --smoke \
        --baseline BENCH_engine.json --max-regression 0.25

The ``--baseline`` flag turns the smoke run into a performance
*regression* gate: the p50 speedup of each smoke case is compared
against the ``smoke`` section of the committed trajectory file, and the
run fails if any case lost more than ``--max-regression`` (a fraction;
0.25 means "a quarter of the baseline speedup").  A baseline without a
``smoke`` section downgrades the gate to a warning so the first run on
a fresh baseline never hard-fails; ``--write-baseline`` refreshes the
section in place.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.api import GemmRequest
from repro.arch.core_group import CoreGroup
from repro.core.context import ExecutionContext
from repro.core.engine import PlanCache, StepwiseEngine, get_engine
from repro.core.params import BlockingParams
from repro.core.session import Session
from repro.core.variants import get_variant

#: paper-sized shapes per variant (multiples of the CG block factors).
PAPER_SHAPES = {
    "RAW": (768, 768, 768),
    "PE": (512, 768, 768),
    "ROW": (512, 768, 768),
    "DB": (1024, 1024, 768),
    "SCHED": (1024, 1024, 768),
}
#: the 768^3 paper size the stepwise-plan acceptance bar is quoted at.
PLAN_SHAPE = (768, 768, 768)
SMOKE_PARAMS = BlockingParams.small(double_buffered=True)
#: the acceptance bar: vectorized must beat device by this factor on
#: the paper-sized SCHED variant.
SCHED_SPEEDUP_FLOOR = 10.0
#: the acceptance bar: warm-plan stepwise must beat the legacy
#: (per-call index derivation) stepwise path by this factor at 768^3.
STEPWISE_PLAN_SPEEDUP_FLOOR = 2.0


def _stats_snapshot(cg: CoreGroup) -> dict:
    d, r = cg.dma.stats, cg.regcomm.stats
    return {
        "dma_gets": d.gets,
        "dma_puts": d.puts,
        "dma_bytes_get": d.bytes_get,
        "dma_bytes_put": d.bytes_put,
        "dma_transactions": d.transactions,
        "dma_by_mode": dict(sorted(d.by_mode.items())),
        "regcomm_row_broadcasts": r.row_broadcasts,
        "regcomm_col_broadcasts": r.col_broadcasts,
        "regcomm_row_items": r.row_items,
        "regcomm_col_items": r.col_items,
        "regcomm_bytes": r.bytes_moved,
        "regcomm_receives": r.receives,
    }


def _timing_summary(samples: list[float]) -> dict:
    """min/p50/p95/mean over the per-rep wall-clock samples."""
    arr = np.asarray(samples, dtype=np.float64)
    return {
        "reps": len(samples),
        "min": float(arr.min()),
        "p50": float(np.percentile(arr, 50)),
        "p95": float(np.percentile(arr, 95)),
        "mean": float(arr.mean()),
    }


def _run_engine(
    variant: str,
    engine_name,
    shape: tuple[int, int, int],
    params: BlockingParams | None,
    reps: int,
    plan_cache: PlanCache | None = None,
) -> tuple[np.ndarray, dict, list[float]]:
    """Return (result, stats, per-rep seconds) for one engine run.

    The first repetition runs on the freshly staged C and provides the
    verified result and statistics; later repetitions only refine the
    timing (they accumulate into C, which does not affect wall-clock).
    ``engine_name`` may be a registry name or an engine instance;
    ``plan_cache`` is handed to plan-aware engines, so with a shared
    cache the first repetition is the cold (plan-building) sample and
    every later repetition is warm.
    """
    impl = get_variant(variant)
    params = params or impl.default_params()
    m, n, k = shape
    rng = np.random.default_rng(7)
    a = rng.standard_normal((m, k))
    b = rng.standard_normal((k, n))
    c = rng.standard_normal((m, n))
    eng = get_engine(engine_name)
    cg = CoreGroup()
    with ExecutionContext.scoped(None, cg, cg.spec) as ctx, ctx.executing():
        ha = ctx.stage("A", a, rows=m, cols=k)
        hb = ctx.stage("B", b, rows=k, cols=n)
        hc = ctx.stage("C", c, rows=m, cols=n)
        samples: list[float] = []
        result = None
        stats = None
        for rep in range(reps):
            t0 = time.perf_counter()
            eng.run(impl, cg, ha, hb, hc, alpha=1.0, beta=1.0, params=params,
                    plan_cache=plan_cache)
            samples.append(time.perf_counter() - t0)
            if rep == 0:
                result = np.array(cg.memory.array(hc), order="F", copy=True)
                stats = _stats_snapshot(cg)
    return result, stats, samples


def bench_variant(
    variant: str,
    shape: tuple[int, int, int],
    params: BlockingParams | None = None,
    device_reps: int = 1,
    vectorized_reps: int = 3,
) -> tuple[dict, list[str]]:
    """Measure and verify one variant; return (record, failures).

    The headline ``*_seconds``/``speedup`` numbers use the best-of-reps
    sample; the ``*_timing`` summaries expose the full distribution.
    """
    m, n, k = shape
    dev_out, dev_stats, dev_samples = _run_engine(
        variant, "device", shape, params, device_reps)
    vec_out, vec_stats, vec_samples = _run_engine(
        variant, "vectorized", shape, params, vectorized_reps)
    dev_s = min(dev_samples)
    vec_s = min(vec_samples)

    failures: list[str] = []
    if not np.allclose(vec_out, dev_out, rtol=1e-12, atol=1e-9):
        worst = float(np.max(np.abs(vec_out - dev_out)))
        failures.append(
            f"{variant}: vectorized result deviates from device "
            f"(max abs err {worst:.3e})"
        )
    if vec_stats != dev_stats:
        diff = {key for key in dev_stats if dev_stats[key] != vec_stats[key]}
        failures.append(
            f"{variant}: traffic statistics differ on {sorted(diff)}"
        )

    dma_bytes = dev_stats["dma_bytes_get"] + dev_stats["dma_bytes_put"]
    record = {
        "shape": {"m": m, "n": n, "k": k},
        "flops": 2 * m * n * k,
        "device_seconds": dev_s,
        "vectorized_seconds": vec_s,
        "device_timing": _timing_summary(dev_samples),
        "vectorized_timing": _timing_summary(vec_samples),
        "speedup": dev_s / vec_s,
        "device_gflops": 2 * m * n * k / dev_s / 1e9,
        "vectorized_gflops": 2 * m * n * k / vec_s / 1e9,
        "dma_gb_moved": dma_bytes / 1e9,
        "regcomm_gb_moved": dev_stats["regcomm_bytes"] / 1e9,
        "stats_match": vec_stats == dev_stats,
        "traffic": dev_stats,
    }
    return record, failures


def bench_stepwise_plan(
    shape: tuple[int, int, int],
    params: BlockingParams | None = None,
    variant: str = "SCHED",
    reps: int = 5,
) -> tuple[dict, list[str]]:
    """Legacy stepwise vs plan-compiled stepwise; return (record, failures).

    The legacy path (``use_plans=False``) re-derives its owner tables
    and copy recipes on every call; the planned path compiles them once
    into the shared :class:`PlanCache`.  Repetition 0 of the planned run
    is the cold (plan-building) sample; the warm timing summary covers
    repetitions 1..reps.  The two paths must agree *bitwise* and produce
    identical traffic statistics, and the cache counters must show
    exactly one build with a hit on every warm repetition.
    """
    legacy_out, legacy_stats, legacy_samples = _run_engine(
        variant, StepwiseEngine(use_plans=False), shape, params, reps)
    cache = PlanCache()
    plan_out, plan_stats, plan_samples = _run_engine(
        variant, StepwiseEngine(), shape, params, reps + 1, plan_cache=cache)
    cold_s = plan_samples[0]
    warm_samples = plan_samples[1:]

    failures: list[str] = []
    if not np.array_equal(plan_out, legacy_out):
        worst = float(np.max(np.abs(plan_out - legacy_out)))
        failures.append(
            f"{variant}: planned stepwise result is not bit-identical to "
            f"the legacy stepwise path (max abs err {worst:.3e})"
        )
    if plan_stats != legacy_stats:
        diff = {k for k in legacy_stats if legacy_stats[k] != plan_stats[k]}
        failures.append(
            f"{variant}: planned stepwise traffic statistics differ on "
            f"{sorted(diff)}"
        )
    counters = cache.stats()
    if counters.builds != 1 or counters.hits != reps:
        failures.append(
            f"{variant}: plan cache counters off — expected 1 build / "
            f"{reps} hits, got {counters.builds} / {counters.hits}"
        )

    m, n, k = shape
    legacy_s = min(legacy_samples)
    warm_s = min(warm_samples)
    record = {
        "shape": {"m": m, "n": n, "k": k},
        "variant": variant,
        "flops": 2 * m * n * k,
        "legacy_seconds": legacy_s,
        "cold_seconds": cold_s,
        "warm_seconds": warm_s,
        "legacy_timing": _timing_summary(legacy_samples),
        "warm_timing": _timing_summary(warm_samples),
        "speedup": legacy_s / warm_s,
        "speedup_p50": (
            _timing_summary(legacy_samples)["p50"]
            / _timing_summary(warm_samples)["p50"]
        ),
        "warm_gflops": 2 * m * n * k / warm_s / 1e9,
        "plan_cache": {
            "builds": counters.builds,
            "hits": counters.hits,
            "bytes": counters.bytes,
        },
        "results_bitwise_equal": bool(np.array_equal(plan_out, legacy_out)),
        "stats_match": plan_stats == legacy_stats,
    }
    return record, failures


def full(json_path: str) -> int:
    """Measure every variant at paper size and write the trajectory file."""
    records: dict[str, dict] = {}
    failures: list[str] = []
    for variant, shape in PAPER_SHAPES.items():
        record, errs = bench_variant(
            variant, shape, device_reps=3, vectorized_reps=5)
        records[variant] = record
        failures.extend(errs)
        vec_t = record["vectorized_timing"]
        print(
            f"{variant:6s} {shape}: device {record['device_seconds']:.3f}s, "
            f"vectorized {record['vectorized_seconds']:.3f}s "
            f"(p50 {vec_t['p50']:.3f}s, p95 {vec_t['p95']:.3f}s) "
            f"-> {record['speedup']:.1f}x, "
            f"DMA {record['dma_gb_moved']:.3f} GB, "
            f"regcomm {record['regcomm_gb_moved']:.3f} GB"
        )

    sched = records["SCHED"]["speedup"]
    if sched < SCHED_SPEEDUP_FLOOR:
        failures.append(
            f"SCHED speedup {sched:.1f}x is below the "
            f"{SCHED_SPEEDUP_FLOOR:.0f}x acceptance floor"
        )

    plan_record, plan_errs = bench_stepwise_plan(PLAN_SHAPE, reps=5)
    failures.extend(plan_errs)
    print(
        f"stepwise_plan {PLAN_SHAPE}: legacy "
        f"{plan_record['legacy_seconds']:.3f}s, cold "
        f"{plan_record['cold_seconds']:.3f}s, warm "
        f"{plan_record['warm_seconds']:.3f}s "
        f"-> p50 {plan_record['speedup_p50']:.1f}x"
    )
    plan_speedup = plan_record["speedup_p50"]
    if plan_speedup < STEPWISE_PLAN_SPEEDUP_FLOOR:
        failures.append(
            f"warm-plan stepwise p50 speedup {plan_speedup:.1f}x at "
            f"{PLAN_SHAPE} is below the "
            f"{STEPWISE_PLAN_SPEEDUP_FLOOR:.0f}x acceptance floor"
        )

    smoke_records, smoke_errs = measure_smoke()
    failures.extend(smoke_errs)
    payload = {
        "benchmark": "bench_engine",
        "description": "device vs vectorized execution engine, per variant",
        "tolerance": {"rtol": 1e-12, "atol": 1e-9},
        "variants": records,
        "sched_speedup": sched,
        "stepwise_plan": plan_record,
        "stepwise_plan_speedup_p50": plan_speedup,
        "smoke": smoke_section(smoke_records),
    }
    with open(json_path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {json_path} (SCHED speedup {sched:.1f}x)")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def smoke_cases() -> list[tuple[str, tuple[int, int, int], BlockingParams]]:
    """The two CI smoke configurations (single- and double-buffered)."""
    single = BlockingParams.small(double_buffered=False)
    return [
        ("PE", (2 * single.b_m, 2 * single.b_n, 2 * single.b_k), single),
        ("SCHED", (2 * SMOKE_PARAMS.b_m, 2 * SMOKE_PARAMS.b_n,
                   2 * SMOKE_PARAMS.b_k), SMOKE_PARAMS),
    ]


def _smoke_plan_counters() -> list[str]:
    """Verify plan-cache behavior end to end through ``Session``.

    Two repeated ``batch(parallel=True)`` waves over a single shape must
    compile exactly one plan, hit it on every other item (across the CG
    worker threads), and ``close()`` must drain the cache to zero bytes.
    """
    m, n, k = (SMOKE_PARAMS.b_m, SMOKE_PARAMS.b_n, SMOKE_PARAMS.b_k)
    rng = np.random.default_rng(11)
    items = [
        GemmRequest(rng.standard_normal((m, k)), rng.standard_normal((k, n)))
        for _ in range(4)
    ]
    failures: list[str] = []
    session = Session(params=SMOKE_PARAMS, engine="stepwise", n_core_groups=2)
    try:
        session.batch(items, parallel=True)
        first = session.plan_cache.stats()
        session.batch(items, parallel=True)
        second = session.plan_cache.stats()
    finally:
        session.close()
    drained = session.plan_cache.stats()
    if first.builds != 1 or first.hits != len(items) - 1:
        failures.append(
            f"plan counters: first parallel batch expected 1 build / "
            f"{len(items) - 1} hits, got {first.builds} / {first.hits}"
        )
    if second.builds != 1 or second.hits != 2 * len(items) - 1:
        failures.append(
            f"plan counters: second parallel batch expected the plan to be "
            f"hit, not rebuilt (1 build / {2 * len(items) - 1} hits), got "
            f"{second.builds} / {second.hits}"
        )
    if drained.plans != 0 or drained.bytes != 0:
        failures.append(
            f"plan counters: Session.close() left {drained.plans} plans / "
            f"{drained.bytes} bytes in the cache"
        )
    return failures


def measure_smoke() -> tuple[dict[str, dict], list[str]]:
    """Run the smoke cases; return (records by case, failures)."""
    failures: list[str] = []
    records: dict[str, dict] = {}
    for variant, shape, params in smoke_cases():
        record, errs = bench_variant(
            variant, shape, params, device_reps=3, vectorized_reps=5)
        failures.extend(errs)
        records[variant] = record
        if record["speedup"] <= 1.0:
            failures.append(
                f"{variant}: vectorized engine is slower than device "
                f"({record['vectorized_seconds']:.4f}s vs "
                f"{record['device_seconds']:.4f}s)"
            )
    plan_shape = (2 * SMOKE_PARAMS.b_m, 2 * SMOKE_PARAMS.b_n,
                  2 * SMOKE_PARAMS.b_k)
    plan_record, plan_errs = bench_stepwise_plan(
        plan_shape, SMOKE_PARAMS, reps=5)
    failures.extend(plan_errs)
    records["STEPWISE_PLAN"] = plan_record
    if plan_record["speedup"] <= 1.0:
        failures.append(
            f"STEPWISE_PLAN: warm planned stepwise is slower than the "
            f"legacy stepwise path ({plan_record['warm_seconds']:.4f}s vs "
            f"{plan_record['legacy_seconds']:.4f}s)"
        )
    failures.extend(_smoke_plan_counters())
    return records, failures


def _p50_speedup(record: dict) -> float:
    """The p50-over-p50 speedup of a smoke record, either shape.

    Engine records compare device vs vectorized; stepwise-plan records
    (marked by ``legacy_timing``) compare legacy vs warm planned.
    """
    if "legacy_timing" in record:
        return record["legacy_timing"]["p50"] / record["warm_timing"]["p50"]
    return record["device_timing"]["p50"] / record["vectorized_timing"]["p50"]


def smoke_section(records: dict[str, dict]) -> dict:
    """The ``smoke`` block of the trajectory file: p50 speedups.

    The gate compares p50-over-p50 rather than best-of-reps speedup —
    medians are far less sensitive to a single lucky (or preempted)
    repetition on shared CI runners.
    """
    return {
        "speedup_p50": {v: _p50_speedup(r) for v, r in records.items()},
        "shapes": {v: r["shape"] for v, r in records.items()},
    }


def check_regression(
    records: dict[str, dict], baseline_path: str, max_regression: float
) -> list[str]:
    """Compare smoke p50 speedups against the committed baseline.

    Returns gate failures.  A baseline file without a ``smoke`` section
    (or a section missing a variant) only warns: the gate must not
    hard-fail the first run after the baseline format changes.
    """
    try:
        with open(baseline_path) as fh:
            baseline = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"WARN: baseline {baseline_path} unreadable ({exc}); "
              "skipping regression gate", file=sys.stderr)
        return []
    base_speedups = baseline.get("smoke", {}).get("speedup_p50")
    if not base_speedups:
        print(f"WARN: baseline {baseline_path} has no smoke section; "
              "skipping regression gate (run --smoke --write-baseline)",
              file=sys.stderr)
        return []
    failures: list[str] = []
    for variant, record in records.items():
        base = base_speedups.get(variant)
        if base is None:
            print(f"WARN: baseline has no smoke entry for {variant}; "
                  "skipping it", file=sys.stderr)
            continue
        now = _p50_speedup(record)
        floor = base * (1.0 - max_regression)
        verdict = "ok" if now >= floor else "REGRESSION"
        print(
            f"{variant:6s} p50 speedup {now:.2f}x vs baseline {base:.2f}x "
            f"(floor {floor:.2f}x at -{max_regression:.0%}): {verdict}"
        )
        if now < floor:
            failures.append(
                f"{variant}: p50 speedup regressed to {now:.2f}x, below "
                f"the {floor:.2f}x floor ({base:.2f}x baseline minus "
                f"{max_regression:.0%} allowance)"
            )
    return failures


def write_smoke_baseline(records: dict[str, dict], json_path: str) -> None:
    """Refresh the ``smoke`` section of the trajectory file in place.

    The full-mode payload (paper-sized per-variant records) is kept as
    is when the file already exists; only the smoke block is replaced.
    """
    try:
        with open(json_path) as fh:
            payload = json.load(fh)
    except (OSError, json.JSONDecodeError):
        payload = {"benchmark": "bench_engine"}
    payload["smoke"] = smoke_section(records)
    with open(json_path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote smoke baseline section to {json_path}")


def smoke(
    baseline: str | None = None,
    max_regression: float = 0.25,
    write_baseline: str | None = None,
) -> int:
    """Fast engine regression check for CI (no benchmark harness).

    Verifies result/statistics equivalence on small blocks for a
    single- and a double-buffered variant and fails if the vectorized
    engine is not faster than the device engine.  With ``baseline``
    set, additionally gates the p50 speedup of each case against the
    committed trajectory file (see :func:`check_regression`).
    """
    records, failures = measure_smoke()
    speedups = {v: r["speedup"] for v, r in records.items()}
    if baseline is not None:
        failures.extend(check_regression(records, baseline, max_regression))
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        summary = ", ".join(f"{v} {s:.1f}x" for v, s in speedups.items())
        print(f"engine smoke OK: results and stats match; {summary}")
        if write_baseline is not None:
            write_smoke_baseline(records, write_baseline)
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the fast CI regression check and exit",
    )
    parser.add_argument(
        "--json", metavar="PATH", default="BENCH_engine.json",
        help="trajectory file to write in full mode (default: %(default)s)",
    )
    parser.add_argument(
        "--baseline", metavar="PATH",
        help="smoke mode: gate p50 speedups against this trajectory file",
    )
    parser.add_argument(
        "--max-regression", type=float, default=0.25, metavar="FRAC",
        help="smoke gate: allowed fractional p50-speedup loss vs the "
             "baseline (default: %(default)s)",
    )
    parser.add_argument(
        "--write-baseline", nargs="?", const="BENCH_engine.json",
        metavar="PATH",
        help="smoke mode: refresh the smoke section of PATH (default "
             "BENCH_engine.json) after a passing run",
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.max_regression < 1.0:
        parser.error("--max-regression must be in [0, 1)")
    if args.smoke:
        return smoke(args.baseline, args.max_regression, args.write_baseline)
    if args.baseline or args.write_baseline:
        parser.error("--baseline/--write-baseline require --smoke")
    return full(args.json)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
