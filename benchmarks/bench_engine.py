"""Device vs vectorized execution engine: wall-clock and traffic.

Not a paper artifact — this measures the *library*: what
``engine="vectorized"`` buys over the per-CPE device model on the
functional GEMM hot path, per variant.  Every timed configuration is
also *verified*: the vectorized result must match the device result to
the library comparison tolerance (``rtol=1e-12 / atol=1e-9``, the same
bar ``dgemm(check=True)`` applies) and the DMA / register-communication
statistics must match exactly, otherwise the run fails.

Timings cover ``engine.run`` on pre-staged operands — the execution
engine itself, excluding the engine-independent host staging copies.
Every repetition's wall-clock is kept; records report the best-of-reps
headline number plus a min/p50/p95/mean summary so the trajectory file
captures run-to-run jitter, not just the fastest sample.

Runnable standalone::

    PYTHONPATH=src python benchmarks/bench_engine.py --json BENCH_engine.json
    PYTHONPATH=src python benchmarks/bench_engine.py --smoke   # CI gate
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.arch.core_group import CoreGroup
from repro.core.context import ExecutionContext
from repro.core.engine import get_engine
from repro.core.params import BlockingParams
from repro.core.variants import get_variant

#: paper-sized shapes per variant (multiples of the CG block factors).
PAPER_SHAPES = {
    "RAW": (768, 768, 768),
    "PE": (512, 768, 768),
    "ROW": (512, 768, 768),
    "DB": (1024, 1024, 768),
    "SCHED": (1024, 1024, 768),
}
SMOKE_PARAMS = BlockingParams.small(double_buffered=True)
#: the acceptance bar: vectorized must beat device by this factor on
#: the paper-sized SCHED variant.
SCHED_SPEEDUP_FLOOR = 10.0


def _stats_snapshot(cg: CoreGroup) -> dict:
    d, r = cg.dma.stats, cg.regcomm.stats
    return {
        "dma_gets": d.gets,
        "dma_puts": d.puts,
        "dma_bytes_get": d.bytes_get,
        "dma_bytes_put": d.bytes_put,
        "dma_transactions": d.transactions,
        "dma_by_mode": dict(sorted(d.by_mode.items())),
        "regcomm_row_broadcasts": r.row_broadcasts,
        "regcomm_col_broadcasts": r.col_broadcasts,
        "regcomm_row_items": r.row_items,
        "regcomm_col_items": r.col_items,
        "regcomm_bytes": r.bytes_moved,
        "regcomm_receives": r.receives,
    }


def _timing_summary(samples: list[float]) -> dict:
    """min/p50/p95/mean over the per-rep wall-clock samples."""
    arr = np.asarray(samples, dtype=np.float64)
    return {
        "reps": len(samples),
        "min": float(arr.min()),
        "p50": float(np.percentile(arr, 50)),
        "p95": float(np.percentile(arr, 95)),
        "mean": float(arr.mean()),
    }


def _run_engine(
    variant: str,
    engine_name: str,
    shape: tuple[int, int, int],
    params: BlockingParams | None,
    reps: int,
) -> tuple[np.ndarray, dict, list[float]]:
    """Return (result, stats, per-rep seconds) for one engine run.

    The first repetition runs on the freshly staged C and provides the
    verified result and statistics; later repetitions only refine the
    timing (they accumulate into C, which does not affect wall-clock).
    """
    impl = get_variant(variant)
    params = params or impl.default_params()
    m, n, k = shape
    rng = np.random.default_rng(7)
    a = rng.standard_normal((m, k))
    b = rng.standard_normal((k, n))
    c = rng.standard_normal((m, n))
    eng = get_engine(engine_name)
    cg = CoreGroup()
    with ExecutionContext.scoped(None, cg, cg.spec) as ctx, ctx.executing():
        ha = ctx.stage("A", a, rows=m, cols=k)
        hb = ctx.stage("B", b, rows=k, cols=n)
        hc = ctx.stage("C", c, rows=m, cols=n)
        samples: list[float] = []
        result = None
        stats = None
        for rep in range(reps):
            t0 = time.perf_counter()
            eng.run(impl, cg, ha, hb, hc, alpha=1.0, beta=1.0, params=params)
            samples.append(time.perf_counter() - t0)
            if rep == 0:
                result = np.array(cg.memory.array(hc), order="F", copy=True)
                stats = _stats_snapshot(cg)
    return result, stats, samples


def bench_variant(
    variant: str,
    shape: tuple[int, int, int],
    params: BlockingParams | None = None,
    device_reps: int = 1,
    vectorized_reps: int = 3,
) -> tuple[dict, list[str]]:
    """Measure and verify one variant; return (record, failures).

    The headline ``*_seconds``/``speedup`` numbers use the best-of-reps
    sample; the ``*_timing`` summaries expose the full distribution.
    """
    m, n, k = shape
    dev_out, dev_stats, dev_samples = _run_engine(
        variant, "device", shape, params, device_reps)
    vec_out, vec_stats, vec_samples = _run_engine(
        variant, "vectorized", shape, params, vectorized_reps)
    dev_s = min(dev_samples)
    vec_s = min(vec_samples)

    failures: list[str] = []
    if not np.allclose(vec_out, dev_out, rtol=1e-12, atol=1e-9):
        worst = float(np.max(np.abs(vec_out - dev_out)))
        failures.append(
            f"{variant}: vectorized result deviates from device "
            f"(max abs err {worst:.3e})"
        )
    if vec_stats != dev_stats:
        diff = {key for key in dev_stats if dev_stats[key] != vec_stats[key]}
        failures.append(
            f"{variant}: traffic statistics differ on {sorted(diff)}"
        )

    dma_bytes = dev_stats["dma_bytes_get"] + dev_stats["dma_bytes_put"]
    record = {
        "shape": {"m": m, "n": n, "k": k},
        "flops": 2 * m * n * k,
        "device_seconds": dev_s,
        "vectorized_seconds": vec_s,
        "device_timing": _timing_summary(dev_samples),
        "vectorized_timing": _timing_summary(vec_samples),
        "speedup": dev_s / vec_s,
        "device_gflops": 2 * m * n * k / dev_s / 1e9,
        "vectorized_gflops": 2 * m * n * k / vec_s / 1e9,
        "dma_gb_moved": dma_bytes / 1e9,
        "regcomm_gb_moved": dev_stats["regcomm_bytes"] / 1e9,
        "stats_match": vec_stats == dev_stats,
        "traffic": dev_stats,
    }
    return record, failures


def full(json_path: str) -> int:
    """Measure every variant at paper size and write the trajectory file."""
    records: dict[str, dict] = {}
    failures: list[str] = []
    for variant, shape in PAPER_SHAPES.items():
        record, errs = bench_variant(
            variant, shape, device_reps=3, vectorized_reps=5)
        records[variant] = record
        failures.extend(errs)
        vec_t = record["vectorized_timing"]
        print(
            f"{variant:6s} {shape}: device {record['device_seconds']:.3f}s, "
            f"vectorized {record['vectorized_seconds']:.3f}s "
            f"(p50 {vec_t['p50']:.3f}s, p95 {vec_t['p95']:.3f}s) "
            f"-> {record['speedup']:.1f}x, "
            f"DMA {record['dma_gb_moved']:.3f} GB, "
            f"regcomm {record['regcomm_gb_moved']:.3f} GB"
        )

    sched = records["SCHED"]["speedup"]
    if sched < SCHED_SPEEDUP_FLOOR:
        failures.append(
            f"SCHED speedup {sched:.1f}x is below the "
            f"{SCHED_SPEEDUP_FLOOR:.0f}x acceptance floor"
        )
    payload = {
        "benchmark": "bench_engine",
        "description": "device vs vectorized execution engine, per variant",
        "tolerance": {"rtol": 1e-12, "atol": 1e-9},
        "variants": records,
        "sched_speedup": sched,
    }
    with open(json_path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {json_path} (SCHED speedup {sched:.1f}x)")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def smoke() -> int:
    """Fast engine regression check for CI (no benchmark harness).

    Verifies result/statistics equivalence on small blocks for a
    single- and a double-buffered variant and fails if the vectorized
    engine is not faster than the device engine.
    """
    failures: list[str] = []
    speedups: dict[str, float] = {}
    single = BlockingParams.small(double_buffered=False)
    cases = [
        ("PE", (2 * single.b_m, 2 * single.b_n, 2 * single.b_k), single),
        ("SCHED", (2 * SMOKE_PARAMS.b_m, 2 * SMOKE_PARAMS.b_n,
                   2 * SMOKE_PARAMS.b_k), SMOKE_PARAMS),
    ]
    for variant, shape, params in cases:
        record, errs = bench_variant(
            variant, shape, params, device_reps=3, vectorized_reps=5)
        failures.extend(errs)
        speedups[variant] = record["speedup"]
        if record["speedup"] <= 1.0:
            failures.append(
                f"{variant}: vectorized engine is slower than device "
                f"({record['vectorized_seconds']:.4f}s vs "
                f"{record['device_seconds']:.4f}s)"
            )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        summary = ", ".join(f"{v} {s:.1f}x" for v, s in speedups.items())
        print(f"engine smoke OK: results and stats match; {summary}")
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the fast CI regression check and exit",
    )
    parser.add_argument(
        "--json", metavar="PATH", default="BENCH_engine.json",
        help="trajectory file to write in full mode (default: %(default)s)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return smoke()
    return full(args.json)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
