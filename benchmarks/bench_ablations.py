"""A1-A4 — regenerate the paper's ablation tables.

These four sweeps reproduce specific tables from the paper (reside
matrix, register tiles, b_k/b_n split, double-buffer LDM budget).
Component-level ablation of this codebase — one-component-off runs
over stage/engine/scheduler/retry/parallel/blocking with importance
ranking — moved to the systematic ``repro.ablate`` harness
(``repro-dgemm ablate``; see docs/ablation.md).
"""

from repro.experiments import ablations


def test_reside_matrix(benchmark, show):
    traffic = benchmark(
        ablations.reside_matrix_traffic, 9216, 9216, 9216, 128, 256, 768
    )
    show(ablations.render_reside_matrix())
    assert min(traffic, key=traffic.get) == "B (paper)"


def test_register_tile_sweep(benchmark, show):
    rows = benchmark(ablations.register_tile_throughput)
    show(ablations.render_register_tiles())
    feasible = {(t.r_m, t.r_n) for t in rows if t.feasible}
    assert (4, 4) in feasible and (1, 16) not in feasible


def test_split_sweep(benchmark, show):
    rows = benchmark(ablations.bk_bn_split_sweep)
    show(ablations.render_split_sweep())
    assert max(rows, key=lambda r: r[3])[0] == 2.0


def test_double_buffer_ldm(benchmark, show):
    rows = benchmark(ablations.double_buffer_ldm)
    show(ablations.render_double_buffer_ldm())
    by_pn = {r[0]: r for r in rows}
    assert by_pn[48][4] is False and by_pn[32][4] is True
