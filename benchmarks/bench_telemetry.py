"""Overhead of the continuous telemetry pipeline on the serving path.

Not a paper artifact — this measures the *observability tax*: the same
request wave is served with the 10 ms :class:`~repro.obs.MetricsSampler`
(plus alert evaluation) on and off, and the per-wave wall-clock p50s are
compared.  The sampler runs on its own thread and only reads counters,
so the serving path should not notice it; the acceptance target is
<= 2% p50 overhead.

Wall-clock ratios on shared CI hosts are noisy, so the smoke gate is
deliberately lenient: reps are interleaved on/off to cancel drift, the
headline number is the p50 ratio, and only an overhead beyond
:data:`OVERHEAD_FAIL` (far above any plausible sampler cost) fails the
run; anything between :data:`OVERHEAD_TARGET` and the gate prints a
warning.  The pytest entry points only check functional invariants
(zero sampler errors, zero drops) and report the ratio.

Runnable standalone (used by CI)::

    PYTHONPATH=src python benchmarks/bench_telemetry.py --smoke
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import time

import numpy as np
import pytest

from repro.core.params import BlockingParams
from repro.serve import LoadGenerator, ReproServer, ServeConfig

PARAMS = BlockingParams.small(double_buffered=True)

REQUESTS = 24
CONCURRENCY = 8
REPS = 5
SAMPLER_PERIOD = 0.01

#: acceptance target from the telemetry design: the sampler thread
#: should cost at most this fraction of serving p50.
OVERHEAD_TARGET = 0.02
#: hard smoke gate, set far above the target so host noise cannot
#: fail CI while a real regression (sampling in the request path,
#: lock contention on the registry) still would.
OVERHEAD_FAIL = 0.25


def _config(sampling: bool) -> ServeConfig:
    return ServeConfig(
        window_seconds=0.005,
        max_batch_size=8,
        sampler_period_seconds=SAMPLER_PERIOD if sampling else None,
        alerts=sampling,
    )


async def _one_wave(sampling: bool, seed: int) -> tuple[float, int]:
    """Serve one wave; returns (wall seconds, sampler sample count)."""
    generator = LoadGenerator(seed=seed, params=PARAMS)
    requests = generator.generate(REQUESTS)
    async with ReproServer(
        config=_config(sampling), params=PARAMS, n_core_groups=2
    ) as server:
        start = time.perf_counter()
        results = await generator.run(
            server, requests, concurrency=CONCURRENCY
        )
        elapsed = time.perf_counter() - start
        if not all(r.ok for r in results):
            raise AssertionError("telemetry bench wave dropped requests")
        sampler = server.sampler
    if sampling:
        if sampler is None or sampler.errors:
            raise AssertionError("sampler must run cleanly when enabled")
        return elapsed, sampler.samples
    return elapsed, 0


def measure(reps: int = REPS) -> dict:
    """Interleaved on/off reps -> p50 and best-of wall-clock ratio."""
    on: list[float] = []
    off: list[float] = []
    samples = 0
    asyncio.run(_one_wave(False, seed=99))  # warmup: numpy/import costs
    for rep in range(reps):
        # interleave and alternate order per rep so thermal/load drift
        # and any order bias hit both arms equally.
        arms = [False, True] if rep % 2 == 0 else [True, False]
        for sampling in arms:
            elapsed, n = asyncio.run(_one_wave(sampling, seed=rep))
            if sampling:
                on.append(elapsed)
                samples += n
            else:
                off.append(elapsed)
    p50_on = float(np.percentile(on, 50))
    p50_off = float(np.percentile(off, 50))
    return {
        "requests": REQUESTS,
        "reps": reps,
        "sampler_period_seconds": SAMPLER_PERIOD,
        "sampler_samples": samples,
        "p50_on_seconds": p50_on,
        "p50_off_seconds": p50_off,
        "p50_overhead": p50_on / p50_off - 1.0,
        "best_overhead": min(on) / min(off) - 1.0,
    }


@pytest.mark.benchmark(group="telemetry")
def test_sampler_overhead_is_small(show):
    record = measure(reps=3)
    show(
        f"sampler overhead: p50 {record['p50_overhead']:+.1%}, "
        f"best-of {record['best_overhead']:+.1%} "
        f"({record['sampler_samples']} samples)"
    )
    # functional gate only: wall-clock ratios are advisory under pytest.
    assert record["sampler_samples"] > 0
    assert record["p50_overhead"] < OVERHEAD_FAIL


def test_sampler_sees_serving_counters(show):
    async def scenario():
        generator = LoadGenerator(seed=0, params=PARAMS)
        async with ReproServer(
            config=_config(True), params=PARAMS, n_core_groups=2
        ) as server:
            await generator.run(
                server, generator.generate(8), concurrency=4
            )
            sampler = server.sampler
        points = sampler.series("serve.completed").points()
        assert points[0][1] == 0.0 and points[-1][1] == 8.0
        return sampler.samples

    samples = asyncio.run(scenario())
    show(f"sampler recorded {samples} samples during the wave")


def smoke() -> int:
    record = measure()
    overhead = record["p50_overhead"]
    best = record["best_overhead"]
    print(
        f"telemetry smoke: {record['reps']} reps x {REQUESTS} requests, "
        f"{record['sampler_samples']} samples at "
        f"{SAMPLER_PERIOD * 1e3:.0f} ms: p50 "
        f"{record['p50_off_seconds'] * 1e3:.1f} -> "
        f"{record['p50_on_seconds'] * 1e3:.1f} ms "
        f"({overhead:+.1%} p50, {best:+.1%} best-of)"
    )
    if overhead > OVERHEAD_FAIL and best > OVERHEAD_FAIL:
        print(
            f"telemetry smoke FAIL: sampler overhead {overhead:.1%} "
            f"exceeds the {OVERHEAD_FAIL:.0%} gate",
            file=sys.stderr,
        )
        return 1
    if overhead > OVERHEAD_TARGET:
        print(
            f"telemetry smoke WARN: p50 overhead {overhead:+.1%} above "
            f"the {OVERHEAD_TARGET:.0%} target (best-of {best:+.1%}); "
            "likely host noise"
        )
    else:
        print(
            f"telemetry smoke OK: sampler overhead within the "
            f"{OVERHEAD_TARGET:.0%} p50 target"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the CI overhead gate and exit",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return smoke()
    parser.print_help()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
