"""A7 ablation + SIMT executor benches."""

import numpy as np

from repro.arch.core_group import CoreGroup
from repro.core.params import BlockingParams
from repro.core.variants.cannon import CannonVariant
from repro.experiments import ablations
from repro.workloads.matrices import gemm_operands

PARAMS = BlockingParams.small(double_buffered=False)


def test_cannon_ablation(benchmark, show):
    data = benchmark(ablations.cannon_comparison)
    show(ablations.render_cannon())
    assert data["kernel_slowdown"] > 1.2


def test_cannon_functional_block(benchmark):
    """Throughput of the functional Cannon variant on one CG block."""
    m, n, k = PARAMS.b_m, PARAMS.b_n, PARAMS.b_k
    a, b, c = gemm_operands(m, n, k, seed=1)

    def run():
        cg = CoreGroup()
        ha, hb, hc = (cg.memory.store(x, arr) for x, arr in zip("ABC", (a, b, c)))
        CannonVariant().run(cg, ha, hb, hc, params=PARAMS)
        return cg.memory.read(hc)

    out = benchmark(run)
    assert np.isfinite(out).all()


def test_simt_lockstep_throughput(benchmark):
    """64-coroutine lockstep barrier machinery, 100 generations."""
    from repro.sim.simt import BARRIER, run_lockstep

    def worker():
        total = 0
        for step in range(100):
            total += step
            yield BARRIER
        return total

    def run():
        return run_lockstep([worker() for _ in range(64)])

    results = benchmark(run)
    assert all(v == 4950 for v in results.values())
