#!/usr/bin/env python3
"""Validate OpenMetrics text scrapes emitted by ``repro.obs.promexp``.

Checks the exposition-format invariants a Prometheus scraper relies
on, plus the repo's own telemetry contracts:

- every sample line parses as ``name[{labels}] value`` with a legal
  metric name (``[a-zA-Z_:][a-zA-Z0-9_:]*``) and a finite value;
- every sample belongs to a family declared by a preceding ``# TYPE``
  line, each family is declared exactly once, and the declared type
  matches the sample shape: ``counter`` samples end in ``_total`` and
  are non-negative, ``histogram`` samples are ``_bucket``/``_sum``/
  ``_count``;
- per histogram series (one label set): bucket counts are cumulative
  (non-decreasing as ``le`` grows), the ``le`` bounds are strictly
  increasing and end with ``+Inf``, and the ``+Inf`` bucket equals the
  series' ``_count`` — the exact-count invariant of
  :class:`repro.obs.histogram.LatencyHistogram`;
- the scrape ends with the mandatory ``# EOF`` terminator.

Given **two** scrape files (taken from the same process, second one
later), additionally checks that every ``counter`` sample present in
both is monotonically non-decreasing.

Run standalone (CI does, on the ``repro-dgemm serve --smoke``
scrapes)::

    python tools/check_metrics.py scrape1.prom [scrape2.prom]

Exits 0 when valid, 1 with one line per violation otherwise.  The
test suite imports :func:`validate_text` and :func:`compare_scrapes`
directly.
"""

from __future__ import annotations

import math
import re
import sys
from pathlib import Path

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$"
)
_TYPES = frozenset({"counter", "gauge", "histogram"})


def _parse_value(text: str) -> float | None:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    try:
        return float(text)
    except ValueError:
        return None


def _family_of(name: str) -> tuple[str, str]:
    """Split a sample name into (family, suffix) per OpenMetrics rules."""
    for suffix in ("_total", "_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)], suffix
    return name, ""


def _label_value(labels: str, key: str) -> str | None:
    match = re.search(rf'{key}="((?:[^"\\]|\\.)*)"', labels)
    return match.group(1) if match else None


def parse_samples(text: str) -> dict[str, float]:
    """Every unlabelled sample of a scrape as ``{name: value}``.

    Labelled samples (histogram buckets) are skipped — this is the
    parse the cross-scrape counter monotonicity check runs on.
    """
    out: dict[str, float] = {}
    for line in text.splitlines():
        if line.startswith("#") or not line.strip():
            continue
        match = _SAMPLE_RE.match(line)
        if match is None or match.group("labels") is not None:
            continue
        value = _parse_value(match.group("value"))
        if value is not None:
            out[match.group("name")] = value
    return out


def _check_histogram_series(
    family: str,
    label_set: str,
    buckets: list[tuple[float, float]],
    count: float | None,
    errors: list[str],
) -> None:
    where = f"histogram {family}" + (f"{{{label_set}}}" if label_set else "")
    if not buckets:
        errors.append(f"{where}: has _sum/_count but no _bucket samples")
        return
    bounds = [b for b, _ in buckets]
    if bounds != sorted(bounds) or len(set(bounds)) != len(bounds):
        errors.append(f"{where}: le bounds are not strictly increasing")
    if not math.isinf(bounds[-1]):
        errors.append(f"{where}: last bucket must be le=\"+Inf\"")
    counts = [c for _, c in buckets]
    if any(b > a for b, a in zip(counts, counts[1:])):
        errors.append(f"{where}: bucket counts are not cumulative")
    if count is None:
        errors.append(f"{where}: missing _count sample")
    elif counts and counts[-1] != count:
        errors.append(
            f"{where}: +Inf bucket {counts[-1]:g} != _count {count:g} "
            "(exact-count invariant)"
        )


def validate_text(text: str) -> list[str]:
    """Return every violation found in one OpenMetrics scrape."""
    errors: list[str] = []
    lines = text.splitlines()
    if not lines or lines[-1].strip() != "# EOF":
        errors.append("scrape does not end with the # EOF terminator")
    types: dict[str, str] = {}
    #: histogram state: (family, label_set) -> ([(le, count)], _count)
    hist_buckets: dict[tuple[str, str], list[tuple[float, float]]] = {}
    hist_counts: dict[tuple[str, str], float] = {}
    hist_sums: set[tuple[str, str]] = set()
    samples_seen = 0

    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 2 and parts[1] == "EOF":
                if lineno != len(lines):
                    errors.append(f"line {lineno}: # EOF before end of scrape")
                continue
            if len(parts) != 4 or parts[1] != "TYPE":
                errors.append(f"line {lineno}: malformed comment {line!r}")
                continue
            _, _, family, mtype = parts
            if not _NAME_RE.match(family):
                errors.append(f"line {lineno}: bad family name {family!r}")
            if mtype not in _TYPES:
                errors.append(
                    f"line {lineno}: unknown type {mtype!r} for {family}"
                )
            if family in types:
                errors.append(f"line {lineno}: duplicate TYPE for {family}")
            types[family] = mtype
            continue

        match = _SAMPLE_RE.match(line)
        if match is None:
            errors.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        samples_seen += 1
        name = match.group("name")
        labels = match.group("labels") or ""
        value = _parse_value(match.group("value"))
        if value is None or math.isnan(value):
            errors.append(
                f"line {lineno}: {name}: bad value {match.group('value')!r}"
            )
            continue
        family, suffix = _family_of(name)
        mtype = types.get(family)
        if mtype is None and suffix:
            # "_total" etc. may be part of the metric name proper for a
            # gauge; retry against the undivided name.
            family, suffix, mtype = name, "", types.get(name)
        if mtype is None:
            errors.append(
                f"line {lineno}: sample {name} has no preceding # TYPE"
            )
            continue
        if mtype == "counter":
            if suffix != "_total":
                errors.append(
                    f"line {lineno}: counter sample {name} must use the "
                    "_total suffix"
                )
            if value < 0:
                errors.append(
                    f"line {lineno}: counter {name} is negative ({value:g})"
                )
        elif mtype == "histogram":
            key = (family, labels and _strip_le(labels))
            if suffix == "_bucket":
                le_text = _label_value(labels, "le")
                le = _parse_value(le_text) if le_text is not None else None
                if le is None:
                    errors.append(
                        f"line {lineno}: histogram bucket without a "
                        f"parseable le label: {line!r}"
                    )
                    continue
                hist_buckets.setdefault(key, []).append((le, value))
            elif suffix == "_count":
                hist_counts[key] = value
            elif suffix == "_sum":
                hist_sums.add(key)
            else:
                errors.append(
                    f"line {lineno}: sample {name} is not a histogram "
                    "sample shape (_bucket/_sum/_count)"
                )

    for key, buckets in hist_buckets.items():
        family, label_set = key
        _check_histogram_series(
            family, label_set, buckets, hist_counts.get(key), errors
        )
        if key not in hist_sums:
            errors.append(
                f"histogram {family}"
                + (f"{{{label_set}}}" if label_set else "")
                + ": missing _sum sample"
            )
    for key in set(hist_counts) - set(hist_buckets):
        family, label_set = key
        _check_histogram_series(
            family, label_set, [], hist_counts.get(key), errors
        )

    if samples_seen == 0:
        errors.append("scrape contains no samples")
    return errors


def _strip_le(labels: str) -> str:
    """The label set identifying one histogram series (le removed)."""
    parts = [
        p for p in labels.split(",")
        if p and not p.lstrip().startswith("le=")
    ]
    return ",".join(parts)


def compare_scrapes(first: str, second: str) -> list[str]:
    """Violations of counter monotonicity between two ordered scrapes."""
    counter_families = {
        line.split()[2]
        for line in second.splitlines()
        if line.startswith("# TYPE ") and line.rstrip().endswith(" counter")
    }
    before = parse_samples(first)
    after = parse_samples(second)
    errors: list[str] = []
    for name in sorted(set(before) & set(after)):
        family, suffix = _family_of(name)
        if suffix != "_total" or family not in counter_families:
            continue
        if after[name] < before[name]:
            errors.append(
                f"counter {name} decreased between scrapes: "
                f"{before[name]:g} -> {after[name]:g}"
            )
    return errors


def main(argv: list[str]) -> int:
    if len(argv) not in (2, 3):
        print(
            f"usage: {Path(argv[0]).name} SCRAPE [SECOND_SCRAPE]",
            file=sys.stderr,
        )
        return 2
    texts: list[str] = []
    for arg in argv[1:]:
        path = Path(arg)
        try:
            texts.append(path.read_text(encoding="utf-8"))
        except OSError as exc:
            print(f"{path}: unreadable scrape: {exc}", file=sys.stderr)
            return 1
    failed = False
    for arg, text in zip(argv[1:], texts):
        errors = validate_text(text)
        for error in errors:
            print(f"{arg}: {error}", file=sys.stderr)
        if errors:
            failed = True
        else:
            n = len(parse_samples(text))
            print(f"{arg}: OK ({n} unlabelled samples)")
    if len(texts) == 2 and not failed:
        errors = compare_scrapes(texts[0], texts[1])
        for error in errors:
            print(f"{argv[2]}: {error}", file=sys.stderr)
        if errors:
            failed = True
        else:
            print(f"{argv[2]}: counters monotonic vs {argv[1]}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
