#!/usr/bin/env python3
"""Validate a committed ``TUNED.json`` learned-blocking table.

Checks the contracts :class:`repro.tuning.table.TuningTable` promises
its consumers (``Session``/``CGScheduler`` resolve blocking from this
file when the caller gives none):

- the document parses and carries the expected schema ``version`` and
  a positive ``ldm_doubles`` budget matching the architecture spec;
- every entry names a known variant, a known engine, a power-of-two
  shape bin, and blocking factors that are **LDM-feasible**: the entry
  reconstructs as :class:`~repro.core.params.BlockingParams` and
  passes ``validate(spec)`` against the table's own LDM budget, with
  the buffering regime the variant's traits require;
- entry keys ``(variant, engine, bin)`` are unique (the loader also
  enforces this — the check catches hand-edited duplicates early);
- measured/modeled Gflop/s figures are finite and positive, and the
  recorded ``estimator_rank`` is sane: non-negative, and the entry's
  blocking actually appears in the analytic estimator's candidate
  ranking at that position (``--no-rank`` skips the recompute).

Run standalone (CI does, on the committed table)::

    python tools/check_tuning_table.py TUNED.json

Exits 0 when valid, 1 with one line per violation otherwise.  The
test suite imports :func:`validate_table` and :func:`validate_dict`
directly.
"""

from __future__ import annotations

import json
import math
import sys
from pathlib import Path

REPO_SRC = Path(__file__).resolve().parent.parent / "src"
if str(REPO_SRC) not in sys.path:  # pragma: no cover - direct invocation
    sys.path.insert(0, str(REPO_SRC))

from repro.arch.config import SW26010Spec  # noqa: E402
from repro.core.params import BlockingParams  # noqa: E402
from repro.core.variants import VARIANTS, get_variant  # noqa: E402
from repro.errors import ReproError  # noqa: E402
from repro.tuning import TABLE_VERSION, TuningTable, autotune  # noqa: E402

_ENGINES = frozenset({"device", "stepwise", "vectorized"})


def _is_pow2(value: int) -> bool:
    return value >= 1 and (value & (value - 1)) == 0


def validate_dict(doc: object) -> list[str]:
    """Schema-level violations of a raw JSON document."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        return [f"document must be a JSON object, got {type(doc).__name__}"]
    version = doc.get("version")
    if version != TABLE_VERSION:
        errors.append(
            f"version must be {TABLE_VERSION}, got {version!r}"
        )
    ldm = doc.get("ldm_doubles")
    if not isinstance(ldm, int) or ldm <= 0:
        errors.append(f"ldm_doubles must be a positive int, got {ldm!r}")
    elif ldm != SW26010Spec().ldm_doubles:
        errors.append(
            f"ldm_doubles {ldm} does not match the architecture spec's "
            f"{SW26010Spec().ldm_doubles}"
        )
    entries = doc.get("entries")
    if not isinstance(entries, list):
        errors.append(
            f"entries must be a list, got {type(entries).__name__}"
        )
        return errors
    seen: set[tuple[str, str, tuple[int, int, int]]] = set()
    for idx, raw in enumerate(entries):
        where = f"entry {idx}"
        if not isinstance(raw, dict):
            errors.append(f"{where}: must be an object")
            continue
        variant = str(raw.get("variant", "")).upper()
        if variant not in VARIANTS:
            errors.append(f"{where}: unknown variant {raw.get('variant')!r}")
        engine = raw.get("engine")
        if engine not in _ENGINES:
            errors.append(f"{where}: unknown engine {engine!r}")
        bin_shape = raw.get("bin")
        if (
            not isinstance(bin_shape, list)
            or len(bin_shape) != 3
            or not all(isinstance(d, int) for d in bin_shape)
        ):
            errors.append(f"{where}: bin must be [m, n, k] ints")
        elif not all(_is_pow2(d) for d in bin_shape):
            errors.append(
                f"{where}: bin {tuple(bin_shape)} dims must be powers "
                "of two"
            )
        elif variant in VARIANTS and engine in _ENGINES:
            key = (variant, str(engine), tuple(bin_shape))
            if key in seen:
                errors.append(f"{where}: duplicate key {key}")
            seen.add(key)
        for field in ("measured_gflops", "modeled_gflops"):
            value = raw.get(field)
            if (
                not isinstance(value, (int, float))
                or not math.isfinite(value)
                or value <= 0
            ):
                errors.append(
                    f"{where}: {field} must be finite and positive, "
                    f"got {value!r}"
                )
        rank = raw.get("estimator_rank")
        if not isinstance(rank, int) or rank < 0:
            errors.append(
                f"{where}: estimator_rank must be a non-negative int, "
                f"got {rank!r}"
            )
    return errors


def validate_table(table: TuningTable, *, check_rank: bool = True) -> list[str]:
    """Semantic violations of a loaded table.

    ``check_rank`` recomputes the estimator ranking per entry (a few
    hundred candidate evaluations each) — skip it for quick checks.
    """
    errors: list[str] = []
    spec = SW26010Spec()
    for entry in table.entries:
        where = f"entry ({entry.variant}, {entry.engine}, {entry.bin})"
        try:
            params = entry.params()
            params.validate(spec)
        except ReproError as exc:
            errors.append(f"{where}: LDM-infeasible blocking: {exc}")
            continue
        traits = get_variant(entry.variant).traits
        if traits.shared and params.double_buffered != traits.double_buffered:
            regime = "double" if traits.double_buffered else "single"
            errors.append(
                f"{where}: variant {entry.variant} requires "
                f"{regime}-buffered blocking"
            )
        if params.ldm_doubles_per_cpe > table.ldm_doubles:
            errors.append(
                f"{where}: blocking needs "
                f"{params.ldm_doubles_per_cpe} doubles/CPE, over the "
                f"table's {table.ldm_doubles} budget"
            )
        if not check_rank:
            continue
        # same full ranking the tuner recorded the rank against
        result = autotune(*entry.bin, variant=entry.variant, top=10_000)
        try:
            rank = result.rank_of(params)
        except KeyError:
            rank = len(result.candidates)
        if rank != entry.estimator_rank:
            errors.append(
                f"{where}: recorded estimator_rank "
                f"{entry.estimator_rank} != recomputed {rank}"
            )
    return errors


def main(argv: list[str]) -> int:
    args = [a for a in argv[1:] if a != "--no-rank"]
    check_rank = "--no-rank" not in argv
    if len(args) != 1:
        print(
            f"usage: {Path(argv[0]).name} [--no-rank] TUNED.json",
            file=sys.stderr,
        )
        return 2
    path = Path(args[0])
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        print(f"{path}: unreadable table: {exc}", file=sys.stderr)
        return 1
    except json.JSONDecodeError as exc:
        print(f"{path}: not valid JSON: {exc}", file=sys.stderr)
        return 1
    errors = validate_dict(doc)
    if not errors:
        try:
            table = TuningTable.from_dict(doc)
        except ReproError as exc:
            errors = [str(exc)]
        else:
            errors = validate_table(table, check_rank=check_rank)
    for error in errors:
        print(f"{path}: {error}", file=sys.stderr)
    if errors:
        return 1
    n = len(doc.get("entries", []))
    print(f"{path}: OK ({n} entries)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
