#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file emitted by ``repro.obs``.

Checks the invariants Perfetto (and our own exporters) rely on:

- the payload is an object with a ``traceEvents`` list;
- every event has a ``ph`` we emit (``X`` complete events, ``M``
  metadata) plus ``name``/``pid``/``tid``, and ``X`` events carry
  finite non-negative ``ts``/``dur`` microseconds;
- within each ``(pid, tid)`` track, complete events are **strictly
  nested** — a child interval lies inside its parent, never partially
  overlapping (the tracer's open-span stack guarantees this; the
  check catches exporter regressions);
- counter deltas under ``args.counters`` are numeric.

Run standalone (CI does, on the ``repro-dgemm trace --smoke`` output)::

    python tools/check_trace.py trace.json

Exits 0 when valid, 1 with one line per violation otherwise.  The
test suite imports :func:`validate_payload` directly.
"""

from __future__ import annotations

import json
import math
import sys
from pathlib import Path

#: tolerance for float microsecond round-off in nesting comparisons.
EPS_US = 1e-6


def _check_event(idx: int, event, errors: list[str]) -> None:
    if not isinstance(event, dict):
        errors.append(f"event {idx}: not an object")
        return
    ph = event.get("ph")
    if ph not in ("X", "M"):
        errors.append(f"event {idx}: unsupported ph {ph!r} (expected X or M)")
        return
    if not isinstance(event.get("name"), str) or not event["name"]:
        errors.append(f"event {idx}: missing or empty name")
    for key in ("pid", "tid"):
        if not isinstance(event.get(key), int):
            errors.append(f"event {idx}: {key} must be an int")
    if ph != "X":
        return
    for key in ("ts", "dur"):
        value = event.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool) \
                or not math.isfinite(value) or value < 0:
            errors.append(
                f"event {idx}: {key} must be a finite non-negative number, "
                f"got {value!r}"
            )
    counters = event.get("args", {}).get("counters")
    if counters is not None:
        if not isinstance(counters, dict):
            errors.append(f"event {idx}: args.counters must be an object")
        else:
            for name, value in counters.items():
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    errors.append(
                        f"event {idx}: counter {name!r} is non-numeric "
                        f"({value!r})"
                    )


def _check_nesting(events, errors: list[str]) -> None:
    """Per track: every pair of X events is disjoint or fully nested."""
    tracks: dict = {}
    for idx, event in enumerate(events):
        if isinstance(event, dict) and event.get("ph") == "X":
            try:
                start = float(event["ts"])
                end = start + float(event["dur"])
            except (KeyError, TypeError, ValueError):
                continue  # already reported by _check_event
            key = (event.get("pid"), event.get("tid"))
            tracks.setdefault(key, []).append((start, end, idx,
                                               event.get("name")))
    for (pid, tid), spans in tracks.items():
        # sort by start, longest first so a parent precedes its children
        spans.sort(key=lambda s: (s[0], -s[1]))
        stack: list = []
        for start, end, idx, name in spans:
            while stack and start >= stack[-1][1] - EPS_US:
                stack.pop()
            if stack and end > stack[-1][1] + EPS_US:
                top = stack[-1]
                errors.append(
                    f"track pid={pid} tid={tid}: event {idx} ({name!r}, "
                    f"[{start:.3f}, {end:.3f}] us) partially overlaps "
                    f"event {top[2]} ({top[3]!r}, ends {top[1]:.3f} us) — "
                    "spans must be strictly nested"
                )
                continue
            stack.append((start, end, idx, name))


def validate_payload(payload) -> list[str]:
    """Return every violation found in a parsed trace payload."""
    if not isinstance(payload, dict):
        return ["top level: expected an object with a traceEvents list"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["top level: traceEvents must be a list"]
    errors: list[str] = []
    if not any(isinstance(e, dict) and e.get("ph") == "X" for e in events):
        errors.append("traceEvents contains no complete (ph=X) events")
    for idx, event in enumerate(events):
        _check_event(idx, event, errors)
    _check_nesting(events, errors)
    return errors


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(f"usage: {Path(argv[0]).name} TRACE_JSON", file=sys.stderr)
        return 2
    path = Path(argv[1])
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"{path}: unreadable trace: {exc}", file=sys.stderr)
        return 1
    errors = validate_payload(payload)
    for error in errors:
        print(f"{path}: {error}", file=sys.stderr)
    if errors:
        return 1
    n_complete = sum(1 for e in payload["traceEvents"] if e.get("ph") == "X")
    print(f"{path}: OK ({n_complete} spans, strictly nested per track)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
