#!/usr/bin/env python
"""Smoke-check the resilience contracts of the Session/scheduler stack.

Run as ``PYTHONPATH=src python tools/check_resilience.py``.  Injects
faults into scheduled batches and verifies the guarantees the
resilience layer (``repro.resil``) makes contractual:

1. **bit-exact recovery** — any single injected fault, at any site,
   with retries enabled, yields a batch whose every output is
   *bit-identical* (``np.array_equal``) to the fault-free run;
2. **no silent wrong answers** — with retries disabled and no fallback,
   an injected fault surfaces as a structured per-item error
   (``ItemError`` + ``FaultReport(recovered=False)``) with a ``None``
   output slot; the undisturbed items still match the fault-free run
   bit-exactly;
3. **quarantine** — a whole-CG fault removes that CG for the rest of
   the run, its queue respills to healthy CGs, results stay bit-exact,
   and load-balance statistics count healthy CGs only;
4. **total quarantine degrades loudly** — when every CG is
   quarantined, remaining items report ``QuarantineError``; nothing is
   silently dropped or wrong;
5. **determinism** — the same (specs, seed, workload) replays the
   identical fault schedule and the identical recovery trajectory;
6. **no leaks under chaos** — after a faulted pool run (recovered or
   exhausted items alike), every CG's ``used_bytes`` is back at its
   pre-run baseline.

Exits non-zero with a diagnostic on the first violation, so CI can run
it alongside the unit suite as a fast end-to-end guard.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.core.params import BlockingParams
from repro.core.session import Session
from repro.multi.processor import SW26010Processor
from repro.resil import FAULT_SITES, FaultInjector, FaultSpec, RetryPolicy
from repro.workloads.matrices import mixed_batch

PARAMS = BlockingParams.small(double_buffered=True)
N_ITEMS = 6

_failures: list[str] = []


def check(condition: bool, message: str) -> None:
    status = "ok" if condition else "FAIL"
    print(f"  [{status}] {message}")
    if not condition:
        _failures.append(message)


def run_batch(items, **session_kwargs):
    with Session(params=PARAMS, **session_kwargs) as session:
        result = session.batch(items)
        stats = session.resil_stats()
    return result, stats


def bit_identical(outputs, reference) -> bool:
    return all(
        out is not None and np.array_equal(out, ref)
        for out, ref in zip(outputs, reference)
    )


def main() -> int:
    items = mixed_batch(N_ITEMS, params=PARAMS, seed=0)
    baseline, _ = run_batch(items, n_core_groups=4)
    if not baseline.ok:
        print("fault-free baseline failed; aborting")
        return 1
    reference = baseline.outputs

    print("single fault at every site, retries on -> bit-exact recovery:")
    for site in FAULT_SITES:
        injector = FaultInjector([FaultSpec(site, nth=2)])
        result, stats = run_batch(items, n_core_groups=4, injector=injector)
        fired = injector.stats.injected == 1
        check(fired and result.ok and bit_identical(result.outputs, reference),
              f"{site}: fault injected, batch ok, outputs bit-identical")
        disturbed = result.fault_reports
        check(len(disturbed) == 1 and disturbed[0].recovered
              and disturbed[0].site == site,
              f"{site}: exactly one FaultReport, recovered, site attributed")

    print("retries disabled, no fallback -> structured error, no wrong answer:")
    injector = FaultInjector([FaultSpec("compute", nth=2)])
    result, stats = run_batch(items, n_core_groups=4, injector=injector,
                              retry_policy=None, fallback_engine=None)
    check(len(result.errors) == 1
          and result.errors[0].kind == "FaultInjectedError",
          "faulted item carries a structured FaultInjectedError")
    failed = result.errors[0].index
    check(result.outputs[failed] is None, "failed item's output slot is None")
    report = result.fault_reports[0]
    check(not report.recovered and report.index == failed
          and report.error_kind == "FaultInjectedError",
          "FaultReport records the exhausted ladder")
    check(all(np.array_equal(out, reference[i])
              for i, out in enumerate(result.outputs) if out is not None),
          "every produced output is bit-identical to the fault-free run")

    print("whole-CG fault -> quarantine, respill, healthy-only stats:")
    for target in (0, 2):
        injector = FaultInjector([FaultSpec("cg", nth=1, cg=target)])
        result, stats = run_batch(items, n_core_groups=4, injector=injector)
        check(result.ok and bit_identical(result.outputs, reference),
              f"CG{target} quarantined: batch ok, outputs bit-identical")
        check(result.quarantined == (target,)
              and result.healthy_core_groups == 3,
              f"CG{target} quarantined: result reports it, 3 healthy")
        check(result.per_cg[target].items == 0,
              f"CG{target} quarantined: ran no items")
        check(stats["quarantines"] == 1 and stats["respilled"] >= 1,
              f"CG{target} quarantined: respill accounted")

    print("every CG quarantined -> QuarantineError per item, nothing silent:")
    injector = FaultInjector([FaultSpec("cg", probability=1.0)])
    result, stats = run_batch(items, n_core_groups=2, injector=injector)
    check(result.healthy_core_groups == 0, "no healthy CG remains")
    check(len(result.errors) == len(items)
          and all(e.kind == "QuarantineError" for e in result.errors),
          "every item reports QuarantineError")
    check(all(out is None for out in result.outputs),
          "no output produced without a healthy CG")

    print("determinism: identical (specs, seed, workload) replays exactly:")
    def trajectory():
        injector = FaultInjector(
            [FaultSpec("dma.get", probability=0.02),
             FaultSpec("compute", probability=0.01)],
            seed=42,
        )
        result, stats = run_batch(items, n_core_groups=4, injector=injector)
        return (injector.stats.as_dict(), stats,
                tuple((r.index, r.site, r.attempts, r.recovered)
                      for r in result.fault_reports))
    check(trajectory() == trajectory(),
          "two runs produce identical injection stats and fault reports")

    print("no leaks under chaos: byte budgets return to baseline:")
    proc = SW26010Processor()
    baselines = [proc.cg(g).memory.used_bytes for g in range(4)]
    injector = FaultInjector(
        [FaultSpec("dma.put", nth=2), FaultSpec("cg", nth=1, cg=1)]
    )
    result, _ = run_batch(items, processor=proc, n_core_groups=4,
                          injector=injector)
    check(result.ok, "faulted pool run completed")
    check([proc.cg(g).memory.used_bytes for g in range(4)] == baselines,
          "all four CG byte budgets back to baseline after recovery")
    injector = FaultInjector([FaultSpec("compute", probability=1.0)])
    result, _ = run_batch(items, processor=proc, n_core_groups=4,
                          injector=injector,
                          retry_policy=RetryPolicy(max_retries=1),
                          fallback_engine=None)
    check(not result.ok, "persistent fault exhausts the ladder")
    check([proc.cg(g).memory.used_bytes for g in range(4)] == baselines,
          "byte budgets back to baseline after exhausted items")

    if _failures:
        print(f"\n{len(_failures)} resilience violation(s)")
        return 1
    print("\nall resilience contracts hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
