#!/usr/bin/env python
"""Smoke-check the staging lifecycle invariants on a shared CoreGroup.

Run as ``PYTHONPATH=src python tools/check_memory_invariants.py``.
Exercises dgemm and dgemm_batch against one device and verifies the
guarantees the ExecutionContext refactor made contractual:

1. used_bytes returns exactly to its pre-call value,
2. no staging handles survive a call (including a failing one),
3. a same-shape batch allocates each operand slot once and restages
   the rest in place,
4. the multi-CG pool (CGScheduler / dgemm_multi_cg / Session) returns
   **every** core group's used_bytes to its pre-run baseline — with and
   without a failing item in the batch,
5. fault-injected runs (retries, engine fallback, CG quarantine,
   exhausted items) leak nothing either: every failed or re-run
   attempt restages from the host arrays and frees on exit, so the
   byte budgets return to baseline however the recovery ladder ends.

6. the execution-plan cache keeps its resident bytes within the
   LDM-derived budget while in use (evicting LRU signatures when a
   tiny budget forces it) and drains to zero plans / zero bytes on
   ``Session.close()`` / ``CGScheduler.close()``.

The single-CG checks run under **all three execution engines** (device,
vectorized and stepwise): staging is engine-independent, so the
lifecycle guarantees must hold identically whichever engine executes
the multiply.

Exits non-zero with a diagnostic on the first violation, so CI can run
it alongside the unit suite as a fast end-to-end guard.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.arch.core_group import CoreGroup
from repro.api import GemmRequest
from repro.core.batch import dgemm_batch
from repro.core.api import dgemm
from repro.core.params import BlockingParams
from repro.core.session import Session
from repro.multi.dgemm4 import dgemm_multi_cg
from repro.multi.processor import SW26010Processor
from repro.multi.scheduler import CGScheduler
from repro.workloads.matrices import gemm_operands, mixed_batch

PARAMS = BlockingParams.small(double_buffered=True)

_failures: list[str] = []


def check(condition: bool, message: str) -> None:
    status = "ok" if condition else "FAIL"
    print(f"  [{status}] {message}")
    if not condition:
        _failures.append(message)


def main() -> int:
    cg = CoreGroup()
    cg.memory.store("user.resident", np.ones((16, 16)))
    baseline = cg.memory.used_bytes
    resident = sorted(h.name for h in cg.memory.handles())

    for engine in ("device", "vectorized", "stepwise"):
        print(f"single dgemm on a shared CoreGroup [{engine} engine]:")
        a, b, c = gemm_operands(PARAMS.b_m, PARAMS.b_n, PARAMS.b_k, seed=0)
        out = dgemm(a, b, c, beta=1.0, params=PARAMS, core_group=cg,
                    engine=engine)
        check(np.allclose(out, a @ b + c, rtol=1e-11, atol=1e-8),
              "result matches numpy")
        check(cg.memory.used_bytes == baseline, "used_bytes back to baseline")
        check(sorted(h.name for h in cg.memory.handles()) == resident,
              "handle set unchanged")

        print(f"odd-shape padded dgemm [{engine} engine]:")
        a2, b2, _ = gemm_operands(100, 30, 50, seed=1)
        dgemm(a2, b2, params=PARAMS, core_group=cg, pad=True, engine=engine)
        check(cg.memory.used_bytes == baseline, "used_bytes back to baseline")

        print(f"same-shape batch reuses staging allocations [{engine} engine]:")
        items = [
            GemmRequest(*gemm_operands(PARAMS.b_m, PARAMS.b_n, PARAMS.b_k,
                                     seed=s)[:2])
            for s in range(4)
        ]
        allocs_before = cg.memory.stats.allocations
        dgemm_batch(items, params=PARAMS, core_group=cg, engine=engine)
        new_allocs = cg.memory.stats.allocations - allocs_before
        check(new_allocs == 3,
              f"one allocation per operand slot (got {new_allocs}, want 3)")
        check(cg.memory.used_bytes == baseline, "used_bytes back to baseline")
        check(sorted(h.name for h in cg.memory.handles()) == resident,
              "handle set unchanged")

        print(f"failing call still frees its staging [{engine} engine]:")
        try:
            dgemm_batch([items[0], ("not", "an item")],  # type: ignore[list-item]
                        params=PARAMS, core_group=cg, engine=engine)
        except Exception:
            pass
        else:
            check(False, "malformed batch item raised")
        check(cg.memory.used_bytes == baseline,
              "used_bytes back to baseline after raise")

    print("multi-CG pool run restores every CG's baseline:")
    proc = SW26010Processor()
    proc.cg(2).memory.store("user.resident", np.ones((16, 16)))
    baselines = [proc.cg(g).memory.used_bytes for g in range(4)]
    scheduler = CGScheduler(proc, params=PARAMS)
    result = scheduler.run(mixed_batch(8, params=PARAMS, seed=0))
    check(result.ok, "pool run completed without item errors")
    check([proc.cg(g).memory.used_bytes for g in range(4)] == baselines,
          "all four CG byte budgets back to baseline")

    print("pool run with a failing item still restores baselines:")
    bad_items = mixed_batch(6, params=PARAMS, seed=1)
    bad_items[3] = GemmRequest(np.full_like(bad_items[3].a, np.nan),
                             bad_items[3].b)
    result = CGScheduler(proc, params=PARAMS, check=True).run(bad_items)
    check(len(result.errors) == 1 and result.errors[0].index == 3,
          "failure isolated to the offending item")
    check([proc.cg(g).memory.used_bytes for g in range(4)] == baselines,
          "all four CG byte budgets back to baseline after item failure")

    print("dgemm_multi_cg broadcast operands are freed:")
    a4, b4, _ = gemm_operands(2 * PARAMS.b_m, 4 * PARAMS.b_n, PARAMS.b_k,
                              seed=2)
    dgemm_multi_cg(a4, b4, params=PARAMS, processor=proc)
    check([proc.cg(g).memory.used_bytes for g in range(4)] == baselines,
          "all four CG byte budgets back to baseline")

    print("closing a Session frees its warm staging:")
    session = Session(processor=proc, params=PARAMS)
    session.dgemm(a, b)
    session.batch(mixed_batch(4, params=PARAMS, seed=3))
    session.close()
    check([proc.cg(g).memory.used_bytes for g in range(4)] == baselines,
          "all four CG byte budgets back to baseline after close()")

    print("plan cache stays within its LDM budget and drains on close():")
    plan_session = Session(processor=proc, params=PARAMS, engine="stepwise")
    plan_session.batch(mixed_batch(6, params=PARAMS, seed=5), parallel=True)
    stats = plan_session.plan_cache.stats()
    check(stats.builds >= 1, "stepwise batch compiled at least one plan")
    check(stats.bytes <= plan_session.plan_cache.max_bytes,
          f"resident plan bytes within the LDM budget "
          f"({stats.bytes} <= {plan_session.plan_cache.max_bytes})")
    plan_session.close()
    drained = plan_session.plan_cache.stats()
    check(drained.plans == 0 and drained.bytes == 0,
          "Session.close() drained the plan cache to zero plans / bytes")
    check([proc.cg(g).memory.used_bytes for g in range(4)] == baselines,
          "all four CG byte budgets back to baseline after stepwise close()")

    print("a starved plan-cache budget evicts instead of accumulating:")
    from repro.core.engine import PlanCache

    tiny = PlanCache(max_bytes=1)
    starved = CGScheduler(proc, params=PARAMS, engine="stepwise",
                          plan_cache=tiny)
    starved.run(mixed_batch(6, params=PARAMS, seed=6))
    stats = tiny.stats()
    check(stats.plans == 1,
          f"1-byte budget keeps a single resident plan (got {stats.plans})")
    check(stats.evictions >= 1,
          f"over-budget inserts evicted LRU plans (got {stats.evictions})")
    starved.close()
    drained = tiny.stats()
    check(drained.plans == 0 and drained.bytes == 0,
          "CGScheduler.close() drained the starved cache too")

    print("fault-injected pool runs restore every CG's baseline:")
    from repro.resil import FaultInjector, FaultSpec, RetryPolicy

    chaos_items = mixed_batch(6, params=PARAMS, seed=4)
    injector = FaultInjector(
        [FaultSpec("dma.get", nth=2), FaultSpec("memory.store", nth=5),
         FaultSpec("cg", nth=1, cg=1)]
    )
    with Session(processor=proc, params=PARAMS, injector=injector) as s:
        result = s.batch(chaos_items)
    check(result.ok and len(result.recovered) >= 1,
          "faulted items recovered through the retry/quarantine ladder")
    check([proc.cg(g).memory.used_bytes for g in range(4)] == baselines,
          "all four CG byte budgets back to baseline after recovery")

    injector = FaultInjector([FaultSpec("compute", probability=1.0)])
    with Session(processor=proc, params=PARAMS, injector=injector,
                 retry_policy=RetryPolicy(max_retries=1),
                 fallback_engine=None) as s:
        result = s.batch(chaos_items)
    check(len(result.errors) == len(chaos_items),
          "persistent fault exhausts every item's ladder")
    check([proc.cg(g).memory.used_bytes for g in range(4)] == baselines,
          "all four CG byte budgets back to baseline after exhaustion")

    if _failures:
        print(f"\n{len(_failures)} invariant violation(s)")
        return 1
    print("\nall memory invariants hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
