"""Seeded matrix generators for tests, examples and benchmarks."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError

__all__ = ["random_matrix", "gemm_operands", "hilbert_like"]


def random_matrix(
    rows: int, cols: int, seed: int = 0, scale: float = 1.0
) -> np.ndarray:
    """A reproducible dense f64 matrix, column-major, entries ~N(0, scale)."""
    if rows <= 0 or cols <= 0:
        raise ConfigError(f"matrix dimensions must be positive, got {rows}x{cols}")
    rng = np.random.default_rng(seed)
    return np.asfortranarray(scale * rng.standard_normal((rows, cols)))


def gemm_operands(
    m: int, n: int, k: int, seed: int = 0
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(A, B, C) for one DGEMM call, independently seeded."""
    return (
        random_matrix(m, k, seed=seed),
        random_matrix(k, n, seed=seed + 1),
        random_matrix(m, n, seed=seed + 2),
    )


def hilbert_like(rows: int, cols: int) -> np.ndarray:
    """A deterministic ill-conditioned matrix (1 / (i + j + 1)).

    Used in tests to confirm the blocked accumulation order does not
    catastrophically differ from the reference on poorly scaled data.
    """
    if rows <= 0 or cols <= 0:
        raise ConfigError(f"matrix dimensions must be positive, got {rows}x{cols}")
    i = np.arange(rows)[:, None]
    j = np.arange(cols)[None, :]
    return np.asfortranarray(1.0 / (i + j + 1.0))
