"""Seeded matrix generators for tests, examples and benchmarks."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError

__all__ = ["random_matrix", "gemm_operands", "hilbert_like", "mixed_batch"]


def random_matrix(
    rows: int, cols: int, seed: int = 0, scale: float = 1.0
) -> np.ndarray:
    """A reproducible dense f64 matrix, column-major, entries ~N(0, scale)."""
    if rows <= 0 or cols <= 0:
        raise ConfigError(f"matrix dimensions must be positive, got {rows}x{cols}")
    rng = np.random.default_rng(seed)
    return np.asfortranarray(scale * rng.standard_normal((rows, cols)))


def gemm_operands(
    m: int, n: int, k: int, seed: int = 0
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(A, B, C) for one DGEMM call, independently seeded."""
    return (
        random_matrix(m, k, seed=seed),
        random_matrix(k, n, seed=seed + 1),
        random_matrix(m, n, seed=seed + 2),
    )


def mixed_batch(n_items: int, params=None, seed: int = 0) -> list:
    """A mixed-shape :class:`~repro.api.GemmRequest` stream.

    The canonical scheduler workload: a few recurring shapes (so the
    staging-plan caches get hits) at different sizes (so the load is
    uneven), drawn round-robin with shuffled order.  Shapes are
    multiples/near-multiples of the blocking factors of ``params``
    (default: the small test preset), sized for fast functional runs.
    """
    from repro.api import GemmRequest
    from repro.core.params import BlockingParams

    if n_items < 1:
        raise ConfigError(f"n_items must be >= 1, got {n_items}")
    params = params or BlockingParams.small(double_buffered=True)
    bm, bn, bk = params.b_m, params.b_n, params.b_k
    shapes = [
        (bm, bn, bk),                       # exactly one block
        (2 * bm, bn, bk),                   # taller
        (bm, 2 * bn, 2 * bk),               # wider and deeper
        (bm + bm // 2, bn, bk + bk // 4),   # needs padding
    ]
    rng = np.random.default_rng(seed)
    order = [shapes[i % len(shapes)] for i in range(n_items)]
    rng.shuffle(order)
    return [
        GemmRequest(
            rng.standard_normal((m, k)),
            rng.standard_normal((k, n)),
        )
        for m, n, k in order
    ]


def hilbert_like(rows: int, cols: int) -> np.ndarray:
    """A deterministic ill-conditioned matrix (1 / (i + j + 1)).

    Used in tests to confirm the blocked accumulation order does not
    catastrophically differ from the reference on poorly scaled data.
    """
    if rows <= 0 or cols <= 0:
        raise ConfigError(f"matrix dimensions must be positive, got {rows}x{cols}")
    i = np.arange(rows)[:, None]
    j = np.arange(cols)[None, :]
    return np.asfortranarray(1.0 / (i + j + 1.0))
