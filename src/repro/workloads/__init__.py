"""Workload definitions: matrix generators and the paper's shape sets."""

from repro.workloads.matrices import (
    random_matrix,
    gemm_operands,
    hilbert_like,
    mixed_batch,
)
from repro.workloads.shapes import (
    FIG6_SIZES,
    FIG7_SHAPES,
    FIG4_SIZES,
    functional_shapes,
)

__all__ = [
    "random_matrix",
    "gemm_operands",
    "hilbert_like",
    "mixed_batch",
    "FIG6_SIZES",
    "FIG7_SHAPES",
    "FIG4_SIZES",
    "functional_shapes",
]
