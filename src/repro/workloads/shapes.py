"""The shape sets of the paper's evaluation section.

- Figure 4 and Figure 6 sweep ``1536 .. 15360`` in steps of 1536
  (square matrices / ``m = k`` for the DMA micro-benchmark);
- Figure 7 varies one dimension at a time around the saturated square
  size 9216 — the paper's finding is that small ``m`` hurts (the
  double-buffer prologue is amortized over the M loop) while ``n`` and
  ``k`` barely matter.

All values are multiples of the SCHED block factors
(bM, bN, bK) = (128, 256, 768), as the paper requires.
"""

from __future__ import annotations

__all__ = ["FIG4_SIZES", "FIG6_SIZES", "FIG7_SHAPES", "functional_shapes"]

#: m = k sweep of the DMA mode micro-benchmark (Figure 4).
FIG4_SIZES: tuple[int, ...] = tuple(range(1536, 15360 + 1, 1536))

#: m = n = k sweep of the variant comparison (Figure 6).
FIG6_SIZES: tuple[int, ...] = tuple(range(1536, 15360 + 1, 1536))

#: (m, n, k) grid of the shape study (Figure 7): vary each dimension
#: across {1536, 3072, 6144, 12288} holding the others at 9216.
_BASE = 9216
_VARIED = (1536, 3072, 6144, 12288)
FIG7_SHAPES: tuple[tuple[int, int, int], ...] = (
    *((v, _BASE, _BASE) for v in _VARIED),
    *((_BASE, v, _BASE) for v in _VARIED),
    *((_BASE, _BASE, v) for v in _VARIED),
    (_BASE, _BASE, _BASE),
)


def functional_shapes(params_b_m: int, params_b_n: int, params_b_k: int,
                      max_blocks: int = 2) -> list[tuple[int, int, int]]:
    """Small shapes (in block multiples) for functional validation."""
    shapes = []
    for gm in range(1, max_blocks + 1):
        for gn in range(1, max_blocks + 1):
            for gk in range(1, max_blocks + 1):
                shapes.append((gm * params_b_m, gn * params_b_n, gk * params_b_k))
    return shapes
