"""HPL workload model: the DGEMM shape sequence of a factorization.

HPL factors an N x N system in panels of width NB; after each panel the
trailing update is a DGEMM of shape (N - j*NB) x (N - j*NB) x NB.  This
module enumerates that sequence and its flop accounting so the E8
experiment can project how much of an HPL run the paper's kernel
covers, and at what rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["HPLTrace", "hpl_trace"]


@dataclass(frozen=True)
class HPLTrace:
    """Shapes and flops of one HPL factorization."""

    n: int
    nb: int
    #: trailing-update GEMM shapes (m, n, k), largest first.
    updates: tuple[tuple[int, int, int], ...]

    @property
    def gemm_flops(self) -> int:
        return sum(2 * m * n_ * k for m, n_, k in self.updates)

    @property
    def total_flops(self) -> float:
        """The classic HPL flop count 2/3 N^3 + 3/2 N^2."""
        return 2.0 * self.n**3 / 3.0 + 1.5 * self.n**2

    @property
    def gemm_fraction(self) -> float:
        return self.gemm_flops / self.total_flops


def hpl_trace(n: int, nb: int) -> HPLTrace:
    """Enumerate the trailing-update DGEMMs of an N x N, NB-blocked HPL."""
    if n <= 0 or nb <= 0:
        raise ConfigError("n and nb must be positive")
    if nb > n:
        raise ConfigError(f"panel width {nb} exceeds matrix size {n}")
    updates = []
    offset = nb
    while offset < n:
        trailing = n - offset
        updates.append((trailing, trailing, min(nb, trailing)))
        offset += nb
    return HPLTrace(n=n, nb=nb, updates=tuple(updates))
