"""HPL workload model: the DGEMM shape sequence of a factorization.

HPL factors an N x N system in panels of width NB; after each panel the
trailing update is a DGEMM of shape (N - j*NB) x (N - j*NB) x NB.  This
module enumerates that sequence and its flop accounting so the E8
experiment can project how much of an HPL run the paper's kernel
covers, and at what rate — and, via :func:`run_trace`, executes the
sequence functionally through the batched staging path
(:func:`repro.core.batch.dgemm_batch`), the way a host-side HPL driver
would feed the device.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError

__all__ = ["HPLTrace", "hpl_trace", "trace_items", "run_trace"]


@dataclass(frozen=True)
class HPLTrace:
    """Shapes and flops of one HPL factorization."""

    n: int
    nb: int
    #: trailing-update GEMM shapes (m, n, k), largest first.
    updates: tuple[tuple[int, int, int], ...]

    @property
    def gemm_flops(self) -> int:
        return sum(2 * m * n_ * k for m, n_, k in self.updates)

    @property
    def total_flops(self) -> float:
        """The classic HPL flop count 2/3 N^3 + 3/2 N^2."""
        return 2.0 * self.n**3 / 3.0 + 1.5 * self.n**2

    @property
    def gemm_fraction(self) -> float:
        return self.gemm_flops / self.total_flops


def hpl_trace(n: int, nb: int) -> HPLTrace:
    """Enumerate the trailing-update DGEMMs of an N x N, NB-blocked HPL."""
    if n <= 0 or nb <= 0:
        raise ConfigError("n and nb must be positive")
    if nb > n:
        raise ConfigError(f"panel width {nb} exceeds matrix size {n}")
    updates = []
    offset = nb
    while offset < n:
        trailing = n - offset
        updates.append((trailing, trailing, min(nb, trailing)))
        offset += nb
    return HPLTrace(n=n, nb=nb, updates=tuple(updates))


def trace_items(trace: HPLTrace, seed: int = 0) -> list:
    """Synthesize the trace's trailing updates as batch items.

    Each update becomes ``C -= L21 @ U12`` (``alpha=-1, beta=1``) over
    random operands of the traced shape — the data content is
    irrelevant to the staging/traffic behaviour being exercised.
    """
    from repro.api import GemmRequest

    rng = np.random.default_rng(seed)
    items = []
    for m, n_, k in trace.updates:
        items.append(
            GemmRequest(
                a=rng.standard_normal((m, k)),
                b=rng.standard_normal((k, n_)),
                c=rng.standard_normal((m, n_)),
                alpha=-1.0,
                beta=1.0,
            )
        )
    return items


def run_trace(
    trace: HPLTrace,
    variant: str = "SCHED",
    params=None,
    core_group=None,
    seed: int = 0,
):
    """Execute the trace's update sequence on one core group.

    Returns the :class:`~repro.core.batch.BatchResult`, whose
    ``flops`` / ``padded_flops`` pair shows how much extra work the
    block-factor padding costs for this (N, NB) choice.
    """
    from repro.core.batch import dgemm_batch

    return dgemm_batch(
        trace_items(trace, seed=seed),
        variant=variant,
        params=params,
        core_group=core_group,
        pad=True,
    )
