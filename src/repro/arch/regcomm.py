"""Register communication across the CPE mesh (paper Sec II and III-B).

The mechanism is producer/consumer: a source CPE loads 256-bit aligned
data into a register (``vldr`` for A rows, ``lddec`` for the splat of a
B element) and pushes it into the row or column network through its
send buffer; destination CPEs pop it from their receive buffer with
``getr``/``getc``.  The cost is a few cycles per 256-bit item.

The functional model keeps a FIFO receive buffer per CPE per network.
Broadcast payloads are numpy arrays; the op count charged is one
register-communication instruction per 256 bits, which the timing model
and the ISA pipeline both consume.

Misuse that would hang or corrupt real hardware is turned into
:class:`~repro.errors.RegisterCommError`: receiving from an empty
buffer in a bulk-synchronous step, or leaving undrained data behind at
a barrier.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.errors import RegisterCommError
from repro.arch.mesh import Coord, CPEMesh
from repro.utils.stats import StatsProtocol

__all__ = ["Broadcast", "RegCommStats", "RegisterComm"]

#: bytes carried by one register-communication instruction (256 bits).
ITEM_BYTES = 32


@dataclass(frozen=True)
class Broadcast:
    """A delivered payload, tagged with its producer."""

    src: Coord
    data: np.ndarray

    @property
    def items(self) -> int:
        """Number of 256-bit register transfers this payload needed."""
        return max(1, -(-self.data.nbytes // ITEM_BYTES))


@dataclass
class RegCommStats(StatsProtocol):
    """Operation counters for the two mesh networks."""

    row_broadcasts: int = 0
    col_broadcasts: int = 0
    row_items: int = 0
    col_items: int = 0
    #: point-to-point sends (row + column networks).
    p2p_sends: int = 0
    p2p_items: int = 0
    bytes_moved: int = 0
    receives: int = 0

    def merge(self, other: "RegCommStats") -> None:
        self.row_broadcasts += other.row_broadcasts
        self.col_broadcasts += other.col_broadcasts
        self.row_items += other.row_items
        self.col_items += other.col_items
        self.p2p_sends += other.p2p_sends
        self.p2p_items += other.p2p_items
        self.bytes_moved += other.bytes_moved
        self.receives += other.receives

    def tally_broadcasts(
        self,
        *,
        row_broadcasts: int = 0,
        col_broadcasts: int = 0,
        row_nbytes: int = 0,
        col_nbytes: int = 0,
        fanout: int,
        receives: int,
    ) -> None:
        """Account broadcasts without pushing payloads through the FIFOs.

        The vectorized execution engine resolves every sharing step as
        an index gather, so no :class:`Broadcast` objects exist — this
        books the counters one ``row_broadcast``/``col_broadcast`` call
        per owner would have produced.  ``row_nbytes``/``col_nbytes``
        are per-payload sizes; ``fanout`` is receivers per broadcast
        (mesh side minus one).
        """
        self.row_broadcasts += row_broadcasts
        self.col_broadcasts += col_broadcasts
        self.row_items += row_broadcasts * max(1, -(-row_nbytes // ITEM_BYTES))
        self.col_items += col_broadcasts * max(1, -(-col_nbytes // ITEM_BYTES))
        self.bytes_moved += fanout * (
            row_broadcasts * row_nbytes + col_broadcasts * col_nbytes
        )
        self.receives += receives


class RegisterComm:
    """Row/column broadcast networks of one CPE cluster."""

    def __init__(self, mesh: CPEMesh) -> None:
        self.mesh = mesh
        self._row_buf: dict[Coord, deque[Broadcast]] = {
            c: deque() for c in mesh.coords()
        }
        self._col_buf: dict[Coord, deque[Broadcast]] = {
            c: deque() for c in mesh.coords()
        }
        self.stats = RegCommStats()
        #: optional chaos hook (see :mod:`repro.resil`); set via
        #: :meth:`repro.arch.core_group.CoreGroup.attach_injector`.
        self.injector = None
        self.cg_index: int | None = None

    def _fire(self) -> None:
        """Chaos fire point: runs before any buffer is touched, so an
        injected fault never leaves a broadcast half-delivered."""
        if self.injector is not None:
            self.injector.fire("regcomm", cg=self.cg_index)

    # -- producing ----------------------------------------------------

    def row_broadcast(self, src: Coord, data: np.ndarray) -> None:
        """Broadcast ``data`` from ``src`` to every other CPE in its row.

        Payloads must be 256-bit-aligned in size, as ``vldr`` loads full
        registers (the B splat path pads a single f64 to a full register
        via ``lddec``, so callers splat before broadcasting).
        """
        self._fire()
        src = self.mesh.check(src)
        payload = self._validated(data)
        bc = Broadcast(src, payload)
        for dst in self.mesh.row_members(src.row):
            if dst != src:
                self._row_buf[dst].append(bc)
        self.stats.row_broadcasts += 1
        self.stats.row_items += bc.items
        self.stats.bytes_moved += payload.nbytes * (self.mesh.cols - 1)

    def col_broadcast(self, src: Coord, data: np.ndarray) -> None:
        """Broadcast ``data`` from ``src`` to every other CPE in its column."""
        self._fire()
        src = self.mesh.check(src)
        payload = self._validated(data)
        bc = Broadcast(src, payload)
        for dst in self.mesh.col_members(src.col):
            if dst != src:
                self._col_buf[dst].append(bc)
        self.stats.col_broadcasts += 1
        self.stats.col_items += bc.items
        self.stats.bytes_moved += payload.nbytes * (self.mesh.rows - 1)

    def send_row(self, src: Coord, dst_col: int, data: np.ndarray) -> None:
        """Point-to-point send to one CPE in the same row.

        The hardware's register communication also supports targeted
        sends within a row/column; the paper's DGEMM uses only
        broadcasts, but the Cannon ablation (A7) needs shifts.
        """
        self._fire()
        src = self.mesh.check(src)
        dst = self.mesh.check(Coord(src.row, dst_col))
        if dst == src:
            raise RegisterCommError("a CPE cannot send to itself")
        payload = self._validated(data)
        bc = Broadcast(src, payload)
        self._row_buf[dst].append(bc)
        self.stats.p2p_sends += 1
        self.stats.p2p_items += bc.items
        self.stats.bytes_moved += payload.nbytes

    def send_col(self, src: Coord, dst_row: int, data: np.ndarray) -> None:
        """Point-to-point send to one CPE in the same column."""
        self._fire()
        src = self.mesh.check(src)
        dst = self.mesh.check(Coord(dst_row, src.col))
        if dst == src:
            raise RegisterCommError("a CPE cannot send to itself")
        payload = self._validated(data)
        bc = Broadcast(src, payload)
        self._col_buf[dst].append(bc)
        self.stats.p2p_sends += 1
        self.stats.p2p_items += bc.items
        self.stats.bytes_moved += payload.nbytes

    @staticmethod
    def _validated(data: np.ndarray) -> np.ndarray:
        payload = np.ascontiguousarray(data, dtype=np.float64)
        if payload.nbytes == 0:
            raise RegisterCommError("cannot broadcast an empty payload")
        if payload.nbytes % ITEM_BYTES != 0:
            raise RegisterCommError(
                f"register communication moves 256-bit items; payload of "
                f"{payload.nbytes} B is not a multiple of {ITEM_BYTES} B "
                "(splat scalars to a full register first)"
            )
        return payload.copy()

    # -- consuming ----------------------------------------------------

    def receive_row(self, dst: Coord) -> Broadcast:
        """Pop the next row-network payload (``getr``)."""
        dst = self.mesh.check(dst)
        if not self._row_buf[dst]:
            raise RegisterCommError(
                f"getr on empty row receive buffer at CPE{dst} — "
                "producer/consumer mismatch would deadlock hardware"
            )
        self.stats.receives += 1
        return self._row_buf[dst].popleft()

    def receive_col(self, dst: Coord) -> Broadcast:
        """Pop the next column-network payload (``getc``)."""
        dst = self.mesh.check(dst)
        if not self._col_buf[dst]:
            raise RegisterCommError(
                f"getc on empty column receive buffer at CPE{dst} — "
                "producer/consumer mismatch would deadlock hardware"
            )
        self.stats.receives += 1
        return self._col_buf[dst].popleft()

    def pending(self, dst: Coord) -> tuple[int, int]:
        """(row, column) receive-buffer depths at ``dst``."""
        dst = self.mesh.check(dst)
        return len(self._row_buf[dst]), len(self._col_buf[dst])

    def flush(self) -> int:
        """Discard every undelivered broadcast; returns how many.

        Recovery hygiene, not protocol: an aborted run (an injected
        fault, an isolated item failure) can die between a broadcast
        and its drain, and the leftovers would trip the *next* run's
        barrier checks.  Stats are untouched — the flushed data really
        was sent.  Production code paths never need this; the
        bulk-synchronous protocol drains its own buffers
        (:meth:`assert_drained` enforces it).
        """
        dropped = 0
        for buf in (*self._row_buf.values(), *self._col_buf.values()):
            dropped += len(buf)
            buf.clear()
        return dropped

    def assert_drained(self) -> None:
        """Check every receive buffer is empty (call at barriers)."""
        leftovers = [
            (c, len(self._row_buf[c]), len(self._col_buf[c]))
            for c in self.mesh.coords()
            if self._row_buf[c] or self._col_buf[c]
        ]
        if leftovers:
            coord, nrow, ncol = leftovers[0]
            raise RegisterCommError(
                f"{len(leftovers)} CPEs reached a barrier with undrained "
                f"receive buffers (first: CPE{coord} row={nrow} col={ncol})"
            )
