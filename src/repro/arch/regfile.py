"""The CPE vector register file: 32 registers of 256 bits (4 doubles).

The functional GEMM path does its register-tile math on numpy views, so
this class exists for the *constraint* (register budget, Sec III-C3) and
for the ISA pipeline model's operand naming; it still supports lane-
accurate reads/writes so the microkernel can be executed literally in
tests.
"""

from __future__ import annotations

import numpy as np

from repro.errors import RegisterFileError
from repro.arch.config import CPESpec

__all__ = ["VectorRegisterFile"]


class VectorRegisterFile:
    """Lane-accurate model of the 32x256-bit register file."""

    def __init__(self, spec: CPESpec | None = None) -> None:
        self.spec = spec or CPESpec()
        self._regs = np.zeros((self.spec.vector_registers, self.spec.simd_width))

    @property
    def n_registers(self) -> int:
        return self.spec.vector_registers

    @property
    def lanes(self) -> int:
        return self.spec.simd_width

    def _check(self, index: int) -> None:
        if not (0 <= index < self.n_registers):
            raise RegisterFileError(
                f"register index {index} outside [0, {self.n_registers})"
            )

    def write(self, index: int, value: np.ndarray) -> None:
        """Write a full 256-bit register (4 doubles)."""
        self._check(index)
        value = np.asarray(value, dtype=np.float64)
        if value.shape != (self.lanes,):
            raise RegisterFileError(
                f"register write needs shape ({self.lanes},), got {value.shape}"
            )
        self._regs[index] = value

    def splat(self, index: int, scalar: float) -> None:
        """Broadcast one double into all four lanes (the ``lddec`` load)."""
        self._check(index)
        self._regs[index] = float(scalar)

    def read(self, index: int) -> np.ndarray:
        """Read a register as a 4-lane copy."""
        self._check(index)
        return self._regs[index].copy()

    def fma(self, dst: int, a: int, b: int, c: int) -> None:
        """``dst = a*b + c`` lane-wise: the ``vmad`` semantics."""
        for index in (dst, a, b, c):
            self._check(index)
        self._regs[dst] = self._regs[a] * self._regs[b] + self._regs[c]

    def clear(self) -> None:
        self._regs[:] = 0.0

    def budget_check(self, r_m: int, r_n: int) -> None:
        """Enforce the Sec III-C3 constraint ``rM*rN + rM + rN < 32``."""
        need = r_m * r_n + r_m + r_n
        if need >= self.n_registers:
            raise RegisterFileError(
                f"register tile {r_m}x{r_n} needs {need} registers, "
                f"only {self.n_registers} available (constraint is strict <)"
            )
