"""Software-emulated cache mode of the LDM (paper Sec II).

"[The LDM] can be used as either a fast user-controlled cache or a
software-emulated cache that achieves automatic data caching."  The
paper's DGEMM uses the user-controlled mode exclusively; this module
models the *other* mode so the ablation study can quantify what
explicit data orchestration buys.

The emulated cache is set-associative with LRU replacement over
cache-line-sized blocks of main memory.  Every access is checked
against the tag store; misses trigger a line-sized DMA transfer (one
128 B transaction by default, matching the DMA granule) and an
invocation cost — the software overhead of the tag check itself, which
is what makes emulated caching slow on real CPEs (every load becomes a
function call).

Functional reads/writes go through the cache with full write-back
semantics, so a GEMM written against :class:`SoftwareCache` produces
exact results while the hit/miss counters feed the cost model in
:mod:`repro.experiments.cache_ablation`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError, LDMAllocationError
from repro.arch.memory import MainMemory, MatrixHandle
from repro.utils.stats import StatsProtocol

__all__ = ["CacheStats", "SoftwareCache"]


@dataclass
class CacheStats(StatsProtocol):
    """Access counters of one software cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


@dataclass
class _Line:
    tag: int
    data: np.ndarray
    dirty: bool = False


class SoftwareCache:
    """LRU set-associative cache emulated in LDM over one matrix.

    Addresses are element indices in the matrix's column-major order
    (the natural addressing of the Fortran-layout arrays everywhere in
    this package).
    """

    def __init__(
        self,
        memory: MainMemory,
        handle: MatrixHandle,
        capacity_bytes: int = 32 * 1024,
        line_doubles: int = 16,
        ways: int = 4,
    ) -> None:
        if capacity_bytes <= 0 or line_doubles <= 0 or ways <= 0:
            raise ConfigError("cache geometry must be positive")
        line_bytes = line_doubles * 8
        n_lines = capacity_bytes // line_bytes
        if n_lines < ways or n_lines % ways != 0:
            raise ConfigError(
                f"capacity {capacity_bytes} B with {line_bytes} B lines gives "
                f"{n_lines} lines, not divisible into {ways} ways"
            )
        if capacity_bytes > 64 * 1024:
            raise LDMAllocationError(
                f"software cache of {capacity_bytes} B exceeds the 64 KB LDM"
            )
        self.memory = memory
        self.handle = handle
        self.line_doubles = line_doubles
        self.ways = ways
        self.n_sets = n_lines // ways
        #: per-set LRU-ordered (tag -> line); last item = most recent.
        self._sets: list[OrderedDict[int, _Line]] = [
            OrderedDict() for _ in range(self.n_sets)
        ]
        self.stats = CacheStats()
        self._flat = self.memory.array(handle).reshape(-1, order="F")

    # -- addressing -------------------------------------------------------

    def _locate(self, element: int) -> tuple[int, int, int]:
        if not 0 <= element < self._flat.size:
            raise IndexError(
                f"element {element} outside {self.handle} "
                f"({self._flat.size} elements)"
            )
        block = element // self.line_doubles
        return block % self.n_sets, block, element % self.line_doubles

    def _line_for(self, element: int) -> _Line:
        set_idx, tag, _ = self._locate(element)
        cache_set = self._sets[set_idx]
        line = cache_set.get(tag)
        if line is not None:
            self.stats.hits += 1
            cache_set.move_to_end(tag)
            return line
        self.stats.misses += 1
        if len(cache_set) >= self.ways:
            _, victim = cache_set.popitem(last=False)
            self.stats.evictions += 1
            if victim.dirty:
                self._write_line(victim)
        line = _Line(tag, self._read_line(tag))
        cache_set[tag] = line
        return line

    def _read_line(self, tag: int) -> np.ndarray:
        start = tag * self.line_doubles
        end = min(start + self.line_doubles, self._flat.size)
        out = np.zeros(self.line_doubles)
        out[: end - start] = self._flat[start:end]
        return out

    def _write_line(self, line: _Line) -> None:
        start = line.tag * self.line_doubles
        end = min(start + self.line_doubles, self._flat.size)
        self._flat[start:end] = line.data[: end - start]
        self.stats.writebacks += 1

    # -- public access path ------------------------------------------------

    def _element(self, row: int, col: int) -> int:
        if not (0 <= row < self.handle.rows and 0 <= col < self.handle.cols):
            raise IndexError(f"({row}, {col}) outside {self.handle}")
        return col * self.handle.rows + row

    def read(self, row: int, col: int) -> float:
        """One element load through the cache."""
        element = self._element(row, col)
        _, _, offset = self._locate(element)
        return float(self._line_for(element).data[offset])

    def write(self, row: int, col: int, value: float) -> None:
        """One element store through the cache (write-back)."""
        element = self._element(row, col)
        _, _, offset = self._locate(element)
        line = self._line_for(element)
        line.data[offset] = float(value)
        line.dirty = True

    def flush(self) -> None:
        """Write every dirty line back (end of kernel)."""
        for cache_set in self._sets:
            for line in cache_set.values():
                if line.dirty:
                    self._write_line(line)
                    line.dirty = False

    def resident_bytes(self) -> int:
        return sum(len(s) for s in self._sets) * self.line_doubles * 8
