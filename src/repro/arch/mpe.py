"""The management processing element (MPE).

In the paper's DGEMM the MPE only spawns the 64 CPE threads and waits;
it performs no floating-point work.  The model keeps it as an explicit
object so the core group mirrors the hardware inventory and so
extensions (MPE-side pre/post-processing, as real xMath does for edge
tiles) have a home.
"""

from __future__ import annotations

from repro.arch.config import SW26010Spec, DEFAULT_SPEC

__all__ = ["MPE"]


class MPE:
    """Management core: orchestration bookkeeping only."""

    def __init__(self, spec: SW26010Spec = DEFAULT_SPEC) -> None:
        self.spec = spec
        #: number of CPE-thread team launches performed.
        self.spawn_count = 0
        #: documented but unmodelled caches.
        self.l1_data_bytes = 32 * 1024
        self.l2_bytes = 256 * 1024

    def spawn(self, n_threads: int) -> None:
        """Record a team launch (athread_spawn equivalent)."""
        if n_threads != self.spec.n_cpes:
            raise ValueError(
                f"the paper's DGEMM launches all {self.spec.n_cpes} CPEs, "
                f"got {n_threads}"
            )
        self.spawn_count += 1
