"""Asynchronous DMA: the athread-style issue / reply-counter interface.

Real SW26010 code starts a transfer and continues computing::

    athread_dma_iget(ldm_buf, mem_addr, size, &reply);
    ...                                  /* overlap window */
    athread_dma_wait_value(&reply, 1);   /* block until complete */

Algorithm 2's double buffering is exactly this pattern.  The functional
model here makes the discipline *checkable*: an issued descriptor is
**deferred** — no data moves until the matching
:meth:`ReplyCounter.wait` — so consuming a buffer without waiting reads
stale contents, precisely the bug asynchronous DMA invites on silicon.
The integration tests drive a double-buffered loop through this
interface and show that correct waits give exact results while a
skipped wait corrupts them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import DMAError
from repro.arch.dma import DMAEngine, DMAReply
from repro.arch.ldm import LDMBuffer
from repro.arch.memory import MatrixHandle

__all__ = ["ReplyCounter", "AsyncDMAEngine"]


@dataclass
class _PendingOp:
    execute: Callable[[], DMAReply]
    counter: "ReplyCounter"


@dataclass
class ReplyCounter:
    """The athread reply word: incremented once per completed transfer."""

    name: str = "reply"
    count: int = 0
    issued: int = 0

    def reset(self) -> None:
        self.count = 0
        self.issued = 0


class AsyncDMAEngine:
    """Deferred-execution wrapper over :class:`DMAEngine`.

    ``iget``/``iput`` record descriptors; ``wait(counter, value)``
    completes every pending transfer tied to that counter (hardware
    may finish them in any order before the wait; completing all of
    them is one legal schedule) and then checks the count.  Waiting for
    more replies than were issued raises — on hardware that spin-wait
    never returns.
    """

    def __init__(self, engine: DMAEngine) -> None:
        self.engine = engine
        self._pending: list[_PendingOp] = []

    # -- issue side ------------------------------------------------------

    def iget_pe(self, handle: MatrixHandle, row0: int, col0: int, rows: int,
                cols: int, buf: LDMBuffer, reply: ReplyCounter) -> None:
        self._defer(
            lambda: self.engine.pe_get(handle, row0, col0, rows, cols, buf),
            reply,
        )

    def iput_pe(self, handle: MatrixHandle, row0: int, col0: int, rows: int,
                cols: int, buf: LDMBuffer, reply: ReplyCounter) -> None:
        self._defer(
            lambda: self.engine.pe_put(handle, row0, col0, rows, cols, buf),
            reply,
        )

    def iget_row(self, handle: MatrixHandle, row0: int, col0: int, rows: int,
                 cols: int, bufs: Sequence[LDMBuffer], reply: ReplyCounter) -> None:
        self._defer(
            lambda: self.engine.row_get(handle, row0, col0, rows, cols, bufs),
            reply,
        )

    def iput_row(self, handle: MatrixHandle, row0: int, col0: int, rows: int,
                 cols: int, bufs: Sequence[LDMBuffer], reply: ReplyCounter) -> None:
        self._defer(
            lambda: self.engine.row_put(handle, row0, col0, rows, cols, bufs),
            reply,
        )

    def _defer(self, execute: Callable[[], DMAReply], reply: ReplyCounter) -> None:
        reply.issued += 1
        self._pending.append(_PendingOp(execute, reply))

    # -- completion side ----------------------------------------------------

    @property
    def in_flight(self) -> int:
        return len(self._pending)

    def wait(self, reply: ReplyCounter, value: int) -> None:
        """Block until ``reply.count >= value`` (athread semantics)."""
        if value > reply.issued:
            raise DMAError(
                f"waiting for {value} replies on {reply.name!r} but only "
                f"{reply.issued} transfers were issued — this spin-wait "
                "never completes on hardware"
            )
        still_pending: list[_PendingOp] = []
        for op in self._pending:
            if op.counter is reply and reply.count < value:
                op.execute()
                reply.count += 1
            else:
                still_pending.append(op)
        self._pending = still_pending
        if reply.count < value:
            raise DMAError(
                f"reply counter {reply.name!r} stuck at {reply.count} < {value}"
            )

    def flush(self) -> None:
        """Complete everything in flight (a full-barrier wait)."""
        pending, self._pending = self._pending, []
        for op in pending:
            op.execute()
            op.counter.count += 1

    def assert_quiescent(self) -> None:
        """No transfers may be in flight (call at kernel exit)."""
        if self._pending:
            raise DMAError(
                f"{len(self._pending)} DMA transfers still in flight at "
                "kernel exit — data would be lost on hardware"
            )
