"""The 64 KB local device memory (LDM) of a CPE.

On SW26010 the LDM is a raw user-managed scratchpad; blowing its 64 KB
is a hard failure on hardware, so the model enforces the byte budget on
every allocation.  Buffers are backed by numpy arrays (column-major, as
all matrix tiles in the paper) but the allocator does real byte
accounting, which is how the paper's LDM capacity constraint

    pM*pN + pN*pK + pK*pM < 8192   (doubles, Sec III-C2)

and the stricter double-buffered variant (Sec IV-B) become executable
checks instead of comments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import LDMAllocationError
from repro.arch.config import CPESpec

__all__ = ["LDMBuffer", "LDM"]


@dataclass
class LDMBuffer:
    """A named tile resident in one CPE's LDM."""

    name: str
    data: np.ndarray = field(repr=False)

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape


class LDM:
    """Bump allocator over a fixed 64 KB budget.

    The DGEMM variants allocate all tiles up front (as the real code
    does with static LDM arrays), so a simple bump allocator with
    whole-heap reset is faithful; individual ``free`` is supported for
    the variants that re-plan buffers between phases.
    """

    def __init__(self, spec: CPESpec | None = None) -> None:
        self.spec = spec or CPESpec()
        self._buffers: dict[str, LDMBuffer] = {}
        self._used = 0
        self._high_water = 0

    @property
    def capacity_bytes(self) -> int:
        return self.spec.ldm_bytes

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self._used

    @property
    def high_water_bytes(self) -> int:
        """Peak allocation over the LDM's lifetime (for reports)."""
        return self._high_water

    def alloc(self, name: str, shape: tuple[int, ...]) -> LDMBuffer:
        """Allocate a zeroed f64 tile; raise if over budget or name clash."""
        if name in self._buffers:
            raise LDMAllocationError(f"LDM buffer {name!r} already allocated")
        nbytes = int(np.prod(shape)) * 8
        if nbytes > self.free_bytes:
            raise LDMAllocationError(
                f"LDM overflow allocating {name!r}: need {nbytes} B, "
                f"free {self.free_bytes} B of {self.capacity_bytes} B"
            )
        buf = LDMBuffer(name, np.zeros(shape, dtype=np.float64, order="F"))
        self._buffers[name] = buf
        self._used += nbytes
        self._high_water = max(self._high_water, self._used)
        return buf

    def free(self, name: str) -> None:
        buf = self._buffers.pop(name, None)
        if buf is None:
            raise KeyError(f"no LDM buffer named {name!r}")
        self._used -= buf.nbytes

    def get(self, name: str) -> LDMBuffer:
        try:
            return self._buffers[name]
        except KeyError:
            raise KeyError(f"no LDM buffer named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._buffers

    def reset(self) -> None:
        """Free every buffer (between GEMM calls)."""
        self._buffers.clear()
        self._used = 0

    def names(self) -> list[str]:
        return list(self._buffers)
