"""Architecture parameters of the SW26010 processor (paper Sec II).

All values come straight from the paper's text:

- 1.45 GHz clock, 64 CPEs per core group (CG) on an 8x8 mesh;
- each CPE: one FP pipeline doing a 256-bit FMA per cycle
  (4 doubles * 2 flops = 8 flop/cycle), plus a second pipeline for
  integer operations and register communication;
- 32 256-bit vector registers per CPE;
- 64 KB LDM per CPE, 16 KB instruction cache (not modelled);
- DMA between main memory and LDM with a 128 B transaction unit and
  128 B alignment; theoretical DMA channel bandwidth 34 GB/s per CG;
- register communication RAW latency 4 cycles, ``vmad`` RAW latency 6
  cycles (Sec IV-C).

Peak CG performance: 8 flop/cycle * 1.45 GHz * 64 = 742.4 Gflop/s.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError

__all__ = ["CPESpec", "DMASpec", "LatencySpec", "SW26010Spec", "DEFAULT_SPEC"]


@dataclass(frozen=True)
class CPESpec:
    """Per-CPE microarchitecture parameters."""

    #: 256-bit SIMD width in doubles.
    simd_width: int = 4
    #: flops per cycle of the FP pipeline (one 4-wide FMA).
    flops_per_cycle: int = 8
    #: number of 256-bit vector registers.
    vector_registers: int = 32
    #: LDM (scratchpad) capacity in bytes.
    ldm_bytes: int = 64 * 1024
    #: instruction cache size in bytes (documented, not modelled).
    icache_bytes: int = 16 * 1024

    def __post_init__(self) -> None:
        for name in ("simd_width", "flops_per_cycle", "vector_registers", "ldm_bytes"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"CPESpec.{name} must be positive")
        if self.flops_per_cycle != 2 * self.simd_width:
            raise ConfigError(
                "flops_per_cycle must equal 2*simd_width for an FMA pipe; "
                f"got {self.flops_per_cycle} vs simd_width {self.simd_width}"
            )


@dataclass(frozen=True)
class DMASpec:
    """DMA channel parameters shared by a CG."""

    #: transaction unit and required alignment, in bytes.
    transaction_bytes: int = 128
    #: theoretical channel bandwidth per CG, bytes/second (34 GB/s).
    peak_bandwidth: float = 34e9
    #: bytes each CPE of a row receives per ROW_MODE transaction.
    row_mode_slice_bytes: int = 16

    def __post_init__(self) -> None:
        if self.transaction_bytes <= 0 or self.transaction_bytes % 16 != 0:
            raise ConfigError("transaction_bytes must be a positive multiple of 16")
        if self.peak_bandwidth <= 0:
            raise ConfigError("peak_bandwidth must be positive")
        if self.row_mode_slice_bytes * 8 != self.transaction_bytes:
            raise ConfigError(
                "ROW_MODE distributes one transaction across the 8 CPEs of a "
                "row; slice*8 must equal transaction_bytes"
            )


@dataclass(frozen=True)
class LatencySpec:
    """Instruction RAW latencies in cycles (paper Sec IV-C)."""

    #: fused multiply-add vector instruction.
    vmad: int = 6
    #: register-communication produce/consume (vldr/lddec/getr/getc).
    regcomm: int = 4
    #: LDM load-to-use latency.
    ldm_load: int = 4
    #: integer ALU (address arithmetic such as ``addl``).
    integer: int = 1

    def __post_init__(self) -> None:
        for name in ("vmad", "regcomm", "ldm_load", "integer"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"LatencySpec.{name} must be positive")


@dataclass(frozen=True)
class SW26010Spec:
    """Full parameter set for one core group of the SW26010."""

    clock_hz: float = 1.45e9
    mesh_rows: int = 8
    mesh_cols: int = 8
    cpe: CPESpec = field(default_factory=CPESpec)
    dma: DMASpec = field(default_factory=DMASpec)
    latency: LatencySpec = field(default_factory=LatencySpec)
    #: main memory per CG, bytes (8 GB of the 32 GB node).
    main_memory_bytes: int = 8 * 1024 ** 3

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ConfigError("clock_hz must be positive")
        if self.mesh_rows <= 0 or self.mesh_cols <= 0:
            raise ConfigError("mesh dimensions must be positive")

    @property
    def n_cpes(self) -> int:
        """Number of CPEs in the cluster (64)."""
        return self.mesh_rows * self.mesh_cols

    @property
    def peak_flops(self) -> float:
        """Theoretical peak of the CPE cluster in flop/s (742.4 Gflop/s)."""
        return self.cpe.flops_per_cycle * self.clock_hz * self.n_cpes

    @property
    def ldm_doubles(self) -> int:
        """LDM capacity of one CPE expressed in f64 elements (8192)."""
        return self.cpe.ldm_bytes // 8

    def cycles(self, seconds: float) -> float:
        """Convert seconds to cycles at this spec's clock."""
        return seconds * self.clock_hz

    def seconds(self, cycles: float) -> float:
        """Convert cycles to seconds at this spec's clock."""
        return cycles / self.clock_hz


#: The spec used everywhere unless a test overrides it.
DEFAULT_SPEC = SW26010Spec()
