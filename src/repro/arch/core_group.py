"""One core group (CG): MPE + 64 CPEs + memory controller + networks.

This is the device the DGEMM variants run on.  It owns:

- the shared :class:`~repro.arch.memory.MainMemory`;
- the 8x8 :class:`~repro.arch.mesh.CPEMesh` and its
  :class:`~repro.arch.regcomm.RegisterComm` networks;
- the :class:`~repro.arch.dma.DMAEngine`;
- 64 :class:`~repro.arch.cpe.CPE` devices and one
  :class:`~repro.arch.mpe.MPE`.
"""

from __future__ import annotations

from repro.arch.config import SW26010Spec, DEFAULT_SPEC
from repro.arch.cpe import CPE
from repro.arch.dma import DMAEngine
from repro.arch.ldm import LDMBuffer
from repro.arch.memory import MainMemory
from repro.arch.mesh import Coord, CPEMesh
from repro.arch.mpe import MPE
from repro.arch.regcomm import RegisterComm

__all__ = ["CoreGroup"]


class CoreGroup:
    """A fully wired SW26010 core group."""

    def __init__(self, spec: SW26010Spec = DEFAULT_SPEC) -> None:
        self.spec = spec
        self.memory = MainMemory(spec)
        self.mesh = CPEMesh(spec)
        self.regcomm = RegisterComm(self.mesh)
        self.dma = DMAEngine(self.memory, spec)
        self.mpe = MPE(spec)
        self._cpes = {c: CPE(c, spec) for c in self.mesh.coords()}
        #: optional chaos hook shared by this CG's devices (see
        #: :mod:`repro.resil`); wired by :meth:`attach_injector`.
        self.injector = None
        self.cg_index: int | None = None

    def attach_injector(self, injector, cg_index: int | None = None) -> None:
        """Wire a :class:`~repro.resil.FaultInjector` through this CG.

        Every fault site the CG owns — host staging
        (``memory.store``), DMA transfers (``dma.get``/``dma.put``),
        register communication (``regcomm``) and the engines' compute
        phases (``compute``, read via :attr:`injector`) — fires through
        the attached injector, tagged with ``cg_index`` so per-CG fault
        specs can target this group.  Pass ``injector=None`` to detach.
        """
        self.injector = injector
        self.cg_index = cg_index
        for device in (self.memory, self.dma, self.regcomm):
            device.injector = injector
            device.cg_index = cg_index

    def cpe(self, coord: Coord | tuple[int, int]) -> CPE:
        return self._cpes[self.mesh.check(Coord(*coord))]

    def cpes(self) -> list[CPE]:
        """All CPEs in thread-spawn (row-major) order."""
        return [self._cpes[c] for c in self.mesh.coords()]

    def row_ldm_buffers(self, row: int, name: str) -> list[LDMBuffer]:
        """The same-named LDM buffer of each CPE in mesh row ``row``.

        This is the buffer list a collective ROW_MODE transfer operates
        on; ordering follows mesh column index, matching the hardware's
        16 B slice assignment.
        """
        return [
            self._cpes[coord].ldm.get(name)
            for coord in self.mesh.row_members(row)
        ]

    def reset_cpes(self) -> None:
        """Clear every CPE's LDM and registers between GEMM calls."""
        for cpe in self._cpes.values():
            cpe.reset()

    def reset_transient_state(self) -> None:
        """Wipe everything an aborted run can leave behind.

        Clears CPE LDM/registers and flushes undelivered register-comm
        broadcasts.  Main memory is untouched: staged operands are the
        :class:`~repro.core.context.ExecutionContext`'s to manage, and
        a retry restages them from the host arrays anyway.  The
        resilience layer calls this before re-dispatching a failed
        item, so a retry starts from the same clean device state a
        fresh run would.
        """
        self.reset_cpes()
        self.regcomm.flush()

    @property
    def peak_flops(self) -> float:
        return self.spec.peak_flops

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CoreGroup({self.spec.mesh_rows}x{self.spec.mesh_cols} CPEs, "
            f"{self.spec.peak_flops / 1e9:.1f} Gflop/s peak)"
        )
