"""A single compute processing element (CPE)."""

from __future__ import annotations

from repro.arch.config import SW26010Spec, DEFAULT_SPEC
from repro.arch.ldm import LDM
from repro.arch.mesh import Coord
from repro.arch.regfile import VectorRegisterFile

__all__ = ["CPE"]


class CPE:
    """One compute core: coordinate, LDM scratchpad and register file.

    The FP/secondary pipelines are modelled separately in
    :mod:`repro.isa.pipeline` because the paper's instruction-scheduling
    study operates on instruction streams, not on live device state.
    """

    def __init__(self, coord: Coord, spec: SW26010Spec = DEFAULT_SPEC) -> None:
        self.coord = Coord(*coord)
        self.spec = spec
        self.ldm = LDM(spec.cpe)
        self.regs = VectorRegisterFile(spec.cpe)

    @property
    def row(self) -> int:
        return self.coord.row

    @property
    def col(self) -> int:
        return self.coord.col

    def reset(self) -> None:
        """Clear LDM and registers between GEMM invocations."""
        self.ldm.reset()
        self.regs.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CPE{self.coord}"
