"""Main (off-chip) memory of a core group.

Matrices live here in column-major (Fortran) order, as the paper
specifies, and are addressed by *handles*.  The model keeps a byte
budget so a workload that could not fit in the CG's 8 GB is rejected
instead of silently "working" in the simulation, plus a high-water
mark (:attr:`MainMemory.peak_bytes`) so workloads can audit their
resident footprint.

Staging cost matters to the batched hot path, so :meth:`MainMemory.store`
guarantees at most **one** host-side allocation-and-copy per call, and
overwriting an existing name with a same-target-shape array rewrites
the resident allocation in place — no reallocation, no budget churn.
:class:`MemoryStats` counts both paths so callers (and the regression
tests) can assert the copy discipline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AlignmentError, ConfigError
from repro.arch.config import SW26010Spec, DEFAULT_SPEC
from repro.utils.stats import StatsProtocol

__all__ = ["MatrixHandle", "MainMemory", "MemoryStats"]


@dataclass(frozen=True)
class MatrixHandle:
    """A named column-major f64 matrix resident in main memory."""

    name: str
    rows: int
    cols: int

    @property
    def shape(self) -> tuple[int, int]:
        return (self.rows, self.cols)

    @property
    def nbytes(self) -> int:
        return self.rows * self.cols * 8

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}[{self.rows}x{self.cols}]"


@dataclass
class MemoryStats(StatsProtocol):
    """Host-side staging counters (DMA traffic is counted elsewhere).

    ``allocations`` is the number of new backing arrays created — each
    one costs a full-matrix host copy; ``in_place_stores`` counts calls
    served by rewriting an existing allocation, the cheap path batch
    staging is built on.
    """

    stores: int = 0
    allocations: int = 0
    in_place_stores: int = 0
    frees: int = 0


class MainMemory:
    """Byte-budgeted store of column-major matrices.

    The DMA engine (:mod:`repro.arch.dma`) reads and writes submatrices
    of these arrays; everything else treats main memory as opaque.
    """

    def __init__(self, spec: SW26010Spec = DEFAULT_SPEC) -> None:
        self.spec = spec
        self._arrays: dict[str, np.ndarray] = {}
        self._used_bytes = 0
        self._peak_bytes = 0
        self.stats = MemoryStats()
        #: optional chaos hook (see :mod:`repro.resil`); set via
        #: :meth:`repro.arch.core_group.CoreGroup.attach_injector`.
        self.injector = None
        self.cg_index: int | None = None

    @property
    def used_bytes(self) -> int:
        """Bytes currently allocated to matrices."""
        return self._used_bytes

    @property
    def peak_bytes(self) -> int:
        """High-water mark of :attr:`used_bytes` over this memory's life."""
        return self._peak_bytes

    @property
    def free_bytes(self) -> int:
        return self.spec.main_memory_bytes - self._used_bytes

    def store(
        self,
        name: str,
        array: np.ndarray | None = None,
        rows: int | None = None,
        cols: int | None = None,
    ) -> MatrixHandle:
        """Stage ``array`` into main memory under ``name``.

        The resident matrix is column-major float64, matching the
        paper's storage convention.  Overwriting an existing name with a
        same-target-shape array reuses the allocation, rewriting it in
        place; any other call creates exactly one new backing array (a
        single host-side copy — never the ``asfortranarray`` +
        ``copy`` double copy).

        ``rows``/``cols`` stage into a larger zero-padded target region
        (the ``pad=True`` path of :func:`repro.core.api.dgemm`), with
        ``array`` in the top-left corner.  ``array=None`` stores zeros;
        :meth:`allocate` is the sugar for that.
        """
        if self.injector is not None:
            # chaos fire point, before any resident byte changes — an
            # injected staging fault never half-rewrites an allocation.
            self.injector.fire("memory.store", cg=self.cg_index)
        if array is not None:
            array = np.asarray(array)
            if array.ndim != 2:
                raise ConfigError(f"expected a 2-D matrix, got ndim={array.ndim}")
            r, c = array.shape
        else:
            if rows is None or cols is None:
                raise ConfigError("storing zeros requires explicit rows and cols")
            r = c = 0
        t_rows = r if rows is None else int(rows)
        t_cols = c if cols is None else int(cols)
        if t_rows < r or t_cols < c:
            raise ConfigError(
                f"target region {t_rows}x{t_cols} cannot hold a {r}x{c} operand"
            )
        self.stats.stores += 1
        old = self._arrays.get(name)
        if old is not None and old.shape == (t_rows, t_cols):
            # documented fast path: rewrite the allocation in place
            if array is None:
                old[...] = 0.0
            elif (r, c) == (t_rows, t_cols):
                old[...] = array
            else:
                old[:r, :c] = array
                old[r:, :] = 0.0
                old[:r, c:] = 0.0
            self.stats.in_place_stores += 1
            return MatrixHandle(name, t_rows, t_cols)
        nbytes = t_rows * t_cols * 8
        freed = old.nbytes if old is not None else 0
        if nbytes > self.free_bytes + freed:
            raise MemoryError(
                f"main memory exhausted: need {nbytes} B, "
                f"free {self.free_bytes + freed} B"
            )
        if array is not None and (r, c) == (t_rows, t_cols):
            arr = np.array(array, dtype=np.float64, order="F", copy=True)
        else:
            arr = np.zeros((t_rows, t_cols), dtype=np.float64, order="F")
            if array is not None:
                arr[:r, :c] = array
        self._arrays[name] = arr
        self._used_bytes += nbytes - freed
        if self._used_bytes > self._peak_bytes:
            self._peak_bytes = self._used_bytes
        self.stats.allocations += 1
        return MatrixHandle(name, t_rows, t_cols)

    def allocate(self, name: str, rows: int, cols: int) -> MatrixHandle:
        """Allocate a zeroed matrix (no input copy at all)."""
        return self.store(name, None, rows=rows, cols=cols)

    def free(self, name: str) -> None:
        arr = self._arrays.pop(name, None)
        if arr is None:
            raise KeyError(f"no matrix named {name!r} in main memory")
        self._used_bytes -= arr.nbytes
        self.stats.frees += 1

    def array(self, handle: MatrixHandle | str) -> np.ndarray:
        """Return the backing array (the DMA engine's access path)."""
        name = handle if isinstance(handle, str) else handle.name
        try:
            return self._arrays[name]
        except KeyError:
            raise KeyError(f"no matrix named {name!r} in main memory") from None

    def read(self, handle: MatrixHandle | str) -> np.ndarray:
        """Return a defensive copy, for result verification."""
        return self.array(handle).copy(order="F")

    def handles(self) -> list[MatrixHandle]:
        return [MatrixHandle(n, a.shape[0], a.shape[1]) for n, a in self._arrays.items()]

    def check_dma_alignment(self, handle: MatrixHandle | str, col: int) -> None:
        """Check that column ``col`` starts on a 128 B boundary.

        Column-major storage means column ``j`` starts at byte
        ``j * rows * 8``; the paper requires 128 B alignment for every
        DMA transfer, which holds when ``rows`` is a multiple of 16.
        """
        arr = self.array(handle)
        offset = col * arr.shape[0] * 8
        if offset % self.spec.dma.transaction_bytes != 0:
            raise AlignmentError(
                f"column {col} of {handle} starts at byte {offset}, not "
                f"{self.spec.dma.transaction_bytes}-byte aligned"
            )
