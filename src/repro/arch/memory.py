"""Main (off-chip) memory of a core group.

Matrices live here in column-major (Fortran) order, as the paper
specifies, and are addressed by *handles*.  The model keeps a byte
budget so a workload that could not fit in the CG's 8 GB is rejected
instead of silently "working" in the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AlignmentError, ConfigError
from repro.arch.config import SW26010Spec, DEFAULT_SPEC

__all__ = ["MatrixHandle", "MainMemory"]


@dataclass(frozen=True)
class MatrixHandle:
    """A named column-major f64 matrix resident in main memory."""

    name: str
    rows: int
    cols: int

    @property
    def shape(self) -> tuple[int, int]:
        return (self.rows, self.cols)

    @property
    def nbytes(self) -> int:
        return self.rows * self.cols * 8

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}[{self.rows}x{self.cols}]"


class MainMemory:
    """Byte-budgeted store of column-major matrices.

    The DMA engine (:mod:`repro.arch.dma`) reads and writes submatrices
    of these arrays; everything else treats main memory as opaque.
    """

    def __init__(self, spec: SW26010Spec = DEFAULT_SPEC) -> None:
        self.spec = spec
        self._arrays: dict[str, np.ndarray] = {}
        self._used_bytes = 0

    @property
    def used_bytes(self) -> int:
        """Bytes currently allocated to matrices."""
        return self._used_bytes

    @property
    def free_bytes(self) -> int:
        return self.spec.main_memory_bytes - self._used_bytes

    def store(self, name: str, array: np.ndarray) -> MatrixHandle:
        """Copy ``array`` into main memory under ``name``.

        The copy is converted to Fortran order and float64, matching the
        paper's storage convention.  Overwriting an existing name with a
        same-shape array reuses the allocation.
        """
        if array.ndim != 2:
            raise ConfigError(f"expected a 2-D matrix, got ndim={array.ndim}")
        arr = np.asfortranarray(array, dtype=np.float64)
        old = self._arrays.get(name)
        if old is not None:
            self._used_bytes -= old.nbytes
        if arr.nbytes > self.free_bytes:
            # restore the old accounting before failing
            if old is not None:
                self._used_bytes += old.nbytes
            raise MemoryError(
                f"main memory exhausted: need {arr.nbytes} B, "
                f"free {self.free_bytes} B"
            )
        self._arrays[name] = arr.copy(order="F")
        self._used_bytes += arr.nbytes
        return MatrixHandle(name, arr.shape[0], arr.shape[1])

    def allocate(self, name: str, rows: int, cols: int) -> MatrixHandle:
        """Allocate an uninitialised (zeroed) matrix."""
        return self.store(name, np.zeros((rows, cols), dtype=np.float64, order="F"))

    def free(self, name: str) -> None:
        arr = self._arrays.pop(name, None)
        if arr is None:
            raise KeyError(f"no matrix named {name!r} in main memory")
        self._used_bytes -= arr.nbytes

    def array(self, handle: MatrixHandle | str) -> np.ndarray:
        """Return the backing array (the DMA engine's access path)."""
        name = handle if isinstance(handle, str) else handle.name
        try:
            return self._arrays[name]
        except KeyError:
            raise KeyError(f"no matrix named {name!r} in main memory") from None

    def read(self, handle: MatrixHandle | str) -> np.ndarray:
        """Return a defensive copy, for result verification."""
        return self.array(handle).copy(order="F")

    def handles(self) -> list[MatrixHandle]:
        return [MatrixHandle(n, a.shape[0], a.shape[1]) for n, a in self._arrays.items()]

    def check_dma_alignment(self, handle: MatrixHandle | str, col: int) -> None:
        """Check that column ``col`` starts on a 128 B boundary.

        Column-major storage means column ``j`` starts at byte
        ``j * rows * 8``; the paper requires 128 B alignment for every
        DMA transfer, which holds when ``rows`` is a multiple of 16.
        """
        arr = self.array(handle)
        offset = col * arr.shape[0] * 8
        if offset % self.spec.dma.transaction_bytes != 0:
            raise AlignmentError(
                f"column {col} of {handle} starts at byte {offset}, not "
                f"{self.spec.dma.transaction_bytes}-byte aligned"
            )
