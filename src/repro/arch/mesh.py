"""The 8x8 CPE mesh topology.

Threads are identified by their (row, col) coordinate exactly as in the
paper's ``thread(i, j)`` notation; the mesh knows row/column membership,
which is all the register-communication network needs.
"""

from __future__ import annotations

from typing import Iterator, NamedTuple

from repro.errors import MeshError
from repro.arch.config import SW26010Spec, DEFAULT_SPEC

__all__ = ["Coord", "CPEMesh"]


class Coord(NamedTuple):
    """Position of a CPE / thread in the 8x8 cluster."""

    row: int
    col: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.row},{self.col})"


class CPEMesh:
    """Row/column structure of the CPE cluster."""

    def __init__(self, spec: SW26010Spec = DEFAULT_SPEC) -> None:
        self.spec = spec
        self.rows = spec.mesh_rows
        self.cols = spec.mesh_cols

    @property
    def size(self) -> int:
        return self.rows * self.cols

    def check(self, coord: Coord) -> Coord:
        """Validate a coordinate, returning it normalised to :class:`Coord`."""
        coord = Coord(*coord)
        if not (0 <= coord.row < self.rows and 0 <= coord.col < self.cols):
            raise MeshError(
                f"coordinate {coord} outside {self.rows}x{self.cols} mesh"
            )
        return coord

    def coords(self) -> Iterator[Coord]:
        """All coordinates in row-major order (thread spawn order)."""
        for i in range(self.rows):
            for j in range(self.cols):
                yield Coord(i, j)

    def row_members(self, row: int) -> list[Coord]:
        if not 0 <= row < self.rows:
            raise MeshError(f"row {row} outside mesh")
        return [Coord(row, j) for j in range(self.cols)]

    def col_members(self, col: int) -> list[Coord]:
        if not 0 <= col < self.cols:
            raise MeshError(f"column {col} outside mesh")
        return [Coord(i, col) for i in range(self.rows)]

    def linear_index(self, coord: Coord) -> int:
        """Thread id as the athread runtime numbers them (row-major)."""
        coord = self.check(coord)
        return coord.row * self.cols + coord.col

    def from_linear(self, index: int) -> Coord:
        if not 0 <= index < self.size:
            raise MeshError(f"thread id {index} outside [0, {self.size})")
        return Coord(index // self.cols, index % self.cols)
