"""Functional model of the SW26010 many-core processor (Sec II of the paper).

The subpackage models exactly the hardware features the paper leverages:

- :mod:`repro.arch.config` — frozen architecture parameters (clock,
  mesh geometry, LDM capacity, register file, DMA rules, latencies).
- :mod:`repro.arch.memory` — the CG's shared main memory holding
  column-major f64 matrices.
- :mod:`repro.arch.ldm` — the 64 KB per-CPE scratchpad with a byte
  allocator that enforces capacity, as real LDM does.
- :mod:`repro.arch.mesh` / :mod:`repro.arch.regcomm` — the 8x8 CPE mesh
  and the row/column register-broadcast mechanism.
- :mod:`repro.arch.dma` — the asynchronous DMA engine with ``PE_MODE``
  and ``ROW_MODE`` data distributions (Figure 5), 128 B transactions and
  alignment rules.
- :mod:`repro.arch.cpe` / :mod:`repro.arch.mpe` /
  :mod:`repro.arch.core_group` — device aggregation.
"""

from repro.arch.config import (
    SW26010Spec,
    CPESpec,
    DMASpec,
    LatencySpec,
    DEFAULT_SPEC,
)
from repro.arch.memory import MainMemory, MatrixHandle
from repro.arch.ldm import LDM, LDMBuffer
from repro.arch.regfile import VectorRegisterFile
from repro.arch.mesh import Coord, CPEMesh
from repro.arch.regcomm import RegisterComm, Broadcast
from repro.arch.dma import DMAMode, DMADescriptor, DMAEngine, DMAReply
from repro.arch.dma_async import AsyncDMAEngine, ReplyCounter
from repro.arch.swcache import SoftwareCache
from repro.arch.cpe import CPE
from repro.arch.mpe import MPE
from repro.arch.core_group import CoreGroup

__all__ = [
    "SW26010Spec",
    "CPESpec",
    "DMASpec",
    "LatencySpec",
    "DEFAULT_SPEC",
    "MainMemory",
    "MatrixHandle",
    "LDM",
    "LDMBuffer",
    "VectorRegisterFile",
    "Coord",
    "CPEMesh",
    "RegisterComm",
    "Broadcast",
    "DMAMode",
    "DMADescriptor",
    "DMAEngine",
    "DMAReply",
    "AsyncDMAEngine",
    "ReplyCounter",
    "SoftwareCache",
    "CPE",
    "MPE",
    "CoreGroup",
]
