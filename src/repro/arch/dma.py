"""The asynchronous DMA engine between main memory and LDM (Sec II, IV-A).

Two of the five hardware modes are modelled functionally because they
are the two the paper uses:

``PE_MODE``
    moves a column-major submatrix between main memory and the LDM of a
    *single* CPE.  Each matrix column contributes one contiguous segment
    of ``rows * 8`` bytes.

``ROW_MODE``
    moves data between main memory and the LDMs of *all eight* CPEs of
    one mesh row collectively.  Every 128 B transaction carries 16
    doubles; the j-th CPE of the row receives the j-th 16 B slice (2
    doubles).  Streaming a column of length ``rows`` therefore hands
    CPE ``j`` the interleaved rows ``{r : r mod 16 in {2j, 2j+1}}`` —
    exactly the "8 interleaved data units" distribution of Figure 5.

Alignment rules are enforced as on hardware: every transferred segment
must start on a 128 B boundary and be a multiple of 128 B long
(``AlignmentError`` otherwise), which is why the paper keeps ``pM`` a
multiple of 16 and ``pK`` a multiple of 16.

The remaining modes (``BCAST``, ``BROW``, ``RANK``) can be named in
descriptors but raise :class:`~repro.errors.UnsupportedModeError` when
executed, making the model's boundary explicit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import AlignmentError, DMAError, UnsupportedModeError
from repro.arch.config import SW26010Spec, DEFAULT_SPEC
from repro.arch.ldm import LDMBuffer
from repro.arch.memory import MainMemory, MatrixHandle
from repro.utils.stats import StatsProtocol

__all__ = [
    "DMAMode",
    "DMADirection",
    "DMADescriptor",
    "DMAReply",
    "DMAStats",
    "DMAEngine",
    "row_mode_owner_rows",
]


class DMAMode(enum.Enum):
    """The five DMA data-distribution modes of SW26010."""

    PE = "PE_MODE"
    ROW = "ROW_MODE"
    BCAST = "BCAST_MODE"
    BROW = "BROW_MODE"
    RANK = "RANK_MODE"


class DMADirection(enum.Enum):
    GET = "get"  # main memory -> LDM
    PUT = "put"  # LDM -> main memory


@dataclass(frozen=True)
class DMADescriptor:
    """A transfer request: a rectangular region of a resident matrix."""

    mode: DMAMode
    direction: DMADirection
    handle: MatrixHandle
    row0: int
    col0: int
    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise DMAError(f"empty transfer region {self.rows}x{self.cols}")
        if self.row0 < 0 or self.col0 < 0:
            raise DMAError("negative region origin")
        if self.row0 + self.rows > self.handle.rows or self.col0 + self.cols > self.handle.cols:
            raise DMAError(
                f"region [{self.row0}:{self.row0 + self.rows}, "
                f"{self.col0}:{self.col0 + self.cols}] outside {self.handle}"
            )

    @property
    def nbytes(self) -> int:
        return self.rows * self.cols * 8


@dataclass(frozen=True)
class DMAReply:
    """Completion record of one transfer (consumed by the timing model)."""

    mode: DMAMode
    direction: DMADirection
    nbytes: int
    transactions: int
    segments: int

    @property
    def bytes_per_segment(self) -> int:
        return self.nbytes // max(self.segments, 1)


@dataclass
class DMAStats(StatsProtocol):
    """Cumulative per-mode transfer counters."""

    gets: int = 0
    puts: int = 0
    bytes_get: int = 0
    bytes_put: int = 0
    transactions: int = 0
    by_mode: dict = field(default_factory=dict)

    def record(self, reply: DMAReply) -> None:
        if reply.direction is DMADirection.GET:
            self.gets += 1
            self.bytes_get += reply.nbytes
        else:
            self.puts += 1
            self.bytes_put += reply.nbytes
        self.transactions += reply.transactions
        key = reply.mode.value
        mode_bytes = self.by_mode.setdefault(key, 0)
        self.by_mode[key] = mode_bytes + reply.nbytes

    def tally(
        self,
        mode: DMAMode,
        direction: DMADirection,
        nbytes: int,
        transactions: int,
        transfers: int = 1,
    ) -> None:
        """Account ``transfers`` identical transfers without executing them.

        The vectorized execution engine moves whole 8x8-grid blocks in
        one strided slice copy but must report the *same* counters the
        per-CPE device path would; ``nbytes``/``transactions`` are per
        transfer, exactly as one :class:`DMAReply` would carry them.
        """
        if direction is DMADirection.GET:
            self.gets += transfers
            self.bytes_get += nbytes * transfers
        else:
            self.puts += transfers
            self.bytes_put += nbytes * transfers
        self.transactions += transactions * transfers
        key = mode.value
        self.by_mode[key] = self.by_mode.get(key, 0) + nbytes * transfers

    @property
    def bytes_total(self) -> int:
        return self.bytes_get + self.bytes_put


def row_mode_owner_rows(rows: int, cpe_col: int, group: int = 16, per_cpe: int = 2) -> np.ndarray:
    """Row indices CPE ``cpe_col`` of a mesh row receives in ROW_MODE.

    A 128 B transaction carries a ``group`` of 16 doubles; the j-th CPE
    gets doubles ``2j`` and ``2j+1`` of every group, i.e. matrix rows
    congruent to ``2j`` or ``2j+1`` modulo 16.
    """
    if rows % group != 0:
        raise AlignmentError(
            f"ROW_MODE needs the row count to be a multiple of {group}, got {rows}"
        )
    base = np.arange(0, rows, group)
    mine = np.concatenate([base + per_cpe * cpe_col + k for k in range(per_cpe)])
    mine.sort()
    return mine


class DMAEngine:
    """Executes DMA descriptors against main memory and LDM buffers."""

    def __init__(self, memory: MainMemory, spec: SW26010Spec = DEFAULT_SPEC) -> None:
        self.memory = memory
        self.spec = spec
        self.stats = DMAStats()
        #: optional chaos hook (see :mod:`repro.resil`); set via
        #: :meth:`repro.arch.core_group.CoreGroup.attach_injector`.
        self.injector = None
        self.cg_index: int | None = None

    def _fire(self, direction: DMADirection) -> None:
        """Chaos fire point: runs before any data moves, so an injected
        fault never leaves a transfer half-applied."""
        if self.injector is not None:
            site = "dma.get" if direction is DMADirection.GET else "dma.put"
            self.injector.fire(site, cg=self.cg_index)

    # -- alignment ------------------------------------------------------

    def _check_alignment(self, desc: DMADescriptor) -> None:
        tb = self.spec.dma.transaction_bytes
        lda = desc.handle.rows
        seg_bytes = desc.rows * 8
        if seg_bytes % tb != 0:
            raise AlignmentError(
                f"segment of {seg_bytes} B ({desc.rows} rows) is not a "
                f"multiple of the {tb} B transaction unit"
            )
        if (desc.row0 * 8) % tb != 0:
            raise AlignmentError(
                f"row offset {desc.row0} starts at byte {desc.row0 * 8}, "
                f"not {tb}-byte aligned"
            )
        if (lda * 8) % tb != 0:
            raise AlignmentError(
                f"leading dimension {lda} gives {lda * 8} B columns, so "
                f"columns beyond the first are not {tb}-byte aligned"
            )

    # -- PE_MODE ---------------------------------------------------------

    def pe_get(
        self,
        handle: MatrixHandle,
        row0: int,
        col0: int,
        rows: int,
        cols: int,
        buf: LDMBuffer,
    ) -> DMAReply:
        """Load a submatrix into one CPE's LDM buffer (``PE_MODE`` get)."""
        self._fire(DMADirection.GET)
        desc = DMADescriptor(DMAMode.PE, DMADirection.GET, handle, row0, col0, rows, cols)
        self._check_alignment(desc)
        self._check_buf(buf, rows, cols)
        src = self.memory.array(handle)
        buf.data[:rows, :cols] = src[row0 : row0 + rows, col0 : col0 + cols]
        return self._finish(desc, segments=cols)

    def pe_put(
        self,
        handle: MatrixHandle,
        row0: int,
        col0: int,
        rows: int,
        cols: int,
        buf: LDMBuffer,
    ) -> DMAReply:
        """Store one CPE's LDM buffer back to main memory (``PE_MODE`` put)."""
        self._fire(DMADirection.PUT)
        desc = DMADescriptor(DMAMode.PE, DMADirection.PUT, handle, row0, col0, rows, cols)
        self._check_alignment(desc)
        self._check_buf(buf, rows, cols)
        dst = self.memory.array(handle)
        dst[row0 : row0 + rows, col0 : col0 + cols] = buf.data[:rows, :cols]
        return self._finish(desc, segments=cols)

    # -- ROW_MODE ----------------------------------------------------------

    def row_get(
        self,
        handle: MatrixHandle,
        row0: int,
        col0: int,
        rows: int,
        cols: int,
        bufs: Sequence[LDMBuffer],
    ) -> DMAReply:
        """Distribute a region across the 8 CPEs of a mesh row (get).

        ``bufs[j]`` is the LDM buffer of the j-th CPE in the row; it
        receives the interleaved rows of :func:`row_mode_owner_rows`.
        """
        self._fire(DMADirection.GET)
        desc = DMADescriptor(DMAMode.ROW, DMADirection.GET, handle, row0, col0, rows, cols)
        self._validate_row_mode(desc, bufs)
        src = self.memory.array(handle)
        region = src[row0 : row0 + rows, col0 : col0 + cols]
        for j, buf in enumerate(bufs):
            mine = row_mode_owner_rows(rows, j)
            self._check_buf(buf, len(mine), cols)
            buf.data[: len(mine), :cols] = region[mine, :]
        return self._finish(desc, segments=cols, row_mode=True)

    def row_put(
        self,
        handle: MatrixHandle,
        row0: int,
        col0: int,
        rows: int,
        cols: int,
        bufs: Sequence[LDMBuffer],
    ) -> DMAReply:
        """Gather the 8 CPEs' interleaved slices back to main memory (put)."""
        self._fire(DMADirection.PUT)
        desc = DMADescriptor(DMAMode.ROW, DMADirection.PUT, handle, row0, col0, rows, cols)
        self._validate_row_mode(desc, bufs)
        dst = self.memory.array(handle)
        region = dst[row0 : row0 + rows, col0 : col0 + cols]
        for j, buf in enumerate(bufs):
            mine = row_mode_owner_rows(rows, j)
            self._check_buf(buf, len(mine), cols)
            region[mine, :] = buf.data[: len(mine), :cols]
        return self._finish(desc, segments=cols, row_mode=True)

    # -- BCAST_MODE -----------------------------------------------------

    def bcast_get(
        self,
        handle: MatrixHandle,
        row0: int,
        col0: int,
        rows: int,
        cols: int,
        bufs: Sequence[LDMBuffer],
    ) -> DMAReply:
        """Replicate one region into every CPE's LDM (``BCAST_MODE``).

        The paper's DGEMM never uses this mode (replication wastes LDM
        capacity the blocking needs), but it exists on hardware and the
        ablation in ``tests/unit/arch/test_dma.py`` uses it to show the
        sharing scheme moves 64x less main-memory traffic than
        broadcast-loading would.  Main memory is read once; the mesh
        fans the data out, so the transaction count equals a single
        copy's.
        """
        self._fire(DMADirection.GET)
        desc = DMADescriptor(DMAMode.BCAST, DMADirection.GET, handle, row0, col0, rows, cols)
        self._check_alignment(desc)
        if len(bufs) != self.spec.n_cpes:
            raise DMAError(
                f"BCAST_MODE is collective across all {self.spec.n_cpes} "
                f"CPEs; got {len(bufs)} buffers"
            )
        src = self.memory.array(handle)
        region = src[row0 : row0 + rows, col0 : col0 + cols]
        for buf in bufs:
            self._check_buf(buf, rows, cols)
            buf.data[:rows, :cols] = region
        return self._finish(desc, segments=cols)

    # -- unsupported modes -----------------------------------------------

    def execute(self, desc: DMADescriptor, *args, **kwargs):  # pragma: no cover - thin
        """Generic dispatcher; exists so descriptors can name any mode."""
        if desc.mode is DMAMode.PE:
            fn = self.pe_get if desc.direction is DMADirection.GET else self.pe_put
        elif desc.mode is DMAMode.ROW:
            fn = self.row_get if desc.direction is DMADirection.GET else self.row_put
        elif desc.mode is DMAMode.BCAST and desc.direction is DMADirection.GET:
            fn = self.bcast_get
        else:
            raise UnsupportedModeError(
                f"{desc.mode.value} ({desc.direction.value}) exists on "
                "SW26010 but is not modelled; the paper's DGEMM uses only "
                "PE_MODE and ROW_MODE"
            )
        return fn(desc.handle, desc.row0, desc.col0, desc.rows, desc.cols, *args, **kwargs)

    # -- helpers ------------------------------------------------------------

    def _validate_row_mode(self, desc: DMADescriptor, bufs: Sequence[LDMBuffer]) -> None:
        self._check_alignment(desc)
        n = self.spec.mesh_cols
        if len(bufs) != n:
            raise DMAError(
                f"ROW_MODE is collective across the {n} CPEs of a mesh row; "
                f"got {len(bufs)} buffers"
            )
        if desc.rows % 16 != 0:
            raise AlignmentError(
                f"ROW_MODE interleaves 16-double groups; {desc.rows} rows "
                "is not a multiple of 16"
            )

    @staticmethod
    def _check_buf(buf: LDMBuffer, rows: int, cols: int) -> None:
        if buf.data.ndim != 2 or buf.data.shape[0] < rows or buf.data.shape[1] < cols:
            raise DMAError(
                f"LDM buffer {buf.name!r} of shape {buf.data.shape} cannot "
                f"hold a {rows}x{cols} tile"
            )

    def _finish(self, desc: DMADescriptor, segments: int, row_mode: bool = False) -> DMAReply:
        tb = self.spec.dma.transaction_bytes
        transactions = desc.nbytes // tb
        reply = DMAReply(
            mode=desc.mode,
            direction=desc.direction,
            nbytes=desc.nbytes,
            transactions=transactions,
            segments=segments,
        )
        self.stats.record(reply)
        return reply
