"""Typed request/response surface shared by ``Session`` and ``repro.serve``.

The entry-point sprawl grew organically — ``dgemm`` takes
``transa``/``transb`` keywords, ``dgemm_batch`` takes ``BatchItem``
tuples plus ``processor=``/``n_core_groups=``, ``dgemm_multi_cg`` had
its own spelling of everything — and a serving tier cannot be built on
kwargs: a request must carry its *shape metadata* (for per-request
routing and bin coalescing), its *options* (retry budget, engine,
check) and come back as a *structured response* (value, per-request
traffic and timing, fault reports, or a typed error — never a bare
exception string).

This module is that surface:

- :class:`GemmRequest` / :class:`LuRequest` / :class:`ConvRequest` —
  one immutable dataclass per workload, each knowing how to validate
  itself, report its effective shape, compute its padded *shape bin*
  (the coalescing key), and hash its operand contents (the serving
  tier's operand-cache key);
- :class:`SubmitOptions` — per-request execution options (retry
  budget, engine, result checking), hashable so same-option requests
  can share one dispatched batch;
- :class:`RequestResult` / :class:`RequestError` — the structured
  response: value, per-request staging/DMA/regcomm traffic delta,
  queue/service timing, fault reports from the resilience ladder, and
  a typed error instead of a raise;
- :func:`as_request` / :func:`as_gemm_request` — the single
  normalization funnel every public entry point routes through, which
  also resolves the legacy kwarg spellings (``trans`` for ``transa``,
  ``ncgs`` for ``n_core_groups``, ...) with a ``DeprecationWarning``.

``repro.core.batch.BatchItem`` is now a thin deprecated alias of
:class:`GemmRequest`; sync ``Session.batch``/``Session.submit`` and
async ``repro.serve`` consume these dataclasses verbatim.

Import discipline: this module sits *below* ``repro.core`` — at
runtime it imports only :mod:`repro.errors` and numpy, so the core
entry points can route through it without cycles.
"""

from __future__ import annotations

import hashlib
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, ClassVar, Mapping

import numpy as np

from repro.errors import ConfigError, UnsupportedShapeError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.core.context import ContextStats
    from repro.core.params import BlockingParams
    from repro.resil.policy import FaultReport

__all__ = [
    "DEFAULT_SUBMIT_OPTIONS",
    "ConvRequest",
    "GemmRequest",
    "LuRequest",
    "Request",
    "RequestError",
    "RequestResult",
    "SubmitOptions",
    "apply_trans",
    "as_gemm_request",
    "as_request",
    "format_bin",
    "resolve_legacy_kwargs",
]


# -- legacy kwarg harmonization -----------------------------------------

#: legacy spelling -> canonical keyword, across every GEMM entry point.
LEGACY_KWARGS: dict[str, str] = {
    "trans": "transa",
    "trans_a": "transa",
    "trans_b": "transb",
    "ncgs": "n_core_groups",
    "num_core_groups": "n_core_groups",
    "core_groups": "n_core_groups",
}


def resolve_legacy_kwargs(caller: str, legacy: Mapping[str, Any]) -> dict[str, Any]:
    """Map legacy kwarg spellings to their canonical names.

    Every recognized legacy spelling (``trans`` for ``transa``,
    ``ncgs`` for ``n_core_groups``, ...) is accepted with a
    :class:`DeprecationWarning` naming the canonical form; an unknown
    keyword raises :class:`TypeError` exactly as a plain signature
    would, so typos stay loud.  Passing the same canonical keyword
    through two legacy spellings raises :class:`ConfigError`.
    """
    resolved: dict[str, Any] = {}
    for key, value in legacy.items():
        canonical = LEGACY_KWARGS.get(key)
        if canonical is None:
            raise TypeError(f"{caller}() got an unexpected keyword argument {key!r}")
        if canonical in resolved:
            raise ConfigError(
                f"{caller}(): {key!r} duplicates {canonical!r}, already "
                "given through another spelling"
            )
        warnings.warn(
            f"{caller}(): keyword {key!r} is deprecated, use {canonical!r}",
            DeprecationWarning,
            stacklevel=3,
        )
        resolved[canonical] = value
    return resolved


def apply_trans(name: str, flag: str, array: np.ndarray) -> np.ndarray:
    """Resolve a BLAS trans flag to a (possibly transposed) view.

    The MPE materializes the transpose during the single staging copy,
    so ``"T"`` costs no extra host-side pass.
    """
    flag = str(flag).upper()
    if flag == "N":
        return array
    if flag == "T":
        return array.T
    raise UnsupportedShapeError(
        f"{name} must be 'N' or 'T', got {flag!r} (conjugate transpose "
        "is meaningless for real matrices)"
    )


def _hash_array(digest: "hashlib._Hash", array: np.ndarray) -> None:
    digest.update(str(array.shape).encode())
    digest.update(np.ascontiguousarray(array, dtype=np.float64).tobytes())


# -- requests -----------------------------------------------------------


@dataclass(frozen=True)
class GemmRequest:
    """One ``alpha * op(A) @ op(B) + beta * C`` multiply.

    The canonical batch/serving work unit: exactly the fields the
    scalar :func:`repro.core.api.dgemm` accepts, as one immutable
    value.  ``C`` may be ``None`` when ``beta == 0``.
    """

    a: np.ndarray
    b: np.ndarray
    c: np.ndarray | None = None
    alpha: float = 1.0
    beta: float = 0.0
    transa: str = "N"
    transb: str = "N"

    #: workload discriminator used for binning and reporting.
    kind: ClassVar[str] = "gemm"

    def __post_init__(self) -> None:
        # intentionally empty: the deprecated BatchItem shim overrides
        # this hook to warn on construction without re-implementing
        # the dataclass machinery.
        return None

    def validate(self) -> tuple[int, int, int]:
        """Check shapes and flags; return the effective ``(m, n, k)``.

        The returned shape accounts for ``transa``/``transb``.  A bad
        request raises :class:`UnsupportedShapeError` *here*, before
        anything is staged on a device.
        """
        a = np.asarray(self.a)
        b = np.asarray(self.b)
        if a.ndim != 2 or b.ndim != 2:
            raise UnsupportedShapeError(
                "operands must be 2-D matrices, got "
                f"A ndim={a.ndim}, B ndim={b.ndim}"
            )
        for name, flag in (("transa", self.transa), ("transb", self.transb)):
            if str(flag).upper() not in ("N", "T"):
                raise UnsupportedShapeError(
                    f"{name} must be 'N' or 'T', got {flag!r}"
                )
        m, k = _trans_shape(self.transa, (int(a.shape[0]), int(a.shape[1])))
        k2, n = _trans_shape(self.transb, (int(b.shape[0]), int(b.shape[1])))
        if k2 != k:
            raise UnsupportedShapeError(
                f"A is {a.shape} (transa={self.transa!r}) but B is "
                f"{b.shape} (transb={self.transb!r}) — inner dimensions "
                f"{k} != {k2}"
            )
        if self.c is None:
            if self.beta != 0.0:
                raise UnsupportedShapeError(
                    f"beta={self.beta} requires an input C"
                )
        else:
            c = np.asarray(self.c)
            if c.shape != (m, n):
                raise UnsupportedShapeError(f"C is {c.shape}, expected {(m, n)}")
        return (m, n, k)

    def shape_bin(self, params: "BlockingParams") -> tuple[Any, ...]:
        """The coalescing key: kind plus the padded ``(m, n, k)``.

        Requests with equal bins share one staging plan on a CG, which
        is exactly what the serving tier batches together.
        """
        m, n, k = self.validate()
        return (self.kind, *params.pad_shape(m, n, k))

    def content_hash(self) -> str:
        """Digest of operand *contents* plus every compute attribute.

        Two requests with equal hashes produce bit-identical results
        on the same engine — the serving tier's operand-cache key.
        """
        digest = hashlib.sha256()
        digest.update(
            f"{self.kind}|{self.alpha!r}|{self.beta!r}"
            f"|{str(self.transa).upper()}|{str(self.transb).upper()}".encode()
        )
        _hash_array(digest, np.asarray(self.a))
        _hash_array(digest, np.asarray(self.b))
        if self.c is not None:
            _hash_array(digest, np.asarray(self.c))
        return digest.hexdigest()


def _trans_shape(flag: str, shape: tuple[int, int]) -> tuple[int, int]:
    return (shape[1], shape[0]) if str(flag).upper() == "T" else shape


@dataclass(frozen=True)
class LuRequest:
    """One blocked LU factorization (``PA = LU``) of a square matrix."""

    a: np.ndarray
    panel: int = 64

    kind: ClassVar[str] = "lu"

    def validate(self) -> tuple[int, int, int]:
        """Check the matrix; return ``(n, n, panel)`` as the shape."""
        a = np.asarray(self.a)
        if a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise UnsupportedShapeError(
                f"blocked_lu needs a square matrix, got {a.shape}"
            )
        if self.panel < 1:
            raise ConfigError(f"panel width must be >= 1, got {self.panel}")
        return (int(a.shape[0]), int(a.shape[1]), int(self.panel))

    def shape_bin(self, params: "BlockingParams") -> tuple[Any, ...]:
        n, _, panel = self.validate()
        return (self.kind, n, panel)

    def content_hash(self) -> str:
        digest = hashlib.sha256()
        digest.update(f"{self.kind}|{self.panel}".encode())
        _hash_array(digest, np.asarray(self.a))
        return digest.hexdigest()


@dataclass(frozen=True)
class ConvRequest:
    """One 2-D convolution (NCHW images, OIHW kernels) lowered to GEMM."""

    images: np.ndarray
    kernels: np.ndarray
    stride: int = 1

    kind: ClassVar[str] = "conv"

    def _dims(self) -> tuple[int, int, int, int, int, int, int, int]:
        images = np.asarray(self.images)
        kernels = np.asarray(self.kernels)
        if images.ndim != 4:
            raise UnsupportedShapeError(
                f"expected NCHW images, got shape {images.shape}"
            )
        if kernels.ndim != 4:
            raise UnsupportedShapeError(
                f"expected OIHW kernels, got shape {kernels.shape}"
            )
        n, c, h, w = (int(d) for d in images.shape)
        o, ci, kh, kw = (int(d) for d in kernels.shape)
        if ci != c:
            raise UnsupportedShapeError(
                f"kernel expects {ci} input channels, images have {c}"
            )
        if self.stride < 1:
            raise ConfigError(f"stride must be >= 1, got {self.stride}")
        if h < kh or w < kw:
            raise UnsupportedShapeError(
                f"images {h}x{w} are smaller than the {kh}x{kw} kernel"
            )
        return n, c, h, w, o, kh, kw, self.stride

    def validate(self) -> tuple[int, int, int]:
        """Check shapes; return the lowered GEMM's ``(m, n, k)``."""
        n, c, h, w, o, kh, kw, stride = self._dims()
        oh = (h - kh) // stride + 1
        ow = (w - kw) // stride + 1
        return (o, n * oh * ow, c * kh * kw)

    def fold_shape(self) -> tuple[int, int, int, int]:
        """The ``(n, o, oh, ow)`` feature-map shape of the result."""
        n, _, h, w, o, kh, kw, stride = self._dims()
        return (n, o, (h - kh) // stride + 1, (w - kw) // stride + 1)

    def lower(self) -> GemmRequest:
        """Lower to the equivalent :class:`GemmRequest` (im2col)."""
        from repro.apps.conv import im2col

        _, c, _, _, o, kh, kw, stride = self._dims()
        cols = im2col(
            np.asarray(self.images, dtype=np.float64), kh, kw, stride
        )
        w_flat = np.asarray(self.kernels, dtype=np.float64).reshape(
            o, c * kh * kw
        )
        return GemmRequest(a=w_flat, b=cols)

    def fold(self, out_flat: np.ndarray) -> np.ndarray:
        """Fold the lowered GEMM's output back to N x O x oh x ow."""
        n, o, oh, ow = self.fold_shape()
        return np.ascontiguousarray(
            out_flat.reshape(o, n, oh, ow).transpose(1, 0, 2, 3)
        )

    def shape_bin(self, params: "BlockingParams") -> tuple[Any, ...]:
        m, n, k = self.validate()
        return (self.kind, *params.pad_shape(m, n, k))

    def content_hash(self) -> str:
        digest = hashlib.sha256()
        digest.update(f"{self.kind}|{self.stride}".encode())
        _hash_array(digest, np.asarray(self.images))
        _hash_array(digest, np.asarray(self.kernels))
        return digest.hexdigest()


#: any typed request the submit surfaces accept.
Request = GemmRequest | LuRequest | ConvRequest


def format_bin(bin_key: tuple[Any, ...]) -> str:
    """Render a :meth:`shape_bin` key as a stable display label.

    ``("gemm", 64, 96, 32)`` → ``"gemm:64x96x32"`` — the label used in
    :attr:`RequestResult.bin` and the serving tier's SLO report.
    """
    kind, *dims = bin_key
    return f"{kind}:{'x'.join(str(d) for d in dims)}"


# -- options and responses ----------------------------------------------


@dataclass(frozen=True)
class SubmitOptions:
    """Per-request execution options, shared by sync and async submit.

    ``None`` fields defer to the session's configuration.  The
    dataclass is hashable (no operand payloads), so the serving tier
    can coalesce same-option requests into one dispatched batch.
    """

    #: execution engine (``"device"`` / ``"vectorized"``), or the
    #: session default.
    engine: str | None = None
    #: verify results against the numpy reference.
    check: bool | None = None
    #: retry budget for transiently faulted items (``0`` disables
    #: retrying; ``None`` uses the session's retry policy).
    max_retries: int | None = None

    def __post_init__(self) -> None:
        if self.max_retries is not None and self.max_retries < 0:
            raise ConfigError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.engine is not None:
            object.__setattr__(self, "engine", str(self.engine).lower())


#: the all-defaults options value.
DEFAULT_SUBMIT_OPTIONS = SubmitOptions()


@dataclass(frozen=True)
class RequestError:
    """A structured failure: what went wrong, in machine-readable form."""

    #: exception class name, or a server-side kind such as
    #: ``"RejectedError"`` (admission control) / ``"ShutdownError"``.
    kind: str
    message: str
    #: whether resubmitting later may succeed (backpressure rejections
    #: are retryable; shape errors are not).
    retryable: bool = False

    def __str__(self) -> str:
        return f"{self.kind}: {self.message}"


@dataclass(frozen=True)
class RequestResult:
    """The structured response to one request.

    Exactly one of ``value``/``error`` is meaningful: ``ok`` requests
    carry the computed value (the GEMM output, the folded feature
    maps, or an ``LUResult``), failed ones a :class:`RequestError`.
    ``traffic`` is this request's own staging/DMA/regcomm delta —
    summing it over every response reconciles bit-exactly with
    ``Session.stats().traffic`` (cache hits contribute zero, having
    moved nothing).
    """

    #: the computed value; ``None`` when ``error`` is set.
    value: Any = None
    error: RequestError | None = None
    #: this request's staging/DMA/regcomm delta (``None`` only when
    #: the request never reached a device).
    traffic: "ContextStats | None" = None
    #: resilience-ladder reports for this request (empty when clean).
    fault_reports: "tuple[FaultReport, ...]" = ()
    #: shape-bin label the request was coalesced under.
    bin: str = ""
    #: served from the operand cache without staging or dispatch.
    cache_hit: bool = False
    #: seconds spent queued before dispatch (serving tier only).
    queue_seconds: float = 0.0
    #: seconds of batch execution the request rode along in.
    service_seconds: float = 0.0
    #: admission-to-response wall seconds (serving tier only).
    total_seconds: float = 0.0
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def rejected(self) -> bool:
        """True when admission control turned the request away."""
        return self.error is not None and self.error.kind == "RejectedError"


# -- normalization funnel ----------------------------------------------


def as_gemm_request(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None = None,
    *,
    alpha: float = 1.0,
    beta: float = 0.0,
    transa: str = "N",
    transb: str = "N",
    legacy: Mapping[str, Any] | None = None,
    caller: str = "dgemm",
) -> GemmRequest:
    """Normalize one GEMM call into a validated :class:`GemmRequest`.

    The single funnel behind ``dgemm``/``dgemm_batch``/
    ``dgemm_multi_cg``: resolves legacy kwarg spellings (with a
    :class:`DeprecationWarning`), then validates shapes and flags up
    front.  ``legacy`` carries the caller's ``**kwargs`` so unknown
    keywords still raise :class:`TypeError` under the caller's name.
    """
    if legacy:
        resolved = resolve_legacy_kwargs(caller, legacy)
        unexpected = set(resolved) - {"transa", "transb"}
        if unexpected:
            raise TypeError(
                f"{caller}() got an unexpected keyword argument "
                f"{sorted(unexpected)[0]!r}"
            )
        transa = resolved.get("transa", transa)
        transb = resolved.get("transb", transb)
    request = GemmRequest(
        a=a, b=b, c=c, alpha=alpha, beta=beta, transa=transa, transb=transb
    )
    request.validate()
    return request


def as_request(obj: Any) -> Request:
    """Coerce ``obj`` to a typed request (the submit surfaces' funnel).

    Accepts the three request dataclasses (including the deprecated
    ``BatchItem`` alias, which *is* a :class:`GemmRequest`) and bare
    ``(a, b)`` / ``(a, b, c)`` tuples for convenience; anything else
    raises :class:`ConfigError`.
    """
    if isinstance(obj, (GemmRequest, LuRequest, ConvRequest)):
        return obj
    if isinstance(obj, tuple) and len(obj) in (2, 3):
        return GemmRequest(*obj)
    raise ConfigError(
        f"expected a GemmRequest/LuRequest/ConvRequest, got {type(obj).__name__}"
    )
