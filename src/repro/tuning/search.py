"""Exhaustive blocking-parameter search over the hardware constraints.

The feasible space is small enough to enumerate exactly — the paper's
hand derivation (Sec III-C and IV-B) prunes it to one point; the tuner
reproduces that choice mechanically and ranks the alternatives:

- ``pM`` multiples of 16 (DMA granule, register-tile coverage);
- ``pN`` multiples of 4 (register tile), ``pK`` multiples of 16;
- LDM budget per the buffering regime (Sec III-C2 / IV-B);
- scored by :class:`repro.perf.estimator.Estimator` on a target shape
  (padded up to each candidate's block factors so every candidate is
  scored on work >= the request, never on a conveniently smaller one).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.arch.config import SW26010Spec, DEFAULT_SPEC
from repro.core.params import BlockingParams
from repro.perf.calibration import Calibration, DEFAULT_CALIBRATION
from repro.perf.estimator import Estimator

__all__ = ["Candidate", "TuningResult", "enumerate_candidates", "autotune"]


@dataclass(frozen=True)
class Candidate:
    """One scored blocking configuration."""

    params: BlockingParams
    gflops: float
    #: effective problem actually scored (after padding).
    padded_shape: tuple[int, int, int]


@dataclass(frozen=True)
class TuningResult:
    """Ranked outcome of a search."""

    variant: str
    shape: tuple[int, int, int]
    candidates: tuple[Candidate, ...]   # best first

    @property
    def best(self) -> Candidate:
        return self.candidates[0]

    def rank_of(self, params: BlockingParams) -> int:
        """0-based rank of a configuration (raises if not searched)."""
        for idx, cand in enumerate(self.candidates):
            if (cand.params.p_m, cand.params.p_n, cand.params.p_k) == (
                params.p_m, params.p_n, params.p_k,
            ):
                return idx
        raise KeyError(f"{params} was not in the search space")


def enumerate_candidates(
    double_buffered: bool = True,
    p_m_values: tuple[int, ...] = (16, 32),
    p_n_step: int = 4,
    p_k_step: int = 16,
    spec: SW26010Spec = DEFAULT_SPEC,
) -> list[BlockingParams]:
    """All hardware-feasible blocking configurations."""
    out = []
    max_doubles = spec.ldm_doubles
    for p_m in p_m_values:
        for p_k in range(p_k_step, max_doubles, p_k_step):
            if p_m * p_k >= max_doubles:
                break
            for p_n in range(p_n_step, max_doubles, p_n_step):
                params = BlockingParams(p_m, p_n, p_k, double_buffered=double_buffered)
                if params.ldm_doubles_per_cpe >= max_doubles:
                    break
                out.append(params)
    if not out:
        raise ConfigError("no feasible blocking configuration found")
    return out


def autotune(
    m: int,
    n: int,
    k: int,
    variant: str = "SCHED",
    double_buffered: bool | None = None,
    top: int = 10,
    spec: SW26010Spec = DEFAULT_SPEC,
    calibration: Calibration = DEFAULT_CALIBRATION,
    p_n_step: int = 8,
    p_k_step: int = 16,
) -> TuningResult:
    """Search blocking parameters for ``variant`` on an m x n x k GEMM.

    Returns the ``top`` candidates ranked by modelled Gflop/s on the
    padded problem.  The paper's hand-picked (16, 32, 96) should rank
    at or near the top for SCHED on large square shapes — a property
    the test suite asserts.
    """
    if min(m, n, k) <= 0:
        raise ConfigError("shape must be positive")
    if top < 1:
        raise ConfigError("top must be >= 1")
    from repro.core.variants import VARIANTS

    traits = VARIANTS[variant.upper()].traits
    if double_buffered is None:
        double_buffered = traits.double_buffered
    estimator = Estimator(spec, calibration)
    scored: list[Candidate] = []
    for params in enumerate_candidates(
        double_buffered=double_buffered, p_n_step=p_n_step, p_k_step=p_k_step,
        spec=spec,
    ):
        if bool(params.double_buffered) != bool(traits.double_buffered):
            continue
        pm = -(-m // params.b_m) * params.b_m
        pn = -(-n // params.b_n) * params.b_n
        pk = -(-k // params.b_k) * params.b_k
        estimate = estimator.estimate(variant, pm, pn, pk, params=params)
        # Gflop/s on the *useful* flops: padding waste counts against
        # oversized blocks
        useful = 2.0 * m * n * k
        scored.append(
            Candidate(
                params=params,
                gflops=useful / estimate.seconds / 1e9,
                padded_shape=(pm, pn, pk),
            )
        )
    scored.sort(key=lambda c: c.gflops, reverse=True)
    return TuningResult(
        variant=variant.upper(), shape=(m, n, k), candidates=tuple(scored[:top])
    )
