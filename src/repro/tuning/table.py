"""The learned tuning table: measured blocking choices, persisted.

:mod:`repro.tuning.search` ranks blocking configurations with the
analytic :class:`~repro.perf.estimator.Estimator`; the closed loop in
:mod:`repro.tuning.loop` *measures* the top-ranked candidates and keeps
the fastest one per shape bin.  This module is the artifact between the
two: a versioned, JSON-serializable table of
``(variant, engine, shape bin) -> TunedEntry`` that

- :class:`~repro.core.session.Session` and
  :class:`~repro.multi.scheduler.CGScheduler` consult when the caller
  gave no explicit blocking (``params=None``), falling back to the
  estimator's best candidate when a bin is missing;
- ``tools/check_tuning_table.py`` validates in CI (schema version, LDM
  feasibility of every entry, recomputable estimator ranks);
- the ``repro-dgemm tune`` subcommand refreshes and persists
  (``TUNED.json`` at the repo root is the committed copy).

Shape bins round every dimension up to the next power of two, so one
measured entry serves the whole neighbourhood of shapes that pad to
comparable work — the same coarse binning the serving tier's coalescer
uses, but engine- and variant-qualified.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from repro.arch.config import DEFAULT_SPEC, SW26010Spec
from repro.core.params import BlockingParams
from repro.errors import ConfigError
from repro.perf.calibration import DEFAULT_CALIBRATION, Calibration

__all__ = [
    "DEFAULT_TABLE_PATH",
    "TABLE_VERSION",
    "Resolved",
    "TunedEntry",
    "TuningTable",
    "shape_bin",
]

#: schema version of the persisted JSON artifact.
TABLE_VERSION = 1

#: where the committed table lives, relative to the repo root.
DEFAULT_TABLE_PATH = Path("TUNED.json")


def _next_pow2(value: int) -> int:
    if value < 1:
        raise ConfigError(f"shape dimensions must be positive, got {value}")
    return 1 << (value - 1).bit_length()


def shape_bin(m: int, n: int, k: int) -> tuple[int, int, int]:
    """The table's bin key: each dimension rounded up to a power of two.

    Coarse on purpose — a measured blocking choice generalizes across
    the shapes that pad to similar block grids, and a small table can
    then cover the whole workload instead of one entry per exact shape.
    """
    return (_next_pow2(m), _next_pow2(n), _next_pow2(k))


@dataclass(frozen=True)
class TunedEntry:
    """One learned blocking choice for a ``(variant, engine, bin)``."""

    variant: str
    engine: str
    bin: tuple[int, int, int]
    p_m: int
    p_n: int
    p_k: int
    double_buffered: bool
    #: wall-clock Gflop/s of the winning measurement (p50 over reps).
    measured_gflops: float
    #: the analytic model's Gflop/s for the same candidate.
    modeled_gflops: float
    #: 0-based rank the estimator prior gave the winning candidate —
    #: the co-design feedback signal (0 means model and measurement
    #: agree on the best choice).
    estimator_rank: int

    def params(self) -> BlockingParams:
        """The entry as live :class:`BlockingParams`."""
        return BlockingParams(
            p_m=self.p_m,
            p_n=self.p_n,
            p_k=self.p_k,
            double_buffered=self.double_buffered,
        )

    def key(self) -> tuple[str, str, tuple[int, int, int]]:
        return (self.variant, self.engine, self.bin)

    def as_dict(self) -> dict[str, Any]:
        return {
            "variant": self.variant,
            "engine": self.engine,
            "bin": list(self.bin),
            "p_m": self.p_m,
            "p_n": self.p_n,
            "p_k": self.p_k,
            "double_buffered": self.double_buffered,
            "measured_gflops": self.measured_gflops,
            "modeled_gflops": self.modeled_gflops,
            "estimator_rank": self.estimator_rank,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TunedEntry":
        try:
            raw_bin = data["bin"]
            return cls(
                variant=str(data["variant"]).upper(),
                engine=str(data["engine"]).lower(),
                bin=(int(raw_bin[0]), int(raw_bin[1]), int(raw_bin[2])),
                p_m=int(data["p_m"]),
                p_n=int(data["p_n"]),
                p_k=int(data["p_k"]),
                double_buffered=bool(data["double_buffered"]),
                measured_gflops=float(data["measured_gflops"]),
                modeled_gflops=float(data["modeled_gflops"]),
                estimator_rank=int(data["estimator_rank"]),
            )
        except (KeyError, IndexError, TypeError, ValueError) as exc:
            raise ConfigError(f"malformed tuning entry {data!r}: {exc}") from None


@dataclass(frozen=True)
class Resolved:
    """Outcome of a table consultation: the params plus their origin."""

    params: BlockingParams
    #: ``"tuned"`` when a table entry served the bin, ``"estimator"``
    #: when the analytic fallback picked the candidate.
    source: str
    entry: TunedEntry | None = None


@dataclass
class TuningTable:
    """A versioned, persistable map of learned blocking choices.

    Mutable while the tuner fills it (:meth:`put`), immutable in
    spirit once persisted — consumers only :meth:`lookup` /
    :meth:`resolve`.  Estimator fallbacks are memoized per
    ``(variant, bin)`` so a batch full of unmeasured bins costs one
    candidate enumeration per bin, not per item.
    """

    version: int = TABLE_VERSION
    ldm_doubles: int = DEFAULT_SPEC.ldm_doubles
    _entries: dict[tuple[str, str, tuple[int, int, int]], TunedEntry] = field(
        default_factory=dict
    )
    _fallbacks: dict[tuple[str, tuple[int, int, int]], BlockingParams] = field(
        default_factory=dict, repr=False
    )

    # -- content -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> tuple[TunedEntry, ...]:
        """Every entry, sorted for deterministic iteration/serialization."""
        return tuple(
            self._entries[key] for key in sorted(self._entries)
        )

    def put(self, entry: TunedEntry) -> None:
        """Insert or replace the entry for its ``(variant, engine, bin)``."""
        self._entries[entry.key()] = entry

    def lookup(
        self, variant: str, engine: str, m: int, n: int, k: int
    ) -> TunedEntry | None:
        """The learned entry covering this shape, or ``None`` on a miss."""
        key = (str(variant).upper(), str(engine).lower(), shape_bin(m, n, k))
        return self._entries.get(key)

    def resolve(
        self,
        variant: str,
        engine: str,
        m: int,
        n: int,
        k: int,
        *,
        spec: SW26010Spec = DEFAULT_SPEC,
        calibration: Calibration = DEFAULT_CALIBRATION,
    ) -> Resolved:
        """Blocking parameters for a shape: learned, or estimator-best.

        A hit returns the measured winner.  A missing bin falls back to
        the analytic prior — the estimator's top candidate at the bin
        shape — so a table-consulting session never degrades below what
        :func:`repro.tuning.search.autotune` would have picked cold.
        """
        entry = self.lookup(variant, engine, m, n, k)
        if entry is not None:
            return Resolved(params=entry.params(), source="tuned", entry=entry)
        bin_key = shape_bin(m, n, k)
        cache_key = (str(variant).upper(), bin_key)
        params = self._fallbacks.get(cache_key)
        if params is None:
            from repro.tuning.search import autotune

            result = autotune(
                *bin_key,
                variant=variant,
                top=1,
                spec=spec,
                calibration=calibration,
                p_n_step=16,
            )
            params = result.best.params
            self._fallbacks[cache_key] = params
        return Resolved(params=params, source="estimator", entry=None)

    # -- persistence ---------------------------------------------------

    def as_dict(self) -> dict[str, Any]:
        """The JSON document: stable entry order, schema-versioned."""
        return {
            "version": self.version,
            "ldm_doubles": self.ldm_doubles,
            "entries": [entry.as_dict() for entry in self.entries],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TuningTable":
        if not isinstance(data, dict):
            raise ConfigError(
                f"tuning table must be a JSON object, got {type(data).__name__}"
            )
        version = data.get("version")
        if version != TABLE_VERSION:
            raise ConfigError(
                f"tuning table version {version!r} is not supported "
                f"(expected {TABLE_VERSION})"
            )
        raw_entries = data.get("entries")
        if not isinstance(raw_entries, list):
            raise ConfigError("tuning table has no 'entries' list")
        table = cls(
            version=int(version),
            ldm_doubles=int(data.get("ldm_doubles", DEFAULT_SPEC.ldm_doubles)),
        )
        for raw in raw_entries:
            entry = TunedEntry.from_dict(raw)
            if entry.key() in table._entries:
                raise ConfigError(
                    f"tuning table has duplicate entries for {entry.key()!r}"
                )
            table.put(entry)
        return table

    def save(self, path: str | Path) -> Path:
        """Write the table as pretty-printed JSON; returns the path."""
        target = Path(path)
        target.write_text(
            json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return target

    @classmethod
    def load(cls, path: str | Path) -> "TuningTable":
        """Read a persisted table (:class:`ConfigError` on bad schema)."""
        target = Path(path)
        try:
            data = json.loads(target.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise ConfigError(f"tuning table {target} does not exist") from None
        except json.JSONDecodeError as exc:
            raise ConfigError(f"tuning table {target} is not JSON: {exc}") from None
        return cls.from_dict(data)

    @classmethod
    def from_entries(cls, entries: Iterable[TunedEntry]) -> "TuningTable":
        table = cls()
        for entry in entries:
            table.put(entry)
        return table
