"""The closed autotuning loop: estimator prior, measured feedback.

:func:`repro.tuning.search.autotune` ranks the feasible blocking space
with the analytic model alone.  This module closes the co-design loop
the dense-linear-algebra co-design literature describes: per shape bin,
take the model's top candidates as the *prior*, measure each one's
wall-clock through a real :class:`~repro.core.session.Session`, and
keep the measured winner in a :class:`~repro.tuning.table.TuningTable`.

Two invariants make the learned table safe to consult by default:

- the estimator's #1 candidate is always in the measured set, so the
  tuned pick is never slower (at tuning time) than what the
  estimator-only fallback would choose for a missing bin;
- the variant's own default parameters are always in the measured set,
  so the tuned pick is never slower than an untuned ``Session``.

Each entry records the estimator rank of the measured winner — the
feedback signal: rank 0 everywhere means the analytic model needs no
correction; persistent non-zero ranks localize where it is wrong.
"""

from __future__ import annotations

import time
from statistics import median
from typing import Callable, Iterable, Sequence

from repro.arch.config import DEFAULT_SPEC, SW26010Spec
from repro.core.params import BlockingParams
from repro.errors import ConfigError
from repro.perf.calibration import DEFAULT_CALIBRATION, Calibration
from repro.tuning.search import TuningResult, autotune
from repro.tuning.table import TunedEntry, TuningTable, shape_bin
from repro.workloads.matrices import gemm_operands

__all__ = ["measure_params", "tune", "tune_bin"]

#: ``top`` passed to :func:`autotune` when the full ranking is wanted —
#: far larger than the feasible space, so nothing is sliced away.
_FULL_RANKING = 10_000


def measure_params(
    shape: tuple[int, int, int],
    *,
    variant: str,
    engine: str,
    params: BlockingParams,
    reps: int = 3,
    seed: int = 0,
    spec: SW26010Spec = DEFAULT_SPEC,
    calibration: Calibration = DEFAULT_CALIBRATION,
) -> float:
    """Wall-clock p50 seconds of one DGEMM under ``params``.

    One warm-up call populates the staging-plan caches before timing,
    so the measurement reflects the steady state a warm session sees.
    """
    if reps < 1:
        raise ConfigError(f"reps must be >= 1, got {reps}")
    from repro.core.session import Session

    m, n, k = shape
    a, b, _ = gemm_operands(m, n, k, seed=seed)
    with Session(
        variant=variant,
        engine=engine,
        params=params,
        n_core_groups=1,
        spec=spec,
        calibration=calibration,
    ) as session:
        session.dgemm(a, b)
        samples = []
        for _ in range(reps):
            start = time.perf_counter()
            session.dgemm(a, b)
            samples.append(time.perf_counter() - start)
    return float(median(samples))


def _prior_candidates(
    full: TuningResult, variant: str, top: int
) -> list[BlockingParams]:
    """The measured set: estimator top-``top`` plus the variant default."""
    from repro.core.variants import get_variant

    chosen = [cand.params for cand in full.candidates[:top]]
    default = get_variant(variant).default_params()
    triples = {(p.p_m, p.p_n, p.p_k) for p in chosen}
    if (default.p_m, default.p_n, default.p_k) not in triples:
        chosen.append(default)
    return chosen


def _modeled_gflops(full: TuningResult, params: BlockingParams) -> float:
    for cand in full.candidates:
        if (cand.params.p_m, cand.params.p_n, cand.params.p_k) == (
            params.p_m,
            params.p_n,
            params.p_k,
        ):
            return cand.gflops
    return 0.0


def tune_bin(
    bin_shape: tuple[int, int, int],
    *,
    variant: str = "SCHED",
    engine: str = "stepwise",
    top: int = 3,
    reps: int = 3,
    seed: int = 0,
    spec: SW26010Spec = DEFAULT_SPEC,
    calibration: Calibration = DEFAULT_CALIBRATION,
) -> TunedEntry:
    """Measure the prior candidates for one bin; return the winner."""
    if top < 1:
        raise ConfigError(f"top must be >= 1, got {top}")
    bm, bn, bk = bin_shape
    full = autotune(
        bm,
        bn,
        bk,
        variant=variant,
        top=_FULL_RANKING,
        spec=spec,
        calibration=calibration,
    )
    best_p50 = float("inf")
    best_params: BlockingParams | None = None
    for params in _prior_candidates(full, variant, top):
        p50 = measure_params(
            bin_shape,
            variant=variant,
            engine=engine,
            params=params,
            reps=reps,
            seed=seed,
            spec=spec,
            calibration=calibration,
        )
        if p50 < best_p50:
            best_p50 = p50
            best_params = params
    assert best_params is not None  # top >= 1 guarantees one candidate
    try:
        rank = full.rank_of(best_params)
    except KeyError:
        # the variant default can sit outside the enumerated step grid
        rank = len(full.candidates)
    return TunedEntry(
        variant=variant.upper(),
        engine=engine.lower(),
        bin=(bm, bn, bk),
        p_m=best_params.p_m,
        p_n=best_params.p_n,
        p_k=best_params.p_k,
        double_buffered=bool(best_params.double_buffered),
        measured_gflops=2.0 * bm * bn * bk / best_p50 / 1e9,
        modeled_gflops=_modeled_gflops(full, best_params),
        estimator_rank=rank,
    )


def tune(
    shapes: Iterable[Sequence[int]],
    *,
    variant: str = "SCHED",
    engine: str = "stepwise",
    top: int = 3,
    reps: int = 3,
    seed: int = 0,
    spec: SW26010Spec = DEFAULT_SPEC,
    calibration: Calibration = DEFAULT_CALIBRATION,
    table: TuningTable | None = None,
    progress: Callable[[str], None] | None = None,
) -> TuningTable:
    """Tune every distinct bin covering ``shapes``; return the table.

    Shapes that fall into the same power-of-two bin are tuned once.
    An existing ``table`` is updated in place (bins already covered by
    other variants/engines are preserved), so repeated runs accumulate
    a single artifact.
    """
    result = table if table is not None else TuningTable(ldm_doubles=spec.ldm_doubles)
    seen: set[tuple[int, int, int]] = set()
    for shape in shapes:
        if len(shape) != 3:
            raise ConfigError(f"shapes must be (m, n, k) triples, got {shape!r}")
        bin_key = shape_bin(int(shape[0]), int(shape[1]), int(shape[2]))
        if bin_key in seen:
            continue
        seen.add(bin_key)
        entry = tune_bin(
            bin_key,
            variant=variant,
            engine=engine,
            top=top,
            reps=reps,
            seed=seed,
            spec=spec,
            calibration=calibration,
        )
        result.put(entry)
        if progress is not None:
            progress(
                f"bin {bin_key[0]}x{bin_key[1]}x{bin_key[2]}: "
                f"p=({entry.p_m},{entry.p_n},{entry.p_k}) "
                f"{entry.measured_gflops:.2f} Gflop/s measured, "
                f"estimator rank {entry.estimator_rank}"
            )
    if not seen:
        raise ConfigError("tune() needs at least one shape")
    return result
