"""Automatic blocking-parameter tuning (the paper's future work).

The conclusion announces "automatic code generation and automatic
performance tuning"; :mod:`repro.isa.scheduler` covers the code
generation half, this subpackage the tuning half: enumerate every
blocking configuration that satisfies the hardware constraints and rank
them with the performance model.
"""

from repro.tuning.search import Candidate, TuningResult, autotune, enumerate_candidates

__all__ = ["Candidate", "TuningResult", "autotune", "enumerate_candidates"]
