"""Automatic blocking-parameter tuning (the paper's future work).

The conclusion announces "automatic code generation and automatic
performance tuning"; :mod:`repro.isa.scheduler` covers the code
generation half, this subpackage the tuning half:

- :mod:`repro.tuning.search` enumerates every blocking configuration
  that satisfies the hardware constraints and ranks them with the
  analytic performance model;
- :mod:`repro.tuning.loop` closes the loop — measures the model's top
  candidates through a real session and keeps the wall-clock winner;
- :mod:`repro.tuning.table` persists the learned choices as a
  versioned artifact (``TUNED.json``) that ``Session`` consults when
  the caller gives no explicit blocking.
"""

from repro.tuning.loop import measure_params, tune, tune_bin
from repro.tuning.search import Candidate, TuningResult, autotune, enumerate_candidates
from repro.tuning.table import (
    DEFAULT_TABLE_PATH,
    TABLE_VERSION,
    Resolved,
    TunedEntry,
    TuningTable,
    shape_bin,
)

__all__ = [
    "Candidate",
    "DEFAULT_TABLE_PATH",
    "Resolved",
    "TABLE_VERSION",
    "TunedEntry",
    "TuningResult",
    "TuningTable",
    "autotune",
    "enumerate_candidates",
    "measure_params",
    "shape_bin",
    "tune",
    "tune_bin",
]
