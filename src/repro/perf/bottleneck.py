"""Bottleneck analysis: what limits each variant, and where it flips.

Figure 6's story in analytic form.  For a (variant, shape) this module
answers:

- which resource binds the steady state (DMA channel, FP pipeline, or
  the un-overlapped serial sum for single-buffered variants);
- the utilization of the non-binding resource;
- for double-buffered variants, the *crossover bandwidth*: the DMA
  bandwidth below which the steady-state iteration would flip from
  compute-bound to memory-bound (the headroom double buffering has
  before SCHED's 95% would collapse).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.arch.config import SW26010Spec, DEFAULT_SPEC
from repro.core.params import BlockingParams
from repro.core.variants import VARIANTS
from repro.perf.calibration import Calibration, DEFAULT_CALIBRATION
from repro.perf.estimator import Estimator

__all__ = ["Binding", "BottleneckReport", "analyze"]


class Binding(enum.Enum):
    """What the steady state waits on."""

    COMPUTE = "compute"
    DMA = "dma"
    SERIAL = "serial"  # single-buffered: nothing overlaps


@dataclass(frozen=True)
class BottleneckReport:
    variant: str
    m: int
    n: int
    k: int
    binding: Binding
    #: steady-iteration times (seconds)
    dma_batch_seconds: float
    compute_seconds: float
    #: fraction of the steady iteration the non-binding side is active.
    secondary_utilization: float
    #: bandwidth scale factor at which compute/DMA would swap (only for
    #: double-buffered variants; None otherwise).
    crossover_bandwidth_scale: float | None

    @property
    def headroom(self) -> str:
        if self.crossover_bandwidth_scale is None:
            return "n/a"
        return f"{self.crossover_bandwidth_scale:.2f}x"


def analyze(
    variant: str,
    m: int,
    n: int,
    k: int,
    params: BlockingParams | None = None,
    spec: SW26010Spec = DEFAULT_SPEC,
    calibration: Calibration = DEFAULT_CALIBRATION,
) -> BottleneckReport:
    """Classify the steady-state bottleneck of a blocked variant.

    RAW is reported too (its binding is whichever of channel time and
    per-thread compute dominates the makespan).
    """
    impl = VARIANTS[variant.upper()]()
    traits = impl.traits
    estimator = Estimator(spec, calibration)
    if not traits.shared:
        estimate = estimator.estimate(variant, m, n, k)
        dma_s = estimate.dma_seconds
        cmp_s = estimate.compute_seconds
        binding = Binding.DMA if dma_s >= cmp_s else Binding.COMPUTE
        secondary = min(dma_s, cmp_s) / max(dma_s, cmp_s)
        return BottleneckReport(
            variant=traits.name, m=m, n=n, k=k, binding=binding,
            dma_batch_seconds=dma_s, compute_seconds=cmp_s,
            secondary_utilization=secondary,
            crossover_bandwidth_scale=None,
        )

    params = params or impl.default_params()
    costs = estimator.block_costs(traits, params)
    dma_batch = costs.dma_steady
    compute = costs.t_compute
    if not traits.double_buffered:
        binding = Binding.SERIAL
        secondary = 0.0
        crossover = None
    else:
        binding = Binding.COMPUTE if compute >= dma_batch else Binding.DMA
        secondary = min(dma_batch, compute) / max(dma_batch, compute)
        # DMA time scales ~ 1/bandwidth; the iteration flips when the
        # batch stretches to the compute time
        crossover = dma_batch / compute if compute > 0 else None
    return BottleneckReport(
        variant=traits.name, m=m, n=n, k=k, binding=binding,
        dma_batch_seconds=dma_batch, compute_seconds=compute,
        secondary_utilization=secondary,
        crossover_bandwidth_scale=crossover,
    )
