"""Closed-form end-to-end performance estimates.

Algorithms 1 and 2 are lock-step: every (j, l, i) iteration does the
same work, and Algorithm 2's per-iteration ``sync`` makes the
double-buffered overlap exactly ``max(dma_batch, compute)``.  The
closed forms below are therefore not approximations of the event-driven
timeline — :class:`repro.perf.timeline.TimelineSimulator` reproduces
them to float precision, which an integration test asserts.

Per-variant structure (T_X = block-transfer seconds, T_cmp = CG-block
multiply seconds, s = cluster sync):

``PE`` / ``ROW`` (single buffered, Algorithm 1)::

    T = N*K*(T_B + s) + N*K*M*(T_A + 2*T_C + T_cmp + s)

``DB`` / ``SCHED`` (Algorithm 2)::

    per (j,l):  T_B + T_A + T_C + s                      (lines 3-6)
              + max(T_A + T_C, T_cmp) + s                (lines 7-11)
              + (M-2) * (max(T_A + 2*T_C, T_cmp) + s)    (lines 12-19)
              + 2*T_C + T_cmp                            (lines 20-23)

``RAW`` (no sharing): the 64 threads contend for the DMA channel, so
the makespan is ``max(channel busy time, per-thread compute +
per-thread request latency)`` — memory-bound at every realistic size.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.arch.config import SW26010Spec, DEFAULT_SPEC
from repro.core.params import GRID, BlockingParams
from repro.core.variants import VARIANTS
from repro.core.variants.base import VariantTraits
from repro.core.variants.raw import RawVariant
from repro.perf.calibration import Calibration, DEFAULT_CALIBRATION
from repro.perf.dma_model import BlockTransfer, DMACostModel
from repro.perf.kernel_model import KernelModel

__all__ = ["GemmEstimate", "Estimator", "BlockCosts"]


@dataclass(frozen=True)
class BlockCosts:
    """Per-CG-block costs shared by the estimator and the timeline."""

    t_a: float
    t_b: float
    t_c: float
    t_compute: float
    t_sync: float

    @property
    def dma_steady(self) -> float:
        """DMA batch of one steady Algorithm 2 iteration: store C,
        load A, load C."""
        return self.t_a + 2 * self.t_c


@dataclass(frozen=True)
class GemmEstimate:
    """A predicted DGEMM execution."""

    variant: str
    m: int
    n: int
    k: int
    seconds: float
    dma_seconds: float
    compute_seconds: float
    bytes_moved: int
    breakdown: dict = field(default_factory=dict, hash=False, compare=False)

    @property
    def flops(self) -> int:
        return 2 * self.m * self.n * self.k

    @property
    def gflops(self) -> float:
        return self.flops / self.seconds / 1e9

    def efficiency(self, spec: SW26010Spec = DEFAULT_SPEC) -> float:
        return self.flops / self.seconds / spec.peak_flops


class Estimator:
    """Closed-form Gflop/s predictions for all five variants."""

    def __init__(
        self,
        spec: SW26010Spec = DEFAULT_SPEC,
        calibration: Calibration = DEFAULT_CALIBRATION,
    ) -> None:
        self.spec = spec
        self.cal = calibration
        self.dma = DMACostModel(spec, calibration)
        self.kernel = KernelModel(spec)

    # -- shared geometry ---------------------------------------------------

    def block_transfers(
        self, traits: VariantTraits, params: BlockingParams
    ) -> dict[str, BlockTransfer]:
        """The A/B/C block-level transfer geometries of a blocked variant."""
        p = params
        if traits.ac_mode == "ROW":
            t_a = self.dma.row_strip_block("A", p.b_m, p.p_k, GRID)
            t_c = self.dma.row_strip_block("C", p.b_m, p.p_n, GRID)
        elif traits.ac_mode == "PE":
            t_a = self.dma.pe_tile_block("A", p.p_m, p.p_k, GRID * GRID)
            t_c = self.dma.pe_tile_block("C", p.p_m, p.p_n, GRID * GRID)
        else:
            raise ConfigError(f"unknown A/C mode {traits.ac_mode!r}")
        t_b = self.dma.pe_tile_block("B", p.p_k, p.p_n, GRID * GRID)
        return {"A": t_a, "B": t_b, "C": t_c}

    def block_costs(self, traits: VariantTraits, params: BlockingParams) -> BlockCosts:
        tr = self.block_transfers(traits, params)
        return BlockCosts(
            t_a=self.dma.seconds(tr["A"]),
            t_b=self.dma.seconds(tr["B"]),
            t_c=self.dma.seconds(tr["C"]),
            t_compute=self.kernel.block_multiply_seconds(params, traits.kernel),
            t_sync=self.cal.sync_seconds(self.spec),
        )

    # -- public API -----------------------------------------------------

    def estimate(
        self,
        variant: str,
        m: int,
        n: int,
        k: int,
        params: BlockingParams | None = None,
    ) -> GemmEstimate:
        impl = VARIANTS[variant.upper()]()
        traits = impl.traits
        if not traits.shared:
            return self._estimate_raw(traits, m, n, k)
        params = params or impl.default_params()
        params.validate(self.spec)
        grid_m, grid_n, grid_k = params.check_shape(m, n, k)
        costs = self.block_costs(traits, params)
        if traits.double_buffered:
            seconds, dma_s = self._double_buffered_seconds(costs, grid_m, grid_n, grid_k)
        else:
            seconds, dma_s = self._single_buffered_seconds(costs, grid_m, grid_n, grid_k)
        compute_s = grid_m * grid_n * grid_k * costs.t_compute
        return GemmEstimate(
            variant=traits.name,
            m=m, n=n, k=k,
            seconds=seconds,
            dma_seconds=dma_s,
            compute_seconds=compute_s,
            bytes_moved=self.predicted_bytes(traits, m, n, k, params),
            breakdown={
                "t_a": costs.t_a, "t_b": costs.t_b, "t_c": costs.t_c,
                "t_compute": costs.t_compute, "t_sync": costs.t_sync,
                "grid": (grid_m, grid_n, grid_k),
            },
        )

    # -- blocked variants ----------------------------------------------

    @staticmethod
    def _single_buffered_seconds(
        c: BlockCosts, grid_m: int, grid_n: int, grid_k: int
    ) -> tuple[float, float]:
        per_i = c.t_a + 2 * c.t_c + c.t_compute + c.t_sync
        total = grid_n * grid_k * (c.t_b + c.t_sync + grid_m * per_i)
        dma = grid_n * grid_k * (c.t_b + grid_m * (c.t_a + 2 * c.t_c))
        return total, dma

    @staticmethod
    def _double_buffered_seconds(
        c: BlockCosts, grid_m: int, grid_n: int, grid_k: int
    ) -> tuple[float, float]:
        if grid_m == 1:
            per_jl = c.t_b + c.t_a + c.t_c + c.t_sync + c.t_compute + c.t_c
        else:
            per_jl = (
                c.t_b + c.t_a + c.t_c + c.t_sync                    # prologue
                + max(c.t_a + c.t_c, c.t_compute) + c.t_sync        # i = 1 prefetch
                + (grid_m - 2) * (max(c.dma_steady, c.t_compute) + c.t_sync)
                + 2 * c.t_c + c.t_compute                           # drain
            )
        total = grid_n * grid_k * per_jl
        dma = grid_n * grid_k * (c.t_b + grid_m * (c.t_a + 2 * c.t_c))
        return total, dma

    # -- RAW -----------------------------------------------------------------

    def _estimate_raw(self, traits: VariantTraits, m: int, n: int, k: int) -> GemmEstimate:
        t_m, t_n, t_k = RawVariant.tile_geometry(m, n, k)
        panel_m, panel_n = m // GRID, n // GRID
        tiles_per_thread = (panel_m // t_m) * (panel_n // t_n)
        chunks = k // t_k
        n_threads = GRID * GRID

        a_tr = BlockTransfer("A", segments=t_k, segment_doubles=t_m)
        b_tr = BlockTransfer("B", segments=t_n, segment_doubles=t_k)
        c_tr = BlockTransfer("C", segments=t_n, segment_doubles=t_m)
        per_thread_requests = tiles_per_thread * (2 + 2 * chunks)
        channel = n_threads * tiles_per_thread * (
            chunks * (self.dma.seconds(a_tr, False) + self.dma.seconds(b_tr, False))
            + 2 * self.dma.seconds(c_tr, False)
        )
        compute = tiles_per_thread * chunks * self.kernel.thread_tile_multiply_seconds(
            t_m, t_n, t_k, traits.kernel
        )
        thread_latency = per_thread_requests * self.cal.request_latency_s
        seconds = max(channel, compute + thread_latency)
        bytes_moved = n_threads * tiles_per_thread * (
            chunks * (a_tr.nbytes + b_tr.nbytes) + 2 * c_tr.nbytes
        )
        return GemmEstimate(
            variant=traits.name,
            m=m, n=n, k=k,
            seconds=seconds,
            dma_seconds=channel,
            compute_seconds=compute,
            bytes_moved=bytes_moved,
            breakdown={
                "tiles": (t_m, t_n, t_k),
                "per_thread_requests": per_thread_requests,
                "thread_latency": thread_latency,
            },
        )

    # -- byte accounting (cross-checked against the functional DMA stats) --

    @staticmethod
    def predicted_bytes(
        traits: VariantTraits, m: int, n: int, k: int, params: BlockingParams
    ) -> int:
        """Bytes the blocked loop moves: C twice per K-step, A once per
        N-step, B once (the Sec III-C traffic formula, exactly)."""
        grid_m, grid_n, grid_k = params.check_shape(m, n, k)
        c_bytes = 2 * grid_k * m * n * 8
        a_bytes = grid_n * m * k * 8
        b_bytes = k * n * 8
        return c_bytes + a_bytes + b_bytes
