"""Roofline model for the CG.

Useful context for the Figure 6 discussion: the blocked DGEMM's
arithmetic intensity (Sec III-C's S, in flops per byte) against the
machine balance explains which variants are memory-bound.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.arch.config import SW26010Spec, DEFAULT_SPEC

__all__ = ["arithmetic_intensity", "roofline_gflops", "machine_balance"]


def arithmetic_intensity(flops: float, bytes_moved: float) -> float:
    """Flops per byte of main-memory traffic."""
    if bytes_moved <= 0:
        raise ConfigError("bytes_moved must be positive")
    return flops / bytes_moved


def roofline_gflops(
    intensity: float,
    spec: SW26010Spec = DEFAULT_SPEC,
    bandwidth: float | None = None,
) -> float:
    """Attainable Gflop/s at a given arithmetic intensity.

    ``bandwidth`` defaults to the theoretical DMA channel (34 GB/s);
    pass an effective bandwidth from the DMA model for a tighter roof.
    """
    if intensity <= 0:
        raise ConfigError("intensity must be positive")
    bw = spec.dma.peak_bandwidth if bandwidth is None else bandwidth
    return min(spec.peak_flops, intensity * bw) / 1e9


def machine_balance(spec: SW26010Spec = DEFAULT_SPEC) -> float:
    """Flops/byte needed to saturate the FP pipes: F / Bt (~21.8)."""
    return spec.peak_flops / spec.dma.peak_bandwidth
