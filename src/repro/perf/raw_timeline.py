"""Event-driven timeline of the RAW variant: 64 contending threads.

The blocked variants are bulk-synchronous, so their closed forms are
exact; RAW is not — its 64 threads issue independent PE_MODE transfers
that contend for the single DMA channel, and
:meth:`repro.perf.estimator.Estimator._estimate_raw` approximates the
makespan as ``max(channel_busy, per-thread compute + request latency)``.

This module runs the real thing: one generator process per CPE, each
looping over its C tiles (C get, k-chunk loop of A/B gets + compute,
C put) with every transfer holding the shared channel Resource.  The
result bounds the closed form from above (contention can only add
waiting) and the integration tests quantify how tight the
approximation is.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import SW26010Spec, DEFAULT_SPEC
from repro.core.params import GRID
from repro.core.variants.raw import RawVariant
from repro.perf.calibration import Calibration, DEFAULT_CALIBRATION
from repro.perf.dma_model import BlockTransfer, DMACostModel
from repro.perf.kernel_model import KernelModel
from repro.sim import AllOf, Engine, Resource

__all__ = ["RawTimelineResult", "simulate_raw"]


@dataclass(frozen=True)
class RawTimelineResult:
    m: int
    n: int
    k: int
    seconds: float
    channel_busy: float
    #: completion time of the first and last thread (imbalance probe).
    first_thread_done: float
    last_thread_done: float

    @property
    def gflops(self) -> float:
        return 2 * self.m * self.n * self.k / self.seconds / 1e9

    @property
    def channel_utilization(self) -> float:
        return self.channel_busy / self.seconds if self.seconds else 0.0


def simulate_raw(
    m: int,
    n: int,
    k: int,
    spec: SW26010Spec = DEFAULT_SPEC,
    calibration: Calibration = DEFAULT_CALIBRATION,
) -> RawTimelineResult:
    """Run the 64-thread RAW schedule on the event engine."""
    t_m, t_n, t_k = RawVariant.tile_geometry(m, n, k)
    panel_m, panel_n = m // GRID, n // GRID
    tiles = (panel_m // t_m) * (panel_n // t_n)
    chunks = k // t_k

    dma = DMACostModel(spec, calibration)
    t_a = dma.seconds(BlockTransfer("A", t_k, t_m), include_request=False)
    t_b = dma.seconds(BlockTransfer("B", t_n, t_k), include_request=False)
    t_c = dma.seconds(BlockTransfer("C", t_n, t_m), include_request=False)
    t_req = calibration.request_latency_s
    t_cmp = KernelModel(spec).thread_tile_multiply_seconds(t_m, t_n, t_k)

    engine = Engine()
    channel = Resource(engine, capacity=1, name="dma_channel")

    def transfer(duration: float):
        # the request overhead is thread-local latency, not channel
        # occupancy: the thread waits, the channel serves others
        yield engine.process(channel.use(duration))
        yield engine.timeout(t_req)

    def thread():
        for _tile in range(tiles):
            yield engine.process(transfer(t_c))           # C get
            for _chunk in range(chunks):
                yield engine.process(transfer(t_a))       # A get
                yield engine.process(transfer(t_b))       # B get
                yield engine.timeout(t_cmp)               # tile multiply
            yield engine.process(transfer(t_c))           # C put
        return engine.now

    threads = [engine.process(thread(), name=f"cpe{i}") for i in range(GRID * GRID)]
    done = AllOf(engine, threads)
    finish_times = engine.run(done)
    return RawTimelineResult(
        m=m, n=n, k=k,
        seconds=engine.now,
        channel_busy=channel.busy_time,
        first_thread_done=min(finish_times),
        last_thread_done=max(finish_times),
    )
