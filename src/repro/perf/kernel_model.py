"""Kernel cycle model: seconds of compute per CG-block multiply.

The paper's compute cost is entirely determined by the microkernel's
cycles-per-iteration, which :mod:`repro.isa` derives by simulating the
actual instruction streams.  This module caches those profiles and
converts them to seconds for the shapes the estimator needs.
"""

from __future__ import annotations

from functools import lru_cache

from repro.errors import ConfigError
from repro.arch.config import SW26010Spec, DEFAULT_SPEC
from repro.core.params import BlockingParams
from repro.isa.kernels import MicrokernelSpec
from repro.isa.profile import KernelProfile, profile_kernel

__all__ = ["KernelModel"]


@lru_cache(maxsize=64)
def _profile(p_m: int, p_n: int, p_k: int, scheduled: bool) -> KernelProfile:
    return profile_kernel(MicrokernelSpec(p_m, p_n, p_k), scheduled=scheduled)


class KernelModel:
    """Converts ISA profiles into per-block compute times."""

    def __init__(self, spec: SW26010Spec = DEFAULT_SPEC) -> None:
        self.spec = spec

    @staticmethod
    def profile(params: BlockingParams, kernel: str) -> KernelProfile:
        """The strip-multiplication profile for a blocked variant."""
        scheduled = KernelModel._is_scheduled(kernel)
        return _profile(params.p_m, params.p_n, params.p_k, scheduled)

    @staticmethod
    def _is_scheduled(kernel: str) -> bool:
        if kernel not in ("naive", "scheduled"):
            raise ConfigError(f"unknown kernel class {kernel!r}")
        return kernel == "scheduled"

    def block_multiply_seconds(self, params: BlockingParams, kernel: str) -> float:
        """One CG-block multiply: the 8-step strip multiplication.

        All 64 CPEs run the same cycle count concurrently (SIMT), so
        the wall time is one CPE's strip cycles.
        """
        return self.profile(params, kernel).strip_cycles / self.spec.clock_hz

    def thread_tile_multiply_seconds(
        self, t_m: int, t_n: int, t_k: int, kernel: str = "naive"
    ) -> float:
        """One per-thread tile multiply (the RAW variant's unit of work)."""
        scheduled = self._is_scheduled(kernel)
        prof = _profile(t_m, t_n, t_k, scheduled)
        # tile_cycles covers one register tile's k-loop; a thread tile
        # multiply runs tiles_per_thread_multiply of them
        cycles = prof.tile_cycles * prof.spec.tiles_per_thread_multiply
        return cycles / self.spec.clock_hz

    def kernel_efficiency(self, params: BlockingParams, kernel: str) -> float:
        """FP-pipe efficiency of the kernel class for these params."""
        return self.profile(params, kernel).efficiency
