"""Event-driven replay of the GEMM loop structures.

Runs Algorithm 1 (single buffered) or Algorithm 2 (double buffered) as
concurrent processes on :mod:`repro.sim`: a compute stream and a DMA
stream sharing the memory channel as a :class:`Resource`.  Produces the
same totals as the closed forms in :mod:`repro.perf.estimator` — an
integration test asserts that — plus a :class:`~repro.sim.trace.Tracer`
timeline from which DMA/compute overlap can be measured, e.g. to show
that double buffering hides the steady-state transfers completely once
compute dominates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.arch.config import SW26010Spec, DEFAULT_SPEC
from repro.core.params import BlockingParams
from repro.core.variants import VARIANTS
from repro.perf.calibration import Calibration, DEFAULT_CALIBRATION
from repro.perf.estimator import BlockCosts, Estimator
from repro.sim import AllOf, Engine, Resource, Tracer

__all__ = ["TimelineResult", "TimelineSimulator"]


@dataclass
class TimelineResult:
    """Outcome of one timeline run."""

    variant: str
    m: int
    n: int
    k: int
    seconds: float
    tracer: Tracer
    channel_busy: float

    @property
    def gflops(self) -> float:
        return 2 * self.m * self.n * self.k / self.seconds / 1e9

    @property
    def overlap_seconds(self) -> float:
        """Time during which DMA and compute proceeded concurrently."""
        return self.tracer.overlap("dma", "compute")


class TimelineSimulator:
    """Replays a blocked variant's loop structure on the event engine."""

    def __init__(
        self,
        spec: SW26010Spec = DEFAULT_SPEC,
        calibration: Calibration = DEFAULT_CALIBRATION,
    ) -> None:
        self.spec = spec
        self.estimator = Estimator(spec, calibration)

    def run(
        self,
        variant: str,
        m: int,
        n: int,
        k: int,
        params: BlockingParams | None = None,
    ) -> TimelineResult:
        impl = VARIANTS[variant.upper()]()
        traits = impl.traits
        if not traits.shared:
            raise ConfigError(
                "the timeline replays the blocked loop structures; RAW has "
                "no CG-level loop (use Estimator for RAW)"
            )
        params = params or impl.default_params()
        params.validate(self.spec)
        grid = params.check_shape(m, n, k)
        costs = self.estimator.block_costs(traits, params)

        engine = Engine()
        tracer = Tracer()
        channel = Resource(engine, capacity=1, name="dma_channel")
        if traits.double_buffered:
            body = self._double_buffered(engine, channel, tracer, costs, *grid)
        else:
            body = self._single_buffered(engine, channel, tracer, costs, *grid)
        main = engine.process(body, name=f"{traits.name}-gemm")
        engine.run(main)
        return TimelineResult(
            variant=traits.name, m=m, n=n, k=k,
            seconds=engine.now, tracer=tracer, channel_busy=channel.busy_time,
        )

    # -- building blocks ---------------------------------------------------

    def _transfer(self, engine: Engine, channel: Resource, tracer: Tracer,
                  duration: float, label: str):
        """A DMA op: hold the channel for its duration, trace it."""
        start = engine.now
        yield engine.process(channel.use(duration), name=f"dma:{label}")
        tracer.record("dma", label, start, engine.now)

    def _compute(self, engine: Engine, tracer: Tracer, duration: float, label: str):
        start = engine.now
        yield engine.timeout(duration)
        tracer.record("compute", label, start, engine.now)

    # -- Algorithm 1 -----------------------------------------------------

    def _single_buffered(self, engine, channel, tracer, c: BlockCosts,
                         grid_m: int, grid_n: int, grid_k: int):
        for j in range(grid_n):
            for l in range(grid_k):
                yield engine.process(
                    self._transfer(engine, channel, tracer, c.t_b, f"B{l},{j}")
                )
                yield engine.timeout(c.t_sync)
                for i in range(grid_m):
                    yield engine.process(self._transfer(
                        engine, channel, tracer, c.t_a, f"A{i},{l}"))
                    yield engine.process(self._transfer(
                        engine, channel, tracer, c.t_c, f"Cget{i},{j}"))
                    yield engine.process(self._compute(
                        engine, tracer, c.t_compute, f"mul{i},{j},{l}"))
                    yield engine.process(self._transfer(
                        engine, channel, tracer, c.t_c, f"Cput{i},{j}"))
                    yield engine.timeout(c.t_sync)

    # -- Algorithm 2 ---------------------------------------------------------

    def _double_buffered(self, engine, channel, tracer, c: BlockCosts,
                         grid_m: int, grid_n: int, grid_k: int):
        def dma_batch(ops: list[tuple[float, str]]):
            for duration, label in ops:
                yield engine.process(
                    self._transfer(engine, channel, tracer, duration, label)
                )

        for j in range(grid_n):
            for l in range(grid_k):
                # lines 3-6: B, A0, C0, sync
                yield engine.process(dma_batch(
                    [(c.t_b, "B"), (c.t_a, "A0"), (c.t_c, "Cget0")]))
                yield engine.timeout(c.t_sync)
                if grid_m == 1:
                    yield engine.process(self._compute(engine, tracer, c.t_compute, "mul0"))
                    yield engine.process(dma_batch([(c.t_c, "Cput0")]))
                    continue
                # lines 7-11: prefetch (A1, C1) overlapped with compute 0
                dma = engine.process(dma_batch([(c.t_a, "A1"), (c.t_c, "Cget1")]))
                cmp_ = engine.process(self._compute(engine, tracer, c.t_compute, "mul0"))
                yield AllOf(engine, [dma, cmp_])
                yield engine.timeout(c.t_sync)
                # lines 12-19
                for i in range(2, grid_m):
                    dma = engine.process(dma_batch([
                        (c.t_c, f"Cput{i - 2}"), (c.t_a, f"A{i}"), (c.t_c, f"Cget{i}"),
                    ]))
                    cmp_ = engine.process(
                        self._compute(engine, tracer, c.t_compute, f"mul{i - 1}"))
                    yield AllOf(engine, [dma, cmp_])
                    yield engine.timeout(c.t_sync)
                # lines 20-23
                yield engine.process(dma_batch([(c.t_c, f"Cput{grid_m - 2}")]))
                yield engine.process(
                    self._compute(engine, tracer, c.t_compute, f"mul{grid_m - 1}"))
                yield engine.process(dma_batch([(c.t_c, f"Cput{grid_m - 1}")]))
