"""Performance models: what the paper measured on silicon, modelled.

Layers, bottom-up:

- :mod:`repro.perf.calibration` — the few fitted constants, with
  provenance (all fitted once against Figure 4 and the hardware specs,
  never per-experiment);
- :mod:`repro.perf.dma_model` — transaction/segment-level DMA cost:
  effective bandwidth emerges from segment geometry, which is how
  PE_MODE's 128 B scattered segments lose to ROW_MODE's 1 KB columns;
- :mod:`repro.perf.kernel_model` — seconds per CG-block multiply from
  the :mod:`repro.isa` pipeline profiles;
- :mod:`repro.perf.estimator` — closed-form end-to-end Gflop/s per
  (variant, shape), exploiting the lock-step structure of
  Algorithms 1/2;
- :mod:`repro.perf.timeline` — the same loop structures replayed on
  the discrete-event engine (used to validate the closed forms and to
  report DMA/compute overlap);
- :mod:`repro.perf.roofline` — the CG roofline;
- :mod:`repro.perf.report` — paper-vs-measured tables.
"""

from repro.perf.calibration import Calibration, DEFAULT_CALIBRATION
from repro.perf.dma_model import DMACostModel, BlockTransfer
from repro.perf.kernel_model import KernelModel
from repro.perf.estimator import Estimator, GemmEstimate
from repro.perf.timeline import TimelineSimulator
from repro.perf.roofline import roofline_gflops, arithmetic_intensity

__all__ = [
    "Calibration",
    "DEFAULT_CALIBRATION",
    "DMACostModel",
    "BlockTransfer",
    "KernelModel",
    "Estimator",
    "GemmEstimate",
    "TimelineSimulator",
    "roofline_gflops",
    "arithmetic_intensity",
]
