"""ASCII Gantt rendering of timeline traces.

Turns a :class:`~repro.sim.trace.Tracer` into a terminal chart so the
double-buffering overlap of Algorithm 2 is *visible*: one lane per
category, time bucketed into fixed-width cells, a cell marked when any
span of that category is active inside it.

Example output for a DB run::

    dma      ███▒░░█▒░░█▒░░█▒░░█▒...
    compute     ████████████████...
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.sim.trace import Tracer

__all__ = ["render_gantt"]

#: glyphs by activity fraction of a cell.
_GLYPHS = " .:-=#"


def _cell_glyph(fraction: float) -> str:
    fraction = min(max(fraction, 0.0), 1.0)
    return _GLYPHS[min(int(fraction * (len(_GLYPHS) - 1) + 0.9999), len(_GLYPHS) - 1)]


def render_gantt(
    tracer: Tracer,
    width: int = 72,
    categories: list[str] | None = None,
    start: float | None = None,
    end: float | None = None,
) -> str:
    """Render the trace as one text lane per category.

    Each cell's glyph encodes the fraction of the cell's time window
    during which the category was active (space = idle, ``#`` = fully
    busy), so partially overlapped transfers read as lighter shading.
    """
    if width < 8:
        raise ConfigError(f"gantt width must be >= 8, got {width}")
    categories = categories or tracer.categories()
    if not tracer.spans or not categories:
        return "(empty trace)"
    t0 = min(s.start for s in tracer.spans) if start is None else start
    t1 = max(s.end for s in tracer.spans) if end is None else end
    if t1 <= t0:
        raise ConfigError(f"empty time window [{t0}, {t1}]")
    cell = (t1 - t0) / width

    label_width = max(len(c) for c in categories)
    lines = []
    for category in categories:
        intervals = sorted(
            (s.start, s.end) for s in tracer.filter(category)
        )
        cells = []
        for i in range(width):
            lo = t0 + i * cell
            hi = lo + cell
            busy = 0.0
            for s_start, s_end in intervals:
                if s_start >= hi:
                    break
                overlap = min(hi, s_end) - max(lo, s_start)
                if overlap > 0:
                    busy += overlap
            cells.append(_cell_glyph(busy / cell))
        lines.append(f"{category.ljust(label_width)} |{''.join(cells)}|")
    header = (
        f"{' ' * label_width} |{'time -> '.ljust(width)[:width]}|"
        f"  [{t0:.3e}s, {t1:.3e}s]"
    )
    return "\n".join([header, *lines])
