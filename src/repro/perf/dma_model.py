"""Segment-level DMA cost model.

A DMA transfer is a set of contiguous *segments* (one per matrix column
of the transferred region), each split into 128 B transactions.  Cost:

    seconds = n_segments * segment_overhead
            + n_transactions * (128 / peak_bandwidth + tx_overhead)
            + request_latency          (once per block-level operation)

Effective bandwidth therefore *emerges* from segment geometry:

- the instinctive PE_MODE mapping moves A and C in 16-row tiles, so
  every segment is a single scattered 128 B transaction -> ~19.5 GB/s;
- ROW_MODE moves whole ``bM = 128``-row columns, 1 KB contiguous
  segments of 8 back-to-back transactions -> ~29 GB/s;
- PE_MODE B tiles (96-row segments) sit in between (~28.7 GB/s) — B's
  traffic is amortized anyway, which is why the paper keeps it in
  PE_MODE ("ROW_MODE is not applicable to B").

This is the model behind the Figure 4 reproduction and behind every
transfer the estimator/timeline charge.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DMAError
from repro.arch.config import SW26010Spec, DEFAULT_SPEC
from repro.perf.calibration import Calibration, DEFAULT_CALIBRATION

__all__ = ["BlockTransfer", "DMACostModel"]


@dataclass(frozen=True)
class BlockTransfer:
    """Geometry of one block-level DMA operation.

    ``segment_doubles`` is the contiguous run length in doubles (the
    row count of the transferred tile, or ``bM`` for ROW_MODE);
    ``segments`` is how many such runs the whole block operation moves
    (summed over all participating CPEs).
    """

    label: str
    segments: int
    segment_doubles: int

    def __post_init__(self) -> None:
        if self.segments <= 0 or self.segment_doubles <= 0:
            raise DMAError(f"empty transfer geometry: {self}")
        if (self.segment_doubles * 8) % 128 != 0:
            raise DMAError(
                f"segment of {self.segment_doubles} doubles is not a "
                "multiple of the 128 B transaction unit"
            )

    @property
    def nbytes(self) -> int:
        return self.segments * self.segment_doubles * 8

    @property
    def transactions(self) -> int:
        return self.nbytes // 128


class DMACostModel:
    """Maps transfer geometry to seconds."""

    def __init__(
        self,
        spec: SW26010Spec = DEFAULT_SPEC,
        calibration: Calibration = DEFAULT_CALIBRATION,
    ) -> None:
        self.spec = spec
        self.cal = calibration

    def seconds(self, transfer: BlockTransfer, include_request: bool = True) -> float:
        """Time for one block-level operation."""
        per_tx = 128.0 / self.spec.dma.peak_bandwidth + self.cal.tx_overhead_s
        t = (
            transfer.segments * self.cal.segment_overhead_s
            + transfer.transactions * per_tx
        )
        if include_request:
            t += self.cal.request_latency_s
        return t

    def effective_bandwidth(self, segment_doubles: int) -> float:
        """Asymptotic B/s for transfers made of such segments."""
        t = self.seconds(
            BlockTransfer("probe", segments=1, segment_doubles=segment_doubles),
            include_request=False,
        )
        return segment_doubles * 8 / t

    # -- block-transfer constructors for the GEMM mappings ----------------

    def pe_tile_block(self, label: str, tile_rows: int, tile_cols: int,
                      n_cpes: int = 64) -> BlockTransfer:
        """PE_MODE: every CPE fetches its own tile; segments are tile columns."""
        return BlockTransfer(label, segments=tile_cols * n_cpes,
                             segment_doubles=tile_rows)

    def row_strip_block(self, label: str, b_m: int, strip_cols: int,
                        n_strips: int = 8) -> BlockTransfer:
        """ROW_MODE: each mesh row collectively fetches a bM-tall strip."""
        return BlockTransfer(label, segments=strip_cols * n_strips,
                             segment_doubles=b_m)
