"""Paper-vs-measured reporting helpers.

Every experiment produces rows of (label, paper value, measured value);
this module renders them uniformly and computes the deviation columns
EXPERIMENTS.md records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.utils.format import Table

__all__ = ["ComparisonRow", "comparison_table", "series_table"]


@dataclass(frozen=True)
class ComparisonRow:
    """One reproduced quantity."""

    label: str
    paper: float | None
    measured: float
    unit: str = ""

    @property
    def deviation(self) -> float | None:
        """Relative deviation measured vs paper (None if no paper value)."""
        if self.paper in (None, 0):
            return None
        return (self.measured - self.paper) / self.paper


def comparison_table(rows: Iterable[ComparisonRow], title: str | None = None) -> Table:
    table = Table(["quantity", "paper", "measured", "deviation"], title=title)
    for row in rows:
        table.add_row([
            row.label,
            "-" if row.paper is None else f"{row.paper:.1f}{row.unit}",
            f"{row.measured:.1f}{row.unit}",
            "-" if row.deviation is None else f"{row.deviation:+.1%}",
        ])
    return table


def series_table(
    x_label: str,
    xs: Sequence[object],
    series: dict[str, Sequence[float]],
    title: str | None = None,
) -> Table:
    """A figure-style table: one x column, one column per series."""
    lengths = {name: len(vals) for name, vals in series.items()}
    bad = {name: n for name, n in lengths.items() if n != len(xs)}
    if bad:
        raise ValueError(f"series lengths {bad} do not match {len(xs)} x values")
    table = Table([x_label, *series], title=title)
    for idx, x in enumerate(xs):
        table.add_row([x, *(series[name][idx] for name in series)])
    return table
