"""Calibration constants for the performance models.

Everything that is not a published hardware parameter lives here, with
its provenance.  The rule (DESIGN.md Sec 2): constants are fitted once,
against Figure 4 and the Sec IV-C profile, and then *frozen* — the
Figure 6/7 reproductions consume them untouched.

Provenance of each constant:

``tx_overhead_s`` (0.28 ns)
    memory-controller arbitration charged per 128 B transaction.
    Fitted so ROW_MODE's 1 KB-segment plateau lands at ~29 GB/s, inside
    Figure 4's ROW_MODE saturation band (27-29 GB/s).

``segment_overhead_s`` (2.52 ns)
    cost of starting a new contiguous segment (DRAM row activation /
    strided-access penalty).  Together with ``tx_overhead_s`` it puts
    the PE_MODE 128 B-segment plateau at ~19.5 GB/s, inside Figure 4's
    PE_MODE band.  This single pair of constants *derives* the
    PE-vs-ROW gap from segment geometry instead of asserting two
    bandwidths.

``request_latency_s`` (1 us)
    issue + reply-counter cost of one block-level DMA operation
    (64 descriptors in PE_MODE, 8 collectives in ROW_MODE).  Order of
    magnitude from the ~1000-cycle athread DMA round trip; only visible
    for small matrices.

``microbench_setup_s`` (450 us)
    one-time cost of the Figure 4 micro-benchmark harness (thread-team
    spawn + first-touch warmup).  Fitted to the low end of Figure 4
    (both curves start well below their plateaus at m = k = 1536).
    Used only by the Figure 4 experiment.

``cluster_sync_cycles`` (2000)
    cluster-wide barrier + DMA reply polling per Algorithm 1/2
    iteration.  Microsecond-scale synchronization is the documented
    cost of athread barriers; the value nudges SCHED's asymptote from
    the kernel-only 97.6% down toward the paper's 95%.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import SW26010Spec, DEFAULT_SPEC

__all__ = ["Calibration", "DEFAULT_CALIBRATION"]


@dataclass(frozen=True)
class Calibration:
    """Frozen model constants (see module docstring for provenance)."""

    tx_overhead_s: float = 0.28e-9
    segment_overhead_s: float = 2.52e-9
    request_latency_s: float = 1.0e-6
    microbench_setup_s: float = 450e-6
    cluster_sync_cycles: int = 2000

    def sync_seconds(self, spec: SW26010Spec = DEFAULT_SPEC) -> float:
        """One cluster barrier in seconds."""
        return self.cluster_sync_cycles / spec.clock_hz


DEFAULT_CALIBRATION = Calibration()
