"""E3 — Figure 7: SCHED performance across non-square shapes.

Paper finding: "The performance for matrices with small m is relatively
low ... because a block of A and C are prefetched before the main
M-loop, causing an extra cost of data loading.  When m is larger, the
overhead of prefetching can be better amortized.  On the other hand,
the sizes of n and k have negligible influence."

The reproduction sweeps each dimension through {1536 .. 12288} with the
other two pinned at the saturated 9216 and reports, per dimension, the
spread (max/min - 1): m's spread must be large, n's and k's small.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import SW26010Spec, DEFAULT_SPEC
from repro.perf.calibration import Calibration, DEFAULT_CALIBRATION
from repro.perf.estimator import Estimator
from repro.utils.format import Table
from repro.workloads.shapes import FIG7_SHAPES

__all__ = ["Fig7Result", "run", "render"]


@dataclass(frozen=True)
class Fig7Result:
    shapes: tuple[tuple[int, int, int], ...]
    gflops: tuple[float, ...]

    def by_shape(self) -> dict[tuple[int, int, int], float]:
        return dict(zip(self.shapes, self.gflops))

    def spread(self, dim: str) -> float:
        """(max/min - 1) of Gflop/s along the sweep of one dimension."""
        index = {"m": 0, "n": 1, "k": 2}[dim]
        base = 9216
        vals = [
            g
            for shape, g in zip(self.shapes, self.gflops)
            if all(shape[i] == base for i in range(3) if i != index)
        ]
        return max(vals) / min(vals) - 1.0


def run(
    shapes: tuple[tuple[int, int, int], ...] = FIG7_SHAPES,
    variant: str = "SCHED",
    spec: SW26010Spec = DEFAULT_SPEC,
    calibration: Calibration = DEFAULT_CALIBRATION,
) -> Fig7Result:
    estimator = Estimator(spec, calibration)
    gflops = tuple(
        estimator.estimate(variant, m, n, k).gflops for (m, n, k) in shapes
    )
    return Fig7Result(shapes=tuple(shapes), gflops=gflops)


def render(result: Fig7Result | None = None) -> Table:
    result = result or run()
    table = Table(
        ["m", "n", "k", "Gflop/s"],
        title="Figure 7 — SCHED across matrix shapes "
              "(paper: small m hurts; n, k negligible)",
    )
    for (m, n, k), g in zip(result.shapes, result.gflops):
        table.add_row([m, n, k, g])
    return table
