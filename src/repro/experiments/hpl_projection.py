"""E8 (extension) — projecting the paper's kernel into an HPL run.

The introduction motivates DGEMM through HPL ("a performance-critical
basis in the HPL package").  This experiment makes the connection
quantitative on one CG: enumerate the trailing-update DGEMM sequence of
an HPL factorization, price every update with the performance model
(padded to the CG block factors, exactly as a real port would), and
report

- the fraction of HPL's flops that are DGEMM,
- the flop-weighted DGEMM rate over the whole sequence (early huge
  updates run near 706 Gflop/s; late skinny ones pay the Figure 7
  small-m penalty),
- the resulting ceiling on single-CG HPL efficiency if every non-GEMM
  flop were free — context for TaihuLight's measured HPL/peak ratio of
  74% (93/125.4 Pflops, Sec I).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import SW26010Spec, DEFAULT_SPEC
from repro.core.params import BlockingParams
from repro.perf.calibration import Calibration, DEFAULT_CALIBRATION
from repro.perf.estimator import Estimator
from repro.utils.format import Table
from repro.workloads.hpl import HPLTrace, hpl_trace

__all__ = ["HPLProjection", "run", "render"]


#: assumed rate of the non-GEMM work (panel factorization, pivoting,
#: swaps): latency-bound code on the MPE + CPEs, a few percent of peak.
PANEL_RATE_FRACTION = 0.05


@dataclass(frozen=True)
class HPLProjection:
    trace: HPLTrace
    gemm_seconds: float
    weighted_gflops: float
    hpl_efficiency_ceiling: float
    hpl_efficiency_projected: float


def run(
    n: int = 15360,
    nb: int = 768,
    variant: str = "SCHED",
    spec: SW26010Spec = DEFAULT_SPEC,
    calibration: Calibration = DEFAULT_CALIBRATION,
) -> HPLProjection:
    trace = hpl_trace(n, nb)
    estimator = Estimator(spec, calibration)
    params = BlockingParams.paper_double()
    gemm_seconds = 0.0
    for m, n_, k in trace.updates:
        pm = -(-m // params.b_m) * params.b_m
        pn = -(-n_ // params.b_n) * params.b_n
        pk = -(-k // params.b_k) * params.b_k
        gemm_seconds += estimator.estimate(variant, pm, pn, pk, params=params).seconds
    weighted = trace.gemm_flops / gemm_seconds / 1e9
    # if everything but DGEMM were instantaneous:
    ceiling = trace.total_flops / gemm_seconds / spec.peak_flops
    other_flops = trace.total_flops - trace.gemm_flops
    other_seconds = other_flops / (PANEL_RATE_FRACTION * spec.peak_flops)
    projected = trace.total_flops / (gemm_seconds + other_seconds) / spec.peak_flops
    return HPLProjection(
        trace=trace,
        gemm_seconds=gemm_seconds,
        weighted_gflops=weighted,
        hpl_efficiency_ceiling=min(ceiling, 1.0),
        hpl_efficiency_projected=projected,
    )


def render(result: HPLProjection | None = None) -> Table:
    result = result or run()
    trace = result.trace
    table = Table(
        ["quantity", "value"],
        title=f"E8 — HPL projection on one CG (N={trace.n}, NB={trace.nb})",
    )
    table.add_row(["trailing updates", len(trace.updates)])
    table.add_row(["largest / smallest update",
                   f"{trace.updates[0][0]} / {trace.updates[-1][0]}"])
    table.add_row(["DGEMM share of HPL flops", f"{100 * trace.gemm_fraction:.1f}%"])
    table.add_row(["flop-weighted DGEMM rate", f"{result.weighted_gflops:.1f} Gflop/s"])
    table.add_row(["DGEMM wall time", f"{result.gemm_seconds:.2f} s"])
    table.add_row(["HPL eff. ceiling (panels overlapped via lookahead)",
                   f"{100 * result.hpl_efficiency_ceiling:.1f}%"])
    table.add_row([
        f"HPL eff., serial panels at {100 * PANEL_RATE_FRACTION:.0f}% of peak "
        "(no lookahead)",
        f"{100 * result.hpl_efficiency_projected:.1f}%",
    ])
    table.add_row(["TaihuLight measured HPL/peak (Sec I; full machine, "
                   "incl. network)", "74.2%"])
    return table
