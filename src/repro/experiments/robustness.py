"""R1 — robustness: do the conclusions survive calibration error?

The reproduction fits four constants (DMA transaction/segment
overheads, request latency, barrier cost).  This experiment perturbs
each by 0.5x and 2x and re-derives Figure 6's qualitative claims:

- strict ordering RAW < PE < ROW < DB < SCHED,
- SCHED efficiency in the 90-97% band,
- DB/ROW and SCHED/DB improvement factors within loose bands.

If a conclusion held only at the fitted point it would be an artifact
of calibration; the test suite asserts all orderings hold at *every*
perturbed corner.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.arch.config import SW26010Spec, DEFAULT_SPEC
from repro.perf.calibration import Calibration, DEFAULT_CALIBRATION
from repro.perf.estimator import Estimator
from repro.utils.format import Table

__all__ = ["RobustnessCase", "run", "render", "PERTURBED_FIELDS"]

VARIANTS = ("RAW", "PE", "ROW", "DB", "SCHED")
PERTURBED_FIELDS = (
    "tx_overhead_s",
    "segment_overhead_s",
    "request_latency_s",
    "cluster_sync_cycles",
)
SCALES = (0.5, 2.0)
SIZE = 9216


@dataclass(frozen=True)
class RobustnessCase:
    """Figure 6 headline under one perturbed calibration."""

    field: str
    scale: float
    gflops: dict
    ordering_holds: bool
    sched_efficiency: float


def _case(field: str, scale: float, spec: SW26010Spec) -> RobustnessCase:
    base = DEFAULT_CALIBRATION
    value = getattr(base, field)
    perturbed_value = (
        int(round(value * scale)) if isinstance(value, int) else value * scale
    )
    cal = replace(base, **{field: perturbed_value})
    estimator = Estimator(spec, cal)
    gflops = {v: estimator.estimate(v, SIZE, SIZE, SIZE).gflops for v in VARIANTS}
    series = [gflops[v] for v in VARIANTS]
    return RobustnessCase(
        field=field,
        scale=scale,
        gflops=gflops,
        ordering_holds=series == sorted(series) and len(set(series)) == len(series),
        sched_efficiency=gflops["SCHED"] * 1e9 / spec.peak_flops,
    )


def run(spec: SW26010Spec = DEFAULT_SPEC) -> list[RobustnessCase]:
    cases = [_case(field, scale, spec)
             for field in PERTURBED_FIELDS for scale in SCALES]
    # the fitted point itself, for reference
    cases.insert(0, _case(PERTURBED_FIELDS[0], 1.0, spec))
    return cases


def render(cases: list[RobustnessCase] | None = None) -> Table:
    cases = cases or run()
    table = Table(
        ["perturbation", *VARIANTS, "ordering", "SCHED eff"],
        title="R1 — Figure 6 conclusions under calibration perturbations "
              "(each fitted constant x0.5 / x2)",
    )
    for case in cases:
        label = "(fitted values)" if case.scale == 1.0 else (
            f"{case.field} x{case.scale:g}"
        )
        table.add_row([
            label,
            *(case.gflops[v] for v in VARIANTS),
            "holds" if case.ordering_holds else "BROKEN",
            f"{100 * case.sched_efficiency:.1f}%",
        ])
    return table
