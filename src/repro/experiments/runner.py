"""Experiment CLI: run any subset of E1-E5/A1-A4 and print the tables.

Usage::

    python -m repro.experiments [fig4] [fig6] [fig7] [blocksize] [sched]
                                [ablations] [all]

The same entry point backs the ``repro-experiments`` console script.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.experiments import (
    ablations,
    cache_ablation,
    multi_cg_scaling,
    numerics,
    fig4_dma_bandwidth,
    fig6_variants,
    fig7_shapes,
    future_hw,
    hpl_projection,
    robustness,
    sched_profile,
    scheduler_scaling,
    table_blocksize,
)

__all__ = ["main", "run_all", "EXPERIMENTS"]


def _render_fig6() -> str:
    result = fig6_variants.run()
    return "\n\n".join(
        [fig6_variants.render(result).render(),
         fig6_variants.render_headlines(result).render()]
    )


def _render_charts() -> str:
    from repro.experiments import charts

    return "\n\n".join(
        [charts.fig4_chart(), charts.fig6_chart(), charts.fig7_chart()]
    )


def _render_ablations() -> str:
    return "\n\n".join(
        [
            ablations.render_reside_matrix().render(),
            ablations.render_register_tiles().render(),
            ablations.render_split_sweep().render(),
            ablations.render_double_buffer_ldm().render(),
            ablations.render_cannon().render(),
        ]
    )


EXPERIMENTS: dict[str, Callable[[], str]] = {
    "fig4": lambda: fig4_dma_bandwidth.render().render(),
    "fig6": _render_fig6,
    "fig7": lambda: fig7_shapes.render().render(),
    "blocksize": lambda: table_blocksize.render().render(),
    "sched": lambda: sched_profile.render().render(),
    "ablations": _render_ablations,
    "cache": lambda: cache_ablation.render().render(),
    "multicg": lambda: multi_cg_scaling.render().render(),
    "scheduler": lambda: scheduler_scaling.render().render(),
    "hpl": lambda: hpl_projection.render().render(),
    "robustness": lambda: robustness.render().render(),
    "numerics": lambda: numerics.render().render(),
    "charts": _render_charts,
    "future": lambda: future_hw.render().render(),
}


def run_all() -> str:
    """Render every experiment (the body of EXPERIMENTS.md's tables)."""
    return "\n\n\n".join(EXPERIMENTS[name]() for name in EXPERIMENTS)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["all"],
        choices=[*EXPERIMENTS, "all"],
        help="which experiments to run (default: all)",
    )
    args = parser.parse_args(argv)
    names = list(EXPERIMENTS) if "all" in args.experiments else args.experiments
    for name in names:
        print(EXPERIMENTS[name]())
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
