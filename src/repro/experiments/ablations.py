"""A1-A4 — ablations of the design choices DESIGN.md calls out.

- **A1 reside matrix**: the paper keeps B resident in LDM (Algorithm 1's
  N-K-M nest).  Alternatives re-derive the Sec III-C traffic formula
  with A or C resident; B-resident wins because ``bK`` is the largest
  block dimension.
- **A2 register tile shape**: 4x4 vs the other feasible tiles.  For
  each tile the automatic scheduler builds and schedules the iteration
  body; throughput collapses when the operand loads (``rM + rN`` per
  iteration) outnumber the ``vmad`` slots (``rM * rN``) or the budget
  ``rM*rN + rM + rN < 32`` fails.
- **A3 bK = 2*bN**: sweeping the split under a fixed LDM budget shows
  the bandwidth-reduction optimum at ratio 2, as derived in Sec III-C1.
- **A4 double-buffer pN**: the LDM accounting that forces pN from 48
  to 32 when A and C get second buffers (Sec IV-B).
- **A7 broadcast sharing vs Cannon's algorithm**: the classic
  skew-and-shift mesh GEMM, implemented exactly
  (:mod:`repro.core.variants.cannon`), loses on this hardware because
  every CPE must *send* as well as receive each step — the per-iteration
  communication (8 receives + 8 sends) overflows the secondary pipe's
  16 dual-issue slots, starving the FP pipe, and the initial skew adds
  pure-communication rounds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import model
from repro.core.params import BlockingParams
from repro.errors import BlockingError
from repro.isa.instructions import Instr, addl, lddec, vldr, vmad
from repro.isa.kernels import scheduled_pipeline
from repro.isa.scheduler import list_schedule
from repro.utils.format import Table

__all__ = [
    "reside_matrix_traffic",
    "render_reside_matrix",
    "register_tile_throughput",
    "render_register_tiles",
    "bk_bn_split_sweep",
    "render_split_sweep",
    "double_buffer_ldm",
    "render_double_buffer_ldm",
    "cannon_comparison",
    "render_cannon",
]


# -- A1: reside matrix -------------------------------------------------------


def reside_matrix_traffic(
    m: int, n: int, k: int, b_m: int, b_n: int, b_k: int
) -> dict[str, float]:
    """Elements moved per flop-pair for each choice of resident matrix.

    Expressed as the asymptotic denominator of S (smaller is better):

    - B resident (paper): C moves 2K times, A moves N times ->
      ``2/bK + 1/bN``;
    - A resident: C moves 2K times, B moves M times -> ``2/bK + 1/bM``;
    - C resident: A moves N times, B moves M times -> ``1/bN + 1/bM``
      (C moves once, amortized away).
    """
    del m, n, k  # asymptotic forms
    return {
        "B (paper)": 2.0 / b_k + 1.0 / b_n,
        "A": 2.0 / b_k + 1.0 / b_m,
        "C": 1.0 / b_n + 1.0 / b_m,
    }


def render_reside_matrix() -> Table:
    p = BlockingParams.paper_double()
    traffic = reside_matrix_traffic(9216, 9216, 9216, p.b_m, p.b_n, p.b_k)
    table = Table(
        ["resident matrix", "traffic denominator", "S = 2/denom"],
        title="A1 — reside-matrix choice at (bM,bN,bK)=(128,256,768)",
    )
    for name, denom in traffic.items():
        table.add_row([name, f"{denom:.5f}", 2.0 / denom])
    return table


# -- A2: register tile shape ------------------------------------------------


def _generic_iteration(r_m: int, r_n: int) -> list[Instr]:
    """One unordered iteration body for an ``r_m x r_n`` register tile."""
    body: list[Instr] = []
    for i in range(r_m):
        body.append(vldr(f"rA{i}", "ldmA"))
    for j in range(r_n):
        body.append(lddec(f"rB{j}", "ldmB"))
    for i in range(r_m):
        for j in range(r_n):
            reg = f"rC{i}_{j}"
            body.append(vmad(reg, f"rA{i}", f"rB{j}", reg))
    body.append(addl("ldmA", "PM", "ldmA"))
    body.append(addl("ldmB", "two", "ldmB"))
    return body


@dataclass(frozen=True)
class TileThroughput:
    r_m: int
    r_n: int
    feasible: bool
    registers: int
    reduction: float
    cycles_per_iteration: float | None
    flops_per_cycle: float | None


def register_tile_throughput(
    shapes: tuple[tuple[int, int], ...] = ((4, 4), (2, 8), (8, 2), (2, 4), (5, 4), (1, 16), (6, 4)),
) -> list[TileThroughput]:
    pipe = scheduled_pipeline()
    out = []
    for r_m, r_n in shapes:
        budget = model.register_budget(r_m, r_n)
        feasible = model.register_fits(r_m, r_n)
        cycles = flops = None
        if feasible:
            body = list_schedule(_generic_iteration(r_m, r_n))
            cycles = pipe.steady_state_cycles(body)
            flops = 8.0 * r_m * r_n / cycles
        out.append(
            TileThroughput(
                r_m=r_m, r_n=r_n, feasible=feasible, registers=budget,
                reduction=model.register_bandwidth_reduction(r_m, r_n),
                cycles_per_iteration=cycles, flops_per_cycle=flops,
            )
        )
    return out


def render_register_tiles() -> Table:
    table = Table(
        ["tile", "registers", "feasible", "LDM reduction", "cycles/iter", "flops/cycle"],
        title="A2 — register tile shapes (auto-scheduled; peak is 8 flops/cycle)",
    )
    for t in register_tile_throughput():
        table.add_row([
            f"{t.r_m}x{t.r_n}",
            t.registers,
            "yes" if t.feasible else "no (>31)",
            t.reduction,
            "-" if t.cycles_per_iteration is None else f"{t.cycles_per_iteration:.1f}",
            "-" if t.flops_per_cycle is None else f"{t.flops_per_cycle:.2f}",
        ])
    # the paper's hand schedule shows 4x4's true optimum, which the
    # greedy list scheduler does not reach — 4x4 is the only shape that
    # can sustain one vmad per cycle while also maximising LDM reuse
    from repro.isa.kernels import scheduled_iteration

    hand = scheduled_pipeline().steady_state_cycles(scheduled_iteration())
    table.add_row([
        "4x4 (hand, Alg. 3)", model.register_budget(4, 4), "yes",
        model.register_bandwidth_reduction(4, 4), f"{hand:.1f}",
        f"{8.0 * 16 / hand:.2f}",
    ])
    return table


# -- A3: bK = 2*bN ----------------------------------------------------------


def bk_bn_split_sweep(
    budget: float = 1024.0, ratios: tuple[float, ...] = (0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 8.0)
) -> list[tuple[float, float, float, float]]:
    """Sweep ``bK/bN`` under the budget ``bK + 2*bN = budget``.

    Returns (ratio, bK, bN, S) rows; S peaks at ratio 2.
    """
    rows = []
    for ratio in ratios:
        b_n = budget / (ratio + 2.0)
        b_k = ratio * b_n
        rows.append((ratio, b_k, b_n, model.bandwidth_reduction(b_n, b_k)))
    return rows


def render_split_sweep() -> Table:
    table = Table(
        ["bK/bN", "bK", "bN", "S"],
        title="A3 — bandwidth reduction under fixed budget bK + 2*bN "
              "(optimum at bK = 2*bN, Sec III-C1)",
    )
    for ratio, b_k, b_n, s in bk_bn_split_sweep():
        table.add_row([ratio, b_k, b_n, s])
    return table


# -- A4: double-buffer pN ------------------------------------------------------


def double_buffer_ldm(
    p_n_values: tuple[int, ...] = (16, 32, 48, 64), p_m: int = 16, p_k: int = 96
) -> list[tuple[int, int, bool, int, bool]]:
    """(pN, single-buffered doubles, fits, double-buffered doubles, fits)."""
    rows = []
    for p_n in p_n_values:
        try:
            single = BlockingParams(p_m, p_n, p_k, double_buffered=False)
            s_doubles, s_fits = single.ldm_doubles_per_cpe, single.fits()
        except BlockingError:  # pragma: no cover - p_n values are valid
            s_doubles, s_fits = -1, False
        double = BlockingParams(p_m, p_n, p_k, double_buffered=True)
        rows.append((p_n, s_doubles, s_fits, double.ldm_doubles_per_cpe, double.fits()))
    return rows


# -- A7: broadcast sharing vs Cannon -----------------------------------------


def _cannon_iteration() -> list[Instr]:
    """One 16-vmad iteration under Cannon dataflow: every CPE receives
    its next operands AND forwards its current ones."""
    from repro.isa.instructions import Unit, getc, getr

    body: list[Instr] = []
    for i in range(4):
        body.append(getr(f"rA{i}"))
        body.append(Instr("putr", None, (f"rA{i}",), Unit.SECONDARY, "regcomm"))
    for j in range(4):
        body.append(getc(f"rB{j}"))
        body.append(Instr("putc", None, (f"rB{j}",), Unit.SECONDARY, "regcomm"))
    for i in range(4):
        for j in range(4):
            reg = f"rC{i}_{j}"
            body.append(vmad(reg, f"rA{i}", f"rB{j}", reg))
    body.append(addl("ldmA", "PM", "ldmA"))
    body.append(addl("ldmB", "two", "ldmB"))
    return body


def cannon_comparison() -> dict:
    """Measure both schemes: mesh traffic (functional) and pipe cycles.

    Traffic comes from running one CG-block multiply of each variant on
    the device model and reading the register-communication counters;
    cycles come from list-scheduling each dataflow's iteration body on
    the dual-issue pipeline.
    """
    import numpy as np

    from repro.arch.core_group import CoreGroup
    from repro.core.params import BlockingParams
    from repro.core.variants.cannon import CannonVariant
    from repro.core.variants.pe import PEVariant
    from repro.isa.kernels import scheduled_iteration
    from repro.workloads.matrices import gemm_operands

    params = BlockingParams.small(double_buffered=False)
    traffic = {}
    for name, variant in (("broadcast", PEVariant()), ("cannon", CannonVariant())):
        cg = CoreGroup()
        m, n, k = params.b_m, params.b_n, params.b_k
        a, b, c = gemm_operands(m, n, k, seed=1)
        ha, hb, hc = (cg.memory.store(x, arr) for x, arr in zip("ABC", (a, b, c)))
        variant.run(cg, ha, hb, hc, params=params)
        traffic[name] = cg.regcomm.stats.bytes_moved

    pipe = scheduled_pipeline()
    broadcast_cycles = pipe.steady_state_cycles(scheduled_iteration())
    cannon_cycles = pipe.steady_state_cycles(list_schedule(_cannon_iteration()))
    return {
        "traffic_bytes": traffic,
        "broadcast_cycles": broadcast_cycles,
        "cannon_cycles": cannon_cycles,
        "kernel_slowdown": cannon_cycles / broadcast_cycles,
    }


def render_cannon() -> Table:
    data = cannon_comparison()
    table = Table(
        ["quantity", "broadcast (paper)", "Cannon"],
        title="A7 — collective broadcast sharing vs Cannon's algorithm "
              "(one scaled-down CG block; cycles per 16-vmad iteration)",
    )
    table.add_row([
        "mesh traffic per CG block (KB)",
        f"{data['traffic_bytes']['broadcast'] / 1024:.0f}",
        f"{data['traffic_bytes']['cannon'] / 1024:.0f}",
    ])
    table.add_row([
        "steady cycles / iteration",
        f"{data['broadcast_cycles']:.1f}",
        f"{data['cannon_cycles']:.1f}",
    ])
    table.add_row([
        "kernel slowdown vs paper scheme", "1.00x",
        f"{data['kernel_slowdown']:.2f}x",
    ])
    return table


def render_double_buffer_ldm() -> Table:
    table = Table(
        ["pN", "single buf doubles", "fits", "double buf doubles", "fits"],
        title="A4 — LDM accounting: why double buffering shrinks pN 48 -> 32 "
              "(budget 8192 doubles)",
    )
    for p_n, s_d, s_f, d_d, d_f in double_buffer_ldm():
        table.add_row([p_n, s_d, "yes" if s_f else "NO", d_d, "yes" if d_f else "NO"])
    return table
