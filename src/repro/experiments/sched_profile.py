"""E5 — Sec IV-C: the instruction-scheduling cycle profile.

Paper: "the whole loop takes 101,858 cycles in total, and vmad takes
97% of the cycles", for the strip multiplication with
(pM, pN, pK) = (16, 32, 96).  Plus the Figure 6 implication that the
scheduled kernel is ~2.14x the unscheduled one (SCHED is +113.9% over
DB with transfers already hidden).

The numbers here come straight from the dual-issue pipeline simulator
executing the literal Algorithm 3 stream vs. the naive ordering — no
calibration constants are involved.  The A5 extension (automatic list
scheduling, the paper's stated future work) is reported alongside.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.kernels import (
    MicrokernelSpec,
    naive_iteration,
    scheduled_iteration,
    scheduled_pipeline,
)
from repro.isa.profile import KernelProfile, profile_kernel
from repro.isa.scheduler import list_schedule
from repro.perf.report import ComparisonRow, comparison_table
from repro.utils.format import Table

__all__ = ["SchedProfileResult", "run", "render", "PAPER_STRIP_CYCLES",
           "PAPER_VMAD_OCCUPANCY"]

PAPER_STRIP_CYCLES = 101_858
PAPER_VMAD_OCCUPANCY = 0.97


@dataclass(frozen=True)
class SchedProfileResult:
    scheduled: KernelProfile
    naive: KernelProfile
    auto_cycles_per_iteration: float
    hand_cycles_per_iteration: float
    naive_cycles_per_iteration: float

    @property
    def speedup(self) -> float:
        """Kernel speedup of SCHED's stream over the naive stream."""
        return self.naive.strip_cycles / self.scheduled.strip_cycles


def run(spec: MicrokernelSpec | None = None) -> SchedProfileResult:
    spec = spec or MicrokernelSpec()
    pipe = scheduled_pipeline()
    hand_body = scheduled_iteration()
    naive_body = naive_iteration()
    auto_body = list_schedule(naive_body)
    return SchedProfileResult(
        scheduled=profile_kernel(spec, scheduled=True),
        naive=profile_kernel(spec, scheduled=False),
        auto_cycles_per_iteration=pipe.steady_state_cycles(auto_body),
        hand_cycles_per_iteration=pipe.steady_state_cycles(hand_body),
        naive_cycles_per_iteration=pipe.steady_state_cycles(naive_body),
    )


def render(result: SchedProfileResult | None = None) -> Table:
    result = result or run()
    from repro.isa.kernels import MicrokernelSpec as MKSpec, tile_program
    from repro.isa.semantics import verify_tile_semantics

    one_tile = MKSpec(p_n=4)
    sched_ok = not verify_tile_semantics(tile_program(one_tile, True), one_tile.p_k)
    naive_ok = not verify_tile_semantics(tile_program(one_tile, False), one_tile.p_k)
    rows = [
        ComparisonRow(
            "strip multiplication cycles (scheduled)",
            float(PAPER_STRIP_CYCLES),
            float(result.scheduled.strip_cycles),
        ),
        ComparisonRow(
            "vmad occupancy (%)",
            100 * PAPER_VMAD_OCCUPANCY,
            100 * result.scheduled.vmad_occupancy,
        ),
        ComparisonRow(
            "kernel speedup, scheduled vs naive",
            2.139,  # the +113.9% SCHED-over-DB improvement
            result.speedup,
        ),
        ComparisonRow(
            "steady cycles/iteration, hand schedule (Algorithm 3)",
            16.0,  # one dual-issue pair per vmad
            result.hand_cycles_per_iteration,
        ),
        ComparisonRow(
            "steady cycles/iteration, naive ordering",
            None,
            result.naive_cycles_per_iteration,
        ),
        ComparisonRow(
            "steady cycles/iteration, automatic list scheduler (A5)",
            None,
            result.auto_cycles_per_iteration,
        ),
        ComparisonRow(
            "schedules symbolically verified exact (1.0 = yes)",
            1.0,
            1.0 if (sched_ok and naive_ok) else 0.0,
        ),
    ]
    return comparison_table(rows, title="Sec IV-C instruction-scheduling profile")
