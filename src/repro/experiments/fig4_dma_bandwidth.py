"""E1 — Figure 4: sustained DMA bandwidth, PE_MODE vs ROW_MODE.

The paper's micro-benchmark: matrices of size ``m x k`` are partitioned
into CG-level ``bM x bK = 128 x 768`` blocks, loaded sequentially to
the 64 CPEs with thread-level blocking ``pM x pK = 16 x 96``, once per
mode.  The reported bandwidth divides total bytes by total time, which
includes the harness's one-time setup — that is what makes both curves
rise toward their plateaus as ``m = k`` grows.

Paper result: ROW_MODE is "remarkably superior"; by the right edge of
the sweep PE_MODE sustains ~22 GB/s and ROW_MODE ~28 GB/s (against the
34 GB/s channel).  Our segment-level model lands PE at ~19 GB/s and ROW
at ~28 GB/s — the PE plateau is the one place the model is conservative
(see EXPERIMENTS.md).

A functional companion (:func:`verify_distribution_bytes`) actually
drives the DMA device on a scaled-down matrix and confirms both modes
move exactly the bytes the cost model charges.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.config import SW26010Spec, DEFAULT_SPEC
from repro.arch.core_group import CoreGroup
from repro.perf.calibration import Calibration, DEFAULT_CALIBRATION
from repro.perf.dma_model import DMACostModel
from repro.perf.report import series_table
from repro.utils.format import Table
from repro.workloads.shapes import FIG4_SIZES

__all__ = ["Fig4Result", "run", "render", "verify_distribution_bytes",
           "B_M", "B_K", "P_M", "P_K"]

#: the micro-benchmark's blocking (paper Sec IV-A).
B_M, B_K = 128, 768
P_M, P_K = 16, 96


@dataclass(frozen=True)
class Fig4Result:
    sizes: tuple[int, ...]
    pe_bandwidth: tuple[float, ...]   # GB/s
    row_bandwidth: tuple[float, ...]  # GB/s

    def plateau(self, mode: str) -> float:
        series = self.pe_bandwidth if mode == "PE" else self.row_bandwidth
        return series[-1]


def _sweep_mode(
    mode: str,
    sizes: tuple[int, ...],
    model: DMACostModel,
    cal: Calibration,
) -> tuple[float, ...]:
    out = []
    for mk in sizes:
        blocks = (mk // B_M) * (mk // B_K)
        if mode == "PE":
            per_block = model.seconds(model.pe_tile_block("A", P_M, P_K, 64))
        else:
            per_block = model.seconds(model.row_strip_block("A", B_M, P_K, 8))
        total_bytes = blocks * B_M * B_K * 8
        total_time = cal.microbench_setup_s + blocks * per_block
        out.append(total_bytes / total_time / 1e9)
    return tuple(out)


def run(
    sizes: tuple[int, ...] = FIG4_SIZES,
    spec: SW26010Spec = DEFAULT_SPEC,
    calibration: Calibration = DEFAULT_CALIBRATION,
) -> Fig4Result:
    """Reproduce the Figure 4 sweep through the DMA cost model."""
    model = DMACostModel(spec, calibration)
    return Fig4Result(
        sizes=tuple(sizes),
        pe_bandwidth=_sweep_mode("PE", tuple(sizes), model, calibration),
        row_bandwidth=_sweep_mode("ROW", tuple(sizes), model, calibration),
    )


def render(result: Fig4Result | None = None) -> Table:
    result = result or run()
    return series_table(
        "m=k",
        result.sizes,
        {"PE_MODE GB/s": result.pe_bandwidth, "ROW_MODE GB/s": result.row_bandwidth},
        title="Figure 4 — sustained DMA bandwidth (paper: PE ~14->22, ROW ~18->28)",
    )


def verify_distribution_bytes(spec: SW26010Spec = DEFAULT_SPEC) -> dict[str, int]:
    """Drive the functional DMA engine over one block in each mode.

    Returns the bytes each mode reported; both must equal the block
    size, proving the cost model and the device agree on geometry.
    """
    cg = CoreGroup(spec)
    handle = cg.memory.store(
        "fig4.block", np.zeros((B_M, B_K), dtype=np.float64, order="F")
    )
    for cpe in cg.cpes():
        cpe.ldm.alloc("pe_tile", (P_M, P_K))
        cpe.ldm.alloc("row_tile", (B_M // 8, P_K))
    pe_bytes = 0
    for coord in cg.mesh.coords():
        reply = cg.dma.pe_get(
            handle, coord.row * P_M, coord.col * P_K, P_M, P_K,
            cg.cpe(coord).ldm.get("pe_tile"),
        )
        pe_bytes += reply.nbytes
    row_bytes = 0
    for strip in range(8):
        reply = cg.dma.row_get(
            handle, 0, strip * P_K, B_M, P_K, cg.row_ldm_buffers(strip, "row_tile")
        )
        row_bytes += reply.nbytes
    return {"PE": pe_bytes, "ROW": row_bytes, "block": B_M * B_K * 8}
