"""E10 (extension) — batch-scheduler scaling across 1..4 core groups.

:mod:`repro.experiments.multi_cg_scaling` splits *one* big GEMM across
the chip; this experiment models the other route to full-chip
utilization: a *stream of independent GEMMs* (LU trailing updates,
convolution layers, served inference traffic) dispatched by
:class:`~repro.multi.scheduler.CGScheduler`.  Items need no inter-CG
communication at all, so the question is purely how well shape-aware
binning plus least-modeled-load dispatch balances a mixed-shape batch.

Planning uses :meth:`CGScheduler.plan_shapes`, which needs only the
``(m, n, k)`` tuples — so the sweep runs at paper scale without
allocating a single matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.params import BlockingParams
from repro.multi.scheduler import CGScheduler, SchedulePlan
from repro.utils.format import Table

__all__ = ["SchedulerScalingResult", "paper_mixed_shapes", "run", "render"]

#: pool sizes swept (the 1-CG pool is the serial baseline).
POOLS = (1, 2, 3, 4)

#: recurring paper-scale shapes, weighted like a served mixed workload:
#: square compute-bound items, skinny panel-like items, and a few
#: non-multiples that exercise the padding path.
_SHAPE_MIX = (
    ((2048, 2048, 2048), 6),
    ((4096, 1024, 3072), 4),
    ((1024, 4096, 2048), 4),
    ((8192, 512, 1024), 2),
    ((3000, 1500, 2500), 4),   # not block-multiples: pads up
    ((512, 512, 8192), 4),
)


def paper_mixed_shapes(repeats: int = 1) -> tuple[tuple[int, int, int], ...]:
    """The experiment's mixed-shape stream (interleaved, deterministic)."""
    stream: list[tuple[int, int, int]] = []
    for _ in range(repeats):
        remaining = [[shape, count] for shape, count in _SHAPE_MIX]
        while any(count for _, count in remaining):
            for entry in remaining:
                if entry[1]:
                    stream.append(entry[0])
                    entry[1] -= 1
    return tuple(stream)


@dataclass(frozen=True)
class SchedulerScalingResult:
    shapes: tuple[tuple[int, int, int], ...]
    pools: tuple[int, ...]
    plans: tuple[SchedulePlan, ...]

    def plan_for(self, pool: int) -> SchedulePlan:
        for p, plan in zip(self.pools, self.plans):
            if p == pool:
                return plan
        raise KeyError(pool)

    @property
    def speedup_at_4(self) -> float:
        return self.plan_for(4).modeled_speedup


def run(
    repeats: int = 1,
    pools: tuple[int, ...] = POOLS,
    params: BlockingParams | None = None,
) -> SchedulerScalingResult:
    shapes = paper_mixed_shapes(repeats)
    params = params or BlockingParams.paper_double()
    plans = tuple(
        CGScheduler(n_core_groups=pool, params=params).plan_shapes(shapes)
        for pool in pools
    )
    return SchedulerScalingResult(shapes=shapes, pools=tuple(pools), plans=plans)


def render(result: SchedulerScalingResult | None = None) -> Table:
    result = result or run()
    table = Table(
        ["CG pool", "makespan (ms)", "speedup", "load balance",
         "busiest CG (ms)", "idlest CG (ms)"],
        title=f"E10 — CGScheduler scaling on a {len(result.shapes)}-item "
              "mixed-shape batch (modeled; extension)",
    )
    for pool, plan in zip(result.pools, result.plans):
        table.add_row([
            pool,
            f"{plan.makespan_seconds * 1e3:.2f}",
            f"{plan.modeled_speedup:.2f}x",
            f"{100 * plan.load_balance_efficiency:.1f}%",
            f"{max(plan.cg_seconds) * 1e3:.2f}",
            f"{min(plan.cg_seconds) * 1e3:.2f}",
        ])
    return table
