"""A6 — ablation: software-emulated cache vs user-controlled LDM.

Sec II notes the LDM can run as "a software-emulated cache that
achieves automatic data caching"; the paper's DGEMM never uses it.
This ablation quantifies why: a GEMM written against the emulated cache
pays a software tag check on *every* element access plus a 128 B DMA
line fill per miss, so even with a high hit rate the per-access
overhead caps throughput orders of magnitude below the explicitly
orchestrated kernel.

The functional part executes a real blocked i-k-j GEMM through
:class:`repro.arch.swcache.SoftwareCache` (results checked against
numpy); the cost model then prices the observed access/miss counts:

    cycles = accesses * tag_check_cycles
           + misses  * line_fill_cycles
           + flops / flops_per_cycle

with ``tag_check_cycles = 10`` (a short function call on the CPE) and
the line fill priced by the Figure 4-calibrated DMA model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.config import SW26010Spec, DEFAULT_SPEC
from repro.arch.memory import MainMemory
from repro.arch.swcache import CacheStats, SoftwareCache
from repro.perf.calibration import Calibration, DEFAULT_CALIBRATION
from repro.perf.dma_model import BlockTransfer, DMACostModel
from repro.perf.estimator import Estimator
from repro.utils.format import Table

__all__ = ["CacheAblationResult", "run", "render", "TAG_CHECK_CYCLES"]

#: software overhead of one emulated-cache access (tag check + dispatch).
TAG_CHECK_CYCLES = 10


@dataclass(frozen=True)
class CacheAblationResult:
    n: int
    stats: CacheStats
    max_error: float
    cycles_per_flop: float
    cached_gflops: float       # modelled full-CG throughput
    sched_gflops: float        # the explicit-DMA SCHED reference
    slowdown: float


def _cached_gemm(
    cache_a: SoftwareCache, cache_b: SoftwareCache, cache_c: SoftwareCache, n: int
) -> None:
    """Blocked i-k-j GEMM, every operand access through the caches."""
    for i in range(n):
        for kk in range(n):
            a_ik = cache_a.read(i, kk)
            if a_ik == 0.0:
                continue
            for j in range(n):
                c_ij = cache_c.read(i, j)
                cache_c.write(i, j, c_ij + a_ik * cache_b.read(kk, j))
    cache_c.flush()


def run(
    n: int = 48,
    spec: SW26010Spec = DEFAULT_SPEC,
    calibration: Calibration = DEFAULT_CALIBRATION,
) -> CacheAblationResult:
    rng = np.random.default_rng(17)
    a = np.asfortranarray(rng.standard_normal((n, n)))
    b = np.asfortranarray(rng.standard_normal((n, n)))
    c = np.zeros((n, n), order="F")

    memory = MainMemory(spec)
    ha = memory.store("cache.A", a)
    hb = memory.store("cache.B", b)
    hc = memory.store("cache.C", c)
    # three caches share the 64 KB LDM: 16 KB each, 4-way, 128 B lines
    caches = [
        SoftwareCache(memory, h, capacity_bytes=16 * 1024) for h in (ha, hb, hc)
    ]
    _cached_gemm(*caches, n)
    max_error = float(np.max(np.abs(memory.array(hc) - a @ b)))

    stats = CacheStats()
    for cache in caches:
        stats.hits += cache.stats.hits
        stats.misses += cache.stats.misses
        stats.evictions += cache.stats.evictions
        stats.writebacks += cache.stats.writebacks

    flops = 2 * n**3
    dma = DMACostModel(spec, calibration)
    line_fill_cycles = spec.clock_hz * dma.seconds(
        BlockTransfer("line", segments=1, segment_doubles=16), include_request=False
    )
    cycles = (
        stats.accesses * TAG_CHECK_CYCLES
        + stats.misses * line_fill_cycles
        + flops / spec.cpe.flops_per_cycle
    )
    cycles_per_flop = cycles / flops
    # all 64 CPEs run identical tiles concurrently
    cached_gflops = spec.n_cpes * flops / (cycles / spec.clock_hz) / 1e9
    sched = Estimator(spec, calibration).estimate("SCHED", 9216, 9216, 9216)
    return CacheAblationResult(
        n=n,
        stats=stats,
        max_error=max_error,
        cycles_per_flop=cycles_per_flop,
        cached_gflops=cached_gflops,
        sched_gflops=sched.gflops,
        slowdown=sched.gflops / cached_gflops,
    )


def render(result: CacheAblationResult | None = None) -> Table:
    result = result or run()
    table = Table(
        ["quantity", "value"],
        title="A6 — software-emulated cache vs user-controlled LDM "
              "(why the paper manages the LDM explicitly)",
    )
    table.add_row(["per-CPE GEMM size", f"{result.n}^3"])
    table.add_row(["cache hit rate", f"{100 * result.stats.hit_rate:.1f}%"])
    table.add_row(["accesses / misses",
                   f"{result.stats.accesses} / {result.stats.misses}"])
    table.add_row(["max |cached - numpy|", f"{result.max_error:.2e}"])
    table.add_row(["cycles per flop (cached)", f"{result.cycles_per_flop:.1f}"])
    table.add_row(["modelled CG Gflop/s (cached)", f"{result.cached_gflops:.1f}"])
    table.add_row(["SCHED Gflop/s (explicit LDM)", f"{result.sched_gflops:.1f}"])
    table.add_row(["slowdown of automatic caching", f"{result.slowdown:.0f}x"])
    return table
