"""Experiment drivers: one module per table/figure of the paper.

Each module exposes a ``run()`` returning a structured result and a
``render()`` producing the text table the paper's figure corresponds
to.  The :mod:`repro.experiments.runner` CLI (also reachable as
``python -m repro.experiments``) runs any subset and can regenerate
EXPERIMENTS.md.
"""

from repro.experiments import (
    ablations,
    cache_ablation,
    multi_cg_scaling,
    numerics,
    fig4_dma_bandwidth,
    fig6_variants,
    fig7_shapes,
    future_hw,
    hpl_projection,
    robustness,
    sched_profile,
    scheduler_scaling,
    table_blocksize,
)

__all__ = [
    "fig4_dma_bandwidth",
    "fig6_variants",
    "fig7_shapes",
    "table_blocksize",
    "sched_profile",
    "ablations",
    "cache_ablation",
    "multi_cg_scaling",
    "scheduler_scaling",
    "hpl_projection",
    "robustness",
    "numerics",
    "future_hw",
]
