"""N1 — numerical accuracy of the blocked accumulation order.

The paper reports performance, not accuracy; a reproduction that
reorders floating-point sums owes its users an error analysis.  The
blocked algorithm accumulates each C element as

    beta*c + alpha * sum over K blocks (strip partial sums of 8 steps)

— a different association than numpy's single dot product, so results
differ in the last bits.  This experiment measures the max relative
componentwise error against (a) numpy and (b) a float128 ground truth,
for benign and adversarial operand scalings, and compares with the
standard forward-error bound gamma_k = k*eps/(1-k*eps) for dot products
of length k.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.api import dgemm
from repro.core.params import BlockingParams
from repro.utils.format import Table
from repro.workloads.matrices import hilbert_like, random_matrix

__all__ = ["NumericsCase", "run", "render", "dot_error_bound"]

PARAMS = BlockingParams.small(double_buffered=True)


def dot_error_bound(k: int) -> float:
    """The classical gamma_k forward-error bound for length-k dots."""
    eps = float(np.finfo(np.float64).eps)
    ke = k * eps
    return ke / (1.0 - ke)


@dataclass(frozen=True)
class NumericsCase:
    label: str
    m: int
    n: int
    k: int
    err_vs_numpy: float          # max |blocked - numpy| / scale
    err_vs_longdouble: float     # max |blocked - float128| / scale
    bound: float                 # gamma_k * amplification-free scale

    @property
    def within_bound(self) -> bool:
        return self.err_vs_longdouble <= self.bound


def _measure(label: str, a: np.ndarray, b: np.ndarray) -> NumericsCase:
    m, k = a.shape
    n = b.shape[1]
    blocked = dgemm(a, b, variant="SCHED", params=PARAMS, pad=True)
    via_numpy = a @ b
    exact = (a.astype(np.longdouble) @ b.astype(np.longdouble))
    # componentwise scale: |A||B| bounds each element's magnitude sum
    scale = np.abs(a) @ np.abs(b)
    scale[scale == 0.0] = 1.0
    err_np = float(np.max(np.abs(blocked - via_numpy) / scale))
    err_ld = float(np.max(np.abs(blocked - exact.astype(np.float64)) / scale))
    return NumericsCase(
        label=label, m=m, n=n, k=k,
        err_vs_numpy=err_np,
        err_vs_longdouble=err_ld,
        bound=dot_error_bound(k),
    )


def run(k: int = 256) -> list[NumericsCase]:
    cases = []
    a = random_matrix(128, k, seed=1)
    b = random_matrix(k, 64, seed=2)
    cases.append(_measure("gaussian O(1)", a, b))
    cases.append(_measure("scaled 1e8 x 1e-8", a * 1e8, b * 1e-8))
    cases.append(
        _measure("hilbert-like (graded)", hilbert_like(128, k), hilbert_like(k, 64))
    )
    rng = np.random.default_rng(3)
    mixed = a.copy()
    mixed[:, ::2] *= 1e6  # wildly mixed column magnitudes
    cases.append(_measure("mixed magnitudes", mixed, b))
    signs = np.sign(rng.standard_normal((128, k)))
    cases.append(_measure("cancellation-heavy (+/-1)", signs, signs.T[:k, :64]))
    return cases


def render(cases: list[NumericsCase] | None = None) -> Table:
    cases = cases or run()
    table = Table(
        ["operands", "k", "vs numpy", "vs float128", "gamma_k bound", "within"],
        title="N1 — forward error of the blocked accumulation "
              "(componentwise, relative to |A||B|)",
    )
    for case in cases:
        table.add_row([
            case.label, case.k,
            f"{case.err_vs_numpy:.2e}",
            f"{case.err_vs_longdouble:.2e}",
            f"{case.bound:.2e}",
            "yes" if case.within_bound else "NO",
        ])
    return table
