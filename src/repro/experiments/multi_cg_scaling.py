"""E7 (extension) — scaling the paper's kernel to all four core groups.

The paper stops at one CG (742.4 Gflop/s peak); the chip has four, and
HPL uses them all.  This experiment models the block-column-parallel
decomposition of :mod:`repro.multi.dgemm4` across the Figure 6 size
sweep, reporting speedup and parallel efficiency, plus the sensitivity
of the conclusion to the assumed NoC bandwidth (which the paper does
not publish).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.multi.dgemm4 import MultiCGEstimate, estimate_multi_cg
from repro.multi.noc import NoC
from repro.utils.format import Table

__all__ = ["MultiCGScalingResult", "run", "render"]

#: sizes whose quarter-panels are multiples of bN = 256.
SIZES = (3072, 6144, 9216, 12288, 15360)
#: NoC bandwidth assumptions for the sensitivity sweep (B/s).
NOC_BANDWIDTHS = (8e9, 16e9, 32e9)


@dataclass(frozen=True)
class MultiCGScalingResult:
    sizes: tuple[int, ...]
    estimates: tuple[MultiCGEstimate, ...]            # at the default NoC
    sensitivity: dict  # noc_bw -> tuple of parallel efficiencies

    def efficiency_at(self, size: int) -> float:
        for s, est in zip(self.sizes, self.estimates):
            if s == size:
                return est.parallel_efficiency
        raise KeyError(size)


def run(sizes: tuple[int, ...] = SIZES) -> MultiCGScalingResult:
    estimates = tuple(estimate_multi_cg(s, s, s) for s in sizes)
    sensitivity = {}
    for bw in NOC_BANDWIDTHS:
        noc = NoC(link_bandwidth=bw)
        sensitivity[bw] = tuple(
            estimate_multi_cg(s, s, s, noc=noc).parallel_efficiency for s in sizes
        )
    return MultiCGScalingResult(
        sizes=tuple(sizes), estimates=estimates, sensitivity=sensitivity
    )


def render(result: MultiCGScalingResult | None = None) -> Table:
    result = result or run()
    table = Table(
        ["m=n=k", "4-CG Gflop/s", "speedup", "efficiency",
         *(f"eff @NoC {bw / 1e9:.0f} GB/s" for bw in NOC_BANDWIDTHS)],
        title="E7 — four-core-group scaling of the SCHED kernel "
              "(extension; NoC bandwidth is an assumption)",
    )
    for idx, (size, est) in enumerate(zip(result.sizes, result.estimates)):
        table.add_row([
            size,
            est.gflops,
            f"{est.speedup_vs_single_cg:.2f}x",
            f"{100 * est.parallel_efficiency:.1f}%",
            *(f"{100 * result.sensitivity[bw][idx]:.1f}%" for bw in NOC_BANDWIDTHS),
        ])
    return table
