"""E9 (extension) — what-if analysis for future SW-series processors.

The paper's conclusion: "... so that the work can be smoothly extended
to ... future SW series processors."  With the methodology fully
mechanized (constraint model + auto-tuner + performance model), the
extension is a function call: change a hardware parameter, re-derive
the blocking, re-predict the performance.

Scenarios modelled (per-CG, paper kernel):

- **LDM scaling** (the successor SW26010-Pro quadrupled the scratchpad
  to 256 KB): larger tiles raise the bandwidth-reduction ratio S and
  buy headroom against slower relative memory;
- **DMA bandwidth scaling**: where the 34 GB/s channel would start to
  starve the double-buffered kernel (ties into the crossover analysis
  of :mod:`repro.perf.bottleneck`);
- **clock scaling at fixed bandwidth**: the machine-balance squeeze —
  faster cores need bigger tiles to stay compute-bound.

All numbers come from the same frozen calibration as Figure 6; only
the stated hardware parameter changes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.arch.config import CPESpec, DMASpec, SW26010Spec, DEFAULT_SPEC
from repro.perf.estimator import Estimator
from repro.tuning.search import autotune
from repro.utils.format import Table

__all__ = ["Scenario", "run", "render", "LDM_SCALES", "BANDWIDTH_SCALES",
           "CLOCK_SCALES"]

LDM_SCALES = (1, 2, 4)          # 64 KB (SW26010) .. 256 KB (SW26010-Pro class)
BANDWIDTH_SCALES = (0.5, 1.0, 2.0)
CLOCK_SCALES = (1.0, 1.55)      # 1.45 GHz -> ~2.25 GHz (Pro class)
SIZE = 9216


@dataclass(frozen=True)
class Scenario:
    """One hardware what-if, tuned and predicted."""

    label: str
    spec: SW26010Spec
    best_blocking: tuple[int, int, int]
    ldm_doubles_used: int
    gflops: float
    efficiency: float


def _scenario(label: str, spec: SW26010Spec) -> Scenario:
    result = autotune(SIZE, SIZE, SIZE, variant="SCHED", spec=spec,
                      p_n_step=16, p_k_step=32, top=1)
    best = result.best.params
    pm = -(-SIZE // best.b_m) * best.b_m
    pn = -(-SIZE // best.b_n) * best.b_n
    pk = -(-SIZE // best.b_k) * best.b_k
    estimate = Estimator(spec).estimate("SCHED", pm, pn, pk, params=best)
    return Scenario(
        label=label,
        spec=spec,
        best_blocking=(best.p_m, best.p_n, best.p_k),
        ldm_doubles_used=best.ldm_doubles_per_cpe,
        gflops=2.0 * SIZE**3 / estimate.seconds / 1e9,
        efficiency=2.0 * SIZE**3 / estimate.seconds / spec.peak_flops,
    )


def run() -> list[Scenario]:
    base = DEFAULT_SPEC
    scenarios = []
    for scale in LDM_SCALES:
        spec = replace(
            base, cpe=CPESpec(ldm_bytes=scale * 64 * 1024)
        )
        scenarios.append(_scenario(f"LDM x{scale} ({scale * 64} KB)", spec))
    for scale in BANDWIDTH_SCALES:
        if scale == 1.0:
            continue  # the baseline is the LDM x1 row
        spec = replace(
            base, dma=DMASpec(peak_bandwidth=scale * 34e9)
        )
        scenarios.append(_scenario(f"DMA bandwidth x{scale:g}", spec))
    for scale in CLOCK_SCALES:
        if scale == 1.0:
            continue
        spec = replace(base, clock_hz=scale * 1.45e9)
        scenarios.append(_scenario(f"clock x{scale:g} ({scale * 1.45:.2f} GHz)", spec))
    return scenarios


def render(scenarios: list[Scenario] | None = None) -> Table:
    scenarios = scenarios or run()
    table = Table(
        ["scenario", "peak Gflop/s", "tuned (pM,pN,pK)", "LDM doubles",
         "Gflop/s @9216^3", "efficiency"],
        title="E9 — future SW-series what-ifs (paper kernel, frozen "
              "calibration, auto-tuned blocking per scenario)",
    )
    for s in scenarios:
        table.add_row([
            s.label,
            s.spec.peak_flops / 1e9,
            f"{s.best_blocking}",
            s.ldm_doubles_used,
            s.gflops,
            f"{100 * s.efficiency:.1f}%",
        ])
    return table
