"""E2 (+E6) — Figure 6: the five DGEMM versions across square sizes.

Paper headline numbers, all at the large end of the sweep:

- PE is +42.3% over RAW, ROW +16.6% over PE, DB +26% over ROW, SCHED
  +113.9% over DB;
- SCHED peaks at 706.1 Gflop/s = 95% of the 742.4 Gflop/s CG peak;
- the SCHED series rises monotonically from 623.9 at 1536 and
  saturates around m = n = k = 9216;
- (Sec IV, E6) blocking alone — the PE version — stays below 1/3 of
  peak.

``run()`` produces the full grid via the closed-form estimator (the
event-driven timeline reproduces the same numbers; tests assert that).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import SW26010Spec, DEFAULT_SPEC
from repro.perf.calibration import Calibration, DEFAULT_CALIBRATION
from repro.perf.estimator import Estimator
from repro.perf.report import ComparisonRow, comparison_table, series_table
from repro.utils.format import Table
from repro.workloads.shapes import FIG6_SIZES

__all__ = ["PAPER_GFLOPS", "PAPER_IMPROVEMENTS", "PAPER_SCHED_SERIES",
           "Fig6Result", "run", "render", "render_headlines"]

VARIANT_ORDER = ("RAW", "PE", "ROW", "DB", "SCHED")

#: the paper's sustained Gflop/s at the large end (RAW..DB are implied
#: by the quoted improvement chain anchored at SCHED = 706.1).
PAPER_GFLOPS = {"RAW": 157.9, "PE": 224.7, "ROW": 262.0, "DB": 330.1, "SCHED": 706.1}
#: quoted relative improvements (Sec V).
PAPER_IMPROVEMENTS = {
    ("PE", "RAW"): 0.423,
    ("ROW", "PE"): 0.166,
    ("DB", "ROW"): 0.26,
    ("SCHED", "DB"): 1.139,
}
#: the SCHED data labels printed on Figure 6.
PAPER_SCHED_SERIES = (623.9, 668.6, 683.9, 691.7, 696.4, 699.7, 702.0, 703.7, 705.0, 706.1)


@dataclass(frozen=True)
class Fig6Result:
    sizes: tuple[int, ...]
    gflops: dict[str, tuple[float, ...]]

    def sustained(self, variant: str) -> float:
        """Gflop/s at the largest size (the paper's 'sustained' figure)."""
        return self.gflops[variant][-1]

    def improvement(self, new: str, base: str) -> float:
        return self.sustained(new) / self.sustained(base) - 1.0

    def peak_efficiency(self, variant: str, spec: SW26010Spec = DEFAULT_SPEC) -> float:
        best = max(self.gflops[variant])
        return best * 1e9 / spec.peak_flops


def run(
    sizes: tuple[int, ...] = FIG6_SIZES,
    spec: SW26010Spec = DEFAULT_SPEC,
    calibration: Calibration = DEFAULT_CALIBRATION,
) -> Fig6Result:
    estimator = Estimator(spec, calibration)
    gflops = {
        variant: tuple(
            estimator.estimate(variant, s, s, s).gflops for s in sizes
        )
        for variant in VARIANT_ORDER
    }
    return Fig6Result(sizes=tuple(sizes), gflops=gflops)


def render(result: Fig6Result | None = None) -> Table:
    result = result or run()
    return series_table(
        "m=n=k",
        result.sizes,
        dict(result.gflops),
        title="Figure 6 — Gflop/s of the five DGEMM versions",
    )


def render_headlines(
    result: Fig6Result | None = None, spec: SW26010Spec = DEFAULT_SPEC
) -> Table:
    result = result or run()
    rows = [
        ComparisonRow(f"{v} sustained Gflop/s", PAPER_GFLOPS[v], result.sustained(v))
        for v in VARIANT_ORDER
    ]
    rows += [
        ComparisonRow(
            f"{new} over {base} (%)",
            100 * paper,
            100 * result.improvement(new, base),
        )
        for (new, base), paper in PAPER_IMPROVEMENTS.items()
    ]
    rows.append(
        ComparisonRow(
            "SCHED peak efficiency (%)", 95.0, 100 * result.peak_efficiency("SCHED", spec)
        )
    )
    rows.append(
        ComparisonRow(
            "PE efficiency < 1/3 of peak (%)  [Sec IV claim]",
            None,
            100 * result.peak_efficiency("PE", spec),
        )
    )
    return comparison_table(rows, title="Figure 6 headlines — paper vs measured")
