"""E4 — Sec III-C: block-size determination, reproduced numerically.

The paper derives, in order:

1. CG level: ``S = 2/(2/bK + 1/bN)``; sustaining peak requires
   ``bN > F*W/Bt = 174.7`` (so ``bN >= 175``) and ``bK = 2*bN >= 350``
   at the optimal split;
2. thread level: ``pM*pN + pN*pK + pK*pM < 8192`` doubles of LDM, pK a
   multiple of 16 (128 B DMA transactions), chosen ``(pM, pN, pK) =
   (16, 48, 96)``;
3. register level: ``rM*rN + rM + rN < 32``, LDM-register reduction
   ``2/(1/rM + 1/rN)`` maximised at ``rM = rN = 4``.

Every derived constant is recomputed from the architecture spec and
compared against the paper's quoted values.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import SW26010Spec, DEFAULT_SPEC
from repro.core import model
from repro.core.params import BlockingParams
from repro.perf.report import ComparisonRow, comparison_table
from repro.utils.format import Table

__all__ = ["BlockSizeResult", "run", "render"]


@dataclass(frozen=True)
class BlockSizeResult:
    min_b_n: float
    min_b_k: float
    s_at_paper_blocks: float
    required_bw_gbs: float
    ldm_single: int
    ldm_double: int
    register_tile: tuple[int, int]
    register_budget: int
    register_reduction: float


def run(spec: SW26010Spec = DEFAULT_SPEC) -> BlockSizeResult:
    min_b_n = model.min_block_n(spec)
    single = BlockingParams.paper_single()
    double = BlockingParams.paper_double()
    s = model.bandwidth_reduction(single.b_n, single.b_k)
    r_m, r_n = model.optimal_register_tile(p_m=16, p_n=double.p_n, spec=spec)
    return BlockSizeResult(
        min_b_n=min_b_n,
        min_b_k=2 * min_b_n,
        s_at_paper_blocks=s,
        required_bw_gbs=model.required_bandwidth(s, spec) / 1e9,
        ldm_single=single.ldm_doubles_per_cpe,
        ldm_double=double.ldm_doubles_per_cpe,
        register_tile=(r_m, r_n),
        register_budget=model.register_budget(r_m, r_n),
        register_reduction=model.register_bandwidth_reduction(r_m, r_n),
    )


def render(result: BlockSizeResult | None = None,
           spec: SW26010Spec = DEFAULT_SPEC) -> Table:
    result = result or run(spec)
    rows = [
        ComparisonRow("min bN = F*W/Bt", 175.0, result.min_b_n),
        ComparisonRow("min bK = 2*bN", 350.0, result.min_b_k),
        ComparisonRow("LDM doubles, single-buffered (pN=48)", None, result.ldm_single),
        ComparisonRow("LDM budget (doubles)", 8192.0, float(spec.ldm_doubles)),
        ComparisonRow("LDM doubles, double-buffered (pN=32)", None, result.ldm_double),
        ComparisonRow("optimal rM", 4.0, float(result.register_tile[0])),
        ComparisonRow("optimal rN", 4.0, float(result.register_tile[1])),
        ComparisonRow("register budget rM*rN+rM+rN", None, float(result.register_budget)),
        ComparisonRow("LDM-register bandwidth reduction", 4.0, result.register_reduction),
        ComparisonRow(
            "required bandwidth at (bN,bK)=(384,768) [GB/s]",
            None,
            result.required_bw_gbs,
        ),
    ]
    return comparison_table(rows, title="Sec III-C block-size determination")
