"""ASCII-chart views of the figure experiments, plus CSV export.

``python -m repro.experiments`` prints tables; the functions here give
the *figure* form of Figures 4, 6 and 7 (terminal line charts) and a
CSV writer so users with plotting tools can regenerate the actual
graphics.
"""

from __future__ import annotations

import io

from repro.experiments import fig4_dma_bandwidth, fig6_variants, fig7_shapes
from repro.utils.asciichart import line_chart

__all__ = ["fig4_chart", "fig6_chart", "fig7_chart", "to_csv"]


def fig4_chart(width: int = 64, height: int = 14) -> str:
    result = fig4_dma_bandwidth.run()
    chart = line_chart(
        result.sizes,
        {"PE_MODE": result.pe_bandwidth, "ROW_MODE": result.row_bandwidth},
        width=width, height=height,
        y_label="GB/s", x_label="m=k",
    )
    return "Figure 4 — sustained DMA bandwidth\n" + chart


def fig6_chart(width: int = 64, height: int = 18) -> str:
    result = fig6_variants.run()
    chart = line_chart(
        result.sizes,
        {name: result.gflops[name] for name in fig6_variants.VARIANT_ORDER},
        width=width, height=height,
        y_label="Gflop/s", x_label="m=n=k",
    )
    return "Figure 6 — the five DGEMM versions\n" + chart


def fig7_chart(width: int = 64, height: int = 12) -> str:
    result = fig7_shapes.run()
    by_shape = result.by_shape()
    varied = (1536, 3072, 6144, 12288)
    series = {
        "vary m": [by_shape[(v, 9216, 9216)] for v in varied],
        "vary n": [by_shape[(9216, v, 9216)] for v in varied],
        "vary k": [by_shape[(9216, 9216, v)] for v in varied],
    }
    chart = line_chart(
        varied, series, width=width, height=height,
        y_label="Gflop/s", x_label="varied dimension",
    )
    return "Figure 7 — shape sensitivity (others fixed at 9216)\n" + chart


def to_csv(xs, series: dict, x_name: str = "x") -> str:
    """Render series as CSV text (for external plotting)."""
    out = io.StringIO()
    names = list(series)
    out.write(",".join([x_name, *names]) + "\n")
    for idx, x in enumerate(xs):
        row = [str(x)] + [repr(float(series[name][idx])) for name in names]
        out.write(",".join(row) + "\n")
    return out.getvalue()
