"""The shared counter-record protocol of every ``*Stats`` dataclass.

Seven unrelated dataclasses across the package count things — DMA
transfers, register broadcasts, cache accesses, staging copies, NoC
messages, context traffic, session totals — and each had grown its own
ad-hoc ``merge``/``since``/``plus``/``snapshot``.  :class:`StatsProtocol`
is the one implementation of that arithmetic: any dataclass that mixes
it in gets

- ``as_dict()`` — a plain-``dict`` view (nested stats become nested
  dicts, counter dicts are copied), the adapter surface
  :mod:`repro.obs.registry` builds its namespaced snapshots on;
- ``delta(other)`` — field-wise ``self - other``, the "what happened
  during this span" operation;
- ``plus(other)`` — field-wise sum, the "aggregate across contexts /
  core groups" operation;
- ``zero()`` — the additive identity for ``plus``;
- ``snapshot()`` — an independent copy safe to keep as a baseline while
  the live object keeps counting.

Field arithmetic is type-driven: numbers add and subtract, ``dict``
fields combine key-wise (missing keys count as 0), nested
``StatsProtocol`` fields recurse, and anything else is carried over
from ``self`` unchanged.
"""

from __future__ import annotations

import dataclasses
import numbers
import typing

__all__ = ["StatsProtocol"]


def _combine(mine, theirs, sign: int):
    """Field-wise ``mine + sign * theirs`` for the supported field kinds."""
    if isinstance(mine, StatsProtocol):
        return mine.delta(theirs) if sign < 0 else mine.plus(theirs)
    if isinstance(mine, dict):
        theirs = theirs or {}
        keys = set(mine) | set(theirs)
        return {k: mine.get(k, 0) + sign * theirs.get(k, 0) for k in keys}
    if isinstance(mine, numbers.Number):
        return mine + sign * theirs
    return mine


def _zero_value(field_type):
    """The additive identity for one annotated field type."""
    if isinstance(field_type, type) and issubclass(field_type, StatsProtocol):
        return field_type.zero()
    if field_type is float:
        return 0.0
    if field_type is dict or typing.get_origin(field_type) is dict:
        return {}
    return 0


class StatsProtocol:
    """Mixin giving a counter dataclass uniform snapshot arithmetic."""

    def as_dict(self) -> dict:
        """Plain-dict view: nested stats recurse, counter dicts copy."""
        out = {}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if isinstance(value, StatsProtocol):
                value = value.as_dict()
            elif isinstance(value, dict):
                value = dict(value)
            out[f.name] = value
        return out

    def _map(self, other, sign: int):
        if not isinstance(other, type(self)):
            raise TypeError(
                f"cannot combine {type(self).__name__} with "
                f"{type(other).__name__}"
            )
        return type(self)(
            **{
                f.name: _combine(getattr(self, f.name), getattr(other, f.name), sign)
                for f in dataclasses.fields(self)
            }
        )

    def delta(self, other):
        """Counter deltas ``self - other`` (same type), field-wise."""
        return self._map(other, -1)

    def plus(self, other):
        """Counter sums ``self + other`` — aggregation across sources."""
        return self._map(other, +1)

    @classmethod
    def zero(cls):
        """The additive identity for :meth:`plus` / :meth:`delta`."""
        hints = typing.get_type_hints(cls)
        return cls(
            **{f.name: _zero_value(hints[f.name]) for f in dataclasses.fields(cls)}
        )

    def snapshot(self):
        """An independent copy, safe to hold as a baseline."""
        kwargs = {}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if isinstance(value, StatsProtocol):
                value = value.snapshot()
            elif isinstance(value, dict):
                value = dict(value)
            kwargs[f.name] = value
        return type(self)(**kwargs)
