"""Unit conversions used throughout the performance models.

The paper quotes clock cycles (1.45 GHz), bandwidths in GB/s (decimal
gigabytes, as is conventional for memory-channel figures) and
performance in Gflop/s.  Centralising the conversions avoids the classic
GiB-vs-GB calibration bug.
"""

from __future__ import annotations

GIGA = 1e9
KIB = 1024
MIB = 1024 * 1024

#: Size of an IEEE-754 double in bytes (the W of Sec III-C).
BYTES_PER_DOUBLE = 8


def bytes_per_double() -> int:
    """Return the storage size of one matrix element (f64)."""
    return BYTES_PER_DOUBLE


def cycles_to_seconds(cycles: float, clock_hz: float) -> float:
    """Convert a cycle count at ``clock_hz`` to seconds."""
    if clock_hz <= 0:
        raise ValueError(f"clock_hz must be positive, got {clock_hz}")
    return cycles / clock_hz


def seconds_to_cycles(seconds: float, clock_hz: float) -> float:
    """Convert seconds to (fractional) cycles at ``clock_hz``."""
    if clock_hz <= 0:
        raise ValueError(f"clock_hz must be positive, got {clock_hz}")
    return seconds * clock_hz


def gflops(flops: float, seconds: float) -> float:
    """Return Gflop/s for ``flops`` done in ``seconds``."""
    if seconds <= 0:
        raise ValueError(f"seconds must be positive, got {seconds}")
    return flops / seconds / GIGA
