"""Terminal line charts for the figure experiments.

No plotting library is available offline, so the figure reproductions
render as ASCII: one glyph per series, points placed on a
character-cell canvas with a labelled y-axis. Good enough to *see*
Figure 6's ordering and saturation without leaving the terminal::

    Gflop/s
     706.1 |                        EEEEEEEEE
           |              EEEE
           |        EE
     ...
           +----------------------------------
            1536      7680            15360
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import ConfigError

__all__ = ["line_chart"]

#: glyphs assigned to series in order.
GLYPHS = "ox*+#@%&"


def line_chart(
    xs: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    y_label: str = "",
    x_label: str = "",
) -> str:
    """Render series over common x values as an ASCII chart.

    Points are nearest-cell plotted and joined by vertical fill when
    consecutive points jump more than one row (so steep rises stay
    visually connected). A legend maps glyphs to series names.
    """
    if width < 16 or height < 4:
        raise ConfigError("chart needs width >= 16 and height >= 4")
    if not xs or not series:
        raise ConfigError("chart needs x values and at least one series")
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ConfigError(
                f"series {name!r} has {len(ys)} points for {len(xs)} x values"
            )
    if len(series) > len(GLYPHS):
        raise ConfigError(f"at most {len(GLYPHS)} series supported")

    all_y = [y for ys in series.values() for y in ys]
    y_min, y_max = min(all_y), max(all_y)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = min(xs), max(xs)
    if x_max == x_min:
        x_max = x_min + 1.0

    def col(x: float) -> int:
        return round((x - x_min) / (x_max - x_min) * (width - 1))

    def row(y: float) -> int:
        # row 0 is the top of the canvas
        return (height - 1) - round((y - y_min) / (y_max - y_min) * (height - 1))

    canvas = [[" "] * width for _ in range(height)]
    for glyph, (name, ys) in zip(GLYPHS, series.items()):
        prev: tuple[int, int] | None = None
        for x, y in zip(xs, ys):
            c, r = col(x), row(y)
            canvas[r][c] = glyph
            if prev is not None:
                pc, pr = prev
                lo, hi = sorted((pr, r))
                for rr in range(lo + 1, hi):
                    cc = pc + round((c - pc) * (rr - lo) / max(hi - lo, 1))
                    if canvas[rr][cc] == " ":
                        canvas[rr][cc] = "|" if pc == c else "."
            prev = (c, r)

    margin = max(len(f"{y_max:.1f}"), len(f"{y_min:.1f}")) + 1
    lines = []
    if y_label:
        lines.append(y_label)
    for r, cells in enumerate(canvas):
        if r == 0:
            tick = f"{y_max:.1f}"
        elif r == height - 1:
            tick = f"{y_min:.1f}"
        else:
            tick = ""
        lines.append(f"{tick.rjust(margin)} |{''.join(cells)}")
    axis = f"{' ' * margin} +{'-' * width}"
    lines.append(axis)
    x_lo, x_hi = f"{x_min:g}", f"{x_max:g}"
    pad = width - len(x_lo) - len(x_hi)
    lines.append(f"{' ' * margin}  {x_lo}{' ' * max(pad, 1)}{x_hi}"
                 + (f"  {x_label}" if x_label else ""))
    legend = "   ".join(
        f"{glyph}={name}" for glyph, name in zip(GLYPHS, series)
    )
    lines.append(f"{' ' * margin}  {legend}")
    return "\n".join(line.rstrip() for line in lines)
