"""Argument-validation helpers with uniform error messages."""

from __future__ import annotations

from typing import Any

from repro.errors import ConfigError


def check_positive_int(name: str, value: Any) -> int:
    """Validate that ``value`` is a positive integer and return it.

    Accepts ints and integer-valued numpy scalars; rejects bools (a bool
    is an int in Python but never a meaningful block size).
    """
    if isinstance(value, bool) or not isinstance(value, (int,)) and not _is_np_integer(value):
        raise ConfigError(f"{name} must be an int, got {type(value).__name__}")
    ivalue = int(value)
    if ivalue <= 0:
        raise ConfigError(f"{name} must be positive, got {ivalue}")
    return ivalue


def check_positive(name: str, value: Any) -> float:
    """Validate that ``value`` is a positive real number and return it."""
    try:
        fvalue = float(value)
    except (TypeError, ValueError) as exc:
        raise ConfigError(f"{name} must be a number, got {type(value).__name__}") from exc
    if not fvalue > 0:
        raise ConfigError(f"{name} must be positive, got {fvalue}")
    return fvalue


def check_multiple(name: str, value: int, factor: int) -> int:
    """Validate that ``value`` is a positive multiple of ``factor``."""
    ivalue = check_positive_int(name, value)
    if ivalue % factor != 0:
        raise ConfigError(f"{name} must be a multiple of {factor}, got {ivalue}")
    return ivalue


def check_range(name: str, value: int, low: int, high: int) -> int:
    """Validate ``low <= value <= high`` (inclusive) and return value."""
    ivalue = int(value)
    if not (low <= ivalue <= high):
        raise ConfigError(f"{name} must be in [{low}, {high}], got {ivalue}")
    return ivalue


def _is_np_integer(value: Any) -> bool:
    try:
        import numpy as np

        return isinstance(value, np.integer)
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        return False
