"""Small shared helpers: unit conversions, validation, table formatting."""

from repro.utils.units import (
    GIGA,
    KIB,
    MIB,
    bytes_per_double,
    cycles_to_seconds,
    gflops,
    seconds_to_cycles,
)
from repro.utils.validation import (
    check_multiple,
    check_positive,
    check_positive_int,
    check_range,
)
from repro.utils.format import Table, format_si
from repro.utils.stats import StatsProtocol

__all__ = [
    "StatsProtocol",
    "GIGA",
    "KIB",
    "MIB",
    "bytes_per_double",
    "cycles_to_seconds",
    "gflops",
    "seconds_to_cycles",
    "check_multiple",
    "check_positive",
    "check_positive_int",
    "check_range",
    "Table",
    "format_si",
]
