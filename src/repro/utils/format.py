"""Plain-text table rendering for experiment reports.

The experiment drivers print the same rows/series the paper's figures
show; a small dependency-free table keeps that output readable in a
terminal and stable in test fixtures.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_si(value: float, unit: str = "", digits: int = 1) -> str:
    """Format a value with an SI suffix, e.g. ``706.1 G`` for 7.061e11."""
    for threshold, suffix in ((1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "K")):
        if abs(value) >= threshold:
            return f"{value / threshold:.{digits}f} {suffix}{unit}".rstrip()
    return f"{value:.{digits}f} {unit}".rstrip()


class Table:
    """A minimal column-aligned text table.

    >>> t = Table(["size", "Gflop/s"])
    >>> t.add_row([1536, 623.9])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    size  Gflop/s
    ----  -------
    1536  623.9
    """

    def __init__(self, headers: Sequence[str], title: str | None = None) -> None:
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: list[list[str]] = []

    def add_row(self, row: Iterable[object]) -> None:
        cells = [self._fmt(c) for c in row]
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(cells)

    @staticmethod
    def _fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.1f}"
        return str(cell)

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append("  ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(line.rstrip() for line in lines)

    def __str__(self) -> str:
        return self.render()
