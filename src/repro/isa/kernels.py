"""Microkernel instruction streams: naive vs. the paper's Algorithm 3.

One *iteration* of the register-level kernel consumes one column of the
A panel (4 vector registers = 16 rows) and one row of the B panel (4
splatted scalars) and issues the 16 ``vmad`` of the 16x4 C tile
(128 flops).  A *tile* wraps ``pK`` iterations with a prologue that
loads the C tile into registers and preloads the operands the software
pipeline expects, and an epilogue that stores C back to LDM.  A *strip
multiplication* (one step of Algorithm 1's innermost parallel update)
executes ``(pN/rN) * 8 = 64`` tiles per CPE, which is the unit the
paper profiles (101,858 cycles, 97% vmad).

Two orderings are provided:

``scheduled_iteration``
    the hand schedule of Algorithm 3, transcribed line by line: every
    ``vmad`` is paired with the register-communication load of an
    operand for the *next* iteration (or a ``nop`` to pin issue order),
    each operand register is reloaded immediately after its last read,
    and no two consecutive ``vmad`` touch the same accumulator.

``naive_iteration``
    the unscheduled ordering an optimizing-but-not-heroic compiler
    emits for the same tile: the four B scalars are loaded up front,
    each A vector is loaded just before its row of multiplies, and
    nothing is software-pipelined across iterations.  The dual-issue
    hardware cannot rescue a bad order: the just-in-time loads expose
    their 4-cycle LDM latency to the dependent ``vmad`` group, which is
    precisely the "LDM memory access appears to be the bottleneck"
    effect the paper describes.  Both streams run on the same
    dual-issue pipeline; only the ordering differs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.arch.config import LatencySpec
from repro.isa.instructions import (
    Instr,
    addl,
    lddec,
    nop,
    vldd,
    vldr,
    vmad,
    vstd,
)
from repro.isa.pipeline import Pipeline

__all__ = [
    "MicrokernelSpec",
    "scheduled_iteration",
    "naive_iteration",
    "tile_program",
    "scheduled_pipeline",
    "naive_pipeline",
    "strip_cycles",
]

#: register-tile geometry fixed by Sec III-C3: rM = rN = 4.
R_M = 4
R_N = 4
#: flops of one iteration: 16 vmad x (4 lanes x 2 flops).
FLOPS_PER_ITERATION = R_M * R_N * 8


@dataclass(frozen=True)
class MicrokernelSpec:
    """Geometry of the thread-level multiply the microkernel executes."""

    p_m: int = 16
    p_n: int = 32
    p_k: int = 96

    def __post_init__(self) -> None:
        if self.p_m % 16 != 0 or self.p_m <= 0:
            raise ConfigError(
                "the register tile covers pM in chunks of 16 rows "
                f"(4 vector registers x 4 lanes); got pM = {self.p_m}"
            )
        if self.p_n % R_N != 0:
            raise ConfigError(f"pN must be a multiple of rN = {R_N}, got {self.p_n}")
        if self.p_k < 2:
            raise ConfigError(f"pK must be >= 2, got {self.p_k}")

    @property
    def tiles_per_thread_multiply(self) -> int:
        """Register tiles per thread-level block multiply."""
        return (self.p_m // 16) * (self.p_n // R_N)

    @property
    def tiles_per_strip(self) -> int:
        """Tiles per strip multiplication: 8 steps x (pN/rN)."""
        return 8 * self.tiles_per_thread_multiply

    @property
    def flops_per_tile(self) -> int:
        return self.p_k * FLOPS_PER_ITERATION


def scheduled_iteration() -> list[Instr]:
    """One steady-state iteration of Algorithm 3 (16 issue pairs).

    Transcription of the paper's listing; ``regA`` is rendered as
    ``vldr`` and ``regB`` as ``lddec`` (the producer side; receivers
    run ``getr``/``getc`` with identical unit and latency).
    """
    a, b, c = "rA", "rB", "rC"
    lines: list[tuple[Instr, Instr | None]] = [
        (vmad(f"{c}0", f"{a}0", f"{b}0", f"{c}0"), vldr(f"{a}3", "ldmA")),
        (vmad(f"{c}1", f"{a}0", f"{b}1", f"{c}1"), lddec(f"{b}3", "ldmB")),
        (vmad(f"{c}4", f"{a}1", f"{b}0", f"{c}4"), addl("ldmA", "PM", "ldmA")),
        (vmad(f"{c}5", f"{a}1", f"{b}1", f"{c}5"), addl("ldmB", "two", "ldmB")),
        (vmad(f"{c}2", f"{a}0", f"{b}2", f"{c}2"), nop()),
        (vmad(f"{c}8", f"{a}2", f"{b}0", f"{c}8"), nop()),
        (vmad(f"{c}3", f"{a}0", f"{b}3", f"{c}3"), vldr(f"{a}0", "ldmA")),
        (vmad(f"{c}12", f"{a}3", f"{b}0", f"{c}12"), nop()),
        (vmad(f"{c}6", f"{a}1", f"{b}2", f"{c}6"), lddec(f"{b}0", "ldmB")),
        (vmad(f"{c}7", f"{a}1", f"{b}3", f"{c}7"), vldr(f"{a}1", "ldmA")),
        (vmad(f"{c}9", f"{a}2", f"{b}1", f"{c}9"), nop()),
        (vmad(f"{c}13", f"{a}3", f"{b}1", f"{c}13"), lddec(f"{b}1", "ldmB")),
        (vmad(f"{c}10", f"{a}2", f"{b}2", f"{c}10"), nop()),
        (vmad(f"{c}11", f"{a}2", f"{b}3", f"{c}11"), vldr(f"{a}2", "ldmA")),
        (vmad(f"{c}14", f"{a}3", f"{b}2", f"{c}14"), lddec(f"{b}2", "ldmB")),
        (vmad(f"{c}15", f"{a}3", f"{b}3", f"{c}15"), None),
    ]
    program: list[Instr] = []
    for fp, sec in lines:
        program.append(fp)
        if sec is not None:
            program.append(sec)
    return program


def naive_iteration() -> list[Instr]:
    """One iteration of the unscheduled (compiler-style) kernel."""
    program: list[Instr] = []
    for j in range(R_N):
        program.append(lddec(f"rB{j}", "ldmB"))
    for i in range(R_M):
        program.append(vldd(f"rA{i}", "ldmA"))
        for j in range(R_N):
            k = R_N * i + j
            program.append(vmad(f"rC{k}", f"rA{i}", f"rB{j}", f"rC{k}"))
    program.append(addl("ldmA", "PM", "ldmA"))
    program.append(addl("ldmB", "two", "ldmB"))
    return program


def _c_prologue() -> list[Instr]:
    """Load the 16 C accumulators from LDM (start of a tile)."""
    return [vldd(f"rC{k}", "ldmC") for k in range(R_M * R_N)]


def _c_epilogue() -> list[Instr]:
    """Store the 16 C accumulators back to LDM (end of a tile)."""
    return [vstd(f"rC{k}", "ldmC") for k in range(R_M * R_N)]


def _peeled_last_iteration(body: list[Instr]) -> list[Instr]:
    """The final loop iteration with next-iteration prefetches removed.

    Algorithm 3 loads two kinds of operands: lines 1-2 fetch the
    *current* iteration's ``rA3``/``rB3`` (before the pointer bumps),
    while the loads after the ``addl`` pointer advances prefetch
    iteration ``t+1``'s operands.  The peeled last iteration must keep
    the former and drop only the latter, or the final k-step computes
    with stale row-3 operands — a bug the symbolic checker in
    :mod:`repro.isa.semantics` catches (and did catch, in an earlier
    version of this function).
    """
    out: list[Instr] = []
    past_pointer_advance = False
    for ins in body:
        if ins.op == "addl":
            past_pointer_advance = True
            continue  # no next column to point at
        if ins.op in ("vldr", "lddec", "getr", "getc", "vldd") and past_pointer_advance:
            out.append(nop())  # keep the issue pairing without the load
            continue
        out.append(ins)
    return out


def tile_program(spec: MicrokernelSpec, scheduled: bool = True) -> list[Instr]:
    """Full instruction stream of one register tile's k-loop."""
    program: list[Instr] = []
    program.extend(_c_prologue())
    if scheduled:
        body = scheduled_iteration()
        # preload the operands the steady-state schedule expects to
        # already be in flight: A rows 0..2 and B scalars 0..2
        for i in range(R_M - 1):
            program.append(vldr(f"rA{i}", "ldmA"))
        for j in range(R_N - 1):
            program.append(lddec(f"rB{j}", "ldmB"))
        program.extend(body * (spec.p_k - 1))
        program.extend(_peeled_last_iteration(body))
    else:
        body = naive_iteration()
        program.extend(body * spec.p_k)
    program.extend(_c_epilogue())
    return program


def scheduled_pipeline(latency: LatencySpec | None = None) -> Pipeline:
    """The pipeline model the scheduled kernel runs on (dual issue)."""
    return Pipeline(latency, dual_issue=True)


def naive_pipeline(latency: LatencySpec | None = None) -> Pipeline:
    """The pipeline model for unscheduled code.

    Same dual-issue hardware as :func:`scheduled_pipeline`; the naive
    kernel is slower purely because its instruction *order* exposes
    load latency and bunches same-pipe instructions.
    """
    return Pipeline(latency, dual_issue=True)


def strip_cycles(spec: MicrokernelSpec, scheduled: bool = True,
                 latency: LatencySpec | None = None) -> int:
    """Cycles one CPE spends on a full strip multiplication.

    This is the quantity the paper profiles for the SCHED version:
    ``tiles_per_strip`` sequential tile programs.  Tiles drain the
    pipeline between invocations (C store / C load dependency), so the
    strip cost is tiles x tile cost.
    """
    pipe = scheduled_pipeline(latency) if scheduled else naive_pipeline(latency)
    per_tile = pipe.run(tile_program(spec, scheduled)).cycles
    return per_tile * spec.tiles_per_strip
