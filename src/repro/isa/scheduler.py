"""Greedy list scheduler — the paper's future-work extension.

The conclusion of the paper: "writing assembly code by hand hinders
productivity. In the future, we plan to ... apply automatic code
generation and automatic performance tuning."  This module is that
extension for the microkernel: given an *unordered* iteration body it
produces a dual-issue-friendly ordering automatically, with
one-iteration software pipelining (operand loads for iteration ``t+1``
are placed inside iteration ``t``, after the last read of the register
they clobber — exactly the trick Algorithm 3 plays by hand).

The scheduler is a classic list scheduler:

1. build the dependence DAG over one iteration (RAW and WAW edges;
   WAR edges only order a load *after* the last reader of the register
   it overwrites);
2. repeatedly emit the ready instruction with the longest critical
   path to the end of the body, preferring to alternate pipes so the
   in-order dual-issue front end can pair adjacent instructions.

Quality is judged empirically: :func:`repro.isa.kernels.strip_cycles`
style evaluation via :meth:`Pipeline.steady_state_cycles` — the tests
assert the automatic schedule is within a few percent of the hand
schedule and far ahead of the naive ordering.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PipelineError
from repro.isa.instructions import Instr, Unit

__all__ = ["DependenceGraph", "list_schedule"]


@dataclass
class DependenceGraph:
    """Dependence DAG over a straight-line body."""

    instrs: list[Instr]
    succs: list[set[int]] = field(default_factory=list)
    preds: list[set[int]] = field(default_factory=list)

    @classmethod
    def build(cls, instrs: list[Instr]) -> "DependenceGraph":
        n = len(instrs)
        graph = cls(list(instrs), [set() for _ in range(n)], [set() for _ in range(n)])
        last_write: dict[str, int] = {}
        readers_since_write: dict[str, list[int]] = {}
        for i, ins in enumerate(instrs):
            for src in ins.srcs:
                w = last_write.get(src)
                if w is not None:
                    graph._edge(w, i)  # RAW
                readers_since_write.setdefault(src, []).append(i)
            if ins.dst is not None:
                w = last_write.get(ins.dst)
                if w is not None:
                    graph._edge(w, i)  # WAW
                for r in readers_since_write.get(ins.dst, ()):  # WAR
                    if r != i:
                        graph._edge(r, i)
                last_write[ins.dst] = i
                readers_since_write[ins.dst] = []
        return graph

    def _edge(self, a: int, b: int) -> None:
        if a == b:
            return
        self.succs[a].add(b)
        self.preds[b].add(a)

    def critical_path(self, latencies: dict[int, int]) -> list[int]:
        """Longest path length (in latency) from each node to any sink."""
        n = len(self.instrs)
        depth = [0] * n
        for i in reversed(range(n)):
            lat = latencies[i]
            if self.succs[i]:
                depth[i] = lat + max(depth[j] for j in self.succs[i])
            else:
                depth[i] = lat
        return depth


def list_schedule(
    body: list[Instr],
    latency_of: dict[str, int] | None = None,
    software_pipeline: bool = True,
) -> list[Instr]:
    """Reorder ``body`` for the dual-issue in-order front end.

    With ``software_pipeline=True`` the operand loads of the body are
    treated as producing values for the *next* iteration: WAR edges
    still order each load after the final reader of its destination,
    but RAW edges from loads to this iteration's consumers are dropped
    (the consumers read last iteration's value) — mirroring the rotated
    dataflow of Algorithm 3.
    """
    latency_of = latency_of or {"vmad": 6, "vldr": 4, "lddec": 4, "getr": 4,
                                "getc": 4, "vldd": 4, "vstd": 1, "addl": 1, "nop": 1}
    graph = DependenceGraph.build(body)
    if software_pipeline:
        _rotate_loads(graph)
    lat = {i: latency_of.get(ins.op, 1) for i, ins in enumerate(graph.instrs)}
    depth = graph.critical_path(lat)

    n = len(graph.instrs)
    remaining_preds = [len(graph.preds[i]) for i in range(n)]
    ready = [i for i in range(n) if remaining_preds[i] == 0]
    emitted: list[int] = []
    last_unit: Unit | None = None
    while ready:
        # prefer alternating pipes so adjacent instructions can pair,
        # then longest critical path, then program order for stability
        def key(i: int) -> tuple:
            alternates = graph.instrs[i].unit != last_unit
            return (alternates, depth[i], -i)

        ready.sort(key=key)
        pick = ready.pop()
        emitted.append(pick)
        last_unit = graph.instrs[pick].unit
        for succ in graph.succs[pick]:
            remaining_preds[succ] -= 1
            if remaining_preds[succ] == 0:
                ready.append(succ)
    if len(emitted) != n:
        raise PipelineError("dependence cycle in scheduling body")
    return [graph.instrs[i] for i in emitted]


def _rotate_loads(graph: DependenceGraph) -> None:
    """Drop load->consumer RAW edges (loads feed the next iteration)."""
    load_ops = {"vldr", "lddec", "getr", "getc", "vldd"}
    for i, ins in enumerate(graph.instrs):
        if ins.op in load_ops and ins.dst is not None:
            for j in list(graph.succs[i]):
                consumer = graph.instrs[j]
                if ins.dst in consumer.srcs:
                    graph.succs[i].discard(j)
                    graph.preds[j].discard(i)
