"""Cycle-by-cycle issue diagrams for pipeline runs.

Renders what the dual-issue front end did with a stream — which
instruction went down which pipe at each cycle, and where the stalls
are — in the tabular style architecture texts use::

    cycle  FP pipe                     secondary pipe
    -----  --------------------------  ----------------------
        0  vmad rC0 rA0 rB0 rC0        vldr rA3 ldmA
        1  vmad rC1 rA0 rB1 rC1        lddec rB3 ldmB
        2  .                           addl ldmA PM ldmA
    ...

Used by ``examples/device_tour.py``-style walkthroughs and by humans
debugging kernel orderings; tests assert the diagram agrees with the
simulator's issue records.
"""

from __future__ import annotations

from repro.errors import PipelineError
from repro.isa.instructions import Instr, Unit
from repro.isa.pipeline import Pipeline

__all__ = ["issue_diagram"]


def issue_diagram(
    program: list[Instr],
    pipeline: Pipeline | None = None,
    max_cycles: int | None = None,
) -> str:
    """Simulate ``program`` and render the per-cycle issue table.

    ``.`` marks an idle slot; rows are emitted for every cycle from 0
    to the last issue (so stall bubbles are visible as all-idle rows).
    """
    pipeline = pipeline or Pipeline()
    result = pipeline.run(program, collect_issues=True)
    if not result.issues:
        return "(empty program)"
    by_cycle: dict[int, dict[Unit, str]] = {}
    for record in result.issues:
        text = str(program[record.index])
        by_cycle.setdefault(record.cycle, {})[record.unit] = text
    last = max(by_cycle)
    if max_cycles is not None:
        if max_cycles < 1:
            raise PipelineError("max_cycles must be >= 1")
        last = min(last, max_cycles - 1)
    fp_width = max(
        [len(slots.get(Unit.FP, ".")) for slots in by_cycle.values()] + [7]
    )
    lines = [
        f"{'cycle':>5}  {'FP pipe'.ljust(fp_width)}  secondary pipe",
        f"{'-' * 5}  {'-' * fp_width}  {'-' * 14}",
    ]
    for cycle in range(last + 1):
        slots = by_cycle.get(cycle, {})
        lines.append(
            f"{cycle:>5}  "
            f"{slots.get(Unit.FP, '.').ljust(fp_width)}  "
            f"{slots.get(Unit.SECONDARY, '.')}"
        )
    if max_cycles is not None and max(by_cycle) > last:
        lines.append(f"... ({result.cycles} cycles total)")
    return "\n".join(lines)
