"""In-order dual-issue pipeline simulator with a register scoreboard.

Model (paper Sec II and IV-C):

- two issue slots per cycle: the FP pipe (``vmad``) and the secondary
  pipe (register communication, LDM access, integer);
- issue is strictly in order: instruction *i+1* may issue in the same
  cycle as instruction *i* only if it uses the other pipe and has no
  hazard; if instruction *i* stalls, nothing younger issues;
- RAW hazards: a source register written by an older instruction is
  ready ``latency`` cycles after that instruction issued;
- WAW hazards: a destination with a pending write stalls until the
  write lands (no renaming on the CPE);
- WAR hazards are free (operands are read at issue), which is what
  lets Algorithm 3 reload ``rA[i]`` on the same line that consumes it.

``dual_issue=False`` disables the second issue slot; it exists for the
ablation study quantifying how much of the scheduled kernel's win comes
from pairing versus from latency hiding (both the naive and scheduled
kernels are normally evaluated on the same dual-issue hardware).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import PipelineError
from repro.arch.config import LatencySpec
from repro.isa.instructions import Instr, Unit

__all__ = ["IssueRecord", "PipelineResult", "Pipeline"]


@dataclass(frozen=True)
class IssueRecord:
    """When and where one instruction issued."""

    index: int
    cycle: int
    unit: Unit
    op: str


@dataclass
class PipelineResult:
    """Outcome of simulating one instruction stream."""

    cycles: int
    instructions: int
    issues: list[IssueRecord] = field(repr=False, default_factory=list)
    stall_cycles: int = 0
    op_counts: dict[str, int] = field(default_factory=dict)
    op_issue_cycles: dict[str, int] = field(default_factory=dict)

    def occupancy(self, op: str) -> float:
        """Fraction of total cycles in which ``op`` issued.

        This matches the paper's metric "vmad takes 97% of the cycles":
        cycles where at least one instruction of that op issued, over
        total cycles.
        """
        if self.cycles == 0:
            return 0.0
        return self.op_issue_cycles.get(op, 0) / self.cycles

    def ipc(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles


class Pipeline:
    """Cycle simulator for a straight-line instruction stream."""

    def __init__(self, latency: LatencySpec | None = None, dual_issue: bool = True) -> None:
        self.latency = latency or LatencySpec()
        self.dual_issue = dual_issue

    def _lat(self, instr: Instr) -> int:
        try:
            return getattr(self.latency, instr.latency_class)
        except AttributeError:
            raise PipelineError(
                f"unknown latency class {instr.latency_class!r} for {instr}"
            ) from None

    def run(self, program: Sequence[Instr], collect_issues: bool = False) -> PipelineResult:
        """Simulate ``program`` from an empty scoreboard.

        Returns total cycles from first issue to the cycle after the
        last issue (drain of in-flight results is not charged, matching
        how loop iterations overlap in steady state).
        """
        ready: dict[str, int] = {}
        cycle = 0
        issued_this_cycle: dict[Unit, bool] = {Unit.FP: False, Unit.SECONDARY: False}
        result = PipelineResult(cycles=0, instructions=len(program))
        ops_this_cycle: set[str] = set()
        stalls = 0

        def flush_cycle_ops() -> None:
            for op in ops_this_cycle:
                result.op_issue_cycles[op] = result.op_issue_cycles.get(op, 0) + 1
            ops_this_cycle.clear()

        for index, instr in enumerate(program):
            if not isinstance(instr, Instr):
                raise PipelineError(f"program item {index} is not an Instr: {instr!r}")
            lat = self._lat(instr)
            while True:
                # structural hazard: pipe already used this cycle, or
                # single-issue mode and anything already issued
                pipe_busy = issued_this_cycle[instr.unit] or (
                    not self.dual_issue and any(issued_this_cycle.values())
                )
                # RAW: all sources ready; WAW: pending write to dst done
                raw_wait = max(
                    (ready.get(src, 0) for src in instr.srcs), default=0
                )
                waw_wait = ready.get(instr.dst, 0) if instr.dst else 0
                data_wait = max(raw_wait, waw_wait)
                if not pipe_busy and data_wait <= cycle:
                    break
                # advance one cycle
                if not any(issued_this_cycle.values()):
                    stalls += 1
                flush_cycle_ops()
                issued_this_cycle = {Unit.FP: False, Unit.SECONDARY: False}
                cycle += 1
            issued_this_cycle[instr.unit] = True
            ops_this_cycle.add(instr.op)
            result.op_counts[instr.op] = result.op_counts.get(instr.op, 0) + 1
            if instr.dst:
                ready[instr.dst] = cycle + lat
            if collect_issues:
                result.issues.append(IssueRecord(index, cycle, instr.unit, instr.op))
        if any(issued_this_cycle.values()):
            flush_cycle_ops()
            cycle += 1
        result.cycles = cycle
        result.stall_cycles = stalls
        return result

    def steady_state_cycles(
        self, body: Sequence[Instr], warmup: int = 4, measure: int = 16
    ) -> float:
        """Marginal cycles per iteration of a repeated loop body.

        Runs ``warmup + measure`` copies and ``warmup`` copies of the
        body back to back; the difference divided by ``measure`` is the
        steady-state cost, which removes pipeline fill effects.
        """
        if warmup < 1 or measure < 1:
            raise PipelineError("warmup and measure must be >= 1")
        long = self.run(list(body) * (warmup + measure)).cycles
        short = self.run(list(body) * warmup).cycles
        return (long - short) / measure
