"""Instruction vocabulary for the CPE pipeline model.

Registers are plain strings (``"rA0"``, ``"rC15"``, ``"ptrA"``); the
pipeline simulator only needs identity, not contents — the functional
math lives in :mod:`repro.core`.

Issue units (paper Sec IV-C): the FP pipe executes ``vmad``; the
secondary pipe executes register communication (``vldr``, ``lddec``,
``getr``, ``getc``), LDM access (``vldd``, ``vstd``) and integer
operations (``addl``).  ``nop`` pads the secondary slot, which is
exactly what the paper inserts to keep the software pipeline in order.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import PipelineError

__all__ = [
    "Unit",
    "Instr",
    "vmad",
    "vldd",
    "vstd",
    "vldr",
    "lddec",
    "getr",
    "getc",
    "addl",
    "nop",
    "REGCOMM_OPS",
    "LDM_OPS",
]


class Unit(enum.Enum):
    """Issue pipe of an instruction."""

    FP = "fp"
    SECONDARY = "secondary"


#: ops that use the register-communication network.
REGCOMM_OPS = frozenset({"vldr", "lddec", "getr", "getc"})
#: ops that touch the LDM.
LDM_OPS = frozenset({"vldd", "vstd", "vldr", "lddec"})


@dataclass(frozen=True)
class Instr:
    """One machine instruction: op, destination, sources, issue unit."""

    op: str
    dst: str | None
    srcs: tuple[str, ...]
    unit: Unit
    #: RAW latency class key into LatencySpec; resolved by the pipeline.
    latency_class: str

    def __post_init__(self) -> None:
        if not self.op:
            raise PipelineError("instruction needs an op name")
        if self.dst is not None and not self.dst:
            raise PipelineError("empty destination register name")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = [self.op]
        if self.dst:
            parts.append(self.dst)
        parts.extend(self.srcs)
        return " ".join(parts)


def vmad(dst: str, a: str, b: str, acc: str) -> Instr:
    """Fused multiply-add: ``dst = a*b + acc`` (FP pipe, 6-cycle RAW)."""
    return Instr("vmad", dst, (a, b, acc), Unit.FP, "vmad")


def vldd(dst: str, addr: str = "ldm") -> Instr:
    """Plain 256-bit LDM vector load (secondary pipe)."""
    return Instr("vldd", dst, (addr,), Unit.SECONDARY, "ldm_load")


def vstd(src: str, addr: str = "ldm") -> Instr:
    """256-bit LDM vector store (secondary pipe, no consumer latency)."""
    return Instr("vstd", None, (src, addr), Unit.SECONDARY, "integer")


def vldr(dst: str, addr: str = "ldm") -> Instr:
    """Load 256 bits from LDM and row-broadcast (secondary pipe)."""
    return Instr("vldr", dst, (addr,), Unit.SECONDARY, "regcomm")


def lddec(dst: str, addr: str = "ldm") -> Instr:
    """Load one f64, splat to 4 lanes, column-broadcast (secondary pipe)."""
    return Instr("lddec", dst, (addr,), Unit.SECONDARY, "regcomm")


def getr(dst: str) -> Instr:
    """Receive from the row network into a register (secondary pipe)."""
    return Instr("getr", dst, (), Unit.SECONDARY, "regcomm")


def getc(dst: str) -> Instr:
    """Receive from the column network into a register (secondary pipe)."""
    return Instr("getc", dst, (), Unit.SECONDARY, "regcomm")


def addl(dst: str, *srcs: str) -> Instr:
    """Integer add (pointer bump; secondary pipe, 1-cycle)."""
    return Instr("addl", dst, tuple(srcs), Unit.SECONDARY, "integer")


def nop() -> Instr:
    """Secondary-pipe filler keeping issue order (paper Algorithm 3)."""
    return Instr("nop", None, (), Unit.SECONDARY, "integer")
