"""A tiny assembler for the CPE instruction subset.

The paper presents Algorithm 3 as an assembly listing; this module
parses that textual form into :class:`~repro.isa.instructions.Instr`
streams so kernels can be written (and reviewed) in the paper's own
notation, and so the hand transcription in
:func:`repro.isa.kernels.scheduled_iteration` can be *checked* against
a literal quotation of the listing (see
``tests/unit/isa/test_assembler.py``).

Syntax, one instruction per statement, ``;`` or newline separated,
``#`` comments::

    vmad  rC0, rA0, rB0, rC0      # dst, a, b, acc
    vldr  rA3, ldmA               # load-and-row-broadcast
    lddec rB3, ldmB               # splat-and-column-broadcast
    getr  rA2                     # receive from the row network
    getc  rB1                     # receive from the column network
    vldd  rA0, ldmA               # plain LDM vector load
    vstd  rC5, ldmC               # LDM vector store
    addl  ldmA, PM, ldmA          # integer add: dst = src1 + src2
    nop

The paper writes ``regA``/``regB`` as stand-ins for the communication
ops; the assembler accepts them as aliases (``regA`` -> ``vldr``,
``regB`` -> ``lddec``).
"""

from __future__ import annotations

from repro.errors import PipelineError
from repro.isa.instructions import (
    Instr,
    addl,
    getc,
    getr,
    lddec,
    nop,
    vldd,
    vldr,
    vmad,
    vstd,
)

__all__ = ["assemble", "assemble_line", "disassemble"]

_ALIASES = {"rega": "vldr", "regb": "lddec"}
_ARITY = {
    "vmad": 4,
    "vldr": (1, 2),
    "lddec": (1, 2),
    "getr": 1,
    "getc": 1,
    "vldd": (1, 2),
    "vstd": (1, 2),
    "addl": 3,
    "nop": 0,
}


def _split_statements(text: str) -> list[str]:
    statements: list[str] = []
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0]
        for stmt in line.split(";"):
            stmt = stmt.strip()
            if stmt:
                statements.append(stmt)
    return statements


def assemble_line(stmt: str) -> Instr:
    """Parse one statement into an instruction."""
    parts = stmt.replace(",", " ").split()
    if not parts:
        raise PipelineError("empty statement")
    op = parts[0].lower()
    op = _ALIASES.get(op, op)
    args = parts[1:]
    arity = _ARITY.get(op)
    if arity is None:
        raise PipelineError(f"unknown mnemonic {parts[0]!r} in {stmt!r}")
    if isinstance(arity, tuple):
        if len(args) not in arity:
            raise PipelineError(
                f"{op} takes {arity[0]} or {arity[1]} operands, got "
                f"{len(args)} in {stmt!r}"
            )
    elif len(args) != arity:
        raise PipelineError(
            f"{op} takes {arity} operands, got {len(args)} in {stmt!r}"
        )
    if op == "vmad":
        return vmad(args[0], args[1], args[2], args[3])
    if op == "vldr":
        return vldr(args[0], args[1] if len(args) > 1 else "ldm")
    if op == "lddec":
        return lddec(args[0], args[1] if len(args) > 1 else "ldm")
    if op == "getr":
        return getr(args[0])
    if op == "getc":
        return getc(args[0])
    if op == "vldd":
        return vldd(args[0], args[1] if len(args) > 1 else "ldm")
    if op == "vstd":
        return vstd(args[0], args[1] if len(args) > 1 else "ldm")
    if op == "addl":
        return addl(args[0], args[1], args[2])
    return nop()


def assemble(text: str) -> list[Instr]:
    """Parse a multi-statement listing into an instruction stream."""
    return [assemble_line(stmt) for stmt in _split_statements(text)]


def disassemble(program: list[Instr]) -> str:
    """Render a stream back to assembler text (one per line)."""
    lines = []
    for ins in program:
        if ins.op == "vmad":
            a, b, acc = ins.srcs
            lines.append(f"vmad {ins.dst}, {a}, {b}, {acc}")
        elif ins.op in ("vldr", "lddec", "vldd"):
            lines.append(f"{ins.op} {ins.dst}, {ins.srcs[0]}")
        elif ins.op in ("getr", "getc"):
            lines.append(f"{ins.op} {ins.dst}")
        elif ins.op == "vstd":
            lines.append(f"vstd {ins.srcs[0]}, {ins.srcs[1]}")
        elif ins.op == "addl":
            lines.append(f"addl {ins.dst}, {', '.join(ins.srcs)}")
        elif ins.op == "nop":
            lines.append("nop")
        else:  # pragma: no cover - vocabulary is closed
            raise PipelineError(f"cannot disassemble {ins!r}")
    return "\n".join(lines)
