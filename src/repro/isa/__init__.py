"""Instruction-level model of the CPE dual pipeline (paper Sec IV-C).

The SCHED variant's entire gain over DB comes from instruction issue:
``vmad`` (the 256-bit fused multiply-add) executes on the floating-point
pipe while register-communication, LDM access and integer instructions
execute on the secondary pipe, so a carefully interleaved stream issues
one ``vmad`` per cycle with the operand traffic hidden.

This subpackage makes that claim executable:

- :mod:`repro.isa.instructions` — the instruction vocabulary
  (``vmad``, ``vldr``/``lddec``/``getr``/``getc``, ``vldd``/``vstd``,
  ``addl``, ``nop``) with issue units and RAW latencies;
- :mod:`repro.isa.pipeline` — an in-order dual-issue cycle simulator
  with a register scoreboard;
- :mod:`repro.isa.kernels` — builders for the naive (compiler-style)
  microkernel and the hand schedule of the paper's Algorithm 3;
- :mod:`repro.isa.scheduler` — a greedy list scheduler with
  one-iteration software pipelining (the paper's future-work
  "automatic code generation" extension);
- :mod:`repro.isa.profile` — cycle/occupancy summaries matching the
  paper's "101,858 cycles, 97% vmad" profile.
"""

from repro.isa.instructions import Instr, Unit, vmad, vldd, vldr, lddec, getr, getc, vstd, addl, nop
from repro.isa.pipeline import Pipeline, PipelineResult
from repro.isa.kernels import (
    MicrokernelSpec,
    naive_iteration,
    scheduled_iteration,
    tile_program,
    strip_cycles,
)
from repro.isa.scheduler import list_schedule
from repro.isa.profile import KernelProfile, profile_kernel
from repro.isa.assembler import assemble, disassemble
from repro.isa.semantics import symbolic_execute, verify_tile_semantics

__all__ = [
    "Instr",
    "Unit",
    "vmad",
    "vldd",
    "vldr",
    "lddec",
    "getr",
    "getc",
    "vstd",
    "addl",
    "nop",
    "Pipeline",
    "PipelineResult",
    "MicrokernelSpec",
    "naive_iteration",
    "scheduled_iteration",
    "tile_program",
    "strip_cycles",
    "list_schedule",
    "KernelProfile",
    "profile_kernel",
    "assemble",
    "disassemble",
    "symbolic_execute",
    "verify_tile_semantics",
]
