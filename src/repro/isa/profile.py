"""Kernel cycle profiles in the shape the paper reports (Sec IV-C).

"Profiling on this optimized version shows that the whole loop takes
101,858 cycles in total, and vmad takes 97% of the cycles."  The
profile here reproduces exactly those two numbers from the pipeline
simulator, plus the derived per-flop cost the performance models use.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import LatencySpec
from repro.isa.kernels import (
    FLOPS_PER_ITERATION,
    MicrokernelSpec,
    naive_pipeline,
    scheduled_pipeline,
    tile_program,
)

__all__ = ["KernelProfile", "profile_kernel"]


@dataclass(frozen=True)
class KernelProfile:
    """Cycle accounting of one CPE's strip multiplication."""

    scheduled: bool
    spec: MicrokernelSpec
    tile_cycles: int
    strip_cycles: int
    vmad_count: int
    vmad_occupancy: float

    @property
    def flops_per_strip(self) -> int:
        return self.vmad_count * 8

    @property
    def cycles_per_iteration(self) -> float:
        """Average cycles per 16-vmad iteration including tile overhead."""
        iters = self.vmad_count // 16
        return self.strip_cycles / iters

    @property
    def efficiency(self) -> float:
        """Fraction of the FP pipe's peak the kernel sustains.

        Peak is one vmad per cycle, so efficiency is ideal cycles
        (= vmad count) over actual cycles.
        """
        return self.vmad_count / self.strip_cycles

    @property
    def cycles_per_flop(self) -> float:
        return self.strip_cycles / self.flops_per_strip


def profile_kernel(
    spec: MicrokernelSpec | None = None,
    scheduled: bool = True,
    latency: LatencySpec | None = None,
) -> KernelProfile:
    """Simulate one tile and scale to the strip multiplication."""
    spec = spec or MicrokernelSpec()
    pipe = scheduled_pipeline(latency) if scheduled else naive_pipeline(latency)
    program = tile_program(spec, scheduled)
    result = pipe.run(program)
    tiles = spec.tiles_per_strip
    vmads_per_tile = result.op_counts.get("vmad", 0)
    return KernelProfile(
        scheduled=scheduled,
        spec=spec,
        tile_cycles=result.cycles,
        strip_cycles=result.cycles * tiles,
        vmad_count=vmads_per_tile * tiles,
        vmad_occupancy=result.occupancy("vmad"),
    )
