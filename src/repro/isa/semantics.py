"""Symbolic verification of microkernel schedules.

The cycle simulator says a schedule is *fast*; this module proves it is
*correct*.  An instruction stream is executed over symbolic values:

- ``vldr rA_i, ldmA`` binds ``rA_i`` to the symbol ``A[i, ptrA]``;
- ``lddec rB_j, ldmB`` binds ``rB_j`` to ``B[ptrB, j]``;
- ``addl ldmA/ldmB`` advances the corresponding k pointer;
- ``vmad rC, rA, rB, rC`` appends the product of the current operand
  symbols to the accumulator's term multiset;
- ``vldd rC_t, ldmC`` / ``vstd rC_t, ldmC`` mark the accumulator's
  initialization and final store.

:func:`verify_tile_semantics` then checks the paper's contract: after
the whole tile program, every accumulator ``rC(i, j)`` holds its
initial value plus **exactly one** product ``A[i, k] * B[k, j]`` for
every ``k in [0, pK)`` — no term missing, duplicated, or misrouted.
This catches schedule bugs (wrong reload placement, clobbered operand,
off-by-one software pipelining) that timing simulation cannot see.

The test suite runs it over the literal Algorithm 3 tile program, over
the naive kernel, over the automatic scheduler's output, and over
deliberately corrupted schedules (which must fail).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.errors import PipelineError
from repro.isa.instructions import Instr

__all__ = ["SemanticsReport", "symbolic_execute", "verify_tile_semantics"]

#: symbolic operand: ("A", row_register_index, k) or ("B", k, col_index).
Symbol = tuple


@dataclass
class SemanticsReport:
    """Outcome of a symbolic execution."""

    #: per accumulator register: multiset of (A-symbol, B-symbol) terms.
    terms: dict[str, Counter] = field(default_factory=dict)
    #: accumulators loaded from / stored to LDM C.
    initialized: set = field(default_factory=set)
    stored: set = field(default_factory=set)

    def errors_for_tile(self, p_k: int, r_m: int = 4, r_n: int = 4) -> list[str]:
        """Check the 16-accumulator x pK-terms contract; return problems."""
        problems: list[str] = []
        for i in range(r_m):
            for j in range(r_n):
                reg = f"rC{r_n * i + j}"
                expected = Counter(
                    ((("A", i, k), ("B", k, j)) for k in range(p_k))
                )
                got = self.terms.get(reg, Counter())
                if got != expected:
                    missing = expected - got
                    extra = got - expected
                    detail = []
                    if missing:
                        detail.append(f"missing {sum(missing.values())} terms "
                                      f"e.g. {next(iter(missing))}")
                    if extra:
                        detail.append(f"extra {sum(extra.values())} terms "
                                      f"e.g. {next(iter(extra))}")
                    problems.append(f"{reg}: {'; '.join(detail)}")
                if reg not in self.initialized:
                    problems.append(f"{reg}: never loaded from LDM C")
                if reg not in self.stored:
                    problems.append(f"{reg}: never stored back to LDM C")
        return problems


def symbolic_execute(program: list[Instr]) -> SemanticsReport:
    """Run a tile program over symbolic operands.

    Register-communication loads (``vldr``/``lddec``/``getr``/``getc``)
    are treated identically: producers and consumers see the same
    operand stream, so the owner-side stream suffices for semantics.
    """
    ptr = {"ldmA": 0, "ldmB": 0}
    regs: dict[str, Symbol] = {}
    report = SemanticsReport()
    a_loads_at_k: Counter = Counter()

    for ins in program:
        if ins.op in ("vldr", "getr"):
            # A operand: register name encodes the tile row (rA<i>)
            row = _register_index(ins.dst, "rA")
            regs[ins.dst] = ("A", row, ptr["ldmA"])
        elif ins.op in ("lddec", "getc"):
            col = _register_index(ins.dst, "rB")
            regs[ins.dst] = ("B", ptr["ldmB"], col)
        elif ins.op == "vldd":
            if ins.dst.startswith("rC"):
                report.initialized.add(ins.dst)
                report.terms.setdefault(ins.dst, Counter())
            elif ins.dst.startswith("rA"):
                row = _register_index(ins.dst, "rA")
                regs[ins.dst] = ("A", row, ptr["ldmA"])
                a_loads_at_k[ptr["ldmA"]] += 1
            elif ins.dst.startswith("rB"):
                col = _register_index(ins.dst, "rB")
                regs[ins.dst] = ("B", ptr["ldmB"], col)
        elif ins.op == "vstd":
            report.stored.add(ins.srcs[0])
        elif ins.op == "addl":
            if ins.dst in ptr:
                ptr[ins.dst] += 1
        elif ins.op == "vmad":
            a_sym = regs.get(ins.srcs[0])
            b_sym = regs.get(ins.srcs[1])
            if a_sym is None or b_sym is None:
                raise PipelineError(
                    f"vmad reads {ins.srcs[0]}/{ins.srcs[1]} before any load"
                )
            report.terms.setdefault(ins.dst, Counter())[(a_sym, b_sym)] += 1
        elif ins.op in ("nop", "putr", "putc"):
            pass
        else:
            raise PipelineError(f"symbolic executor cannot model {ins.op!r}")
    return report


def _register_index(name: str, prefix: str) -> int:
    if not name.startswith(prefix):
        raise PipelineError(
            f"operand register {name!r} does not follow the {prefix}<i> "
            "naming the symbolic executor needs"
        )
    try:
        return int(name[len(prefix):])
    except ValueError:
        raise PipelineError(f"cannot parse register index from {name!r}") from None


def verify_tile_semantics(program: list[Instr], p_k: int) -> list[str]:
    """Symbolically execute a tile program; return semantic errors.

    An empty list means the schedule provably computes
    ``C += A_panel @ B_panel`` over the ``pK`` k-steps.

    Note the pointer convention: the pointer advance (``addl``) applies
    to loads issued *after* it in program order, matching the hardware.
    """
    report = symbolic_execute(program)
    return report.errors_for_tile(p_k)
