"""repro — a simulated reproduction of the SW26010 DGEMM paper.

    Jiang, Yang, Ao, Yin, Ma, Sun, Liu, Lin, Zhang:
    "Towards Highly Efficient DGEMM on the Emerging SW26010 Many-core
    Processor", ICPP 2017.

The package provides:

- a functional device model of one SW26010 core group
  (:mod:`repro.arch`): 64 CPEs with 64 KB LDMs on an 8x8 mesh, register
  communication, and a DMA engine implementing the PE_MODE / ROW_MODE
  data distributions;
- the paper's DGEMM in five stages of optimization
  (:mod:`repro.core`): RAW, PE, ROW, DB, SCHED, all validated against
  numpy on the device model;
- a cycle-level model of the CPE dual pipeline (:mod:`repro.isa`)
  reproducing the Algorithm 3 instruction-scheduling results;
- performance models (:mod:`repro.perf`) that regenerate Figures 4, 6
  and 7 and the Sec III-C/IV-C analyses (:mod:`repro.experiments`).

Quick start — the :class:`~repro.core.session.Session` facade is the
documented entry point (it owns the device, keeps staging warm, and
can dispatch batches across the chip's four core groups)::

    import numpy as np
    from repro import Session, BatchItem

    with Session(n_core_groups=4) as s:
        c = s.dgemm(np.random.rand(128, 768), np.random.rand(768, 256))
        r = s.batch([BatchItem(a, b) for a, b in pairs])
        print(s.stats())

The functional entry points (``dgemm``, ``dgemm_batch``,
``dgemm_multi_cg``) remain available for one-shot calls and for code
that manages devices explicitly.

The typed request surface (:mod:`repro.api`) is the structured
alternative: build a :class:`~repro.api.GemmRequest` /
:class:`~repro.api.ConvRequest` / :class:`~repro.api.LuRequest` and
``Session.submit`` it for a :class:`~repro.api.RequestResult` with
per-request traffic and typed errors — or serve the same requests
asynchronously with coalescing, admission control, an operand cache
and SLO reporting through :mod:`repro.serve`::

    from repro import GemmRequest
    from repro.serve import ReproServer, ServeConfig

    async with ReproServer(config=ServeConfig()) as server:
        result = await server.submit(GemmRequest(a, b))

Telemetry (:mod:`repro.obs`) is opt-in: pass ``tracer=SpanTracer()``
to a session (or to ``dgemm``/``dgemm_batch`` directly) and every
phase — staging, per-panel multiplies, stores, dispatch — records its
wall time and counter deltas, exportable as a Perfetto-loadable Chrome
trace::

    from repro import Session, SpanTracer, write_chrome_trace

    tracer = SpanTracer()
    with Session(n_core_groups=4, tracer=tracer) as s:
        s.batch(items)
    write_chrome_trace(tracer.spans, "trace.json")
"""

from repro._version import __version__
from repro.api import (
    ConvRequest,
    GemmRequest,
    LuRequest,
    RequestError,
    RequestResult,
    SubmitOptions,
)
from repro.arch import CoreGroup, SW26010Spec, DEFAULT_SPEC
from repro.core import (
    BatchItem,
    BatchResult,
    BlockingParams,
    Session,
    SessionStats,
    dgemm,
    dgemm_batch,
    reference_dgemm,
)
from repro.multi import (
    CGScheduler,
    ScheduleResult,
    SW26010Processor,
    dgemm_multi_cg,
)
from repro.obs import (
    MetricsRegistry,
    SpanTracer,
    chrome_trace,
    phase_report,
    write_chrome_trace,
)
from repro.perf import Estimator, TimelineSimulator
from repro.resil import (
    FaultInjector,
    FaultReport,
    FaultSpec,
    RetryPolicy,
)

__all__ = [
    "__version__",
    "CoreGroup",
    "SW26010Spec",
    "DEFAULT_SPEC",
    "BlockingParams",
    "Session",
    "SessionStats",
    "BatchItem",
    "BatchResult",
    "GemmRequest",
    "LuRequest",
    "ConvRequest",
    "SubmitOptions",
    "RequestResult",
    "RequestError",
    "dgemm",
    "dgemm_batch",
    "reference_dgemm",
    "CGScheduler",
    "ScheduleResult",
    "SW26010Processor",
    "dgemm_multi_cg",
    "Estimator",
    "TimelineSimulator",
    "MetricsRegistry",
    "SpanTracer",
    "chrome_trace",
    "phase_report",
    "write_chrome_trace",
    "FaultInjector",
    "FaultReport",
    "FaultSpec",
    "RetryPolicy",
]
