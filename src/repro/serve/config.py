"""Serving-tier configuration: one frozen knob set for the server.

Every latency/throughput trade the server makes is a field here —
the coalescing window, the batch-size cap, the admission bound, the
operand-cache capacity — so a deployment is one dataclass literal and
tests can pin exact behaviour (``window_seconds=0`` disables
coalescing entirely; ``max_pending=1`` serializes admission).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api import DEFAULT_SUBMIT_OPTIONS, SubmitOptions
from repro.errors import ConfigError

__all__ = ["ServeConfig"]


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of one :class:`~repro.serve.server.ReproServer`.

    The defaults serve the simulated chip sensibly: a short coalescing
    window (long enough that concurrent same-bin submitters land in
    one dispatch, short enough to stay invisible at human timescales),
    batches capped at twice the chip's CG count, and backpressure at
    64 in-flight requests.
    """

    #: seconds a shape bin waits for company before dispatching; ``0``
    #: dispatches every request alone (coalescing off).
    window_seconds: float = 0.02
    #: a bin dispatches early once it holds this many requests.
    max_batch_size: int = 8
    #: admission bound: requests in flight (queued or executing)
    #: beyond which new submissions are rejected with a retryable
    #: ``RejectedError``.
    max_pending: int = 64
    #: run dispatched batches on per-CG worker threads.
    parallel: bool = True
    #: operand-cache capacity in entries; ``0`` disables the cache.
    cache_entries: int = 128
    #: server-wide default execution options; a request's own
    #: ``options=`` wins.
    options: SubmitOptions = field(default=DEFAULT_SUBMIT_OPTIONS)

    def __post_init__(self) -> None:
        if self.window_seconds < 0:
            raise ConfigError(
                f"window_seconds must be >= 0, got {self.window_seconds}"
            )
        if self.max_batch_size < 1:
            raise ConfigError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.max_pending < 1:
            raise ConfigError(
                f"max_pending must be >= 1, got {self.max_pending}"
            )
        if self.cache_entries < 0:
            raise ConfigError(
                f"cache_entries must be >= 0, got {self.cache_entries}"
            )
