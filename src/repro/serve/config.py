"""Serving-tier configuration: one frozen knob set for the server.

Every latency/throughput trade the server makes is a field here —
the coalescing window, the batch-size cap, the admission bound, the
operand-cache capacity — so a deployment is one dataclass literal and
tests can pin exact behaviour (``window_seconds=0`` disables
coalescing entirely; ``max_pending=1`` serializes admission).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api import DEFAULT_SUBMIT_OPTIONS, SubmitOptions
from repro.errors import ConfigError

__all__ = ["ServeConfig"]


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of one :class:`~repro.serve.server.ReproServer`.

    The defaults serve the simulated chip sensibly: a short coalescing
    window (long enough that concurrent same-bin submitters land in
    one dispatch, short enough to stay invisible at human timescales),
    batches capped at twice the chip's CG count, and backpressure at
    64 in-flight requests.
    """

    #: seconds a shape bin waits for company before dispatching; ``0``
    #: dispatches every request alone (coalescing off).
    window_seconds: float = 0.02
    #: a bin dispatches early once it holds this many requests.
    max_batch_size: int = 8
    #: admission bound: requests in flight (queued or executing)
    #: beyond which new submissions are rejected with a retryable
    #: ``RejectedError``.
    max_pending: int = 64
    #: run dispatched batches on per-CG worker threads.
    parallel: bool = True
    #: operand-cache capacity in entries; ``0`` disables the cache.
    cache_entries: int = 128
    #: server-wide default execution options; a request's own
    #: ``options=`` wins.
    options: SubmitOptions = field(default=DEFAULT_SUBMIT_OPTIONS)
    #: period of the attached :class:`~repro.obs.series.MetricsSampler`
    #: in seconds; ``None`` runs without continuous sampling (the
    #: exposition endpoint and one-shot snapshots still work).
    sampler_period_seconds: float | None = 0.01
    #: ring-buffer capacity per sampled counter series.
    sampler_capacity: int = 512
    #: TCP port for the OpenMetrics exposition endpoint (``0`` binds an
    #: ephemeral port); ``None`` disables the endpoint.
    metrics_port: int | None = None
    #: bind host for the exposition endpoint.
    metrics_host: str = "127.0.0.1"
    #: arm the default SLO burn-rate/quarantine/eviction alert rules.
    alerts: bool = True
    #: retention level of the structured event log.
    event_level: str = "info"
    #: per-bin sample ring for exact SLO percentiles (0 = histogram
    #: estimates only).
    slo_exact_reservoir: int = 1024

    def __post_init__(self) -> None:
        if self.window_seconds < 0:
            raise ConfigError(
                f"window_seconds must be >= 0, got {self.window_seconds}"
            )
        if self.max_batch_size < 1:
            raise ConfigError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.max_pending < 1:
            raise ConfigError(
                f"max_pending must be >= 1, got {self.max_pending}"
            )
        if self.cache_entries < 0:
            raise ConfigError(
                f"cache_entries must be >= 0, got {self.cache_entries}"
            )
        if (
            self.sampler_period_seconds is not None
            and self.sampler_period_seconds <= 0
        ):
            raise ConfigError(
                "sampler_period_seconds must be > 0 or None, got "
                f"{self.sampler_period_seconds}"
            )
        if self.sampler_capacity < 2:
            raise ConfigError(
                f"sampler_capacity must be >= 2, got {self.sampler_capacity}"
            )
        if self.metrics_port is not None and not (
            0 <= self.metrics_port <= 65535
        ):
            raise ConfigError(
                f"metrics_port must be in [0, 65535], got {self.metrics_port}"
            )
        if self.slo_exact_reservoir < 0:
            raise ConfigError(
                "slo_exact_reservoir must be >= 0, got "
                f"{self.slo_exact_reservoir}"
            )
