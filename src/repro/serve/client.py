"""A deterministic load generator: the serving tier's test harness.

Produces a mixed, seeded request stream shaped like real traffic:
GEMMs drawn from a small set of shape templates (so same-bin requests
exist to coalesce), a fraction of convolutions and LU factorizations,
and a fraction of *exact repeats* of earlier requests (so the operand
cache has something to hit).  Determinism matters — the CLI smoke test
and the integration tests assert exact zero-drop counts, and a seeded
generator makes those assertions reproducible.
"""

from __future__ import annotations

import asyncio

import numpy as np

from repro.api import ConvRequest, GemmRequest, LuRequest, Request, RequestResult
from repro.core.params import BlockingParams
from repro.serve.server import ReproServer

__all__ = ["LoadGenerator"]


class LoadGenerator:
    """Seeded mixed-workload generator over a server's request surface.

    ``params`` sizes the GEMM templates to the session's blocking
    factors so most requests pad cleanly into a few shared bins;
    ``repeat_fraction`` of requests re-submit an earlier request
    verbatim (identical operands, identical options) to exercise the
    operand cache.
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        params: BlockingParams | None = None,
        conv_fraction: float = 0.15,
        lu_fraction: float = 0.1,
        repeat_fraction: float = 0.25,
    ) -> None:
        self.params = params or BlockingParams.small(double_buffered=True)
        self.conv_fraction = float(conv_fraction)
        self.lu_fraction = float(lu_fraction)
        self.repeat_fraction = float(repeat_fraction)
        self._rng = np.random.default_rng(seed)
        self._history: list[Request] = []

    def _gemm_templates(self) -> list[tuple[int, int, int]]:
        bm, bn, bk = self.params.b_m, self.params.b_n, self.params.b_k
        return [
            (2 * bm, bn, bk),
            (bm, 2 * bn, bk),
            (bm, bn, 2 * bk),
            (2 * bm, 2 * bn, bk),
        ]

    def _make_gemm(self) -> GemmRequest:
        templates = self._gemm_templates()
        m, n, k = templates[int(self._rng.integers(len(templates)))]
        a = self._rng.standard_normal((m, k))
        b = self._rng.standard_normal((k, n))
        if self._rng.random() < 0.5:
            c = self._rng.standard_normal((m, n))
            return GemmRequest(a=a, b=b, c=c, alpha=1.0, beta=1.0)
        return GemmRequest(a=a, b=b)

    def _make_conv(self) -> ConvRequest:
        images = self._rng.standard_normal((2, 2, 8, 8))
        kernels = self._rng.standard_normal((4, 2, 3, 3))
        return ConvRequest(images=images, kernels=kernels)

    def _make_lu(self) -> LuRequest:
        n = int(self.params.b_m) * 2
        a = self._rng.standard_normal((n, n)) + n * np.eye(n)
        return LuRequest(a=a, panel=max(8, n // 4))

    def generate(self, count: int) -> list[Request]:
        """``count`` requests: mixed kinds, some exact repeats."""
        requests: list[Request] = []
        for _ in range(count):
            if self._history and self._rng.random() < self.repeat_fraction:
                pick = int(self._rng.integers(len(self._history)))
                requests.append(self._history[pick])
                continue
            draw = self._rng.random()
            if draw < self.lu_fraction:
                request: Request = self._make_lu()
            elif draw < self.lu_fraction + self.conv_fraction:
                request = self._make_conv()
            else:
                request = self._make_gemm()
            self._history.append(request)
            requests.append(request)
        return requests

    async def run(
        self,
        server: ReproServer,
        requests: list[Request],
        *,
        concurrency: int = 16,
    ) -> list[RequestResult]:
        """Submit every request concurrently; results in request order.

        ``concurrency`` bounds simultaneous submissions (a semaphore),
        modelling a client pool of that size.  Every request gets a
        response — rejections come back as structured results, so the
        returned list always has ``len(requests)`` entries.
        """
        semaphore = asyncio.Semaphore(max(1, concurrency))

        async def one(request: Request) -> RequestResult:
            async with semaphore:
                return await server.submit(request)

        return list(await asyncio.gather(*(one(r) for r in requests)))
