"""Content-addressed LRU cache over completed request values.

The serving tier sees repeated operands constantly — the same weight
matrix multiplied against a stream of activations, the same trailing
shape re-factored — and the device model makes recomputation
expensive on purpose.  The cache keys on
:meth:`~repro.api.GemmRequest.content_hash` (operand *contents* plus
every compute attribute) together with the effective
:class:`~repro.api.SubmitOptions`, because the same operands on a
different engine are a different computation under the bit-exactness
contract.

Values are stored and returned as copies: a served response is the
caller's to mutate, and a cached entry must stay pristine.  A hit
therefore reports ``cache_hit=True`` with *zero* traffic — nothing
was staged, nothing moved — which keeps the per-request traffic sum
reconciling bit-exactly with ``Session.stats()``.
"""

from __future__ import annotations

import copy
import threading
from collections import OrderedDict
from typing import Any

import numpy as np

from repro.api import SubmitOptions

__all__ = ["OperandCache"]

#: cache key: (content hash, effective submit options).
CacheKey = tuple[str, SubmitOptions]


def _copy_value(value: Any) -> Any:
    if isinstance(value, np.ndarray):
        return value.copy()
    return copy.deepcopy(value)


class OperandCache:
    """A bounded LRU of ``(content_hash, options) -> value``.

    ``capacity == 0`` disables storage entirely (every probe misses).
    Thread-safe under one lock; the server only touches it from the
    event-loop thread, but the lock keeps direct (sync) use safe too.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = int(capacity)
        self._entries: OrderedDict[CacheKey, Any] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: CacheKey) -> tuple[bool, Any]:
        """Probe the cache; returns ``(hit, copied_value_or_None)``."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return True, _copy_value(self._entries[key])
            self.misses += 1
            return False, None

    def put(self, key: CacheKey, value: Any) -> None:
        """Insert a value (copied in), evicting the LRU entry if full."""
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[key] = _copy_value(value)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, int]:
        """Flat numeric counters (a ready-made metrics source).

        Surfaced in the ``serve.cache.*`` namespace of
        :meth:`ReproServer.metrics_registry
        <repro.serve.server.ReproServer.metrics_registry>`, so cache
        effectiveness shows up in sampler snapshots, the OpenMetrics
        exposition, and the ``top`` dashboard — not just server-
        internal state.
        """
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OperandCache({len(self)}/{self.capacity} entries, "
            f"{self.hits} hits, {self.misses} misses)"
        )
