"""The async serving tier over the simulated chip (see ``server.py``).

Public surface::

    from repro.serve import ReproServer, ServeConfig, LoadGenerator

    async with ReproServer(config=ServeConfig(window_seconds=0.02)) as s:
        result = await s.submit(GemmRequest(a, b))

The tier consumes only the typed request/response dataclasses in
:mod:`repro.api`; it adds coalescing, admission control, an operand
cache, and per-bin SLO reporting on top of the synchronous
:class:`~repro.core.session.Session`.
"""

from repro.serve.cache import OperandCache
from repro.serve.client import LoadGenerator
from repro.serve.config import ServeConfig
from repro.serve.server import ReproServer
from repro.serve.slo import BinReport, SLOTracker

__all__ = [
    "BinReport",
    "LoadGenerator",
    "OperandCache",
    "ReproServer",
    "SLOTracker",
    "ServeConfig",
]
