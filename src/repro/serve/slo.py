"""Per-shape-bin latency percentiles: the server's SLO ledger.

Every completed request records its queue/service/total seconds under
its shape-bin label (``"gemm:64x96x32"``); :meth:`SLOTracker.report`
renders nearest-rank p50/p95/p99 per bin.  Nearest-rank is the right
estimator here: it always returns an *observed* sample (no
interpolation inventing latencies nobody saw), and it is exact at the
small per-bin counts a test run produces.

The tracker doubles as a :class:`~repro.obs.registry.MetricsRegistry`
source: :meth:`snapshot` is a flat numeric dict, so the serving tier's
SLO state lands in the same namespaced counter space as the device's
DMA and regcomm counters.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

__all__ = ["BinReport", "SLOTracker", "percentile"]


def percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile of ``samples`` (q in [0, 100])."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, -(-len(ordered) * q // 100))  # ceil without floats
    return ordered[int(rank) - 1]


@dataclass(frozen=True)
class BinReport:
    """Latency summary of one shape bin."""

    bin: str
    count: int
    errors: int
    cache_hits: int
    p50_seconds: float
    p95_seconds: float
    p99_seconds: float
    mean_queue_seconds: float
    mean_service_seconds: float


class SLOTracker:
    """Accumulates per-bin latency samples and renders percentiles."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._samples: dict[str, list[float]] = {}
        self._queue: dict[str, float] = {}
        self._service: dict[str, float] = {}
        self._errors: dict[str, int] = {}
        self._cache_hits: dict[str, int] = {}

    def record(
        self,
        bin_label: str,
        *,
        total_seconds: float,
        queue_seconds: float = 0.0,
        service_seconds: float = 0.0,
        error: bool = False,
        cache_hit: bool = False,
    ) -> None:
        """Record one completed request under its bin label."""
        label = bin_label or "unbinned"
        with self._lock:
            self._samples.setdefault(label, []).append(float(total_seconds))
            self._queue[label] = self._queue.get(label, 0.0) + queue_seconds
            self._service[label] = (
                self._service.get(label, 0.0) + service_seconds
            )
            if error:
                self._errors[label] = self._errors.get(label, 0) + 1
            if cache_hit:
                self._cache_hits[label] = self._cache_hits.get(label, 0) + 1

    def report(self) -> tuple[BinReport, ...]:
        """One :class:`BinReport` per bin, sorted by label."""
        with self._lock:
            reports = []
            for label in sorted(self._samples):
                samples = self._samples[label]
                count = len(samples)
                reports.append(
                    BinReport(
                        bin=label,
                        count=count,
                        errors=self._errors.get(label, 0),
                        cache_hits=self._cache_hits.get(label, 0),
                        p50_seconds=percentile(samples, 50),
                        p95_seconds=percentile(samples, 95),
                        p99_seconds=percentile(samples, 99),
                        mean_queue_seconds=self._queue.get(label, 0.0) / count,
                        mean_service_seconds=(
                            self._service.get(label, 0.0) / count
                        ),
                    )
                )
            return tuple(reports)

    def snapshot(self) -> dict[str, float]:
        """Flat numeric counters, one namespace per bin label.

        Dots inside a bin label would split it across namespace
        levels, so the label is used verbatim (labels are
        ``kind:MxNxK`` and contain no dots).
        """
        out: dict[str, float] = {}
        for report in self.report():
            out[f"{report.bin}.count"] = float(report.count)
            out[f"{report.bin}.errors"] = float(report.errors)
            out[f"{report.bin}.cache_hits"] = float(report.cache_hits)
            out[f"{report.bin}.p50_seconds"] = report.p50_seconds
            out[f"{report.bin}.p95_seconds"] = report.p95_seconds
            out[f"{report.bin}.p99_seconds"] = report.p99_seconds
        return out

    def render(self) -> str:
        """The human-readable SLO table the CLI prints."""
        reports = self.report()
        if not reports:
            return "(no completed requests)"
        width = max(len(r.bin) for r in reports)
        lines = [
            f"{'bin':<{width}}  {'count':>5}  {'err':>3}  {'hit':>3}  "
            f"{'p50 ms':>8}  {'p95 ms':>8}  {'p99 ms':>8}"
        ]
        for r in reports:
            lines.append(
                f"{r.bin:<{width}}  {r.count:>5}  {r.errors:>3}  "
                f"{r.cache_hits:>3}  {r.p50_seconds * 1e3:>8.3f}  "
                f"{r.p95_seconds * 1e3:>8.3f}  {r.p99_seconds * 1e3:>8.3f}"
            )
        return "\n".join(lines)
