"""Per-shape-bin latency SLOs on bounded histograms.

Every completed request records its queue/service/total seconds — and,
when known, its achieved Gflop/s and DMA bytes — under its shape-bin
label (``"gemm:64x96x32"``).  Storage is *bounded*: each bin keeps
log-bucketed :class:`~repro.obs.histogram.LatencyHistogram` instances
(fixed bucket count forever) plus, optionally, a small ring of the
most recent total-latency samples for exact percentiles.  The previous
implementation retained every sample in an unbounded per-bin list and
re-sorted per percentile call; an always-on server cannot afford
either.

Percentile policy: while a bin has seen no more samples than the
reservoir holds, :meth:`SLOTracker.report` sorts the reservoir *once*
and reads exact nearest-rank p50/p95/p99 — observed values, as before.
Past that, percentiles come from the histogram (at most one bucket
width of relative error, ~19% at the latency scale) and the report is
flagged ``exact=False``.  ``exact_reservoir=0`` disables the reservoir
entirely for histogram-only operation.

The tracker doubles as a :class:`~repro.obs.registry.MetricsRegistry`
source (:meth:`snapshot`) and exports its distributions as
OpenMetrics histogram families (:meth:`histogram_families`) for
:mod:`repro.obs.promexp`.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field

from repro.obs.histogram import LatencyHistogram
from repro.obs.promexp import HistogramFamily

__all__ = ["BinReport", "SLOTracker", "percentile"]


def percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile of ``samples`` (q in [0, 100])."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, -(-len(ordered) * q // 100))  # ceil without floats
    return ordered[int(rank) - 1]


def _ranked(ordered: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample list."""
    rank = max(1, -(-len(ordered) * q // 100))
    return ordered[int(rank) - 1]


@dataclass(frozen=True)
class BinReport:
    """Latency summary of one shape bin."""

    bin: str
    count: int
    errors: int
    cache_hits: int
    p50_seconds: float
    p95_seconds: float
    p99_seconds: float
    mean_queue_seconds: float
    mean_service_seconds: float
    #: True when percentiles are exact observed samples (reservoir
    #: covered every record); False when histogram-estimated.
    exact: bool = True
    #: median achieved Gflop/s (0 when never recorded for this bin).
    p50_gflops: float = 0.0
    #: mean DMA bytes per request (0 when never recorded).
    mean_dma_bytes: float = 0.0


@dataclass
class _Bin:
    """One bin's bounded accounting."""

    total: LatencyHistogram = field(
        default_factory=LatencyHistogram.for_seconds
    )
    queue: LatencyHistogram = field(
        default_factory=LatencyHistogram.for_seconds
    )
    service: LatencyHistogram = field(
        default_factory=LatencyHistogram.for_seconds
    )
    gflops: LatencyHistogram = field(
        default_factory=LatencyHistogram.for_gflops
    )
    dma_bytes: LatencyHistogram = field(
        default_factory=LatencyHistogram.for_bytes
    )
    reservoir: deque[float] | None = None
    errors: int = 0
    cache_hits: int = 0


class SLOTracker:
    """Accumulates per-bin latency distributions and renders reports.

    ``exact_reservoir`` bounds the per-bin sample ring kept for exact
    percentiles (default 1024; 0 keeps no samples at all).  Memory per
    bin is O(buckets + reservoir) regardless of how long the server
    runs.
    """

    def __init__(self, *, exact_reservoir: int = 1024) -> None:
        self._lock = threading.Lock()
        self._bins: dict[str, _Bin] = {}
        self._reservoir_size = max(0, int(exact_reservoir))

    def _bin(self, label: str) -> _Bin:
        entry = self._bins.get(label)
        if entry is None:
            entry = self._bins[label] = _Bin(
                reservoir=(
                    deque(maxlen=self._reservoir_size)
                    if self._reservoir_size
                    else None
                )
            )
        return entry

    def record(
        self,
        bin_label: str,
        *,
        total_seconds: float,
        queue_seconds: float = 0.0,
        service_seconds: float = 0.0,
        error: bool = False,
        cache_hit: bool = False,
        gflops: float | None = None,
        dma_bytes: float | None = None,
    ) -> None:
        """Record one completed request under its bin label."""
        label = bin_label or "unbinned"
        with self._lock:
            entry = self._bin(label)
            entry.total.record(float(total_seconds))
            entry.queue.record(float(queue_seconds))
            entry.service.record(float(service_seconds))
            if entry.reservoir is not None:
                entry.reservoir.append(float(total_seconds))
            if gflops is not None:
                entry.gflops.record(float(gflops))
            if dma_bytes is not None:
                entry.dma_bytes.record(float(dma_bytes))
            if error:
                entry.errors += 1
            if cache_hit:
                entry.cache_hits += 1

    def report(self) -> tuple[BinReport, ...]:
        """One :class:`BinReport` per bin, sorted by label.

        Sorts each bin's reservoir at most once per call (not per
        percentile, not per record).
        """
        with self._lock:
            reports = []
            for label in sorted(self._bins):
                entry = self._bins[label]
                count = entry.total.count
                exact = (
                    entry.reservoir is not None
                    and count <= self._reservoir_size
                )
                if exact and entry.reservoir:
                    ordered = sorted(entry.reservoir)
                    p50 = _ranked(ordered, 50)
                    p95 = _ranked(ordered, 95)
                    p99 = _ranked(ordered, 99)
                else:
                    p50 = entry.total.percentile(50)
                    p95 = entry.total.percentile(95)
                    p99 = entry.total.percentile(99)
                reports.append(
                    BinReport(
                        bin=label,
                        count=count,
                        errors=entry.errors,
                        cache_hits=entry.cache_hits,
                        p50_seconds=p50,
                        p95_seconds=p95,
                        p99_seconds=p99,
                        mean_queue_seconds=entry.queue.mean,
                        mean_service_seconds=entry.service.mean,
                        exact=exact,
                        p50_gflops=entry.gflops.percentile(50),
                        mean_dma_bytes=entry.dma_bytes.mean,
                    )
                )
            return tuple(reports)

    def snapshot(self) -> dict[str, float]:
        """Flat numeric counters, one namespace per bin label.

        Dots inside a bin label would split it across namespace
        levels, so the label is used verbatim (labels are
        ``kind:MxNxK`` and contain no dots).
        """
        out: dict[str, float] = {}
        for report in self.report():
            out[f"{report.bin}.count"] = float(report.count)
            out[f"{report.bin}.errors"] = float(report.errors)
            out[f"{report.bin}.cache_hits"] = float(report.cache_hits)
            out[f"{report.bin}.p50_seconds"] = report.p50_seconds
            out[f"{report.bin}.p95_seconds"] = report.p95_seconds
            out[f"{report.bin}.p99_seconds"] = report.p99_seconds
            out[f"{report.bin}.p50_gflops"] = report.p50_gflops
            out[f"{report.bin}.mean_dma_bytes"] = report.mean_dma_bytes
        return out

    def histogram_families(self) -> tuple[HistogramFamily, ...]:
        """The per-bin distributions as OpenMetrics histogram families.

        Families: ``serve.latency.total_seconds`` /
        ``.queue_seconds`` / ``.service_seconds``, ``serve.gflops``
        and ``serve.dma_bytes``, each labelled by ``bin``.  Bins whose
        optional distributions never recorded are omitted from those
        families.
        """
        with self._lock:
            labels = sorted(self._bins)

            def family(
                name: str, pick: str, skip_empty: bool = False
            ) -> HistogramFamily:
                series = []
                for label in labels:
                    hist: LatencyHistogram = getattr(self._bins[label], pick)
                    if skip_empty and hist.count == 0:
                        continue
                    series.append((label, hist))
                return HistogramFamily(
                    name=name, label="bin", series=tuple(series)
                )

            return (
                family("serve.latency.total_seconds", "total"),
                family("serve.latency.queue_seconds", "queue"),
                family("serve.latency.service_seconds", "service"),
                family("serve.gflops", "gflops", skip_empty=True),
                family("serve.dma_bytes", "dma_bytes", skip_empty=True),
            )

    def render(self) -> str:
        """The human-readable SLO table the CLI prints."""
        reports = self.report()
        if not reports:
            return "(no completed requests)"
        width = max(len(r.bin) for r in reports)
        lines = [
            f"{'bin':<{width}}  {'count':>5}  {'err':>3}  {'hit':>3}  "
            f"{'p50 ms':>8}  {'p95 ms':>8}  {'p99 ms':>8}"
        ]
        for r in reports:
            marker = "" if r.exact else "~"
            lines.append(
                f"{r.bin:<{width}}  {r.count:>5}  {r.errors:>3}  "
                f"{r.cache_hits:>3}  {marker}{r.p50_seconds * 1e3:>8.3f}  "
                f"{r.p95_seconds * 1e3:>8.3f}  {r.p99_seconds * 1e3:>8.3f}"
            )
        return "\n".join(lines)
