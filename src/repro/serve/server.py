"""The asyncio serving tier: admit, bin, coalesce, dispatch, respond.

:class:`ReproServer` fronts one :class:`~repro.core.session.Session`
with an async request surface.  The pipeline per request:

1. **admit** — a closed server or a full in-flight window turns the
   request away with a *structured* rejection (``RequestError`` with
   ``retryable=True`` for backpressure), never an exception;
2. **cache** — the operand cache is probed by content hash; a hit
   responds immediately with a copied value and zero traffic;
3. **bin** — the request joins the open batch for its
   ``(shape_bin, options)`` key; the first arrival arms the coalescing
   window timer, a full bin dispatches early;
4. **dispatch** — filled bins flow through one FIFO to a dispatcher
   task that executes each on a single-worker thread pool (the
   scheduler below is one physical chip — a second in-flight batch
   would fight it for the same core groups), as
   ``Session.batch(parallel=True)``; LU requests ride the same FIFO as
   singleton groups through ``Session.submit``;
5. **respond** — every rider of the batch gets its own
   :class:`~repro.api.RequestResult` with per-request traffic, fault
   reports, and queue/service/total timing; successes are written back
   to the cache and the SLO ledger.

Telemetry honours the tracer's reconciliation contract: the executor
thread opens one ``serve.batch`` span per dispatch and, still inside
it, emits one ``serve.request`` span per rider whose counter deltas
are exactly that request's attributed traffic — so
``tracer.counter_totals("serve.request")`` sums bit-exactly to
``Session.stats().traffic`` when all work flows through the server.

Threading discipline: bins, timers, the cache, the SLO ledger and all
counters are touched only on the event-loop thread; the executor
thread touches only the session and the tracer; the metrics sampler
thread only *reads* counters (plain int/float loads under the GIL).

The continuous telemetry pipeline rides on top: :meth:`start` arms a
:class:`~repro.obs.series.MetricsSampler` over
:meth:`metrics_registry` (every counter becomes a live time series),
attaches the default :class:`~repro.obs.alerts.AlertEngine` rules to
it, and — when ``config.metrics_port`` is set — serves the
:meth:`openmetrics` exposition over a minimal asyncio HTTP endpoint
(``GET /metrics``, plus ``/healthz``).  Lifecycle transitions and
alert edges land in :attr:`events`, a structured
:class:`~repro.obs.events.EventLog`.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from typing import Any, Callable

from repro.api import (
    ConvRequest,
    GemmRequest,
    LuRequest,
    Request,
    RequestError,
    RequestResult,
    SubmitOptions,
    as_request,
    format_bin,
)
from repro.core.context import ContextStats
from repro.core.session import Session
from repro.errors import ConfigError, UnsupportedShapeError
from repro.obs.alerts import AlertEngine, default_serve_rules
from repro.obs.events import EventLog
from repro.obs.promexp import render_openmetrics
from repro.obs.registry import MetricsRegistry, flatten
from repro.obs.series import MetricsSampler
from repro.obs.tracer import SpanTracer
from repro.serve.cache import OperandCache
from repro.serve.config import ServeConfig
from repro.serve.slo import BinReport, SLOTracker

__all__ = ["ReproServer"]

#: a coalescing key: the request's shape bin plus its effective options.
BinKey = tuple[tuple[Any, ...], SubmitOptions]


class _Pending:
    """One admitted request riding toward a dispatched batch."""

    __slots__ = (
        "request",
        "options",
        "bin_label",
        "cache_key",
        "future",
        "admitted_at",
    )

    def __init__(
        self,
        request: Request,
        options: SubmitOptions,
        bin_label: str,
        cache_key: tuple[str, SubmitOptions] | None,
        future: "asyncio.Future[RequestResult]",
        admitted_at: float,
    ) -> None:
        self.request = request
        self.options = options
        self.bin_label = bin_label
        self.cache_key = cache_key
        self.future = future
        self.admitted_at = admitted_at


def _delta_meter(traffic: ContextStats) -> Callable[[], dict]:
    """A span meter whose before/after delta equals ``traffic``.

    The tracer samples a meter at span entry and exit and stores the
    difference; returning ``{}`` first and the flattened traffic
    second makes the span's counters exactly the request's attributed
    traffic (union-of-keys semantics treat the missing first sample
    as zero).
    """
    state = {"entered": False}

    def meter() -> dict:
        if not state["entered"]:
            state["entered"] = True
            return {}
        return flatten("ctx", traffic.as_dict())

    return meter


def _request_flops(request: Request, shape: tuple[int, int, int]) -> float:
    """Nominal flop count of one request from its validated shape.

    GEMM and lowered conv do ``2*m*n*k``; blocked LU of an ``n x n``
    matrix does the classic ``2/3 * n^3`` (``shape`` is ``(n, n,
    panel)`` there, so the panel width is ignored).
    """
    if isinstance(request, LuRequest):
        n = float(shape[0])
        return (2.0 / 3.0) * n * n * n
    m, n, k = shape
    return 2.0 * float(m) * float(n) * float(k)


class ReproServer:
    """Async front end over one session; see the module docstring.

    Use as an async context manager::

        async with ReproServer(config=ServeConfig()) as server:
            result = await server.submit(GemmRequest(a, b))

    Pass ``session=`` to serve an existing session (the caller keeps
    ownership and closes it); otherwise the server builds its own
    traced session and closes it on exit.
    """

    def __init__(
        self,
        session: Session | None = None,
        config: ServeConfig | None = None,
        **session_kwargs: Any,
    ) -> None:
        if session is not None and session_kwargs:
            raise ConfigError(
                "pass session= or Session keyword arguments, not both"
            )
        self.config = config or ServeConfig()
        self._owns_session = session is None
        if session is None:
            session_kwargs.setdefault("tracer", SpanTracer())
            session = Session(**session_kwargs)
        self.session = session
        self.cache = OperandCache(self.config.cache_entries)
        self.slo = SLOTracker(exact_reservoir=self.config.slo_exact_reservoir)
        self.events = EventLog(level=self.config.event_level)
        self.sampler: MetricsSampler | None = None
        self.alerts: AlertEngine | None = None
        self.metrics_address: tuple[str, int] | None = None
        self._metrics_server: asyncio.AbstractServer | None = None
        self._registry: MetricsRegistry | None = None
        self._bins: dict[BinKey, list[_Pending]] = {}
        self._timers: dict[BinKey, asyncio.TimerHandle] = {}
        self._queue: "asyncio.Queue[list[_Pending] | None]" = asyncio.Queue()
        self._dispatcher: asyncio.Task[None] | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._started = False
        self._closed = False
        self._inflight = 0
        self._admitted = 0
        self._rejected = 0
        self._completed = 0
        self._failed = 0
        self._cache_hits = 0
        self._batches = 0
        self._batched_requests = 0

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> "ReproServer":
        """Arm the dispatcher; idempotent until :meth:`stop`."""
        if self._closed:
            raise ConfigError("this ReproServer is closed")
        if self._started:
            return self
        self._loop = asyncio.get_running_loop()
        # one worker on purpose: the scheduler multiplexes one chip's
        # core groups, so batches must execute one at a time.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve"
        )
        self._dispatcher = asyncio.create_task(
            self._dispatch_loop(), name="repro-serve-dispatch"
        )
        self._started = True
        registry = self.metrics_registry()
        if self.config.sampler_period_seconds is not None:
            self.sampler = MetricsSampler(
                registry,
                period_seconds=self.config.sampler_period_seconds,
                capacity=self.config.sampler_capacity,
            )
            if self.config.alerts:
                self.alerts = AlertEngine(
                    default_serve_rules(), events=self.events
                ).attach(self.sampler)
            self.sampler.start()
        if self.config.metrics_port is not None:
            self._metrics_server = await asyncio.start_server(
                self._serve_metrics,
                host=self.config.metrics_host,
                port=self.config.metrics_port,
            )
            sock = self._metrics_server.sockets[0]
            host, port = sock.getsockname()[:2]
            self.metrics_address = (str(host), int(port))
        self.events.info(
            "server.started",
            sampler_period_seconds=self.config.sampler_period_seconds,
            metrics_address=self.metrics_address,
            alerts=self.alerts is not None,
        )
        return self

    async def stop(self) -> None:
        """Drain every admitted request, then tear down.

        New submissions are refused the moment ``stop`` begins, but
        everything already admitted is dispatched and answered — a
        clean shutdown drops zero responses.
        """
        if self._closed:
            return
        self._closed = True
        if not self._started:
            if self._owns_session:
                self.session.close()
            return
        for key in list(self._bins):
            self._flush_bin(key)
        await self._queue.put(None)
        if self._dispatcher is not None:
            await self._dispatcher
            self._dispatcher = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._metrics_server is not None:
            self._metrics_server.close()
            await self._metrics_server.wait_closed()
            self._metrics_server = None
        if self.sampler is not None:
            # stop() takes one final sample, so the last window covers
            # every request answered above.
            self.sampler.stop()
        self.events.info(
            "server.stopped",
            admitted=self._admitted,
            completed=self._completed,
            failed=self._failed,
        )
        if self._owns_session:
            self.session.close()

    async def __aenter__(self) -> "ReproServer":
        return await self.start()

    async def __aexit__(self, *exc_info: Any) -> bool:
        await self.stop()
        return False

    # -- the request path ----------------------------------------------

    async def submit(
        self,
        request: Request,
        *,
        options: SubmitOptions | None = None,
    ) -> RequestResult:
        """Admit one request and await its structured response.

        Never raises for request-level failure — malformed shapes,
        backpressure, retry exhaustion and shutdown all come back as a
        :class:`~repro.api.RequestResult` carrying a typed
        :class:`~repro.api.RequestError`.  (Submitting on a server
        that was never started still raises: that is caller misuse.)
        """
        if not self._started:
            raise ConfigError(
                "ReproServer is not running — use 'async with' or start()"
            )
        start = time.monotonic()
        opts = options or self.config.options
        if self._closed:
            return self._refused(
                "ShutdownError", "server is shutting down", retryable=False,
                start=start,
            )
        try:
            request = as_request(request)
            shape = request.validate()
            bin_label = format_bin(request.shape_bin(self.session.params))
            flops = _request_flops(request, shape)
        except (ConfigError, UnsupportedShapeError) as exc:
            result = RequestResult(
                error=RequestError(kind=type(exc).__name__, message=str(exc)),
                traffic=ContextStats.zero(),
                total_seconds=time.monotonic() - start,
            )
            self.slo.record(
                "invalid", total_seconds=result.total_seconds, error=True
            )
            self._failed += 1
            return result

        cache_key: tuple[str, SubmitOptions] | None = None
        if self.config.cache_entries:
            cache_key = (request.content_hash(), opts)
            hit, value = self.cache.get(cache_key)
            if hit:
                self._cache_hits += 1
                self._completed += 1
                total = time.monotonic() - start
                self.slo.record(
                    bin_label, total_seconds=total, cache_hit=True
                )
                return RequestResult(
                    value=value,
                    traffic=ContextStats.zero(),
                    bin=bin_label,
                    cache_hit=True,
                    total_seconds=total,
                )

        if self._inflight >= self.config.max_pending:
            return self._refused(
                "RejectedError",
                f"admission window is full ({self.config.max_pending} "
                "requests in flight) — retry later",
                retryable=True,
                start=start,
            )

        assert self._loop is not None
        pending = _Pending(
            request=request,
            options=opts,
            bin_label=bin_label,
            cache_key=cache_key,
            future=self._loop.create_future(),
            admitted_at=start,
        )
        self._inflight += 1
        self._admitted += 1
        self._enqueue(pending)
        try:
            result = await pending.future
        finally:
            self._inflight -= 1
        result = replace(result, total_seconds=time.monotonic() - start)
        if result.ok:
            self._completed += 1
            if cache_key is not None:
                self.cache.put(cache_key, result.value)
        else:
            self._failed += 1
        gflops: float | None = None
        if result.ok and result.service_seconds > 0:
            gflops = flops / result.service_seconds / 1e9
        dma_bytes: float | None = None
        if result.traffic is not None and result.traffic.dma_bytes > 0:
            dma_bytes = float(result.traffic.dma_bytes)
        self.slo.record(
            result.bin or bin_label,
            total_seconds=result.total_seconds,
            queue_seconds=result.queue_seconds,
            service_seconds=result.service_seconds,
            error=not result.ok,
            gflops=gflops,
            dma_bytes=dma_bytes,
        )
        return result

    def _refused(
        self, kind: str, message: str, *, retryable: bool, start: float
    ) -> RequestResult:
        self._rejected += 1
        return RequestResult(
            error=RequestError(kind=kind, message=message, retryable=retryable),
            traffic=ContextStats.zero(),
            total_seconds=time.monotonic() - start,
        )

    # -- binning and coalescing (event-loop thread only) ---------------

    def _enqueue(self, pending: _Pending) -> None:
        if (
            isinstance(pending.request, LuRequest)
            or self.config.window_seconds == 0
            or self.config.max_batch_size == 1
        ):
            # LU runs on the warm scalar context and cannot share a
            # scheduler batch; a zero window means coalescing is off.
            self._queue.put_nowait([pending])
            return
        key: BinKey = (
            pending.request.shape_bin(self.session.params),
            pending.options,
        )
        group = self._bins.setdefault(key, [])
        group.append(pending)
        if len(group) >= self.config.max_batch_size:
            self._flush_bin(key)
        elif len(group) == 1:
            assert self._loop is not None
            self._timers[key] = self._loop.call_later(
                self.config.window_seconds, self._flush_bin, key
            )

    def _flush_bin(self, key: BinKey) -> None:
        timer = self._timers.pop(key, None)
        if timer is not None:
            timer.cancel()
        group = self._bins.pop(key, None)
        if group:
            self._queue.put_nowait(group)

    # -- dispatch ------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        assert self._loop is not None
        while True:
            group = await self._queue.get()
            if group is None:
                return
            self._batches += 1
            self._batched_requests += len(group)
            try:
                results = await self._loop.run_in_executor(
                    self._executor, self._execute, group
                )
            except Exception as exc:  # defensive: report, don't hang
                error = RequestError(
                    kind=type(exc).__name__, message=str(exc)
                )
                results = [
                    RequestResult(
                        error=error,
                        traffic=ContextStats.zero(),
                        bin=p.bin_label,
                    )
                    for p in group
                ]
            for pending, result in zip(group, results):
                if not pending.future.done():
                    pending.future.set_result(result)

    def _execute(self, group: list[_Pending]) -> list[RequestResult]:
        """Run one coalesced group on the session (executor thread)."""
        dispatch_start = time.monotonic()
        opts = group[0].options
        label = group[0].bin_label
        tracer = self.session.tracer
        with tracer.span(
            "serve.batch", cat="serve", items=len(group), bin=label
        ):
            if isinstance(group[0].request, LuRequest):
                results = [
                    self.session.submit(p.request, options=opts)
                    for p in group
                ]
            else:
                results = self._execute_gemm_group(group, opts)
            service = time.monotonic() - dispatch_start
            # one serve.request span per rider, nested in the still-
            # open serve.batch span; the delta meter makes each span's
            # counters exactly that request's attributed traffic.
            out: list[RequestResult] = []
            for pending, result in zip(group, results):
                result = replace(
                    result,
                    queue_seconds=dispatch_start - pending.admitted_at,
                    service_seconds=service,
                )
                traffic = result.traffic
                if traffic is None:
                    traffic = ContextStats.zero()
                with tracer.span(
                    "serve.request",
                    cat="serve",
                    meter=_delta_meter(traffic),
                    bin=result.bin or label,
                    ok=result.ok,
                ):
                    pass
                out.append(result)
        return out

    def _execute_gemm_group(
        self, group: list[_Pending], opts: SubmitOptions
    ) -> list[RequestResult]:
        """One ``Session.batch`` for a coalesced GEMM/conv group."""
        items: list[GemmRequest] = []
        for pending in group:
            request = pending.request
            if isinstance(request, ConvRequest):
                items.append(request.lower())
            else:
                assert isinstance(request, GemmRequest)
                items.append(request)
        batch = self.session.batch(
            items, parallel=self.config.parallel, options=opts
        )
        errors = {e.index: e for e in batch.errors}
        results: list[RequestResult] = []
        for i, pending in enumerate(group):
            traffic = batch.item_traffic[i]
            reports = tuple(
                r for r in batch.fault_reports if r.index == i
            )
            err = errors.get(i)
            if err is not None:
                results.append(
                    RequestResult(
                        error=RequestError(kind=err.kind, message=err.message),
                        traffic=traffic,
                        fault_reports=reports,
                        bin=pending.bin_label,
                    )
                )
                continue
            value = batch.outputs[i]
            if isinstance(pending.request, ConvRequest):
                value = pending.request.fold(value)
            results.append(
                RequestResult(
                    value=value,
                    traffic=traffic,
                    fault_reports=reports,
                    bin=pending.bin_label,
                )
            )
        return results

    # -- reporting -----------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Flat server counters plus nested cache counters."""
        return {
            "admitted": self._admitted,
            "rejected": self._rejected,
            "completed": self._completed,
            "failed": self._failed,
            "cache_hits": self._cache_hits,
            "batches": self._batches,
            "batched_requests": self._batched_requests,
            "inflight": self._inflight,
            "open_bins": len(self._bins),
            "cache": self.cache.stats(),
        }

    def slo_report(self) -> tuple[BinReport, ...]:
        """Per-bin p50/p95/p99 latency reports (sorted by bin label)."""
        return self.slo.report()

    def register_metrics(self, registry: MetricsRegistry) -> MetricsRegistry:
        """Bind the server's own counters into a metrics registry.

        Namespaces: ``serve.*`` (admission/dispatch counters, cache
        counters under ``serve.cache.*``), ``slo.<bin>.*`` (per-bin
        counts and percentile seconds), ``events.*`` (the structured
        log's level counters), ``sampler.*`` / ``alerts.*`` (pipeline
        self-telemetry; empty until :meth:`start` arms them), and —
        when the session's tracer keeps span totals —
        ``serve.request.ctx.*``, the summed per-request span deltas
        that reconcile bit-exactly with ``session.traffic.*``.

        Session-level namespaces (``cg0.dma.*``, ``plan.cache.*``,
        ``resil.*``, ``session.*``) are *not* registered here — pass a
        ``Session.metrics_registry()`` in (what :meth:`metrics_registry`
        does) to get both address spaces without collisions.
        """
        registry.register("serve", self.stats)
        registry.register("slo", self.slo.snapshot)
        registry.register("events", self.events.stats)
        registry.register(
            "sampler",
            lambda: self.sampler.stats() if self.sampler is not None else {},
        )
        registry.register(
            "alerts",
            lambda: self.alerts.stats() if self.alerts is not None else {},
        )
        tracer = self.session.tracer
        if hasattr(tracer, "counter_totals"):
            registry.register(
                "serve.request",
                lambda: tracer.counter_totals("serve.request"),
            )
        return registry

    def metrics_registry(self) -> MetricsRegistry:
        """The server's full counter address space (built once).

        Composes the session's registry (device, NoC, plan-cache,
        resilience and session accounting) with the serve-local
        sources of :meth:`register_metrics`.  This is the registry the
        attached sampler and the ``/metrics`` endpoint read.
        """
        if self._registry is None:
            self._registry = self.register_metrics(
                self.session.metrics_registry()
            )
        return self._registry

    def openmetrics(self) -> str:
        """One OpenMetrics text scrape: every counter plus histograms."""
        return render_openmetrics(
            self.metrics_registry().snapshot(),
            self.slo.histogram_families(),
        )

    async def _serve_metrics(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One HTTP/1.1 exchange on the exposition endpoint.

        Deliberately minimal: read the request line, drain headers,
        answer ``/metrics`` (OpenMetrics), ``/healthz`` (liveness) or
        404, close.  Rendering happens on the event-loop thread, which
        is safe — every source read is a lock-held or GIL-atomic
        counter snapshot.
        """
        try:
            request_line = await reader.readline()
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.decode("latin-1", "replace").split()
            path = parts[1] if len(parts) >= 2 else "/"
            path = path.split("?", 1)[0]
            if path in ("/metrics", "/"):
                status = "200 OK"
                ctype = (
                    "application/openmetrics-text; "
                    "version=1.0.0; charset=utf-8"
                )
                body = self.openmetrics().encode("utf-8")
            elif path == "/healthz":
                status = "200 OK"
                ctype = "text/plain; charset=utf-8"
                body = b"ok\n"
            else:
                status = "404 Not Found"
                ctype = "text/plain; charset=utf-8"
                body = b"not found\n"
            head = (
                f"HTTP/1.1 {status}\r\n"
                f"Content-Type: {ctype}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            )
            writer.write(head.encode("latin-1") + body)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # a scraper hanging up mid-exchange is not an error
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - platform noise
                pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = (
            "closed" if self._closed
            else "running" if self._started else "new"
        )
        return (
            f"ReproServer({state}, admitted={self._admitted}, "
            f"batches={self._batches}, inflight={self._inflight})"
        )
