"""Alert rules over sampled series: burn rates, storms, quarantines.

An :class:`AlertEngine` watches a :class:`~repro.obs.series.MetricsSampler`
and keeps a set of declarative rules evaluated after every sample (the
engine registers itself as a sampler listener).  Two rule shapes cover
the serving tier's failure modes:

- :class:`BurnRateRule` — the SRE multiwindow SLO burn-rate alert: the
  error fraction over a *fast* and a *slow* trailing window, divided by
  the error budget, must both exceed their factors before the alert
  fires.  The fast window catches a cliff quickly; the slow window
  keeps one unlucky request from paging at low traffic.
- :class:`RateThresholdRule` — fires when a counter's per-second rate
  over a window exceeds a threshold: CG quarantine events (threshold
  0: *any* quarantine fires), plan-cache eviction storms, admission
  rejections.

State transitions — inactive→firing and firing→resolved — are emitted
as structured events (``alert.fired`` / ``alert.resolved``) through
the attached :class:`~repro.obs.events.EventLog`, so the alert history
is a JSONL stream.  :func:`default_serve_rules` is the rule set the
serving tier and the ``top`` dashboard arm by default.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from time import monotonic
from typing import Callable

from repro.errors import ConfigError
from repro.obs.events import EventLog
from repro.obs.series import MetricsSampler

__all__ = [
    "Alert",
    "AlertEngine",
    "AlertRule",
    "BurnRateRule",
    "RateThresholdRule",
    "default_serve_rules",
]


@dataclass(frozen=True)
class Alert:
    """One firing alert: the rule's identity plus the offending value."""

    rule: str
    severity: str
    message: str
    #: the evaluated quantity (burn rate, events/second, ...).
    value: float
    threshold: float
    #: engine clock time the alert transitioned to firing.
    since: float


class AlertRule:
    """Base rule: a named, leveled predicate over a sampler's series."""

    def __init__(
        self, name: str, *, severity: str = "warning", description: str = ""
    ) -> None:
        self.name = str(name)
        self.severity = str(severity)
        self.description = str(description)

    def evaluate(self, sampler: MetricsSampler) -> tuple[bool, float, float]:
        """Return ``(firing, value, threshold)`` for the current sample."""
        raise NotImplementedError

    def message(self, value: float, threshold: float) -> str:
        return (
            f"{self.name}: {value:.4g} over threshold {threshold:.4g}"
            + (f" — {self.description}" if self.description else "")
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"


class RateThresholdRule(AlertRule):
    """Fires when a counter rises faster than ``threshold_per_second``.

    A threshold of 0 fires on *any* increase within the window — the
    right shape for should-never-happen counters like CG quarantines.
    """

    def __init__(
        self,
        name: str,
        metric: str,
        *,
        threshold_per_second: float,
        window_seconds: float = 5.0,
        severity: str = "warning",
        description: str = "",
    ) -> None:
        super().__init__(name, severity=severity, description=description)
        if window_seconds <= 0:
            raise ConfigError(
                f"window_seconds must be > 0, got {window_seconds}"
            )
        self.metric = str(metric)
        self.threshold_per_second = float(threshold_per_second)
        self.window_seconds = float(window_seconds)

    def evaluate(self, sampler: MetricsSampler) -> tuple[bool, float, float]:
        rate = sampler.rate(self.metric, self.window_seconds)
        if self.threshold_per_second == 0:
            # "any increase" semantics: the delta, not the rate, decides
            # (a tiny window rate could round to 0.0).
            firing = sampler.delta(self.metric, self.window_seconds) > 0
        else:
            firing = rate > self.threshold_per_second
        return firing, rate, self.threshold_per_second


class BurnRateRule(AlertRule):
    """Multiwindow SLO burn-rate: fast AND slow windows must burn hot.

    ``objective`` is the allowed error fraction (0.001 for a 99.9%
    SLO); burn rate is ``(errors/total) / objective`` over a window.
    The canonical page-worthy pairing is a 5 m fast / 1 h slow window
    at 14.4x burn; the defaults here are scaled to the seconds-long
    runs this repo's smoke tests produce.
    """

    def __init__(
        self,
        name: str,
        *,
        error_metric: str,
        total_metric: str,
        objective: float = 0.001,
        fast_window_seconds: float = 5.0,
        slow_window_seconds: float = 60.0,
        burn_factor: float = 14.4,
        min_total: float = 1.0,
        severity: str = "critical",
        description: str = "",
    ) -> None:
        super().__init__(name, severity=severity, description=description)
        if not (0 < objective < 1):
            raise ConfigError(f"objective must be in (0, 1), got {objective}")
        if fast_window_seconds >= slow_window_seconds:
            raise ConfigError("fast window must be shorter than slow window")
        self.error_metric = str(error_metric)
        self.total_metric = str(total_metric)
        self.objective = float(objective)
        self.fast_window_seconds = float(fast_window_seconds)
        self.slow_window_seconds = float(slow_window_seconds)
        self.burn_factor = float(burn_factor)
        self.min_total = float(min_total)

    def _burn(self, sampler: MetricsSampler, window: float) -> float:
        total = sampler.delta(self.total_metric, window)
        if total < self.min_total:
            return 0.0
        errors = max(0.0, sampler.delta(self.error_metric, window))
        return (errors / total) / self.objective

    def evaluate(self, sampler: MetricsSampler) -> tuple[bool, float, float]:
        fast = self._burn(sampler, self.fast_window_seconds)
        slow = self._burn(sampler, self.slow_window_seconds)
        firing = fast >= self.burn_factor and slow >= self.burn_factor
        # report the fast burn — it is the one that moves first.
        return firing, fast, self.burn_factor


class AlertEngine:
    """Evaluates rules against a sampler, tracking firing transitions.

    ``attach()`` registers the engine as a sampler listener so rules
    re-evaluate after every sample on the sampler thread; calling
    :meth:`evaluate` directly works too (the ``top`` dashboard does,
    once per frame).  Transition edges are emitted to the event log;
    steady states are not, so the log carries information, not noise.
    """

    def __init__(
        self,
        rules: tuple[AlertRule, ...] | list[AlertRule],
        *,
        events: EventLog | None = None,
        clock: Callable[[], float] = monotonic,
    ) -> None:
        names = [r.name for r in rules]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate rule names in {names}")
        self.rules = tuple(rules)
        self.events = events
        self.clock = clock
        self._lock = threading.Lock()
        self._active: dict[str, Alert] = {}
        self.fired = 0
        self.resolved = 0
        self.evaluations = 0

    def attach(
        self,
        sampler: MetricsSampler,
        *,
        min_interval_seconds: float = 0.25,
    ) -> "AlertEngine":
        """Evaluate on ``sampler``'s thread, at most every
        ``min_interval_seconds``; returns self.

        Rule evaluation costs tens of microseconds per rule (window
        scans over every referenced series), which would dominate a
        10 ms sampling budget if run per sample; alert latency of a
        quarter second is indistinguishable operationally, so
        evaluation is throttled independently of the sample rate.
        Pass ``0.0`` to evaluate on every sample.
        """
        last: float | None = None

        def listener(s: MetricsSampler, _snapshot: dict) -> None:
            nonlocal last
            now = self.clock()
            if last is not None and now - last < min_interval_seconds:
                return
            last = now
            self.evaluate(s)

        sampler.add_listener(listener)
        return self

    def evaluate(self, sampler: MetricsSampler) -> tuple[Alert, ...]:
        """Run every rule once; returns the currently firing set."""
        now = self.clock()
        with self._lock:
            self.evaluations += 1
            for rule in self.rules:
                firing, value, threshold = rule.evaluate(sampler)
                current = self._active.get(rule.name)
                if firing and current is None:
                    alert = Alert(
                        rule=rule.name,
                        severity=rule.severity,
                        message=rule.message(value, threshold),
                        value=value,
                        threshold=threshold,
                        since=now,
                    )
                    self._active[rule.name] = alert
                    self.fired += 1
                    if self.events is not None:
                        self.events.emit(
                            rule.severity,
                            "alert.fired",
                            rule=rule.name,
                            value=value,
                            threshold=threshold,
                            message=alert.message,
                        )
                elif not firing and current is not None:
                    del self._active[rule.name]
                    self.resolved += 1
                    if self.events is not None:
                        self.events.info(
                            "alert.resolved",
                            rule=rule.name,
                            value=value,
                            active_seconds=now - current.since,
                        )
            return tuple(self._active.values())

    def active(self) -> tuple[Alert, ...]:
        """The currently firing alerts (stable rule order)."""
        with self._lock:
            return tuple(
                self._active[r.name]
                for r in self.rules
                if r.name in self._active
            )

    def stats(self) -> dict[str, float]:
        """Engine counters (a registry source: ``alerts.*``)."""
        with self._lock:
            out: dict[str, float] = {
                "rules": float(len(self.rules)),
                "active": float(len(self._active)),
                "fired": float(self.fired),
                "resolved": float(self.resolved),
                "evaluations": float(self.evaluations),
            }
            for rule in self.rules:
                out[f"firing.{rule.name}"] = float(
                    rule.name in self._active
                )
            return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AlertEngine({len(self.rules)} rules, "
            f"{len(self.active())} active)"
        )


def default_serve_rules(
    *,
    availability_objective: float = 0.01,
    fast_window_seconds: float = 5.0,
    slow_window_seconds: float = 60.0,
) -> tuple[AlertRule, ...]:
    """The serving tier's standing rule set.

    Metric names follow :meth:`ReproServer.metrics_registry
    <repro.serve.server.ReproServer.metrics_registry>`: request
    failures and admissions under ``serve.*``, recovery counters under
    ``resil.*``, cache churn under ``serve.cache.*`` and
    ``plan.cache.*``.
    """
    return (
        BurnRateRule(
            "slo-burn-rate",
            error_metric="serve.failed",
            total_metric="serve.admitted",
            objective=availability_objective,
            fast_window_seconds=fast_window_seconds,
            slow_window_seconds=slow_window_seconds,
            description="request failures are burning the error budget",
        ),
        RateThresholdRule(
            "cg-quarantine",
            "resil.quarantines",
            threshold_per_second=0.0,
            window_seconds=slow_window_seconds,
            severity="critical",
            description="a core group was quarantined",
        ),
        RateThresholdRule(
            "plan-cache-eviction-storm",
            "plan.cache.evictions",
            threshold_per_second=10.0,
            window_seconds=fast_window_seconds,
            description="compiled plans are churning faster than reuse",
        ),
        RateThresholdRule(
            "operand-cache-eviction-storm",
            "serve.cache.evictions",
            threshold_per_second=50.0,
            window_seconds=fast_window_seconds,
            severity="info",
            description="operand cache capacity is under pressure",
        ),
        RateThresholdRule(
            "admission-rejections",
            "serve.rejected",
            threshold_per_second=5.0,
            window_seconds=fast_window_seconds,
            description="backpressure is turning requests away",
        ),
    )
