"""Bounded log-bucketed histograms: latency and throughput distributions.

The serving tier used to keep *every* latency sample in a per-bin list
(``serve/slo.py``), which is unbounded on an always-on server.  A
:class:`LatencyHistogram` is the HDR-style replacement: a fixed set of
geometrically spaced buckets whose relative width is the configured
``growth`` factor, so memory is O(buckets) forever while any quantile
estimate is off by at most one bucket width (``growth - 1`` relative
error, ~19% at the default latency scale).

Two invariants make the histogram trustworthy telemetry:

- **exact counts** — ``sum(bucket counts) == count`` always; every
  recorded observation lands in exactly one bucket (:meth:`validate`
  re-checks it, the unit tests assert it under merge and overflow);
- **mergeable buckets** — two histograms built with the same bucket
  scale merge by adding counts bucket-wise; :meth:`merge` of two
  streams equals recording their concatenation (property-tested).

The bucket layout is the classic Prometheus *cumulative* ``le``
(less-or-equal) scheme, so :mod:`repro.obs.promexp` renders a
histogram family straight from :meth:`bucket_bounds` /
:meth:`cumulative`.

Instances are not internally locked: every owner here
(:class:`~repro.serve.slo.SLOTracker`) already serializes access under
its own lock, and a per-record lock would double the cost of the hot
``record`` path for nothing.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from collections.abc import Iterable

from repro.errors import ConfigError

__all__ = ["LatencyHistogram"]


def _bounds(lowest: float, highest: float, growth: float) -> tuple[float, ...]:
    """Geometric ``le`` bucket upper bounds from lowest to past highest."""
    bounds = [lowest]
    while bounds[-1] < highest:
        bounds.append(bounds[-1] * growth)
    bounds.append(math.inf)
    return tuple(bounds)


class LatencyHistogram:
    """A bounded log-bucketed distribution with exact counts.

    ``lowest`` is the upper bound of the first bucket (everything at or
    below it, including zero, lands there), ``highest`` the value the
    finite buckets must reach, and ``growth`` the ratio between
    consecutive bucket bounds — the relative quantile error.  The last
    bucket is always ``+inf``, so no observation is ever dropped.

    The default scale suits request latency in seconds (1 us to 1 h at
    ~19% resolution, 128 buckets).  The ``for_*`` constructors pick
    scales for the other distributions the pipeline tracks.
    """

    __slots__ = ("_bounds", "_counts", "count", "sum", "min", "max")

    def __init__(
        self,
        *,
        lowest: float = 1e-6,
        highest: float = 3600.0,
        growth: float = 2.0 ** 0.25,
    ) -> None:
        if not (lowest > 0 and highest > lowest):
            raise ConfigError(
                f"need 0 < lowest < highest, got {lowest} and {highest}"
            )
        if growth <= 1.0:
            raise ConfigError(f"growth must be > 1, got {growth}")
        self._bounds = _bounds(lowest, highest, growth)
        self._counts = [0] * len(self._bounds)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    # -- alternate scales ---------------------------------------------

    @classmethod
    def for_seconds(cls) -> "LatencyHistogram":
        """The default latency scale (1 us .. 1 h, ~19% buckets)."""
        return cls()

    @classmethod
    def for_gflops(cls) -> "LatencyHistogram":
        """Per-request Gflop/s (1e-3 .. 1e5, ~41% buckets)."""
        return cls(lowest=1e-3, highest=1e5, growth=2.0 ** 0.5)

    @classmethod
    def for_bytes(cls) -> "LatencyHistogram":
        """Per-request DMA bytes (1 KiB .. 1 TiB, power-of-two buckets)."""
        return cls(lowest=1024.0, highest=2.0 ** 40, growth=2.0)

    # -- recording ----------------------------------------------------

    def record(self, value: float, n: int = 1) -> None:
        """Count ``n`` observations of ``value`` in its bucket."""
        if n < 1:
            raise ConfigError(f"n must be >= 1, got {n}")
        value = float(value)
        if math.isnan(value):
            raise ConfigError("cannot record NaN")
        self._counts[bisect_left(self._bounds, value)] += n
        self.count += n
        self.sum += value * n
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def extend(self, values: Iterable[float]) -> None:
        """Record every value of an iterable."""
        for value in values:
            self.record(value)

    # -- merging ------------------------------------------------------

    def compatible(self, other: "LatencyHistogram") -> bool:
        """True when the two histograms share one bucket scale."""
        return self._bounds == other._bounds

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """A new histogram equal to recording both input streams.

        Bucket counts, ``count``, ``min`` and ``max`` are exact;
        ``sum`` is the float sum of the two partial sums (associativity
        holds to ~1 ulp, which the property test pins).
        """
        if not self.compatible(other):
            raise ConfigError(
                "cannot merge histograms with different bucket scales"
            )
        out = LatencyHistogram.__new__(LatencyHistogram)
        out._bounds = self._bounds
        out._counts = [a + b for a, b in zip(self._counts, other._counts)]
        out.count = self.count + other.count
        out.sum = self.sum + other.sum
        out.min = min(self.min, other.min)
        out.max = max(self.max, other.max)
        return out

    # -- reading ------------------------------------------------------

    def bucket_bounds(self) -> tuple[float, ...]:
        """The ``le`` upper bounds, last one ``+inf``."""
        return self._bounds

    def cumulative(self) -> tuple[int, ...]:
        """Cumulative counts per ``le`` bound (Prometheus semantics)."""
        total = 0
        out = []
        for n in self._counts:
            total += n
            out.append(total)
        return tuple(out)

    def percentile(self, q: float) -> float:
        """Nearest-rank quantile estimate (q in [0, 100]).

        Returns the upper bound of the bucket holding the rank, clamped
        to the observed ``max`` so the estimate is never above a value
        nobody saw (and the +inf bucket never leaks an infinity).
        """
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(self.count * q / 100.0))
        total = 0
        for bound, n in zip(self._bounds, self._counts):
            total += n
            if total >= rank:
                return min(bound, self.max)
        return self.max  # pragma: no cover - cumulative always reaches

    @property
    def mean(self) -> float:
        """Arithmetic mean of the recorded values (0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def validate(self) -> None:
        """Assert the exact-count invariant; raises on corruption."""
        if sum(self._counts) != self.count:
            raise ConfigError(
                f"bucket counts sum to {sum(self._counts)} but count is "
                f"{self.count}"
            )

    def snapshot(self) -> dict[str, float]:
        """Flat numeric summary (a ready-made metrics source)."""
        return {
            "count": float(self.count),
            "sum": self.sum,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LatencyHistogram({self.count} observations over "
            f"{len(self._bounds)} buckets)"
        )
